// Heat diffusion: the paper's Table I experiment in miniature.
//
// The five-point stencil is parallelized at the innermost (column) loop.
// With schedule(static,1), eight consecutive columns — one 64-byte cache
// line of the output row — are written by eight different threads at the
// same time, so nearly every store hits a line another core has just
// modified. With schedule(static,64) each thread owns eight whole lines
// per chunk and false sharing disappears.
//
// The program compares the compile-time model against simulated execution
// for both chunk sizes across thread counts, then validates the kernel's
// numerics with the reference interpreter against a native Go run.
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"text/tabwriter"

	"repro"
	"repro/internal/kernels"
)

const (
	rows = 32
	cols = 2048
)

func main() {
	src := kernels.HeatSource(rows, cols)
	prog, err := repro.Parse(src)
	if err != nil {
		log.Fatal(err)
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "threads\tFS cases (chunk=1)\tFS cases (chunk=64)\tsim chunk=1 (s)\tsim chunk=64 (s)\tFS effect\t")
	for _, threads := range []int{2, 4, 8, 16} {
		opts1 := repro.Options{Threads: threads, Chunk: 1}
		opts64 := repro.Options{Threads: threads, Chunk: 64}

		a1, err := prog.Analyze(0, opts1)
		if err != nil {
			log.Fatal(err)
		}
		a64, err := prog.Analyze(0, opts64)
		if err != nil {
			log.Fatal(err)
		}
		s1, err := prog.Simulate(0, opts1)
		if err != nil {
			log.Fatal(err)
		}
		s64, err := prog.Simulate(0, opts64)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%.5f\t%.5f\t%.1f%%\t\n",
			threads, a1.FSCases, a64.FSCases, s1.Seconds, s64.Seconds,
			(s1.Seconds-s64.Seconds)/s1.Seconds*100)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}

	// Numeric validation: the native parallel stencil must agree with a
	// serial reference regardless of the schedule.
	validate()
}

func validate() {
	a := kernels.HeatInput(rows, cols)
	native := kernels.HeatGo(rows, cols, 4, 1, a)

	ref := make([]float64, rows*cols)
	for j := int64(1); j < rows-1; j++ {
		for i := int64(1); i < cols-1; i++ {
			ref[j*cols+i] = 0.25 * (a[j*cols+i-1] + a[j*cols+i+1] + a[(j-1)*cols+i] + a[(j+1)*cols+i])
		}
	}
	sum := 0.0
	for _, v := range ref {
		sum += v
	}
	if math.Abs(sum-native.Checksum) > 1e-6*math.Abs(sum) {
		log.Fatalf("native stencil diverges from reference: %g vs %g", native.Checksum, sum)
	}
	fmt.Printf("\nnative Go stencil validated (checksum %.6f, %v on 4 goroutines, chunk=1)\n",
		native.Checksum, native.Elapsed)
}
