// Quickstart: analyze a small OpenMP loop for false sharing at compile
// time, predict the total from a few chunk runs, and ask the model for a
// better chunk size.
package main

import (
	"fmt"
	"log"

	"repro"
)

// The victim loop: four threads increment neighbouring elements of a
// float64 array. With schedule(static,1) adjacent iterations — and hence
// adjacent array elements on the same 64-byte cache line — run on
// different threads, so every write invalidates the neighbours' caches.
const src = `
#define N 4096

double sums[N];
double data[N];

#pragma omp parallel for private(i) schedule(static,1) num_threads(4)
for (i = 0; i < N; i++)
    sums[i] += data[i] * data[i];
`

func main() {
	prog, err := repro.Parse(src)
	if err != nil {
		log.Fatal(err)
	}

	// 1. The compile-time FS cost model (paper Section III).
	rep, err := prog.Analyze(0, repro.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("schedule(static,%d) on %d threads:\n", rep.Chunk, rep.Threads)
	fmt.Printf("  modeled false-sharing cases: %d (%.2f per iteration)\n", rep.FSCases, rep.FSPerIteration)
	fmt.Printf("  modeled share of time lost to false sharing: %.1f%%\n", rep.FSShare*100)

	// 2. The linear-regression prediction model (Section III-E): same
	// answer from evaluating only a few chunk runs.
	pred, err := prog.Predict(0, repro.Options{}, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  predicted from %d of %d chunk runs: %d cases (R²=%.4f, %.0fx less modeling work)\n",
		pred.SampledRuns, pred.TotalRuns, pred.PredictedFS, pred.R2, pred.SpeedupFactor)

	// 3. Model-guided tuning: what chunk size should the compiler pick?
	rec, err := prog.RecommendChunk(0, repro.Options{}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  recommended schedule(static,%d): FS cases drop to %d\n", rec.Chunk, rec.FSCases)

	// 4. Cross-check on the simulated 48-core machine.
	for _, chunk := range []int64{1, rec.Chunk} {
		sim, err := prog.Simulate(0, repro.Options{Chunk: chunk})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  simulated chunk=%-3d : %.6f s, %d coherence misses\n",
			chunk, sim.Seconds, sim.CoherenceMisses)
	}
}
