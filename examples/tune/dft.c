/* Discrete Fourier transform (the paper's dft kernel) in a
   false-sharing-inducing form: schedule(static,1) interleaves adjacent
   Xre/Xim output elements across the team, so each 64-byte line of the
   accumulator arrays is written by eight threads per outer step. */
#define N 96

double x[N];
double Xre[N];
double Xim[N];
double costab[N][N];
double sintab[N][N];

for (k = 0; k < N; k++) {
    #pragma omp parallel for private(n) schedule(static,1) num_threads(8)
    for (n = 0; n < N; n++) {
        Xre[n] += x[k] * costab[k][n];
        Xim[n] -= x[k] * sintab[k][n];
    }
}
