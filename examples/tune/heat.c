/* Heat diffusion (Jacobi sweep) in a false-sharing-inducing form.
   schedule(static,1) deals adjacent 8-byte columns of B to different
   threads, so every cache line of the row is written by eight threads
   at once. The interior starts at column 8, so the written region is
   cache-line aligned and a chunk resize can remove the sharing. */
#define M 16
#define N 512

double A[M][N];
double B[M][N];

for (j = 1; j < M - 1; j++) {
    #pragma omp parallel for private(i) schedule(static,1) num_threads(8)
    for (i = 8; i < N - 8; i++) {
        B[j][i] = 0.25 * (A[j][i - 1] + A[j][i + 1] + A[j - 1][i] + A[j + 1][i]);
    }
}
