/* The linear regression kernel with its accumulator struct already
   padded to a full cache line: every task owns its lines, there is no
   false sharing to remove, and the tuner must verify a no-op rather
   than invent a transformation. */
#define N 32
#define K 48

struct Point { double x; double y; };
struct Args { double sx; double sxx; double sy; double syy; double sxy; double pad[3]; };

struct Args tid_args[N];
struct Point points[N][K];

#pragma omp parallel for private(i,j) schedule(static,1) num_threads(8)
for (j = 0; j < N; j++) {
    for (i = 0; i < K; i++) {
        tid_args[j].sx += points[j][i].x;
        tid_args[j].sxx += points[j][i].x * points[j][i].x;
        tid_args[j].sy += points[j][i].y;
        tid_args[j].syy += points[j][i].y * points[j][i].y;
        tid_args[j].sxy += points[j][i].x * points[j][i].y;
    }
}
