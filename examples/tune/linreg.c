/* Linear regression partial sums (the paper's Fig. 1 kernel) in a
   false-sharing-inducing form: struct Args is 40 bytes, so adjacent
   tasks' accumulators straddle cache lines, and with only 32 tasks on
   8 threads no legal chunk resize can align them — the tuner must pad
   the struct to a line multiple. */
#define N 32
#define K 48

struct Point { double x; double y; };
struct Args { double sx; double sxx; double sy; double syy; double sxy; };

struct Args tid_args[N];
struct Point points[N][K];

#pragma omp parallel for private(i,j) schedule(static,1) num_threads(8)
for (j = 0; j < N; j++) {
    for (i = 0; i < K; i++) {
        tid_args[j].sx += points[j][i].x;
        tid_args[j].sxx += points[j][i].x * points[j][i].x;
        tid_args[j].sy += points[j][i].y;
        tid_args[j].syy += points[j][i].y * points[j][i].y;
        tid_args[j].sxy += points[j][i].x * points[j][i].y;
    }
}
