/* Per-task accumulator structs of 24 bytes: fslint reports FS001 on each
 * field write, FS002 between the distinct fields that land on one line,
 * and suggests both the aligning chunk (8) and 40 bytes of padding.
 *
 *   go run ./cmd/fslint examples/lint/stats_structs.c
 */
#define TASKS 1024

struct Stat { double sum; double sumsq; double count; };

struct Stat stats[TASKS];
double obs[TASKS];

#pragma omp parallel for private(j) schedule(static,1) num_threads(8)
for (j = 0; j < TASKS; j++) {
    stats[j].sum   += obs[j];
    stats[j].sumsq += obs[j] * obs[j];
    stats[j].count += 1.0;
}
