/* False-sharing prone: schedule(static,1) interleaves adjacent 8-byte
 * counters across threads, so every 64-byte line is written by eight
 * different threads.
 *
 *   go run ./cmd/fslint examples/lint/histogram_fs.c
 */
#define N 8192

double counts[N];
double samples[N];

#pragma omp parallel for private(i) schedule(static,1) num_threads(8)
for (i = 0; i < N; i++)
    counts[i] += samples[i] * samples[i];
