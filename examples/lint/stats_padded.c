/* The padded sibling of stats_structs.c: the pad member grows each
 * element to exactly one 64-byte line, so each task's accumulators are
 * thread-private at the cache level and fslint reports nothing.
 *
 *   go run ./cmd/fslint examples/lint/stats_padded.c
 */
#define TASKS 1024

struct Stat { double sum; double sumsq; double count; double pad[5]; };

struct Stat stats[TASKS];
double obs[TASKS];

#pragma omp parallel for private(j) schedule(static,1) num_threads(8)
for (j = 0; j < TASKS; j++) {
    stats[j].sum   += obs[j];
    stats[j].sumsq += obs[j] * obs[j];
    stats[j].count += 1.0;
}
