/* The fixed sibling of histogram_fs.c: chunks of 8 doubles fill whole
 * 64-byte cache lines, so no line is ever written by two threads.
 *
 *   go run ./cmd/fslint examples/lint/histogram_chunked.c
 */
#define N 8192

double counts[N];
double samples[N];

#pragma omp parallel for private(i) schedule(static,8) num_threads(8)
for (i = 0; i < N; i++)
    counts[i] += samples[i] * samples[i];
