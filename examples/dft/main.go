// DFT: the paper's worst false-sharing victim (Table II reports ~32–37%
// of execution time lost).
//
// Every innermost iteration updates BOTH output vectors (real and
// imaginary bins), so with schedule(static,1) each iteration performs four
// accesses to cache lines that neighbouring threads are writing at the
// same moment — roughly four times the FS density of the heat stencil.
//
// The program shows the model/prediction/simulator agreement and then
// runs the transform natively to confirm the numerics and demonstrate the
// chunk-size effect on real goroutines.
package main

import (
	"fmt"
	"log"
	"math"

	"repro"
	"repro/internal/kernels"
)

const n = 256

func main() {
	prog, err := repro.Parse(kernels.DFTSource(n))
	if err != nil {
		log.Fatal(err)
	}
	opts := repro.Options{Threads: 8, Chunk: 1}

	a, err := prog.Analyze(0, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DFT N=%d, 8 threads, chunk=1\n", n)
	fmt.Printf("  modeled FS cases: %d (%.2f per iteration — ~4x heat's density)\n",
		a.FSCases, a.FSPerIteration)
	fmt.Printf("  modeled FS share of execution time: %.1f%%\n", a.FSShare*100)

	pred, err := prog.Predict(0, opts, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  prediction from %d/%d chunk runs: %d cases (full model: %d, R²=%.4f)\n",
		pred.SampledRuns, pred.TotalRuns, pred.PredictedFS, a.FSCases, pred.R2)

	for _, chunk := range []int64{1, 16} {
		o := opts
		o.Chunk = chunk
		s, err := prog.Simulate(0, o)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  simulated chunk=%-3d: %.6f s, %d coherence misses\n", chunk, s.Seconds, s.CoherenceMisses)
	}

	// Native execution: correctness against a serial reference, plus the
	// real-hardware effect of the chunk size.
	x := kernels.DFTInput(n)
	cost, sint := kernels.DFTTables(n)
	refRe, refIm := kernels.DFTReference(n, x, cost, sint)
	refSum := 0.0
	for i := range refRe {
		refSum += refRe[i]*refRe[i] + refIm[i]*refIm[i]
	}

	// Parseval check: sum |X|^2 == N * sum x^2 for the exact DFT.
	xx := 0.0
	for _, v := range x {
		xx += v * v
	}
	if math.Abs(refSum-float64(n)*xx) > 1e-6*refSum {
		log.Fatalf("DFT reference fails Parseval: %g vs %g", refSum, float64(n)*xx)
	}

	for _, chunk := range []int64{1, 16} {
		res := kernels.DFTGo(n, 8, chunk, x, cost, sint)
		if math.Abs(res.Checksum-refSum) > 1e-6*math.Abs(refSum) {
			log.Fatalf("native DFT (chunk=%d) diverges: %g vs %g", chunk, res.Checksum, refSum)
		}
		fmt.Printf("  native Go chunk=%-3d: %v (checksum OK)\n", chunk, res.Elapsed)
	}
}
