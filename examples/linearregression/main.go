// Linear regression: the paper's motivating example (Fig. 1 and Fig. 2).
//
// Each task accumulates five running sums into its own element of a
// shared array of 40-byte structs. Because 40 < 64, adjacent elements
// share a cache line, and schedule(static,1) places adjacent elements on
// different threads — the classic false-sharing victim. The paper tunes
// the chunk size from 1 to 30 and gains up to 30%.
//
// This program reproduces the tuning curve three ways: the compile-time
// model, the machine simulator, and real goroutines on the host — and
// finishes by solving a regression to show the kernel's actual purpose.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro"
	"repro/internal/kernels"
)

const (
	tasks   = 256
	points  = 2048
	threads = 8
)

func main() {
	prog, err := repro.Parse(kernels.LinRegSource(tasks, points, threads))
	if err != nil {
		log.Fatal(err)
	}

	px, py := kernels.LinRegInput(tasks, points/threads)

	fmt.Printf("linear regression kernel: %d tasks x %d points, %d threads (struct Args = 40 bytes)\n\n",
		tasks, points/threads, threads)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "chunk\tmodel FS cases\tsim time (s)\tnative time\t")
	var firstNative, bestNative float64
	for _, chunk := range []int64{1, 2, 4, 8, 10, 16, 30} {
		opts := repro.Options{Threads: threads, Chunk: chunk}
		a, err := prog.Analyze(0, opts)
		if err != nil {
			log.Fatal(err)
		}
		s, err := prog.Simulate(0, opts)
		if err != nil {
			log.Fatal(err)
		}
		_, native := kernels.LinRegGo(tasks, points/threads, threads, chunk, px, py)
		sec := native.Elapsed.Seconds()
		if firstNative == 0 {
			firstNative, bestNative = sec, sec
		}
		if sec < bestNative {
			bestNative = sec
		}
		fmt.Fprintf(tw, "%d\t%d\t%.6f\t%v\t\n", chunk, a.FSCases, s.Seconds, native.Elapsed)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	if firstNative > 0 {
		fmt.Printf("\nnative improvement from chunk tuning on this host: %.1f%%\n",
			(firstNative-bestNative)/firstNative*100)
	}

	// The kernel's actual job: recover slope/intercept per task. Inputs
	// were generated as y = 3x + 0.5 + noise.
	args, _ := kernels.LinRegGo(tasks, points/threads, threads, 10, px, py)
	slope, intercept := kernels.LinRegSolve(args[0], points/threads)
	fmt.Printf("task 0 fit: y = %.3f*x + %.3f (expected ~3x + 0.5)\n", slope, intercept)

	// And the compiler's advice.
	rec, err := prog.RecommendChunk(0, repro.Options{Threads: threads}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model recommendation: schedule(static,%d)\n", rec.Chunk)
}
