// Diagnose: the full compiler-style workflow on a victim loop —
// detect false sharing, attribute it to the guilty data structure,
// compare the two fixes the literature proposes (schedule tuning vs
// struct padding) with the cost model, and confirm the chosen fix on the
// simulated machine, with and without bus-interference modeling.
package main

import (
	"fmt"
	"log"

	"repro"
)

const src = `
#define TASKS 512
#define POINTS 32

struct Acc { double sum; double sumsq; double count; };

struct Acc acc[TASKS];
double in[TASKS][POINTS];

#pragma omp parallel for private(i, j) schedule(static,1) num_threads(8)
for (j = 0; j < TASKS; j++)
  for (i = 0; i < POINTS; i++) {
    acc[j].sum   += in[j][i];
    acc[j].sumsq += in[j][i] * in[j][i];
    acc[j].count += 1.0;
  }
`

func main() {
	prog, err := repro.Parse(src)
	if err != nil {
		log.Fatal(err)
	}
	opts := repro.Options{} // take threads/chunk from the pragma

	// 1. Detect and attribute.
	a, err := prog.Analyze(0, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("detected %d false-sharing cases (%.1f%% of modeled time)\n", a.FSCases, a.FSShare*100)
	for _, v := range a.Victims {
		fmt.Printf("  victim: %-16s %d cases (%.0f%%)\n",
			v.Ref, v.FSCases, 100*float64(v.FSCases)/float64(a.FSCases))
	}

	// 2. Fix A — schedule tuning (Chow & Sarkar style).
	rec, err := prog.RecommendChunk(0, opts, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfix A, schedule tuning: schedule(static,%d), modeled %.0f cycles\n",
		rec.Chunk, rec.TotalCycles)

	// 3. Fix B — struct padding (Jeremiassen & Eggers style), priced by
	// Equation 1 (FS savings vs footprint growth).
	pad, err := prog.EvaluatePadding(0, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fix B, struct padding: %v\n", pad.Changes)
	fmt.Printf("  FS %d -> %d, modeled %.0f -> %.0f cycles (apply: %v)\n",
		pad.OrigFSCases, pad.NewFSCases, pad.OrigCycles, pad.NewCycles, pad.Apply)

	// 4. Confirm on the simulated 48-core machine, with the bus
	// interference extension on and off.
	for _, bus := range []bool{false, true} {
		label := "no bus contention"
		if bus {
			label = "with bus contention"
		}
		before, err := prog.Simulate(0, repro.Options{BusContention: bus})
		if err != nil {
			log.Fatal(err)
		}
		after, err := prog.Simulate(0, repro.Options{Chunk: rec.Chunk, BusContention: bus})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nsimulated (%s):\n", label)
		fmt.Printf("  schedule(static,1):  %.6f s, %d coherence misses\n", before.Seconds, before.CoherenceMisses)
		fmt.Printf("  schedule(static,%d): %.6f s, %d coherence misses (%.1fx faster)\n",
			rec.Chunk, after.Seconds, after.CoherenceMisses, before.Seconds/after.Seconds)
	}
}
