//go:build fsvetcorpus

// GV003: a sharded counter whose 8B shards defeat the sharding — eight
// shards share each 64B line, so "per-goroutine" counters still
// contend for lines.
package corpus

import "sync/atomic"

type shard struct {
	n int64
}

var shards [64]shard

func Inc(id int) {
	atomic.AddInt64(&shards[id%len(shards)].n, 1)
}
