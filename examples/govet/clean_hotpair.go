//go:build fsvetcorpus

// The GV001 twin: each hot counter starts a fresh 128-byte region, so
// no cache line of 64 or 128 bytes holds both.
package corpus

import "sync/atomic"

type PaddedStats struct {
	requests atomic.Int64
	_        [120]byte
	errors   atomic.Int64
	_        [120]byte
}

var paddedStats PaddedStats

func PaddedRequest(failed bool) {
	paddedStats.requests.Add(1)
	if failed {
		paddedStats.errors.Add(1)
	}
}
