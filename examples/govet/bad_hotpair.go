//go:build fsvetcorpus

// GV001: requests and errors are 8B atomics at offsets 0 and 8 — the
// same 64B cache line. A goroutine bumping requests invalidates the
// line in every core caching errors, and vice versa.
package corpus

import "sync/atomic"

type Stats struct {
	requests atomic.Int64
	errors   atomic.Int64
}

var stats Stats

func Request(failed bool) {
	stats.requests.Add(1)
	if failed {
		stats.errors.Add(1)
	}
}
