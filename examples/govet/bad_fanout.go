//go:build fsvetcorpus

// GV002: the canonical goroutine fan-out. Iteration i writes the 16B
// element results[i], so four adjacent goroutines' results share each
// 64B line and every completion ping-pongs it.
package corpus

type result struct {
	sum   int64
	count int64
}

var results = make([]result, 4096)

func FanOut() {
	for i := 0; i < 4096; i++ {
		go func(i int) {
			results[i].sum = int64(i * i)
		}(i)
	}
}
