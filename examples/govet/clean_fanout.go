//go:build fsvetcorpus

// The GV002 twin: 128B elements mean adjacent goroutines' writes are
// always on different lines, for line sizes up to 128 bytes.
package corpus

type paddedResult struct {
	sum   int64
	count int64
	_     [112]byte
}

var paddedResults = make([]paddedResult, 4096)

func PaddedFanOut() {
	for i := 0; i < 4096; i++ {
		go func(i int) {
			paddedResults[i].sum = int64(i * i)
		}(i)
	}
}
