//go:build fsvetcorpus

// The GV003 twin: one shard per 128-byte region, so shards never
// contend for a line at 64B or 128B geometry.
package corpus

import "sync/atomic"

type paddedShard struct {
	n int64
	_ [120]byte
}

var paddedShards [64]paddedShard

func PaddedInc(id int) {
	atomic.AddInt64(&paddedShards[id%len(paddedShards)].n, 1)
}
