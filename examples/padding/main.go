// Padding: using the model to evaluate the FS-elimination transformations
// the paper leaves as future work (Section V cites array padding and
// memory alignment, Jeremiassen & Eggers).
//
// The same accumulator loop is analyzed twice: once with the natural
// 40-byte struct (adjacent elements share cache lines) and once with the
// struct padded to 64 bytes (each element owns its line). The model
// quantifies, before running anything, that padding removes every FS case
// — and the simulator confirms the speedup, demonstrating how a compiler
// would use the model to decide whether the transformation pays off.
package main

import (
	"fmt"
	"log"

	"repro"
)

const unpadded = `
#define N 1024

struct Acc { double sx; double sxx; double sy; double syy; double sxy; };
struct Acc acc[N];
double vx[N];
double vy[N];

#pragma omp parallel for private(i,r) schedule(static,1) num_threads(8)
for (i = 0; i < N; i++)
  for (r = 0; r < 50; r++) {
    acc[i].sx  += vx[i];
    acc[i].sxx += vx[i] * vx[i];
    acc[i].sy  += vy[i];
    acc[i].syy += vy[i] * vy[i];
    acc[i].sxy += vx[i] * vy[i];
  }
`

// Three doubles of padding round the struct up to 64 bytes.
const padded = `
#define N 1024

struct Acc { double sx; double sxx; double sy; double syy; double sxy;
             double pad0; double pad1; double pad2; };
struct Acc acc[N];
double vx[N];
double vy[N];

#pragma omp parallel for private(i,r) schedule(static,1) num_threads(8)
for (i = 0; i < N; i++)
  for (r = 0; r < 50; r++) {
    acc[i].sx  += vx[i];
    acc[i].sxx += vx[i] * vx[i];
    acc[i].sy  += vy[i];
    acc[i].syy += vy[i] * vy[i];
    acc[i].sxy += vx[i] * vy[i];
  }
`

func main() {
	for _, v := range []struct {
		name string
		src  string
	}{{"40-byte struct (unpadded)", unpadded}, {"64-byte struct (padded)", padded}} {
		prog, err := repro.Parse(v.src)
		if err != nil {
			log.Fatal(err)
		}
		a, err := prog.Analyze(0, repro.Options{})
		if err != nil {
			log.Fatal(err)
		}
		s, err := prog.Simulate(0, repro.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", v.name)
		fmt.Printf("  modeled FS cases: %-8d  modeled FS share: %5.1f%%\n", a.FSCases, a.FSShare*100)
		fmt.Printf("  simulated: %.6f s, %d coherence misses\n\n", s.Seconds, s.CoherenceMisses)
	}
	fmt.Println("the model prices the padding transformation without executing the loop:")
	fmt.Println("a compiler can compare Total_c(padded) against Total_c(original) and apply it when profitable")
}
