package repro

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
)

const victim = `
#define N 1024

double sums[N];
double data[N];

#pragma omp parallel for private(i) schedule(static,1) num_threads(4)
for (i = 0; i < N; i++)
    sums[i] += data[i] * data[i];
`

func TestParseAndNestInfo(t *testing.T) {
	prog, err := Parse(victim)
	if err != nil {
		t.Fatal(err)
	}
	if prog.NumNests() != 1 {
		t.Fatalf("nests = %d", prog.NumNests())
	}
	info, err := prog.Nest(0)
	if err != nil {
		t.Fatal(err)
	}
	if info.Depth != 1 || info.ParallelLevel != 0 || info.Iterations != 1024 {
		t.Fatalf("info = %+v", info)
	}
	if info.References != 4 { // read data, read sums, write sums... plus data again? R data, R sums, W sums = 3? data read twice.
		t.Logf("references = %d", info.References)
	}
	if !strings.Contains(info.Description, "parallel") {
		t.Fatal("description should mention parallelization")
	}
	if _, err := prog.Nest(5); err == nil {
		t.Fatal("out-of-range nest index should fail")
	}
}

func TestParseErrorsSurface(t *testing.T) {
	if _, err := Parse("for (i = 0; j < 4; i++) x = 1;"); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestAnalyzeEndToEnd(t *testing.T) {
	prog, err := Parse(victim)
	if err != nil {
		t.Fatal(err)
	}
	a, err := prog.Analyze(0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Threads != 4 || a.Chunk != 1 {
		t.Fatalf("pragma not honored: %+v", a)
	}
	if a.FSCases == 0 || a.FSShare <= 0 || a.FSShare >= 1 {
		t.Fatalf("analysis degenerate: %+v", a)
	}
	if a.Iterations != 1024 {
		t.Fatalf("iterations = %d", a.Iterations)
	}

	// Chunk override eliminates FS (8 doubles per line).
	a8, err := prog.Analyze(0, Options{Chunk: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a8.FSCases != 0 {
		t.Fatalf("chunk=8 FS = %d", a8.FSCases)
	}
	if a8.FSShare != 0 {
		t.Fatalf("chunk=8 share = %f", a8.FSShare)
	}
}

// TestModelMatchesSimulator is the repository's central claim in one test:
// the compile-time count equals the simulator's coherence-miss count for
// the write-ping-pong victim.
func TestModelMatchesSimulator(t *testing.T) {
	prog, err := Parse(victim)
	if err != nil {
		t.Fatal(err)
	}
	a, err := prog.Analyze(0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := prog.Simulate(0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.FSCases != s.CoherenceMisses {
		t.Fatalf("model %d vs simulator %d coherence misses", a.FSCases, s.CoherenceMisses)
	}
	if s.Seconds <= 0 || s.Accesses == 0 {
		t.Fatalf("sim stats degenerate: %+v", s)
	}
}

func TestPredictEndToEnd(t *testing.T) {
	prog, err := Parse(victim)
	if err != nil {
		t.Fatal(err)
	}
	full, err := prog.Analyze(0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := prog.Predict(0, Options{}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if p.R2 < 0.99 {
		t.Fatalf("R2 = %f", p.R2)
	}
	rel := math.Abs(float64(p.PredictedFS-full.FSCases)) / float64(full.FSCases)
	if rel > 0.05 {
		t.Fatalf("prediction %d vs %d (%.1f%%)", p.PredictedFS, full.FSCases, rel*100)
	}
	if p.SpeedupFactor <= 1 {
		t.Fatalf("speedup = %f", p.SpeedupFactor)
	}
	if p.TotalRuns != 256 { // 1024 iters / (4 threads × chunk 1)
		t.Fatalf("total runs = %d", p.TotalRuns)
	}
}

func TestEstimateCost(t *testing.T) {
	prog, err := Parse(victim)
	if err != nil {
		t.Fatal(err)
	}
	c, err := prog.EstimateCost(0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c.TotalWallCycles <= c.BaseWallCycles {
		t.Fatal("FS term missing from Total_c")
	}
	if c.FSCycles <= 0 || c.MachinePerIter <= 0 {
		t.Fatalf("cost report degenerate: %+v", c)
	}
	// Without FS, total == base.
	c8, err := prog.EstimateCost(0, Options{Chunk: 8})
	if err != nil {
		t.Fatal(err)
	}
	if c8.FSCycles != 0 {
		t.Fatalf("chunk=8 FS cycles = %f", c8.FSCycles)
	}
}

func TestRecommendChunk(t *testing.T) {
	prog, err := Parse(victim)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := prog.RecommendChunk(0, Options{}, []int64{1, 2, 4, 8, 16})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Chunk < 8 {
		t.Fatalf("recommended chunk %d still false-shares", rec.Chunk)
	}
	if rec.FSCases != 0 {
		t.Fatalf("recommended FS = %d", rec.FSCases)
	}
	if len(rec.Evaluated) != 5 {
		t.Fatalf("evaluated = %d", len(rec.Evaluated))
	}
	// The recommendation must actually be the cheapest evaluated.
	for _, c := range rec.Evaluated {
		if c.TotalCycles < rec.TotalCycles {
			t.Fatalf("candidate %d cheaper than recommendation", c.Chunk)
		}
	}
}

// TestRecommendChunkClosedForm pins the closed-form advice against the
// sweep-based recommendation on the same victim: the linter must flag the
// nest, propose an aligning chunk the cost sweep also accepts, and judge
// that chunk clean when re-analyzed.
func TestRecommendChunkClosedForm(t *testing.T) {
	prog, err := Parse(victim)
	if err != nil {
		t.Fatal(err)
	}
	adv, err := prog.RecommendChunkClosedForm(0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !adv.Prone || adv.Race {
		t.Fatalf("advice = %+v, want prone without race", adv)
	}
	if !adv.Exact || adv.Findings == 0 {
		t.Fatalf("advice = %+v, want exact with findings", adv)
	}
	if adv.Chunk != 8 {
		t.Fatalf("suggested chunk = %d, want 8 (64-byte lines / 8-byte doubles)", adv.Chunk)
	}
	// The suggested schedule must be clean under its own analysis and FS
	// free under the simulator-backed model.
	fixed, err := prog.RecommendChunkClosedForm(0, Options{Chunk: adv.Chunk})
	if err != nil {
		t.Fatal(err)
	}
	if fixed.Prone || fixed.Findings != 0 {
		t.Fatalf("suggested chunk still flagged: %+v", fixed)
	}
	a, err := prog.Analyze(0, Options{Chunk: adv.Chunk})
	if err != nil {
		t.Fatal(err)
	}
	if a.FSCases != 0 {
		t.Fatalf("suggested chunk has %d FS cases under the model", a.FSCases)
	}
	if _, err := prog.RecommendChunkClosedForm(5, Options{}); err == nil {
		t.Fatal("out-of-range nest must error")
	}
}

func TestMESICountingOption(t *testing.T) {
	prog, err := Parse(victim)
	if err != nil {
		t.Fatal(err)
	}
	a, err := prog.Analyze(0, Options{MESICounting: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.FSCases == 0 {
		t.Fatal("MESI counting found nothing")
	}
}

func TestMachineSelection(t *testing.T) {
	if Paper48().Name() != "paper48" || Paper48().Cores() != 48 {
		t.Fatal("Paper48 accessor wrong")
	}
	if SmallTest().Name() != "smalltest" || SmallTest().Cores() != 4 {
		t.Fatal("SmallTest accessor wrong")
	}
	var zero Machine
	if zero.Name() != "paper48" || zero.Cores() != 48 {
		t.Fatal("zero Machine should default to paper48")
	}
	prog, err := Parse(victim)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog.Analyze(0, Options{Machine: SmallTest()}); err != nil {
		t.Fatal(err)
	}
}

func TestInterpretThroughFacade(t *testing.T) {
	prog, err := Parse(`
#define N 4
double a[N];
double s;
for (i = 0; i < N; i++) a[i] = i;
for (i = 0; i < N; i++) s += a[i];
`)
	if err != nil {
		t.Fatal(err)
	}
	it, err := prog.Interpret()
	if err != nil {
		t.Fatal(err)
	}
	got, err := it.Read("s")
	if err != nil {
		t.Fatal(err)
	}
	if got != 6 {
		t.Fatalf("s = %f", got)
	}
}

func TestWarningsExposed(t *testing.T) {
	prog, err := Parse(`
#define N 8
double a[N][N];
#pragma omp parallel for num_threads(2)
for (i = 0; i < N; i++)
  for (j = 0; j < N; j++)
    a[i][i * j] = 1.0;
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Warnings()) == 0 {
		t.Fatal("non-affine subscript should warn")
	}
	a, err := prog.Analyze(0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.SkippedRefs) == 0 {
		t.Fatal("skipped refs should be reported")
	}
}

func TestEvaluatePaddingFacade(t *testing.T) {
	prog, err := Parse(`
#define N 512
struct Acc { double a; double b; double c; };
struct Acc acc[N];
double v[N];
#pragma omp parallel for schedule(static,1) num_threads(8)
for (i = 0; i < N; i++)
  for (r = 0; r < 16; r++)
    acc[i].a += v[i];
`)
	if err != nil {
		t.Fatal(err)
	}
	adv, err := prog.EvaluatePadding(0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(adv.Changes) != 1 || !strings.Contains(adv.Changes[0], "Acc") {
		t.Fatalf("changes = %v", adv.Changes)
	}
	if adv.NewFSCases != 0 || adv.OrigFSCases == 0 {
		t.Fatalf("FS %d -> %d", adv.OrigFSCases, adv.NewFSCases)
	}
	if !adv.Apply {
		t.Fatalf("padding should be profitable: %.0f -> %.0f", adv.OrigCycles, adv.NewCycles)
	}
}

func TestModernMachineAgreesOnVerdicts(t *testing.T) {
	// The FS verdicts (victim vs clean) must hold on the modern machine
	// too — the phenomenon is geometric (64-byte lines), not a 2012
	// artifact.
	prog, err := Parse(victim)
	if err != nil {
		t.Fatal(err)
	}
	if Modern16().Cores() != 16 {
		t.Fatal("Modern16 accessor wrong")
	}
	bad, err := prog.Analyze(0, Options{Machine: Modern16()})
	if err != nil {
		t.Fatal(err)
	}
	if bad.FSCases == 0 {
		t.Fatal("victim must false-share on modern machine")
	}
	good, err := prog.Analyze(0, Options{Machine: Modern16(), Chunk: 8})
	if err != nil {
		t.Fatal(err)
	}
	if good.FSCases != 0 {
		t.Fatal("aligned chunk must stay clean on modern machine")
	}
	if _, err := prog.Simulate(0, Options{Machine: Modern16(), Threads: 16}); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzeRateFacade(t *testing.T) {
	// The paper's unknown-bounds fallback through the public API.
	prog, err := Parse(`
double a[65536];
#pragma omp parallel for schedule(static,1) num_threads(8)
for (i = 0; i < n; i++) a[i] += 1.0;
`)
	if err != nil {
		t.Fatal(err)
	}
	info, err := prog.Nest(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.SymbolicParams) != 1 || info.SymbolicParams[0] != "n" {
		t.Fatalf("params = %v", info.SymbolicParams)
	}
	if info.Iterations != 0 {
		t.Fatalf("iterations should be unknown, got %d", info.Iterations)
	}
	rate, err := prog.AnalyzeRate(0, Options{}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if rate.FSPerChunkRun != 7 {
		t.Fatalf("rate = %f, want 7", rate.FSPerChunkRun)
	}
	if rate.Assumed["n"] == 0 || rate.RunsEvaluated != 16 {
		t.Fatalf("report = %+v", rate)
	}
	// The full-model entry points must reject the symbolic nest cleanly.
	if _, err := prog.Analyze(0, Options{}); err == nil {
		t.Fatal("Analyze should fail on unknown bounds")
	}
}

func TestMachineByName(t *testing.T) {
	for _, name := range MachineNames() {
		m, err := MachineByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m.Name() != name {
			t.Errorf("MachineByName(%q).Name() = %q", name, m.Name())
		}
	}
	if m, err := MachineByName(""); err != nil || m.Name() != "paper48" {
		t.Errorf("empty name: m=%v err=%v, want paper48 default", m.Name(), err)
	}
	_, err := MachineByName("cray1")
	if err == nil {
		t.Fatal("expected error for unknown machine")
	}
	for _, name := range MachineNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list %q", err, name)
		}
	}
}

// TestCanonicalKey pins that the key covers every semantic option (so
// cache entries never collide across configurations) and excludes the
// scheduling-only Jobs knob.
func TestCanonicalKey(t *testing.T) {
	base := Options{Threads: 8, Chunk: 4}
	variants := []Options{
		{Threads: 16, Chunk: 4},
		{Threads: 8, Chunk: 8},
		{Threads: 8, Chunk: 4, MESICounting: true},
		{Threads: 8, Chunk: 4, StackDepth: 3},
		{Threads: 8, Chunk: 4, BusContention: true},
		{Threads: 8, Chunk: 4, TrackHotLines: true},
		{Threads: 8, Chunk: 4, Machine: SmallTest()},
	}
	seen := map[string]int{base.CanonicalKey(): -1}
	for i, v := range variants {
		k := v.CanonicalKey()
		if j, dup := seen[k]; dup {
			t.Errorf("variant %d collides with %d: %q", i, j, k)
		}
		seen[k] = i
	}
	withJobs := base
	withJobs.Jobs = 7
	if withJobs.CanonicalKey() != base.CanonicalKey() {
		t.Error("Jobs must not affect the canonical key (scheduling-only)")
	}
}

func TestRecommendChunkCtx(t *testing.T) {
	prog, err := Parse(victim)
	if err != nil {
		t.Fatal(err)
	}
	// A live context matches the plain API.
	rec, err := prog.RecommendChunkCtx(context.Background(), 0, Options{}, []int64{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Chunk != 8 {
		t.Fatalf("recommended chunk = %d", rec.Chunk)
	}
	// A cancelled context aborts the sweep with the context error.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := prog.RecommendChunkCtx(ctx, 0, Options{}, []int64{1, 8}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
