package main

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

const victim = `
#define N 256
double a[N];
#pragma omp parallel for num_threads(4)
for (i = 0; i < N; i++) a[i] += 1.0;
`

func TestTuneRecommendsAlignedChunk(t *testing.T) {
	var buf bytes.Buffer
	if err := tune(context.Background(), victim, config{threads: 4, maxChunk: 16}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "recommended: schedule(static,") {
		t.Fatalf("no recommendation:\n%s", out)
	}
	// Chunks 8 and 16 (64- and 128-byte strides) are the FS-free options;
	// the recommendation must be one of them.
	if !strings.Contains(out, "schedule(static,8)") && !strings.Contains(out, "schedule(static,16)") {
		t.Fatalf("recommendation not FS-free:\n%s", out)
	}
}

func TestTuneVerify(t *testing.T) {
	var buf bytes.Buffer
	if err := tune(context.Background(), victim, config{threads: 4, maxChunk: 8, verify: true}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "simulated seconds") {
		t.Fatalf("verify column missing:\n%s", buf.String())
	}
}

func TestTuneErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := tune(context.Background(), "garbage(", config{threads: 4, maxChunk: 4}, &buf); err == nil {
		t.Fatal("expected parse error")
	}
	if _, err := loadSource("", 4, nil); err == nil {
		t.Fatal("expected usage error")
	}
	if _, err := loadSource("nope", 4, nil); err == nil {
		t.Fatal("expected unknown kernel error")
	}
}

// TestTuneDeterministicAcrossJobs diffs the tuning table (including the
// simulator cross-check) between -j 1 and -j 8.
func TestTuneDeterministicAcrossJobs(t *testing.T) {
	var serial, parallel bytes.Buffer
	if err := tune(context.Background(), victim, config{threads: 4, maxChunk: 16, verify: true, jobs: 1}, &serial); err != nil {
		t.Fatal(err)
	}
	if err := tune(context.Background(), victim, config{threads: 4, maxChunk: 16, verify: true, jobs: 8}, &parallel); err != nil {
		t.Fatal(err)
	}
	if serial.String() != parallel.String() {
		t.Errorf("-j 1 and -j 8 outputs differ:\n--- -j 1 ---\n%s\n--- -j 8 ---\n%s",
			serial.String(), parallel.String())
	}
}
