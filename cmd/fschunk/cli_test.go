package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunExitCodes pins the CLI error contract: flag/usage errors exit 2,
// input and analysis errors exit 1 with a diagnostic on stderr, success
// exits 0 with the tuning table on stdout.
func TestRunExitCodes(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "victim.c")
	if err := os.WriteFile(good, []byte(victim), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name       string
		args       []string
		wantCode   int
		wantStderr string
		wantStdout string
	}{
		{"success", []string{"-threads", "4", "-max", "16", good}, 0, "", "recommended: schedule(static,"},
		{"unknown flag", []string{"-no-such-flag"}, 2, "flag provided but not defined", ""},
		{"bad flag value", []string{"-max", "huge", good}, 2, "invalid value", ""},
		{"no input", nil, 1, "usage: fschunk", ""},
		{"unknown kernel", []string{"-kernel", "bogus"}, 1, "valid kernels: heat, dft, linreg", ""},
		{"missing file", []string{filepath.Join(dir, "nope.c")}, 1, "no such file", ""},
		{"bad nest index", []string{"-nest", "9", good}, 1, "fschunk:", ""},
		{"timeout", []string{"-timeout", "1ns", good}, 1, "context deadline exceeded", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr strings.Builder
			code := run(tc.args, &stdout, &stderr)
			if code != tc.wantCode {
				t.Errorf("run(%v) = %d, want %d (stderr: %s)", tc.args, code, tc.wantCode, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.wantStderr) {
				t.Errorf("stderr = %q, want it to contain %q", stderr.String(), tc.wantStderr)
			}
			if !strings.Contains(stdout.String(), tc.wantStdout) {
				t.Errorf("stdout = %q, want it to contain %q", stdout.String(), tc.wantStdout)
			}
		})
	}
}
