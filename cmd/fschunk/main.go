// Command fschunk is the model-guided schedule tuner the paper proposes as
// the compiler's use of the FS cost model: it evaluates candidate
// schedule(static,chunk) chunk sizes with the combined cost model
// (Equation 1) and reports the cheapest, optionally cross-checking each
// candidate against the machine simulator.
//
// Usage:
//
//	fschunk -kernel linreg -threads 8
//	fschunk -threads 16 -max 64 -verify file.c
//
// Exit status is 0 on success, 1 on analysis or I/O errors, and 2 on
// usage errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"
	"time"

	"repro"
	"repro/internal/fsmodel"
	"repro/internal/guard"
	"repro/internal/kernels"
	"repro/internal/sweep"
)

type config struct {
	threads  int
	nest     int
	maxChunk int64
	verify   bool
	jobs     int
	timeout  time.Duration
	eval     string
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable main: flag errors exit 2, analysis errors exit 1.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fschunk", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var cfg config
	fs.IntVar(&cfg.threads, "threads", 8, "thread count")
	kernel := fs.String("kernel", "", "tune a built-in kernel (heat, dft, linreg)")
	fs.IntVar(&cfg.nest, "nest", 0, "loop nest index to tune")
	fs.Int64Var(&cfg.maxChunk, "max", 128, "largest chunk size candidate (powers of two up to this)")
	fs.BoolVar(&cfg.verify, "verify", false, "cross-check candidates on the machine simulator")
	fs.IntVar(&cfg.jobs, "j", 0, "worker count for evaluating candidates in parallel (0 = GOMAXPROCS); output is identical for every value")
	fs.DurationVar(&cfg.timeout, "timeout", 0, "abort the tuning sweep after this long (0 = no limit)")
	fs.StringVar(&cfg.eval, "eval", "auto", "model evaluation pipeline: auto, compiled or interpreted (identical counts)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if _, err := fsmodel.EvalModeFromString(cfg.eval); err != nil {
		fmt.Fprintln(stderr, "fschunk: -eval:", err)
		return 2
	}

	src, err := loadSource(*kernel, cfg.threads, fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, "fschunk:", err)
		return 1
	}
	ctx := context.Background()
	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
	}
	// guard.Do turns an evaluator panic into an ordinary exit-1 error
	// instead of a crash (sweep workers are already isolated; this covers
	// the serial path and everything around it).
	if err := guard.Do(func() error { return tune(ctx, src, cfg, stdout) }); err != nil {
		fmt.Fprintln(stderr, "fschunk:", err)
		return 1
	}
	return 0
}

func loadSource(kernel string, threads int, args []string) (string, error) {
	switch {
	case kernel != "":
		k, err := kernels.ByName(kernel, threads)
		if err != nil {
			return "", err
		}
		return k.Source, nil
	case len(args) == 1:
		data, err := os.ReadFile(args[0])
		if err != nil {
			return "", err
		}
		return string(data), nil
	}
	return "", fmt.Errorf("usage: fschunk [flags] file.c  (or -kernel heat|dft|linreg)")
}

// tune evaluates the candidate chunks and writes the recommendation.
func tune(ctx context.Context, src string, cfg config, w io.Writer) error {
	prog, err := repro.Parse(src)
	if err != nil {
		return err
	}
	var candidates []int64
	for c := int64(1); c <= cfg.maxChunk; c *= 2 {
		candidates = append(candidates, c)
	}
	opts := repro.Options{Threads: cfg.threads, Jobs: cfg.jobs, Eval: cfg.eval}
	rec, err := prog.RecommendChunkCtx(ctx, cfg.nest, opts, candidates)
	if err != nil {
		return err
	}

	// The simulator cross-check fans out on the same pool; results come
	// back in candidate order so the table is stable under any -j.
	var simSeconds []float64
	if cfg.verify {
		simSeconds, err = sweep.Run(ctx, len(rec.Evaluated), cfg.jobs, func(_ context.Context, i int) (float64, error) {
			o := opts
			o.Chunk = rec.Evaluated[i].Chunk
			simRep, err := prog.Simulate(cfg.nest, o)
			if err != nil {
				return 0, err
			}
			return simRep.Seconds, nil
		})
		if err != nil {
			return err
		}
	}

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	if cfg.verify {
		fmt.Fprintln(tw, "chunk\tmodeled FS cases\tmodeled cycles\tsimulated seconds\t")
	} else {
		fmt.Fprintln(tw, "chunk\tmodeled FS cases\tmodeled cycles\t")
	}
	for i, c := range rec.Evaluated {
		if cfg.verify {
			fmt.Fprintf(tw, "%d\t%d\t%.0f\t%.6f\t\n", c.Chunk, c.FSCases, c.TotalCycles, simSeconds[i])
		} else {
			fmt.Fprintf(tw, "%d\t%d\t%.0f\t\n", c.Chunk, c.FSCases, c.TotalCycles)
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nrecommended: schedule(static,%d)  (modeled %d FS cases, %.0f cycles)\n",
		rec.Chunk, rec.FSCases, rec.TotalCycles)
	return nil
}
