// Command fsrepro regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	fsrepro -exp all            # everything (Tables I–VI, Figures 2/6/8/9)
//	fsrepro -exp table1         # one experiment
//	fsrepro -exp fig2 -quick    # scaled-down configuration
//
// Experiment names: table1 table2 table3 table4 table5 table6 fig2 fig6
// fig8 fig9 linesize modelcost all.
//
// Exit status is 0 on success, 1 on experiment errors, and 2 on usage
// errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/fsmodel"
	"repro/internal/guard"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable main: flag errors exit 2, experiment errors exit 1.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fsrepro", flag.ContinueOnError)
	fs.SetOutput(stderr)
	exp := fs.String("exp", "all", "experiment to run (table1..table6, fig2, fig6, fig8, fig9, all)")
	quick := fs.Bool("quick", false, "use the scaled-down quick configuration")
	mesi := fs.Bool("mesi", false, "use MESI-faithful FS counting instead of the paper's ϕ")
	threads := fs.String("threads", "", "comma-separated thread counts (default 2,4,8,16,24,32,40,48)")
	format := fs.String("format", "text", "output format: text, csv or json")
	jobs := fs.Int("j", 0, "worker count for the experiment sweeps (0 = GOMAXPROCS); output is identical for every value")
	timeout := fs.Duration("timeout", 0, "abort the experiment sweeps after this long (0 = no limit)")
	eval := fs.String("eval", "auto", "model evaluation pipeline: auto, compiled or interpreted (identical tables)")
	extrapolate := fs.Bool("extrapolate", false, "close steady-state chunk runs in O(1) on eligible uniform loops (exact totals)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "fsrepro: unexpected arguments %v\n", fs.Args())
		return 2
	}
	evalMode, err := fsmodel.EvalModeFromString(*eval)
	if err != nil {
		fmt.Fprintln(stderr, "fsrepro: -eval:", err)
		return 2
	}

	cfg := experiments.DefaultConfig()
	if *quick {
		cfg = experiments.QuickConfig()
	}
	if *mesi {
		cfg.Counting = fsmodel.CountMESI
	}
	cfg.Jobs = *jobs
	cfg.Eval = evalMode
	cfg.Extrapolate = *extrapolate
	if *threads != "" {
		cfg.Threads = nil
		for _, f := range strings.Split(*threads, ",") {
			var t int
			if _, err := fmt.Sscanf(strings.TrimSpace(f), "%d", &t); err != nil {
				fmt.Fprintf(stderr, "fsrepro: bad -threads value %q: %v\n", f, err)
				return 2
			}
			cfg.Threads = append(cfg.Threads, t)
		}
	}
	if *timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		cfg.Ctx = ctx
	}

	names := []string{*exp}
	if *exp == "all" {
		names = []string{"table1", "table2", "table3", "table4", "table5", "table6", "fig2", "fig6", "fig8", "fig9", "linesize", "modelcost"}
	}
	for _, name := range names {
		start := time.Now()
		// guard.Do turns a panic inside one experiment into an
		// exit-1 error naming that experiment instead of a crash.
		if err := guard.Do(func() error { return runFormat(cfg, name, stdout, *format) }); err != nil {
			fmt.Fprintf(stderr, "fsrepro: %s: %v\n", name, err)
			return 1
		}
		fmt.Fprintf(stdout, "[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
	return 0
}

// runExperiment computes the named experiment and writes it as text.
func runExperiment(cfg experiments.Config, name string, w io.Writer) error {
	return runFormat(cfg, name, w, "text")
}

func runFormat(cfg experiments.Config, name string, w io.Writer, format string) error {
	res, err := produce(cfg, name)
	if err != nil {
		return err
	}
	return experiments.Export(w, res, format)
}

// produce computes the named experiment's result.
func produce(cfg experiments.Config, name string) (experiments.Exportable, error) {
	switch name {
	case "table1", "table2", "table3":
		return experiments.Table(cfg, kernelOf(name))
	case "table4", "table5", "table6":
		return experiments.PredictionTable(cfg, kernelOf(name))
	case "fig2":
		return experiments.Fig2ChunkSweep(cfg, 8, nil)
	case "fig6":
		return experiments.Fig6Linearity(cfg, "heat", 8, 0)
	case "fig8":
		return experiments.FigSummary(cfg, "heat")
	case "fig9":
		return experiments.FigSummary(cfg, "dft")
	case "linesize":
		return experiments.LineSizeSweep(cfg, 8, 4, nil)
	case "modelcost":
		return experiments.ModelingCost(cfg, 8, 20, nil)
	}
	return nil, fmt.Errorf("unknown experiment %q", name)
}

func kernelOf(table string) string {
	switch table {
	case "table1", "table4":
		return "heat"
	case "table2", "table5":
		return "dft"
	default:
		return "linreg"
	}
}
