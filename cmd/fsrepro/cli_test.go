package main

import (
	"strings"
	"testing"
)

// TestRunExitCodes pins the CLI error contract: flag/usage errors exit 2,
// experiment errors exit 1 with a diagnostic on stderr.
func TestRunExitCodes(t *testing.T) {
	cases := []struct {
		name       string
		args       []string
		wantCode   int
		wantStderr string
		wantStdout string
	}{
		{"success", []string{"-exp", "modelcost", "-quick"}, 0, "", "[modelcost completed in"},
		{"unknown flag", []string{"-no-such-flag"}, 2, "flag provided but not defined", ""},
		{"extra args", []string{"-quick", "stray"}, 2, "unexpected arguments", ""},
		{"bad threads", []string{"-threads", "2,x,8"}, 2, `bad -threads value "x"`, ""},
		{"unknown experiment", []string{"-exp", "table99", "-quick"}, 1, `unknown experiment "table99"`, ""},
		{"timeout", []string{"-exp", "table1", "-quick", "-timeout", "1ns"}, 1, "context deadline exceeded", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.name == "success" && testing.Short() {
				t.Skip("skipping experiment run in -short mode")
			}
			var stdout, stderr strings.Builder
			code := run(tc.args, &stdout, &stderr)
			if code != tc.wantCode {
				t.Errorf("run(%v) = %d, want %d (stderr: %s)", tc.args, code, tc.wantCode, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.wantStderr) {
				t.Errorf("stderr = %q, want it to contain %q", stderr.String(), tc.wantStderr)
			}
			if !strings.Contains(stdout.String(), tc.wantStdout) {
				t.Errorf("stdout = %q, want it to contain %q", stdout.String(), tc.wantStdout)
			}
		})
	}
}
