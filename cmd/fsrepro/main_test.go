package main

import (
	"io"
	"testing"

	"repro/internal/experiments"
)

func TestKernelOf(t *testing.T) {
	cases := map[string]string{
		"table1": "heat", "table4": "heat",
		"table2": "dft", "table5": "dft",
		"table3": "linreg", "table6": "linreg",
	}
	for table, want := range cases {
		if got := kernelOf(table); got != want {
			t.Errorf("kernelOf(%s) = %s, want %s", table, got, want)
		}
	}
}

func TestRunAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping experiment sweep in -short mode")
	}
	cfg := experiments.QuickConfig()
	for _, name := range []string{
		"table1", "table2", "table3", "table4", "table5", "table6",
		"fig6", "fig8", "fig9",
	} {
		if err := runExperiment(cfg, name, io.Discard); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestRunFig2Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping fig2 sweep in -short mode")
	}
	// fig2 sweeps 30 chunk sizes; run it separately so failures are
	// attributable.
	if err := runExperiment(experiments.QuickConfig(), "fig2", io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := runExperiment(experiments.QuickConfig(), "table99", io.Discard); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}
