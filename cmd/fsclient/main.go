// Command fsclient is the fsserve companion client: it submits one
// analysis or lint request to a running fsserve instance and prints the
// JSON response, retrying backpressure with capped exponential backoff,
// full jitter and honor for the server's Retry-After hints
// (internal/retry). It exists so tooling and shell scripts get correct
// retry behavior for free instead of re-implementing it around curl.
//
// Usage:
//
//	fsclient -addr http://localhost:8080 -kernel heat -threads 48
//	fsclient -addr http://localhost:8080 -lint file.c
//	fsclient -retries 6 -kernel dft -chunk 1
//	fsclient -addr http://node1:8080,http://node2:8080 -kernel heat
//
// -addr accepts a comma-separated node list: each retry attempt rotates
// to the next node (and a hedged backup targets a different node than
// its primary), so the client fails over across an fscluster fleet
// without an external load balancer.
//
// Retryable failures are 429 (queue full) and 503 (draining), plus
// transport errors; anything else fails fast. Exit status is 0 on
// success (including degraded responses — inspect "degraded" in the
// output), 1 on request failures, and 2 on usage errors.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/retry"
)

type config struct {
	addr string
	// addrs is the parsed -addr node list (at least one entry).
	addrs   []string
	kernel  string
	lint    bool
	nest    int
	threads int
	chunk   int64
	machine string
	mesi    bool
	retries int
	timeout time.Duration
	seed    int64
	// hedge enables tail-latency hedging: a backup request after an
	// adaptive p95 delay, first response wins.
	hedge bool
	// hedgeDelay pins the hedge delay (0 = adaptive p95).
	hedgeDelay time.Duration
	// deadline, when positive, is sent as X-Request-Deadline so the
	// server evicts the request from its queue if it cannot be met.
	deadline time.Duration
	// sleep replaces the retry policy's sleeper in tests (nil = real).
	sleep func(time.Duration)
	// hedger carries hedge state across attempts (built in run; tests
	// may pre-seed one).
	hedger *retry.Hedger
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable main: flag errors exit 2, request failures exit 1.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fsclient", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var cfg config
	fs.StringVar(&cfg.addr, "addr", "http://localhost:8080", "fsserve base URL, or a comma-separated node list for failover")
	fs.StringVar(&cfg.kernel, "kernel", "", "analyze a built-in kernel instead of a file")
	fs.BoolVar(&cfg.lint, "lint", false, "POST /v1/lint instead of /v1/analyze")
	fs.IntVar(&cfg.nest, "nest", 0, "loop nest to analyze")
	fs.IntVar(&cfg.threads, "threads", 0, "thread count (0 = machine cores)")
	fs.Int64Var(&cfg.chunk, "chunk", 0, "schedule chunk size (0 = OpenMP default)")
	fs.StringVar(&cfg.machine, "machine", "", "modeled machine: paper48 (default), smalltest, modern16")
	fs.BoolVar(&cfg.mesi, "mesi", false, "MESI-faithful counting (analyze only)")
	fs.IntVar(&cfg.retries, "retries", 4, "total attempts for retryable failures (429/503/transport)")
	fs.DurationVar(&cfg.timeout, "timeout", 2*time.Minute, "overall deadline across all attempts")
	fs.Int64Var(&cfg.seed, "seed", 0, "backoff jitter seed (0 = 1), for reproducible retry timing")
	fs.BoolVar(&cfg.hedge, "hedge", false, "hedge slow requests: launch one backup after an adaptive p95 delay, first response wins")
	fs.DurationVar(&cfg.hedgeDelay, "hedge-delay", 0, "pin the hedge delay instead of adapting from observed latency (0 = adaptive)")
	fs.DurationVar(&cfg.deadline, "deadline", 0, "per-request deadline sent as X-Request-Deadline (0 = none; server may reject unmeetable queues early)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	cfg.addrs = splitAddrs(cfg.addr)
	if len(cfg.addrs) == 0 {
		fmt.Fprintln(stderr, "fsclient: -addr is empty")
		return 2
	}
	body, err := buildRequest(cfg, fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, "fsclient:", err)
		return 2
	}
	if cfg.hedge {
		// A pinned -hedge-delay sets floor == ceiling, so the clamp
		// forces exactly that delay; zero leaves both at their adaptive
		// defaults.
		cfg.hedger = retry.NewHedger(retry.HedgeConfig{MaxDelay: cfg.hedgeDelay, MinDelay: cfg.hedgeDelay})
	}
	ctx, cancel := context.WithTimeout(context.Background(), cfg.timeout)
	defer cancel()
	resp, err := send(ctx, cfg, body)
	if err != nil {
		fmt.Fprintln(stderr, "fsclient:", err)
		return 1
	}
	stdout.Write(resp)
	if len(resp) > 0 && resp[len(resp)-1] != '\n' {
		io.WriteString(stdout, "\n")
	}
	return 0
}

// buildRequest assembles the JSON body from the flags and the optional
// source-file argument.
func buildRequest(cfg config, args []string) ([]byte, error) {
	if cfg.kernel == "" && len(args) != 1 {
		return nil, fmt.Errorf("provide a source file or -kernel (usage: fsclient [flags] file.c)")
	}
	if cfg.kernel != "" && len(args) > 0 {
		return nil, fmt.Errorf("-kernel and a source file are mutually exclusive")
	}
	req := map[string]any{}
	if cfg.kernel != "" {
		req["kernel"] = cfg.kernel
	} else {
		src, err := os.ReadFile(args[0])
		if err != nil {
			return nil, err
		}
		req["source"] = string(src)
	}
	if cfg.threads != 0 {
		req["threads"] = cfg.threads
	}
	if cfg.chunk != 0 {
		req["chunk"] = cfg.chunk
	}
	if cfg.machine != "" {
		req["machine"] = cfg.machine
	}
	if !cfg.lint {
		if cfg.nest != 0 {
			req["nest"] = cfg.nest
		}
		if cfg.mesi {
			req["mesi"] = true
		}
	}
	return json.Marshal(req)
}

// reply is one completed HTTP exchange, however it was obtained
// (primary or hedge).
type reply struct {
	status     string
	statusCode int
	header     http.Header
	body       []byte
}

// splitAddrs parses the -addr flag's comma-separated node list, trimming
// whitespace and dropping empty entries.
func splitAddrs(addr string) []string {
	var addrs []string
	for _, a := range strings.Split(addr, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, strings.TrimSuffix(a, "/"))
		}
	}
	return addrs
}

// send POSTs the request under the retry policy: 429/503 and transport
// errors retry with full-jitter backoff floored by the server's
// Retry-After; other statuses return the response (or its error body)
// immediately. With a multi-node -addr list, attempt n targets node
// n mod len(addrs), so a dead or draining node costs one backoff step
// and the next attempt fails over to the next node. With -hedge, each
// attempt races a backup request after the hedge delay — the first
// completed exchange wins, the loser is cancelled — and the backup
// targets a different node than its primary when one is available;
// server backpressure suppresses hedging for its Retry-After window.
func send(ctx context.Context, cfg config, body []byte) ([]byte, error) {
	path := "/v1/analyze"
	if cfg.lint {
		path = "/v1/lint"
	}
	addrs := cfg.addrs
	if len(addrs) == 0 {
		addrs = splitAddrs(cfg.addr)
	}
	if len(addrs) == 0 {
		return nil, fmt.Errorf("no server address")
	}
	var out []byte
	p := retry.Policy{MaxAttempts: cfg.retries, Seed: cfg.seed, Sleep: cfg.sleep}
	err := retry.Do(ctx, p, func(attempt int) error {
		r, err := retry.DoHedged(ctx, cfg.hedger, func(ctx context.Context, hedged bool) (reply, error) {
			node := attempt
			if hedged {
				node++
			}
			url := addrs[node%len(addrs)] + path
			return post(ctx, cfg, url, body)
		})
		if err != nil {
			return retry.Retryable(err)
		}
		switch {
		case r.statusCode == http.StatusOK:
			out = r.body
			return nil
		case r.statusCode == http.StatusTooManyRequests || r.statusCode == http.StatusServiceUnavailable:
			after := retry.AfterHeader(r.header)
			if cfg.hedger != nil {
				cfg.hedger.NoteBackpressure(after)
			}
			return &retry.Err{
				Cause:      fmt.Errorf("%s: %s", r.status, bytes.TrimSpace(r.body)),
				RetryAfter: after,
			}
		}
		return fmt.Errorf("%s: %s", r.status, bytes.TrimSpace(r.body))
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// post performs one HTTP exchange.
func post(ctx context.Context, cfg config, url string, body []byte) (reply, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return reply{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	if cfg.deadline > 0 {
		req.Header.Set("X-Request-Deadline", cfg.deadline.String())
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return reply{}, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return reply{}, err
	}
	return reply{status: resp.Status, statusCode: resp.StatusCode, header: resp.Header, body: b}, nil
}
