// Command fsclient is the fsserve companion client: it submits one
// analysis or lint request to a running fsserve instance and prints the
// JSON response, retrying backpressure with capped exponential backoff,
// full jitter and honor for the server's Retry-After hints
// (internal/retry). It exists so tooling and shell scripts get correct
// retry behavior for free instead of re-implementing it around curl.
//
// Usage:
//
//	fsclient -addr http://localhost:8080 -kernel heat -threads 48
//	fsclient -addr http://localhost:8080 -lint file.c
//	fsclient -retries 6 -kernel dft -chunk 1
//
// Retryable failures are 429 (queue full) and 503 (draining), plus
// transport errors; anything else fails fast. Exit status is 0 on
// success (including degraded responses — inspect "degraded" in the
// output), 1 on request failures, and 2 on usage errors.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"repro/internal/retry"
)

type config struct {
	addr    string
	kernel  string
	lint    bool
	nest    int
	threads int
	chunk   int64
	machine string
	mesi    bool
	retries int
	timeout time.Duration
	seed    int64
	// sleep replaces the retry policy's sleeper in tests (nil = real).
	sleep func(time.Duration)
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable main: flag errors exit 2, request failures exit 1.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fsclient", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var cfg config
	fs.StringVar(&cfg.addr, "addr", "http://localhost:8080", "fsserve base URL")
	fs.StringVar(&cfg.kernel, "kernel", "", "analyze a built-in kernel instead of a file")
	fs.BoolVar(&cfg.lint, "lint", false, "POST /v1/lint instead of /v1/analyze")
	fs.IntVar(&cfg.nest, "nest", 0, "loop nest to analyze")
	fs.IntVar(&cfg.threads, "threads", 0, "thread count (0 = machine cores)")
	fs.Int64Var(&cfg.chunk, "chunk", 0, "schedule chunk size (0 = OpenMP default)")
	fs.StringVar(&cfg.machine, "machine", "", "modeled machine: paper48 (default), smalltest, modern16")
	fs.BoolVar(&cfg.mesi, "mesi", false, "MESI-faithful counting (analyze only)")
	fs.IntVar(&cfg.retries, "retries", 4, "total attempts for retryable failures (429/503/transport)")
	fs.DurationVar(&cfg.timeout, "timeout", 2*time.Minute, "overall deadline across all attempts")
	fs.Int64Var(&cfg.seed, "seed", 0, "backoff jitter seed (0 = 1), for reproducible retry timing")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	body, err := buildRequest(cfg, fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, "fsclient:", err)
		return 2
	}
	ctx, cancel := context.WithTimeout(context.Background(), cfg.timeout)
	defer cancel()
	resp, err := send(ctx, cfg, body)
	if err != nil {
		fmt.Fprintln(stderr, "fsclient:", err)
		return 1
	}
	stdout.Write(resp)
	if len(resp) > 0 && resp[len(resp)-1] != '\n' {
		io.WriteString(stdout, "\n")
	}
	return 0
}

// buildRequest assembles the JSON body from the flags and the optional
// source-file argument.
func buildRequest(cfg config, args []string) ([]byte, error) {
	if cfg.kernel == "" && len(args) != 1 {
		return nil, fmt.Errorf("provide a source file or -kernel (usage: fsclient [flags] file.c)")
	}
	if cfg.kernel != "" && len(args) > 0 {
		return nil, fmt.Errorf("-kernel and a source file are mutually exclusive")
	}
	req := map[string]any{}
	if cfg.kernel != "" {
		req["kernel"] = cfg.kernel
	} else {
		src, err := os.ReadFile(args[0])
		if err != nil {
			return nil, err
		}
		req["source"] = string(src)
	}
	if cfg.threads != 0 {
		req["threads"] = cfg.threads
	}
	if cfg.chunk != 0 {
		req["chunk"] = cfg.chunk
	}
	if cfg.machine != "" {
		req["machine"] = cfg.machine
	}
	if !cfg.lint {
		if cfg.nest != 0 {
			req["nest"] = cfg.nest
		}
		if cfg.mesi {
			req["mesi"] = true
		}
	}
	return json.Marshal(req)
}

// send POSTs the request under the retry policy: 429/503 and transport
// errors retry with full-jitter backoff floored by the server's
// Retry-After; other statuses return the response (or its error body)
// immediately.
func send(ctx context.Context, cfg config, body []byte) ([]byte, error) {
	path := "/v1/analyze"
	if cfg.lint {
		path = "/v1/lint"
	}
	url := cfg.addr + path
	var out []byte
	p := retry.Policy{MaxAttempts: cfg.retries, Seed: cfg.seed, Sleep: cfg.sleep}
	err := retry.Do(ctx, p, func(attempt int) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return retry.Retryable(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			return retry.Retryable(err)
		}
		switch {
		case resp.StatusCode == http.StatusOK:
			out = b
			return nil
		case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
			return &retry.Err{
				Cause:      fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(b)),
				RetryAfter: retry.AfterHeader(resp.Header),
			}
		}
		return fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(b))
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
