package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/retry"
)

// TestSendRetriesThrottledThenSucceeds drives send against a server
// that throttles the first attempt with a Retry-After hint and accepts
// the second: the client must honor the hint (sleep at least that long)
// and return the eventual body.
func TestSendRetriesThrottledThenSucceeds(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/analyze" {
			t.Errorf("unexpected path %s", r.URL.Path)
		}
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "2")
			http.Error(w, `{"error":{"code":429,"message":"queue full"}}`, http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`{"kind":"heat","fs_cases":42}`))
	}))
	defer srv.Close()

	var slept []time.Duration
	cfg := config{addr: srv.URL, retries: 4, sleep: func(d time.Duration) { slept = append(slept, d) }}
	out, err := send(context.Background(), cfg, []byte(`{"kernel":"heat"}`))
	if err != nil {
		t.Fatalf("send: %v", err)
	}
	if !bytes.Contains(out, []byte(`"fs_cases":42`)) {
		t.Fatalf("unexpected body %s", out)
	}
	if calls.Load() != 2 {
		t.Fatalf("server saw %d calls, want 2", calls.Load())
	}
	if len(slept) != 1 || slept[0] < 2*time.Second {
		t.Fatalf("slept %v, want one wait of at least the 2s Retry-After hint", slept)
	}
}

// TestSendFailsFastOnBadRequest pins that 4xx responses other than 429
// do not retry.
func TestSendFailsFastOnBadRequest(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":{"code":400,"message":"no nest"}}`, http.StatusBadRequest)
	}))
	defer srv.Close()

	cfg := config{addr: srv.URL, retries: 5, sleep: func(time.Duration) { t.Error("slept on a non-retryable error") }}
	_, err := send(context.Background(), cfg, []byte(`{}`))
	if err == nil || !strings.Contains(err.Error(), "no nest") {
		t.Fatalf("send = %v, want the 400 body surfaced", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("server saw %d calls, want 1 (fail fast)", calls.Load())
	}
}

// TestSendExhaustsRetries pins that a persistently throttling server
// eventually surfaces the 429 cause after MaxAttempts tries.
func TestSendExhaustsRetries(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "queue full", http.StatusTooManyRequests)
	}))
	defer srv.Close()

	cfg := config{addr: srv.URL, retries: 3, sleep: func(time.Duration) {}}
	_, err := send(context.Background(), cfg, []byte(`{}`))
	if err == nil || !strings.Contains(err.Error(), "429") {
		t.Fatalf("send = %v, want a 429 failure", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want 3", calls.Load())
	}
}

// TestSendSetsDeadlineHeader pins that -deadline travels to the server
// as X-Request-Deadline so the queue can evict unmeetable waits.
func TestSendSetsDeadlineHeader(t *testing.T) {
	var header atomic.Value
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		header.Store(r.Header.Get("X-Request-Deadline"))
		w.Write([]byte(`{}`))
	}))
	defer srv.Close()

	cfg := config{addr: srv.URL, retries: 1, deadline: 1500 * time.Millisecond}
	if _, err := send(context.Background(), cfg, []byte(`{}`)); err != nil {
		t.Fatalf("send: %v", err)
	}
	if got := header.Load(); got != "1.5s" {
		t.Fatalf("X-Request-Deadline = %q, want \"1.5s\"", got)
	}
}

// slowReplicaServer is the fault-injected replica: every third arrival
// stalls for stall (honoring request cancellation — an abandoned loser
// must stop consuming the handler); the rest answer immediately.
func slowReplicaServer(t *testing.T, stall time.Duration) *httptest.Server {
	t.Helper()
	var arrivals atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if arrivals.Add(1)%3 == 0 {
			select {
			case <-time.After(stall):
			case <-r.Context().Done():
				return
			}
		}
		w.Write([]byte(`{"kind":"heat"}`))
	}))
	t.Cleanup(srv.Close)
	return srv
}

// TestSendHedgedBeatsSlowReplica is the acceptance test for -hedge: the
// tail of a replica that stalls every third request. A hedged client's
// p99 must beat the non-hedged client's by a wide margin, because the
// backup request fired after the hedge delay lands on the fast path
// while the stalled primary is cancelled.
func TestSendHedgedBeatsSlowReplica(t *testing.T) {
	const (
		stall = 250 * time.Millisecond
		calls = 30
	)
	measure := func(cfg config) []time.Duration {
		lat := make([]time.Duration, calls)
		for i := range lat {
			start := time.Now()
			if _, err := send(context.Background(), cfg, []byte(`{"kernel":"heat"}`)); err != nil {
				t.Fatalf("send %d: %v", i, err)
			}
			lat[i] = time.Since(start)
		}
		sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
		return lat
	}
	p99 := func(lat []time.Duration) time.Duration { return lat[(len(lat)*99)/100] }

	plainSrv := slowReplicaServer(t, stall)
	plain := p99(measure(config{addr: plainSrv.URL, retries: 1}))

	// A pinned hedge delay and a generous token budget keep the test
	// deterministic: every stalled primary may hedge.
	hedgedSrv := slowReplicaServer(t, stall)
	hedged := p99(measure(config{
		addr:    hedgedSrv.URL,
		retries: 1,
		hedger: retry.NewHedger(retry.HedgeConfig{
			MaxDelay:       25 * time.Millisecond,
			MinDelay:       25 * time.Millisecond,
			EarnPerPrimary: 1,
			MaxTokens:      float64(calls),
		}),
	}))

	if plain < stall {
		t.Fatalf("non-hedged p99 = %v, want >= the %v stall (fault injection broken)", plain, stall)
	}
	if hedged >= plain/2 {
		t.Fatalf("hedged p99 = %v, want well under non-hedged p99 %v", hedged, plain)
	}
}

// TestRunKernelRequest exercises the CLI end to end: flags build the
// request body, the response prints to stdout, exit status is 0.
func TestRunKernelRequest(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req map[string]any
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("decoding request: %v", err)
		}
		if req["kernel"] != "heat" || req["threads"] != float64(48) || req["mesi"] != true {
			t.Errorf("unexpected request %v", req)
		}
		w.Write([]byte(`{"kind":"heat"}`))
	}))
	defer srv.Close()

	var stdout, stderr bytes.Buffer
	code := run([]string{"-addr", srv.URL, "-kernel", "heat", "-threads", "48", "-mesi"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, stderr.String())
	}
	if got := stdout.String(); got != "{\"kind\":\"heat\"}\n" {
		t.Fatalf("stdout = %q", got)
	}
}

// TestRunLintFile posts a source file to /v1/lint.
func TestRunLintFile(t *testing.T) {
	src := "double a[64];\n#pragma omp parallel for\nfor (i = 0; i < 64; i++) a[i] = i;\n"
	path := filepath.Join(t.TempDir(), "k.c")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/lint" {
			t.Errorf("unexpected path %s", r.URL.Path)
		}
		var req map[string]any
		json.NewDecoder(r.Body).Decode(&req)
		if req["source"] != src {
			t.Errorf("source not forwarded: %v", req["source"])
		}
		w.Write([]byte(`{"findings":[]}` + "\n"))
	}))
	defer srv.Close()

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-addr", srv.URL, "-lint", path}, &stdout, &stderr); code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, stderr.String())
	}
	if got := stdout.String(); got != "{\"findings\":[]}\n" {
		t.Fatalf("stdout = %q", got)
	}
}

// TestRunUsageErrors pins exit status 2 for bad invocations.
func TestRunUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{},                             // neither -kernel nor a file
		{"-kernel", "heat", "extra.c"}, // both
		{"-no-such-flag"},              // flag parse error
		{"a.c", "b.c"},                 // too many files
	} {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("run(%v) = %d, want 2", args, code)
		}
	}
}

// TestRunRequestFailure pins exit status 1 when the server rejects the
// request.
func TestRunRequestFailure(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv.Close()

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-addr", srv.URL, "-kernel", "heat"}, &stdout, &stderr); code != 1 {
		t.Fatalf("run = %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "boom") {
		t.Fatalf("stderr = %q, want the server error surfaced", stderr.String())
	}
}

// TestSplitAddrs pins the -addr list parsing: commas split, whitespace
// trims, empties drop, trailing slashes strip.
func TestSplitAddrs(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want []string
	}{
		{"http://a:1", []string{"http://a:1"}},
		{"http://a:1,http://b:2", []string{"http://a:1", "http://b:2"}},
		{" http://a:1 , http://b:2/ ", []string{"http://a:1", "http://b:2"}},
		{"http://a:1,,http://b:2,", []string{"http://a:1", "http://b:2"}},
		{"", nil},
		{" , ", nil},
	} {
		got := splitAddrs(tc.in)
		if len(got) != len(tc.want) {
			t.Errorf("splitAddrs(%q) = %v, want %v", tc.in, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("splitAddrs(%q)[%d] = %q, want %q", tc.in, i, got[i], tc.want[i])
			}
		}
	}
}

// TestSendMultiAddrFailover is the table-driven failover test for a
// comma-separated -addr list: attempt n targets node n mod len(addrs),
// so dead nodes cost one backoff step each and the request lands on the
// first live node in rotation.
func TestSendMultiAddrFailover(t *testing.T) {
	// A dead node: bind a port to learn its address, then close it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := "http://" + ln.Addr().String()
	ln.Close()

	for _, tc := range []struct {
		name      string
		addrs     func(live string) string
		retries   int
		wantErr   bool
		wantCalls int32 // calls the live node must see
	}{
		{
			name:      "first node dead, second answers",
			addrs:     func(live string) string { return deadAddr + "," + live },
			retries:   2,
			wantCalls: 1,
		},
		{
			name:      "first node answers, no failover",
			addrs:     func(live string) string { return live + "," + deadAddr },
			retries:   4,
			wantCalls: 1,
		},
		{
			name:      "list with whitespace and trailing slash",
			addrs:     func(live string) string { return " " + deadAddr + " , " + live + "/ " },
			retries:   2,
			wantCalls: 1,
		},
		{
			name:    "all nodes dead",
			addrs:   func(string) string { return deadAddr + "," + deadAddr },
			retries: 3,
			wantErr: true,
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var calls atomic.Int32
			live := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				calls.Add(1)
				w.Write([]byte(`{"kind":"heat"}`))
			}))
			defer live.Close()

			cfg := config{retries: tc.retries, sleep: func(time.Duration) {}}
			cfg.addrs = splitAddrs(tc.addrs(live.URL))
			out, err := send(context.Background(), cfg, []byte(`{"kernel":"heat"}`))
			if tc.wantErr {
				if err == nil {
					t.Fatal("send succeeded against dead nodes")
				}
				return
			}
			if err != nil {
				t.Fatalf("send: %v", err)
			}
			if !bytes.Contains(out, []byte(`"kind":"heat"`)) {
				t.Fatalf("unexpected body %s", out)
			}
			if calls.Load() != tc.wantCalls {
				t.Fatalf("live node saw %d calls, want %d", calls.Load(), tc.wantCalls)
			}
		})
	}
}

// TestSendHedgeTargetsOtherNode pins that with a multi-node list a
// hedged backup goes to the next node, not the stalled primary: the
// primary never answers, yet the exchange completes via the backup.
func TestSendHedgeTargetsOtherNode(t *testing.T) {
	var primaryCalls, backupCalls atomic.Int32
	release := make(chan struct{})
	primary := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		primaryCalls.Add(1)
		// Stall until the winner cancels us (or teardown releases us —
		// the server cannot always observe the abandoned client).
		select {
		case <-r.Context().Done():
		case <-release:
		}
	}))
	defer primary.Close()
	defer close(release)
	backup := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		backupCalls.Add(1)
		w.Write([]byte(`{"kind":"heat"}`))
	}))
	defer backup.Close()

	cfg := config{
		retries: 1,
		hedger: retry.NewHedger(retry.HedgeConfig{
			MinDelay: 10 * time.Millisecond,
			MaxDelay: 10 * time.Millisecond,
		}),
	}
	cfg.addrs = splitAddrs(primary.URL + "," + backup.URL)
	out, err := send(context.Background(), cfg, []byte(`{"kernel":"heat"}`))
	if err != nil {
		t.Fatalf("send: %v", err)
	}
	if !bytes.Contains(out, []byte(`"kind":"heat"`)) {
		t.Fatalf("unexpected body %s", out)
	}
	if primaryCalls.Load() != 1 || backupCalls.Load() != 1 {
		t.Fatalf("primary=%d backup=%d calls, want 1 and 1", primaryCalls.Load(), backupCalls.Load())
	}
}
