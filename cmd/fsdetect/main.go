// Command fsdetect runs the compile-time false-sharing analysis on a
// mini-C source file containing OpenMP parallel loops and reports, per
// loop nest, the modeled FS case count, the FS share of execution time,
// the victim references (which data structure suffers), and — when FS is
// significant — the chunk size the cost model recommends.
//
// Usage:
//
//	fsdetect [-threads N] [-chunk C] [-mesi] file.c
//	fsdetect -kernel heat          # analyze a built-in paper kernel
//
// Exit status is 0 on success, 1 on analysis or I/O errors, and 2 on
// usage errors.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro"
	"repro/internal/fsmodel"
	"repro/internal/guard"
	"repro/internal/kernels"
	"repro/internal/sweep"
)

type config struct {
	threads   int
	chunk     int64
	mesi      bool
	recommend bool
	jsonOut   bool
	lines     bool
	jobs      int
	timeout   time.Duration
	eval      string
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable main: flag errors exit 2, analysis errors exit 1.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fsdetect", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var cfg config
	fs.IntVar(&cfg.threads, "threads", 8, "thread count (pragma num_threads wins)")
	fs.Int64Var(&cfg.chunk, "chunk", 1, "schedule chunk size (pragma schedule wins)")
	fs.BoolVar(&cfg.mesi, "mesi", false, "MESI-faithful counting instead of the paper's ϕ")
	kernel := fs.String("kernel", "", "analyze a built-in kernel (heat, dft, linreg) instead of a file")
	fs.BoolVar(&cfg.recommend, "recommend", true, "recommend a chunk size when FS is significant")
	fs.BoolVar(&cfg.jsonOut, "json", false, "emit the report as JSON for tooling")
	fs.BoolVar(&cfg.lines, "lines", false, "also report the hottest cache lines")
	fs.IntVar(&cfg.jobs, "j", 0, "worker count for analyzing nests in parallel (0 = GOMAXPROCS); output is identical for every value")
	fs.DurationVar(&cfg.timeout, "timeout", 0, "abort the analysis after this long (0 = no limit)")
	fs.StringVar(&cfg.eval, "eval", "auto", "model evaluation pipeline: auto, compiled or interpreted (identical counts)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if _, err := fsmodel.EvalModeFromString(cfg.eval); err != nil {
		fmt.Fprintln(stderr, "fsdetect: -eval:", err)
		return 2
	}

	src, err := loadSource(*kernel, cfg.threads, fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, "fsdetect:", err)
		return 1
	}
	ctx := context.Background()
	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
	}
	// guard.Do turns an evaluator panic into an ordinary exit-1 error
	// instead of a crash.
	if err := guard.Do(func() error { return detect(ctx, src, cfg, stdout) }); err != nil {
		fmt.Fprintln(stderr, "fsdetect:", err)
		return 1
	}
	return 0
}

// loadSource resolves the analyzed source from either a built-in kernel
// name or a file argument.
func loadSource(kernel string, threads int, args []string) (string, error) {
	switch {
	case kernel != "":
		k, err := kernels.ByName(kernel, threads)
		if err != nil {
			return "", err
		}
		return k.Source, nil
	case len(args) == 1:
		data, err := os.ReadFile(args[0])
		if err != nil {
			return "", err
		}
		return string(data), nil
	}
	return "", fmt.Errorf("usage: fsdetect [flags] file.c  (or -kernel heat|dft|linreg)")
}

// jsonReport is the machine-readable form of one nest's analysis.
type jsonReport struct {
	Nest             int            `json:"nest"`
	Parallel         bool           `json:"parallel"`
	Threads          int            `json:"threads,omitempty"`
	Chunk            int64          `json:"chunk,omitempty"`
	FSCases          int64          `json:"fs_cases"`
	FSShare          float64        `json:"fs_share"`
	Iterations       int64          `json:"iterations"`
	Victims          []repro.Victim `json:"victims,omitempty"`
	SkippedRefs      []string       `json:"skipped_refs,omitempty"`
	RecommendedChunk int64          `json:"recommended_chunk,omitempty"`
}

// detectJSON runs the analysis and writes one JSON document with a report
// per nest. Nests are analyzed on the sweep pool and reported in nest
// order, so the document is identical for every -j value.
func detectJSON(ctx context.Context, src string, cfg config, w io.Writer) error {
	prog, err := repro.Parse(src)
	if err != nil {
		return err
	}
	opts := repro.Options{Threads: cfg.threads, Chunk: cfg.chunk, MESICounting: cfg.mesi, Eval: cfg.eval}
	reports, err := sweep.Run(ctx, prog.NumNests(), cfg.jobs, func(ctx context.Context, i int) (jsonReport, error) {
		info, err := prog.Nest(i)
		if err != nil {
			return jsonReport{}, err
		}
		rep := jsonReport{Nest: i, Parallel: info.ParallelLevel >= 0}
		if rep.Parallel {
			a, err := prog.Analyze(i, opts)
			if err != nil {
				return jsonReport{}, err
			}
			rep.Threads = a.Threads
			rep.Chunk = a.Chunk
			rep.FSCases = a.FSCases
			rep.FSShare = a.FSShare
			rep.Iterations = a.Iterations
			rep.Victims = a.Victims
			rep.SkippedRefs = a.SkippedRefs
			if cfg.recommend && a.FSShare > 0.05 {
				rec, err := prog.RecommendChunkCtx(ctx, i, opts, nil)
				if err != nil {
					return jsonReport{}, err
				}
				rep.RecommendedChunk = rec.Chunk
			}
		}
		return rep, nil
	})
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(reports)
}

// detect runs the analysis and writes the report.
func detect(ctx context.Context, src string, cfg config, w io.Writer) error {
	if cfg.jsonOut {
		return detectJSON(ctx, src, cfg, w)
	}
	prog, err := repro.Parse(src)
	if err != nil {
		return err
	}
	for _, warn := range prog.Warnings() {
		fmt.Fprintf(w, "warning: %s\n", warn)
	}
	opts := repro.Options{Threads: cfg.threads, Chunk: cfg.chunk, MESICounting: cfg.mesi, TrackHotLines: cfg.lines, Eval: cfg.eval}

	// Each nest's section renders into its own buffer on the sweep pool;
	// sections are concatenated in nest order, so the report is identical
	// for every -j value.
	sections, err := sweep.Run(ctx, prog.NumNests(), cfg.jobs, func(ctx context.Context, i int) ([]byte, error) {
		var buf bytes.Buffer
		if err := detectNest(ctx, prog, i, cfg, opts, &buf); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	})
	if err != nil {
		return err
	}
	for _, s := range sections {
		if _, err := w.Write(s); err != nil {
			return err
		}
	}
	return nil
}

// detectNest writes the report section for one loop nest.
func detectNest(ctx context.Context, prog *repro.Program, i int, cfg config, opts repro.Options, w io.Writer) error {
	info, err := prog.Nest(i)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "=== loop nest %d (depth %d, parallel level %d) ===\n", i, info.Depth, info.ParallelLevel)
	fmt.Fprint(w, info.Description)
	if info.ParallelLevel < 0 {
		fmt.Fprintln(w, "sequential nest: no false sharing possible")
		return nil
	}
	if len(info.SymbolicParams) > 0 {
		// Bounds unknown at compile time: the paper's fallback is an
		// FS rate per chunk run.
		rate, err := prog.AnalyzeRate(i, opts, 16)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "loop bounds unknown at compile time (%v): reporting FS rate\n", info.SymbolicParams)
		fmt.Fprintf(w, "threads=%d chunk=%d: %.1f false-sharing cases per chunk run (over %d evaluated runs)\n",
			rate.Threads, rate.Chunk, rate.FSPerChunkRun, rate.RunsEvaluated)
		fmt.Fprintln(w)
		return nil
	}
	a, err := prog.Analyze(i, opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "threads=%d chunk=%d: %d false-sharing cases over %d iterations (%.3f per iteration)\n",
		a.Threads, a.Chunk, a.FSCases, a.Iterations, a.FSPerIteration)
	fmt.Fprintf(w, "modeled share of execution time lost to false sharing: %.1f%%\n", a.FSShare*100)
	for _, v := range a.Victims {
		mode := "read"
		if v.Write {
			mode = "write"
		}
		fmt.Fprintf(w, "  victim: %-24s (%s, %d cases, %.0f%%)\n",
			v.Ref, mode, v.FSCases, 100*float64(v.FSCases)/float64(a.FSCases))
	}
	for _, h := range a.HotLines {
		fmt.Fprintf(w, "  hot line: %s+%d (%d cases)\n", h.Symbol, h.Offset, h.FSCases)
	}
	for _, s := range a.SkippedRefs {
		fmt.Fprintf(w, "  (excluded non-affine reference: %s)\n", s)
	}
	if cfg.recommend && a.FSShare > 0.05 {
		rec, err := prog.RecommendChunkCtx(ctx, i, opts, nil)
		if err != nil {
			return err
		}
		if rec.Chunk != a.Chunk {
			fmt.Fprintf(w, "recommendation: schedule(static,%d) — modeled FS cases drop to %d\n",
				rec.Chunk, rec.FSCases)
		}
	}
	fmt.Fprintln(w)
	return nil
}
