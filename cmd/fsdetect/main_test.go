package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestDetectBuiltinLinReg(t *testing.T) {
	src, err := loadSource("linreg", 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := detect(context.Background(), src, config{threads: 8, chunk: 1, recommend: true}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"false-sharing cases",
		"victim: tid_args",
		"recommendation: schedule(static,",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The points array is read-only shared and must not be blamed.
	if strings.Contains(out, "victim: points") {
		t.Errorf("points wrongly blamed:\n%s", out)
	}
}

func TestDetectFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "victim.c")
	src := `
#define N 256
double a[N];
#pragma omp parallel for schedule(static,1) num_threads(4)
for (i = 0; i < N; i++) a[i] += 1.0;
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := loadSource("", 4, []string{path})
	if err != nil {
		t.Fatal(err)
	}
	if got != src {
		t.Fatal("file contents mismatch")
	}
	var buf bytes.Buffer
	if err := detect(context.Background(), got, config{threads: 4, chunk: 1}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "victim: a[i]") {
		t.Errorf("missing victim attribution:\n%s", buf.String())
	}
}

func TestDetectSequentialNest(t *testing.T) {
	var buf bytes.Buffer
	err := detect(context.Background(), `
double a[8];
for (i = 0; i < 8; i++) a[i] = 1.0;
`, config{threads: 4, chunk: 1}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no false sharing possible") {
		t.Errorf("sequential nest not reported:\n%s", buf.String())
	}
}

func TestDetectParseError(t *testing.T) {
	var buf bytes.Buffer
	if err := detect(context.Background(), "for (i = 0; j < 4; i++) x = 1;", config{}, &buf); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestLoadSourceErrors(t *testing.T) {
	if _, err := loadSource("", 4, nil); err == nil {
		t.Fatal("no input should error")
	}
	if _, err := loadSource("bogus", 4, nil); err == nil {
		t.Fatal("unknown kernel should error")
	}
	if _, err := loadSource("", 4, []string{"/nonexistent/file.c"}); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestDetectJSON(t *testing.T) {
	src := `
#define N 256
double a[N];
#pragma omp parallel for schedule(static,1) num_threads(4)
for (i = 0; i < N; i++) a[i] += 1.0;
`
	var buf bytes.Buffer
	if err := detect(context.Background(), src, config{threads: 4, chunk: 1, recommend: true, jsonOut: true}, &buf); err != nil {
		t.Fatal(err)
	}
	var reports []jsonReport
	if err := json.Unmarshal(buf.Bytes(), &reports); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(reports) != 1 || !reports[0].Parallel {
		t.Fatalf("reports = %+v", reports)
	}
	r := reports[0]
	// The compound += issues the read first, so the read reference absorbs
	// the FS attribution for its line.
	if r.FSCases == 0 || r.FSShare <= 0 || len(r.Victims) != 1 || r.Victims[0].Symbol != "a" {
		t.Fatalf("report = %+v", r)
	}
	if r.RecommendedChunk < 8 {
		t.Fatalf("recommended chunk = %d", r.RecommendedChunk)
	}
}

func TestDetectHotLines(t *testing.T) {
	src := `
#define N 64
double a[N];
#pragma omp parallel for schedule(static,1) num_threads(4)
for (i = 0; i < N; i++) a[i] += 1.0;
`
	var buf bytes.Buffer
	if err := detect(context.Background(), src, config{threads: 4, chunk: 1, lines: true}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "hot line: a+") {
		t.Fatalf("hot lines missing:\n%s", buf.String())
	}
}

// TestDetectDeterministicAcrossJobs diffs the full report between -j 1 and
// -j 8: parallel nest analysis must not change a byte of output.
func TestDetectDeterministicAcrossJobs(t *testing.T) {
	src := `
#define N 256
double a[N];
double b[N];
#pragma omp parallel for schedule(static,1) num_threads(4)
for (i = 0; i < N; i++) a[i] += 1.0;
for (i = 0; i < N; i++) b[i] = 0.0;
#pragma omp parallel for schedule(static,2) num_threads(4)
for (i = 0; i < N; i++) b[i] += a[i];
`
	for _, jsonOut := range []bool{false, true} {
		var serial, parallel bytes.Buffer
		cfgSerial := config{threads: 4, chunk: 1, recommend: true, lines: true, jsonOut: jsonOut, jobs: 1}
		cfgParallel := cfgSerial
		cfgParallel.jobs = 8
		if err := detect(context.Background(), src, cfgSerial, &serial); err != nil {
			t.Fatal(err)
		}
		if err := detect(context.Background(), src, cfgParallel, &parallel); err != nil {
			t.Fatal(err)
		}
		if serial.String() != parallel.String() {
			t.Errorf("jsonOut=%v: -j 1 and -j 8 outputs differ:\n--- -j 1 ---\n%s\n--- -j 8 ---\n%s",
				jsonOut, serial.String(), parallel.String())
		}
	}
}
