package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunExitCodes pins the CLI error contract: flag/usage errors exit 2,
// input and analysis errors exit 1 with a diagnostic on stderr, success
// exits 0 with the report on stdout.
func TestRunExitCodes(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "victim.c")
	if err := os.WriteFile(good, []byte(`
#define N 256
double a[N];
#pragma omp parallel for schedule(static,1) num_threads(4)
for (i = 0; i < N; i++) a[i] += 1.0;
`), 0o644); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "bad.c")
	if err := os.WriteFile(bad, []byte("for (i = 0; j < 4; i++) x = 1;"), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name       string
		args       []string
		wantCode   int
		wantStderr string
		wantStdout string
	}{
		{"success", []string{good}, 0, "", "false-sharing cases"},
		{"unknown flag", []string{"-no-such-flag"}, 2, "flag provided but not defined", ""},
		{"bad flag value", []string{"-threads", "many", good}, 2, "invalid value", ""},
		{"no input", nil, 1, "usage: fsdetect", ""},
		{"two files", []string{good, bad}, 1, "usage: fsdetect", ""},
		{"unknown kernel", []string{"-kernel", "bogus"}, 1, "valid kernels: heat, dft, linreg", ""},
		{"missing file", []string{filepath.Join(dir, "nope.c")}, 1, "no such file", ""},
		{"parse error", []string{bad}, 1, "fsdetect:", ""},
		{"timeout", []string{"-timeout", "1ns", good}, 1, "context deadline exceeded", ""},
		{"bad eval mode", []string{"-eval", "fancy", good}, 2, "unknown eval mode", ""},
		{"interpreted eval", []string{"-eval", "interpreted", good}, 0, "", "false-sharing cases"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr strings.Builder
			code := run(tc.args, &stdout, &stderr)
			if code != tc.wantCode {
				t.Errorf("run(%v) = %d, want %d (stderr: %s)", tc.args, code, tc.wantCode, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.wantStderr) {
				t.Errorf("stderr = %q, want it to contain %q", stderr.String(), tc.wantStderr)
			}
			if !strings.Contains(stdout.String(), tc.wantStdout) {
				t.Errorf("stdout = %q, want it to contain %q", stdout.String(), tc.wantStdout)
			}
		})
	}
}
