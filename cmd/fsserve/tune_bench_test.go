package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"testing"
	"time"

	"repro/internal/fsmodel"
	"repro/internal/kernels"
	"repro/internal/service"
	"repro/internal/tuner"
)

// TestGenerateTuneBench measures the auto-tuner for BENCH_tune.json:
// candidate throughput of the fast (closed-form) tier versus the exact
// (simulator) tier, derived from the tuner's own phase timings over the
// examples/tune corpus, and cache-hit vs cache-miss throughput of
// POST /v1/tune over loopback HTTP. Gated behind the output path:
//
//	FSTUNE_BENCH_OUT=BENCH_tune.json go test ./cmd/fsserve -run TestGenerateTuneBench -v
func TestGenerateTuneBench(t *testing.T) {
	out := os.Getenv("FSTUNE_BENCH_OUT")
	if out == "" {
		t.Skip("set FSTUNE_BENCH_OUT=path to run the tune benchmark")
	}

	// Tier throughput: run the full search repeatedly with Jobs=1 (so the
	// verify phase is sequential and its wall time is per-candidate cost)
	// and divide candidates by phase seconds. The score phase is the fast
	// tier over every enumerated plan; the verify phase is the simulator
	// over the beam finalists plus the baseline.
	const tuneRuns = 20
	var scoreSec, verifySec float64
	var scored, verified int
	tiers := map[string]any{}
	for _, file := range []string{"heat.c", "dft.c", "linreg.c"} {
		src, err := os.ReadFile(filepath.Join("..", "..", "examples", "tune", file))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < tuneRuns; i++ {
			res, err := tuner.Tune(context.Background(), string(src), tuner.Options{
				Eval: fsmodel.EvalCompiled,
				Jobs: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			scoreSec += res.PhaseSeconds("score")
			verifySec += res.PhaseSeconds("verify")
			scored += len(res.Candidates)
			nVerified := 1 // baseline
			for _, c := range res.Candidates {
				if c.Verified {
					nVerified++
				}
			}
			verified += nVerified
		}
	}
	cfPerS := float64(scored) / scoreSec
	simPerS := float64(verified) / verifySec
	tiers["closed_form_candidates_per_s"] = cfPerS
	tiers["simulator_candidates_per_s"] = simPerS
	tiers["fast_vs_exact_x"] = cfPerS / simPerS
	t.Logf("fast tier %.0f cand/s, exact tier %.0f cand/s (%.1fx)", cfPerS, simPerS, cfPerS/simPerS)

	// Service throughput: distinct heat geometries miss the cache and run
	// the full search; one repeated request replays the cached bytes.
	base, stop := startE2E(t, service.Config{EvalMode: "compiled"})
	defer stop()
	const (
		missN = 12
		hitN  = 400
	)
	miss := measureTune(t, base, missN, func(i int) string {
		body, _ := json.Marshal(map[string]any{"source": kernels.HeatSource(16, int64(512+64*i)), "threads": 8})
		return string(body)
	})
	miss.Kernel, miss.Mode, miss.Eval = "heat", "cache-miss", "compiled"
	hitBody := `{"kernel":"heat","threads":8}`
	postJSON(t, base+"/v1/tune", hitBody) // warm the cache
	hit := measureTune(t, base, hitN, func(int) string { return hitBody })
	hit.Kernel, hit.Mode = "heat", "cache-hit"
	t.Logf("tune miss p50 %.1fms, hit %.0f req/s, hit/miss %.0fx", miss.P50Ms, hit.ReqPerS, hit.ReqPerS/miss.ReqPerS)
	if hit.ReqPerS < 10*miss.ReqPerS {
		t.Errorf("cache-hit throughput only %.1fx cache-miss, want >= 10x", hit.ReqPerS/miss.ReqPerS)
	}

	doc := map[string]any{
		"date": time.Now().Format("2006-01-02"),
		"host": map[string]any{
			"goos":       runtime.GOOS,
			"goarch":     runtime.GOARCH,
			"cores":      runtime.NumCPU(),
			"gomaxprocs": runtime.GOMAXPROCS(0),
		},
		"config": map[string]any{
			"note": "tier rows: tuner.Tune with Jobs=1 over examples/tune (heat, dft, linreg), " +
				"candidates divided by the report's own score/verify phase seconds; service rows: " +
				"sequential client over loopback HTTP against cmd/fsserve POST /v1/tune, cache-miss " +
				"varies the heat geometry per request, cache-hit repeats one identical request",
			"tune_runs_per_kernel": tuneRuns,
			"miss_requests":        missN,
			"hit_requests":         hitN,
		},
		"tiers":           tiers,
		"service":         []benchResult{miss, hit},
		"hit_vs_miss_x":   hit.ReqPerS / miss.ReqPerS,
		"acceptance_note": "cache-hit >= 10x cache-miss /v1/tune throughput; fast tier must out-throughput the simulator tier",
	}
	f, err := os.Create(out)
	if err != nil {
		t.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}

// measureTune issues n sequential /v1/tune requests and reports
// throughput and latency percentiles.
func measureTune(t *testing.T, base string, n int, body func(i int) string) benchResult {
	t.Helper()
	lat := make([]float64, n)
	start := time.Now()
	for i := 0; i < n; i++ {
		reqStart := time.Now()
		status, b := postJSON(t, base+"/v1/tune", body(i))
		if status != 200 {
			t.Fatalf("request %d: status %d: %s", i, status, b)
		}
		lat[i] = float64(time.Since(reqStart).Microseconds()) / 1000
	}
	total := time.Since(start).Seconds()
	sort.Float64s(lat)
	return benchResult{
		Requests: n,
		ReqPerS:  float64(n) / total,
		P50Ms:    lat[n/2],
		P99Ms:    lat[min(n-1, (99*n+99)/100-1)],
	}
}
