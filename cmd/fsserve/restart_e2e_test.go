package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/service"
)

// warmConfig is the restart-test service config: snapshots go to dir,
// with the periodic writer effectively off so the drain-time write is
// the one under test.
func warmConfig(dir string) service.Config {
	return service.Config{CacheDir: dir, SnapshotInterval: time.Hour}
}

// restartBodies posts n distinct analyses and returns their bodies in
// request order.
func restartBodies(t *testing.T, base string, n int) [][]byte {
	t.Helper()
	bodies := make([][]byte, n)
	for i := range bodies {
		status, b := postJSON(t, base+"/v1/analyze",
			fmt.Sprintf(`{"kernel":"heat","threads":8,"chunk":%d}`, 1<<i))
		if status != 200 {
			t.Fatalf("analyze %d: status %d: %s", i, status, b)
		}
		bodies[i] = b
	}
	return bodies
}

// TestE2ERestartWarmCache is the restart-durability acceptance test: a
// server answers a working set, shuts down (writing its drain-time
// snapshot), and a fresh process on the same -cache-dir replays every
// answer byte-identically with the evaluation counter pinned at zero.
func TestE2ERestartWarmCache(t *testing.T) {
	dir := t.TempDir()
	const n = 3

	base, stop := startE2E(t, warmConfig(dir))
	bodies := restartBodies(t, base, n)
	if evals := scrapeMetric(t, base, "fsserve_evaluations_total"); evals != n {
		t.Fatalf("first life evaluated %v, want %d", evals, n)
	}
	if err := stop(); err != nil {
		t.Fatalf("first shutdown: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "results.fssnap")); err != nil {
		t.Fatalf("drain-time snapshot missing: %v", err)
	}

	// Second life: the snapshot restores the cache before the listener
	// opens, so the replay is pure cache hits.
	base, stop = startE2E(t, warmConfig(dir))
	defer stop()
	if got := scrapeMetric(t, base, "fsserve_snapshot_records_restored_total"); got != n {
		t.Errorf("restored %v records, want %d", got, n)
	}
	if got := scrapeMetric(t, base, "fsserve_snapshot_records_dropped_total"); got != 0 {
		t.Errorf("dropped %v records from a clean snapshot", got)
	}
	if age := scrapeMetric(t, base, "fsserve_snapshot_age_seconds"); age < 0 {
		t.Errorf("snapshot age = %v after restore, want >= 0", age)
	}
	replayed := restartBodies(t, base, n)
	for i := range bodies {
		if !bytes.Equal(bodies[i], replayed[i]) {
			t.Errorf("response %d changed across restart:\n%s\nvs\n%s", i, bodies[i], replayed[i])
		}
	}
	if evals := scrapeMetric(t, base, "fsserve_evaluations_total"); evals != 0 {
		t.Errorf("warm restart re-evaluated %v times, want 0", evals)
	}
	if hits := scrapeMetric(t, base, "fsserve_cache_hits_total"); hits != n {
		t.Errorf("cache hits = %v after replay, want %d", hits, n)
	}
}

// TestE2ERestartCorruptSnapshot pins the salvage contract end to end: a
// snapshot truncated mid-record never prevents startup — the intact
// prefix is restored, the damaged tail is dropped, and the metrics
// reconcile exactly (restored + dropped = declared). Records write in
// LRU-to-MRU order, so the survivors are the oldest entries and only
// the truncated tail needs re-evaluation.
func TestE2ERestartCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	const n = 3

	base, stop := startE2E(t, warmConfig(dir))
	bodies := restartBodies(t, base, n)
	if err := stop(); err != nil {
		t.Fatalf("first shutdown: %v", err)
	}

	// Tear bytes off the end: the last-written (most recent) record is
	// now torn, the first two stay intact.
	path := filepath.Join(dir, "results.fssnap")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	base, stop = startE2E(t, warmConfig(dir))
	defer stop()
	restored := scrapeMetric(t, base, "fsserve_snapshot_records_restored_total")
	dropped := scrapeMetric(t, base, "fsserve_snapshot_records_dropped_total")
	if restored != n-1 || dropped != 1 {
		t.Errorf("salvage restored %v / dropped %v, want %d / 1", restored, dropped, n-1)
	}

	// The salvaged prefix replays without evaluation; only the torn
	// record costs one.
	replayed := restartBodies(t, base, n)
	for i := range bodies {
		if !bytes.Equal(bodies[i], replayed[i]) {
			t.Errorf("response %d changed across corrupt restart:\n%s\nvs\n%s", i, bodies[i], replayed[i])
		}
	}
	if evals := scrapeMetric(t, base, "fsserve_evaluations_total"); evals != 1 {
		t.Errorf("salvaged restart evaluated %v times, want exactly 1 (the torn record)", evals)
	}
}
