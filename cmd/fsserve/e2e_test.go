package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/kernels"
	"repro/internal/service"
)

// startE2E boots the real server (the same serve function main drives) on
// an ephemeral port and returns its base URL plus a stop function that
// triggers graceful shutdown and returns serve's error.
func startE2E(t testing.TB, cfg service.Config) (string, func() error) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serve(ctx, ln, cfg, 30*time.Second) }()
	base := "http://" + ln.Addr().String()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == 200 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("server not ready: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	return base, func() error { cancel(); return <-done }
}

func postJSON(t testing.TB, url string, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// scrapeMetric fetches /metrics and returns the value of an un-labeled
// series.
func scrapeMetric(t testing.TB, base, name string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	for _, line := range strings.Split(string(b), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("bad metric line %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in:\n%s", name, b)
	return 0
}

// TestE2EDedup is acceptance criterion (a) and (c): 32 concurrent
// identical analyses cause exactly one model evaluation — pinned via the
// dedup/cache counters — and every response is byte-identical; /metrics
// then exposes nonzero request, cache and latency series.
func TestE2EDedup(t *testing.T) {
	base, stop := startE2E(t, service.Config{})
	defer stop()

	const n = 32
	body := `{"kernel":"heat","threads":8,"chunk":1}`
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		bodies [][]byte
	)
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
			status, b := postJSON(t, base+"/v1/analyze", body)
			if status != 200 {
				t.Errorf("status = %d: %s", status, b)
			}
			mu.Lock()
			bodies = append(bodies, b)
			mu.Unlock()
		}()
	}
	wg.Wait()
	for i := 1; i < len(bodies); i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("response %d differs:\n%s\nvs\n%s", i, bodies[0], bodies[i])
		}
	}

	if evals := scrapeMetric(t, base, "fsserve_evaluations_total"); evals != 1 {
		t.Errorf("evaluations = %v, want exactly 1 for %d identical requests", evals, n)
	}
	hits := scrapeMetric(t, base, "fsserve_cache_hits_total")
	coalesced := scrapeMetric(t, base, "fsserve_dedup_coalesced_total")
	if hits+coalesced != n-1 {
		t.Errorf("hits (%v) + coalesced (%v) = %v, want %d", hits, coalesced, hits+coalesced, n-1)
	}

	// (c) nonzero request, cache-hit and latency series.
	if v := scrapeMetric(t, base, `fsserve_eval_seconds_count{endpoint="analyze",mode="compiled"}`); v == 0 {
		t.Error("eval latency histogram empty")
	}
	if v := scrapeMetric(t, base, "fsserve_request_seconds_count"); v == 0 {
		t.Error("request latency histogram empty")
	}
	if hits == 0 {
		// With 32 racing requests at least one should land after the
		// evaluation finished; if all coalesced, that is fine too, but the
		// repeat below forces a hit either way.
		if status, _ := postJSON(t, base+"/v1/analyze", body); status != 200 {
			t.Fatalf("repeat status = %d", status)
		}
		if scrapeMetric(t, base, "fsserve_cache_hits_total") == 0 {
			t.Error("cache hit series still zero after a repeat request")
		}
	}
}

// TestE2EBatchMatchesCLI is acceptance criterion (b): a batch chunk sweep
// returns results in input order, and each point carries exactly the FS
// count and Equation 1 cycles that the fschunk CLI computes for the same
// source and candidates (both sit on RecommendChunk's evaluation).
func TestE2EBatchMatchesCLI(t *testing.T) {
	base, stop := startE2E(t, service.Config{})
	defer stop()

	src := `
#define N 256
double a[N];
#pragma omp parallel for num_threads(4)
for (i = 0; i < N; i++) a[i] += 1.0;
`
	chunks := []int64{1, 2, 4, 8, 16, 32, 64}
	breq, _ := json.Marshal(map[string]any{
		"template": map[string]any{"source": src, "threads": 4},
		"chunks":   chunks,
	})
	status, b := postJSON(t, base+"/v1/analyze/batch", string(breq))
	if status != 200 {
		t.Fatalf("status = %d: %s", status, b)
	}
	var bresp struct {
		Results []struct {
			Result json.RawMessage `json:"result"`
			Error  *struct{ Message string }
		} `json:"results"`
	}
	if err := json.Unmarshal(b, &bresp); err != nil {
		t.Fatal(err)
	}
	if len(bresp.Results) != len(chunks) {
		t.Fatalf("%d results for %d chunks", len(bresp.Results), len(chunks))
	}

	// What fschunk computes for the same inputs.
	prog, err := repro.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := prog.RecommendChunk(0, repro.Options{Threads: 4}, chunks)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range bresp.Results {
		if r.Error != nil {
			t.Fatalf("item %d: %+v", i, r.Error)
		}
		var item struct {
			Chunk       int64   `json:"chunk"`
			FSCases     int64   `json:"fs_cases"`
			TotalCycles float64 `json:"total_cycles"`
		}
		if err := json.Unmarshal(r.Result, &item); err != nil {
			t.Fatal(err)
		}
		want := rec.Evaluated[i]
		if item.Chunk != want.Chunk {
			t.Errorf("result %d: chunk %d, want %d (input order violated)", i, item.Chunk, want.Chunk)
		}
		if item.FSCases != want.FSCases || item.TotalCycles != want.TotalCycles {
			t.Errorf("chunk %d: service fs=%d cycles=%v, CLI fs=%d cycles=%v",
				want.Chunk, item.FSCases, item.TotalCycles, want.FSCases, want.TotalCycles)
		}
	}
}

// TestE2EShutdownDrains is acceptance criterion (d): shutdown while
// requests are running and queued completes them all — no dropped
// connections — and serve returns cleanly.
func TestE2EShutdownDrains(t *testing.T) {
	base, stop := startE2E(t, service.Config{MaxConcurrent: 1})

	// Four distinct analyses (~100ms each) through a single evaluation
	// slot: one runs, three queue behind it.
	const n = 4
	type outcome struct {
		status int
		err    error
	}
	results := make(chan outcome, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			src := kernels.HeatSource(96, int64(2048+64*i))
			body, _ := json.Marshal(map[string]any{"source": src, "threads": 8, "chunk": 1})
			resp, err := http.Post(base+"/v1/analyze", "application/json", bytes.NewReader(body))
			if err != nil {
				results <- outcome{err: err}
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			results <- outcome{status: resp.StatusCode}
		}(i)
	}

	// Wait until the server has admitted work, then shut down under load.
	deadline := time.Now().Add(5 * time.Second)
	for scrapeMetric(t, base, "fsserve_inflight_evaluations") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no evaluation admitted")
		}
		time.Sleep(2 * time.Millisecond)
	}
	stopErr := make(chan error, 1)
	go func() { stopErr <- stop() }()

	for i := 0; i < n; i++ {
		o := <-results
		if o.err != nil {
			t.Errorf("dropped connection during shutdown: %v", o.err)
		} else if o.status != 200 {
			t.Errorf("in-flight request finished with %d, want 200", o.status)
		}
	}
	if err := <-stopErr; err != nil {
		t.Errorf("serve returned %v after graceful shutdown", err)
	}
}
