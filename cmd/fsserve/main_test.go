package main

import (
	"strings"
	"testing"
)

// TestRunExitCodes pins the CLI error contract: flag/usage errors exit 2
// with a diagnostic on stderr, startup errors exit 1.
func TestRunExitCodes(t *testing.T) {
	cases := []struct {
		name       string
		args       []string
		wantCode   int
		wantStderr string
	}{
		{"unknown flag", []string{"-no-such-flag"}, 2, "flag provided but not defined"},
		{"extra args", []string{"-cache", "4", "stray"}, 2, "unexpected arguments"},
		{"bad log format", []string{"-log", "xml"}, 2, `unknown -log format "xml"`},
		{"bad duration", []string{"-timeout", "fast"}, 2, "invalid value"},
		{"unlistenable addr", []string{"-addr", "256.256.256.256:0"}, 1, "fsserve:"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr strings.Builder
			code := run(tc.args, &stdout, &stderr)
			if code != tc.wantCode {
				t.Errorf("run(%v) = %d, want %d (stderr: %s)", tc.args, code, tc.wantCode, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.wantStderr) {
				t.Errorf("stderr = %q, want it to contain %q", stderr.String(), tc.wantStderr)
			}
		})
	}
}
