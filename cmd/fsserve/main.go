// Command fsserve runs the false-sharing analysis engine as a resident
// HTTP JSON service: parsing, the FS cost model, Equation 1 pricing and
// the chunk recommendation behind a content-addressed result cache,
// in-flight deduplication, a bounded evaluation pool with backpressure,
// Prometheus-format metrics, and graceful shutdown. Evaluations run
// under resource budgets and panic isolation behind a per-endpoint
// circuit breaker; when the simulator is unavailable the service
// degrades to the closed-form analysis instead of failing (see
// docs/ROBUSTNESS.md).
//
// Usage:
//
//	fsserve -addr :8080
//	fsserve -addr 127.0.0.1:0 -cache 1024 -concurrency 8 -timeout 10s
//
// See docs/SERVICE.md for the API contract.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/fsmodel"
	"repro/internal/service"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable main: flag errors exit 2, startup errors exit 1.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fsserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr       = fs.String("addr", ":8080", "listen address")
		cacheN     = fs.Int("cache", 512, "result cache entries (negative disables caching)")
		cacheDir   = fs.String("cache-dir", "", "directory persisting the result cache across restarts (empty disables)")
		snapEvery  = fs.Duration("snapshot-interval", 0, "background cache-snapshot period when -cache-dir is set (0 = default 30s)")
		quotaRPS   = fs.Float64("quota-rps", 0, "per-client request quota in requests/second (0 disables)")
		quotaBurst = fs.Float64("quota-burst", 0, "per-client quota burst size (0 = 2x -quota-rps)")
		conc       = fs.Int("concurrency", 0, "max concurrent model evaluations (0 = GOMAXPROCS)")
		queue      = fs.Int("queue", 64, "max requests waiting for an evaluation slot before 429")
		timeout    = fs.Duration("timeout", 30*time.Second, "per-request deadline")
		maxBody    = fs.Int64("max-body", 1<<20, "request body size limit in bytes")
		maxBatch   = fs.Int("max-batch", 256, "max analysis points per batch request")
		logFormat  = fs.String("log", "text", "request log format: text or json")
		grace      = fs.Duration("grace", 30*time.Second, "shutdown grace period for draining in-flight requests")

		maxSteps  = fs.Int64("max-steps", 0, "per-evaluation simulated-access budget (0 = default, negative = unlimited)")
		maxState  = fs.Int64("max-state-bytes", 0, "per-evaluation simulator state budget in bytes (0 = default, negative = unlimited)")
		brkThresh = fs.Int("breaker-threshold", 0, "consecutive evaluator failures before the circuit opens (0 = default, negative disables)")
		brkCool   = fs.Duration("breaker-cooldown", 0, "how long an open circuit waits before probing (0 = default)")
		seed      = fs.Int64("seed", 0, "seed for Retry-After jitter and breaker probes (0 = default)")

		evalMode    = fs.String("eval", "auto", "model evaluation pipeline: auto, compiled or interpreted (part of the cache key)")
		extrapolate = fs.Bool("extrapolate", false, "close steady-state chunk runs in O(1) on eligible uniform loops (exact totals)")
		pprofFlag   = fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")

		peers       = fs.String("peers", "", "comma-separated cluster member addresses host:port,... (empty = single node)")
		advertise   = fs.String("advertise", "", "this node's address as peers reach it (required with -peers)")
		replication = fs.Int("replication", 0, "ranked owners per cache key (0 = default 2)")
		probeEvery  = fs.Duration("probe-interval", 0, "mean peer health-probe period (0 = default 1s)")
		hedgeDelay  = fs.Duration("peer-hedge-delay", 0, "pin the forward hedge delay to a replica (0 = adaptive p95)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "fsserve: unexpected arguments %v\n", fs.Args())
		return 2
	}
	if _, err := fsmodel.EvalModeFromString(*evalMode); err != nil {
		fmt.Fprintf(stderr, "fsserve: -eval: %v\n", err)
		return 2
	}
	var clusterCfg *service.ClusterConfig
	if *peers != "" {
		if *advertise == "" {
			fmt.Fprintln(stderr, "fsserve: -peers requires -advertise (this node's address as peers reach it)")
			return 2
		}
		var peerList []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, p)
			}
		}
		clusterCfg = &service.ClusterConfig{
			Advertise:     *advertise,
			Peers:         peerList,
			Replication:   *replication,
			ProbeInterval: *probeEvery,
			HedgeDelay:    *hedgeDelay,
		}
	}
	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(stderr, nil)
	default:
		fmt.Fprintf(stderr, "fsserve: unknown -log format %q (want text or json)\n", *logFormat)
		return 2
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "fsserve:", err)
		return 1
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := serve(ctx, ln, service.Config{
		CacheEntries:     *cacheN,
		CacheDir:         *cacheDir,
		SnapshotInterval: *snapEvery,
		QuotaRPS:         *quotaRPS,
		QuotaBurst:       *quotaBurst,
		MaxConcurrent:    *conc,
		MaxQueue:         *queue,
		RequestTimeout:   *timeout,
		MaxBodyBytes:     *maxBody,
		MaxBatch:         *maxBatch,
		Cluster:          clusterCfg,
		Logger:           slog.New(handler),

		MaxEvalSteps:      *maxSteps,
		MaxEvalStateBytes: *maxState,
		BreakerThreshold:  *brkThresh,
		BreakerCooldown:   *brkCool,
		Seed:              *seed,
		EvalMode:          *evalMode,
		Extrapolate:       *extrapolate,
		EnablePprof:       *pprofFlag,
	}, *grace); err != nil {
		fmt.Fprintln(stderr, "fsserve:", err)
		return 1
	}
	return 0
}

// serve runs the service on ln until ctx is cancelled, then drains
// in-flight requests for up to grace before giving up. The listener is
// always closed on return.
func serve(ctx context.Context, ln net.Listener, cfg service.Config, grace time.Duration) error {
	svc := service.New(cfg)
	logger := svc.Logger()
	httpSrv := &http.Server{
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	logger.Info("fsserve listening", "addr", ln.Addr().String())

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	// Graceful shutdown: stop routing (healthz goes 503), then drain.
	svc.BeginShutdown()
	logger.Info("fsserve draining", "grace", grace.String())
	shutdownCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	// The drain is done: no more evaluations can mutate the cache, so
	// the final snapshot is complete and the next start replays it warm.
	if err := svc.Close(); err != nil {
		logger.Error("final cache snapshot failed", "err", err)
	}
	logger.Info("fsserve stopped")
	return nil
}
