package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/service"
)

// startClusterE2E boots n fsserve nodes through the real serve function,
// wired as one cluster. All listeners bind first so every node knows the
// full member list before construction. The hedge delay is pinned high
// by default so forwards are deterministic (single target); mutate
// customizes per node. Returns base URLs and per-node stop functions.
func startClusterE2E(t testing.TB, n int, mutate func(i int, cfg *service.Config)) ([]string, []func() error) {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	bases := make([]string, n)
	stops := make([]func() error, n)
	for i := range lns {
		cfg := service.Config{
			Logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
			Cluster: &service.ClusterConfig{
				Advertise:  addrs[i],
				Peers:      addrs,
				HedgeDelay: 30 * time.Second,
			},
		}
		if mutate != nil {
			mutate(i, &cfg)
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		ln := lns[i]
		c := cfg
		go func() { done <- serve(ctx, ln, c, 30*time.Second) }()
		bases[i] = "http://" + addrs[i]
		stops[i] = func() error { cancel(); return <-done }
	}
	for _, base := range bases {
		deadline := time.Now().Add(5 * time.Second)
		for {
			resp, err := http.Get(base + "/healthz")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == 200 {
					break
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("node %s not ready: %v", base, err)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	return bases, stops
}

// settledGoroutines samples runtime.NumGoroutine until two consecutive
// reads agree, so scheduler noise does not masquerade as a leak.
func settledGoroutines() int {
	prev := runtime.NumGoroutine()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		cur := runtime.NumGoroutine()
		if cur == prev {
			return cur
		}
		prev = cur
	}
	return prev
}

// dumpClusterMetrics writes each node's /metrics to
// $FSCLUSTER_METRICS_DIR/<prefix>-node<i>.metrics for CI artifacts.
func dumpClusterMetrics(t testing.TB, prefix string, bases []string) {
	dir := os.Getenv("FSCLUSTER_METRICS_DIR")
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("metrics dir: %v", err)
		return
	}
	for i, base := range bases {
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			continue // a chaos test may have killed this node
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		path := filepath.Join(dir, fmt.Sprintf("%s-node%d.metrics", prefix, i))
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Logf("writing %s: %v", path, err)
		}
	}
}

// TestE2EClusterDedup is the cluster acceptance criterion: 96 concurrent
// identical requests sprayed round-robin across 3 nodes cause exactly
// one model evaluation fleet-wide — non-owners forward to the primary,
// whose flight group coalesces every arrival — and all 96 bodies are
// byte-identical.
func TestE2EClusterDedup(t *testing.T) {
	bases, stops := startClusterE2E(t, 3, nil)
	defer func() {
		for _, stop := range stops {
			stop()
		}
	}()

	const n = 96
	body := `{"kernel":"heat","threads":8,"chunk":1}`
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		bodies [][]byte
	)
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			status, b := postJSON(t, bases[i%len(bases)]+"/v1/analyze", body)
			if status != 200 {
				t.Errorf("status = %d: %s", status, b)
			}
			mu.Lock()
			bodies = append(bodies, b)
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(bodies); i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("response %d differs:\n%s\nvs\n%s", i, bodies[0], bodies[i])
		}
	}
	var evals float64
	for _, base := range bases {
		evals += scrapeMetric(t, base, "fsserve_evaluations_total")
	}
	if evals != 1 {
		t.Errorf("fleet-wide evaluations = %v, want exactly 1 for %d requests", evals, n)
	}
	dumpClusterMetrics(t, "dedup", bases)
}

// TestE2EClusterOwnerKilled is the chaos criterion: kill a node
// mid-load and the survivors keep answering 200 for keys it owned —
// degrading to the closed form while the dead peer is still ranked, and
// re-ranking onto themselves once probes mark it down — never a 5xx.
func TestE2EClusterOwnerKilled(t *testing.T) {
	before := settledGoroutines()
	bases, stops := startClusterE2E(t, 3, func(i int, cfg *service.Config) {
		cfg.Cluster.ProbeInterval = 50 * time.Millisecond
		cfg.Cluster.ProbeTimeout = 200 * time.Millisecond
	})

	// A tiny nest keeps each distinct-key evaluation at milliseconds, so
	// the chaos load spans the down-detection window instead of queueing
	// behind paper-scale model runs.
	tiny := func(chunk int) string {
		src := "#define N 256\ndouble a[N];\n#pragma omp parallel for num_threads(4)\nfor (i = 0; i < N; i++) a[i] += 1.0;\n"
		b, _ := json.Marshal(map[string]any{"source": src, "threads": 4, "chunk": chunk})
		return string(b)
	}

	// Seed one key so the owner is identifiable from the outside: the
	// node that evaluated is the key's primary.
	seed := tiny(1)
	for _, base := range bases {
		if status, b := postJSON(t, base+"/v1/analyze", seed); status != 200 {
			t.Fatalf("seed: %d %s", status, b)
		}
	}
	owner := -1
	for i, base := range bases {
		if scrapeMetric(t, base, "fsserve_evaluations_total") == 1 {
			owner = i
			break
		}
	}
	if owner == -1 {
		t.Fatal("no node evaluated the seed request")
	}

	if err := stops[owner](); err != nil {
		t.Fatalf("killing owner: %v", err)
	}
	var live []string
	for i, base := range bases {
		if i != owner {
			live = append(live, base)
		}
	}

	// Load the survivors with fresh keys — about a third are owned by
	// the corpse — across the down-detection transition. Every response
	// must be a 200; degraded bodies are expected while the dead node is
	// still ranked.
	const keys = 24
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		degraded int
	)
	for round := 0; round < 3; round++ {
		wg.Add(keys)
		for k := 0; k < keys; k++ {
			go func(round, k int) {
				defer wg.Done()
				status, b := postJSON(t, live[k%len(live)]+"/v1/analyze", tiny(2+k))
				if status != 200 {
					t.Errorf("round %d key %d: status %d (must never 5xx): %s", round, k, status, b)
					return
				}
				var resp struct {
					Degraded bool `json:"degraded"`
				}
				if err := json.Unmarshal(b, &resp); err != nil {
					t.Errorf("round %d key %d: %v", round, k, err)
					return
				}
				if resp.Degraded {
					mu.Lock()
					degraded++
					mu.Unlock()
				}
			}(round, k)
		}
		wg.Wait()
		// Give the probers time to cross suspect/down thresholds so later
		// rounds also exercise the re-ranked, fully-healthy path.
		time.Sleep(150 * time.Millisecond)
	}
	if degraded == 0 {
		t.Error("no degraded responses: the dead owner's keys never exercised the fallback")
	}
	t.Logf("degraded responses across %d requests: %d", 3*keys, degraded)

	// The dead peer must eventually leave the survivors' rings.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(live[0] + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		var rz struct {
			Cluster struct {
				Peers map[string]string `json:"peers"`
			} `json:"cluster"`
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err := json.Unmarshal(body, &rz); err != nil {
			t.Fatal(err)
		}
		downSeen := false
		for _, st := range rz.Cluster.Peers {
			if st == "down" {
				downSeen = true
			}
		}
		if downSeen {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("dead peer never marked down: %s", body)
		}
		time.Sleep(20 * time.Millisecond)
	}

	dumpClusterMetrics(t, "chaos", []string{live[0], live[1]})
	for i, stop := range stops {
		if i != owner {
			if err := stop(); err != nil {
				t.Errorf("stopping node %d: %v", i, err)
			}
		}
	}
	if after := settledGoroutines(); after > before+5 {
		t.Errorf("goroutines grew %d -> %d: cluster teardown leaks", before, after)
	}
}

// TestRunClusterFlagValidation pins the CLI contract: -peers without
// -advertise is a usage error (exit 2) that names the missing flag.
func TestRunClusterFlagValidation(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-peers", "127.0.0.1:1,127.0.0.1:2"}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("run = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "-advertise") {
		t.Fatalf("stderr = %q, want a mention of -advertise", stderr.String())
	}
}

// TestGenerateClusterBench measures what a forwarded hit costs relative
// to a local hit on a 2-node cluster (pushes disabled so the forward
// path stays exercised) and merges a "cluster" section into the
// BENCH_service.json document named by FSCLUSTER_BENCH_OUT:
//
//	FSCLUSTER_BENCH_OUT=$PWD/BENCH_service.json go test ./cmd/fsserve -run TestGenerateClusterBench -v
func TestGenerateClusterBench(t *testing.T) {
	out := os.Getenv("FSCLUSTER_BENCH_OUT")
	if out == "" {
		t.Skip("set FSCLUSTER_BENCH_OUT=path to run the cluster benchmark")
	}
	bases, stops := startClusterE2E(t, 2, func(i int, cfg *service.Config) {
		cfg.Cluster.PushQueue = -1
	})
	defer func() {
		for _, stop := range stops {
			stop()
		}
	}()

	// Warm the fleet through node 0: each distinct chunk evaluates once
	// on its primary (locally or via forward), leaving node 0 with every
	// body and node 1 with only the keys it owns.
	const keys = 40
	body := func(k int) string {
		return fmt.Sprintf(`{"kernel":"heat","threads":8,"chunk":%d}`, 1+k)
	}
	for k := 0; k < keys; k++ {
		if status, b := postJSON(t, bases[0]+"/v1/analyze", body(k)); status != 200 {
			t.Fatalf("warm key %d: %d %s", k, status, b)
		}
	}
	// Sample node 1: keys it owns answer from its cache ("hit"), keys
	// node 0 owns go through a proxy hop ("forward"). Bucket latencies
	// by the X-Cache source the server reports.
	sample := func(base string) map[string][]float64 {
		buckets := map[string][]float64{}
		for k := 0; k < keys; k++ {
			start := time.Now()
			resp, err := http.Post(base+"/v1/analyze", "application/json", strings.NewReader(body(k)))
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			ms := float64(time.Since(start).Microseconds()) / 1000
			if resp.StatusCode != 200 {
				t.Fatalf("key %d: status %d", k, resp.StatusCode)
			}
			src := resp.Header.Get("X-Cache")
			buckets[src] = append(buckets[src], ms)
		}
		return buckets
	}
	remote := sample(bases[1])
	local := sample(bases[0]) // node 0 holds everything: pure local hits
	p50 := func(v []float64) float64 {
		if len(v) == 0 {
			return 0
		}
		sort.Float64s(v)
		return v[len(v)/2]
	}
	localHit, forward := p50(local["hit"]), p50(remote["forward"])
	if len(remote["forward"]) == 0 {
		t.Fatal("no forwarded samples: rendezvous balance is broken")
	}
	t.Logf("local hit p50 %.3fms (%d), forwarded hit p50 %.3fms (%d), overhead %.1fx",
		localHit, len(local["hit"]), forward, len(remote["forward"]), forward/localHit)

	doc := map[string]any{}
	if b, err := os.ReadFile(out); err == nil {
		if err := json.Unmarshal(b, &doc); err != nil {
			t.Fatalf("existing %s is not JSON: %v", out, err)
		}
	}
	doc["cluster"] = map[string]any{
		"note": "2-node cluster over loopback, replication 2, pushes disabled so forwards stay " +
			"exercised; forwarded-hit = non-owner proxies to the primary's cache, local-hit = " +
			"same keys answered from the node's own cache",
		"keys":                 keys,
		"local_hit_p50_ms":     localHit,
		"forwarded_hit_p50_ms": forward,
		"forward_overhead_x":   forward / localHit,
		"forwarded_samples":    len(remote["forward"]),
		"local_samples":        len(remote["hit"]),
	}
	f, err := os.Create(out)
	if err != nil {
		t.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	t.Logf("merged cluster section into %s", out)
}
