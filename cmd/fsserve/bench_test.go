package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"repro/internal/kernels"
	"repro/internal/service"
)

// benchResult is one (kernel, mode, eval) row of BENCH_service.json.
type benchResult struct {
	Kernel   string  `json:"kernel"`
	Mode     string  `json:"mode"`           // "cache-miss" or "cache-hit"
	Eval     string  `json:"eval,omitempty"` // evaluation pipeline on miss rows
	Requests int     `json:"requests"`
	ReqPerS  float64 `json:"req_per_s"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
}

// TestGenerateServiceBench measures service throughput and latency for
// cache-miss (every request a distinct source, full model evaluation) vs
// cache-hit (repeated identical request) on the three paper kernels, and
// writes BENCH_service.json. A full run evaluates the cost model dozens
// of times (~30s), so it only runs when FSSERVE_BENCH_OUT names the
// output path:
//
//	FSSERVE_BENCH_OUT=BENCH_service.json go test ./cmd/fsserve -run TestGenerateServiceBench -v
func TestGenerateServiceBench(t *testing.T) {
	out := os.Getenv("FSSERVE_BENCH_OUT")
	if out == "" {
		t.Skip("set FSSERVE_BENCH_OUT=path to run the service benchmark")
	}
	// One server per evaluation pipeline: cache-miss rows compare the
	// compiled executor against the interpreter on identical requests;
	// cache-hit rows are pipeline-independent (bytes from the cache) and
	// are measured once, on the compiled server.
	baseCompiled, stopCompiled := startE2E(t, service.Config{EvalMode: "compiled"})
	defer stopCompiled()
	baseInterp, stopInterp := startE2E(t, service.Config{EvalMode: "interpreted"})
	defer stopInterp()

	// Distinct sources per kernel: each request varies one dimension a
	// little, so every analysis stays at paper scale but misses the cache.
	missSource := map[string]func(i int) string{
		"heat":   func(i int) string { return kernels.HeatSource(96, int64(4096+64*i)) },
		"dft":    func(i int) string { return kernels.DFTSource(int64(256 + i)) },
		"linreg": func(i int) string { return kernels.LinRegSource(int64(48+i), 1<<17, 8) },
	}

	const (
		missN = 12
		hitN  = 400
	)
	var results []benchResult
	speedup := map[string]float64{}
	evalSpeedup := map[string]float64{}
	for _, kernel := range kernels.Names() {
		missBody := func(i int) string {
			body, _ := json.Marshal(map[string]any{"source": missSource[kernel](i), "threads": 8, "chunk": 1})
			return string(body)
		}
		miss := measure(t, baseCompiled, missN, missBody)
		miss.Kernel, miss.Mode, miss.Eval = kernel, "cache-miss", "compiled"
		missI := measure(t, baseInterp, missN, missBody)
		missI.Kernel, missI.Mode, missI.Eval = kernel, "cache-miss", "interpreted"

		hitBody := fmt.Sprintf(`{"kernel":%q,"threads":8,"chunk":1}`, kernel)
		postJSON(t, baseCompiled+"/v1/analyze", hitBody) // warm the cache
		hit := measure(t, baseCompiled, hitN, func(int) string { return hitBody })
		hit.Kernel, hit.Mode = kernel, "cache-hit"

		results = append(results, miss, missI, hit)
		speedup[kernel] = hit.ReqPerS / miss.ReqPerS
		evalSpeedup[kernel] = missI.P50Ms / miss.P50Ms
		t.Logf("%s: miss(compiled) p50 %.1fms p99 %.1fms, miss(interpreted) p50 %.1fms, hit %.0f req/s (p50 %.3fms), hit/miss %.0fx, compiled/interpreted p50 %.2fx",
			kernel, miss.P50Ms, miss.P99Ms, missI.P50Ms, hit.ReqPerS, hit.P50Ms, speedup[kernel], evalSpeedup[kernel])
		if speedup[kernel] < 10 {
			t.Errorf("%s: cache-hit throughput only %.1fx cache-miss, want >= 10x", kernel, speedup[kernel])
		}
	}

	// Warm-restart: a server evaluates the three kernels, drains (writing
	// its snapshot), and a fresh process on the same -cache-dir serves the
	// same requests from the restored cache. The rows quantify what the
	// snapshot buys: first-request latency collapses from a full model
	// evaluation to a cache hit, with zero evaluations in the second life.
	dir := t.TempDir()
	coldFirstMs := map[string]float64{}
	baseWarm, stopWarm := startE2E(t, service.Config{CacheDir: dir, SnapshotInterval: time.Hour})
	for _, kernel := range kernels.Names() {
		body := fmt.Sprintf(`{"kernel":%q,"threads":8,"chunk":1}`, kernel)
		start := time.Now()
		if status, b := postJSON(t, baseWarm+"/v1/analyze", body); status != 200 {
			t.Fatalf("%s cold request: status %d: %s", kernel, status, b)
		}
		coldFirstMs[kernel] = float64(time.Since(start).Microseconds()) / 1000
	}
	if err := stopWarm(); err != nil {
		t.Fatalf("drain before restart: %v", err)
	}
	baseWarm, stopWarm = startE2E(t, service.Config{CacheDir: dir, SnapshotInterval: time.Hour})
	defer stopWarm()
	restored := scrapeMetric(t, baseWarm, "fsserve_snapshot_records_restored_total")
	warmFirstMs := map[string]float64{}
	for _, kernel := range kernels.Names() {
		body := fmt.Sprintf(`{"kernel":%q,"threads":8,"chunk":1}`, kernel)
		first := time.Now()
		if status, b := postJSON(t, baseWarm+"/v1/analyze", body); status != 200 {
			t.Fatalf("%s warm request: status %d: %s", kernel, status, b)
		}
		warmFirstMs[kernel] = float64(time.Since(first).Microseconds()) / 1000
		row := measure(t, baseWarm, hitN, func(int) string { return body })
		row.Kernel, row.Mode = kernel, "warm-restart-hit"
		results = append(results, row)
		t.Logf("%s: first request %.1fms cold (evaluated) vs %.3fms after restart (restored hit), steady warm-restart %.0f req/s",
			kernel, coldFirstMs[kernel], warmFirstMs[kernel], row.ReqPerS)
	}
	if evals := scrapeMetric(t, baseWarm, "fsserve_evaluations_total"); evals != 0 {
		t.Errorf("warm restart re-evaluated %v times, want 0", evals)
	}

	doc := map[string]any{
		"date": time.Now().Format("2006-01-02"),
		"host": map[string]any{
			"goos":       runtime.GOOS,
			"goarch":     runtime.GOARCH,
			"cores":      runtime.NumCPU(),
			"gomaxprocs": runtime.GOMAXPROCS(0),
		},
		"config": map[string]any{
			"note": "sequential client over loopback HTTP against cmd/fsserve, one server per -eval mode " +
				"(otherwise default service.Config); cache-miss requests vary one kernel dimension per request " +
				"so every analysis runs the full model at paper scale; cache-hit repeats one identical request " +
				"after a warm-up request and is pipeline-independent (served bytes)",
			"miss_requests": missN,
			"hit_requests":  hitN,
			"threads":       8,
			"chunk":         1,
		},
		"results":                       results,
		"hit_vs_miss_x":                 speedup,
		"miss_p50_interp_vs_compiled_x": evalSpeedup,
		"warm_restart": map[string]any{
			"note": "second fsserve process on the same -cache-dir after a drain-time snapshot; " +
				"warm-restart-hit rows above measure steady-state replay, these record the first request per kernel",
			"records_restored":          restored,
			"evaluations_after_restart": 0,
			"cold_first_request_ms":     coldFirstMs,
			"restored_first_request_ms": warmFirstMs,
		},
		"acceptance_note": "cache-hit >= 10x cache-miss throughput required on every kernel; warm restart must re-evaluate nothing",
	}
	f, err := os.Create(out)
	if err != nil {
		t.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}

// measure issues n sequential requests and reports throughput and
// latency percentiles.
func measure(t *testing.T, base string, n int, body func(i int) string) benchResult {
	t.Helper()
	lat := make([]float64, n)
	start := time.Now()
	for i := 0; i < n; i++ {
		reqStart := time.Now()
		status, b := postJSON(t, base+"/v1/analyze", body(i))
		if status != 200 {
			t.Fatalf("request %d: status %d: %s", i, status, b)
		}
		lat[i] = float64(time.Since(reqStart).Microseconds()) / 1000
	}
	total := time.Since(start).Seconds()
	sort.Float64s(lat)
	return benchResult{
		Requests: n,
		ReqPerS:  float64(n) / total,
		P50Ms:    lat[n/2],
		P99Ms:    lat[min(n-1, (99*n+99)/100-1)],
	}
}
