// Command fssim executes a mini-C loop nest on the MESI cache-coherent
// multicore simulator (the reproduction's stand-in for the paper's 48-core
// testbed) and reports timing and coherence statistics.
//
// Usage:
//
//	fssim -kernel dft -threads 8 -chunk 1
//	fssim -threads 16 -chunk 4 -compare 64 file.c
//
// Exit status is 0 on success, 1 on simulation or I/O errors, and 2 on
// usage errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro"
	"repro/internal/fsmodel"
	"repro/internal/guard"
	"repro/internal/kernels"
)

type config struct {
	threads int
	chunk   int64
	nest    int
	compare int64
	eval    string
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable main: flag errors exit 2, simulation errors exit 1.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fssim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var cfg config
	fs.IntVar(&cfg.threads, "threads", 8, "thread count")
	fs.Int64Var(&cfg.chunk, "chunk", 1, "schedule chunk size")
	kernel := fs.String("kernel", "", "simulate a built-in kernel (heat, dft, linreg)")
	fs.IntVar(&cfg.nest, "nest", 0, "loop nest index to simulate")
	fs.Int64Var(&cfg.compare, "compare", 0, "also simulate this chunk size and report the FS effect")
	fs.StringVar(&cfg.eval, "eval", "auto", "model evaluation pipeline: auto, compiled or interpreted (the machine simulator itself has one pipeline; this selects the pipeline for any model evaluations)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if _, err := fsmodel.EvalModeFromString(cfg.eval); err != nil {
		fmt.Fprintln(stderr, "fssim: -eval:", err)
		return 2
	}

	src, err := loadSource(*kernel, cfg.threads, fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, "fssim:", err)
		return 1
	}
	// guard.Do turns an evaluator panic into an ordinary exit-1 error
	// (with "evaluation panicked: ..." text) instead of a crash.
	if err := guard.Do(func() error { return simulate(src, cfg, stdout) }); err != nil {
		fmt.Fprintln(stderr, "fssim:", err)
		return 1
	}
	return 0
}

func loadSource(kernel string, threads int, args []string) (string, error) {
	switch {
	case kernel != "":
		k, err := kernels.ByName(kernel, threads)
		if err != nil {
			return "", err
		}
		return k.Source, nil
	case len(args) == 1:
		data, err := os.ReadFile(args[0])
		if err != nil {
			return "", err
		}
		return string(data), nil
	}
	return "", fmt.Errorf("usage: fssim [flags] file.c  (or -kernel heat|dft|linreg)")
}

// simulate runs the requested simulation(s) and writes the report.
func simulate(src string, cfg config, w io.Writer) error {
	prog, err := repro.Parse(src)
	if err != nil {
		return err
	}
	opts := repro.Options{Threads: cfg.threads, Chunk: cfg.chunk, Eval: cfg.eval}
	rep, err := prog.Simulate(cfg.nest, opts)
	if err != nil {
		return err
	}
	printReport(w, cfg.chunk, rep)

	if cfg.compare > 0 {
		o2 := opts
		o2.Chunk = cfg.compare
		rep2, err := prog.Simulate(cfg.nest, o2)
		if err != nil {
			return err
		}
		printReport(w, cfg.compare, rep2)
		slow, fast := rep, rep2
		if fast.Seconds > slow.Seconds {
			slow, fast = fast, slow
		}
		if slow.Seconds > 0 {
			fmt.Fprintf(w, "\nFS effect ((T_slow - T_fast)/T_slow): %.1f%%\n",
				(slow.Seconds-fast.Seconds)/slow.Seconds*100)
		}
	}
	return nil
}

func printReport(w io.Writer, chunk int64, r *repro.SimReport) {
	fmt.Fprintf(w, "chunk=%d: %.6f s (%.0f cycles)\n", chunk, r.Seconds, r.WallCycles)
	fmt.Fprintf(w, "  accesses=%d L1=%d L2=%d L3=%d mem=%d\n", r.Accesses, r.L1Hits, r.L2Hits, r.L3Hits, r.MemFills)
	fmt.Fprintf(w, "  coherence misses=%d invalidations=%d\n", r.CoherenceMisses, r.Invalidations)
}
