package main

import (
	"bytes"
	"strings"
	"testing"
)

const victim = `
#define N 512
double a[N];
#pragma omp parallel for schedule(static,1) num_threads(4)
for (i = 0; i < N; i++) a[i] += 1.0;
`

func TestSimulateSingleChunk(t *testing.T) {
	var buf bytes.Buffer
	if err := simulate(victim, config{threads: 4, chunk: 1}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"chunk=1:", "coherence misses=", "accesses="} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSimulateCompare(t *testing.T) {
	var buf bytes.Buffer
	if err := simulate(victim, config{threads: 4, chunk: 1, compare: 8}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "chunk=8:") || !strings.Contains(out, "FS effect") {
		t.Errorf("compare output incomplete:\n%s", out)
	}
}

func TestSimulateKernelSource(t *testing.T) {
	src, err := loadSource("heat", 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := simulate(src, config{threads: 4, chunk: 64}, &buf); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := simulate("garbage(", config{}, &buf); err == nil {
		t.Fatal("expected parse error")
	}
	if err := simulate(victim, config{threads: 4, chunk: 1, nest: 3}, &buf); err == nil {
		t.Fatal("expected nest index error")
	}
	if _, err := loadSource("", 4, nil); err == nil {
		t.Fatal("expected usage error")
	}
}
