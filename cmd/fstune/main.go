// Command fstune is the cost-model-guided auto-tuner: it searches
// composable transformation plans (schedule chunk resize, struct
// padding, loop interchange) for a parallel loop nest, scores them with
// the closed-form FS count plus the Equation 1 cost model, verifies the
// beam finalists against the fsmodel simulator, and emits the
// transformed C source together with a machine-readable tuning report.
//
// Usage:
//
//	fstune [-threads N] [-chunk C] [-machine M] [-nest I] [-beam B]
//	       [-eval auto|compiled|interpreted] [-format text|json]
//	       [-o out.c] [-timeout D] file.c
//	fstune -kernel heat            # tune a built-in paper kernel
//
// Exit status is 0 on success (including a verified no-op), 1 on
// analysis/verification/I-O errors, and 2 on usage errors.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/fsmodel"
	"repro/internal/guard"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/tuner"
)

type config struct {
	threads int
	chunk   int64
	mach    string
	nest    int
	beam    int
	maxCand int
	jobs    int
	eval    string
	format  string
	out     string
	timeout time.Duration
	kernel  string
	extrap  bool
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable main: flag errors exit 2, tuning errors exit 1.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fstune", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var cfg config
	fs.IntVar(&cfg.threads, "threads", 0, "thread count override (0: pragma num_threads, else machine cores)")
	fs.Int64Var(&cfg.chunk, "chunk", 0, "baseline schedule chunk override (0: pragma schedule, else OpenMP static default)")
	fs.StringVar(&cfg.mach, "machine", "", "machine model: paper48 (default), smalltest, modern16")
	fs.IntVar(&cfg.nest, "nest", 0, "loop nest index to tune")
	fs.IntVar(&cfg.beam, "beam", 0, "beam width: fast-tier candidates promoted to simulator verification (0: default 4)")
	fs.IntVar(&cfg.maxCand, "max-candidates", 0, "cap on enumerated plans (0: default 32)")
	fs.IntVar(&cfg.jobs, "jobs", 0, "verification parallelism (0: GOMAXPROCS)")
	fs.StringVar(&cfg.eval, "eval", "compiled", "simulator evaluation mode: auto, compiled, or interpreted")
	fs.StringVar(&cfg.format, "format", "text", "output format: text or json")
	fs.StringVar(&cfg.out, "o", "", "write the transformed source to this file instead of stdout")
	fs.DurationVar(&cfg.timeout, "timeout", 0, "overall tuning deadline (0: none)")
	fs.StringVar(&cfg.kernel, "kernel", "", "tune a built-in kernel (heat, dft, linreg) instead of a file")
	fs.BoolVar(&cfg.extrap, "extrapolate", false, "steady-state chunk-run extrapolation during verification")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	switch cfg.format {
	case "text", "json":
	default:
		fmt.Fprintf(stderr, "fstune: unknown -format %q (valid: text, json)\n", cfg.format)
		return 2
	}
	eval, err := fsmodel.EvalModeFromString(cfg.eval)
	if err != nil {
		fmt.Fprintln(stderr, "fstune: invalid -eval:", err)
		return 2
	}
	if (cfg.kernel == "") == (len(fs.Args()) == 0) {
		fmt.Fprintln(stderr, "usage: fstune [flags] file.c  (or -kernel heat|dft|linreg)")
		return 2
	}
	if len(fs.Args()) > 1 {
		fmt.Fprintln(stderr, "fstune: tune one file at a time")
		return 2
	}
	mach, err := machineByName(cfg.mach)
	if err != nil {
		fmt.Fprintln(stderr, "fstune:", err)
		return 2
	}

	name, src, err := loadInput(cfg, mach, fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, "fstune:", err)
		return 1
	}

	ctx := context.Background()
	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
	}
	// guard.Do1 turns a tuner panic into an ordinary exit-1 error.
	res, err := guard.Do1(func() (*tuner.Result, error) {
		return tuner.Tune(ctx, src, tuner.Options{
			Machine:       mach,
			Threads:       cfg.threads,
			Chunk:         cfg.chunk,
			Nest:          cfg.nest,
			Beam:          cfg.beam,
			MaxCandidates: cfg.maxCand,
			Jobs:          cfg.jobs,
			Eval:          eval,
			Extrapolate:   cfg.extrap,
			KeepHeader:    true,
		})
	})
	if err != nil {
		var ie *tuner.InputError
		if errors.As(err, &ie) {
			fmt.Fprintf(stderr, "fstune: %s: %s\n", name, ie.Msg)
			return 2
		}
		fmt.Fprintln(stderr, "fstune:", err)
		return 1
	}

	if cfg.out != "" {
		if err := os.WriteFile(cfg.out, []byte(res.Source), 0o644); err != nil {
			fmt.Fprintln(stderr, "fstune:", err)
			return 1
		}
	}
	if err := writeReport(stdout, cfg, name, res); err != nil {
		fmt.Fprintln(stderr, "fstune:", err)
		return 1
	}
	return 0
}

// loadInput resolves -kernel or the single file argument. Thread-shaped
// kernel templates (linreg) default to the machine's core count.
func loadInput(cfg config, mach *machine.Desc, args []string) (name, src string, err error) {
	if cfg.kernel != "" {
		threads := cfg.threads
		if threads == 0 {
			threads = mach.Cores
		}
		k, err := kernels.ByName(cfg.kernel, threads)
		if err != nil {
			return "", "", err
		}
		return "<kernel:" + cfg.kernel + ">", k.Source, nil
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return "", "", err
	}
	return args[0], string(data), nil
}

// machineByName resolves the -machine flag.
func machineByName(name string) (*machine.Desc, error) {
	switch name {
	case "", "paper48":
		return machine.Paper48(), nil
	case "smalltest":
		return machine.SmallTest(), nil
	case "modern16":
		return machine.Modern16(), nil
	}
	return nil, fmt.Errorf("unknown machine %q (valid: paper48, smalltest, modern16)", name)
}

// writeReport renders the tuning result. JSON is the full report; text
// is the human summary followed by the transformed source when no -o
// redirects it.
func writeReport(w io.Writer, cfg config, name string, res *tuner.Result) error {
	if cfg.format == "json" {
		return tuner.WriteJSON(w, res)
	}
	fmt.Fprintf(w, "%s: nest %d on %s, %d threads, baseline chunk %d\n",
		name, res.Nest, res.Machine, res.Threads, res.BaselineChunk)
	fmt.Fprintf(w, "  baseline: FS %d, %.0f cycles (simulated, %s)\n",
		res.Baseline.SimulatedFS, res.Baseline.SimulatedCycles, res.EvalMode)
	if res.NoOp {
		fmt.Fprintf(w, "  plan: no-op\n")
	} else {
		fmt.Fprintf(w, "  plan: %s\n", res.PlanSummary)
		fmt.Fprintf(w, "  tuned: FS %d, %.0f cycles (simulated)\n",
			res.Chosen.SimulatedFS, res.Chosen.SimulatedCycles)
	}
	fmt.Fprintf(w, "  candidates: %d scored, %d rejected\n", len(res.Candidates), len(res.Rejected))
	for _, warn := range res.Warnings {
		fmt.Fprintf(w, "  warning: %s\n", warn)
	}
	if cfg.out == "" && !res.NoOp {
		fmt.Fprintf(w, "--- transformed source ---\n%s", res.Source)
	}
	return nil
}
