package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/tuner"
)

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func heatPath(t *testing.T) string {
	t.Helper()
	p := filepath.Join("..", "..", "examples", "tune", "heat.c")
	if _, err := os.Stat(p); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{},                             // no input
		{"-kernel", "heat", "extra.c"}, // kernel and file
		{"-format", "sarif", "x.c"},    // bad format
		{"-eval", "hardware", "x.c"},   // bad eval mode
		{"-machine", "cray1", "x.c"},   // bad machine
		{"a.c", "b.c"},                 // multiple files
		{"-nest", "7", heatPath(t)},    // nest out of range -> InputError
		{"-badflag"},                   // unknown flag
	}
	for _, args := range cases {
		if code, _, _ := runCLI(t, args...); code != 2 {
			t.Errorf("fstune %v: exit %d, want 2", args, code)
		}
	}
}

func TestMissingFile(t *testing.T) {
	code, _, stderr := runCLI(t, filepath.Join(t.TempDir(), "nope.c"))
	if code != 1 {
		t.Fatalf("exit %d, want 1 (stderr %q)", code, stderr)
	}
}

func TestTextReport(t *testing.T) {
	code, stdout, stderr := runCLI(t, heatPath(t))
	if code != 0 {
		t.Fatalf("exit %d; stderr: %s", code, stderr)
	}
	for _, want := range []string{"plan: schedule(static,32)", "baseline: FS", "tuned: FS 0", "--- transformed source ---", "#pragma omp parallel for"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("text report missing %q:\n%s", want, stdout)
		}
	}
}

func TestJSONReport(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-format", "json", heatPath(t))
	if code != 0 {
		t.Fatalf("exit %d; stderr: %s", code, stderr)
	}
	var res tuner.Result
	if err := json.Unmarshal([]byte(stdout), &res); err != nil {
		t.Fatalf("output is not a JSON tuning report: %v", err)
	}
	if res.PlanSummary != "schedule(static,32)" || !res.Chosen.Verified {
		t.Errorf("unexpected report: plan %q verified %v", res.PlanSummary, res.Chosen.Verified)
	}
	if !strings.Contains(res.Source, "schedule(static,32)") {
		t.Error("report source does not carry the rewritten schedule clause")
	}
}

// TestOutputFile: -o writes the transformed source, and the written file
// is itself tunable to a verified no-op fixpoint... at minimum it must
// re-tune without error.
func TestOutputFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "tuned.c")
	code, stdout, stderr := runCLI(t, "-o", out, heatPath(t))
	if code != 0 {
		t.Fatalf("exit %d; stderr: %s", code, stderr)
	}
	if strings.Contains(stdout, "--- transformed source ---") {
		t.Error("-o should suppress inline source dump")
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "schedule(static,32)") {
		t.Errorf("written source lacks the plan's schedule clause:\n%s", data)
	}
	// The tuned output re-tunes cleanly.
	if code, _, stderr := runCLI(t, out); code != 0 {
		t.Fatalf("re-tuning emitted source: exit %d, stderr %s", code, stderr)
	}
}

func TestKernelInput(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-kernel", "linreg", "-format", "json")
	if code != 0 {
		t.Fatalf("exit %d; stderr: %s", code, stderr)
	}
	var res tuner.Result
	if err := json.Unmarshal([]byte(stdout), &res); err != nil {
		t.Fatal(err)
	}
	if !res.Baseline.Verified {
		t.Error("kernel baseline not verified")
	}
}
