package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{},                           // no patterns
		{"-machine", "xeon", "./.."}, // unknown machine
		{"-json", "-sarif", "./..."}, // exclusive formats
		{"-line", "48", "./..."},     // non-power-of-two line
		{"-nosuchflag"},
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("run(%v) = %d, want 2 (stderr: %s)", args, code, errb.String())
		}
	}
}

func TestVetProtocolVersionAndFlags(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-V=full"}, &out, &errb); code != 0 {
		t.Fatalf("-V=full exit %d: %s", code, errb.String())
	}
	if !strings.HasPrefix(out.String(), "fsvet version ") {
		t.Fatalf("-V=full output %q", out.String())
	}
	out.Reset()
	if code := run([]string{"-flags"}, &out, &errb); code != 0 {
		t.Fatalf("-flags exit %d", code)
	}
	var flags []struct {
		Name  string
		Bool  bool
		Usage string
	}
	if err := json.Unmarshal(out.Bytes(), &flags); err != nil {
		t.Fatalf("-flags output not the go command's JSON shape: %v\n%s", err, out.String())
	}
	names := map[string]bool{}
	for _, f := range flags {
		names[f.Name] = true
	}
	for _, want := range []string{"json", "machine", "line"} {
		if !names[want] {
			t.Fatalf("-flags missing %q: %s", want, out.String())
		}
	}
}

// TestVetProtocolUnit drives the vet .cfg path end to end on a
// dependency-free unit: parse, typecheck, analyze, JSON diagnostics
// keyed by package ID, and the facts file the go command expects.
func TestVetProtocolUnit(t *testing.T) {
	dir := t.TempDir()
	src := `package victim

type rec struct{ a, b int64 }

var dst = make([]rec, 256)

func F() {
	for i := 0; i < 256; i++ {
		go func(i int) { dst[i].a = 1 }(i)
	}
}
`
	goFile := filepath.Join(dir, "victim.go")
	if err := os.WriteFile(goFile, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	vetx := filepath.Join(dir, "victim.vetx")
	cfg := map[string]any{
		"ID":          "example.com/victim",
		"Compiler":    "gc",
		"Dir":         dir,
		"ImportPath":  "example.com/victim",
		"GoFiles":     []string{goFile},
		"ImportMap":   map[string]string{},
		"PackageFile": map[string]string{},
		"VetxOutput":  vetx,
	}
	cfgData, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgPath := filepath.Join(dir, "vet.cfg")
	if err := os.WriteFile(cfgPath, cfgData, 0o644); err != nil {
		t.Fatal(err)
	}

	// Text mode (plain `go vet`): diagnostics on stderr, exit 2.
	var out, errb bytes.Buffer
	if code := run([]string{cfgPath}, &out, &errb); code != 2 {
		t.Fatalf("text-mode unit exit %d, want 2: %s", code, errb.String())
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Fatalf("facts file not written: %v", err)
	}
	if !strings.Contains(errb.String(), "GV002") || !strings.Contains(errb.String(), "victim.go:9") {
		t.Fatalf("text diagnostics = %q", errb.String())
	}

	// JSON mode (`go vet -json`): envelope on stdout, exit 0.
	out.Reset()
	errb.Reset()
	if code := run([]string{"-json", cfgPath}, &out, &errb); code != 0 {
		t.Fatalf("json-mode unit exit %d: %s", code, errb.String())
	}
	var diags map[string]map[string][]struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("diagnostics not JSON: %v\n%s", err, out.String())
	}
	list := diags["example.com/victim"]["fsvet"]
	if len(list) != 1 {
		t.Fatalf("want 1 diagnostic, got %+v", diags)
	}
	if !strings.Contains(list[0].Message, "GV002") || !strings.Contains(list[0].Posn, "victim.go:9") {
		t.Fatalf("unexpected diagnostic %+v", list[0])
	}
}

// TestStandaloneCleanPackage runs the full standalone path (go list
// loading included) over a package known clean.
func TestStandaloneCleanPackage(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"repro/internal/affine"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "no findings") {
		t.Fatalf("output %q", out.String())
	}
}

// TestStandaloneSARIF checks the -sarif path produces a decodable run
// even with zero findings.
func TestStandaloneSARIF(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-sarif", "repro/internal/affine"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	var doc struct {
		Version string `json:"version"`
		Runs    []struct {
			Results []any `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Version != "2.1.0" || len(doc.Runs) != 1 || doc.Runs[0].Results == nil {
		t.Fatalf("bad SARIF: %+v", doc)
	}
}
