// Command fsvet is the false-sharing analyzer for Go source: the
// repository's closed-form loop cost model applied to real Go packages.
// It lays out every declared struct with the compiler's sizes, flags
// concurrency-hot fields that share a cache line (GV001), recognizes
// goroutine fan-out loops and sharded atomic counters and scores their
// adjacent-index writes with the residue-counting machinery (GV002,
// GV003), and emits padding fixes that are verified by re-running the
// layout analysis on the patched type before being suggested.
//
// Usage:
//
//	fsvet [-json|-sarif] [-fix] [-machine M] [-line L] [-trips N] ./...
//	go vet -vettool=$(which fsvet) ./...     # vet tool protocol
//
// In the second form the go command drives fsvet through its vet .cfg
// protocol; fsvet detects those invocations itself, so one binary
// serves both modes.
//
// Exit status is 0 with no findings, 1 with findings or on analysis
// errors, and 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/govet"
	"repro/internal/guard"
	"repro/internal/machine"
)

type config struct {
	jsonOut  bool
	sarifOut bool
	fix      bool
	mach     string
	line     int64
	trips    int64
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable main. Vet-protocol invocations are dispatched
// before flag parsing: the go command's argument order is its own.
func run(args []string, stdout, stderr io.Writer) int {
	if govet.IsVetInvocation(args) {
		return govet.VetMain(args, nil, stdout, stderr)
	}

	fs := flag.NewFlagSet("fsvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var cfg config
	fs.BoolVar(&cfg.jsonOut, "json", false, "emit findings as JSON")
	fs.BoolVar(&cfg.sarifOut, "sarif", false, "emit findings as SARIF 2.1.0")
	fs.BoolVar(&cfg.fix, "fix", false, "apply verified suggested fixes to the source files")
	fs.StringVar(&cfg.mach, "machine", "", "machine model: paper48 (default), smalltest, modern16")
	fs.Int64Var(&cfg.line, "line", 0, "cache-line size override in bytes (0: machine default)")
	fs.Int64Var(&cfg.trips, "trips", 0, "assumed trip count for bounds unknown at compile time (0: default 2048)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if cfg.jsonOut && cfg.sarifOut {
		fmt.Fprintln(stderr, "fsvet: -json and -sarif are mutually exclusive")
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		fmt.Fprintln(stderr, "usage: fsvet [-json|-sarif] [-fix] [-machine M] [-line L] package ...")
		return 2
	}
	mach, err := machineByName(cfg.mach)
	if err != nil {
		fmt.Fprintln(stderr, "fsvet:", err)
		return 2
	}
	if cfg.line != 0 {
		mach, err = mach.WithLineSize(cfg.line)
		if err != nil {
			fmt.Fprintln(stderr, "fsvet:", err)
			return 2
		}
	}

	reports, err := analyzePatterns(patterns, mach, cfg.trips, stderr)
	if err != nil {
		fmt.Fprintln(stderr, "fsvet:", err)
		return 1
	}

	switch {
	case cfg.jsonOut:
		err = govet.WriteJSON(stdout, reports)
	case cfg.sarifOut:
		err = govet.WriteSARIF(stdout, reports)
	default:
		err = govet.WriteText(stdout, reports)
	}
	if err != nil {
		fmt.Fprintln(stderr, "fsvet:", err)
		return 1
	}
	if cfg.fix {
		files, err := govet.ApplyFixes(reports)
		if err != nil {
			fmt.Fprintln(stderr, "fsvet:", err)
			return 1
		}
		for _, f := range files {
			fmt.Fprintf(stdout, "fsvet: rewrote %s\n", f)
		}
	}
	if govet.Findings(reports) > 0 {
		return 1
	}
	return 0
}

// analyzePatterns loads the patterns and analyzes each package under
// panic isolation: one pathological package degrades to a diagnostic on
// stderr, not a crash that hides the other packages' findings.
func analyzePatterns(patterns []string, mach *machine.Desc, trips int64, stderr io.Writer) ([]govet.PackageReport, error) {
	pkgs, err := govet.Load("", patterns)
	if err != nil {
		return nil, err
	}
	var reports []govet.PackageReport
	for _, pkg := range pkgs {
		pkg.Pass.Machine = mach
		pkg.Pass.AssumedTrips = trips
		diags, err := guard.Do1(func() ([]govet.Diagnostic, error) {
			return govet.Analyze(pkg.Pass)
		})
		if err != nil {
			fmt.Fprintf(stderr, "fsvet: %s: %v\n", pkg.Path, err)
			continue
		}
		reports = append(reports, govet.PackageReport{Path: pkg.Path, Pass: pkg.Pass, Diags: diags})
	}
	return reports, nil
}

// machineByName resolves the -machine flag.
func machineByName(name string) (*machine.Desc, error) {
	switch name {
	case "", "paper48":
		return machine.Paper48(), nil
	case "smalltest":
		return machine.SmallTest(), nil
	case "modern16":
		return machine.Modern16(), nil
	}
	return nil, fmt.Errorf("unknown machine %q (valid: paper48, smalltest, modern16)", name)
}
