package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const fsProne = `
#define N 4096
double hist[N];
double data[N];

#pragma omp parallel for private(i) schedule(static,1) num_threads(8)
for (i = 0; i < N; i++)
    hist[i] += data[i] * data[i];
`

const fsClean = `
#define N 4096
double out[N];
double in[N];

#pragma omp parallel for private(i) schedule(static,8) num_threads(8)
for (i = 0; i < N; i++)
    out[i] = in[i] * 2.0;
`

const fsRace = `
#define N 1024
double total;
double data[N];

#pragma omp parallel for private(i) schedule(static,1) num_threads(8)
for (i = 0; i < N; i++)
    total += data[i];
`

func writeTemp(t *testing.T, name, src string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunExitCodes(t *testing.T) {
	prone := writeTemp(t, "prone.c", fsProne)
	clean := writeTemp(t, "clean.c", fsClean)
	race := writeTemp(t, "race.c", fsRace)
	broken := writeTemp(t, "broken.c", "double a[;\n")

	cases := []struct {
		name     string
		args     []string
		exit     int
		stdoutHa string // substring required on stdout ("" = don't care)
		stderrHa string // substring required on stderr
	}{
		{name: "no args", args: nil, exit: 2, stderrHa: "usage"},
		{name: "unknown flag", args: []string{"-nope", clean}, exit: 2},
		{name: "bad format", args: []string{"-format", "xml", clean}, exit: 2, stderrHa: "format"},
		{name: "bad fail-on", args: []string{"-fail-on", "fatal", clean}, exit: 2, stderrHa: "severity"},
		{name: "bad machine", args: []string{"-machine", "cray", clean}, exit: 2, stderrHa: "machine"},
		{name: "bad kernel", args: []string{"-kernel", "fft"}, exit: 1, stderrHa: "fslint:"},
		{name: "missing file", args: []string{"no/such/file.c"}, exit: 1, stderrHa: "fslint:"},
		{name: "clean file", args: []string{clean}, exit: 0, stdoutHa: "no findings"},
		{name: "prone file", args: []string{prone}, exit: 1, stdoutHa: "FS001"},
		{name: "prone but failing only on errors", args: []string{"-fail-on", "error", prone}, exit: 0, stdoutHa: "FS001"},
		{name: "race fails even on error level", args: []string{"-fail-on", "error", race}, exit: 1, stdoutHa: "RC001"},
		{name: "prone fixed by chunk override", args: []string{"-chunk", "8", prone}, exit: 0, stdoutHa: "no findings"},
		{name: "suggestions count at note level", args: []string{"-fail-on", "note", clean}, exit: 0},
		{name: "parse failure is a finding", args: []string{broken}, exit: 1, stdoutHa: "PARSE"},
		{name: "parse failure does not mask second file", args: []string{broken, prone}, exit: 1, stdoutHa: "FS001"},
		{name: "builtin kernel", args: []string{"-kernel", "heat", "-threads", "8"}, exit: 1, stdoutHa: "FS001"},
		{name: "mixed clean and prone", args: []string{clean, prone}, exit: 1},
		{name: "no suggestions", args: []string{"-suggest=false", prone}, exit: 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			got := run(tc.args, &stdout, &stderr)
			if got != tc.exit {
				t.Fatalf("exit = %d, want %d\nstdout: %s\nstderr: %s", got, tc.exit, stdout.String(), stderr.String())
			}
			if tc.stdoutHa != "" && !strings.Contains(stdout.String(), tc.stdoutHa) {
				t.Fatalf("stdout missing %q:\n%s", tc.stdoutHa, stdout.String())
			}
			if tc.stderrHa != "" && !strings.Contains(stderr.String(), tc.stderrHa) {
				t.Fatalf("stderr missing %q:\n%s", tc.stderrHa, stderr.String())
			}
		})
	}
}

func TestRunJSONFormat(t *testing.T) {
	prone := writeTemp(t, "prone.c", fsProne)
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-format", "json", prone}, &stdout, &stderr); got != 1 {
		t.Fatalf("exit = %d, stderr: %s", got, stderr.String())
	}
	var reports []struct {
		File   string `json:"file"`
		Report struct {
			Diagnostics []struct {
				Code     string `json:"code"`
				Severity string `json:"severity"`
			} `json:"diagnostics"`
		} `json:"report"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &reports); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	if len(reports) != 1 || reports[0].File != prone {
		t.Fatalf("bad reports: %+v", reports)
	}
	found := false
	for _, d := range reports[0].Report.Diagnostics {
		if d.Code == "FS001" && d.Severity == "warning" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no FS001 warning in JSON output: %s", stdout.String())
	}
}

func TestRunSARIFFormat(t *testing.T) {
	prone := writeTemp(t, "prone.c", fsProne)
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-format", "sarif", prone}, &stdout, &stderr); got != 1 {
		t.Fatalf("exit = %d, stderr: %s", got, stderr.String())
	}
	var doc struct {
		Version string `json:"version"`
		Runs    []struct {
			Results []struct {
				RuleID string `json:"ruleId"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &doc); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	if doc.Version != "2.1.0" || len(doc.Runs) != 1 || len(doc.Runs[0].Results) == 0 {
		t.Fatalf("bad SARIF doc: %s", stdout.String())
	}
}

// TestRunTuneMode: -tune appends a FIX-PLAN note carrying the tuner's
// simulator-verified plan for the FS-prone nest, in sorted position, and
// adds nothing for an already-clean nest.
func TestRunTuneMode(t *testing.T) {
	prone := writeTemp(t, "prone.c", fsProne)
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-tune", "-format", "json", prone}, &stdout, &stderr); got != 1 {
		t.Fatalf("exit = %d, stderr: %s", got, stderr.String())
	}
	var reports []struct {
		Report struct {
			Diagnostics []struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"diagnostics"`
		} `json:"report"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &reports); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	var plan string
	for _, d := range reports[0].Report.Diagnostics {
		if d.Code == "FIX-PLAN" {
			plan = d.Message
		}
	}
	if !strings.Contains(plan, "schedule(static,") || !strings.Contains(plan, "-> 0") {
		t.Fatalf("no clean FIX-PLAN note in -tune output: %q\n%s", plan, stdout.String())
	}

	// A clean input gets no FIX-PLAN (the tuner's no-op is not a finding).
	clean := writeTemp(t, "clean.c", fsClean)
	stdout.Reset()
	stderr.Reset()
	if got := run([]string{"-tune", clean}, &stdout, &stderr); got != 0 {
		t.Fatalf("exit = %d, stderr: %s", got, stderr.String())
	}
	if strings.Contains(stdout.String(), "FIX-PLAN") {
		t.Fatalf("clean input got a FIX-PLAN note:\n%s", stdout.String())
	}
}
