// Command fslint is the compile-time false-sharing linter: it runs the
// closed-form static analysis (no simulation) over mini-C sources with
// OpenMP parallel loops and reports false-sharing prone writes (FS001),
// cross-thread line sharing between references (FS002), same-element
// races (RC001), and verified fix suggestions (FIX-CHUNK, FIX-PAD) with
// source spans.
//
// Usage:
//
//	fslint [-threads N] [-chunk C] [-machine M] [-format text|json|sarif]
//	       [-fail-on note|warning|error] [-tune] file.c [file2.c ...]
//	fslint -kernel heat            # lint a built-in paper kernel
//
// With -tune, each constant-bound parallel nest is additionally run
// through the internal/tuner plan search and a FIX-PLAN note carries the
// simulator-verified transformation plan (schedule rewrite, padding,
// interchange, or a combination) alongside the single-fix FIX-CHUNK and
// FIX-PAD suggestions.
//
// Exit status is 0 when no finding reaches the -fail-on severity, 1 when
// findings reach it (or on analysis/I/O errors), and 2 on usage errors.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/analysis"
	"repro/internal/guard"
	"repro/internal/kernels"
	"repro/internal/loopir"
	"repro/internal/machine"
	"repro/internal/minic"
	"repro/internal/tuner"
)

type config struct {
	threads int
	chunk   int64
	mach    string
	format  string
	failOn  string
	kernel  string
	assume  int64
	suggest bool
	tune    bool
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable main: flag errors exit 2, lint findings at or above
// -fail-on (and runtime errors) exit 1.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fslint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var cfg config
	fs.IntVar(&cfg.threads, "threads", 0, "thread count override (0: pragma num_threads, else machine cores)")
	fs.Int64Var(&cfg.chunk, "chunk", 0, "schedule chunk override (0: pragma schedule, else OpenMP static default)")
	fs.StringVar(&cfg.mach, "machine", "", "machine model: paper48 (default), smalltest, modern16")
	fs.StringVar(&cfg.format, "format", "text", "output format: text, json, or sarif")
	fs.StringVar(&cfg.failOn, "fail-on", "warning", "lowest severity that fails the run: note, warning, or error")
	fs.StringVar(&cfg.kernel, "kernel", "", "lint a built-in kernel (heat, dft, linreg) instead of files")
	fs.Int64Var(&cfg.assume, "assume-trips", 0, "assumed trip count for bounds unknown at compile time (0: default 2048)")
	fs.BoolVar(&cfg.suggest, "suggest", true, "emit verified FIX-CHUNK/FIX-PAD suggestions")
	fs.BoolVar(&cfg.tune, "tune", false, "run the plan search per parallel nest and emit FIX-PLAN notes")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	switch cfg.format {
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(stderr, "fslint: unknown -format %q (valid: text, json, sarif)\n", cfg.format)
		return 2
	}
	failOn, err := analysis.ParseSeverity(cfg.failOn)
	if err != nil {
		fmt.Fprintf(stderr, "fslint: invalid -fail-on: %v\n", err)
		return 2
	}
	if cfg.kernel == "" && len(fs.Args()) == 0 {
		fmt.Fprintln(stderr, "usage: fslint [flags] file.c [file2.c ...]  (or -kernel heat|dft|linreg)")
		return 2
	}

	mach, err := machineByName(cfg.mach)
	if err != nil {
		fmt.Fprintln(stderr, "fslint:", err)
		return 2
	}
	// guard.Do1 turns an analysis panic into an ordinary exit-1 error
	// instead of a crash.
	reports, err := guard.Do1(func() ([]analysis.FileReport, error) {
		return lintAll(cfg, mach, fs.Args())
	})
	if err != nil {
		fmt.Fprintln(stderr, "fslint:", err)
		return 1
	}

	switch cfg.format {
	case "json":
		err = analysis.WriteJSON(stdout, reports)
	case "sarif":
		err = analysis.WriteSARIF(stdout, reports)
	default:
		err = analysis.WriteText(stdout, reports)
	}
	if err != nil {
		fmt.Fprintln(stderr, "fslint:", err)
		return 1
	}
	for _, fr := range reports {
		if fr.Report.CountAtOrAbove(failOn) > 0 {
			return 1
		}
	}
	return 0
}

// machineByName resolves the -machine flag.
func machineByName(name string) (*machine.Desc, error) {
	switch name {
	case "", "paper48":
		return machine.Paper48(), nil
	case "smalltest":
		return machine.SmallTest(), nil
	case "modern16":
		return machine.Modern16(), nil
	}
	return nil, fmt.Errorf("unknown machine %q (valid: paper48, smalltest, modern16)", name)
}

// lintAll produces one FileReport per input. Parse and lowering failures
// become PARSE diagnostics on the affected file rather than aborting the
// whole run, so one broken file cannot hide findings in the others.
func lintAll(cfg config, mach *machine.Desc, files []string) ([]analysis.FileReport, error) {
	acfg := analysis.Config{
		Machine:      mach,
		Threads:      cfg.threads,
		Chunk:        cfg.chunk,
		AssumedTrips: cfg.assume,
		NoSuggest:    !cfg.suggest,
	}
	var reports []analysis.FileReport
	if cfg.kernel != "" {
		k, err := kernels.ByName(cfg.kernel, cfg.threads)
		if err != nil {
			return nil, err
		}
		fr, err := lintSource("<kernel:"+cfg.kernel+">", k.Source, acfg, mach, cfg.tune)
		if err != nil {
			return nil, err
		}
		reports = append(reports, fr)
	}
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		fr, err := lintSource(file, string(src), acfg, mach, cfg.tune)
		if err != nil {
			return nil, err
		}
		reports = append(reports, fr)
	}
	return reports, nil
}

// lintSource lints one source. The unit is lowered at the machine's line
// size so symbol bases are aligned for the exact cross-symbol argument.
func lintSource(name, src string, acfg analysis.Config, mach *machine.Desc, tune bool) (analysis.FileReport, error) {
	parseFailure := func(err error) analysis.FileReport {
		return analysis.FileReport{File: name, Report: &analysis.Report{
			Diagnostics: []analysis.Diagnostic{{
				Code:     analysis.CodeParse,
				Severity: analysis.SeverityError,
				Pos:      minic.Pos{Line: 1, Col: 1},
				End:      minic.Pos{Line: 1, Col: 2},
				Message:  err.Error(),
				Exact:    true,
			}},
		}}
	}
	prog, err := minic.Parse(src)
	if err != nil {
		return parseFailure(err), nil
	}
	unit, err := loopir.Lower(prog, loopir.LowerOptions{
		LineSize:       mach.LineSize,
		SymbolicBounds: true,
	})
	if err != nil {
		return parseFailure(err), nil
	}
	rep, err := analysis.Analyze(unit, acfg)
	if err != nil {
		return analysis.FileReport{}, err
	}
	if tune {
		if err := appendPlans(src, unit, acfg, rep); err != nil {
			return analysis.FileReport{}, err
		}
	}
	return analysis.FileReport{File: name, Report: rep}, nil
}

// appendPlans runs the tuner over every tunable nest and appends one
// FIX-PLAN note per improving plan, re-sorting the diagnostics so the
// notes land in span order with everything else. Nests the tuner cannot
// take (sequential, symbolic bounds) are skipped — the static findings
// already cover them.
func appendPlans(src string, unit *loopir.Unit, acfg analysis.Config, rep *analysis.Report) error {
	for idx, nest := range unit.Nests {
		par := nest.Parallelized()
		if par == nil || len(nest.Params()) > 0 {
			continue
		}
		res, err := tuner.Tune(context.Background(), src, tuner.Options{
			Machine: acfg.Machine,
			Threads: acfg.Threads,
			Chunk:   acfg.Chunk,
			Nest:    idx,
		})
		if err != nil {
			var ie *tuner.InputError
			if errors.As(err, &ie) {
				continue
			}
			return err
		}
		if res.NoOp {
			continue
		}
		rep.Diagnostics = append(rep.Diagnostics, analysis.Diagnostic{
			Code:     analysis.CodeFixPlan,
			Severity: analysis.SeverityNote,
			Nest:     idx,
			Pos:      par.P,
			End:      minic.Pos{Line: par.P.Line, Col: par.P.Col + 3},
			Message: fmt.Sprintf("tuner plan: %s (simulated FS %d -> %d)",
				res.PlanSummary, res.Baseline.SimulatedFS, res.Chosen.SimulatedFS),
			Threads: res.Threads,
			Chunk:   res.BaselineChunk,
			Exact:   true,
		})
	}
	analysis.SortDiagnostics(rep.Diagnostics)
	return nil
}
