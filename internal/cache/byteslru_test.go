package cache

import (
	"bytes"
	"fmt"
	"testing"
)

func TestBytesLRUBasics(t *testing.T) {
	var sizes []int
	c := NewBytesLRU(2, func(n int) { sizes = append(sizes, n) })
	c.Add("a", []byte("1"))
	c.Add("b", []byte("2"))
	if v, ok := c.Get("a"); !ok || string(v) != "1" {
		t.Fatalf("Get(a) = %q, %v", v, ok)
	}
	// "a" is now most recent, so adding "c" evicts "b".
	c.Add("c", []byte("3"))
	if _, ok := c.Get("b"); ok {
		t.Fatal("LRU entry b survived eviction")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("recently used entry a was evicted")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if len(sizes) == 0 {
		t.Fatal("onSize never observed a change")
	}
}

func TestBytesLRUDisabled(t *testing.T) {
	c := NewBytesLRU(0, nil)
	c.Add("a", []byte("1"))
	if _, ok := c.Get("a"); ok {
		t.Fatal("disabled cache returned a hit")
	}
	if c.Len() != 0 {
		t.Fatal("disabled cache holds entries")
	}
}

// TestBytesLRUDumpRestore pins the snapshot contract: Dump emits
// oldest-first, and replaying it through Restore reconstructs both the
// contents and the recency order byte for byte.
func TestBytesLRUDumpRestore(t *testing.T) {
	c := NewBytesLRU(8, nil)
	for i := 0; i < 5; i++ {
		c.Add(fmt.Sprintf("k%d", i), []byte{byte(i)})
	}
	c.Get("k1") // bump k1 to most recent
	keys, bodies := c.Dump()
	if len(keys) != 5 {
		t.Fatalf("dump size = %d", len(keys))
	}
	if keys[len(keys)-1] != "k1" {
		t.Fatalf("most recent dumped key = %q, want k1", keys[len(keys)-1])
	}
	if keys[0] != "k0" {
		t.Fatalf("oldest dumped key = %q, want k0", keys[0])
	}

	fresh := NewBytesLRU(8, nil)
	if n := fresh.Restore(keys, bodies); n != 5 {
		t.Fatalf("restored %d entries", n)
	}
	keys2, bodies2 := fresh.Dump()
	for i := range keys {
		if keys[i] != keys2[i] || !bytes.Equal(bodies[i], bodies2[i]) {
			t.Fatalf("entry %d differs after restore: %q vs %q", i, keys[i], keys2[i])
		}
	}
	// Recency survived: adding 7 more should evict oldest-first, keeping k1.
	for i := 0; i < 7; i++ {
		fresh.Add(fmt.Sprintf("new%d", i), nil)
	}
	if _, ok := fresh.Get("k1"); !ok {
		t.Fatal("restored recency order lost: k1 evicted before older keys")
	}
}

// TestBytesLRURestoreOverCapacity pins that restoring into a smaller
// cache keeps the most recent entries, dropping the oldest.
func TestBytesLRURestoreOverCapacity(t *testing.T) {
	keys := []string{"old", "mid", "new"}
	bodies := [][]byte{{1}, {2}, {3}}
	c := NewBytesLRU(2, nil)
	if n := c.Restore(keys, bodies); n != 2 {
		t.Fatalf("resident = %d, want 2", n)
	}
	if _, ok := c.Get("old"); ok {
		t.Fatal("oldest entry survived an over-capacity restore")
	}
	if _, ok := c.Get("new"); !ok {
		t.Fatal("newest entry dropped by an over-capacity restore")
	}
}
