package cache

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/snapshot"
)

func TestBytesLRUBasics(t *testing.T) {
	var sizes []int
	c := NewBytesLRU(2, func(n int) { sizes = append(sizes, n) })
	c.Add("a", []byte("1"))
	c.Add("b", []byte("2"))
	if v, ok := c.Get("a"); !ok || string(v) != "1" {
		t.Fatalf("Get(a) = %q, %v", v, ok)
	}
	// "a" is now most recent, so adding "c" evicts "b".
	c.Add("c", []byte("3"))
	if _, ok := c.Get("b"); ok {
		t.Fatal("LRU entry b survived eviction")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("recently used entry a was evicted")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if len(sizes) == 0 {
		t.Fatal("onSize never observed a change")
	}
}

func TestBytesLRUDisabled(t *testing.T) {
	c := NewBytesLRU(0, nil)
	c.Add("a", []byte("1"))
	if _, ok := c.Get("a"); ok {
		t.Fatal("disabled cache returned a hit")
	}
	if c.Len() != 0 {
		t.Fatal("disabled cache holds entries")
	}
}

// TestBytesLRUDumpRestore pins the snapshot contract: Dump emits
// oldest-first, and replaying it through Restore reconstructs both the
// contents and the recency order byte for byte.
func TestBytesLRUDumpRestore(t *testing.T) {
	c := NewBytesLRU(8, nil)
	for i := 0; i < 5; i++ {
		c.Add(fmt.Sprintf("k%d", i), []byte{byte(i)})
	}
	c.Get("k1") // bump k1 to most recent
	keys, bodies := c.Dump()
	if len(keys) != 5 {
		t.Fatalf("dump size = %d", len(keys))
	}
	if keys[len(keys)-1] != "k1" {
		t.Fatalf("most recent dumped key = %q, want k1", keys[len(keys)-1])
	}
	if keys[0] != "k0" {
		t.Fatalf("oldest dumped key = %q, want k0", keys[0])
	}

	fresh := NewBytesLRU(8, nil)
	if n := fresh.Restore(keys, bodies); n != 5 {
		t.Fatalf("restored %d entries", n)
	}
	keys2, bodies2 := fresh.Dump()
	for i := range keys {
		if keys[i] != keys2[i] || !bytes.Equal(bodies[i], bodies2[i]) {
			t.Fatalf("entry %d differs after restore: %q vs %q", i, keys[i], keys2[i])
		}
	}
	// Recency survived: adding 7 more should evict oldest-first, keeping k1.
	for i := 0; i < 7; i++ {
		fresh.Add(fmt.Sprintf("new%d", i), nil)
	}
	if _, ok := fresh.Get("k1"); !ok {
		t.Fatal("restored recency order lost: k1 evicted before older keys")
	}
}

// TestBytesLRUSnapshotDuringTraffic pins the snapshot-during-traffic
// contract the cluster relies on (nodes snapshot while serving forwards
// and peer fills): Dump taken while concurrent Put/Get traffic runs is
// internally consistent — no duplicate keys, every body matching its
// key — and round-trips through the snapshot encoding with exact
// LoadStats accounting (Declared == Restored, zero Dropped, clean).
// Run under -race this also proves Dump/Restore hold the lock correctly
// against Add/Get.
func TestBytesLRUSnapshotDuringTraffic(t *testing.T) {
	const (
		capacity = 64
		keyspace = 128
		writers  = 4
	)
	body := func(i int) []byte { return []byte(fmt.Sprintf("body-of-key-%d", i)) }
	c := NewBytesLRU(capacity, nil)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			i := seed
			for !stop.Load() {
				k := i % keyspace
				c.Add(fmt.Sprintf("k%d", k), body(k))
				c.Get(fmt.Sprintf("k%d", (i*7)%keyspace))
				i++
			}
		}(w * 31)
	}

	// Take snapshots mid-traffic and verify each one end to end.
	for snap := 0; snap < 50; snap++ {
		keys, bodies := c.Dump()
		if len(keys) != len(bodies) {
			t.Fatalf("snapshot %d: %d keys, %d bodies", snap, len(keys), len(bodies))
		}
		if len(keys) > capacity {
			t.Fatalf("snapshot %d: %d entries exceed capacity %d", snap, len(keys), capacity)
		}
		seen := make(map[string]bool, len(keys))
		entries := make([]snapshot.Entry, len(keys))
		for i, k := range keys {
			if seen[k] {
				t.Fatalf("snapshot %d: duplicate key %q", snap, k)
			}
			seen[k] = true
			var id int
			if _, err := fmt.Sscanf(k, "k%d", &id); err != nil {
				t.Fatalf("snapshot %d: malformed key %q", snap, k)
			}
			if !bytes.Equal(bodies[i], body(id)) {
				t.Fatalf("snapshot %d: key %q carries body %q (torn read?)", snap, k, bodies[i])
			}
			entries[i] = snapshot.Entry{Key: k, Body: bodies[i]}
		}
		var buf bytes.Buffer
		if err := snapshot.Write(&buf, entries); err != nil {
			t.Fatalf("snapshot %d: write: %v", snap, err)
		}
		loaded, st := snapshot.Read(&buf)
		if !st.Clean() || st.Declared != int64(len(entries)) || st.Restored != int64(len(entries)) || st.Dropped != 0 {
			t.Fatalf("snapshot %d: LoadStats = %+v, want clean %d/%d/0", snap, st, len(entries), len(entries))
		}
		target := NewBytesLRU(capacity, nil)
		keys2 := make([]string, len(loaded))
		bodies2 := make([][]byte, len(loaded))
		for i, e := range loaded {
			keys2[i], bodies2[i] = e.Key, e.Body
		}
		if n := target.Restore(keys2, bodies2); n != len(loaded) {
			t.Fatalf("snapshot %d: restored %d of %d", snap, n, len(loaded))
		}
		c.Restore(keys2, bodies2) // concurrent with writers, must not race
	}
	stop.Store(true)
	wg.Wait()

	// Quiescent round trip: recency order survives exactly.
	keys, bodies := c.Dump()
	fresh := NewBytesLRU(capacity, nil)
	fresh.Restore(keys, bodies)
	keys2, bodies2 := fresh.Dump()
	if len(keys) != len(keys2) {
		t.Fatalf("round trip changed size: %d -> %d", len(keys), len(keys2))
	}
	for i := range keys {
		if keys[i] != keys2[i] || !bytes.Equal(bodies[i], bodies2[i]) {
			t.Fatalf("entry %d order/body changed: %q -> %q", i, keys[i], keys2[i])
		}
	}
}

// TestBytesLRURestoreOverCapacity pins that restoring into a smaller
// cache keeps the most recent entries, dropping the oldest.
func TestBytesLRURestoreOverCapacity(t *testing.T) {
	keys := []string{"old", "mid", "new"}
	bodies := [][]byte{{1}, {2}, {3}}
	c := NewBytesLRU(2, nil)
	if n := c.Restore(keys, bodies); n != 2 {
		t.Fatalf("resident = %d, want 2", n)
	}
	if _, ok := c.Get("old"); ok {
		t.Fatal("oldest entry survived an over-capacity restore")
	}
	if _, ok := c.Get("new"); !ok {
		t.Fatal("newest entry dropped by an over-capacity restore")
	}
}
