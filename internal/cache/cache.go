// Package cache provides the cache mechanics shared by the false-sharing
// cost model and the MESI simulator: cache-line address mapping, a
// fully-associative LRU stack with per-line dirty state (the paper's
// per-thread "cache state", Section III-C), and a set-associative LRU cache
// with MESI line states for the machine simulator.
package cache

import "fmt"

// LineState is a MESI coherence state.
type LineState uint8

// MESI states. The paper's model only distinguishes Modified from
// not-Modified; the simulator uses all four.
const (
	Invalid LineState = iota
	Shared
	Exclusive
	Modified
)

// String returns the one-letter MESI name.
func (s LineState) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	}
	return fmt.Sprintf("LineState(%d)", uint8(s))
}

// LineOf maps a byte address to its cache-line index for the given line
// size (which must be a power of two).
func LineOf(addr int64, lineSize int64) int64 { return addr / lineSize }

// LinesTouched returns the first and last line index touched by an access
// of size bytes at addr (an access can straddle a line boundary).
func LinesTouched(addr int64, size int32, lineSize int64) (first, last int64) {
	first = addr / lineSize
	last = (addr + int64(size) - 1) / lineSize
	return first, last
}

type faNode struct {
	line       int64
	modified   bool
	prev, next *faNode
}

// FullyAssoc is a fully-associative LRU stack of cache lines with a
// per-line modified flag. It is the paper's "cache state": inserting an
// element moves it to the top of the stack; when the number of distinct
// lines exceeds the capacity the bottom (LRU) line is evicted.
//
// The zero capacity means unbounded (an infinite stack), used to ablate
// the effect of finite cache capacity on the model.
type FullyAssoc struct {
	capacity   int
	m          map[int64]*faNode
	head, tail *faNode // sentinels
}

// NewFullyAssoc returns an LRU stack holding at most capacity lines
// (capacity <= 0 means unbounded).
func NewFullyAssoc(capacity int) *FullyAssoc {
	f := &FullyAssoc{
		capacity: capacity,
		m:        make(map[int64]*faNode),
		head:     &faNode{},
		tail:     &faNode{},
	}
	f.head.next = f.tail
	f.tail.prev = f.head
	return f
}

// Len returns the number of lines currently in the stack.
func (f *FullyAssoc) Len() int { return len(f.m) }

// Capacity returns the configured capacity (0 = unbounded).
func (f *FullyAssoc) Capacity() int { return f.capacity }

func (f *FullyAssoc) unlink(n *faNode) {
	n.prev.next = n.next
	n.next.prev = n.prev
}

func (f *FullyAssoc) pushFront(n *faNode) {
	n.next = f.head.next
	n.prev = f.head
	f.head.next.prev = n
	f.head.next = n
}

// TouchResult reports what happened during a Touch.
type TouchResult struct {
	Hit          bool  // line was already present
	WasModified  bool  // line was present with the modified flag set
	Evicted      bool  // an LRU eviction occurred
	EvictedLine  int64 // the evicted line (valid if Evicted)
	EvictedDirty bool  // the evicted line was modified
}

// Touch records an access to line, moving it to the top of the stack
// (inserting it if absent) and setting the modified flag when write is
// true. It returns what state the stack was in before the access.
func (f *FullyAssoc) Touch(line int64, write bool) TouchResult {
	var res TouchResult
	if n, ok := f.m[line]; ok {
		res.Hit = true
		res.WasModified = n.modified
		f.unlink(n)
		f.pushFront(n)
		if write {
			n.modified = true
		}
		return res
	}
	n := &faNode{line: line, modified: write}
	f.m[line] = n
	f.pushFront(n)
	if f.capacity > 0 && len(f.m) > f.capacity {
		lru := f.tail.prev
		f.unlink(lru)
		delete(f.m, lru.line)
		res.Evicted = true
		res.EvictedLine = lru.line
		res.EvictedDirty = lru.modified
	}
	return res
}

// Contains reports whether line is present.
func (f *FullyAssoc) Contains(line int64) bool {
	_, ok := f.m[line]
	return ok
}

// IsModified reports whether line is present with the modified flag set.
// This is the paper's ϕ predicate evaluated against one cache state.
func (f *FullyAssoc) IsModified(line int64) bool {
	n, ok := f.m[line]
	return ok && n.modified
}

// Downgrade clears the modified flag of line if present (a coherence
// downgrade after a remote read of a modified line).
func (f *FullyAssoc) Downgrade(line int64) {
	if n, ok := f.m[line]; ok {
		n.modified = false
	}
}

// Invalidate removes line from the stack if present (a coherence
// invalidation after a remote write) and reports whether it was present.
func (f *FullyAssoc) Invalidate(line int64) bool {
	n, ok := f.m[line]
	if !ok {
		return false
	}
	f.unlink(n)
	delete(f.m, line)
	return true
}

// Distance returns the stack distance of line: the number of distinct
// lines above it in the stack (0 for the most recently used line), or -1
// if absent. O(distance).
func (f *FullyAssoc) Distance(line int64) int {
	n, ok := f.m[line]
	if !ok {
		return -1
	}
	d := 0
	for p := f.head.next; p != n; p = p.next {
		d++
	}
	return d
}

// Lines returns the lines from most to least recently used. Intended for
// tests and diagnostics.
func (f *FullyAssoc) Lines() []int64 {
	out := make([]int64, 0, len(f.m))
	for p := f.head.next; p != f.tail; p = p.next {
		out = append(out, p.line)
	}
	return out
}

// Reset empties the stack.
func (f *FullyAssoc) Reset() {
	f.m = make(map[int64]*faNode)
	f.head.next = f.tail
	f.tail.prev = f.head
}

// Geometry describes a cache level.
type Geometry struct {
	SizeBytes int64
	LineSize  int64
	Assoc     int64 // ways per set; 0 = fully associative
}

// NumSets returns the number of sets implied by the geometry.
func (g Geometry) NumSets() int64 {
	if g.LineSize <= 0 {
		return 0
	}
	lines := g.SizeBytes / g.LineSize
	if g.Assoc <= 0 || g.Assoc >= lines {
		return 1
	}
	return lines / g.Assoc
}

// Lines returns the total line count of the cache.
func (g Geometry) Lines() int64 {
	if g.LineSize <= 0 {
		return 0
	}
	return g.SizeBytes / g.LineSize
}

// Validate checks the geometry for consistency.
func (g Geometry) Validate() error {
	if g.SizeBytes <= 0 || g.LineSize <= 0 {
		return fmt.Errorf("cache: geometry must have positive size and line size (got %d/%d)", g.SizeBytes, g.LineSize)
	}
	if g.LineSize&(g.LineSize-1) != 0 {
		return fmt.Errorf("cache: line size %d is not a power of two", g.LineSize)
	}
	if g.SizeBytes%g.LineSize != 0 {
		return fmt.Errorf("cache: size %d not a multiple of line size %d", g.SizeBytes, g.LineSize)
	}
	return nil
}

type way struct {
	line    int64
	state   LineState
	lastUse uint64
}

// SetAssoc is a set-associative LRU cache with MESI line states, used for
// the private caches of the machine simulator.
type SetAssoc struct {
	geom  Geometry
	sets  [][]way
	clock uint64
}

// NewSetAssoc builds a cache with the given geometry.
func NewSetAssoc(geom Geometry) (*SetAssoc, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	numSets := geom.NumSets()
	ways := geom.Lines() / numSets
	s := &SetAssoc{geom: geom, sets: make([][]way, numSets)}
	for i := range s.sets {
		s.sets[i] = make([]way, ways)
	}
	return s, nil
}

// Geometry returns the cache geometry.
func (s *SetAssoc) Geometry() Geometry { return s.geom }

func (s *SetAssoc) setOf(line int64) []way {
	// Set counts need not be powers of two (e.g. a 10 MB L3), so index by
	// modulo rather than masking.
	idx := line % int64(len(s.sets))
	if idx < 0 {
		idx += int64(len(s.sets))
	}
	return s.sets[idx]
}

// State returns the MESI state of line (Invalid if absent).
func (s *SetAssoc) State(line int64) LineState {
	set := s.setOf(line)
	for i := range set {
		if set[i].state != Invalid && set[i].line == line {
			return set[i].state
		}
	}
	return Invalid
}

// Access looks up line, refreshing LRU on hit. It returns the hit state
// (Invalid on miss).
func (s *SetAssoc) Access(line int64) LineState {
	s.clock++
	set := s.setOf(line)
	for i := range set {
		if set[i].state != Invalid && set[i].line == line {
			set[i].lastUse = s.clock
			return set[i].state
		}
	}
	return Invalid
}

// SetState updates the MESI state of a resident line; it reports whether
// the line was resident.
func (s *SetAssoc) SetState(line int64, st LineState) bool {
	set := s.setOf(line)
	for i := range set {
		if set[i].state != Invalid && set[i].line == line {
			if st == Invalid {
				set[i] = way{}
				return true
			}
			set[i].state = st
			return true
		}
	}
	return false
}

// Eviction describes a line displaced by Fill.
type Eviction struct {
	Line  int64
	State LineState
}

// Fill installs line with the given state, evicting the LRU way of its set
// if necessary. The returned eviction is valid when ok is true.
func (s *SetAssoc) Fill(line int64, st LineState) (ev Eviction, ok bool) {
	s.clock++
	set := s.setOf(line)
	victim := -1
	var oldest uint64 = ^uint64(0)
	for i := range set {
		if set[i].state == Invalid {
			victim = i
			oldest = 0
			break
		}
		if set[i].lastUse < oldest {
			oldest = set[i].lastUse
			victim = i
		}
	}
	w := &set[victim]
	if w.state != Invalid {
		ev = Eviction{Line: w.line, State: w.state}
		ok = true
	}
	*w = way{line: line, state: st, lastUse: s.clock}
	return ev, ok
}

// Invalidate removes line, reporting its prior state.
func (s *SetAssoc) Invalidate(line int64) LineState {
	set := s.setOf(line)
	for i := range set {
		if set[i].state != Invalid && set[i].line == line {
			st := set[i].state
			set[i] = way{}
			return st
		}
	}
	return Invalid
}

// CountState returns the number of resident lines in the given state.
func (s *SetAssoc) CountState(st LineState) int {
	n := 0
	for _, set := range s.sets {
		for i := range set {
			if set[i].state == st {
				n++
			}
		}
	}
	return n
}

// ResidentLines returns all resident line indices. For tests.
func (s *SetAssoc) ResidentLines() []int64 {
	var out []int64
	for _, set := range s.sets {
		for i := range set {
			if set[i].state != Invalid {
				out = append(out, set[i].line)
			}
		}
	}
	return out
}
