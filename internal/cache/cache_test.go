package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLineOf(t *testing.T) {
	if LineOf(0, 64) != 0 || LineOf(63, 64) != 0 || LineOf(64, 64) != 1 {
		t.Fatal("LineOf wrong")
	}
	first, last := LinesTouched(60, 8, 64)
	if first != 0 || last != 1 {
		t.Fatalf("straddling access lines = %d..%d", first, last)
	}
	first, last = LinesTouched(64, 8, 64)
	if first != 1 || last != 1 {
		t.Fatalf("aligned access lines = %d..%d", first, last)
	}
}

func TestLineStateString(t *testing.T) {
	if Invalid.String() != "I" || Shared.String() != "S" || Exclusive.String() != "E" || Modified.String() != "M" {
		t.Fatal("state names wrong")
	}
}

func TestFullyAssocBasics(t *testing.T) {
	f := NewFullyAssoc(3)
	r := f.Touch(1, false)
	if r.Hit || r.Evicted {
		t.Fatalf("first touch = %+v", r)
	}
	r = f.Touch(1, true)
	if !r.Hit || r.WasModified {
		t.Fatalf("second touch = %+v", r)
	}
	if !f.IsModified(1) {
		t.Fatal("line 1 should be modified after write")
	}
	r = f.Touch(1, false)
	if !r.Hit || !r.WasModified {
		t.Fatalf("read of modified = %+v", r)
	}
	if !f.IsModified(1) {
		t.Fatal("own read must not clear modified")
	}
}

func TestFullyAssocLRUEviction(t *testing.T) {
	f := NewFullyAssoc(2)
	f.Touch(1, true)
	f.Touch(2, false)
	r := f.Touch(3, false) // evicts 1 (LRU)
	if !r.Evicted || r.EvictedLine != 1 || !r.EvictedDirty {
		t.Fatalf("eviction = %+v", r)
	}
	if f.Contains(1) {
		t.Fatal("line 1 should be gone")
	}
	// Touch 2 to refresh, then insert 4: 3 is now LRU.
	f.Touch(2, false)
	r = f.Touch(4, false)
	if !r.Evicted || r.EvictedLine != 3 {
		t.Fatalf("eviction = %+v", r)
	}
}

func TestFullyAssocMoveToFront(t *testing.T) {
	f := NewFullyAssoc(0)
	f.Touch(1, false)
	f.Touch(2, false)
	f.Touch(3, false)
	if got := f.Lines(); got[0] != 3 || got[2] != 1 {
		t.Fatalf("MRU order = %v", got)
	}
	f.Touch(1, false)
	if got := f.Lines(); got[0] != 1 || got[1] != 3 || got[2] != 2 {
		t.Fatalf("after re-touch order = %v", got)
	}
	if f.Distance(1) != 0 || f.Distance(2) != 2 || f.Distance(99) != -1 {
		t.Fatalf("distances = %d %d %d", f.Distance(1), f.Distance(2), f.Distance(99))
	}
}

func TestFullyAssocUnboundedNeverEvicts(t *testing.T) {
	f := NewFullyAssoc(0)
	for i := int64(0); i < 10000; i++ {
		if r := f.Touch(i, false); r.Evicted {
			t.Fatal("unbounded stack must not evict")
		}
	}
	if f.Len() != 10000 {
		t.Fatalf("len = %d", f.Len())
	}
}

func TestFullyAssocDowngradeInvalidate(t *testing.T) {
	f := NewFullyAssoc(0)
	f.Touch(7, true)
	f.Downgrade(7)
	if f.IsModified(7) {
		t.Fatal("downgrade failed")
	}
	if !f.Contains(7) {
		t.Fatal("downgrade must not remove the line")
	}
	if !f.Invalidate(7) {
		t.Fatal("invalidate should report presence")
	}
	if f.Contains(7) {
		t.Fatal("invalidate failed")
	}
	if f.Invalidate(7) {
		t.Fatal("double invalidate should report absence")
	}
	// Downgrade/invalidate of absent lines are no-ops.
	f.Downgrade(123)
}

func TestFullyAssocReset(t *testing.T) {
	f := NewFullyAssoc(4)
	f.Touch(1, true)
	f.Touch(2, false)
	f.Reset()
	if f.Len() != 0 || f.Contains(1) {
		t.Fatal("reset failed")
	}
	f.Touch(3, false)
	if f.Len() != 1 {
		t.Fatal("stack unusable after reset")
	}
}

// TestPropertyFullyAssocMatchesNaive compares the DLL implementation with a
// naive slice-based LRU on random access streams.
func TestPropertyFullyAssocMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		capacity := r.Intn(8) + 1
		f := NewFullyAssoc(capacity)
		type entry struct {
			line int64
			mod  bool
		}
		var naive []entry // index 0 = MRU
		find := func(line int64) int {
			for i := range naive {
				if naive[i].line == line {
					return i
				}
			}
			return -1
		}
		for step := 0; step < 500; step++ {
			line := int64(r.Intn(12))
			write := r.Intn(2) == 1
			res := f.Touch(line, write)

			idx := find(line)
			wantHit := idx >= 0
			if res.Hit != wantHit {
				t.Fatalf("hit mismatch on line %d", line)
			}
			if wantHit {
				e := naive[idx]
				if res.WasModified != e.mod {
					t.Fatalf("modified mismatch on line %d", line)
				}
				naive = append(naive[:idx], naive[idx+1:]...)
				e.mod = e.mod || write
				naive = append([]entry{e}, naive...)
			} else {
				naive = append([]entry{{line: line, mod: write}}, naive...)
				if len(naive) > capacity {
					victim := naive[len(naive)-1]
					naive = naive[:len(naive)-1]
					if !res.Evicted || res.EvictedLine != victim.line || res.EvictedDirty != victim.mod {
						t.Fatalf("eviction mismatch: got %+v want %+v", res, victim)
					}
				} else if res.Evicted {
					t.Fatal("unexpected eviction")
				}
			}
			if f.Len() != len(naive) {
				t.Fatalf("len mismatch: %d vs %d", f.Len(), len(naive))
			}
		}
	}
}

func TestGeometry(t *testing.T) {
	g := Geometry{SizeBytes: 64 << 10, LineSize: 64, Assoc: 2}
	if g.Lines() != 1024 || g.NumSets() != 512 {
		t.Fatalf("lines/sets = %d/%d", g.Lines(), g.NumSets())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Fully associative geometry: one set.
	fa := Geometry{SizeBytes: 4096, LineSize: 64, Assoc: 0}
	if fa.NumSets() != 1 {
		t.Fatalf("fully assoc sets = %d", fa.NumSets())
	}
	bad := []Geometry{
		{SizeBytes: 0, LineSize: 64},
		{SizeBytes: 4096, LineSize: 60},
		{SizeBytes: 4100, LineSize: 64},
	}
	for _, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("geometry %+v should be invalid", b)
		}
	}
	// Non-power-of-two set counts are allowed (10 MB L3).
	l3 := Geometry{SizeBytes: 10240 << 10, LineSize: 64, Assoc: 16}
	if err := l3.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewSetAssoc(l3); err != nil {
		t.Fatal(err)
	}
}

func TestSetAssocBasics(t *testing.T) {
	sa, err := NewSetAssoc(Geometry{SizeBytes: 512, LineSize: 64, Assoc: 2})
	if err != nil {
		t.Fatal(err)
	}
	// 8 lines, 2-way → 4 sets. Lines 0 and 4 map to set 0.
	if sa.Access(0) != Invalid {
		t.Fatal("cold access should miss")
	}
	sa.Fill(0, Exclusive)
	if sa.Access(0) != Exclusive {
		t.Fatal("hit should return state")
	}
	sa.Fill(4, Shared)
	// Both ways of set 0 full; filling line 8 evicts LRU (line 0).
	ev, ok := sa.Fill(8, Modified)
	if !ok || ev.Line != 0 || ev.State != Exclusive {
		t.Fatalf("eviction = %+v, %v", ev, ok)
	}
	if sa.State(0) != Invalid || sa.State(8) != Modified {
		t.Fatal("post-eviction states wrong")
	}
}

func TestSetAssocLRUWithinSet(t *testing.T) {
	sa, _ := NewSetAssoc(Geometry{SizeBytes: 256, LineSize: 64, Assoc: 4})
	// One set of 4 ways (4 lines total, assoc 4 → 1 set).
	for _, l := range []int64{1, 2, 3, 4} {
		sa.Fill(l, Shared)
	}
	sa.Access(1) // refresh 1; LRU is now 2
	ev, ok := sa.Fill(5, Shared)
	if !ok || ev.Line != 2 {
		t.Fatalf("evicted %+v, want line 2", ev)
	}
}

func TestSetAssocStateOps(t *testing.T) {
	sa, _ := NewSetAssoc(Geometry{SizeBytes: 512, LineSize: 64, Assoc: 2})
	sa.Fill(3, Shared)
	if !sa.SetState(3, Modified) || sa.State(3) != Modified {
		t.Fatal("SetState failed")
	}
	if sa.CountState(Modified) != 1 {
		t.Fatal("CountState wrong")
	}
	if st := sa.Invalidate(3); st != Modified {
		t.Fatalf("Invalidate returned %v", st)
	}
	if sa.Invalidate(3) != Invalid {
		t.Fatal("second invalidate should return Invalid")
	}
	if sa.SetState(99, Shared) {
		t.Fatal("SetState on absent line should fail")
	}
	// SetState to Invalid removes the line.
	sa.Fill(5, Shared)
	sa.SetState(5, Invalid)
	if sa.State(5) != Invalid {
		t.Fatal("SetState(Invalid) should remove")
	}
	if lines := sa.ResidentLines(); len(lines) != 0 {
		t.Fatalf("resident = %v", lines)
	}
}

// TestQuickSetAssocNeverExceedsWays checks the structural invariant that a
// set never holds more valid lines than its associativity.
func TestQuickSetAssocNeverExceedsWays(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		sa, err := NewSetAssoc(Geometry{SizeBytes: 1024, LineSize: 64, Assoc: 2})
		if err != nil {
			return false
		}
		for i := 0; i < 200; i++ {
			line := int64(r.Intn(64))
			if sa.Access(line) == Invalid {
				sa.Fill(line, Shared)
			}
		}
		return len(sa.ResidentLines()) <= 16
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSetAssocNegativeLineIndex(t *testing.T) {
	sa, _ := NewSetAssoc(Geometry{SizeBytes: 512, LineSize: 64, Assoc: 2})
	// Negative line indices (possible for addresses below the base) must
	// not panic and must round-trip.
	sa.Fill(-5, Shared)
	if sa.State(-5) != Shared {
		t.Fatal("negative line index lookup failed")
	}
}
