package cache

import "fmt"

// FlatLRU is a fully-associative LRU stack over a dense cache-line index
// space [0, numLines). It models the same "cache state" as FullyAssoc but
// with array-backed storage: a dense line→slot table plus intrusive
// prev/next slot-index slices, so every operation is O(1) pointer-free
// index arithmetic and the structure performs zero heap allocations after
// construction. The false-sharing model uses it on its hot path once the
// nest's reachable address space has been remapped to dense line ids;
// FullyAssoc remains the general-purpose structure for sparse line spaces.
//
// The recency list is threaded through two sentinel slots (head = cap,
// tail = cap+1), exactly mirroring FullyAssoc's sentinel nodes.
type FlatLRU struct {
	cap      int32   // slot count (= effective capacity in lines)
	used     int32   // slots handed out so far (they fill sequentially)
	live     int32   // resident lines (used minus parked freed slots)
	slotOf   []int32 // dense line id -> slot, -1 if absent
	lineOf   []int32 // slot -> dense line id, -1 for a parked freed slot
	modified []bool  // slot -> modified flag
	prev     []int32 // slot -> more recently used slot (len cap+2)
	next     []int32 // slot -> less recently used slot (len cap+2)
}

// NewFlatLRU returns an LRU stack for dense line ids [0, numLines) holding
// at most capacity lines. capacity <= 0 or >= numLines means effectively
// unbounded: at most numLines distinct lines exist, so numLines slots
// suffice and no eviction can occur.
func NewFlatLRU(numLines int, capacity int) *FlatLRU {
	if numLines < 0 {
		numLines = 0
	}
	if capacity <= 0 || capacity > numLines {
		capacity = numLines
	}
	f := &FlatLRU{
		cap:      int32(capacity),
		slotOf:   make([]int32, numLines),
		lineOf:   make([]int32, capacity),
		modified: make([]bool, capacity),
		prev:     make([]int32, capacity+2),
		next:     make([]int32, capacity+2),
	}
	for i := range f.slotOf {
		f.slotOf[i] = -1
	}
	f.resetList()
	return f
}

func (f *FlatLRU) head() int32 { return f.cap }
func (f *FlatLRU) tail() int32 { return f.cap + 1 }

func (f *FlatLRU) resetList() {
	h, t := f.head(), f.tail()
	f.next[h] = t
	f.prev[t] = h
}

// NumLines returns the size of the dense line-id space.
func (f *FlatLRU) NumLines() int { return len(f.slotOf) }

// Len returns the number of lines currently in the stack.
func (f *FlatLRU) Len() int { return int(f.live) }

// Capacity returns the effective capacity in lines.
func (f *FlatLRU) Capacity() int { return int(f.cap) }

func (f *FlatLRU) unlink(s int32) {
	p, n := f.prev[s], f.next[s]
	f.next[p] = n
	f.prev[n] = p
}

func (f *FlatLRU) pushFront(s int32) {
	h := f.head()
	n := f.next[h]
	f.next[s] = n
	f.prev[s] = h
	f.prev[n] = s
	f.next[h] = s
}

// Touch records an access to the dense line id, moving it to the top of
// the stack (inserting it if absent) and setting the modified flag when
// write is true. Semantics match FullyAssoc.Touch; the returned
// EvictedLine is a dense line id.
func (f *FlatLRU) Touch(line int64, write bool) TouchResult {
	var res TouchResult
	if s := f.slotOf[line]; s >= 0 {
		res.Hit = true
		res.WasModified = f.modified[s]
		f.unlink(s)
		f.pushFront(s)
		if write {
			f.modified[s] = true
		}
		return res
	}
	var s int32
	if f.used < f.cap {
		s = f.used
		f.used++
	} else {
		// All slots handed out: reuse the LRU slot. Parked freed slots
		// (from Invalidate) sit at the very tail, so they are recycled
		// first without displacing a live line; evicting a live slot is a
		// genuine capacity miss.
		s = f.prev[f.tail()]
		f.unlink(s)
		if f.lineOf[s] >= 0 {
			res.Evicted = true
			res.EvictedLine = int64(f.lineOf[s])
			res.EvictedDirty = f.modified[s]
			f.slotOf[f.lineOf[s]] = -1
			f.live--
		}
	}
	f.slotOf[line] = s
	f.lineOf[s] = int32(line)
	f.modified[s] = write
	f.pushFront(s)
	f.live++
	return res
}

// Contains reports whether the dense line id is present.
func (f *FlatLRU) Contains(line int64) bool { return f.slotOf[line] >= 0 }

// IsModified reports whether the line is present with the modified flag
// set (the paper's ϕ predicate against one cache state).
func (f *FlatLRU) IsModified(line int64) bool {
	s := f.slotOf[line]
	return s >= 0 && f.modified[s]
}

// Downgrade clears the modified flag of line if present.
func (f *FlatLRU) Downgrade(line int64) {
	if s := f.slotOf[line]; s >= 0 {
		f.modified[s] = false
	}
}

// Invalidate removes line from the stack if present and reports whether it
// was present. The freed slot is recycled through an internal free chain:
// it is pushed just above the tail sentinel so the sequential slot
// allocator never has to know about holes.
func (f *FlatLRU) Invalidate(line int64) bool {
	s := f.slotOf[line]
	if s < 0 {
		return false
	}
	f.slotOf[line] = -1
	f.unlink(s)
	// Park the freed slot at the LRU end with no line mapped to it: it
	// will be the next eviction victim, and re-filling it is harmless
	// because slotOf no longer points at it.
	f.lineOf[s] = -1
	f.modified[s] = false
	f.parkFreed(s)
	f.live--
	return true
}

// parkFreed reinserts a freed slot at the LRU end so Touch's full-capacity
// path reuses it before displacing any live line.
func (f *FlatLRU) parkFreed(s int32) {
	t := f.tail()
	p := f.prev[t]
	f.next[s] = t
	f.prev[s] = p
	f.next[p] = s
	f.prev[t] = s
}

// Distance returns the stack distance of line: the number of distinct
// lines above it in the stack (0 for the most recently used line), or -1
// if absent. O(distance), for tests and diagnostics.
func (f *FlatLRU) Distance(line int64) int {
	s := f.slotOf[line]
	if s < 0 {
		return -1
	}
	d := 0
	for p := f.next[f.head()]; p != s; p = f.next[p] {
		d++
	}
	return d
}

// Lines returns the resident dense line ids from most to least recently
// used. Intended for tests and diagnostics.
func (f *FlatLRU) Lines() []int64 {
	out := make([]int64, 0, f.live)
	for s := f.next[f.head()]; s != f.tail(); s = f.next[s] {
		if f.lineOf[s] >= 0 {
			out = append(out, int64(f.lineOf[s]))
		}
	}
	return out
}

// Reset empties the stack, retaining all storage.
func (f *FlatLRU) Reset() {
	for s := f.next[f.head()]; s != f.tail(); s = f.next[s] {
		if f.lineOf[s] >= 0 {
			f.slotOf[f.lineOf[s]] = -1
		}
	}
	f.used = 0
	f.live = 0
	f.resetList()
}

// String summarizes the structure for diagnostics.
func (f *FlatLRU) String() string {
	return fmt.Sprintf("FlatLRU(lines=%d cap=%d len=%d)", len(f.slotOf), f.cap, f.live)
}
