package cache

import (
	"container/list"
	"sync"
)

// BytesLRU is a bounded, thread-safe LRU of byte payloads keyed by
// string. It backs the service's content-addressed result cache, where
// values are exact wire bytes, but carries no service policy itself —
// just recency mechanics plus Dump/Restore so a snapshot can persist
// the cache across restarts with its recency order intact.
type BytesLRU struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used
	entries map[string]*list.Element
	onSize  func(int)
}

type bytesEntry struct {
	key  string
	body []byte
}

// NewBytesLRU builds a cache holding at most capacity entries; capacity
// <= 0 disables caching entirely (every Get misses, Add is a no-op).
// onSize, when non-nil, observes the entry count after every change.
func NewBytesLRU(capacity int, onSize func(int)) *BytesLRU {
	return &BytesLRU{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[string]*list.Element),
		onSize:  onSize,
	}
}

// Get returns the payload for key, marking it most recently used.
func (c *BytesLRU) Get(key string) ([]byte, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*bytesEntry).body, true
}

// Add inserts (or refreshes) key's payload, evicting the least recently
// used entry when full.
func (c *BytesLRU) Add(key string, body []byte) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*bytesEntry).body = body
		c.order.MoveToFront(el)
		return
	}
	for len(c.entries) >= c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*bytesEntry).key)
	}
	c.entries[key] = c.order.PushFront(&bytesEntry{key: key, body: body})
	c.notifySizeLocked()
}

// Len returns the number of cached entries.
func (c *BytesLRU) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Dump returns every entry in least-to-most recently used order, so
// replaying the slice through Add reconstructs both contents and
// recency. Bodies are not copied; callers must treat them as immutable
// (the service only ever stores bytes it never mutates).
func (c *BytesLRU) Dump() (keys []string, bodies [][]byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys = make([]string, 0, len(c.entries))
	bodies = make([][]byte, 0, len(c.entries))
	for el := c.order.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*bytesEntry)
		keys = append(keys, e.key)
		bodies = append(bodies, e.body)
	}
	return keys, bodies
}

// Restore bulk-loads entries in the order given (oldest first, as
// produced by Dump), respecting capacity: when entries outnumber the
// capacity, the oldest are dropped by normal LRU eviction. It returns
// how many entries are resident afterwards.
func (c *BytesLRU) Restore(keys []string, bodies [][]byte) int {
	for i := range keys {
		c.Add(keys[i], bodies[i])
	}
	return c.Len()
}

func (c *BytesLRU) notifySizeLocked() {
	if c.onSize != nil {
		c.onSize(len(c.entries))
	}
}
