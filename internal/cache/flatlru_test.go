package cache

import (
	"math/rand"
	"testing"
)

// opKind is one step of a randomized conformance sequence.
type opKind int

const (
	opTouch opKind = iota
	opTouchWrite
	opDowngrade
	opInvalidate
)

// TestFlatLRUConformance cross-checks FlatLRU against FullyAssoc on
// randomized access sequences: same hits, evictions, modified-state
// transitions, stack distances and recency order at every step.
func TestFlatLRUConformance(t *testing.T) {
	cases := []struct {
		name     string
		numLines int
		capacity int
		steps    int
	}{
		{"small-tight", 16, 4, 4000},
		{"small-roomy", 16, 12, 4000},
		{"unbounded", 64, 0, 4000},
		{"capacity-one", 32, 1, 2000},
		{"large", 512, 64, 8000},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			ref := NewFullyAssoc(tc.capacity)
			flat := NewFlatLRU(tc.numLines, tc.capacity)
			if flat.NumLines() != tc.numLines {
				t.Fatalf("NumLines = %d", flat.NumLines())
			}
			for step := 0; step < tc.steps; step++ {
				line := int64(rng.Intn(tc.numLines))
				var op opKind
				switch r := rng.Intn(10); {
				case r < 5:
					op = opTouch
				case r < 8:
					op = opTouchWrite
				case r < 9:
					op = opDowngrade
				default:
					op = opInvalidate
				}
				switch op {
				case opTouch, opTouchWrite:
					write := op == opTouchWrite
					got := flat.Touch(line, write)
					want := ref.Touch(line, write)
					if got != want {
						t.Fatalf("step %d: Touch(%d,%v) = %+v, want %+v", step, line, write, got, want)
					}
				case opDowngrade:
					flat.Downgrade(line)
					ref.Downgrade(line)
				case opInvalidate:
					got := flat.Invalidate(line)
					want := ref.Invalidate(line)
					if got != want {
						t.Fatalf("step %d: Invalidate(%d) = %v, want %v", step, line, got, want)
					}
				}
				if flat.Len() != ref.Len() {
					t.Fatalf("step %d: Len = %d, want %d", step, flat.Len(), ref.Len())
				}
				if flat.Contains(line) != ref.Contains(line) {
					t.Fatalf("step %d: Contains(%d) mismatch", step, line)
				}
				if flat.IsModified(line) != ref.IsModified(line) {
					t.Fatalf("step %d: IsModified(%d) mismatch", step, line)
				}
				if d, want := flat.Distance(line), ref.Distance(line); d != want {
					t.Fatalf("step %d: Distance(%d) = %d, want %d", step, line, d, want)
				}
				// Full recency order every so often (O(n) check).
				if step%97 == 0 {
					got, want := flat.Lines(), ref.Lines()
					if len(got) != len(want) {
						t.Fatalf("step %d: Lines len %d vs %d", step, len(got), len(want))
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("step %d: Lines[%d] = %d, want %d\n got %v\nwant %v",
								step, i, got[i], want[i], got, want)
						}
					}
				}
			}
		})
	}
}

func TestFlatLRUBasics(t *testing.T) {
	f := NewFlatLRU(8, 2)
	if f.Capacity() != 2 || f.Len() != 0 {
		t.Fatalf("fresh: %s", f)
	}
	if res := f.Touch(3, true); res.Hit || res.Evicted {
		t.Fatalf("first touch: %+v", res)
	}
	if res := f.Touch(3, false); !res.Hit || !res.WasModified {
		t.Fatalf("re-touch: %+v", res)
	}
	f.Touch(5, false)
	// Touching a third line evicts the LRU (line 3, dirty).
	res := f.Touch(7, false)
	if !res.Evicted || res.EvictedLine != 3 || !res.EvictedDirty {
		t.Fatalf("eviction: %+v", res)
	}
	if f.Contains(3) || !f.Contains(5) || !f.Contains(7) {
		t.Fatal("residency wrong after eviction")
	}
	// Unbounded capacity never evicts.
	u := NewFlatLRU(4, 0)
	for line := int64(0); line < 4; line++ {
		if res := u.Touch(line, false); res.Evicted {
			t.Fatalf("unbounded evicted at line %d", line)
		}
	}
	if u.Len() != 4 {
		t.Fatalf("unbounded Len = %d", u.Len())
	}
}

func TestFlatLRUInvalidateRecyclesSlots(t *testing.T) {
	f := NewFlatLRU(8, 2)
	f.Touch(0, true)
	f.Touch(1, false)
	if !f.Invalidate(0) {
		t.Fatal("invalidate resident line")
	}
	if f.Invalidate(0) {
		t.Fatal("double invalidate")
	}
	// The freed slot must be reused without evicting line 1.
	if res := f.Touch(2, false); res.Evicted {
		t.Fatalf("parked slot not recycled: %+v", res)
	}
	if !f.Contains(1) || !f.Contains(2) || f.Len() != 2 {
		t.Fatalf("state after recycle: %v", f.Lines())
	}
	// Next insert must evict the genuine LRU (line 1).
	if res := f.Touch(3, false); !res.Evicted || res.EvictedLine != 1 {
		t.Fatalf("eviction after recycle: %+v", res)
	}
}

func TestFlatLRUReset(t *testing.T) {
	f := NewFlatLRU(16, 4)
	for line := int64(0); line < 6; line++ {
		f.Touch(line, line%2 == 0)
	}
	f.Invalidate(4)
	f.Reset()
	if f.Len() != 0 || len(f.Lines()) != 0 {
		t.Fatalf("reset left state: %v", f.Lines())
	}
	for line := int64(0); line < 16; line++ {
		if f.Contains(line) || f.IsModified(line) {
			t.Fatalf("line %d still resident after reset", line)
		}
	}
	if res := f.Touch(9, false); res.Hit || res.Evicted {
		t.Fatalf("touch after reset: %+v", res)
	}
}

// TestFlatLRUZeroAllocSteadyState verifies the construction-only
// allocation contract of the hot path.
func TestFlatLRUZeroAllocSteadyState(t *testing.T) {
	f := NewFlatLRU(256, 32)
	rng := rand.New(rand.NewSource(7))
	lines := make([]int64, 4096)
	for i := range lines {
		lines[i] = int64(rng.Intn(256))
	}
	allocs := testing.AllocsPerRun(10, func() {
		for i, line := range lines {
			f.Touch(line, i%3 == 0)
			if i%17 == 0 {
				f.Downgrade(line)
			}
			if i%29 == 0 {
				f.Invalidate(line)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state allocations = %v, want 0", allocs)
	}
}
