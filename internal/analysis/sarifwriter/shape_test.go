package sarifwriter_test

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/sarifwriter"
	"repro/internal/govet"
	"repro/internal/minic"
)

// Both SARIF producers — fslint (mini-C diagnostics) and fsvet (Go
// diagnostics) — emit through the shared sarifwriter. This test renders
// a real document from each and validates the common SARIF 2.1.0 shape
// with one checker, so the producers cannot drift apart: a schema
// regression in the writer fails both subtests identically.

// checkShape validates the SARIF 2.1.0 required fields of doc and
// returns the decoded run for producer-specific checks.
func checkShape(t *testing.T, raw []byte, wantDriver string, wantMinResults int) map[string]any {
	t.Helper()
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if doc["version"] != sarifwriter.Version {
		t.Fatalf("version = %v", doc["version"])
	}
	if schema, _ := doc["$schema"].(string); !strings.Contains(schema, "sarif-schema-2.1.0") {
		t.Fatalf("$schema = %q", schema)
	}
	runs, ok := doc["runs"].([]any)
	if !ok || len(runs) != 1 {
		t.Fatalf("runs = %v", doc["runs"])
	}
	run := runs[0].(map[string]any)
	driver := run["tool"].(map[string]any)["driver"].(map[string]any)
	if driver["name"] != wantDriver {
		t.Fatalf("driver name = %v, want %s", driver["name"], wantDriver)
	}
	rules, ok := driver["rules"].([]any)
	if !ok || len(rules) == 0 {
		t.Fatal("driver has no rules")
	}
	ruleIDAt := make([]string, len(rules))
	for i, r := range rules {
		rm := r.(map[string]any)
		id, _ := rm["id"].(string)
		if id == "" {
			t.Fatalf("rule without id: %v", r)
		}
		if rm["shortDescription"].(map[string]any)["text"] == "" {
			t.Fatalf("rule %s without shortDescription.text", id)
		}
		ruleIDAt[i] = id
	}
	results, ok := run["results"].([]any)
	if !ok {
		t.Fatalf("results must be a non-null array, got %v", run["results"])
	}
	if len(results) < wantMinResults {
		t.Fatalf("got %d results, want >= %d", len(results), wantMinResults)
	}
	for _, r := range results {
		res := r.(map[string]any)
		ruleID, _ := res["ruleId"].(string)
		if ruleID == "" {
			t.Fatalf("result without ruleId: %v", res)
		}
		// ruleIndex must be in range and point at the matching registry
		// entry (unknown rules fall back to 0 by contract).
		idx, ok := res["ruleIndex"].(float64)
		if !ok || idx < 0 || int(idx) >= len(ruleIDAt) {
			t.Fatalf("ruleIndex %v out of range for %d rules", res["ruleIndex"], len(ruleIDAt))
		}
		if got := ruleIDAt[int(idx)]; got != ruleID && idx != 0 {
			t.Fatalf("ruleIndex %d names %s, result says %s", int(idx), got, ruleID)
		}
		switch res["level"] {
		case "note", "warning", "error":
		default:
			t.Fatalf("bad level %v", res["level"])
		}
		if res["message"].(map[string]any)["text"] == "" {
			t.Fatalf("result without message.text: %v", res)
		}
		locs, ok := res["locations"].([]any)
		if !ok || len(locs) != 1 {
			t.Fatalf("result without exactly one location: %v", res)
		}
		phys := locs[0].(map[string]any)["physicalLocation"].(map[string]any)
		if phys["artifactLocation"].(map[string]any)["uri"] == "" {
			t.Fatalf("location without artifact uri: %v", phys)
		}
		region := phys["region"].(map[string]any)
		for _, k := range []string{"startLine", "startColumn", "endLine", "endColumn"} {
			if v, ok := region[k].(float64); !ok || v < 1 {
				t.Fatalf("region %s = %v, want >= 1", k, region[k])
			}
		}
	}
	return run
}

func TestSARIFShapeBothProducers(t *testing.T) {
	t.Run("fslint", func(t *testing.T) {
		rep := &analysis.Report{Diagnostics: []analysis.Diagnostic{{
			Code:     analysis.CodeFSWrite,
			Severity: analysis.SeverityWarning,
			Pos:      minic.Pos{Line: 3, Col: 5},
			End:      minic.Pos{Line: 3, Col: 20},
			Message:  "write to a[i] false-shares across threads",
			Exact:    true,
		}, {
			Code:     analysis.CodeParse,
			Severity: analysis.SeverityError,
			Pos:      minic.Pos{Line: 1, Col: 1},
			End:      minic.Pos{Line: 1, Col: 2},
			Message:  "unexpected token",
			Exact:    true,
		}}}
		var buf bytes.Buffer
		if err := analysis.WriteSARIF(&buf, []analysis.FileReport{{File: "victim.c", Report: rep}}); err != nil {
			t.Fatal(err)
		}
		checkShape(t, buf.Bytes(), "fslint", 2)
	})

	t.Run("fsvet", func(t *testing.T) {
		src := `package p

type r struct{ x, y int64 }

var d = make([]r, 512)

func F() {
	for i := 0; i < 512; i++ {
		go func(i int) { d[i].x = 1 }(i)
	}
}
`
		fset := token.NewFileSet()
		pass, _, err := govet.CheckSource(fset, "victim.go", []byte(src), nil)
		if err != nil {
			t.Fatal(err)
		}
		diags, err := govet.Analyze(pass)
		if err != nil {
			t.Fatal(err)
		}
		if len(diags) == 0 {
			t.Fatal("fan-out source produced no diagnostics")
		}
		var buf bytes.Buffer
		reports := []govet.PackageReport{{Path: "p", Pass: pass, Diags: diags}}
		if err := govet.WriteSARIF(&buf, reports); err != nil {
			t.Fatal(err)
		}
		run := checkShape(t, buf.Bytes(), "fsvet", 1)
		// fsvet's registry must carry all three stable codes.
		rules := run["tool"].(map[string]any)["driver"].(map[string]any)["rules"].([]any)
		have := map[string]bool{}
		for _, r := range rules {
			have[r.(map[string]any)["id"].(string)] = true
		}
		for _, want := range []string{govet.CodeHotLine, govet.CodeAdjacentWrites, govet.CodeUnpaddedShard} {
			if !have[want] {
				t.Fatalf("fsvet rule registry missing %s", want)
			}
		}
	})
}

// TestWriterNormalization pins the writer's own contracts: empty result
// sets stay non-null arrays, out-of-range regions clamp to 1-based
// non-empty, and unknown rule IDs fall back to ruleIndex 0.
func TestWriterNormalization(t *testing.T) {
	rules := []sarifwriter.Rule{{ID: "R1", Description: "rule one"}}

	var buf bytes.Buffer
	if err := sarifwriter.Write(&buf, "t", rules, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"results": []`) {
		t.Fatalf("empty results must render as []: %s", buf.String())
	}

	buf.Reset()
	err := sarifwriter.Write(&buf, "t", rules, []sarifwriter.Result{{
		RuleID: "UNKNOWN", Level: sarifwriter.LevelNote, Message: "m", URI: "f",
		Region: sarifwriter.Region{StartLine: 0, StartColumn: -3, EndLine: 0, EndColumn: 0},
	}})
	if err != nil {
		t.Fatal(err)
	}
	run := checkShape(t, buf.Bytes(), "t", 1)
	res := run["results"].([]any)[0].(map[string]any)
	if res["ruleIndex"].(float64) != 0 {
		t.Fatalf("unknown rule must index 0, got %v", res["ruleIndex"])
	}
}
