// Package sarifwriter is the one SARIF 2.1.0 producer shared by every
// analyzer in the repository. fslint (mini-C, minic.Pos spans) and fsvet
// (Go, token.Pos spans) both report diagnostics in their own position
// vocabulary; each adapts its findings into the position-agnostic Result
// type here, so the serialized schema shape — tool driver, rule registry,
// ruleIndex consistency, 1-based regions, non-null results arrays — is
// maintained (and tested) in exactly one place.
//
// Only the mandatory slice of the SARIF 2.1.0 schema is emitted: a tool
// driver with rule metadata, and one result per diagnostic with a
// physical location region.
package sarifwriter

import (
	"encoding/json"
	"io"
)

// SchemaURI and Version identify the emitted document flavor.
const (
	SchemaURI = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
	Version   = "2.1.0"
)

// Levels from the SARIF result-level vocabulary accepted in Result.Level;
// anything else is normalized to "none" by Write.
const (
	LevelNote    = "note"
	LevelWarning = "warning"
	LevelError   = "error"
)

// Rule is one entry of a tool's stable rule registry.
type Rule struct {
	ID          string
	Description string
	HelpURI     string
}

// Region is a 1-based source span; End is one past the last character.
// Write normalizes degenerate spans (End at or before Start) to a
// one-character region so no emitted region is empty.
type Region struct {
	StartLine, StartColumn int
	EndLine, EndColumn     int
}

// Result is one diagnostic in position-agnostic form: the producing
// analyzer has already rendered its native span into URI + Region.
type Result struct {
	RuleID  string
	Level   string // LevelNote, LevelWarning or LevelError
	Message string
	URI     string
	Region  Region
}

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	Version        string      `json:"version,omitempty"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
	HelpURI          string       `json:"helpUri,omitempty"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
	EndLine     int `json:"endLine"`
	EndColumn   int `json:"endColumn"`
}

// normalize clamps a region to the 1-based, non-empty shape the schema
// tests require.
func normalize(r Region) sarifRegion {
	if r.StartLine < 1 {
		r.StartLine = 1
	}
	if r.StartColumn < 1 {
		r.StartColumn = 1
	}
	if r.EndLine < r.StartLine || (r.EndLine == r.StartLine && r.EndColumn <= r.StartColumn) {
		r.EndLine = r.StartLine
		r.EndColumn = r.StartColumn + 1
	}
	return sarifRegion{
		StartLine:   r.StartLine,
		StartColumn: r.StartColumn,
		EndLine:     r.EndLine,
		EndColumn:   r.EndColumn,
	}
}

func level(s string) string {
	switch s {
	case LevelNote, LevelWarning, LevelError:
		return s
	}
	return "none"
}

// Write renders one SARIF 2.1.0 run for the named tool. Every result's
// RuleID should appear in rules; unknown IDs degrade to ruleIndex 0 so
// the document stays schema-valid rather than failing the whole render.
func Write(w io.Writer, toolName string, rules []Rule, results []Result) error {
	drv := sarifDriver{Name: toolName, Rules: make([]sarifRule, len(rules))}
	index := make(map[string]int, len(rules))
	for i, r := range rules {
		drv.Rules[i] = sarifRule{
			ID:               r.ID,
			ShortDescription: sarifMessage{Text: r.Description},
			HelpURI:          r.HelpURI,
		}
		index[r.ID] = i
	}
	run := sarifRun{
		Tool:    sarifTool{Driver: drv},
		Results: []sarifResult{},
	}
	for _, res := range results {
		idx, ok := index[res.RuleID]
		if !ok {
			idx = 0
		}
		run.Results = append(run.Results, sarifResult{
			RuleID:    res.RuleID,
			RuleIndex: idx,
			Level:     level(res.Level),
			Message:   sarifMessage{Text: res.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysicalLocation{
				ArtifactLocation: sarifArtifactLocation{URI: res.URI},
				Region:           normalize(res.Region),
			}}},
		})
	}
	log := sarifLog{Schema: SchemaURI, Version: Version, Runs: []sarifRun{run}}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
