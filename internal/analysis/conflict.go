package analysis

import (
	"fmt"
	"strings"

	"repro/internal/affine"
	"repro/internal/sched"
)

// maxEnum bounds every explicit trip enumeration in the pair check. The
// checks are exact whenever the joint owner/alignment period (or the trip
// range itself) fits the budget; beyond it they sample a full prefix and
// mark the finding inexact.
const maxEnum = 1 << 16

// selfResult is the outcome of the closed-form self check of one write.
type selfResult struct {
	straddles int64 // chunk boundaries whose adjacent writes share a line (one outer instance)
	race      bool  // differently-owned trips write overlapping bytes
	exact     bool
}

// selfCheck decides whether a written reference false-shares with itself
// across chunk boundaries under plan. The write at parallel trip k covers
// [K + A·k, K + A·k + W); at boundary j (between trips c·j−1 and c·j,
// always owned by different threads when the team has ≥2 threads) the two
// adjacent footprints sit |A| bytes apart, so with δ = |A| − W + 1 they
// share a cache line iff δ ≤ 0 (they overlap outright) or the upper
// footprint's start x_j = K' + (A·c)·j satisfies x_j mod L ≥ δ. Counting
// boundaries with that residue property is affine.CountResidueAtLeast.
//
// Adjacency is complete for the verdict: if any two differently-owned
// trips share a line, the two trips adjacent to some chunk boundary
// between them do too (the footprint start is monotonic in k).
func (na *nestAnalysis) selfCheck(m *refModel, plan sched.Plan) selfResult {
	res := selfResult{exact: m.exact && m.dense && m.instExact && na.boundsExact}
	boundaries := ceilDiv(na.npar, plan.Chunk) - 1
	if boundaries <= 0 {
		return res
	}
	if m.A == 0 {
		// Every trip writes the same bytes: with ≥2 chunks two threads
		// write the same element — a data race, not false sharing.
		res.race = true
		return res
	}
	absA := abs64(m.A)
	delta := absA - m.W + 1
	if delta <= 0 {
		// Footprints of adjacent trips overlap: every boundary both
		// straddles a line and races on the overlapping bytes.
		res.straddles = boundaries
		res.race = true
		return res
	}
	kp := m.K
	if m.A < 0 {
		kp += absA
	}
	res.straddles = affine.CountResidueAtLeast(kp, m.A*plan.Chunk, na.L, delta, 1, boundaries)
	return res
}

// pairResult is the outcome of checking one reference pair.
type pairResult struct {
	overlap bool // differently-owned trips touch the same bytes (race/true sharing)
	share   bool // differently-owned trips touch the same cache line
	exact   bool
}

// pairCheck decides whether refs m1 (at trip k) and m2 (at trip k−d, any
// d) can touch the same element or cache line from differently-owned
// trips under plan. Both refs must be on the same symbol; distinct
// symbols never share a line because lowering aligns every base to the
// unit line size, which the machine's divides.
func (na *nestAnalysis) pairCheck(m1, m2 *refModel, plan sched.Plan) pairResult {
	res := pairResult{exact: m1.exact && m2.exact && m1.dense && m2.dense && na.boundsExact}
	// First-instance geometry generalizes only when both refs shift
	// identically and line-aligned across outer instances.
	for i := range m1.outerStride {
		if m1.outerStride[i] != m2.outerStride[i] {
			res.exact = false
		}
		if s := m1.outerStride[i]; s != 0 && s%na.L != 0 {
			res.exact = false
		}
	}
	numChunks := ceilDiv(na.npar, plan.Chunk)
	if numChunks < 2 {
		return res // one chunk, one owner: nothing is cross-thread
	}

	switch {
	case m1.A == 0 && m2.A == 0:
		// Both regions fixed: any line they share is shared by every
		// chunk's owner.
		if intervalsTouch(m1.K, m1.W, m2.K, m2.W) {
			res.overlap, res.share = true, true
		} else if linesTouch(m1.K, m1.W, m2.K, m2.W, na.L) {
			res.share = true
		}
	case m1.A == m2.A:
		na.pairEqualStride(m1, m2, plan, &res)
	default:
		na.pairUnequalStride(m1, m2, plan, &res)
	}
	return res
}

// pairEqualStride handles the common case of two refs advancing in
// lockstep (A1 = A2 = A ≠ 0): the byte gap between ref1 at trip k and
// ref2 at trip k−d is gap(d) = (K2−K1) − A·d, independent of k. Only a
// small window of lags d can bring the footprints within a line of each
// other; for each, line-sharing depends on the absolute alignment
// x1 = K1 + A·k, periodic in k with period L/gcd(|A|,L), while ownership
// is periodic with period chunk·threads — so scanning one joint period of
// the valid trip range is complete.
func (na *nestAnalysis) pairEqualStride(m1, m2 *refModel, plan sched.Plan, res *pairResult) {
	A := m1.A
	dK := m2.K - m1.K
	// gap(d) ∈ [lo, hi] is necessary for any byte or line proximity.
	lo := -(m2.W + na.L - 1)
	hi := m1.W + na.L - 1
	// Solve lo ≤ dK − A·d ≤ hi for d.
	dLo := ceilDivFloor(dK-hi, A, true)
	dHi := ceilDivFloor(dK-lo, A, false)
	if A < 0 {
		dLo, dHi = ceilDivFloor(dK-lo, A, true), ceilDivFloor(dK-hi, A, false)
	}
	dLo = max(dLo, -(na.npar - 1))
	dHi = min(dHi, na.npar-1)

	per := affine.ResiduePeriod(A, na.L)
	ownPer := plan.Chunk * int64(plan.NumThreads)
	period := lcm64(per, ownPer)

	for d := dLo; d <= dHi; d++ {
		if d == 0 {
			continue // same trip, same thread
		}
		gap := dK - A*d
		overlapGeom := gap > -m2.W && gap < m1.W
		kLo := max(int64(0), d)
		kHi := min(na.npar-1, na.npar-1+d)
		if kLo > kHi {
			continue
		}
		span := kHi - kLo + 1
		limit := span
		if period > 0 && period < limit {
			limit = period
		}
		if limit > maxEnum {
			limit = maxEnum
			res.exact = false
		}
		for k := kLo; k < kLo+limit; k++ {
			if plan.Owner(k) == plan.Owner(k-d) {
				continue
			}
			if overlapGeom {
				res.overlap, res.share = true, true
				break
			}
			x1 := m1.K + A*k
			if linesTouch(x1, m1.W, x1+gap, m2.W, na.L) {
				res.share = true
				break
			}
		}
		if res.overlap {
			return
		}
	}
}

// pairUnequalStride handles refs advancing at different rates (including
// one standing still). The relative gap drifts with k, so the check
// enumerates trips of one ref and solves a small window of candidate
// trips of the other; beyond maxEnum outer trips the scan truncates and
// the result is inexact.
func (na *nestAnalysis) pairUnequalStride(m1, m2 *refModel, plan sched.Plan, res *pairResult) {
	// Put the moving ref second so the window solve is well-defined.
	a, b := m1, m2
	if b.A == 0 {
		a, b = b, a
	}
	if a.A == 0 {
		// Fixed region vs moving region: enumerate the moving trips whose
		// footprint comes within a line of the fixed one. Any trip has a
		// differently-owned partner trip as soon as there are ≥2 chunks.
		kLo, kHi, ok := windowTrips(b, a.K-(b.W+na.L-1), a.K+a.W+na.L-1, na.npar)
		if !ok {
			return
		}
		for k := kLo; k <= kHi; k++ {
			xb := b.K + b.A*k
			if intervalsTouch(xb, b.W, a.K, a.W) {
				res.overlap, res.share = true, true
				return
			}
			if linesTouch(xb, b.W, a.K, a.W, na.L) {
				res.share = true
			}
		}
		return
	}
	// Both moving at different rates: for each trip of a, candidate trips
	// of b lie in a window of width O(L/|A_b|).
	outer := na.npar
	if outer > maxEnum {
		outer = maxEnum
		res.exact = false
	}
	for k1 := int64(0); k1 < outer; k1++ {
		x1 := a.K + a.A*k1
		k2Lo, k2Hi, ok := windowTrips(b, x1-(b.W+na.L-1), x1+a.W+na.L-1, na.npar)
		if !ok {
			continue
		}
		for k2 := k2Lo; k2 <= k2Hi; k2++ {
			if plan.Owner(k1) == plan.Owner(k2) {
				continue
			}
			x2 := b.K + b.A*k2
			if intervalsTouch(x1, a.W, x2, b.W) {
				res.overlap, res.share = true, true
				return
			}
			if linesTouch(x1, a.W, x2, b.W, na.L) {
				res.share = true
			}
		}
	}
}

// windowTrips returns the trips k of m whose footprint start K + A·k lies
// in [lo, hi], clamped to [0, npar); ok is false when the window is empty.
func windowTrips(m *refModel, lo, hi, npar int64) (int64, int64, bool) {
	if m.A == 0 {
		if m.K < lo || m.K > hi {
			return 0, 0, false
		}
		return 0, npar - 1, true
	}
	kLo := ceilDivFloor(lo-m.K, m.A, true)
	kHi := ceilDivFloor(hi-m.K, m.A, false)
	if m.A < 0 {
		kLo, kHi = ceilDivFloor(hi-m.K, m.A, true), ceilDivFloor(lo-m.K, m.A, false)
	}
	kLo = max(kLo, 0)
	kHi = min(kHi, npar-1)
	if kLo > kHi {
		return 0, 0, false
	}
	return kLo, kHi, true
}

// ceilDivFloor returns ceil(a/b) when up, floor(a/b) otherwise, for any
// sign of a and b (b ≠ 0).
func ceilDivFloor(a, b int64, up bool) int64 {
	q := a / b
	r := a % b
	if r == 0 {
		return q
	}
	pos := (a > 0) == (b > 0)
	if up && pos {
		return q + 1
	}
	if !up && !pos {
		return q - 1
	}
	return q
}

// appendUnique appends s to list unless already present (partner lists
// are tiny; linear scan is fine).
func appendUnique(list []string, s string) []string {
	for _, v := range list {
		if v == s {
			return list
		}
	}
	return append(list, s)
}

// intervalsTouch reports whether byte intervals [x1, x1+w1) and
// [x2, x2+w2) intersect.
func intervalsTouch(x1, w1, x2, w2 int64) bool {
	return x1 < x2+w2 && x2 < x1+w1
}

// linesTouch reports whether the two byte intervals touch a common
// cache line of size L (addresses are non-negative virtual addresses).
func linesTouch(x1, w1, x2, w2, L int64) bool {
	return (x1+w1-1)/L >= x2/L && (x2+w2-1)/L >= x1/L
}

// run executes the conflict passes over the nest's models and emits
// diagnostics plus per-ref verdicts, then asks for fix suggestions.
func (na *nestAnalysis) run() {
	// Pass 1: closed-form self check of every write.
	for _, m := range na.models {
		if !m.ref.Write {
			continue
		}
		sr := na.selfCheck(m, na.plan)
		if !sr.exact {
			m.vexact = false
		}
		if sr.race {
			m.race, m.prone = true, true
			d := na.newDiag(CodeRace, SeverityError, m.ref)
			d.Exact = sr.exact
			if m.A == 0 {
				d.Message = fmt.Sprintf(
					"every iteration of the parallel loop writes the same %d byte(s) through %s: threads race on a shared element%s",
					m.W, m.ref.Src, describeAssumed(d.Assumed))
			} else {
				d.Message = fmt.Sprintf(
					"adjacent parallel iterations write overlapping bytes through %s (stride %d B per trip < footprint %d B): differently-scheduled threads race on shared elements%s",
					m.ref.Src, abs64(m.A), m.W, describeAssumed(d.Assumed))
			}
			na.diags = append(na.diags, *d)
		}
		if sr.straddles > 0 {
			m.prone = true
			boundaries := (ceilDiv(na.npar, na.plan.Chunk) - 1) * na.multiplier
			d := na.newDiag(CodeFSWrite, SeverityWarning, m.ref)
			d.Exact = sr.exact
			d.Straddles = sr.straddles * na.multiplier
			d.Boundaries = boundaries
			d.Message = fmt.Sprintf(
				"write %s is false-sharing prone under schedule(static,%d) with %d threads: %d of %d chunk boundaries put writes from two threads on one %d-byte cache line (stride %d B per trip, footprint %d B)%s",
				m.ref.Src, na.plan.Chunk, na.plan.NumThreads, d.Straddles, boundaries, na.L, m.A, m.W, describeAssumed(d.Assumed))
			na.diags = append(na.diags, *d)
		}
	}

	// Pass 2: cross-reference conflicts, aggregated per primary write to
	// keep the output readable: one FS002 and one RC001 per write, naming
	// every partner.
	type agg struct {
		share, overlap []string
		exact          bool
	}
	aggs := map[int]*agg{}
	order := []int{}
	for i, m1 := range na.models {
		for j := i + 1; j < len(na.models); j++ {
			m2 := na.models[j]
			if m1.ref.Sym != m2.ref.Sym {
				continue
			}
			if !m1.ref.Write && !m2.ref.Write {
				continue
			}
			if m1.ref.Offset.Equal(m2.ref.Offset) {
				continue // same footprint at every trip: the self check covers it
			}
			pr := na.pairCheck(m1, m2, na.plan)
			if !pr.share && !pr.overlap {
				continue
			}
			// The primary is the written ref (the earlier one when both
			// are writes); the partner is reported as related.
			prim, part := m1, m2
			if !m1.ref.Write {
				prim, part = m2, m1
			}
			if !pr.exact {
				prim.vexact = false
			}
			prim.prone = true
			if part.ref.Write {
				part.prone = true
				if !pr.exact {
					part.vexact = false
				}
			}
			if pr.overlap {
				prim.race = true
				if part.ref.Write {
					part.race = true
				}
			}
			a := aggs[prim.idx]
			if a == nil {
				a = &agg{exact: true}
				aggs[prim.idx] = a
				order = append(order, prim.idx)
			}
			if pr.overlap {
				a.overlap = appendUnique(a.overlap, part.ref.Src)
			} else {
				a.share = appendUnique(a.share, part.ref.Src)
			}
			a.exact = a.exact && pr.exact
		}
	}
	for _, idx := range order {
		a := aggs[idx]
		var prim *refModel
		for _, m := range na.models {
			if m.idx == idx {
				prim = m
				break
			}
		}
		if len(a.overlap) > 0 {
			d := na.newDiag(CodeRace, SeverityError, prim.ref)
			d.Related = strings.Join(a.overlap, ", ")
			d.Exact = a.exact
			d.Message = fmt.Sprintf(
				"%s and %s touch the same element of %s from different threads: data race (true sharing)%s",
				prim.ref.Src, d.Related, prim.ref.Sym.Name, describeAssumed(d.Assumed))
			na.diags = append(na.diags, *d)
		}
		if len(a.share) > 0 {
			d := na.newDiag(CodeFSPair, SeverityWarning, prim.ref)
			d.Related = strings.Join(a.share, ", ")
			d.Exact = a.exact
			d.Message = fmt.Sprintf(
				"%s shares %d-byte cache lines with %s across threads (distinct elements of %s on one line): false sharing%s",
				prim.ref.Src, na.L, d.Related, prim.ref.Sym.Name, describeAssumed(d.Assumed))
			na.diags = append(na.diags, *d)
		}
	}

	// Pass 3: fix suggestions.
	if !na.cfg.NoSuggest {
		na.suggest()
	}
}
