package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/guard"
	"repro/internal/loopir"
	"repro/internal/machine"
	"repro/internal/minic"
)

// FuzzPipeline drives arbitrary byte strings through the full static
// pipeline — parse → lower → closed-form analysis — under a guard
// recover wrapper, mirroring how the service's degraded path and fslint
// run it. The pipeline must return a report or an error for every
// input: no panic (the wrapper converts any to *guard.EvalPanicError,
// which fails the fuzz target) and no crash.
func FuzzPipeline(f *testing.F) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.c"))
	if err != nil {
		f.Fatal(err)
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data))
	}
	for _, s := range []string{
		"",
		"double a[64];\n#pragma omp parallel for\nfor (i = 0; i < 64; i++) a[i] = i;",
		"struct s { double x; };\nstruct s a[8];\n#pragma omp parallel for schedule(static,1)\nfor (i = 0; i < 8; i++) a[i].x = 1;",
		"#pragma omp parallel for num_threads(64)\nfor (i = 0; i < 8; i++) a[i*0] = 1;",
		"x = " + strings.Repeat("(", 300) + "1",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		err := guard.Do(func() error {
			prog, err := minic.Parse(src)
			if err != nil {
				return nil // rejected input is fine
			}
			unit, err := loopir.Lower(prog, loopir.LowerOptions{
				LineSize:       machine.Paper48().LineSize,
				SymbolicBounds: true,
			})
			if err != nil {
				return nil
			}
			_, err = Analyze(unit, Config{Machine: machine.Paper48()})
			return err
		})
		if pe, ok := err.(*guard.EvalPanicError); ok {
			t.Fatalf("pipeline panicked: %v\n%s", pe.Value, pe.Stack)
		}
	})
}
