package analysis

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestSARIFRequiredFields renders a real report and validates the SARIF
// 2.1.0 required fields by decoding into an untyped tree: version,
// $schema, tool driver name and rules, and per-result ruleId, level,
// message text and physical location with a 1-based region.
func TestSARIFRequiredFields(t *testing.T) {
	rep := analyzeSrc(t, victimSrc, Config{})
	if len(rep.Diagnostics) == 0 {
		t.Fatal("victim source produced no diagnostics")
	}
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, []FileReport{{File: "testdata/victim.c", Report: rep}}); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if doc["version"] != "2.1.0" {
		t.Fatalf("version = %v", doc["version"])
	}
	schema, _ := doc["$schema"].(string)
	if !strings.Contains(schema, "sarif-schema-2.1.0") {
		t.Fatalf("$schema = %q", schema)
	}
	runs, ok := doc["runs"].([]any)
	if !ok || len(runs) != 1 {
		t.Fatalf("runs = %v", doc["runs"])
	}
	run := runs[0].(map[string]any)
	driver := run["tool"].(map[string]any)["driver"].(map[string]any)
	if driver["name"] != "fslint" {
		t.Fatalf("driver name = %v", driver["name"])
	}
	rules, ok := driver["rules"].([]any)
	if !ok || len(rules) == 0 {
		t.Fatal("driver has no rules")
	}
	ruleIDs := map[string]bool{}
	for _, r := range rules {
		rm := r.(map[string]any)
		id, _ := rm["id"].(string)
		if id == "" {
			t.Fatalf("rule without id: %v", r)
		}
		sd := rm["shortDescription"].(map[string]any)
		if sd["text"] == "" {
			t.Fatalf("rule %s without shortDescription.text", id)
		}
		ruleIDs[id] = true
	}
	for _, want := range []string{CodeFSWrite, CodeFSPair, CodeRace, CodeFixChunk, CodeFixPad, CodeNotAnalyzable, CodeParse} {
		if !ruleIDs[want] {
			t.Fatalf("rule registry missing %s", want)
		}
	}
	results, ok := run["results"].([]any)
	if !ok || len(results) != len(rep.Diagnostics) {
		t.Fatalf("results = %d, want %d", len(results), len(rep.Diagnostics))
	}
	for _, r := range results {
		res := r.(map[string]any)
		if res["ruleId"] == "" {
			t.Fatalf("result without ruleId: %v", res)
		}
		switch res["level"] {
		case "note", "warning", "error":
		default:
			t.Fatalf("bad level %v", res["level"])
		}
		msg := res["message"].(map[string]any)
		if msg["text"] == "" {
			t.Fatalf("result without message.text: %v", res)
		}
		locs, ok := res["locations"].([]any)
		if !ok || len(locs) != 1 {
			t.Fatalf("result without location: %v", res)
		}
		phys := locs[0].(map[string]any)["physicalLocation"].(map[string]any)
		if phys["artifactLocation"].(map[string]any)["uri"] != "testdata/victim.c" {
			t.Fatalf("bad artifact uri: %v", phys)
		}
		region := phys["region"].(map[string]any)
		for _, k := range []string{"startLine", "startColumn", "endLine", "endColumn"} {
			v, ok := region[k].(float64)
			if !ok || v < 1 {
				t.Fatalf("region %s = %v, want >= 1", k, region[k])
			}
		}
		if region["endColumn"].(float64) <= region["startColumn"].(float64) &&
			region["endLine"].(float64) == region["startLine"].(float64) {
			t.Fatalf("empty region: %v", region)
		}
	}
}

// TestEmptyReportRenders checks every renderer tolerates a clean run.
func TestEmptyReportRenders(t *testing.T) {
	reports := []FileReport{{File: "clean.c", Report: &Report{}}}
	var buf bytes.Buffer
	if err := WriteText(&buf, reports); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no findings") {
		t.Fatalf("text output = %q", buf.String())
	}
	buf.Reset()
	if err := WriteJSON(&buf, reports); err != nil {
		t.Fatal(err)
	}
	var arr []FileReport
	if err := json.Unmarshal(buf.Bytes(), &arr); err != nil || len(arr) != 1 {
		t.Fatalf("json round trip: %v, %d", err, len(arr))
	}
	buf.Reset()
	if err := WriteSARIF(&buf, reports); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Runs []struct {
			Results []any `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Runs) != 1 || doc.Runs[0].Results == nil || len(doc.Runs[0].Results) != 0 {
		t.Fatalf("clean SARIF run must have an empty, non-null results array: %+v", doc)
	}
}
