// Package analysis is the closed-form static false-sharing and cross-chunk
// conflict diagnostics engine: a multi-pass analyzer over lowered loopir
// nests that decides, without running the paper's lockstep simulator,
// which written references are false-sharing prone under a
// schedule(static,chunk) plan, which reference pairs can race, and what
// schedule or layout change removes the sharing.
//
// The passes, in order:
//
//  1. Affine footprint analysis (FS001): each written reference's byte
//     offset is an affine function K + A·k of the parallel trip k, so the
//     byte address at chunk boundary t is the arithmetic progression
//     K + (A·chunk)·t. Adjacent chunks — always owned by different
//     threads under static round-robin — write into the same cache line
//     exactly when that progression's residue modulo the line size is at
//     least |A| − W + 1 (W the per-trip footprint span), so the
//     whole-loop boundary-straddle count is a residue count
//     (affine.CountResidueAtLeast), closed-form even for huge loops.
//  2. Cross-chunk conflict check (FS002/RC001): for every written
//     reference paired against every other reference of the same symbol,
//     solve for trip pairs owned by different threads whose accesses
//     touch the same element (a true race / true sharing, RC001) or
//     merely the same cache line (pure false sharing, FS002). Distinct
//     symbols never share a line because lowering aligns every base.
//  3. Fix suggestions (FIX-CHUNK/FIX-PAD): the minimal chunk size whose
//     write regions align to line boundaries, and the struct padding in
//     bytes that pushes each trip's data onto its own line — each
//     verified by re-running passes 1–2 under the proposed change before
//     it is suggested.
//
// Every diagnostic carries a minic.Pos..End source span, a stable code
// and a severity, and renders as human text, JSON, or SARIF 2.1.0.
package analysis

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/loopir"
	"repro/internal/machine"
	"repro/internal/minic"
)

// Severity orders diagnostics: notes inform, warnings are FS findings,
// errors are correctness findings (data races).
type Severity int

// Severity levels, least to most severe.
const (
	SeverityNote Severity = iota
	SeverityWarning
	SeverityError
)

// String returns the lint spelling of the severity.
func (s Severity) String() string {
	switch s {
	case SeverityNote:
		return "note"
	case SeverityWarning:
		return "warning"
	case SeverityError:
		return "error"
	}
	return fmt.Sprintf("Severity(%d)", int(s))
}

// MarshalJSON encodes the severity as its name.
func (s Severity) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON decodes a severity name, inverting MarshalJSON so that
// Report round-trips through JSON (service clients decode LintResponse).
func (s *Severity) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	sev, err := ParseSeverity(name)
	if err != nil {
		return err
	}
	*s = sev
	return nil
}

// ParseSeverity parses a severity name ("note", "warning", "error").
func ParseSeverity(name string) (Severity, error) {
	switch name {
	case "note":
		return SeverityNote, nil
	case "warning":
		return SeverityWarning, nil
	case "error":
		return SeverityError, nil
	}
	return 0, fmt.Errorf("analysis: unknown severity %q (valid: note, warning, error)", name)
}

// Diagnostic codes.
const (
	CodeFSWrite       = "FS001"     // write is false-sharing prone across chunk boundaries
	CodeFSPair        = "FS002"     // two references share a cache line across threads
	CodeRace          = "RC001"     // two threads touch the same element (true race/sharing)
	CodeFixChunk      = "FIX-CHUNK" // chunk size that aligns write regions to lines
	CodeFixPad        = "FIX-PAD"   // struct padding that removes the sharing
	CodeNotAnalyzable = "AN001"     // reference excluded from the static analysis
	CodeParse         = "PARSE"     // source failed to parse or lower
	CodeFixPlan       = "FIX-PLAN"  // tuner-selected transformation plan (fslint -tune)
)

// Diagnostic is one finding with a stable code, severity and source span.
type Diagnostic struct {
	Code     string   `json:"code"`
	Severity Severity `json:"severity"`
	Nest     int      `json:"nest"`
	// Ref is the primary reference's source text; Related the partner
	// reference for pair findings (FS002/RC001).
	Ref     string `json:"ref,omitempty"`
	Related string `json:"related,omitempty"`
	Symbol  string `json:"symbol,omitempty"`
	// Pos..End span the reference in the source (1-based line:col; End is
	// one past the last character).
	Pos     minic.Pos `json:"pos"`
	End     minic.Pos `json:"end"`
	Message string    `json:"message"`
	// Threads/Chunk/LineSize echo the analyzed schedule and machine.
	Threads  int   `json:"threads,omitempty"`
	Chunk    int64 `json:"chunk,omitempty"`
	LineSize int64 `json:"line_size,omitempty"`
	// Straddles of Boundaries chunk boundaries put two threads' writes on
	// one line (FS001); both already include outer-loop instances.
	Straddles  int64 `json:"straddles,omitempty"`
	Boundaries int64 `json:"boundaries,omitempty"`
	// SuggestedChunk (FIX-CHUNK) and PadBytes (FIX-PAD) carry the fix.
	SuggestedChunk int64 `json:"suggested_chunk,omitempty"`
	PadBytes       int64 `json:"pad_bytes,omitempty"`
	// Exact is false when the engine approximated (symbolic bounds,
	// non-rectangular footprints, oversized search windows).
	Exact bool `json:"exact"`
	// Assumed maps symbolic loop-bound parameters to the values the
	// analysis substituted for them.
	Assumed map[string]int64 `json:"assumed,omitempty"`
}

// RefVerdict is the analytical FS verdict for one written analyzable
// reference — the quantity the differential test pins against fsmodel
// simulation.
type RefVerdict struct {
	Nest   int    `json:"nest"`
	Ref    string `json:"ref"`
	Symbol string `json:"symbol"`
	// Prone reports cross-thread cache-line sharing involving this write
	// (self-straddle or any pair finding); Race reports a same-element
	// cross-thread conflict.
	Prone bool `json:"prone"`
	Race  bool `json:"race"`
	Exact bool `json:"exact"`
}

// Report is the outcome of analyzing one translation unit.
type Report struct {
	Diagnostics []Diagnostic `json:"diagnostics"`
	Verdicts    []RefVerdict `json:"verdicts"`
	// Warnings echoes lowering warnings (non-affine exclusions).
	Warnings []string `json:"warnings,omitempty"`
	Nests    int      `json:"nests"`
}

// CountAtOrAbove returns how many diagnostics are at or above sev.
func (r *Report) CountAtOrAbove(sev Severity) int {
	n := 0
	for _, d := range r.Diagnostics {
		if d.Severity >= sev {
			n++
		}
	}
	return n
}

// MaxSeverity returns the highest severity present, and false when the
// report is clean.
func (r *Report) MaxSeverity() (Severity, bool) {
	var max Severity
	found := false
	for _, d := range r.Diagnostics {
		if !found || d.Severity > max {
			max = d.Severity
		}
		found = true
	}
	return max, found
}

// Config parameterizes the engine.
type Config struct {
	// Machine supplies the cache-line size (nil = machine.Paper48()).
	Machine *machine.Desc
	// Threads is the team size when the pragma leaves it unset (0 = the
	// machine's core count). An explicit value overrides the pragma,
	// mirroring fsmodel.
	Threads int
	// Chunk overrides the schedule chunk (0 = pragma, else the OpenMP
	// block default).
	Chunk int64
	// AssumedTrips substitutes for loop-bound parameters unknown at
	// compile time (default 2048); such findings are marked inexact.
	AssumedTrips int64
	// NoSuggest disables pass 3 (fix suggestions).
	NoSuggest bool
}

// Analyze runs all passes over every nest of the unit. The unit must have
// been lowered with a line size the machine's divides (symbol bases are
// aligned at lowering time; the analysis relies on distinct symbols never
// sharing a line).
func Analyze(unit *loopir.Unit, cfg Config) (*Report, error) {
	m := cfg.Machine
	if m == nil {
		m = machine.Paper48()
	}
	L := m.LineSize
	if L <= 0 || unit.LineSize%L != 0 {
		return nil, fmt.Errorf("analysis: unit lowered for %d-byte lines cannot be analyzed at %d-byte lines (bases would not be aligned); re-lower with the target line size", unit.LineSize, L)
	}
	if cfg.AssumedTrips <= 0 {
		cfg.AssumedTrips = 2048
	}
	rep := &Report{Nests: len(unit.Nests), Warnings: unit.Warnings}
	for i, nest := range unit.Nests {
		na, err := newNestAnalysis(nest, i, m, cfg)
		if err != nil {
			return nil, err
		}
		if na == nil {
			continue // sequential or single-threaded: no cross-thread sharing
		}
		na.run()
		rep.Diagnostics = append(rep.Diagnostics, na.diags...)
		rep.Verdicts = append(rep.Verdicts, na.verdicts()...)
	}
	sortDiagnostics(rep.Diagnostics)
	return rep, nil
}

// SortDiagnostics orders findings the way Analyze emits them; exported so
// callers that append synthetic diagnostics (fslint -tune's FIX-PLAN) can
// restore the canonical order.
func SortDiagnostics(ds []Diagnostic) { sortDiagnostics(ds) }

// sortDiagnostics orders findings for stable output: by nest, then source
// position, then severity (most severe first), then code.
func sortDiagnostics(ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Nest != b.Nest {
			return a.Nest < b.Nest
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		if a.Severity != b.Severity {
			return a.Severity > b.Severity
		}
		// Equal-position ties resolve on code, then the full span and
		// reference identity, so output is byte-stable even when map
		// iteration or scheduling reorders upstream producers.
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		if a.End.Line != b.End.Line {
			return a.End.Line < b.End.Line
		}
		if a.End.Col != b.End.Col {
			return a.End.Col < b.End.Col
		}
		if a.Ref != b.Ref {
			return a.Ref < b.Ref
		}
		return a.Related < b.Related
	})
}

// describeAssumed renders the assumed-parameter suffix for messages.
func describeAssumed(assumed map[string]int64) string {
	if len(assumed) == 0 {
		return ""
	}
	names := make([]string, 0, len(assumed))
	for k := range assumed {
		names = append(names, k)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, k := range names {
		parts[i] = fmt.Sprintf("%s=%d", k, assumed[k])
	}
	return " (bounds unknown at compile time; assuming " + strings.Join(parts, ", ") + ")"
}
