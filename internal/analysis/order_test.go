package analysis

import (
	"bytes"
	"testing"

	"repro/internal/loopir"
	"repro/internal/machine"
	"repro/internal/minic"
)

// TestSortDiagnosticsTotalOrder pins the equal-position tiebreakers: two
// diagnostics that agree on nest, position and severity must still order
// deterministically (code, then end span, then ref identity), regardless
// of insertion order.
func TestSortDiagnosticsTotalOrder(t *testing.T) {
	at := minic.Pos{Line: 3, Col: 5}
	mk := func(code, ref, related string, endCol int) Diagnostic {
		return Diagnostic{
			Code: code, Severity: SeverityWarning, Nest: 0,
			Pos: at, End: minic.Pos{Line: 3, Col: endCol},
			Ref: ref, Related: related,
		}
	}
	want := []Diagnostic{
		mk(CodeFSWrite, "a[i]", "", 9),
		mk(CodeFSPair, "a[i]", "a[i+1]", 9),
		mk(CodeFSPair, "a[i]", "b[i]", 9),
		mk(CodeFSPair, "b[i]", "a[i]", 9),
		mk(CodeFSPair, "b[i]", "a[i]", 12),
	}
	// Insert in two adversarial orders; both must sort to `want`.
	perms := [][]int{{4, 3, 2, 1, 0}, {2, 0, 4, 1, 3}}
	for pi, perm := range perms {
		ds := make([]Diagnostic, 0, len(want))
		for _, idx := range perm {
			ds = append(ds, want[idx])
		}
		sortDiagnostics(ds)
		for i := range want {
			if ds[i].Code != want[i].Code || ds[i].Ref != want[i].Ref ||
				ds[i].Related != want[i].Related || ds[i].End != want[i].End {
				t.Fatalf("perm %d: position %d: got %s/%s/%s end=%v, want %s/%s/%s end=%v",
					pi, i, ds[i].Code, ds[i].Ref, ds[i].Related, ds[i].End,
					want[i].Code, want[i].Ref, want[i].Related, want[i].End)
			}
		}
	}
}

// TestDiagnosticsByteStable re-runs the analyzer on a pair-heavy source
// and requires byte-identical SARIF and JSON renderings — the property
// tuner reports and CI gates rely on. Run under -race -count=2 in CI.
func TestDiagnosticsByteStable(t *testing.T) {
	const src = `
struct S { double a; double b; };
struct S s[64];
double x[64];
double y[64];

#pragma omp parallel for schedule(static,1) num_threads(8)
for (i = 0; i < 64; i++) {
    s[i].a = s[i].a + 1.0;
    s[i].b = s[i].b + 2.0;
    x[i] = y[i] + 1.0;
    y[i] = x[i] + 1.0;
}
`
	render := func() []byte {
		prog, err := minic.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		unit, err := loopir.Lower(prog, loopir.LowerOptions{AllowNonAffine: true, SymbolicBounds: true})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Analyze(unit, Config{Machine: machine.Paper48()})
		if err != nil {
			t.Fatal(err)
		}
		var sarif, js bytes.Buffer
		if err := WriteSARIF(&sarif, []FileReport{{File: "t.c", Report: rep}}); err != nil {
			t.Fatal(err)
		}
		if err := WriteJSON(&js, []FileReport{{File: "t.c", Report: rep}}); err != nil {
			t.Fatal(err)
		}
		return append(sarif.Bytes(), js.Bytes()...)
	}
	first := render()
	for i := 0; i < 5; i++ {
		if got := render(); !bytes.Equal(got, first) {
			t.Fatalf("rendered diagnostics differ across identical runs (iteration %d)", i)
		}
	}
}
