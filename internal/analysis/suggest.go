package analysis

import (
	"fmt"

	"repro/internal/affine"
	"repro/internal/loopir"
	"repro/internal/sched"
)

// suggest is pass 3: it proposes the minimal aligning chunk size
// (FIX-CHUNK) and, for arrays of structs, the padding that gives each
// element its own cache line (FIX-PAD). A suggestion is emitted only
// after re-running passes 1–2 under the proposed change confirms the
// nest comes out clean — a closed-form sibling of repro.RecommendChunk
// and transform.PadStructs's simulate-and-compare loop.
func (na *nestAnalysis) suggest() {
	// Collect the writes whose findings a schedule or layout change could
	// remove: false sharing, not same-element races with A = 0 (those are
	// correctness bugs no chunk or pad fixes).
	var prone []*refModel
	for _, m := range na.models {
		if m.ref.Write && m.prone && m.A != 0 {
			prone = append(prone, m)
		}
	}
	if len(prone) == 0 {
		return
	}

	// FIX-CHUNK: the least chunk that makes every prone write's boundary
	// stride A·c a line multiple is lcm over refs of L/gcd(|A|, L); it
	// only helps when the base alignment then keeps boundary footprints
	// off shared lines, which the re-check decides.
	c := int64(1)
	for _, m := range prone {
		c = lcm64(c, na.L/affine.GCD(m.A, na.L))
		if c >= na.npar {
			break
		}
	}
	if c > 1 && c < na.npar && c != na.plan.Chunk {
		plan := na.plan
		plan.Chunk = c
		if na.cleanUnder(plan, na.models) {
			m := prone[0]
			d := na.newDiag(CodeFixChunk, SeverityNote, m.ref)
			d.SuggestedChunk = c
			d.Exact = true
			d.Message = fmt.Sprintf(
				"schedule(static,%d) aligns each chunk of %s writes to %d-byte cache-line boundaries and removes the detected false sharing",
				c, m.ref.Sym.Name, na.L)
			na.diags = append(na.diags, *d)
		}
	}

	// FIX-PAD: for arrays of structs, grow the element to the next line
	// multiple. Padding appends bytes, so every ref's per-trip stride
	// grows by pad while field offsets (K) and footprints (W) stay put.
	syms := map[*loopir.Symbol][]*refModel{}
	var symOrder []*loopir.Symbol
	for _, m := range prone {
		if _, ok := loopir.ElemType(m.ref.Sym.Type).(*loopir.Struct); !ok {
			continue
		}
		if syms[m.ref.Sym] == nil {
			symOrder = append(symOrder, m.ref.Sym)
		}
		syms[m.ref.Sym] = append(syms[m.ref.Sym], m)
	}
	for _, sym := range symOrder {
		ms := syms[sym]
		st := loopir.ElemType(sym.Type).(*loopir.Struct)
		elem := st.Size()
		pad := affine.Mod(-elem, na.L)
		if pad == 0 {
			continue
		}
		// The suggestion is only sound when the parallel stride actually
		// walks whole elements; padding cannot help strides unrelated to
		// the element size.
		stride := abs64(ms[0].A)
		if stride%elem != 0 {
			continue
		}
		modified := make([]*refModel, len(na.models))
		ok := true
		for i, m := range na.models {
			if m.ref.Sym != sym {
				modified[i] = m
				continue
			}
			if abs64(m.A)%elem != 0 {
				ok = false
				break
			}
			mm := *m
			grow := (abs64(m.A) / elem) * pad
			if mm.A > 0 {
				mm.A += grow
			} else if mm.A < 0 {
				mm.A -= grow
			}
			modified[i] = &mm
		}
		if !ok || !na.cleanUnder(na.plan, modified) {
			continue
		}
		d := na.newDiag(CodeFixPad, SeverityNote, ms[0].ref)
		d.PadBytes = pad
		d.Exact = true
		d.Message = fmt.Sprintf(
			"padding struct %s by %d bytes (element %d B -> %d B, a %d-byte line multiple) gives each element of %s its own cache line and removes the detected false sharing",
			st.Name, pad, elem, elem+pad, na.L, sym.Name)
		na.diags = append(na.diags, *d)
	}
}

// cleanUnder re-runs passes 1–2 on the given models under plan and
// reports whether no false-sharing or race finding survives.
func (na *nestAnalysis) cleanUnder(plan sched.Plan, models []*refModel) bool {
	for _, m := range models {
		if !m.ref.Write {
			continue
		}
		sr := na.selfCheck(m, plan)
		if sr.straddles > 0 || sr.race {
			return false
		}
	}
	for i, m1 := range models {
		for j := i + 1; j < len(models); j++ {
			m2 := models[j]
			if m1.ref.Sym != m2.ref.Sym || (!m1.ref.Write && !m2.ref.Write) {
				continue
			}
			if m1.ref.Offset.Equal(m2.ref.Offset) {
				continue
			}
			pr := na.pairCheck(m1, m2, plan)
			if pr.share || pr.overlap {
				return false
			}
		}
	}
	return true
}
