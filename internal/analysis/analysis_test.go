package analysis

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/loopir"
	"repro/internal/machine"
	"repro/internal/minic"
)

// analyzeSrc parses, lowers and analyzes src at the given line size.
func analyzeSrc(t *testing.T, src string, cfg Config) *Report {
	t.Helper()
	prog, err := minic.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	lineSize := int64(64)
	if cfg.Machine != nil {
		lineSize = cfg.Machine.LineSize
	}
	unit, err := loopir.Lower(prog, loopir.LowerOptions{LineSize: lineSize, SymbolicBounds: true})
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	rep, err := Analyze(unit, cfg)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return rep
}

func codes(rep *Report) map[string]int {
	out := map[string]int{}
	for _, d := range rep.Diagnostics {
		out[d.Code]++
	}
	return out
}

const victimSrc = `
#define N 4096
double hist[N];
double data[N];

#pragma omp parallel for private(i) schedule(static,1) num_threads(8)
for (i = 0; i < N; i++)
    hist[i] += data[i] * data[i];
`

func TestVictimProneAtChunk1(t *testing.T) {
	rep := analyzeSrc(t, victimSrc, Config{})
	cs := codes(rep)
	if cs[CodeFSWrite] != 1 {
		t.Fatalf("want one FS001, got %v", cs)
	}
	if cs[CodeRace] != 0 {
		t.Fatalf("false race reported: %v", cs)
	}
	// The aligning chunk for 8-byte strides on 64-byte lines is 8, and it
	// genuinely cleans the loop, so the engine must suggest it.
	if cs[CodeFixChunk] != 1 {
		t.Fatalf("want one FIX-CHUNK, got %v", cs)
	}
	var fs *Diagnostic
	for i := range rep.Diagnostics {
		if rep.Diagnostics[i].Code == CodeFSWrite {
			fs = &rep.Diagnostics[i]
		}
	}
	if fs.Symbol != "hist" || !fs.Exact || fs.Straddles <= 0 || fs.Straddles > fs.Boundaries {
		t.Fatalf("bad FS001: %+v", fs)
	}
	// Every boundary of a dense double array at chunk 1 straddles except
	// the line-aligned ones (j ≡ 0 mod 8): 4095 − ⌊4095/8⌋.
	if want := int64(4095 - 4095/8); fs.Straddles != want {
		t.Fatalf("straddles = %d, want %d", fs.Straddles, want)
	}
	if fs.Pos.Line == 0 || fs.End.Col <= fs.Pos.Col {
		t.Fatalf("FS001 missing source span: %+v", fs)
	}
	for _, v := range rep.Verdicts {
		if v.Symbol == "hist" && (!v.Prone || v.Race || !v.Exact) {
			t.Fatalf("bad verdict: %+v", v)
		}
	}
}

func TestVictimCleanAtAlignedChunk(t *testing.T) {
	rep := analyzeSrc(t, victimSrc, Config{Chunk: 8})
	if n := len(rep.Diagnostics); n != 0 {
		t.Fatalf("want clean report at chunk 8, got %d diagnostics: %+v", n, rep.Diagnostics)
	}
	for _, v := range rep.Verdicts {
		if v.Prone || v.Race {
			t.Fatalf("bad verdict at aligned chunk: %+v", v)
		}
	}
}

func TestAccumulatorStructFindings(t *testing.T) {
	src := `
#define TASKS 512
struct Acc { double sx; double sxx; double sy; double syy; double sxy; };
struct Acc acc[TASKS];
double px[TASKS];

#pragma omp parallel for private(j) schedule(static,1) num_threads(8)
for (j = 0; j < TASKS; j++) {
    acc[j].sx  += px[j];
    acc[j].sxx += px[j] * px[j];
}
`
	rep := analyzeSrc(t, src, Config{})
	cs := codes(rep)
	if cs[CodeFSWrite] != 2 {
		t.Fatalf("want FS001 on both field writes, got %v", cs)
	}
	if cs[CodeFSPair] == 0 {
		t.Fatalf("want FS002 between distinct fields, got %v", cs)
	}
	if cs[CodeRace] != 0 {
		t.Fatalf("distinct fields must not race: %v", cs)
	}
	// 40-byte elements: both the aligning chunk (8 = lcm of 64/gcd(40,64))
	// and 24 bytes of padding clean the loop.
	if cs[CodeFixPad] != 1 {
		t.Fatalf("want one FIX-PAD, got %v", cs)
	}
	for _, d := range rep.Diagnostics {
		if d.Code == CodeFixPad && d.PadBytes != 24 {
			t.Fatalf("pad bytes = %d, want 24", d.PadBytes)
		}
		if d.Code == CodeFixChunk && d.SuggestedChunk != 8 {
			t.Fatalf("suggested chunk = %d, want 8", d.SuggestedChunk)
		}
	}
}

func TestScalarReductionRace(t *testing.T) {
	src := `
#define N 1024
double sum;
double data[N];

#pragma omp parallel for private(i) schedule(static,1) num_threads(8)
for (i = 0; i < N; i++)
    sum += data[i];
`
	rep := analyzeSrc(t, src, Config{})
	cs := codes(rep)
	if cs[CodeRace] == 0 {
		t.Fatalf("unsynchronized scalar reduction must raise RC001, got %v", cs)
	}
	if cs[CodeFixChunk]+cs[CodeFixPad] != 0 {
		t.Fatalf("no schedule/layout fix may be suggested for a race: %v", cs)
	}
	raced := false
	for _, v := range rep.Verdicts {
		if v.Symbol == "sum" {
			raced = raced || v.Race
		}
	}
	if !raced {
		t.Fatal("verdict for sum does not flag the race")
	}
}

func TestNeighborWriteReadRace(t *testing.T) {
	src := `
#define N 1024
double a[N];

#pragma omp parallel for private(i) schedule(static,1) num_threads(8)
for (i = 0; i < N - 1; i++)
    a[i] = a[i + 1] * 0.5;
`
	rep := analyzeSrc(t, src, Config{})
	cs := codes(rep)
	if cs[CodeRace] == 0 {
		t.Fatalf("cross-iteration write/read of the same element must raise RC001, got %v", cs)
	}
}

func TestSymbolicBoundsAssumed(t *testing.T) {
	src := `
double sums[65536];

#pragma omp parallel for private(i) schedule(static,1) num_threads(8)
for (i = 0; i < n; i++)
    sums[i] += 1.0;
`
	rep := analyzeSrc(t, src, Config{})
	found := false
	for _, d := range rep.Diagnostics {
		if d.Code != CodeFSWrite {
			continue
		}
		found = true
		if d.Exact {
			t.Fatalf("symbolic-bound finding must be inexact: %+v", d)
		}
		if d.Assumed["$n"] != 2048 {
			t.Fatalf("assumed = %v, want $n=2048", d.Assumed)
		}
		if !strings.Contains(d.Message, "assuming") {
			t.Fatalf("message does not disclose the assumption: %s", d.Message)
		}
	}
	if !found {
		t.Fatal("no FS001 for the symbolic victim loop")
	}
	for _, v := range rep.Verdicts {
		if v.Exact {
			t.Fatalf("symbolic verdict marked exact: %+v", v)
		}
	}
}

func TestSequentialAndSingleThreadSkipped(t *testing.T) {
	seq := `
double a[64];
for (i = 0; i < 64; i++)
    a[i] = 1.0;
`
	rep := analyzeSrc(t, seq, Config{})
	if len(rep.Diagnostics) != 0 || len(rep.Verdicts) != 0 {
		t.Fatalf("sequential nest produced findings: %+v", rep)
	}
	rep = analyzeSrc(t, victimSrc, Config{Threads: 1})
	if len(rep.Diagnostics) != 0 {
		t.Fatalf("single-thread team produced findings: %+v", rep.Diagnostics)
	}
}

func TestLineSizeMismatchRejected(t *testing.T) {
	prog, err := minic.Parse(victimSrc)
	if err != nil {
		t.Fatal(err)
	}
	unit, err := loopir.Lower(prog, loopir.LowerOptions{LineSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	big := *machine.Paper48()
	big.LineSize = 128
	if _, err := Analyze(unit, Config{Machine: &big}); err == nil {
		t.Fatal("analyzing a 64-byte-lowered unit at 128-byte lines must fail")
	}
}

func TestSeverityRoundTrip(t *testing.T) {
	for _, s := range []Severity{SeverityNote, SeverityWarning, SeverityError} {
		got, err := ParseSeverity(s.String())
		if err != nil || got != s {
			t.Fatalf("round trip %v: got %v, %v", s, got, err)
		}
		b, err := json.Marshal(s)
		if err != nil || string(b) != `"`+s.String()+`"` {
			t.Fatalf("marshal %v: %s, %v", s, b, err)
		}
	}
	if _, err := ParseSeverity("fatal"); err == nil {
		t.Fatal("ParseSeverity accepted garbage")
	}
}

func TestReportHelpers(t *testing.T) {
	rep := &Report{Diagnostics: []Diagnostic{
		{Severity: SeverityNote},
		{Severity: SeverityWarning},
		{Severity: SeverityWarning},
	}}
	if got := rep.CountAtOrAbove(SeverityWarning); got != 2 {
		t.Fatalf("CountAtOrAbove = %d", got)
	}
	if s, ok := rep.MaxSeverity(); !ok || s != SeverityWarning {
		t.Fatalf("MaxSeverity = %v, %v", s, ok)
	}
	if _, ok := (&Report{}).MaxSeverity(); ok {
		t.Fatal("MaxSeverity on empty report")
	}
}
