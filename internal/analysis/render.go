package analysis

import (
	"encoding/json"
	"fmt"
	"io"
)

// FileReport pairs a source file name with its analysis outcome, the unit
// all renderers consume (File may be a pseudo-name like "<kernel:heat>"
// for embedded sources).
type FileReport struct {
	File   string  `json:"file"`
	Report *Report `json:"report"`
}

// WriteText renders reports in the familiar compiler style,
//
//	file:line:col: severity: CODE: message
//
// one finding per line, followed by a summary count.
func WriteText(w io.Writer, reports []FileReport) error {
	total := 0
	for _, fr := range reports {
		for _, d := range fr.Report.Diagnostics {
			total++
			if _, err := fmt.Fprintf(w, "%s:%d:%d: %s: %s: %s\n",
				fr.File, d.Pos.Line, d.Pos.Col, d.Severity, d.Code, d.Message); err != nil {
				return err
			}
		}
	}
	var err error
	if total == 0 {
		_, err = fmt.Fprintf(w, "fslint: no findings in %d file(s)\n", len(reports))
	} else {
		_, err = fmt.Fprintf(w, "fslint: %d finding(s) in %d file(s)\n", total, len(reports))
	}
	return err
}

// WriteJSON renders reports as an indented JSON array of FileReports.
func WriteJSON(w io.Writer, reports []FileReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(reports)
}
