package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fsmodel"
	"repro/internal/kernels"
	"repro/internal/loopir"
	"repro/internal/machine"
	"repro/internal/minic"
)

// The differential test pins the analytic engine against the paper's
// lockstep simulator: for every program in the corpus, every chunk in the
// sweep, and both line sizes, a data symbol has an exact analytic
// "cross-thread line sharing" verdict iff the simulator attributes at
// least one false-sharing case to it.
//
// The comparison is per symbol, not per reference: the simulator charges
// an FS case to the reference whose access observes the invalidation
// (often the read half of a compound assignment), while the analytic
// verdict names the write that provokes it — both sides agree once
// aggregated over the symbol's references.

// machineAt returns the paper machine reconfigured for the given cache
// line size (Desc.Validate requires every cache level to match).
func machineAt(lineSize int64) *machine.Desc {
	m := *machine.Paper48()
	m.LineSize = lineSize
	m.L1.LineSize = lineSize
	m.L2.LineSize = lineSize
	m.L3.LineSize = lineSize
	return &m
}

// corpusSources gathers every differential input: the three paper
// kernels plus all constant-bound mini-C programs under testdata/ and
// examples/lint/.
func corpusSources(t *testing.T) map[string]string {
	t.Helper()
	srcs := map[string]string{
		"kernel:heat":   kernels.HeatSource(96, 4096),
		"kernel:dft":    kernels.DFTSource(768),
		"kernel:linreg": kernels.LinRegSource(512, 3072, 8),
	}
	for _, dir := range []string{"../../testdata", "../../examples/lint"} {
		files, err := filepath.Glob(filepath.Join(dir, "*.c"))
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range files {
			data, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			srcs[filepath.Base(f)] = string(data)
		}
	}
	if len(srcs) < 8 {
		t.Fatalf("differential corpus too small: %d sources", len(srcs))
	}
	return srcs
}

func TestDifferentialAgainstSimulator(t *testing.T) {
	if testing.Short() {
		t.Skip("simulator sweep is slow")
	}
	const threads = 8
	srcs := corpusSources(t)
	for _, lineSize := range []int64{64, 128} {
		mach := machineAt(lineSize)
		for name, src := range srcs {
			prog, err := minic.Parse(src)
			if err != nil {
				t.Fatalf("%s: parse: %v", name, err)
			}
			unit, err := loopir.Lower(prog, loopir.LowerOptions{LineSize: lineSize, SymbolicBounds: true})
			if err != nil {
				t.Fatalf("%s: lower: %v", name, err)
			}
			symbolic := false
			for _, nest := range unit.Nests {
				if len(nest.Params()) > 0 {
					symbolic = true
				}
			}
			if symbolic {
				continue // the simulator cannot run unknown trip counts
			}
			// The aligned chunk for 8-byte doubles plus two finer and one
			// coarser setting.
			for _, chunk := range []int64{1, 2, 8, lineSize / 8} {
				rep, err := Analyze(unit, Config{Machine: mach, Threads: threads, Chunk: chunk})
				if err != nil {
					t.Fatalf("%s L=%d c=%d: analyze: %v", name, lineSize, chunk, err)
				}
				analytic := map[string]bool{}
				exact := map[string]bool{}
				for _, v := range rep.Verdicts {
					analytic[v.Symbol] = analytic[v.Symbol] || v.Prone
					if e, seen := exact[v.Symbol]; seen {
						exact[v.Symbol] = e && v.Exact
					} else {
						exact[v.Symbol] = v.Exact
					}
				}
				simulated := map[string]bool{}
				for _, nest := range unit.Nests {
					if nest.Parallelized() == nil {
						continue
					}
					res, err := fsmodel.Analyze(nest, fsmodel.Options{
						Machine:    mach,
						NumThreads: threads,
						Chunk:      chunk,
					})
					if err != nil {
						t.Fatalf("%s L=%d c=%d: simulate: %v", name, lineSize, chunk, err)
					}
					for _, ra := range res.ByRef {
						if ra.FSCases > 0 {
							simulated[ra.Symbol] = true
						}
					}
				}
				for sym, want := range simulated {
					if !analytic[sym] {
						t.Errorf("%s L=%d chunk=%d: simulator found FS on %s, analysis says clean (want %v)",
							name, lineSize, chunk, sym, want)
					}
				}
				for sym, prone := range analytic {
					if !exact[sym] {
						continue // approximate verdicts may legitimately over-approximate
					}
					if prone && !simulated[sym] {
						t.Errorf("%s L=%d chunk=%d: analysis flags %s, simulator saw no FS case",
							name, lineSize, chunk, sym)
					}
				}
			}
		}
	}
}

// TestDifferentialSuggestionsVerified re-runs the simulator under each
// suggested fix and checks the fix really eliminates every FS case —
// the suggestion pass promises verified fixes, so the promise is pinned
// against the independent oracle too.
func TestDifferentialSuggestionsVerified(t *testing.T) {
	if testing.Short() {
		t.Skip("simulator sweep is slow")
	}
	const threads = 8
	mach := machineAt(64)
	for name, src := range corpusSources(t) {
		prog, err := minic.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		unit, err := loopir.Lower(prog, loopir.LowerOptions{LineSize: 64, SymbolicBounds: true})
		if err != nil {
			t.Fatal(err)
		}
		skip := false
		for _, nest := range unit.Nests {
			if len(nest.Params()) > 0 {
				skip = true
			}
		}
		if skip {
			continue
		}
		rep, err := Analyze(unit, Config{Machine: mach, Threads: threads, Chunk: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range rep.Diagnostics {
			if d.Code != CodeFixChunk {
				continue
			}
			for _, nest := range unit.Nests {
				if nest.Parallelized() == nil {
					continue
				}
				res, err := fsmodel.Analyze(nest, fsmodel.Options{
					Machine:    mach,
					NumThreads: threads,
					Chunk:      d.SuggestedChunk,
				})
				if err != nil {
					t.Fatal(err)
				}
				if res.FSCases > 0 {
					t.Errorf("%s: suggested chunk %d still yields %d FS cases",
						name, d.SuggestedChunk, res.FSCases)
				}
			}
		}
	}
}

// TestDifferentialKernelNames double-checks the corpus covers the three
// paper kernels so a refactor of kernel naming cannot silently shrink
// the differential.
func TestDifferentialKernelNames(t *testing.T) {
	srcs := corpusSources(t)
	for _, want := range []string{"kernel:heat", "kernel:dft", "kernel:linreg"} {
		if _, ok := srcs[want]; !ok {
			t.Fatalf("corpus lost %s", want)
		}
	}
	hasExample := false
	for name := range srcs {
		if strings.HasSuffix(name, ".c") {
			hasExample = true
		}
	}
	if !hasExample {
		t.Fatal("corpus has no on-disk .c programs")
	}
}
