package analysis

import (
	"fmt"
	"sort"

	"repro/internal/affine"
	"repro/internal/loopir"
	"repro/internal/machine"
	"repro/internal/sched"
)

// refModel is the closed-form access model of one analyzable reference:
// over one instance of the outer (sequential) loops, the reference at
// parallel trip k touches the byte interval [K + A·k, K + A·k + W).
type refModel struct {
	ref loopir.Ref
	idx int // index into nest.AnalyzableRefs(), fsmodel's ByRef order

	A int64 // bytes the footprint moves per parallel trip
	K int64 // least absolute byte address at trip 0 (outer loops at their first trips)
	W int64 // footprint width in bytes (inner-loop span + element size)

	// dense reports that the footprint covers [0, W) without holes; when
	// false, interval-based overlap and line-share tests over-approximate.
	dense bool
	// outerStride[i] is the byte shift per trip of outer loop i. Equal
	// stride vectors mean two refs keep the same relative geometry in
	// every outer instance.
	outerStride []int64
	// exact is false when a symbolic parameter appeared in the subscript
	// and an assumed value was substituted.
	exact bool
	// instExact reports that conclusions from the first outer instance
	// transfer to all instances: every nonzero outer stride is
	// line-aligned and at least as wide as the region the parallel loop
	// sweeps, so instances are line-disjoint (or identical, stride 0).
	instExact bool

	// Verdict state filled in by the conflict passes.
	prone  bool
	race   bool
	vexact bool
}

// nestAnalysis carries the per-nest state shared by all passes.
type nestAnalysis struct {
	nest    *loopir.Nest
	nestIdx int
	cfg     Config
	L       int64

	plan       sched.Plan
	npar       int64 // parallel-loop trip count
	numChunks  int64
	multiplier int64 // outer-loop instances (product of outer trip counts)

	trips  []int64 // per loop level, under the first-trip/assumed environment
	firsts []int64

	assumed     map[string]int64
	boundsExact bool // no symbolic or outer-variable-dependent bounds

	models []*refModel
	diags  []Diagnostic
}

// newNestAnalysis resolves the schedule for one nest, mirroring
// fsmodel.prepare (explicit config wins over the pragma, which wins over
// machine defaults). It returns (nil, nil) for nests the engine has
// nothing to say about: sequential nests, single-thread teams, and
// zero-trip loops.
func newNestAnalysis(nest *loopir.Nest, idx int, m *machine.Desc, cfg Config) (*nestAnalysis, error) {
	par := nest.Parallelized()
	if par == nil {
		return nil, nil
	}
	threads := cfg.Threads
	if threads <= 0 && par.Parallel.NumThreads > 0 {
		threads = par.Parallel.NumThreads
	}
	if threads <= 0 {
		threads = m.Cores
	}
	if threads < 2 {
		return nil, nil
	}
	chunk := cfg.Chunk
	if chunk <= 0 && par.Parallel.Chunk > 0 {
		chunk = par.Parallel.Chunk
	}
	kind, err := sched.KindFromString(par.Parallel.Schedule)
	if err != nil {
		return nil, fmt.Errorf("analysis: nest %d: %w", idx, err)
	}

	na := &nestAnalysis{
		nest:        nest,
		nestIdx:     idx,
		cfg:         cfg,
		L:           m.LineSize,
		multiplier:  1,
		boundsExact: true,
		assumed:     map[string]int64{},
	}

	// Evaluate loop bounds outermost-in with symbolic parameters pinned to
	// the assumed trip count and outer variables at their first values.
	// Triangular bounds make the nest non-rectangular; the analysis then
	// models the first instance and marks everything inexact.
	env := map[string]int64{}
	for _, p := range nest.Params() {
		env[p] = cfg.AssumedTrips
		na.assumed[p] = cfg.AssumedTrips
		na.boundsExact = false
	}
	na.trips = make([]int64, len(nest.Loops))
	na.firsts = make([]int64, len(nest.Loops))
	for i, l := range nest.Loops {
		for j := 0; j < i; j++ {
			if l.First.DependsOn(nest.Loops[j].Var) || l.Limit.DependsOn(nest.Loops[j].Var) {
				na.boundsExact = false
			}
		}
		f, err := l.First.Eval(env)
		if err != nil {
			return nil, fmt.Errorf("analysis: nest %d loop %s: %w", idx, l.Var, err)
		}
		t, err := l.TripCount(env)
		if err != nil {
			return nil, fmt.Errorf("analysis: nest %d loop %s: %w", idx, l.Var, err)
		}
		na.firsts[i] = f
		na.trips[i] = t
		env[l.Var] = f
	}
	na.npar = na.trips[nest.ParLevel]
	if na.npar <= 0 {
		return nil, nil
	}
	for i := 0; i < nest.ParLevel; i++ {
		if na.trips[i] <= 0 {
			return nil, nil
		}
		na.multiplier *= na.trips[i]
	}

	na.plan, err = sched.Resolve(kind, threads, chunk, na.npar)
	if err != nil {
		return nil, fmt.Errorf("analysis: nest %d: %w", idx, err)
	}
	na.numChunks = ceilDiv(na.npar, na.plan.Chunk)
	na.buildModels()
	return na, nil
}

// buildModels extracts a refModel per analyzable reference and emits
// AN001 notes for the references lowering excluded.
func (na *nestAnalysis) buildModels() {
	ai := 0
	for _, r := range na.nest.Refs {
		if r.NonAffine {
			d := na.newDiag(CodeNotAnalyzable, SeverityNote, r)
			d.Message = fmt.Sprintf("reference %s has a non-affine subscript and is excluded from the false-sharing analysis", r.Src)
			d.Exact = true
			na.diags = append(na.diags, *d)
			continue
		}
		na.models = append(na.models, na.buildModel(r, ai))
		ai++
	}
}

func (na *nestAnalysis) buildModel(r loopir.Ref, ai int) *refModel {
	m := &refModel{
		ref:         r,
		idx:         ai,
		dense:       true,
		exact:       true,
		instExact:   true,
		vexact:      true,
		outerStride: make([]int64, na.nest.ParLevel),
	}
	level := map[string]int{}
	for i, l := range na.nest.Loops {
		level[l.Var] = i
	}
	parLoop := na.nest.Loops[na.nest.ParLevel]
	m.A = r.Offset.Coeff(parLoop.Var) * parLoop.Step

	K := r.Sym.Base + r.Offset.ConstTerm
	var spanMin, spanMax int64
	type dim struct{ stride, trips int64 }
	var inner []dim
	for v, c := range r.Offset.Terms {
		lvl, isLoop := level[v]
		if !isLoop {
			// A symbolic parameter in the subscript itself: pin it like a
			// bound and flag the model.
			K += c * na.cfg.AssumedTrips
			na.assumed[v] = na.cfg.AssumedTrips
			m.exact = false
			continue
		}
		l := na.nest.Loops[lvl]
		K += c * na.firsts[lvl]
		switch {
		case lvl == na.nest.ParLevel:
			// Captured by A.
		case lvl < na.nest.ParLevel:
			m.outerStride[lvl] = c * l.Step
		default:
			ext := c * l.Step * (na.trips[lvl] - 1)
			if ext < 0 {
				spanMin += ext
			} else {
				spanMax += ext
			}
			inner = append(inner, dim{stride: abs64(c * l.Step), trips: na.trips[lvl]})
		}
	}
	m.K = K + spanMin
	m.W = spanMax - spanMin + r.Size

	// Density: the inner dims tile the footprint without holes when, in
	// increasing stride order, each stride fits inside the bytes already
	// covered.
	sort.Slice(inner, func(i, j int) bool { return inner[i].stride < inner[j].stride })
	cover := r.Size
	for _, d := range inner {
		if d.stride == 0 || d.trips <= 1 {
			continue
		}
		if d.stride > cover {
			m.dense = false
			break
		}
		cover += d.stride * (d.trips - 1)
	}

	// Instance structure: the parallel loop sweeps a region of
	// span = |A|·(npar−1) + W per outer instance. Instances are
	// line-equivalent when every nonzero outer stride is a line multiple
	// and no two instances' regions interleave.
	var g int64
	for _, s := range m.outerStride {
		if s != 0 {
			g = affine.GCD(g, s)
		}
	}
	if g != 0 {
		span := abs64(m.A)*(na.npar-1) + m.W
		if g%na.L != 0 || span > g {
			m.instExact = false
		}
		for _, s := range m.outerStride {
			if s != 0 && s%na.L != 0 {
				m.instExact = false
			}
		}
	}
	return m
}

// newDiag seeds a diagnostic anchored on a reference with the nest's
// schedule context filled in.
func (na *nestAnalysis) newDiag(code string, sev Severity, r loopir.Ref) *Diagnostic {
	end := r.EndP
	if end.Line == 0 { // synthesized ref without span
		end = r.P
		end.Col++
	}
	var assumed map[string]int64
	if len(na.assumed) > 0 {
		assumed = na.assumed
	}
	return &Diagnostic{
		Code:     code,
		Severity: sev,
		Nest:     na.nestIdx,
		Ref:      r.Src,
		Symbol:   r.Sym.Name,
		Pos:      r.P,
		End:      end,
		Threads:  na.plan.NumThreads,
		Chunk:    na.plan.Chunk,
		LineSize: na.L,
		Assumed:  assumed,
	}
}

// verdicts returns the per-written-ref analytic verdicts.
func (na *nestAnalysis) verdicts() []RefVerdict {
	var out []RefVerdict
	for _, m := range na.models {
		if !m.ref.Write {
			continue
		}
		out = append(out, RefVerdict{
			Nest:   na.nestIdx,
			Ref:    m.ref.Src,
			Symbol: m.ref.Sym.Name,
			Prone:  m.prone,
			Race:   m.race,
			Exact:  m.vexact,
		})
	}
	return out
}

func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

func lcm64(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	return a / affine.GCD(a, b) * b
}
