package analysis

import (
	"io"

	"repro/internal/analysis/sarifwriter"
)

// SARIF output is produced by the shared internal/analysis/sarifwriter;
// this file is fslint's position adapter: it maps minic.Pos..End spans
// and Severity onto the writer's position-agnostic Result type. fsvet
// (internal/govet) has the token.Pos twin of this adapter.

// SarifSchemaURI and SarifVersion identify the emitted document flavor.
const (
	SarifSchemaURI = sarifwriter.SchemaURI
	SarifVersion   = sarifwriter.Version
)

// sarifRules is the stable rule registry; ruleIndex in results points
// into this slice.
var sarifRules = []sarifwriter.Rule{
	{ID: CodeFSWrite, Description: "Write is false-sharing prone across static chunk boundaries"},
	{ID: CodeFSPair, Description: "References share a cache line across threads (false sharing)"},
	{ID: CodeRace, Description: "Differently-scheduled threads touch the same element (data race / true sharing)"},
	{ID: CodeFixChunk, Description: "A line-aligning schedule chunk removes the detected false sharing"},
	{ID: CodeFixPad, Description: "Struct padding to a cache-line multiple removes the detected false sharing"},
	{ID: CodeFixPlan, Description: "A tuner-selected transformation plan removes the detected false sharing"},
	{ID: CodeNotAnalyzable, Description: "Reference excluded from the static analysis"},
	{ID: CodeParse, Description: "Source could not be parsed or lowered"},
}

// sarifLevel maps a severity to the SARIF result level vocabulary.
func sarifLevel(s Severity) string {
	switch s {
	case SeverityError:
		return sarifwriter.LevelError
	case SeverityWarning:
		return sarifwriter.LevelWarning
	default:
		return sarifwriter.LevelNote
	}
}

// WriteSARIF renders the reports as one SARIF 2.1.0 run.
func WriteSARIF(w io.Writer, reports []FileReport) error {
	var results []sarifwriter.Result
	for _, fr := range reports {
		for _, d := range fr.Report.Diagnostics {
			results = append(results, sarifwriter.Result{
				RuleID:  d.Code,
				Level:   sarifLevel(d.Severity),
				Message: d.Message,
				URI:     fr.File,
				Region: sarifwriter.Region{
					StartLine:   d.Pos.Line,
					StartColumn: d.Pos.Col,
					EndLine:     d.End.Line,
					EndColumn:   d.End.Col,
				},
			})
		}
	}
	return sarifwriter.Write(w, "fslint", sarifRules, results)
}
