package analysis

import (
	"encoding/json"
	"io"
)

// SARIF 2.1.0 output: the static-analysis interchange format most code
// hosts and CI systems ingest. Only the mandatory slice of the schema is
// emitted — tool driver with rule metadata, and one result per diagnostic
// with a physical location region.

// SarifSchemaURI and SarifVersion identify the emitted document flavor.
const (
	SarifSchemaURI = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
	SarifVersion   = "2.1.0"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	Version        string      `json:"version,omitempty"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
	HelpURI          string       `json:"helpUri,omitempty"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
	EndLine     int `json:"endLine"`
	EndColumn   int `json:"endColumn"`
}

// sarifRules is the stable rule registry; ruleIndex in results points
// into this slice.
var sarifRules = []sarifRule{
	{ID: CodeFSWrite, ShortDescription: sarifMessage{Text: "Write is false-sharing prone across static chunk boundaries"}},
	{ID: CodeFSPair, ShortDescription: sarifMessage{Text: "References share a cache line across threads (false sharing)"}},
	{ID: CodeRace, ShortDescription: sarifMessage{Text: "Differently-scheduled threads touch the same element (data race / true sharing)"}},
	{ID: CodeFixChunk, ShortDescription: sarifMessage{Text: "A line-aligning schedule chunk removes the detected false sharing"}},
	{ID: CodeFixPad, ShortDescription: sarifMessage{Text: "Struct padding to a cache-line multiple removes the detected false sharing"}},
	{ID: CodeNotAnalyzable, ShortDescription: sarifMessage{Text: "Reference excluded from the static analysis"}},
	{ID: CodeParse, ShortDescription: sarifMessage{Text: "Source could not be parsed or lowered"}},
}

var sarifRuleIndex = func() map[string]int {
	m := make(map[string]int, len(sarifRules))
	for i, r := range sarifRules {
		m[r.ID] = i
	}
	return m
}()

// sarifLevel maps a severity to the SARIF result level vocabulary.
func sarifLevel(s Severity) string {
	switch s {
	case SeverityError:
		return "error"
	case SeverityWarning:
		return "warning"
	default:
		return "note"
	}
}

// WriteSARIF renders the reports as one SARIF 2.1.0 run.
func WriteSARIF(w io.Writer, reports []FileReport) error {
	run := sarifRun{
		Tool: sarifTool{Driver: sarifDriver{
			Name:  "fslint",
			Rules: sarifRules,
		}},
		Results: []sarifResult{},
	}
	for _, fr := range reports {
		for _, d := range fr.Report.Diagnostics {
			end := d.End
			if end.Line < d.Pos.Line || (end.Line == d.Pos.Line && end.Col <= d.Pos.Col) {
				end = d.Pos
				end.Col++
			}
			idx, ok := sarifRuleIndex[d.Code]
			if !ok {
				idx = 0
			}
			run.Results = append(run.Results, sarifResult{
				RuleID:    d.Code,
				RuleIndex: idx,
				Level:     sarifLevel(d.Severity),
				Message:   sarifMessage{Text: d.Message},
				Locations: []sarifLocation{{PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: fr.File},
					Region: sarifRegion{
						StartLine:   d.Pos.Line,
						StartColumn: d.Pos.Col,
						EndLine:     end.Line,
						EndColumn:   end.Col,
					},
				}}},
			})
		}
	}
	log := sarifLog{Schema: SarifSchemaURI, Version: SarifVersion, Runs: []sarifRun{run}}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
