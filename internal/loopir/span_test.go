package loopir

import (
	"strings"
	"testing"

	"repro/internal/minic"
)

const spanSrc = `
#define N 64

struct Acc { double sx; double sy; };

struct Acc acc[N];
double grid[N][N];
double out[N];

#pragma omp parallel for private(i) schedule(static,1)
for (i = 0; i < N; i++) {
  acc[i].sx += grid[i][0];
  acc[i].sy += grid[i][1];
  out[i] = acc[i].sx * acc[i].sy;
}
`

// checkSpans verifies every ref of every nest maps back to a valid span
// of src: positions in range, end after start, and the spanned text equal
// to the reference's own source rendering.
func checkSpans(t *testing.T, unit *Unit, src string) {
	t.Helper()
	lines := strings.Split(src, "\n")
	refs := 0
	for ni, nest := range unit.Nests {
		for ri, r := range nest.Refs {
			refs++
			if r.P.Line < 1 || r.P.Line > len(lines) {
				t.Fatalf("nest %d ref %d (%s): line %d out of range", ni, ri, r.Src, r.P.Line)
			}
			line := lines[r.P.Line-1]
			if r.P.Col < 1 || r.P.Col > len(line) {
				t.Fatalf("nest %d ref %d (%s): col %d out of range of %q", ni, ri, r.Src, r.P.Col, line)
			}
			if r.EndP.Line != r.P.Line || r.EndP.Col <= r.P.Col || r.EndP.Col > len(line)+1 {
				t.Fatalf("nest %d ref %d (%s): bad end %s for start %s on %q", ni, ri, r.Src, r.EndP, r.P, line)
			}
			got := line[r.P.Col-1 : r.EndP.Col-1]
			if got != r.Src {
				t.Fatalf("nest %d ref %d: span %q != ref source %q", ni, ri, got, r.Src)
			}
		}
	}
	if refs == 0 {
		t.Fatal("no refs checked")
	}
}

// TestRefSourceSpans checks that lowering attaches a valid Pos..End span
// to every memory reference.
func TestRefSourceSpans(t *testing.T) {
	prog, err := minic.Parse(spanSrc)
	if err != nil {
		t.Fatal(err)
	}
	unit, err := Lower(prog, LowerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	checkSpans(t, unit, spanSrc)
}

// TestRefSourceSpansSurviveRelowering checks spans survive lowering the
// same AST again with a different layout (the path transformations like
// struct padding take: mutate declarations, re-lower, keep the body).
// Source attribution must still point into the original text.
func TestRefSourceSpansSurviveRelowering(t *testing.T) {
	prog, err := minic.Parse(spanSrc)
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []LowerOptions{
		{LineSize: 128},
		{LineSize: 32, BaseAddress: 1 << 22},
	} {
		unit, err := Lower(prog, opts)
		if err != nil {
			t.Fatal(err)
		}
		checkSpans(t, unit, spanSrc)
	}
}
