package loopir

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/affine"
	"repro/internal/minic"
)

// Symbol is a global data object with an assigned virtual base address.
// Per the paper's assumption (Section III-B), every base address is aligned
// to a cache-line boundary so relative cache lines are known at compile
// time.
type Symbol struct {
	Name string
	Type Type
	Base int64 // virtual byte address, cache-line aligned
}

// Size returns the symbol's storage size in bytes.
func (s *Symbol) Size() int64 { return s.Type.Size() }

// Ref is a memory reference appearing in the innermost loop body.
type Ref struct {
	Sym    *Symbol
	Offset affine.Expr // byte offset from Sym.Base as a function of loop vars
	Write  bool
	Size   int64 // bytes accessed (size of the referenced element)
	Src    string
	P      minic.Pos
	// EndP is the source position one past the reference's last character
	// (zero when the reference was synthesized without source text), so
	// diagnostics can underline the full subscript expression.
	EndP minic.Pos
	// NonAffine marks references whose subscripts could not be expressed
	// as affine functions; such references are excluded from modeling and
	// reported as diagnostics, mirroring a compiler's "not analyzable".
	NonAffine bool
}

// Addr evaluates the absolute virtual byte address of the reference under
// the given loop-variable environment.
func (r *Ref) Addr(env map[string]int64) (int64, error) {
	off, err := r.Offset.Eval(env)
	if err != nil {
		return 0, err
	}
	return r.Sym.Base + off, nil
}

// String renders the reference for diagnostics.
func (r *Ref) String() string {
	mode := "R"
	if r.Write {
		mode = "W"
	}
	if r.NonAffine {
		return fmt.Sprintf("%s %s (non-affine)", mode, r.Src)
	}
	return fmt.Sprintf("%s %s @ %s + (%s)", mode, r.Src, r.Sym.Name, r.Offset.String())
}

// Parallel describes the OpenMP work-sharing annotation on a loop.
type Parallel struct {
	Schedule   string // "static"; "dynamic"/"guided" are accepted but modeled as static
	Chunk      int64  // 0 means unspecified (block schedule: one contiguous chunk per thread)
	NumThreads int    // 0 means unspecified (taken from the analysis config)
	Private    []string
}

// Loop is one level of a loop nest, normalized to:
//
//	for (Var = First; Step>0 ? Var < Limit : Var > Limit; Var += Step)
//
// First and Limit may reference outer loop variables (affine bounds), which
// covers triangular nests; Step must be a non-zero compile-time constant.
type Loop struct {
	Var      string
	First    affine.Expr
	Limit    affine.Expr // exclusive in the direction of travel
	Step     int64
	Parallel *Parallel // non-nil if this level carries the omp pragma
	P        minic.Pos
}

// TripCount returns the number of iterations for the given outer-variable
// environment (0 if the loop is zero-trip).
func (l *Loop) TripCount(env map[string]int64) (int64, error) {
	first, err := l.First.Eval(env)
	if err != nil {
		return 0, err
	}
	limit, err := l.Limit.Eval(env)
	if err != nil {
		return 0, err
	}
	return tripCount(first, limit, l.Step), nil
}

func tripCount(first, limit, step int64) int64 {
	if step > 0 {
		if first >= limit {
			return 0
		}
		return (limit - first + step - 1) / step
	}
	if first <= limit {
		return 0
	}
	return (first - limit + (-step) - 1) / (-step)
}

// ConstTripCount returns the trip count when both bounds are constants.
func (l *Loop) ConstTripCount() (int64, bool) {
	f, ok1 := l.First.ConstValue()
	u, ok2 := l.Limit.ConstValue()
	if !ok1 || !ok2 {
		return 0, false
	}
	return tripCount(f, u, l.Step), true
}

// Value returns the induction-variable value at trip k (0-based).
func (l *Loop) Value(first int64, k int64) int64 { return first + k*l.Step }

// Nest is a perfect loop nest with memory references in its innermost body.
type Nest struct {
	Loops    []*Loop // outermost first
	ParLevel int     // index into Loops of the parallelized loop; -1 if none
	Refs     []Ref   // innermost-body references in access order
	Body     []minic.Stmt
	// OpCounts summarizes the innermost body for the processor model.
	Ops OpCounts
}

// OpCounts tallies per-innermost-iteration operations, the inputs to the
// processor model.
type OpCounts struct {
	Loads    int
	Stores   int
	FPAdds   int // additions/subtractions on floating data
	FPMuls   int
	FPDivs   int
	IntOps   int // integer ALU ops (address arithmetic in subscripts)
	Assigns  int
	MaxChain int // longest dependence chain of FP ops through one statement
}

// Parallelized returns the parallel loop, or nil if the nest is sequential.
func (n *Nest) Parallelized() *Loop {
	if n.ParLevel < 0 || n.ParLevel >= len(n.Loops) {
		return nil
	}
	return n.Loops[n.ParLevel]
}

// Innermost returns the innermost loop of the nest.
func (n *Nest) Innermost() *Loop { return n.Loops[len(n.Loops)-1] }

// Depth returns the nest depth.
func (n *Nest) Depth() int { return len(n.Loops) }

// Vars returns induction variable names, outermost first.
func (n *Nest) Vars() []string {
	out := make([]string, len(n.Loops))
	for i, l := range n.Loops {
		out[i] = l.Var
	}
	return out
}

// TotalIterations returns the product of all trip counts when every bound
// is constant (rectangular nest); ok is false otherwise.
func (n *Nest) TotalIterations() (int64, bool) {
	total := int64(1)
	for _, l := range n.Loops {
		t, ok := l.ConstTripCount()
		if !ok {
			return 0, false
		}
		total *= t
	}
	return total, true
}

// Params returns the symbolic bound parameters ("$name" variables) used
// in the nest's loop bounds, sorted and de-duplicated; empty for fully
// constant-bounded nests.
func (n *Nest) Params() []string {
	seen := map[string]bool{}
	loopVars := map[string]bool{}
	for _, l := range n.Loops {
		loopVars[l.Var] = true
	}
	var out []string
	for _, l := range n.Loops {
		for _, e := range []affine.Expr{l.First, l.Limit} {
			for _, v := range e.Vars() {
				if !loopVars[v] && !seen[v] {
					seen[v] = true
					out = append(out, v)
				}
			}
		}
	}
	sort.Strings(out)
	return out
}

// AnalyzableRefs returns the refs with affine subscripts.
func (n *Nest) AnalyzableRefs() []Ref {
	out := make([]Ref, 0, len(n.Refs))
	for _, r := range n.Refs {
		if !r.NonAffine {
			out = append(out, r)
		}
	}
	return out
}

// String renders a compact summary of the nest.
func (n *Nest) String() string {
	var b strings.Builder
	for i, l := range n.Loops {
		par := ""
		if p := l.Parallel; p != nil {
			par = fmt.Sprintf("  [parallel %s chunk=%d threads=%d]", p.Schedule, p.Chunk, p.NumThreads)
		}
		fmt.Fprintf(&b, "%sfor %s = %s; %s; step %+d%s\n",
			strings.Repeat("  ", i), l.Var, l.First.String(), l.Limit.String(), l.Step, par)
	}
	for _, r := range n.Refs {
		fmt.Fprintf(&b, "%s%s\n", strings.Repeat("  ", len(n.Loops)), r.String())
	}
	return b.String()
}

// Unit is a fully lowered translation unit: the data layout plus every
// top-level loop nest of the program.
type Unit struct {
	Prog     *minic.Program
	Structs  map[string]*Struct
	Syms     map[string]*Symbol
	SymOrder []*Symbol
	Nests    []*Nest
	LineSize int64
	// Warnings collects non-fatal lowering diagnostics (e.g. non-affine
	// subscripts that were excluded from modeling).
	Warnings []string
}

// TotalDataBytes returns the summed size of all symbols.
func (u *Unit) TotalDataBytes() int64 {
	var total int64
	for _, s := range u.SymOrder {
		total += s.Size()
	}
	return total
}

// Symbol returns the named symbol, if declared.
func (u *Unit) Symbol(name string) (*Symbol, bool) {
	s, ok := u.Syms[name]
	return s, ok
}
