// Package loopir defines the loop-nest intermediate representation consumed
// by the cost models, and the lowering from the minic AST into it.
//
// The IR plays the role of Open64's High-Level WHIRL in the paper: for each
// parallel loop nest it exposes loop bounds, step sizes, index variables,
// the OpenMP chunk size, and for every memory reference in the innermost
// loop an affine byte-offset function over the loop induction variables
// (including struct member offsets for arrays of structured data).
package loopir

import (
	"fmt"
	"strings"
)

// Type is a C-like data type with size and alignment following the usual
// LP64 layout rules (the rules the paper's cache-line math depends on).
type Type interface {
	Size() int64
	Align() int64
	String() string
}

// Basic is a scalar C type.
type Basic struct {
	Name  string
	size  int64
	align int64
	Float bool // true for float/double
}

// Size returns the size of the type in bytes.
func (b *Basic) Size() int64 { return b.size }

// Align returns the alignment requirement in bytes.
func (b *Basic) Align() int64 { return b.align }

// String returns the C name of the type.
func (b *Basic) String() string { return b.Name }

// Predefined basic types.
var (
	Char   = &Basic{Name: "char", size: 1, align: 1}
	Short  = &Basic{Name: "short", size: 2, align: 2}
	Int    = &Basic{Name: "int", size: 4, align: 4}
	Long   = &Basic{Name: "long", size: 8, align: 8}
	SizeT  = &Basic{Name: "size_t", size: 8, align: 8}
	Float  = &Basic{Name: "float", size: 4, align: 4, Float: true}
	Double = &Basic{Name: "double", size: 8, align: 8, Float: true}
)

// BasicByName maps minic type keywords to their Basic type.
func BasicByName(name string) (*Basic, bool) {
	switch name {
	case "char":
		return Char, true
	case "short":
		return Short, true
	case "int":
		return Int, true
	case "long":
		return Long, true
	case "size_t":
		return SizeT, true
	case "float":
		return Float, true
	case "double":
		return Double, true
	}
	return nil, false
}

// Array is a fixed-length array type.
type Array struct {
	Elem Type
	Len  int64
}

// Size returns Len * Elem.Size().
func (a *Array) Size() int64 { return a.Len * a.Elem.Size() }

// Align returns the element alignment.
func (a *Array) Align() int64 { return a.Elem.Align() }

// String returns the type in C-ish postfix syntax.
func (a *Array) String() string { return fmt.Sprintf("%s[%d]", a.Elem.String(), a.Len) }

// MakeArray wraps elem in (possibly multi-dimensional) array types; lens is
// ordered outermost first, matching C declarator order.
func MakeArray(elem Type, lens []int64) Type {
	t := elem
	for i := len(lens) - 1; i >= 0; i-- {
		t = &Array{Elem: t, Len: lens[i]}
	}
	return t
}

// Field is a struct member with its computed byte offset.
type Field struct {
	Name   string
	Type   Type
	Offset int64
}

// Struct is a C struct with layout computed per the standard rules: each
// field is placed at the next offset aligned to the field's alignment, and
// the struct size is rounded up to the maximum field alignment.
type Struct struct {
	Name   string
	Fields []Field
	size   int64
	align  int64
}

// NewStruct lays out the given (name, type) pairs into a struct.
func NewStruct(name string, fields []Field) *Struct {
	s := &Struct{Name: name, align: 1}
	off := int64(0)
	for _, f := range fields {
		a := f.Type.Align()
		if a > s.align {
			s.align = a
		}
		off = alignUp(off, a)
		f.Offset = off
		s.Fields = append(s.Fields, f)
		off += f.Type.Size()
	}
	s.size = alignUp(off, s.align)
	if s.size == 0 {
		s.size = s.align // empty structs still occupy storage
	}
	return s
}

func alignUp(n, a int64) int64 {
	if a <= 1 {
		return n
	}
	return (n + a - 1) / a * a
}

// Size returns the padded struct size.
func (s *Struct) Size() int64 { return s.size }

// Align returns the struct alignment.
func (s *Struct) Align() int64 { return s.align }

// String returns "struct Name".
func (s *Struct) String() string { return "struct " + s.Name }

// FieldByName returns the field with the given name.
func (s *Struct) FieldByName(name string) (Field, bool) {
	for _, f := range s.Fields {
		if f.Name == name {
			return f, true
		}
	}
	return Field{}, false
}

// Describe renders the full layout for diagnostics.
func (s *Struct) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "struct %s { // size=%d align=%d\n", s.Name, s.size, s.align)
	for _, f := range s.Fields {
		fmt.Fprintf(&b, "  %-8s %s; // offset=%d size=%d\n", f.Type.String(), f.Name, f.Offset, f.Type.Size())
	}
	b.WriteString("}")
	return b.String()
}

// ElemType strips array wrappers to the ultimate element type.
func ElemType(t Type) Type {
	for {
		a, ok := t.(*Array)
		if !ok {
			return t
		}
		t = a.Elem
	}
}

// IsFloatType reports whether the ultimate element type is floating point.
func IsFloatType(t Type) bool {
	b, ok := ElemType(t).(*Basic)
	return ok && b.Float
}
