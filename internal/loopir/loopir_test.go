package loopir

import (
	"strings"
	"testing"

	"repro/internal/minic"
)

func lower(t *testing.T, src string, opts LowerOptions) *Unit {
	t.Helper()
	prog, err := minic.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	unit, err := Lower(prog, opts)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return unit
}

func lowerErr(t *testing.T, src string) error {
	t.Helper()
	prog, err := minic.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = Lower(prog, LowerOptions{})
	if err == nil {
		t.Fatal("expected lowering error")
	}
	return err
}

func TestBasicTypeSizes(t *testing.T) {
	cases := []struct {
		t     Type
		size  int64
		align int64
	}{
		{Char, 1, 1}, {Short, 2, 2}, {Int, 4, 4}, {Long, 8, 8},
		{Float, 4, 4}, {Double, 8, 8}, {SizeT, 8, 8},
	}
	for _, c := range cases {
		if c.t.Size() != c.size || c.t.Align() != c.align {
			t.Errorf("%s: size/align = %d/%d, want %d/%d",
				c.t.String(), c.t.Size(), c.t.Align(), c.size, c.align)
		}
	}
}

func TestStructLayoutCRules(t *testing.T) {
	// struct { char c; double d; short s; } — C says offsets 0, 8, 16,
	// size 24 (tail padded to 8).
	s := NewStruct("X", []Field{
		{Name: "c", Type: Char},
		{Name: "d", Type: Double},
		{Name: "s", Type: Short},
	})
	want := []int64{0, 8, 16}
	for i, f := range s.Fields {
		if f.Offset != want[i] {
			t.Errorf("field %s offset = %d, want %d", f.Name, f.Offset, want[i])
		}
	}
	if s.Size() != 24 {
		t.Errorf("size = %d, want 24", s.Size())
	}
	if s.Align() != 8 {
		t.Errorf("align = %d, want 8", s.Align())
	}
}

func TestStructLayoutPaperArgs(t *testing.T) {
	// The paper's accumulator struct: five doubles = 40 bytes, so adjacent
	// elements share a 64-byte line — the linchpin of the linreg victim.
	s := NewStruct("Args", []Field{
		{Name: "sx", Type: Double}, {Name: "sxx", Type: Double},
		{Name: "sy", Type: Double}, {Name: "syy", Type: Double},
		{Name: "sxy", Type: Double},
	})
	if s.Size() != 40 {
		t.Fatalf("Args size = %d, want 40", s.Size())
	}
}

func TestArrayTypes(t *testing.T) {
	a := MakeArray(Double, []int64{3, 4})
	if a.Size() != 3*4*8 {
		t.Fatalf("array size = %d", a.Size())
	}
	if a.String() != "double[4][3]" && a.String() != "double[3][4]" {
		// Outer dimension wraps last; representation is elem-first.
		t.Logf("array string: %s", a.String())
	}
	if ElemType(a) != Double {
		t.Fatal("ElemType should strip arrays")
	}
	if !IsFloatType(a) {
		t.Fatal("double array is float type")
	}
	if IsFloatType(MakeArray(Int, []int64{2})) {
		t.Fatal("int array is not float type")
	}
}

func TestSymbolAddressesLineAligned(t *testing.T) {
	unit := lower(t, `
double a[3];
char pad[5];
double b[7];
`, LowerOptions{LineSize: 64})
	for _, sym := range unit.SymOrder {
		if sym.Base%64 != 0 {
			t.Errorf("symbol %s base %d not 64-aligned", sym.Name, sym.Base)
		}
	}
	// Symbols must not overlap.
	for i := 0; i < len(unit.SymOrder)-1; i++ {
		s, next := unit.SymOrder[i], unit.SymOrder[i+1]
		if s.Base+s.Size() > next.Base {
			t.Errorf("symbols %s and %s overlap", s.Name, next.Name)
		}
	}
}

func TestLowerOffsetsStructArray(t *testing.T) {
	unit := lower(t, `
#define N 8
struct P { double x; double y; };
struct A { double s; struct P pts[4]; };
struct A args[N];
for (j = 0; j < N; j++)
  for (i = 0; i < 4; i++)
    args[j].s += args[j].pts[i].y;
`, LowerOptions{})
	nest := unit.Nests[0]
	// struct P = 16 bytes; struct A = 8 + 4*16 = 72 bytes.
	// args[j].s → 72*j; args[j].pts[i].y → 72*j + 8 + 16*i + 8.
	var sOff, yOff string
	for _, r := range nest.Refs {
		switch r.Src {
		case "args[j].s":
			sOff = r.Offset.String()
		case "args[j].pts[i].y":
			yOff = r.Offset.String()
		}
	}
	if sOff != "72*j" {
		t.Errorf("args[j].s offset = %s, want 72*j", sOff)
	}
	if yOff != "16*i + 72*j + 16" {
		t.Errorf("args[j].pts[i].y offset = %s, want 16*i + 72*j + 16", yOff)
	}
}

func TestLowerRefOrderAndKinds(t *testing.T) {
	unit := lower(t, `
#define N 8
double a[N];
double b[N];
for (i = 0; i < N; i++)
    a[i] += b[i] * 2.0;
`, LowerOptions{})
	nest := unit.Nests[0]
	// Expected: read b[i], read a[i] (compound), write a[i].
	if len(nest.Refs) != 3 {
		t.Fatalf("refs = %d: %v", len(nest.Refs), nest.Refs)
	}
	if nest.Refs[0].Src != "b[i]" || nest.Refs[0].Write {
		t.Errorf("ref 0 = %v", nest.Refs[0])
	}
	if nest.Refs[1].Src != "a[i]" || nest.Refs[1].Write {
		t.Errorf("ref 1 = %v", nest.Refs[1])
	}
	if nest.Refs[2].Src != "a[i]" || !nest.Refs[2].Write {
		t.Errorf("ref 2 = %v", nest.Refs[2])
	}
}

func TestLowerOpCounts(t *testing.T) {
	unit := lower(t, `
#define N 8
double a[N];
double b[N];
double c[N];
for (i = 0; i < N; i++)
    a[i] = b[i] * c[i] + 2.0;
`, LowerOptions{})
	ops := unit.Nests[0].Ops
	if ops.Loads != 2 || ops.Stores != 1 {
		t.Errorf("loads/stores = %d/%d", ops.Loads, ops.Stores)
	}
	if ops.FPMuls != 1 || ops.FPAdds != 1 {
		t.Errorf("fp ops = %d muls, %d adds", ops.FPMuls, ops.FPAdds)
	}
	if ops.Assigns != 1 {
		t.Errorf("assigns = %d", ops.Assigns)
	}
	if ops.MaxChain != 2 {
		t.Errorf("max chain = %d, want 2", ops.MaxChain)
	}
}

func TestLowerLoopNormalization(t *testing.T) {
	unit := lower(t, `
#define N 10
double a[N];
for (i = 0; i <= N - 2; i++) a[i] = 1.0;
`, LowerOptions{})
	l := unit.Nests[0].Loops[0]
	trips, ok := l.ConstTripCount()
	if !ok || trips != 9 {
		t.Fatalf("<= loop trips = %d,%v want 9", trips, ok)
	}

	unit = lower(t, `
#define N 10
double a[N];
for (i = N - 1; i >= 0; i--) a[i] = 1.0;
`, LowerOptions{})
	l = unit.Nests[0].Loops[0]
	if l.Step != -1 {
		t.Fatalf("step = %d", l.Step)
	}
	trips, ok = l.ConstTripCount()
	if !ok || trips != 10 {
		t.Fatalf(">= downward loop trips = %d,%v want 10", trips, ok)
	}

	unit = lower(t, `
#define N 9
double a[N];
for (i = 0; i < N; i += 2) a[i] = 1.0;
`, LowerOptions{})
	trips, _ = unit.Nests[0].Loops[0].ConstTripCount()
	if trips != 5 {
		t.Fatalf("stride-2 trips = %d, want 5", trips)
	}
}

func TestLowerZeroTripLoop(t *testing.T) {
	unit := lower(t, `
double a[4];
for (i = 5; i < 5; i++) a[0] = 1.0;
`, LowerOptions{})
	trips, ok := unit.Nests[0].Loops[0].ConstTripCount()
	if !ok || trips != 0 {
		t.Fatalf("zero-trip loop trips = %d", trips)
	}
}

func TestLowerTriangularBounds(t *testing.T) {
	unit := lower(t, `
#define N 6
double a[N][N];
for (j = 0; j < N; j++)
  for (i = j; i < N; i++)
    a[j][i] = 1.0;
`, LowerOptions{})
	nest := unit.Nests[0]
	inner := nest.Loops[1]
	if inner.First.String() != "j" {
		t.Fatalf("triangular lower bound = %s", inner.First.String())
	}
	if _, ok := nest.TotalIterations(); ok {
		t.Fatal("triangular nest must not report constant total")
	}
	got, err := inner.TripCount(map[string]int64{"j": 2})
	if err != nil || got != 4 {
		t.Fatalf("trip(j=2) = %d, %v", got, err)
	}
}

func TestLowerParallelInfo(t *testing.T) {
	unit := lower(t, `
#define N 32
double a[N];
#pragma omp parallel for schedule(static, 4) num_threads(6)
for (i = 0; i < N; i++) a[i] = 1.0;
`, LowerOptions{})
	nest := unit.Nests[0]
	if nest.ParLevel != 0 {
		t.Fatalf("par level = %d", nest.ParLevel)
	}
	p := nest.Parallelized().Parallel
	if p.Chunk != 4 || p.NumThreads != 6 || p.Schedule != "static" {
		t.Fatalf("parallel = %+v", p)
	}
}

func TestLowerErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"undeclared", "for (i = 0; i < 4; i++) zz[i] = 1.0;", "undeclared"},
		{"redeclared var", "double a[4];\ndouble a[4];", "redeclared"},
		{"redeclared struct", "struct S { double x; };\nstruct S { double y; };", "redeclared"},
		{"unknown struct", "struct Missing m[4];", "undefined struct"},
		{"no field", "struct S { double x; };\nstruct S s[4];\nfor (i = 0; i < 4; i++) s[i].y = 1.0;", "no field"},
		{"index scalar", "double a[4];\nfor (i = 0; i < 4; i++) a[i][0] = 1.0;", "indexing non-array"},
		{"member on array", "double a[4];\nfor (i = 0; i < 4; i++) a.x = 1.0;", "member access on non-struct"},
		{"non-affine strict", "#define N 4\ndouble a[N][N];\nfor (i = 0; i < N; i++)\nfor (j = 0; j < N; j++) a[i][i * j] = 1.0;", "non-affine"},
		{"variable step", "double a[16];\nfor (i = 0; i < 16; i += k) a[i] = 1.0;", "unknown name"},
		{"zero step", "#define Z 0\ndouble a[16];\nfor (i = 0; i < 16; i += Z) a[i] = 1.0;", "zero step"},
		{"direction contradiction", "double a[4];\nfor (i = 0; i > 4; i++) a[i] = 1.0;", "contradicts"},
		{"imperfect nest", "double a[4];\nfor (i = 0; i < 4; i++) { a[i] = 1.0; for (j = 0; j < 4; j++) a[j] = 2.0; }", "imperfect"},
		{"multiple parallel", "double a[4][4];\n#pragma omp parallel for\nfor (i = 0; i < 4; i++)\n#pragma omp parallel for\nfor (j = 0; j < 4; j++) a[i][j] = 1.0;", "multiple parallel"},
		{"whole struct assign", "struct S { double x; };\nstruct S s[4];\nstruct S q[4];\nfor (i = 0; i < 4; i++) s[i] = 1.0;", "scalar element"},
	}
	for _, c := range cases {
		err := lowerErr(t, c.src)
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.want)
		}
	}
}

func TestLowerNonAffineAllowed(t *testing.T) {
	unit := lower(t, `
#define N 4
double a[N][N];
for (i = 0; i < N; i++)
  for (j = 0; j < N; j++)
    a[i][i * j] = 1.0;
`, LowerOptions{AllowNonAffine: true})
	nest := unit.Nests[0]
	if len(unit.Warnings) == 0 {
		t.Fatal("expected non-affine warning")
	}
	var nonAffine int
	for _, r := range nest.Refs {
		if r.NonAffine {
			nonAffine++
		}
	}
	if nonAffine != 1 {
		t.Fatalf("non-affine refs = %d", nonAffine)
	}
	if len(nest.AnalyzableRefs()) != len(nest.Refs)-1 {
		t.Fatal("AnalyzableRefs should exclude the non-affine ref")
	}
}

func TestLowerScalarGlobalIsMemoryRef(t *testing.T) {
	unit := lower(t, `
double s;
double a[8];
for (i = 0; i < 8; i++) s += a[i];
`, LowerOptions{})
	nest := unit.Nests[0]
	var sRefs int
	for _, r := range nest.Refs {
		if r.Sym.Name == "s" {
			sRefs++
			if !r.Offset.IsConst() {
				t.Error("scalar ref offset must be constant")
			}
		}
	}
	if sRefs != 2 { // read + write of the compound assignment
		t.Fatalf("scalar refs = %d, want 2", sRefs)
	}
}

func TestLowerDivModConstantFolding(t *testing.T) {
	unit := lower(t, `
#define N 16
#define HALF N / 2
double a[N];
for (i = 0; i < HALF; i++) a[i + N % 3] = 1.0;
`, LowerOptions{})
	nest := unit.Nests[0]
	trips, _ := nest.Loops[0].ConstTripCount()
	if trips != 8 {
		t.Fatalf("trips = %d", trips)
	}
	if got := nest.Refs[0].Offset.String(); got != "8*i + 8" {
		t.Fatalf("offset = %s", got)
	}
}

func TestNestAccessors(t *testing.T) {
	unit := lower(t, `
#define N 4
#define M 3
double a[M][N];
#pragma omp parallel for
for (j = 0; j < M; j++)
  for (i = 0; i < N; i++)
    a[j][i] = 1.0;
`, LowerOptions{})
	nest := unit.Nests[0]
	if nest.Depth() != 2 {
		t.Fatalf("depth = %d", nest.Depth())
	}
	if vars := nest.Vars(); vars[0] != "j" || vars[1] != "i" {
		t.Fatalf("vars = %v", vars)
	}
	total, ok := nest.TotalIterations()
	if !ok || total != 12 {
		t.Fatalf("total = %d", total)
	}
	if nest.Innermost().Var != "i" {
		t.Fatal("innermost wrong")
	}
	if !strings.Contains(nest.String(), "parallel") {
		t.Fatal("String should mention parallel level")
	}
	if unit.TotalDataBytes() != 12*8 {
		t.Fatalf("data bytes = %d", unit.TotalDataBytes())
	}
	if _, ok := unit.Symbol("a"); !ok {
		t.Fatal("Symbol lookup failed")
	}
}

func TestRefAddr(t *testing.T) {
	unit := lower(t, `
#define N 8
double a[N];
for (i = 0; i < N; i++) a[i] = 1.0;
`, LowerOptions{BaseAddress: 0x1000})
	r := unit.Nests[0].Refs[0]
	addr, err := r.Addr(map[string]int64{"i": 3})
	if err != nil {
		t.Fatal(err)
	}
	if addr != 0x1000+24 {
		t.Fatalf("addr = %#x", addr)
	}
	if _, err := r.Addr(map[string]int64{}); err == nil {
		t.Fatal("expected unbound-variable error")
	}
}

func TestBasicByNameAll(t *testing.T) {
	for name, want := range map[string]*Basic{
		"char": Char, "short": Short, "int": Int, "long": Long,
		"size_t": SizeT, "float": Float, "double": Double,
	} {
		got, ok := BasicByName(name)
		if !ok || got != want {
			t.Errorf("BasicByName(%s) = %v, %v", name, got, ok)
		}
	}
	if _, ok := BasicByName("quaternion"); ok {
		t.Fatal("unknown type should not resolve")
	}
}

func TestStructDescribe(t *testing.T) {
	s := NewStruct("P", []Field{{Name: "x", Type: Double}, {Name: "c", Type: Char}})
	d := s.Describe()
	for _, want := range []string{"struct P", "offset=0", "offset=8", "size=16"} {
		if !strings.Contains(d, want) {
			t.Errorf("Describe missing %q:\n%s", want, d)
		}
	}
}

func TestLoopValueAndTripCount(t *testing.T) {
	unit := lower(t, `
#define N 20
double a[N];
for (i = 2; i < N; i += 3) a[i] = 1.0;
`, LowerOptions{})
	l := unit.Nests[0].Loops[0]
	if l.Value(2, 0) != 2 || l.Value(2, 3) != 11 {
		t.Fatalf("Value wrong: %d, %d", l.Value(2, 0), l.Value(2, 3))
	}
	got, err := l.TripCount(map[string]int64{})
	if err != nil || got != 6 {
		t.Fatalf("TripCount = %d, %v", got, err)
	}
	// TripCount with unbound variables errors.
	tri := lower(t, `
#define N 6
double a[N][N];
for (j = 0; j < N; j++)
  for (i = j; i < N; i++)
    a[j][i] = 1.0;
`, LowerOptions{})
	if _, err := tri.Nests[0].Loops[1].TripCount(map[string]int64{}); err == nil {
		t.Fatal("expected unbound-variable error")
	}
}

func TestParallelizedNilForSequential(t *testing.T) {
	unit := lower(t, `
double a[4];
for (i = 0; i < 4; i++) a[i] = 1.0;
`, LowerOptions{})
	if unit.Nests[0].Parallelized() != nil {
		t.Fatal("sequential nest reports a parallel loop")
	}
}

func TestFloatClassificationMixed(t *testing.T) {
	// int ops on int arrays must be counted as IntOps, not FP.
	unit := lower(t, `
#define N 8
int counts[N];
double vals[N];
for (i = 0; i < N; i++) {
    counts[i] = counts[i] + 1;
    vals[i] = vals[i] * 2.0 + counts[i];
}
`, LowerOptions{})
	ops := unit.Nests[0].Ops
	if ops.FPAdds < 1 || ops.FPMuls < 1 {
		t.Fatalf("fp ops = %+v", ops)
	}
	// The counts[i]+1 addition is integer.
	if ops.IntOps == 0 {
		t.Fatalf("int add not classified: %+v", ops)
	}
}

func TestCompoundDivAndMulOnFloats(t *testing.T) {
	unit := lower(t, `
#define N 8
double a[N];
for (i = 0; i < N; i++) {
    a[i] *= 3.0;
    a[i] /= 2.0;
}
`, LowerOptions{})
	ops := unit.Nests[0].Ops
	if ops.FPMuls != 1 || ops.FPDivs != 1 {
		t.Fatalf("compound fp ops = %+v", ops)
	}
	if ops.Loads != 2 || ops.Stores != 2 {
		t.Fatalf("compound loads/stores = %d/%d", ops.Loads, ops.Stores)
	}
}

func TestCompoundIntOps(t *testing.T) {
	unit := lower(t, `
#define N 8
int a[N];
for (i = 0; i < N; i++) {
    a[i] += 1;
    a[i] *= 2;
    a[i] /= 3;
}
`, LowerOptions{})
	ops := unit.Nests[0].Ops
	if ops.FPAdds+ops.FPMuls+ops.FPDivs != 0 {
		t.Fatalf("integer compounds misclassified: %+v", ops)
	}
	if ops.IntOps < 3 {
		t.Fatalf("int ops = %d", ops.IntOps)
	}
}

func TestToAffineNegativeAndDivision(t *testing.T) {
	unit := lower(t, `
#define N 16
#define HALF N / 2
#define REM N % 5
double a[N];
for (i = 0; i < N; i++) a[(-i + N) - HALF + REM - 1] = 1.0;
`, LowerOptions{})
	ref := unit.Nests[0].Refs[0]
	// -i + 16 - 8 + 1 - 1 = -i + 8 elements → bytes: -8i + 64.
	if got := ref.Offset.String(); got != "-8*i + 64" {
		t.Fatalf("offset = %s", got)
	}
}

func TestNonAffineDivisionByVariable(t *testing.T) {
	err := lowerErr(t, `
double a[16];
for (i = 1; i < 16; i++) a[16 / i] = 1.0;
`)
	if !strings.Contains(err.Error(), "non-affine") {
		t.Fatalf("err = %v", err)
	}
	err = lowerErr(t, `
double a[16];
for (i = 1; i < 16; i++) a[i % 3] = 1.0;
`)
	if !strings.Contains(err.Error(), "non-affine") {
		t.Fatalf("err = %v", err)
	}
}

func TestFloatLiteralSubscriptRejected(t *testing.T) {
	err := lowerErr(t, `
double a[16];
for (i = 0; i < 16; i++) a[1.5] = 1.0;
`)
	if !strings.Contains(err.Error(), "non-affine") {
		t.Fatalf("err = %v", err)
	}
}
