package loopir

import (
	"fmt"

	"repro/internal/affine"
	"repro/internal/minic"
)

// LowerOptions configures lowering from the minic AST.
type LowerOptions struct {
	// LineSize is the cache-line size every symbol is aligned to
	// (paper assumption III-B). Defaults to 64.
	LineSize int64
	// BaseAddress is the virtual address of the first symbol. Defaults to
	// 0x100000 so address zero never aliases a real reference.
	BaseAddress int64
	// AllowNonAffine records references with non-affine subscripts as
	// unanalyzable warnings instead of failing the whole lowering.
	AllowNonAffine bool
	// SymbolicBounds accepts unknown identifiers in LOOP BOUNDS as
	// symbolic parameters (affine variables named "$<ident>"): the
	// paper's "loop boundaries not known at compile time" case, where
	// the model reports an FS rate per chunk run instead of a total.
	// Subscripts may not reference parameters.
	SymbolicBounds bool
}

func (o LowerOptions) withDefaults() LowerOptions {
	if o.LineSize <= 0 {
		o.LineSize = 64
	}
	if o.BaseAddress <= 0 {
		o.BaseAddress = 0x100000
	}
	return o
}

type lowerer struct {
	opts    LowerOptions
	unit    *Unit
	defines map[string]int64
}

// Lower converts a parsed program into the loop IR, assigning cache-line
// aligned virtual addresses to every global and extracting one Nest per
// top-level loop.
func Lower(prog *minic.Program, opts LowerOptions) (*Unit, error) {
	opts = opts.withDefaults()
	lw := &lowerer{
		opts: opts,
		unit: &Unit{
			Prog:     prog,
			Structs:  make(map[string]*Struct),
			Syms:     make(map[string]*Symbol),
			LineSize: opts.LineSize,
		},
		defines: make(map[string]int64),
	}
	for _, d := range prog.Defines {
		lw.defines[d.Name] = d.Value
	}
	if err := lw.lowerStructs(); err != nil {
		return nil, err
	}
	if err := lw.lowerSymbols(); err != nil {
		return nil, err
	}
	for _, f := range prog.Loops() {
		nest, err := lw.lowerNest(f)
		if err != nil {
			return nil, err
		}
		lw.unit.Nests = append(lw.unit.Nests, nest)
	}
	return lw.unit, nil
}

func (lw *lowerer) resolveType(ts minic.TypeSpec, pos minic.Pos) (Type, error) {
	if ts.Struct != "" {
		st, ok := lw.unit.Structs[ts.Struct]
		if !ok {
			return nil, fmt.Errorf("%s: undefined struct %q", pos, ts.Struct)
		}
		return st, nil
	}
	b, ok := BasicByName(ts.Basic)
	if !ok {
		return nil, fmt.Errorf("%s: unknown type %q", pos, ts.Basic)
	}
	return b, nil
}

func (lw *lowerer) lowerStructs() error {
	for _, sd := range lw.unit.Prog.Structs {
		if _, dup := lw.unit.Structs[sd.Name]; dup {
			return fmt.Errorf("%s: struct %q redeclared", sd.P, sd.Name)
		}
		var fields []Field
		for _, fd := range sd.Fields {
			t, err := lw.resolveType(fd.Type, fd.P)
			if err != nil {
				return err
			}
			fields = append(fields, Field{Name: fd.Name, Type: MakeArray(t, fd.ArrayLens)})
		}
		lw.unit.Structs[sd.Name] = NewStruct(sd.Name, fields)
	}
	return nil
}

func (lw *lowerer) lowerSymbols() error {
	addr := lw.opts.BaseAddress
	line := lw.opts.LineSize
	for _, vd := range lw.unit.Prog.Vars {
		if _, dup := lw.unit.Syms[vd.Name]; dup {
			return fmt.Errorf("%s: variable %q redeclared", vd.P, vd.Name)
		}
		t, err := lw.resolveType(vd.Type, vd.P)
		if err != nil {
			return err
		}
		full := MakeArray(t, vd.ArrayLens)
		addr = alignUp(addr, line)
		sym := &Symbol{Name: vd.Name, Type: full, Base: addr}
		addr += full.Size()
		lw.unit.Syms[vd.Name] = sym
		lw.unit.SymOrder = append(lw.unit.SymOrder, sym)
	}
	return nil
}

// lowerNest walks a chain of perfectly nested for statements and lowers the
// innermost body's references.
func (lw *lowerer) lowerNest(f *minic.ForStmt) (*Nest, error) {
	nest := &Nest{ParLevel: -1}
	outerVars := map[string]bool{}
	cur := f
	for {
		loop, err := lw.lowerLoop(cur, outerVars)
		if err != nil {
			return nil, err
		}
		if loop.Parallel != nil {
			if nest.ParLevel >= 0 {
				return nil, fmt.Errorf("%s: multiple parallel levels in one nest", cur.P)
			}
			nest.ParLevel = len(nest.Loops)
		}
		nest.Loops = append(nest.Loops, loop)
		outerVars[cur.Var] = true

		// Perfect nesting: descend while the body is exactly one for loop.
		if len(cur.Body) == 1 {
			if inner, ok := cur.Body[0].(*minic.ForStmt); ok {
				cur = inner
				continue
			}
		}
		// Otherwise this is the innermost body; it must not contain loops.
		for _, s := range cur.Body {
			if _, bad := s.(*minic.ForStmt); bad {
				return nil, fmt.Errorf("%s: imperfect loop nest (loop mixed with statements) is not supported", s.Pos())
			}
		}
		nest.Body = cur.Body
		break
	}
	if err := lw.lowerBody(nest, outerVars); err != nil {
		return nil, err
	}
	return nest, nil
}

func (lw *lowerer) lowerLoop(f *minic.ForStmt, outerVars map[string]bool) (*Loop, error) {
	first, err := lw.toAffineOpt(f.Init, outerVars, lw.opts.SymbolicBounds)
	if err != nil {
		return nil, fmt.Errorf("loop %q lower bound: %w", f.Var, err)
	}
	bound, err := lw.toAffineOpt(f.Bound, outerVars, lw.opts.SymbolicBounds)
	if err != nil {
		return nil, fmt.Errorf("loop %q upper bound: %w", f.Var, err)
	}
	stepA, err := lw.toAffine(f.Step, outerVars)
	if err != nil {
		return nil, fmt.Errorf("loop %q step: %w", f.Var, err)
	}
	step, ok := stepA.ConstValue()
	if !ok {
		return nil, fmt.Errorf("%s: loop %q step must be a compile-time constant", f.P, f.Var)
	}
	if step == 0 {
		return nil, fmt.Errorf("%s: loop %q has zero step", f.P, f.Var)
	}

	// Normalize the condition to an exclusive limit in the travel direction.
	limit := bound
	switch f.CondOp {
	case minic.LT, minic.GT:
		// already exclusive
	case minic.LE:
		limit = bound.Add(affine.Const(1))
	case minic.GE:
		limit = bound.Sub(affine.Const(1))
	case minic.NEQ:
		// i != bound with unit steps behaves like an exclusive limit.
	default:
		return nil, fmt.Errorf("%s: unsupported condition on loop %q", f.P, f.Var)
	}
	if (step > 0 && (f.CondOp == minic.GT || f.CondOp == minic.GE)) ||
		(step < 0 && (f.CondOp == minic.LT || f.CondOp == minic.LE)) {
		return nil, fmt.Errorf("%s: loop %q condition direction contradicts step %d", f.P, f.Var, step)
	}

	loop := &Loop{Var: f.Var, First: first, Limit: limit, Step: step, P: f.P}
	if f.Pragma != nil {
		par := &Parallel{Schedule: f.Pragma.Schedule, Private: f.Pragma.Private}
		if f.Pragma.Chunk != nil {
			c, err := lw.constExpr(f.Pragma.Chunk)
			if err != nil {
				return nil, fmt.Errorf("%s: schedule chunk: %w", f.Pragma.P, err)
			}
			if c <= 0 {
				return nil, fmt.Errorf("%s: schedule chunk must be positive, got %d", f.Pragma.P, c)
			}
			par.Chunk = c
		}
		if f.Pragma.NumThreads != nil {
			n, err := lw.constExpr(f.Pragma.NumThreads)
			if err != nil {
				return nil, fmt.Errorf("%s: num_threads: %w", f.Pragma.P, err)
			}
			if n <= 0 {
				return nil, fmt.Errorf("%s: num_threads must be positive, got %d", f.Pragma.P, n)
			}
			par.NumThreads = int(n)
		}
		loop.Parallel = par
	}
	return loop, nil
}

// nonAffineError marks subscripts that cannot be expressed affinely.
type nonAffineError struct{ reason string }

func (e *nonAffineError) Error() string { return "non-affine expression: " + e.reason }

// toAffine converts an expression over loop variables and #define constants
// into an affine expression. vars is the set of in-scope loop variables.
// When allowParams is true (loop bounds under LowerOptions.SymbolicBounds),
// unknown identifiers become symbolic parameters named "$<ident>".
func (lw *lowerer) toAffine(e minic.Expr, vars map[string]bool) (affine.Expr, error) {
	return lw.toAffineOpt(e, vars, false)
}

func (lw *lowerer) toAffineOpt(e minic.Expr, vars map[string]bool, allowParams bool) (affine.Expr, error) {
	switch v := e.(type) {
	case *minic.IntLit:
		return affine.Const(v.Value), nil
	case *minic.FloatLit:
		return affine.Expr{}, &nonAffineError{reason: "floating point value in subscript"}
	case *minic.RefExpr:
		if !v.IsScalar() {
			return affine.Expr{}, &nonAffineError{reason: fmt.Sprintf("indirect reference %s in subscript", v)}
		}
		if c, ok := lw.defines[v.Name]; ok {
			return affine.Const(c), nil
		}
		if vars[v.Name] {
			return affine.Var(v.Name), nil
		}
		if allowParams {
			return affine.Var("$" + v.Name), nil
		}
		return affine.Expr{}, &nonAffineError{reason: fmt.Sprintf("unknown name %q (not a loop variable or #define)", v.Name)}
	case *minic.UnaryExpr:
		x, err := lw.toAffineOpt(v.X, vars, allowParams)
		if err != nil {
			return affine.Expr{}, err
		}
		return x.Neg(), nil
	case *minic.BinaryExpr:
		x, err := lw.toAffineOpt(v.X, vars, allowParams)
		if err != nil {
			return affine.Expr{}, err
		}
		y, err := lw.toAffineOpt(v.Y, vars, allowParams)
		if err != nil {
			return affine.Expr{}, err
		}
		switch v.Op {
		case minic.PLUS:
			return x.Add(y), nil
		case minic.MINUS:
			return x.Sub(y), nil
		case minic.STAR:
			p, ok := x.Mul(y)
			if !ok {
				return affine.Expr{}, &nonAffineError{reason: "product of two loop-variant expressions"}
			}
			return p, nil
		case minic.SLASH:
			xc, ok1 := x.ConstValue()
			yc, ok2 := y.ConstValue()
			if !ok1 || !ok2 {
				return affine.Expr{}, &nonAffineError{reason: "division by or of a loop-variant expression"}
			}
			if yc == 0 {
				return affine.Expr{}, fmt.Errorf("%s: division by zero", v.P)
			}
			return affine.Const(xc / yc), nil
		case minic.PERCENT:
			xc, ok1 := x.ConstValue()
			yc, ok2 := y.ConstValue()
			if !ok1 || !ok2 {
				return affine.Expr{}, &nonAffineError{reason: "modulo of a loop-variant expression"}
			}
			if yc == 0 {
				return affine.Expr{}, fmt.Errorf("%s: modulo by zero", v.P)
			}
			return affine.Const(xc % yc), nil
		}
	}
	return affine.Expr{}, &nonAffineError{reason: "unsupported expression form"}
}

func (lw *lowerer) constExpr(e minic.Expr) (int64, error) {
	a, err := lw.toAffine(e, nil)
	if err != nil {
		return 0, err
	}
	c, ok := a.ConstValue()
	if !ok {
		return 0, fmt.Errorf("expression %s is not constant", e.String())
	}
	return c, nil
}

// lowerBody collects memory references and operation counts from the
// innermost loop body (paper step 1: "obtain array references made in the
// innermost loop").
func (lw *lowerer) lowerBody(nest *Nest, vars map[string]bool) error {
	for _, s := range nest.Body {
		as, ok := s.(*minic.AssignStmt)
		if !ok {
			return fmt.Errorf("%s: unsupported statement in loop body", s.Pos())
		}
		stmtFP := 0

		// RHS reads first (source order), then the LHS read for compound
		// assignments, then the LHS write — the order a compiled load/store
		// sequence would issue them.
		if err := lw.collectReads(nest, as.RHS, vars, &stmtFP); err != nil {
			return err
		}
		lhsRef, isMem, err := lw.memRef(nest, as.LHS, vars)
		if err != nil {
			return err
		}
		fp := lw.refIsFloat(as.LHS, vars)
		if as.Op != minic.ASSIGN {
			if isMem {
				r := lhsRef
				r.Write = false
				nest.Refs = append(nest.Refs, r)
				nest.Ops.Loads++
			}
			// The compound op itself.
			switch as.Op {
			case minic.PLUSASSIGN, minic.MINUSASSIGN:
				if fp {
					nest.Ops.FPAdds++
					stmtFP++
				} else {
					nest.Ops.IntOps++
				}
			case minic.STARASSIGN:
				if fp {
					nest.Ops.FPMuls++
					stmtFP++
				} else {
					nest.Ops.IntOps++
				}
			case minic.SLASHASSIGN:
				if fp {
					nest.Ops.FPDivs++
					stmtFP++
				} else {
					nest.Ops.IntOps++
				}
			}
		}
		if isMem {
			lhsRef.Write = true
			nest.Refs = append(nest.Refs, lhsRef)
			nest.Ops.Stores++
		}
		nest.Ops.Assigns++
		if stmtFP > nest.Ops.MaxChain {
			nest.Ops.MaxChain = stmtFP
		}
	}
	return nil
}

// collectReads walks an expression, emitting read Refs for memory
// references and tallying arithmetic ops.
func (lw *lowerer) collectReads(nest *Nest, e minic.Expr, vars map[string]bool, stmtFP *int) error {
	switch v := e.(type) {
	case *minic.IntLit, *minic.FloatLit:
		return nil
	case *minic.RefExpr:
		r, isMem, err := lw.memRef(nest, v, vars)
		if err != nil {
			return err
		}
		if isMem {
			nest.Refs = append(nest.Refs, r)
			nest.Ops.Loads++
		}
		return nil
	case *minic.UnaryExpr:
		return lw.collectReads(nest, v.X, vars, stmtFP)
	case *minic.BinaryExpr:
		if err := lw.collectReads(nest, v.X, vars, stmtFP); err != nil {
			return err
		}
		if err := lw.collectReads(nest, v.Y, vars, stmtFP); err != nil {
			return err
		}
		fp := lw.exprIsFloat(v, vars)
		switch v.Op {
		case minic.PLUS, minic.MINUS:
			if fp {
				nest.Ops.FPAdds++
				*stmtFP++
			} else {
				nest.Ops.IntOps++
			}
		case minic.STAR:
			if fp {
				nest.Ops.FPMuls++
				*stmtFP++
			} else {
				nest.Ops.IntOps++
			}
		case minic.SLASH, minic.PERCENT:
			if fp {
				nest.Ops.FPDivs++
				*stmtFP++
			} else {
				nest.Ops.IntOps++
			}
		}
		return nil
	}
	return fmt.Errorf("%s: unsupported expression", e.Pos())
}

// memRef resolves a RefExpr to a memory Ref. The second result is false for
// non-memory references (loop variables and #define constants).
func (lw *lowerer) memRef(nest *Nest, e *minic.RefExpr, vars map[string]bool) (Ref, bool, error) {
	if e.IsScalar() {
		if vars[e.Name] {
			return Ref{}, false, nil // private induction variable
		}
		if _, isDef := lw.defines[e.Name]; isDef {
			return Ref{}, false, nil // compile-time constant
		}
		sym, ok := lw.unit.Syms[e.Name]
		if !ok {
			return Ref{}, false, fmt.Errorf("%s: undeclared identifier %q", e.P, e.Name)
		}
		// A shared global scalar: a memory reference at constant offset 0.
		return Ref{Sym: sym, Offset: affine.Const(0), Size: sym.Type.Size(), Src: e.String(), P: e.P, EndP: e.End()}, true, nil
	}

	sym, ok := lw.unit.Syms[e.Name]
	if !ok {
		return Ref{}, false, fmt.Errorf("%s: undeclared identifier %q", e.P, e.Name)
	}
	offset := affine.Const(0)
	t := sym.Type
	for _, post := range e.Post {
		if post.Index != nil {
			arr, ok := t.(*Array)
			if !ok {
				return Ref{}, false, fmt.Errorf("%s: indexing non-array type %s in %s", e.P, t.String(), e)
			}
			idx, err := lw.toAffine(post.Index, vars)
			if err != nil {
				var na *nonAffineError
				if asNonAffine(err, &na) && lw.opts.AllowNonAffine {
					lw.unit.Warnings = append(lw.unit.Warnings,
						fmt.Sprintf("%s: reference %s excluded: %v", e.P, e, err))
					return Ref{Sym: sym, Src: e.String(), P: e.P, EndP: e.End(), NonAffine: true, Size: ElemType(t).Size()}, true, nil
				}
				return Ref{}, false, fmt.Errorf("%s: subscript of %s: %w", e.P, e, err)
			}
			offset = offset.Add(idx.MulConst(arr.Elem.Size()))
			t = arr.Elem
		} else {
			st, ok := t.(*Struct)
			if !ok {
				return Ref{}, false, fmt.Errorf("%s: member access on non-struct type %s in %s", e.P, t.String(), e)
			}
			f, ok := st.FieldByName(post.Field)
			if !ok {
				return Ref{}, false, fmt.Errorf("%s: struct %s has no field %q", e.P, st.Name, post.Field)
			}
			offset = offset.Add(affine.Const(f.Offset))
			t = f.Type
		}
	}
	if _, isBasic := t.(*Basic); !isBasic {
		return Ref{}, false, fmt.Errorf("%s: reference %s does not resolve to a scalar element (type %s)", e.P, e, t.String())
	}
	return Ref{Sym: sym, Offset: offset, Size: t.Size(), Src: e.String(), P: e.P, EndP: e.End()}, true, nil
}

func asNonAffine(err error, target **nonAffineError) bool {
	for err != nil {
		if na, ok := err.(*nonAffineError); ok {
			*target = na
			return true
		}
		type unwrapper interface{ Unwrap() error }
		u, ok := err.(unwrapper)
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// refIsFloat reports whether a reference's element type is floating point.
func (lw *lowerer) refIsFloat(e *minic.RefExpr, vars map[string]bool) bool {
	if e.IsScalar() {
		if vars[e.Name] {
			return false
		}
		if _, isDef := lw.defines[e.Name]; isDef {
			return false
		}
	}
	sym, ok := lw.unit.Syms[e.Name]
	if !ok {
		return false
	}
	t := sym.Type
	for _, post := range e.Post {
		switch v := t.(type) {
		case *Array:
			if post.Index != nil {
				t = v.Elem
			}
		case *Struct:
			if post.Field != "" {
				if f, ok := v.FieldByName(post.Field); ok {
					t = f.Type
				}
			}
		}
	}
	return IsFloatType(t)
}

// exprIsFloat reports whether an expression has floating type (any float
// operand makes the whole expression float, per C promotion).
func (lw *lowerer) exprIsFloat(e minic.Expr, vars map[string]bool) bool {
	switch v := e.(type) {
	case *minic.FloatLit:
		return true
	case *minic.IntLit:
		return false
	case *minic.RefExpr:
		return lw.refIsFloat(v, vars)
	case *minic.UnaryExpr:
		return lw.exprIsFloat(v.X, vars)
	case *minic.BinaryExpr:
		return lw.exprIsFloat(v.X, vars) || lw.exprIsFloat(v.Y, vars)
	}
	return false
}
