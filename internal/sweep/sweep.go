// Package sweep provides the bounded worker pool used by every experiment
// driver and command to fan out independent analysis points (kernel ×
// chunk × line size × thread count × counting mode). Each point is an
// isolated Analyze call, so the sweep parallelizes embarrassingly; the
// value of this package is the contract around that parallelism:
//
//   - results come back in input index order regardless of worker count,
//     so -j 1 and -j 8 produce byte-identical driver output;
//   - the error reported is the one from the lowest failing index,
//     independent of scheduling (every index below it is still evaluated;
//     indices above a known failure are skipped);
//   - a cancelled context stops the sweep promptly: no new indices are
//     claimed once the context is done, and fn receives the context so
//     long-running work can observe the cancellation itself.
package sweep

import (
	"context"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/faultinject"
	"repro/internal/guard"
)

// Jobs resolves a -j style worker-count setting: values <= 0 select
// runtime.GOMAXPROCS(0), anything else is used as given.
func Jobs(j int) int {
	if j <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return j
}

// Run evaluates fn for every index in [0, n) on at most jobs concurrent
// workers (jobs <= 0 means GOMAXPROCS) and returns the n results in index
// order. If any call fails, Run returns the error from the lowest failing
// index — a deterministic choice: indices below a failure always run to
// completion, and work above it is skipped rather than cancelled, so no
// scheduling race can surface a different error. If ctx is cancelled, Run
// stops claiming new indices and returns ctx.Err().
//
// Each fn call runs under a guard recover wrapper: a panicking point
// surfaces as a *guard.EvalPanicError at its index, flowing through the
// same lowest-failing-index contract instead of killing the worker (and,
// on the parallel path, the whole process).
func Run[T any](ctx context.Context, n, jobs int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, ctx.Err()
	}
	jobs = Jobs(jobs)
	if jobs > n {
		jobs = n
	}
	results := make([]T, n)

	call := func(ctx context.Context, i int) (T, error) {
		return guard.Do1(func() (T, error) {
			if err := faultinject.Fire("sweep.worker"); err != nil {
				var zero T
				return zero, err
			}
			return fn(ctx, i)
		})
	}

	if jobs == 1 {
		// Serial fast path: no goroutines, no atomics, trivially ordered.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			v, err := call(ctx, i)
			if err != nil {
				return nil, err
			}
			results[i] = v
		}
		return results, nil
	}

	// Workers write into line-padded slots instead of results directly:
	// adjacent small results would otherwise share cache lines and every
	// completion would ping-pong the line between workers (fsvet GV002
	// geometry). The copy-out after the barrier is serial and cold.
	slots := make([]slot[T], n)

	var (
		next    atomic.Int64 // next index to claim
		failIdx atomic.Int64 // lowest index that failed so far
		mu      sync.Mutex
		runErr  error
		wg      sync.WaitGroup
	)
	failIdx.Store(math.MaxInt64)
	wg.Add(jobs)
	for w := 0; w < jobs; w++ {
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n || int64(i) > failIdx.Load() {
					return
				}
				v, err := call(ctx, i)
				if err != nil {
					mu.Lock()
					if int64(i) < failIdx.Load() {
						failIdx.Store(int64(i))
						runErr = err
					}
					mu.Unlock()
					continue
				}
				slots[i].v = v
			}
		}()
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if failIdx.Load() < math.MaxInt64 {
		return nil, runErr
	}
	for i := range slots {
		results[i] = slots[i].v
	}
	return results, nil
}

// slot isolates each parallel worker's result on its own cache-line
// region: consecutive v fields are one full 128-byte span apart, so for
// any line size up to 128B no line can hold bytes of two different
// slots' values — concurrent completions never invalidate each other.
type slot[T any] struct {
	v T
	_ [128]byte
}

// ForEach is Run for index-only work that writes its own outputs: it
// evaluates fn(ctx, i) for i in [0, n) with the same ordering, error, and
// cancellation guarantees, discarding results.
func ForEach(ctx context.Context, n, jobs int, fn func(ctx context.Context, i int) error) error {
	_, err := Run(ctx, n, jobs, func(ctx context.Context, i int) (struct{}, error) {
		return struct{}{}, fn(ctx, i)
	})
	return err
}
