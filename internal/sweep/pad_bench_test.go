package sweep

import (
	"context"
	"runtime"
	"sync"
	"testing"
)

// Benchmarks for the padded result slots: workers hammering adjacent
// bare int64 slots (the pre-padding layout, 8B stride → 8 slots per
// 64B line) against the slot[T] layout Run now uses (≥136B stride, no
// two values on one line). On a multi-core host the unpadded variant
// pays coherence traffic per write; on a single-core host the pair
// measures only the padding's overhead — both numbers are honest, and
// the modeled multi-core gap is what fsvet's GV002 score predicts.

// hammerSlots runs one goroutine per worker, each writing its own slot
// b.N times. Distinct goroutines write distinct memory, so the
// benchmark is race-detector clean by construction.
func hammerSlots(b *testing.B, workers int, ptr func(w int) *int64) {
	b.Helper()
	var wg sync.WaitGroup
	wg.Add(workers)
	b.ResetTimer()
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			p := ptr(w)
			for i := 0; i < b.N; i++ {
				*p += int64(i)
			}
		}(w)
	}
	wg.Wait()
}

func benchWorkers() int {
	w := runtime.GOMAXPROCS(0)
	if w < 4 {
		w = 4 // still interleave on small hosts; same worker count both ways
	}
	return w
}

func BenchmarkResultSlots(b *testing.B) {
	workers := benchWorkers()
	b.Run("unpadded", func(b *testing.B) {
		slots := make([]int64, workers)
		hammerSlots(b, workers, func(w int) *int64 { return &slots[w] })
	})
	b.Run("padded", func(b *testing.B) {
		slots := make([]slot[int64], workers)
		hammerSlots(b, workers, func(w int) *int64 { return &slots[w].v })
	})
}

// BenchmarkRunParallel measures the full Run path (claim counter,
// guard wrapper, padded slot write, copy-out) at the API level.
func BenchmarkRunParallel(b *testing.B) {
	ctx := context.Background()
	jobs := benchWorkers()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(ctx, 256, jobs, func(ctx context.Context, i int) (int64, error) {
			return int64(i * i), nil
		}); err != nil {
			b.Fatal(err)
		}
	}
}
