package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/guard"
)

func TestJobs(t *testing.T) {
	if got := Jobs(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Jobs(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Jobs(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Jobs(-3) = %d", got)
	}
	if got := Jobs(5); got != 5 {
		t.Fatalf("Jobs(5) = %d", got)
	}
}

// TestRunOrdering checks that results land in index order for every worker
// count, including worker counts far above n.
func TestRunOrdering(t *testing.T) {
	const n = 100
	for _, jobs := range []int{1, 2, 3, 8, 64, 200} {
		got, err := Run(context.Background(), n, jobs, func(_ context.Context, i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		if len(got) != n {
			t.Fatalf("jobs=%d: len = %d", jobs, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("jobs=%d: got[%d] = %d, want %d", jobs, i, v, i*i)
			}
		}
	}
}

// TestRunDeterministicAcrossJobs runs the same fallible workload under
// -j 1 and -j 8 and requires identical outcomes — the property the
// experiment drivers rely on.
func TestRunDeterministicAcrossJobs(t *testing.T) {
	workload := func(jobs int) ([]int, error) {
		return Run(context.Background(), 64, jobs, func(_ context.Context, i int) (int, error) {
			return 3*i + 1, nil
		})
	}
	serial, serialErr := workload(1)
	parallel, parallelErr := workload(8)
	if (serialErr == nil) != (parallelErr == nil) {
		t.Fatalf("error mismatch: %v vs %v", serialErr, parallelErr)
	}
	if fmt.Sprint(serial) != fmt.Sprint(parallel) {
		t.Fatalf("results differ:\n -j 1: %v\n -j 8: %v", serial, parallel)
	}
}

// TestRunLowestError checks the error from the lowest failing index wins
// regardless of worker count or completion order.
func TestRunLowestError(t *testing.T) {
	errAt := func(i int) error { return fmt.Errorf("point %d failed", i) }
	for _, jobs := range []int{1, 2, 8} {
		_, err := Run(context.Background(), 50, jobs, func(_ context.Context, i int) (int, error) {
			switch i {
			case 7:
				// Make the higher failure finish first.
				time.Sleep(5 * time.Millisecond)
				return 0, errAt(7)
			case 23, 40:
				return 0, errAt(i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "point 7 failed" {
			t.Fatalf("jobs=%d: err = %v, want point 7 failed", jobs, err)
		}
	}
}

// TestRunSkipsAfterFailure checks indices above a known failure are not
// evaluated once the failure is recorded (bounded wasted work).
func TestRunSkipsAfterFailure(t *testing.T) {
	var evaluated atomic.Int64
	boom := errors.New("boom")
	_, err := Run(context.Background(), 10000, 4, func(_ context.Context, i int) (int, error) {
		evaluated.Add(1)
		if i == 0 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if got := evaluated.Load(); got > 100 {
		t.Fatalf("evaluated %d points after an index-0 failure", got)
	}
}

func TestRunContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	_, err := Run(ctx, 10000, 4, func(ctx context.Context, i int) (int, error) {
		if started.Add(1) == 8 {
			cancel()
		}
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := started.Load(); got > 1000 {
		t.Fatalf("claimed %d points after cancellation", got)
	}
	// Already-cancelled context does no work at all.
	started.Store(0)
	if _, err := Run(ctx, 10, 2, func(context.Context, int) (int, error) {
		started.Add(1)
		return 0, nil
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled err = %v", err)
	}
}

func TestRunEmpty(t *testing.T) {
	got, err := Run(context.Background(), 0, 4, func(_ context.Context, i int) (int, error) {
		t.Fatal("fn called for n=0")
		return 0, nil
	})
	if err != nil || got != nil {
		t.Fatalf("n=0: %v, %v", got, err)
	}
}

func TestForEach(t *testing.T) {
	out := make([]int64, 32)
	err := ForEach(context.Background(), len(out), 4, func(_ context.Context, i int) error {
		atomic.StoreInt64(&out[i], int64(i)+1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != int64(i)+1 {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

// BenchmarkSweepThroughput measures pool overhead and scaling on a
// CPU-bound point function resembling a small analysis run.
func BenchmarkSweepThroughput(b *testing.B) {
	point := func(_ context.Context, i int) (uint64, error) {
		h := uint64(i) + 0x9e3779b97f4a7c15
		for k := 0; k < 20000; k++ {
			h ^= h >> 33
			h *= 0xff51afd7ed558ccd
		}
		return h, nil
	}
	for _, jobs := range []int{1, Jobs(0)} {
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			b.ReportAllocs()
			for n := 0; n < b.N; n++ {
				if _, err := Run(context.Background(), 256, jobs, point); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestRunIsolatesPanics checks that a panicking point surfaces as a
// *guard.EvalPanicError at the lowest panicking index on both the serial
// and parallel paths, with indices below it unaffected.
func TestRunIsolatesPanics(t *testing.T) {
	for _, jobs := range []int{1, 8} {
		t.Run(fmt.Sprintf("jobs=%d", jobs), func(t *testing.T) {
			_, err := Run(context.Background(), 64, jobs, func(_ context.Context, i int) (int, error) {
				if i >= 40 {
					panic(fmt.Sprintf("point %d exploded", i))
				}
				return i, nil
			})
			var pe *guard.EvalPanicError
			if !errors.As(err, &pe) {
				t.Fatalf("Run = %v (%T), want *guard.EvalPanicError", err, err)
			}
			if pe.Value != "point 40 exploded" {
				t.Fatalf("panic value = %v, want the lowest panicking index (40)", pe.Value)
			}
		})
	}
}

// TestRunWorkerFaultPoint checks the sweep.worker injection seam: an
// armed error fault flows through the normal error contract.
func TestRunWorkerFaultPoint(t *testing.T) {
	faultinject.Enable()
	defer faultinject.Reset()
	faultinject.Arm("sweep.worker", faultinject.Fault{Kind: faultinject.KindError, MaxFires: 1})
	_, err := Run(context.Background(), 8, 1, func(_ context.Context, i int) (int, error) {
		return i, nil
	})
	if err == nil || faultinject.Fired("sweep.worker") != 1 {
		t.Fatalf("injected worker fault not surfaced: err=%v fired=%d", err, faultinject.Fired("sweep.worker"))
	}
}
