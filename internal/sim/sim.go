// Package sim is a cache-coherent multicore simulator used as the
// "measured execution" substitute for the paper's 48-core testbed.
//
// Each thread runs on its own core with private L1 and L2 caches kept
// coherent by a write-invalidate MESI protocol over a snooping directory;
// sockets share an L3. The simulator executes the loop nest's memory
// accesses in lockstep (one innermost iteration per thread per global
// step, the interleaving a statically scheduled OpenMP loop produces) and
// charges per-access latencies from the machine description, plus compute
// cycles per iteration from the processor model and OpenMP runtime
// overheads from the parallel model.
//
// The quantity the paper measures — the relative slowdown of a chunk size
// that induces false sharing versus one that avoids it — emerges here
// mechanistically from cache-to-cache transfer and invalidation traffic
// rather than being assumed.
package sim

import (
	"fmt"
	"math/bits"

	"repro/internal/cache"
	"repro/internal/costmodel"
	"repro/internal/loopir"
	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Options configures a simulation run.
type Options struct {
	// Machine defaults to machine.Paper48().
	Machine *machine.Desc
	// NumThreads is used when the pragma does not fix a team size.
	NumThreads int
	// Chunk is used when the pragma does not fix a chunk size.
	Chunk int64
	// ComputePerIter overrides the processor-model estimate of compute
	// cycles per innermost iteration (0 = derive from the nest).
	ComputePerIter float64
	// ModelBusContention serializes off-core transactions issued in the
	// same lockstep step on a shared bus, each queuing behind the ones
	// before it — the paper's future-work "bus interference" extension.
	ModelBusContention bool
}

// Stats is the outcome of a simulation.
type Stats struct {
	WallCycles   float64
	Seconds      float64
	ThreadCycles []float64

	Iterations int64
	Accesses   int64
	Instances  int64 // parallel-region entries

	L1Hits          int64
	L2Hits          int64
	L3Hits          int64
	MemFills        int64
	CoherenceMisses int64 // fills served by a remote Modified copy
	Invalidations   int64 // remote copies invalidated by writes
	Upgrades        int64 // S->M upgrades on private hits

	// Bus-contention model (Options.ModelBusContention).
	BusTransactions  int64
	ContentionCycles float64

	ComputePerIter float64
	Plan           sched.Plan
}

// PrivateMissRate returns the fraction of accesses missing both private
// levels.
func (s *Stats) PrivateMissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	miss := s.Accesses - s.L1Hits - s.L2Hits
	return float64(miss) / float64(s.Accesses)
}

type dirEntry struct {
	holders uint64 // cores whose private hierarchy holds the line
	owner   int8   // core holding the line Modified, or -1
}

type core struct {
	l1 *cache.SetAssoc
	l2 *cache.SetAssoc
}

type simulator struct {
	m     *machine.Desc
	cores []core
	l3    []*cache.SetAssoc // per socket
	dir   map[int64]dirEntry
	stats *Stats
	// Bus-contention model state: transactions issued in the current
	// lockstep step, total and per core (unused when the model is
	// disabled).
	busModel    bool
	busTxStep   int
	busTxByCore []int
}

// Run simulates the nest under the given options.
func Run(nest *loopir.Nest, opts Options) (*Stats, error) {
	if opts.Machine == nil {
		opts.Machine = machine.Paper48()
	}
	m := opts.Machine
	if err := m.Validate(); err != nil {
		return nil, err
	}
	plan, gen, err := resolvePlan(nest, m, opts)
	if err != nil {
		return nil, err
	}
	if plan.NumThreads > 64 {
		return nil, fmt.Errorf("sim: at most 64 threads supported, got %d", plan.NumThreads)
	}
	if plan.NumThreads > m.Cores {
		return nil, fmt.Errorf("sim: %d threads exceed the machine's %d cores", plan.NumThreads, m.Cores)
	}

	s := &simulator{m: m, dir: make(map[int64]dirEntry), stats: &Stats{Plan: plan}, busModel: opts.ModelBusContention}
	for t := 0; t < plan.NumThreads; t++ {
		l1, err := cache.NewSetAssoc(m.L1)
		if err != nil {
			return nil, err
		}
		l2, err := cache.NewSetAssoc(m.L2)
		if err != nil {
			return nil, err
		}
		s.cores = append(s.cores, core{l1: l1, l2: l2})
	}
	sockets := (plan.NumThreads + m.CoresPerSocket - 1) / m.CoresPerSocket
	for i := 0; i < sockets; i++ {
		l3, err := cache.NewSetAssoc(m.L3)
		if err != nil {
			return nil, err
		}
		s.l3 = append(s.l3, l3)
	}

	compute := opts.ComputePerIter
	if compute <= 0 {
		_, _, compute = costmodel.ProcessorModel(nest.Ops, m)
	}
	loopOv := costmodel.LoopOverheadModel(nest, m)
	s.stats.ComputePerIter = compute

	cycles := make([]float64, plan.NumThreads)
	cursors := gen.Cursors()
	active := plan.NumThreads
	var accBuf []trace.Access

	// Parallel-instance boundaries (outer-loop iterations around an inner
	// parallel loop): detected via thread 0's prefix values.
	var prevPrefix int64
	havePrefix := false
	barrier := costmodel.ParallelModel(nest, m, plan, 1) // per-instance overhead

	s.busTxByCore = make([]int, plan.NumThreads)
	for active > 0 {
		s.busTxStep = 0
		for i := range s.busTxByCore {
			s.busTxByCore[i] = 0
		}
		for t := 0; t < plan.NumThreads; t++ {
			cur := cursors[t]
			if cur.Done() {
				continue
			}
			if !cur.Next() {
				active--
				continue
			}
			s.stats.Iterations++
			if t == 0 && nest.ParLevel > 0 {
				fp := prefixOf(cur, nest.ParLevel)
				if !havePrefix || fp != prevPrefix {
					// New parallel region: synchronize the team (join
					// barrier of the previous region) and charge startup.
					if havePrefix {
						syncTeam(cycles)
					}
					for i := range cycles {
						cycles[i] += barrier
					}
					s.stats.Instances++
					prevPrefix = fp
					havePrefix = true
				}
			}
			cycles[t] += compute + loopOv
			accBuf = gen.Accesses(cur.Vals(), accBuf)
			for i := range accBuf {
				a := &accBuf[i]
				first, last := cache.LinesTouched(a.Addr, a.Size, m.LineSize)
				for line := first; line <= last; line++ {
					s.stats.Accesses++
					cycles[t] += s.access(t, line, a.Write)
				}
			}
		}
	}
	if nest.ParLevel == 0 {
		// Single parallel region wrapping the whole nest.
		for i := range cycles {
			cycles[i] += barrier
		}
		s.stats.Instances = 1
	}
	syncTeam(cycles)

	s.stats.ThreadCycles = cycles
	s.stats.WallCycles = cycles[0]
	s.stats.Seconds = m.Seconds(s.stats.WallCycles)
	return s.stats, nil
}

func syncTeam(cycles []float64) {
	var max float64
	for _, c := range cycles {
		if c > max {
			max = c
		}
	}
	for i := range cycles {
		cycles[i] = max
	}
}

func prefixOf(c *trace.ThreadCursor, parLevel int) int64 {
	var h int64 = 1469598103934665603
	vals := c.Vals()
	for i := 0; i < parLevel; i++ {
		h = h*1099511628211 + vals[i]
	}
	return h
}

// busTransaction charges one off-core transaction by core t against the
// shared bus: with the contention model enabled, a transaction queues
// behind every transaction OTHER cores issued in the same lockstep step
// (a core's own back-to-back requests pipeline without interfering with
// themselves).
func (s *simulator) busTransaction(t int) float64 {
	if !s.busModel {
		return 0
	}
	s.stats.BusTransactions++
	wait := float64(s.busTxStep-s.busTxByCore[t]) * float64(s.m.BusTransferCycles)
	s.busTxStep++
	s.busTxByCore[t]++
	s.stats.ContentionCycles += wait
	return wait
}

// access performs one coherent memory access by core t and returns its
// latency in cycles.
func (s *simulator) access(t int, line int64, write bool) float64 {
	m := s.m
	c := s.cores[t]
	tBit := uint64(1) << uint(t)

	// Private L1 hit.
	if st := c.l1.Access(line); st != cache.Invalid {
		s.stats.L1Hits++
		cost := float64(m.L1Latency)
		if write && st != cache.Modified {
			cost += s.upgrade(t, line)
		} else if write {
			c.l1.SetState(line, cache.Modified)
			c.l2.SetState(line, cache.Modified)
		}
		return cost
	}
	// Private L2 hit: refill L1.
	if st := c.l2.Access(line); st != cache.Invalid {
		s.stats.L2Hits++
		cost := float64(m.L2Latency)
		newState := st
		if write && st != cache.Modified {
			cost += s.upgrade(t, line)
			newState = cache.Modified
		} else if write {
			c.l2.SetState(line, cache.Modified)
			newState = cache.Modified
		}
		if ev, ok := c.l1.Fill(line, newState); ok {
			// L1 victim still lives in L2 (inclusive hierarchy); sync its
			// dirty state down.
			if ev.State == cache.Modified {
				c.l2.SetState(ev.Line, cache.Modified)
			}
		}
		return cost
	}

	// Private miss: bus transaction.
	e, known := s.dir[line]
	if !known {
		e.owner = -1
	}
	cost := s.busTransaction(t)
	socket := t / m.CoresPerSocket
	l3 := s.l3[socket]

	served := false
	if e.owner >= 0 && int(e.owner) != t {
		// Another core holds the line Modified: cache-to-cache transfer.
		s.stats.CoherenceMisses++
		cost += float64(m.CoherenceLatency)
		ownerCore := s.cores[e.owner]
		if write {
			ownerCore.l1.Invalidate(line)
			ownerCore.l2.Invalidate(line)
			e.holders &^= uint64(1) << uint(e.owner)
			s.stats.Invalidations++
		} else {
			ownerCore.l1.SetState(line, cache.Shared)
			ownerCore.l2.SetState(line, cache.Shared)
		}
		e.owner = -1
		// The transferred line is also installed in the requester's L3.
		s.fillL3(l3, line)
		served = true
	}
	if !served {
		if l3.Access(line) != cache.Invalid {
			s.stats.L3Hits++
			cost += float64(m.L3Latency)
		} else {
			s.stats.MemFills++
			cost += float64(m.MemLatency)
			s.fillL3(l3, line)
		}
	}

	if write {
		// Invalidate every remaining remote copy.
		others := e.holders &^ tBit
		if others != 0 {
			cost += float64(m.InvalidateLatency)
		}
		for others != 0 {
			u := bits.TrailingZeros64(others)
			others &^= 1 << uint(u)
			s.cores[u].l1.Invalidate(line)
			s.cores[u].l2.Invalidate(line)
			e.holders &^= 1 << uint(u)
			s.stats.Invalidations++
		}
	}

	newState := cache.Shared
	if write {
		newState = cache.Modified
		e.owner = int8(t)
	} else if e.holders&^tBit == 0 {
		newState = cache.Exclusive
	}
	e.holders |= tBit
	s.dir[line] = e

	s.fillPrivate(t, line, newState)
	return cost
}

// upgrade handles a write hit on a non-Modified private copy: invalidate
// remote sharers and mark the line Modified.
func (s *simulator) upgrade(t int, line int64) float64 {
	m := s.m
	c := s.cores[t]
	e, known := s.dir[line]
	if !known {
		e.owner = -1
	}
	tBit := uint64(1) << uint(t)
	cost := float64(0)
	others := e.holders &^ tBit
	if others != 0 {
		cost += float64(m.InvalidateLatency)
		s.stats.Upgrades++
	}
	for others != 0 {
		u := bits.TrailingZeros64(others)
		others &^= 1 << uint(u)
		s.cores[u].l1.Invalidate(line)
		s.cores[u].l2.Invalidate(line)
		e.holders &^= 1 << uint(u)
		s.stats.Invalidations++
	}
	c.l1.SetState(line, cache.Modified)
	c.l2.SetState(line, cache.Modified)
	e.owner = int8(t)
	e.holders |= tBit
	s.dir[line] = e
	return cost
}

// fillPrivate installs a line into core t's L2 and L1, maintaining
// inclusion and the directory across evictions.
func (s *simulator) fillPrivate(t int, line int64, st cache.LineState) {
	c := s.cores[t]
	tBit := uint64(1) << uint(t)
	if ev, ok := c.l2.Fill(line, st); ok {
		// Inclusive hierarchy: an L2 eviction removes the L1 copy too.
		l1st := c.l1.Invalidate(ev.Line)
		evState := ev.State
		if l1st == cache.Modified {
			evState = cache.Modified
		}
		de, known := s.dir[ev.Line]
		if known {
			de.holders &^= tBit
			if int(de.owner) == t {
				de.owner = -1
			}
			if de.holders == 0 && de.owner < 0 {
				delete(s.dir, ev.Line)
			} else {
				s.dir[ev.Line] = de
			}
		}
		_ = evState // writeback bandwidth is not modeled
	}
	if ev, ok := c.l1.Fill(line, st); ok {
		if ev.State == cache.Modified {
			c.l2.SetState(ev.Line, cache.Modified)
		}
	}
}

func (s *simulator) fillL3(l3 *cache.SetAssoc, line int64) {
	if l3.Access(line) == cache.Invalid {
		l3.Fill(line, cache.Shared)
	}
}

func resolvePlan(nest *loopir.Nest, m *machine.Desc, opts Options) (sched.Plan, *trace.Generator, error) {
	par := nest.Parallelized()
	if par == nil {
		return sched.Plan{}, nil, fmt.Errorf("sim: nest has no parallel loop")
	}
	// Explicit options win over the source pragma (see fsmodel.prepare).
	threads := opts.NumThreads
	if threads <= 0 && par.Parallel.NumThreads > 0 {
		threads = par.Parallel.NumThreads
	}
	if threads <= 0 {
		threads = m.Cores
	}
	chunk := opts.Chunk
	if chunk <= 0 && par.Parallel.Chunk > 0 {
		chunk = par.Parallel.Chunk
	}
	kind, err := sched.KindFromString(par.Parallel.Schedule)
	if err != nil {
		return sched.Plan{}, nil, err
	}
	trip, _ := par.ConstTripCount()
	plan, err := sched.Resolve(kind, threads, chunk, trip)
	if err != nil {
		return sched.Plan{}, nil, err
	}
	gen, err := trace.NewGenerator(nest, plan)
	if err != nil {
		return sched.Plan{}, nil, err
	}
	return plan, gen, nil
}
