package sim

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/kernels"
	"repro/internal/loopir"
	"repro/internal/machine"
	"repro/internal/minic"
)

func loadNest(t *testing.T, src string) *loopir.Nest {
	t.Helper()
	prog, err := minic.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	unit, err := loopir.Lower(prog, loopir.LowerOptions{})
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return unit.Nests[0]
}

// newBareSim builds a simulator for white-box protocol tests.
func newBareSim(t *testing.T, cores int) *simulator {
	t.Helper()
	m := machine.Paper48()
	s := &simulator{m: m, dir: make(map[int64]dirEntry), stats: &Stats{}}
	for i := 0; i < cores; i++ {
		l1, err := cache.NewSetAssoc(m.L1)
		if err != nil {
			t.Fatal(err)
		}
		l2, err := cache.NewSetAssoc(m.L2)
		if err != nil {
			t.Fatal(err)
		}
		s.cores = append(s.cores, core{l1: l1, l2: l2})
	}
	l3, err := cache.NewSetAssoc(m.L3)
	if err != nil {
		t.Fatal(err)
	}
	s.l3 = []*cache.SetAssoc{l3}
	return s
}

func TestMESIWriteInvalidatesSharers(t *testing.T) {
	s := newBareSim(t, 3)
	const line = 100
	s.access(0, line, false) // E in core 0
	if st := s.cores[0].l2.State(line); st != cache.Exclusive {
		t.Fatalf("core 0 state = %v, want E", st)
	}
	s.access(1, line, false) // both S
	if st := s.cores[1].l2.State(line); st != cache.Shared {
		t.Fatalf("core 1 state = %v, want S", st)
	}
	s.access(2, line, true) // M in core 2, others invalid
	if st := s.cores[2].l2.State(line); st != cache.Modified {
		t.Fatalf("core 2 state = %v, want M", st)
	}
	for c := 0; c < 2; c++ {
		if st := s.cores[c].l2.State(line); st != cache.Invalid {
			t.Fatalf("core %d state = %v, want I after remote write", c, st)
		}
		if st := s.cores[c].l1.State(line); st != cache.Invalid {
			t.Fatalf("core %d L1 state = %v, want I", c, st)
		}
	}
	if s.stats.Invalidations != 2 {
		t.Fatalf("invalidations = %d, want 2", s.stats.Invalidations)
	}
}

func TestMESICacheToCacheTransfer(t *testing.T) {
	s := newBareSim(t, 2)
	const line = 7
	s.access(0, line, true) // M in core 0
	cost := s.access(1, line, false)
	if s.stats.CoherenceMisses != 1 {
		t.Fatalf("coherence misses = %d", s.stats.CoherenceMisses)
	}
	if cost < float64(s.m.CoherenceLatency) {
		t.Fatalf("cost = %f below coherence latency", cost)
	}
	// Owner downgraded to S on a remote read.
	if st := s.cores[0].l2.State(line); st != cache.Shared {
		t.Fatalf("old owner state = %v, want S", st)
	}
}

func TestMESIUpgradeOnWriteHit(t *testing.T) {
	s := newBareSim(t, 2)
	const line = 9
	s.access(0, line, false)
	s.access(1, line, false) // both Shared
	s.access(0, line, true)  // write hit in S → upgrade, invalidate core 1
	if s.stats.Upgrades != 1 {
		t.Fatalf("upgrades = %d", s.stats.Upgrades)
	}
	if st := s.cores[0].l2.State(line); st != cache.Modified {
		t.Fatalf("writer state = %v", st)
	}
	if st := s.cores[1].l2.State(line); st != cache.Invalid {
		t.Fatalf("sharer state = %v", st)
	}
}

// TestMESIInvariantSingleModified drives random accesses and checks the
// protocol invariant: a line Modified in one core is Invalid everywhere
// else.
func TestMESIInvariantSingleModified(t *testing.T) {
	s := newBareSim(t, 4)
	r := rand.New(rand.NewSource(11))
	lines := []int64{1, 2, 3, 64, 65, 1000}
	for step := 0; step < 2000; step++ {
		tid := r.Intn(4)
		line := lines[r.Intn(len(lines))]
		s.access(tid, line, r.Intn(2) == 1)

		for _, l := range lines {
			holders := 0
			modified := 0
			for c := range s.cores {
				st := s.cores[c].l2.State(l)
				if st != cache.Invalid {
					holders++
				}
				if st == cache.Modified {
					modified++
				}
				// L1 must be a subset of L2 (inclusion).
				if s.cores[c].l1.State(l) != cache.Invalid && st == cache.Invalid {
					t.Fatalf("inclusion violated for core %d line %d", c, l)
				}
			}
			if modified > 1 {
				t.Fatalf("line %d Modified in %d cores", l, modified)
			}
			if modified == 1 && holders > 1 {
				t.Fatalf("line %d Modified with %d holders", l, holders)
			}
		}
	}
}

func TestL1HitsOnRepeatedAccess(t *testing.T) {
	s := newBareSim(t, 1)
	s.access(0, 5, false)
	before := s.stats.L1Hits
	for i := 0; i < 10; i++ {
		if cost := s.access(0, 5, false); cost != float64(s.m.L1Latency) {
			t.Fatalf("repeat access cost = %f", cost)
		}
	}
	if s.stats.L1Hits != before+10 {
		t.Fatalf("L1 hits = %d", s.stats.L1Hits)
	}
}

func TestRunSimpleLoopStats(t *testing.T) {
	src := `
#define N 512
double a[N];
#pragma omp parallel for schedule(static,8) num_threads(4)
for (i = 0; i < N; i++) a[i] = 1.0;
`
	st, err := Run(loadNest(t, src), Options{Machine: machine.Paper48()})
	if err != nil {
		t.Fatal(err)
	}
	if st.Iterations != 512 || st.Accesses != 512 {
		t.Fatalf("iterations/accesses = %d/%d", st.Iterations, st.Accesses)
	}
	// 512 doubles = 64 lines, all cold: fills from memory.
	if st.MemFills != 64 {
		t.Fatalf("mem fills = %d, want 64", st.MemFills)
	}
	if st.CoherenceMisses != 0 {
		t.Fatalf("chunk=8 aligned loop has %d coherence misses", st.CoherenceMisses)
	}
	if st.WallCycles <= 0 || st.Seconds <= 0 {
		t.Fatal("degenerate time")
	}
	if st.Instances != 1 {
		t.Fatalf("instances = %d", st.Instances)
	}
}

func TestRunFSSlowerThanNoFS(t *testing.T) {
	kern, err := kernels.LinReg(64, 512, 4)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := Run(kern.Nest, Options{Machine: machine.Paper48(), NumThreads: 4, Chunk: 1})
	if err != nil {
		t.Fatal(err)
	}
	nfs, err := Run(kern.Nest, Options{Machine: machine.Paper48(), NumThreads: 4, Chunk: 8})
	if err != nil {
		t.Fatal(err)
	}
	if fs.Seconds <= nfs.Seconds {
		t.Fatalf("FS run (%f) not slower than aligned run (%f)", fs.Seconds, nfs.Seconds)
	}
	if fs.CoherenceMisses == 0 || nfs.CoherenceMisses != 0 {
		t.Fatalf("coherence misses = %d / %d", fs.CoherenceMisses, nfs.CoherenceMisses)
	}
}

func TestRunScalesWithThreads(t *testing.T) {
	// An FS-free loop must get faster with more threads.
	src := `
#define N 8192
double a[N];
double b[N];
#pragma omp parallel for schedule(static,64)
for (i = 0; i < N; i++) a[i] += b[i];
`
	nest := loadNest(t, src)
	t1, err := Run(nest, Options{Machine: machine.Paper48(), NumThreads: 1})
	if err != nil {
		t.Fatal(err)
	}
	t8, err := Run(nest, Options{Machine: machine.Paper48(), NumThreads: 8})
	if err != nil {
		t.Fatal(err)
	}
	if t8.Seconds >= t1.Seconds {
		t.Fatalf("8 threads (%f) not faster than 1 (%f)", t8.Seconds, t1.Seconds)
	}
}

func TestRunInnerParallelInstances(t *testing.T) {
	src := `
#define M 5
#define N 64
double a[M][N];
for (j = 0; j < M; j++)
  #pragma omp parallel for schedule(static,8) num_threads(2)
  for (i = 0; i < N; i++)
    a[j][i] = 1.0;
`
	st, err := Run(loadNest(t, src), Options{Machine: machine.Paper48()})
	if err != nil {
		t.Fatal(err)
	}
	if st.Instances != 5 {
		t.Fatalf("instances = %d, want 5", st.Instances)
	}
}

func TestRunMatchesModelCoherenceCount(t *testing.T) {
	// For simple write-write ping-pong patterns, the simulator's
	// coherence misses and the model's ϕ count coincide exactly — the
	// central validation of the reproduction.
	src := `
#define N 1024
double a[N];
#pragma omp parallel for schedule(static,1) num_threads(8)
for (i = 0; i < N; i++) a[i] = 1.0;
`
	nest := loadNest(t, src)
	st, err := Run(nest, Options{Machine: machine.Paper48()})
	if err != nil {
		t.Fatal(err)
	}
	if st.CoherenceMisses == 0 {
		t.Fatal("expected coherence misses")
	}
	// Cross-package agreement is asserted in the integration tests; here
	// we sanity-check the density: ~7/8 of stores ping-pong.
	density := float64(st.CoherenceMisses) / float64(st.Accesses)
	if density < 0.8 || density > 0.92 {
		t.Fatalf("coherence density = %f", density)
	}
}

func TestRunErrors(t *testing.T) {
	seq := loadNest(t, `
double a[8];
for (i = 0; i < 8; i++) a[i] = 1.0;
`)
	if _, err := Run(seq, Options{Machine: machine.Paper48()}); err == nil ||
		!strings.Contains(err.Error(), "no parallel loop") {
		t.Fatal("sequential nest must be rejected")
	}
	par := loadNest(t, `
double a[8];
#pragma omp parallel for
for (i = 0; i < 8; i++) a[i] = 1.0;
`)
	if _, err := Run(par, Options{Machine: machine.Paper48(), NumThreads: 49}); err == nil ||
		!strings.Contains(err.Error(), "exceed") {
		t.Fatal("threads beyond cores must be rejected")
	}
	small := machine.SmallTest()
	if _, err := Run(par, Options{Machine: small, NumThreads: 5}); err == nil {
		t.Fatal("threads beyond small machine cores must be rejected")
	}
}

func TestRunDeterminism(t *testing.T) {
	kern, err := kernels.DFT(64)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(kern.Nest, Options{Machine: machine.Paper48(), NumThreads: 4, Chunk: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(kern.Nest, Options{Machine: machine.Paper48(), NumThreads: 4, Chunk: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.WallCycles != b.WallCycles || a.CoherenceMisses != b.CoherenceMisses {
		t.Fatal("simulation is not deterministic")
	}
}

func TestPrivateMissRate(t *testing.T) {
	s := &Stats{Accesses: 100, L1Hits: 80, L2Hits: 10}
	if got := s.PrivateMissRate(); got != 0.1 {
		t.Fatalf("miss rate = %f", got)
	}
	if (&Stats{}).PrivateMissRate() != 0 {
		t.Fatal("zero accesses should give 0")
	}
}

func TestBusContentionModel(t *testing.T) {
	// A streaming loop on many threads: every line fill is a bus
	// transaction, so the contention model must lengthen the run, and
	// more threads must contend more per transaction.
	src := `
#define N 16384
double a[N];
double b[N];
#pragma omp parallel for schedule(static,64)
for (i = 0; i < N; i++) a[i] = b[i];
`
	nest := loadNest(t, src)
	m := machine.Paper48()

	off, err := Run(nest, Options{Machine: m, NumThreads: 16})
	if err != nil {
		t.Fatal(err)
	}
	on, err := Run(nest, Options{Machine: m, NumThreads: 16, ModelBusContention: true})
	if err != nil {
		t.Fatal(err)
	}
	if off.BusTransactions != 0 || off.ContentionCycles != 0 {
		t.Fatalf("contention stats with model off: %d/%f", off.BusTransactions, off.ContentionCycles)
	}
	if on.BusTransactions == 0 || on.ContentionCycles <= 0 {
		t.Fatalf("contention stats with model on: %d/%f", on.BusTransactions, on.ContentionCycles)
	}
	if on.WallCycles <= off.WallCycles {
		t.Fatalf("contention should slow the run: %f vs %f", on.WallCycles, off.WallCycles)
	}

	// One thread: no concurrent transactions, so contention adds nothing.
	solo, err := Run(nest, Options{Machine: m, NumThreads: 1, ModelBusContention: true})
	if err != nil {
		t.Fatal(err)
	}
	if solo.ContentionCycles != 0 {
		t.Fatalf("single-thread contention = %f", solo.ContentionCycles)
	}

	// Per-transaction contention grows with team size.
	on4, err := Run(nest, Options{Machine: m, NumThreads: 4, ModelBusContention: true})
	if err != nil {
		t.Fatal(err)
	}
	per4 := on4.ContentionCycles / float64(on4.BusTransactions)
	per16 := on.ContentionCycles / float64(on.BusTransactions)
	if per16 <= per4 {
		t.Fatalf("per-transaction contention should grow with threads: %f vs %f", per16, per4)
	}
}

func TestMultiSocketRun(t *testing.T) {
	// 24 threads on the paper machine span two sockets (12 cores each):
	// the run must use two L3s and still be deterministic and coherent.
	kern, err := kernels.DFT(96)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Run(kern.Nest, Options{Machine: machine.Paper48(), NumThreads: 24, Chunk: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.CoherenceMisses == 0 {
		t.Fatal("cross-socket run should still detect FS")
	}
	st2, err := Run(kern.Nest, Options{Machine: machine.Paper48(), NumThreads: 24, Chunk: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.WallCycles != st2.WallCycles {
		t.Fatal("multi-socket run not deterministic")
	}
}

// TestCapacityEvictionsMaintainCoherence runs a working set far beyond the
// SmallTest machine's 4 KB L2, forcing the inclusive-eviction path, and
// checks the protocol invariants still hold afterwards.
func TestCapacityEvictionsMaintainCoherence(t *testing.T) {
	m := machine.SmallTest()
	s := &simulator{m: m, dir: make(map[int64]dirEntry), stats: &Stats{}}
	for i := 0; i < 2; i++ {
		l1, err := cache.NewSetAssoc(m.L1)
		if err != nil {
			t.Fatal(err)
		}
		l2, err := cache.NewSetAssoc(m.L2)
		if err != nil {
			t.Fatal(err)
		}
		s.cores = append(s.cores, core{l1: l1, l2: l2})
	}
	l3, err := cache.NewSetAssoc(m.L3)
	if err != nil {
		t.Fatal(err)
	}
	s.l3 = []*cache.SetAssoc{l3}

	r := rand.New(rand.NewSource(99))
	const lines = 1024 // 16x the 64-line L2
	for step := 0; step < 20000; step++ {
		s.access(r.Intn(2), int64(r.Intn(lines)), r.Intn(2) == 1)
	}
	// Invariants: every resident private line is in the directory with the
	// holder bit set, inclusion holds, and at most one core holds any line
	// Modified.
	for c := range s.cores {
		for _, line := range s.cores[c].l2.ResidentLines() {
			e, ok := s.dir[line]
			if !ok || e.holders&(1<<uint(c)) == 0 {
				t.Fatalf("core %d line %d resident but not in directory", c, line)
			}
		}
		for _, line := range s.cores[c].l1.ResidentLines() {
			if s.cores[c].l2.State(line) == cache.Invalid {
				t.Fatalf("core %d line %d violates inclusion", c, line)
			}
		}
	}
	for line, e := range s.dir {
		if e.owner >= 0 {
			if s.cores[e.owner].l2.State(line) != cache.Modified {
				t.Fatalf("directory owner of line %d stale", line)
			}
			for c := range s.cores {
				if c != int(e.owner) && s.cores[c].l2.State(line) == cache.Modified {
					t.Fatalf("two Modified copies of line %d", line)
				}
			}
		}
	}
}
