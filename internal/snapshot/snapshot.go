// Package snapshot persists the service's content-addressed result
// cache across process restarts. BENCH_service.json puts cache hits
// 250–3300× faster than misses, which makes every restart a
// thundering-herd event: the first client to re-ask each question pays
// a full model evaluation. A snapshot written on a timer and on
// graceful drain, and reloaded at startup, turns a restart back into a
// warm-cache problem.
//
// The format is deliberately paranoid about partial writes and disk
// rot, because a cache snapshot is the one file whose corruption must
// never keep the service from starting:
//
//   - writes go to a temp file in the destination directory, are
//     fsynced, and land via rename — readers only ever see a complete
//     previous snapshot or a complete new one;
//   - every record carries its own CRC-32C, so corruption is detected
//     per record, not per file;
//   - the header declares a version and the record count, so a load
//     can distinguish "clean", "truncated: salvage the valid prefix"
//     and "written by a future version: start cold";
//   - Read never fails: whatever goes wrong, it returns the records it
//     could prove intact plus a LoadStats saying what it dropped and
//     why. Startup treats a snapshot strictly as an optimization.
//
// The faultinject points snapshot.write and snapshot.load let the
// robustness suite inject failures at both ends.
package snapshot

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"repro/internal/faultinject"
)

// Version is the current snapshot format version. Files declaring a
// larger version are ignored wholesale (a downgraded binary must not
// guess at a future layout); files declaring an older known version
// would be migrated here, but version 1 is the first.
const Version = 1

// magic identifies a snapshot file. Eight bytes so the header read is
// aligned and a truncated-to-zero file fails cleanly on the magic.
var magic = [8]byte{'F', 'S', 'S', 'N', 'A', 'P', '\x00', '\x01'}

// Record size sanity bounds: a corrupt length field must not convince
// the loader to allocate gigabytes. Keys are content hashes (well under
// 1 KiB); bodies are serialized JSON responses.
const (
	maxKeyLen  = 1 << 12 // 4 KiB
	maxBodyLen = 1 << 26 // 64 MiB
)

// castagnoli is the CRC-32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Entry is one cached result: the content-addressed key and the exact
// response bytes served for it.
type Entry struct {
	Key  string
	Body []byte
}

// LoadStats reports what a load restored and what it had to drop. The
// service mirrors these into fsserve_snapshot_* metrics so a salvaged
// or skipped snapshot is observable, not silent.
type LoadStats struct {
	// Version is the file's declared format version (0 when the header
	// itself was unreadable).
	Version uint32
	// Declared is the record count the header promised (0 when the
	// header was unreadable).
	Declared int64
	// Restored counts records recovered intact.
	Restored int64
	// Dropped counts records lost: declared but missing (truncation),
	// failing their checksum, or unreadable because the whole file was
	// version-skewed or malformed.
	Dropped int64
	// Reason is why the load stopped short ("" for a clean, complete
	// load): "missing", "truncated-header", "future-version",
	// "bad-magic", "bad-record", "truncated", "io-error", "injected".
	Reason string
}

// Clean reports whether the snapshot loaded completely.
func (s LoadStats) Clean() bool { return s.Reason == "" }

// Write serializes entries to w in snapshot format. It is the
// io.Writer core of WriteFile, exposed for tests that corrupt the
// encoding in memory.
func Write(w io.Writer, entries []Entry) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:4], Version)
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(len(entries)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var lens [8]byte
	for _, e := range entries {
		if len(e.Key) > maxKeyLen || len(e.Body) > maxBodyLen {
			return fmt.Errorf("snapshot: record exceeds format bounds (key %d, body %d)", len(e.Key), len(e.Body))
		}
		binary.LittleEndian.PutUint32(lens[0:4], uint32(len(e.Key)))
		binary.LittleEndian.PutUint32(lens[4:8], uint32(len(e.Body)))
		crc := crc32.New(castagnoli)
		crc.Write(lens[:])
		crc.Write([]byte(e.Key))
		crc.Write(e.Body)
		if _, err := bw.Write(lens[:]); err != nil {
			return err
		}
		if _, err := io.WriteString(bw, e.Key); err != nil {
			return err
		}
		if _, err := bw.Write(e.Body); err != nil {
			return err
		}
		var sum [4]byte
		binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
		if _, err := bw.Write(sum[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteFile atomically replaces path with a snapshot of entries: the
// bytes go to a temp file in path's directory, are fsynced, and land
// via rename, so a crash mid-write leaves the previous snapshot (or no
// file) in place — never a torn one.
func WriteFile(path string, entries []Entry) (err error) {
	if err := faultinject.Fire("snapshot.write"); err != nil {
		return err
	}
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if err = Write(f, entries); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Read decodes a snapshot from r, salvaging the longest valid prefix
// of records. It never returns an error: decoding trouble terminates
// the salvage and is reported in LoadStats.Reason, because a snapshot
// is an optimization and the caller must start either way.
func Read(r io.Reader) ([]Entry, LoadStats) {
	var st LoadStats
	br := bufio.NewReader(r)

	var head [20]byte // magic + version + count
	if _, err := io.ReadFull(br, head[:]); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			st.Reason = "truncated-header"
		} else {
			st.Reason = "io-error"
		}
		return nil, st
	}
	if [8]byte(head[:8]) != magic {
		st.Reason = "bad-magic"
		return nil, st
	}
	st.Version = binary.LittleEndian.Uint32(head[8:12])
	st.Declared = int64(binary.LittleEndian.Uint64(head[12:20]))
	if st.Version > Version {
		// A future layout: the declared records exist but this binary
		// cannot prove anything about them.
		st.Dropped = st.Declared
		st.Reason = "future-version"
		return nil, st
	}
	if st.Declared < 0 || st.Declared > 1<<32 {
		st.Reason = "bad-record"
		return nil, st
	}

	entries := make([]Entry, 0, min(st.Declared, 4096))
	var lens [8]byte
	for i := int64(0); i < st.Declared; i++ {
		if _, err := io.ReadFull(br, lens[:]); err != nil {
			st.Reason = "truncated"
			break
		}
		keyLen := binary.LittleEndian.Uint32(lens[0:4])
		bodyLen := binary.LittleEndian.Uint32(lens[4:8])
		if keyLen > maxKeyLen || bodyLen > maxBodyLen {
			st.Reason = "bad-record"
			break
		}
		buf := make([]byte, int(keyLen)+int(bodyLen)+4)
		if _, err := io.ReadFull(br, buf); err != nil {
			st.Reason = "truncated"
			break
		}
		crc := crc32.New(castagnoli)
		crc.Write(lens[:])
		crc.Write(buf[:keyLen+bodyLen])
		if crc.Sum32() != binary.LittleEndian.Uint32(buf[keyLen+bodyLen:]) {
			st.Reason = "bad-record"
			break
		}
		entries = append(entries, Entry{
			Key:  string(buf[:keyLen]),
			Body: buf[keyLen : keyLen+bodyLen : keyLen+bodyLen],
		})
		st.Restored++
	}
	st.Dropped = st.Declared - st.Restored
	return entries, st
}

// LoadFile reads the snapshot at path, salvaging what it can. A
// missing file is the normal cold-start case: no entries, Reason
// "missing". Open/read failures are likewise absorbed into the stats —
// startup must never fail on a cache snapshot.
func LoadFile(path string) ([]Entry, LoadStats) {
	if err := faultinject.Fire("snapshot.load"); err != nil {
		return nil, LoadStats{Reason: "injected"}
	}
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, LoadStats{Reason: "missing"}
		}
		return nil, LoadStats{Reason: "io-error"}
	}
	defer f.Close()
	return Read(f)
}
