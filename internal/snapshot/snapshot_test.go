package snapshot

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faultinject"
)

// corpus builds n distinct entries with bodies of varying size.
func corpus(n int) []Entry {
	entries := make([]Entry, n)
	for i := range entries {
		entries[i] = Entry{
			Key:  fmt.Sprintf("sha256-%04d", i),
			Body: bytes.Repeat([]byte{byte(i + 1)}, 16+i*7),
		}
	}
	return entries
}

// encode renders entries to raw snapshot bytes.
func encode(t *testing.T, entries []Entry) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, entries); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSnapshotCorpus is the crash-recovery corpus: every corruption
// class the format must survive, with exact salvage accounting. The
// invariant throughout: Read never errors, never restores a record it
// cannot prove intact, and counts every declared-but-lost record as
// dropped.
func TestSnapshotCorpus(t *testing.T) {
	full := corpus(5)
	clean := encode(t, full)

	// recordStart locates the byte offset where record i begins.
	recordStart := func(i int) int {
		off := 20 // magic + version + count
		for j := 0; j < i; j++ {
			off += 8 + len(full[j].Key) + len(full[j].Body) + 4
		}
		return off
	}

	cases := []struct {
		name         string
		mutate       func([]byte) []byte
		wantRestored int64
		wantDropped  int64
		wantReason   string
	}{
		{
			name:         "clean",
			mutate:       func(b []byte) []byte { return b },
			wantRestored: 5, wantDropped: 0, wantReason: "",
		},
		{
			name:         "empty file",
			mutate:       func([]byte) []byte { return nil },
			wantRestored: 0, wantDropped: 0, wantReason: "truncated-header",
		},
		{
			name:         "truncated mid-record",
			mutate:       func(b []byte) []byte { return b[:recordStart(3)+5] },
			wantRestored: 3, wantDropped: 2, wantReason: "truncated",
		},
		{
			name:         "truncated between records",
			mutate:       func(b []byte) []byte { return b[:recordStart(4)] },
			wantRestored: 4, wantDropped: 1, wantReason: "truncated",
		},
		{
			name: "flipped checksum byte",
			mutate: func(b []byte) []byte {
				// Last byte of record 2's payload: its CRC fails; later
				// records are unreachable (the salvage cannot trust
				// record framing past a corrupt record).
				b = bytes.Clone(b)
				b[recordStart(3)-5] ^= 0xff
				return b
			},
			wantRestored: 2, wantDropped: 3, wantReason: "bad-record",
		},
		{
			name: "future version",
			mutate: func(b []byte) []byte {
				b = bytes.Clone(b)
				binary.LittleEndian.PutUint32(b[8:12], Version+1)
				return b
			},
			wantRestored: 0, wantDropped: 5, wantReason: "future-version",
		},
		{
			name: "foreign file",
			mutate: func([]byte) []byte {
				return []byte("definitely not a snapshot, but long enough to read a header from")
			},
			wantRestored: 0, wantDropped: 0, wantReason: "bad-magic",
		},
		{
			name: "insane length field",
			mutate: func(b []byte) []byte {
				b = bytes.Clone(b)
				binary.LittleEndian.PutUint32(b[recordStart(1)+4:], 1<<30)
				return b
			},
			wantRestored: 1, wantDropped: 4, wantReason: "bad-record",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			entries, st := Read(bytes.NewReader(tc.mutate(bytes.Clone(clean))))
			if st.Restored != tc.wantRestored || st.Dropped != tc.wantDropped {
				t.Errorf("restored/dropped = %d/%d, want %d/%d (stats %+v)",
					st.Restored, st.Dropped, tc.wantRestored, tc.wantDropped, st)
			}
			if st.Reason != tc.wantReason {
				t.Errorf("reason = %q, want %q", st.Reason, tc.wantReason)
			}
			if st.Clean() != (tc.wantReason == "") {
				t.Errorf("Clean() = %v inconsistent with reason %q", st.Clean(), st.Reason)
			}
			if int64(len(entries)) != tc.wantRestored {
				t.Fatalf("len(entries) = %d, want %d", len(entries), tc.wantRestored)
			}
			// Whatever was restored must be byte-identical to the input.
			for i, e := range entries {
				if e.Key != full[i].Key || !bytes.Equal(e.Body, full[i].Body) {
					t.Errorf("entry %d corrupted on round trip", i)
				}
			}
		})
	}
}

// TestWriteFileAtomicReplace pins the atomic-rename contract: writing
// over an existing snapshot leaves no temp files behind and a reload
// sees exactly the new content.
func TestWriteFileAtomicReplace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cache.fssnap")
	if err := WriteFile(path, corpus(3)); err != nil {
		t.Fatal(err)
	}
	next := corpus(7)
	if err := WriteFile(path, next); err != nil {
		t.Fatal(err)
	}
	entries, st := LoadFile(path)
	if !st.Clean() || len(entries) != 7 {
		t.Fatalf("reload: %d entries, stats %+v", len(entries), st)
	}
	for i, e := range entries {
		if e.Key != next[i].Key || !bytes.Equal(e.Body, next[i].Body) {
			t.Errorf("entry %d differs after replace", i)
		}
	}
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 {
		t.Errorf("directory holds %d files after two writes, want just the snapshot", len(files))
	}
}

// TestLoadFileMissing pins the cold-start case: no file is not an
// error, just an empty warm cache.
func TestLoadFileMissing(t *testing.T) {
	entries, st := LoadFile(filepath.Join(t.TempDir(), "nope.fssnap"))
	if len(entries) != 0 || st.Reason != "missing" || st.Restored != 0 || st.Dropped != 0 {
		t.Fatalf("missing file: entries=%d stats=%+v", len(entries), st)
	}
}

// TestEmptySnapshotRoundTrip pins that zero entries is a valid,
// cleanly-loading snapshot (a service with an empty cache still
// snapshots on drain).
func TestEmptySnapshotRoundTrip(t *testing.T) {
	entries, st := Read(bytes.NewReader(encode(t, nil)))
	if len(entries) != 0 || !st.Clean() || st.Declared != 0 {
		t.Fatalf("empty snapshot: entries=%d stats=%+v", len(entries), st)
	}
}

// TestFaultInjection pins the snapshot.write and snapshot.load seams:
// an injected write failure surfaces as an error (the manager logs and
// retries next tick), an injected load failure yields a cold start.
func TestFaultInjection(t *testing.T) {
	faultinject.Enable()
	defer faultinject.Reset()
	path := filepath.Join(t.TempDir(), "cache.fssnap")

	faultinject.Arm("snapshot.write", faultinject.Fault{Kind: faultinject.KindError, MaxFires: 1})
	if err := WriteFile(path, corpus(2)); err == nil {
		t.Fatal("armed snapshot.write did not fail the write")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("failed write left a file behind")
	}
	if err := WriteFile(path, corpus(2)); err != nil {
		t.Fatalf("write after fault exhausted: %v", err)
	}

	faultinject.Arm("snapshot.load", faultinject.Fault{Kind: faultinject.KindError, MaxFires: 1})
	if entries, st := LoadFile(path); len(entries) != 0 || st.Reason != "injected" {
		t.Fatalf("injected load fault: entries=%d stats=%+v", len(entries), st)
	}
	if entries, st := LoadFile(path); len(entries) != 2 || !st.Clean() {
		t.Fatalf("load after fault exhausted: entries=%d stats=%+v", len(entries), st)
	}
}
