// Package admission is the service's adaptive admission control: the
// decision of how many model evaluations may run at once, who may wait
// for a slot, and who is turned away now rather than timed out later.
//
// The previous limiter was a fixed-size token pool: correct, but its
// capacity was a static guess. Evaluation latency is the ground truth
// the service actually has — a warm evaluation of a paper-scale kernel
// has a stable cost, and when observed latency drifts far above that
// baseline the machine is oversubscribed and admitting more work makes
// every request slower. The Controller therefore adapts an AIMD
// concurrency limit from observed latency:
//
//   - every successful evaluation feeds an EWMA of latency and keeps a
//     minimum as the warm baseline;
//   - when the EWMA degrades past a threshold multiple of the
//     baseline, the limit decreases multiplicatively (shed load fast);
//   - while latency is healthy, the limit increases additively back
//     toward the configured ceiling (reclaim capacity slowly).
//
// Two further admission decisions happen before a request may wait:
//
//   - queue-deadline eviction: a waiter whose context deadline cannot
//     be met by the estimated queue drain time is rejected immediately
//     with a *DeadlineError carrying the estimate — the client gets a
//     derived Retry-After now instead of a guaranteed timeout later;
//   - per-client quotas (quota.go): a token bucket per client key so
//     one hot client saturates its own budget, not the whole service.
package admission

import (
	"container/list"
	"context"
	"errors"
	"sync"
	"time"
)

// ErrQueueFull is returned by Acquire when the bounded wait queue is
// already at capacity; callers map it to 429 backpressure.
var ErrQueueFull = errors.New("admission: evaluation queue full")

// DeadlineError is a queue-deadline eviction: the request's deadline
// cannot be met given the estimated time to drain the queue ahead of
// it, so it is rejected before wasting a queue slot. RetryAfter is the
// drain estimate — the earliest time a retry could plausibly be
// admitted.
type DeadlineError struct {
	// EstimatedWait is how long the queue ahead would take to drain.
	EstimatedWait time.Duration
	// Remaining is how much of the request's deadline was left.
	Remaining time.Duration
}

// Error implements the error interface.
func (e *DeadlineError) Error() string {
	return "admission: request deadline cannot be met (estimated wait " +
		e.EstimatedWait.Round(time.Millisecond).String() + ", deadline in " +
		e.Remaining.Round(time.Millisecond).String() + ")"
}

// Config parameterizes a Controller. The zero value of every tunable
// gets a sensible default; MaxConcurrent is required.
type Config struct {
	// MaxConcurrent is the hard ceiling on concurrently admitted work
	// (required, >= 1). The adaptive limit never exceeds it.
	MaxConcurrent int
	// MinConcurrent is the floor the limit never decreases below
	// (0 = 1).
	MinConcurrent int
	// MaxQueue bounds requests waiting for a slot; beyond it Acquire
	// returns ErrQueueFull (0 = no waiting at all).
	MaxQueue int
	// LatencyThreshold is the EWMA-over-baseline ratio that marks the
	// service oversubscribed (0 = 2.0).
	LatencyThreshold float64
	// DecreaseFactor is the multiplicative decrease applied while
	// oversubscribed (0 = 0.75).
	DecreaseFactor float64
	// IncreaseStep is the additive increase applied while healthy
	// (0 = 1).
	IncreaseStep float64
	// AdaptEvery batches adaptation: the limit moves at most once per
	// this many observed samples, so one outlier does not whipsaw it
	// (0 = 8).
	AdaptEvery int
	// OnQueueDepth, when non-nil, mirrors the waiter count on every
	// change (feeds the fsserve_queue_depth gauge).
	OnQueueDepth func(depth int)
	// OnLimitChange, when non-nil, observes every limit move with the
	// new value and the direction ("increase"/"decrease").
	OnLimitChange func(limit float64, direction string)
	// Now substitutes the clock in tests (nil = time.Now).
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.MinConcurrent <= 0 {
		c.MinConcurrent = 1
	}
	if c.MaxConcurrent < c.MinConcurrent {
		c.MaxConcurrent = c.MinConcurrent
	}
	if c.LatencyThreshold <= 1 {
		c.LatencyThreshold = 2.0
	}
	if c.DecreaseFactor <= 0 || c.DecreaseFactor >= 1 {
		c.DecreaseFactor = 0.75
	}
	if c.IncreaseStep <= 0 {
		c.IncreaseStep = 1
	}
	if c.AdaptEvery <= 0 {
		c.AdaptEvery = 8
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// waiter is one queued Acquire call.
type waiter struct {
	ready   chan struct{}
	granted bool
}

// Controller is the adaptive admission controller. Create with New;
// all methods are safe for concurrent use.
type Controller struct {
	cfg Config

	mu      sync.Mutex
	limit   float64 // current adaptive limit, in [MinConcurrent, MaxConcurrent]
	running int     // admitted work currently holding a slot
	queue   *list.List

	// latency adaptation state, all in seconds
	ewma       float64 // smoothed successful-evaluation latency
	baseline   float64 // minimum observed successful latency (warm baseline)
	sinceAdapt int

	// counters for stats
	increases, decreases int64
	deadlineEvictions    int64
}

// New builds a Controller starting at the full ceiling: the limit only
// backs off once observed latency says it must, so an unloaded server
// behaves exactly like the static pool it replaces.
func New(cfg Config) *Controller {
	cfg = cfg.withDefaults()
	return &Controller{
		cfg:   cfg,
		limit: float64(cfg.MaxConcurrent),
		queue: list.New(),
	}
}

// intLimit is the admittable slot count right now.
func (c *Controller) intLimit() int {
	n := int(c.limit)
	if n < c.cfg.MinConcurrent {
		n = c.cfg.MinConcurrent
	}
	return n
}

// Acquire blocks until a slot is free, the queue is full, the caller's
// deadline is provably unmeetable, or ctx is done. On success the
// returned release must be called exactly once.
func (c *Controller) Acquire(ctx context.Context) (release func(), err error) {
	c.mu.Lock()
	if c.running < c.intLimit() {
		c.running++
		c.mu.Unlock()
		return c.release, nil
	}
	if c.queue.Len() >= c.cfg.MaxQueue {
		c.mu.Unlock()
		return nil, ErrQueueFull
	}
	// Queue-deadline eviction: if the estimated time to drain the queue
	// ahead of this request already exceeds its deadline, waiting would
	// only convert a fast rejection into a slow timeout.
	if d, ok := ctx.Deadline(); ok {
		wait := c.estimatedWaitLocked(c.queue.Len())
		if remaining := d.Sub(c.cfg.Now()); wait > 0 && remaining < wait {
			c.deadlineEvictions++
			c.mu.Unlock()
			return nil, &DeadlineError{EstimatedWait: wait, Remaining: remaining}
		}
	}
	w := &waiter{ready: make(chan struct{})}
	el := c.queue.PushBack(w)
	c.notifyDepthLocked()
	c.mu.Unlock()

	select {
	case <-w.ready:
		return c.release, nil
	case <-ctx.Done():
		c.mu.Lock()
		if w.granted {
			// The grant raced ctx expiry: the slot is ours, give it back.
			c.mu.Unlock()
			c.release()
			return nil, ctx.Err()
		}
		c.queue.Remove(el)
		c.notifyDepthLocked()
		c.mu.Unlock()
		return nil, ctx.Err()
	}
}

// release returns a slot and hands it to the next waiter if the limit
// allows.
func (c *Controller) release() {
	c.mu.Lock()
	c.running--
	c.grantLocked()
	c.mu.Unlock()
}

// grantLocked admits waiters while slots are free.
func (c *Controller) grantLocked() {
	for c.running < c.intLimit() && c.queue.Len() > 0 {
		el := c.queue.Front()
		w := c.queue.Remove(el).(*waiter)
		w.granted = true
		c.running++
		close(w.ready)
	}
	c.notifyDepthLocked()
}

func (c *Controller) notifyDepthLocked() {
	if c.cfg.OnQueueDepth != nil {
		c.cfg.OnQueueDepth(c.queue.Len())
	}
}

// estimatedWaitLocked estimates how long a request entering the queue
// at position pos would wait: the work ahead of it (everything queued
// plus itself reaching the front) at the smoothed per-slot service
// rate. Zero until a latency sample exists — with no data the
// controller does not evict.
func (c *Controller) estimatedWaitLocked(pos int) time.Duration {
	if c.ewma <= 0 {
		return 0
	}
	perSlot := c.ewma / float64(c.intLimit())
	return time.Duration(float64(pos+1) * perSlot * float64(time.Second))
}

// EstimatedWait is the current drain estimate for a newly queued
// request (for deriving Retry-After values).
func (c *Controller) EstimatedWait() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.estimatedWaitLocked(c.queue.Len())
}

// Observe feeds one completed evaluation's latency into the
// controller. Only successful evaluations adapt the limit: failures go
// to the circuit breaker, whose job is fault health, while the
// limiter's job is throughput health.
func (c *Controller) Observe(latency time.Duration, success bool) {
	if !success {
		return
	}
	sec := latency.Seconds()
	if sec <= 0 {
		sec = 1e-9 // a clamped sample still counts toward adaptation
	}
	c.mu.Lock()
	if c.baseline == 0 || sec < c.baseline {
		c.baseline = sec
	}
	if c.ewma == 0 {
		c.ewma = sec
	} else {
		c.ewma = 0.8*c.ewma + 0.2*sec
	}
	c.sinceAdapt++
	if c.sinceAdapt >= c.cfg.AdaptEvery {
		c.sinceAdapt = 0
		c.adaptLocked()
	}
	c.mu.Unlock()
}

// adaptLocked moves the limit one AIMD step based on the current
// EWMA-over-baseline ratio.
func (c *Controller) adaptLocked() {
	oversubscribed := c.ewma > c.cfg.LatencyThreshold*c.baseline
	if oversubscribed {
		next := c.limit * c.cfg.DecreaseFactor
		if next < float64(c.cfg.MinConcurrent) {
			next = float64(c.cfg.MinConcurrent)
		}
		if next < c.limit {
			c.limit = next
			c.decreases++
			if c.cfg.OnLimitChange != nil {
				c.cfg.OnLimitChange(c.limit, "decrease")
			}
		}
		return
	}
	next := c.limit + c.cfg.IncreaseStep
	if next > float64(c.cfg.MaxConcurrent) {
		next = float64(c.cfg.MaxConcurrent)
	}
	if next > c.limit {
		c.limit = next
		c.increases++
		if c.cfg.OnLimitChange != nil {
			c.cfg.OnLimitChange(c.limit, "increase")
		}
		// A raised limit may admit queued work immediately.
		c.grantLocked()
	}
}

// Stats is a point-in-time view of the controller.
type Stats struct {
	// Limit is the current adaptive concurrency limit; Ceiling is the
	// configured maximum; Floor the minimum.
	Limit   float64
	Ceiling int
	Floor   int
	// Running is admitted work holding a slot; Waiting the queue depth;
	// MaxWait the queue capacity.
	Running int
	Waiting int
	MaxWait int
	// BaselineSeconds and EWMASeconds expose the latency model.
	BaselineSeconds float64
	EWMASeconds     float64
	// Increases/Decreases count limit moves; DeadlineEvictions counts
	// queue-deadline rejections.
	Increases         int64
	Decreases         int64
	DeadlineEvictions int64
}

// Stats snapshots the controller.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Limit:             c.limit,
		Ceiling:           c.cfg.MaxConcurrent,
		Floor:             c.cfg.MinConcurrent,
		Running:           c.running,
		Waiting:           c.queue.Len(),
		MaxWait:           c.cfg.MaxQueue,
		BaselineSeconds:   c.baseline,
		EWMASeconds:       c.ewma,
		Increases:         c.increases,
		Decreases:         c.decreases,
		DeadlineEvictions: c.deadlineEvictions,
	}
}
