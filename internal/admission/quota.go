package admission

import (
	"sync"
	"time"
)

// QuotaConfig parameterizes per-client token buckets.
type QuotaConfig struct {
	// Rate is tokens (requests) replenished per second per client.
	// Rate <= 0 disables quota enforcement entirely.
	Rate float64
	// Burst is the bucket capacity (0 = max(1, 2*Rate)).
	Burst float64
	// MaxClients bounds the tracked-client map; beyond it, idle (full)
	// buckets are evicted first, then the map refuses new entries by
	// admitting them unthrottled — running out of tracking space must
	// not turn into a denial of service (0 = 4096).
	MaxClients int
	// Now substitutes the clock in tests (nil = time.Now).
	Now func() time.Time
}

func (c QuotaConfig) withDefaults() QuotaConfig {
	if c.Burst <= 0 {
		c.Burst = 2 * c.Rate
		if c.Burst < 1 {
			c.Burst = 1
		}
	}
	if c.MaxClients <= 0 {
		c.MaxClients = 4096
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// bucket is one client's token bucket.
type bucket struct {
	tokens float64
	last   time.Time
}

// Quotas enforces a token-bucket request quota per client key, so one
// flooding client exhausts its own budget instead of starving everyone
// behind the shared evaluation pool.
type Quotas struct {
	cfg QuotaConfig

	mu      sync.Mutex
	buckets map[string]*bucket
	rejects int64
}

// NewQuotas builds a quota enforcer; nil-safe to use when cfg.Rate <= 0
// (every Allow admits).
func NewQuotas(cfg QuotaConfig) *Quotas {
	cfg = cfg.withDefaults()
	return &Quotas{cfg: cfg, buckets: make(map[string]*bucket)}
}

// Allow charges one request to key's bucket. When the bucket is empty
// it reports false plus the time until one token refills — the derived
// Retry-After for the 429.
func (q *Quotas) Allow(key string) (ok bool, retryAfter time.Duration) {
	if q == nil || q.cfg.Rate <= 0 {
		return true, 0
	}
	now := q.cfg.Now()
	q.mu.Lock()
	defer q.mu.Unlock()
	b := q.buckets[key]
	if b == nil {
		if len(q.buckets) >= q.cfg.MaxClients {
			q.evictIdleLocked(now)
		}
		if len(q.buckets) >= q.cfg.MaxClients {
			// Tracking space exhausted even after eviction: admit rather
			// than punish clients for the server's bookkeeping limits.
			return true, 0
		}
		b = &bucket{tokens: q.cfg.Burst, last: now}
		q.buckets[key] = b
	}
	// Lazy refill since the last charge.
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * q.cfg.Rate
		if b.tokens > q.cfg.Burst {
			b.tokens = q.cfg.Burst
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	q.rejects++
	deficit := 1 - b.tokens
	return false, time.Duration(deficit / q.cfg.Rate * float64(time.Second))
}

// evictIdleLocked removes buckets that have fully refilled — clients
// idle long enough that forgetting them is lossless.
func (q *Quotas) evictIdleLocked(now time.Time) {
	for k, b := range q.buckets {
		if b.tokens+now.Sub(b.last).Seconds()*q.cfg.Rate >= q.cfg.Burst {
			delete(q.buckets, k)
		}
	}
}

// Rejects counts requests turned away over quota.
func (q *Quotas) Rejects() int64 {
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.rejects
}

// Tracked reports how many client buckets are live (for tests and
// introspection).
func (q *Quotas) Tracked() int {
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.buckets)
}
