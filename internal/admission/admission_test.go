package admission

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestAcquireReleaseBounds pins the basic pool contract: the limit
// bounds concurrent holders, zero queue rejects immediately, releases
// hand slots to waiters in FIFO order.
func TestAcquireReleaseBounds(t *testing.T) {
	c := New(Config{MaxConcurrent: 2, MaxQueue: 0})
	ctx := context.Background()
	r1, err1 := c.Acquire(ctx)
	r2, err2 := c.Acquire(ctx)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if _, err := c.Acquire(ctx); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third acquire with zero queue: %v, want ErrQueueFull", err)
	}
	r1()
	r3, err := c.Acquire(ctx)
	if err != nil {
		t.Fatalf("after release: %v", err)
	}
	r3()
	r2()
	if st := c.Stats(); st.Running != 0 {
		t.Fatalf("running = %d after all releases", st.Running)
	}
}

// TestQueueFIFOAndCancel pins that waiters queue in order, a cancelled
// waiter leaves the queue, and depth is mirrored via OnQueueDepth.
func TestQueueFIFOAndCancel(t *testing.T) {
	var mu sync.Mutex
	depths := []int{}
	c := New(Config{MaxConcurrent: 1, MaxQueue: 4, OnQueueDepth: func(d int) {
		mu.Lock()
		depths = append(depths, d)
		mu.Unlock()
	}})
	release, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	got := make(chan int, 2)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i == 1 {
				<-start // ensure deterministic queue order
			}
			rel, err := c.Acquire(context.Background())
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			got <- i
			rel()
		}(i)
	}
	waitDepth := func(want int) {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for c.Stats().Waiting != want {
			if time.Now().After(deadline) {
				t.Fatalf("queue depth never reached %d", want)
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitDepth(1)
	close(start)
	waitDepth(2)

	// A cancelled waiter leaves the queue without a grant.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Acquire(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled acquire: %v", err)
	}

	release()
	if first := <-got; first != 0 {
		t.Errorf("first grant went to waiter %d, want FIFO order", first)
	}
	wg.Wait()
	if c.Stats().Waiting != 0 {
		t.Errorf("waiting = %d after drain", c.Stats().Waiting)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(depths) == 0 {
		t.Error("OnQueueDepth never called")
	}
}

// TestAIMDDecreaseAndRecover drives the latency model directly: a warm
// baseline, then degraded latency → multiplicative decrease bounded by
// the floor; healthy latency again → additive recovery to the ceiling.
func TestAIMDDecreaseAndRecover(t *testing.T) {
	type move struct {
		limit float64
		dir   string
	}
	var moves []move
	c := New(Config{
		MaxConcurrent: 8, MinConcurrent: 2, MaxQueue: 8,
		AdaptEvery: 4, LatencyThreshold: 2, DecreaseFactor: 0.5,
		OnLimitChange: func(l float64, d string) { moves = append(moves, move{l, d}) },
	})

	// Warm baseline at 10ms. Healthy samples try to increase, but the
	// limit already sits at the ceiling.
	for i := 0; i < 8; i++ {
		c.Observe(10*time.Millisecond, true)
	}
	if st := c.Stats(); st.Limit != 8 || st.Decreases != 0 {
		t.Fatalf("healthy warm-up moved the limit: %+v", st)
	}

	// Degraded latency: 10× baseline. The EWMA crosses 2× baseline and
	// each AdaptEvery batch halves the limit, never below the floor.
	for i := 0; i < 32; i++ {
		c.Observe(100*time.Millisecond, true)
	}
	st := c.Stats()
	if st.Limit != 2 {
		t.Fatalf("limit = %v after sustained degradation, want floor 2 (stats %+v)", st.Limit, st)
	}
	if st.Decreases == 0 {
		t.Fatal("no decrease recorded")
	}

	// Recovery: healthy latency again walks the limit back up by
	// IncreaseStep per batch.
	for i := 0; i < 8*4; i++ {
		c.Observe(10*time.Millisecond, true)
	}
	st = c.Stats()
	if st.Limit != 8 {
		t.Fatalf("limit = %v after recovery, want ceiling 8", st.Limit)
	}
	if st.Increases == 0 {
		t.Fatal("no increase recorded")
	}
	for _, m := range moves {
		if m.dir != "increase" && m.dir != "decrease" {
			t.Errorf("bad direction %q", m.dir)
		}
		if m.limit < 2 || m.limit > 8 {
			t.Errorf("limit %v escaped [floor, ceiling]", m.limit)
		}
	}
}

// TestFailuresDoNotAdapt pins that failed evaluations leave the
// latency model untouched: fault health is the breaker's job.
func TestFailuresDoNotAdapt(t *testing.T) {
	c := New(Config{MaxConcurrent: 4, AdaptEvery: 1})
	for i := 0; i < 16; i++ {
		c.Observe(time.Second, false)
	}
	st := c.Stats()
	if st.EWMASeconds != 0 || st.BaselineSeconds != 0 || st.Limit != 4 {
		t.Fatalf("failures adapted the model: %+v", st)
	}
}

// TestDeadlineEviction pins queue-deadline eviction: once a latency
// model exists, a queued request whose deadline is shorter than the
// estimated drain time is rejected immediately with the estimate, and
// counted.
func TestDeadlineEviction(t *testing.T) {
	// The fake clock must track the real one closely enough that the
	// contexts below (whose timers run on the real clock) stay alive.
	now := time.Now()
	c := New(Config{MaxConcurrent: 1, MaxQueue: 8, Now: func() time.Time { return now }})
	// Warm the model: ~1s per evaluation at limit 1.
	for i := 0; i < 8; i++ {
		c.Observe(time.Second, true)
	}
	release, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	// 50ms of deadline against a ~1s estimated wait: evict.
	ctx, cancel := context.WithDeadline(context.Background(), now.Add(50*time.Millisecond))
	defer cancel()
	_, err = c.Acquire(ctx)
	var de *DeadlineError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want *DeadlineError", err)
	}
	if de.EstimatedWait < 500*time.Millisecond {
		t.Errorf("estimated wait = %v, want ~1s from the latency model", de.EstimatedWait)
	}
	if c.Stats().DeadlineEvictions != 1 {
		t.Errorf("deadline evictions = %d, want 1", c.Stats().DeadlineEvictions)
	}

	// A deadline comfortably beyond the estimate queues normally.
	ctx2, cancel2 := context.WithDeadline(context.Background(), now.Add(time.Hour))
	defer cancel2()
	done := make(chan error, 1)
	go func() {
		rel, err := c.Acquire(ctx2)
		if err == nil {
			rel()
		}
		done <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for c.Stats().Waiting != 1 {
		if time.Now().After(deadline) {
			t.Fatal("long-deadline request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	release()
	if err := <-done; err != nil {
		t.Fatalf("long-deadline waiter: %v", err)
	}
}

// TestNoEvictionWithoutModel pins that eviction needs data: before any
// latency sample, short-deadline requests are allowed to queue (the
// controller will not reject on a guess).
func TestNoEvictionWithoutModel(t *testing.T) {
	c := New(Config{MaxConcurrent: 1, MaxQueue: 4})
	release, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := c.Acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded from waiting, not eviction", err)
	}
	if c.Stats().DeadlineEvictions != 0 {
		t.Error("evicted without a latency model")
	}
	release()
}

// TestQuotaBucket pins the per-client token bucket: burst admits, the
// empty bucket rejects with a refill-derived Retry-After, time refills,
// and distinct clients are isolated.
func TestQuotaBucket(t *testing.T) {
	now := time.Unix(0, 0)
	q := NewQuotas(QuotaConfig{Rate: 2, Burst: 3, Now: func() time.Time { return now }})

	for i := 0; i < 3; i++ {
		if ok, _ := q.Allow("hot"); !ok {
			t.Fatalf("burst request %d rejected", i)
		}
	}
	ok, retry := q.Allow("hot")
	if ok {
		t.Fatal("4th request within burst admitted")
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("retry = %v, want (0, 500ms] at rate 2/s (got deficit-derived)", retry)
	}
	// Another client is unaffected by the hot one's empty bucket.
	if ok, _ := q.Allow("cold"); !ok {
		t.Fatal("distinct client throttled by another's bucket")
	}
	// Half a second at 2/s refills one token.
	now = now.Add(500 * time.Millisecond)
	if ok, _ := q.Allow("hot"); !ok {
		t.Fatal("refilled bucket still rejects")
	}
	if q.Rejects() != 1 {
		t.Fatalf("rejects = %d, want 1", q.Rejects())
	}
}

// TestQuotaDisabledAndNil pins the disabled paths: Rate 0 and a nil
// *Quotas both admit everything.
func TestQuotaDisabledAndNil(t *testing.T) {
	q := NewQuotas(QuotaConfig{})
	if ok, _ := q.Allow("x"); !ok {
		t.Fatal("zero-rate quota rejected")
	}
	var nilQ *Quotas
	if ok, _ := nilQ.Allow("x"); !ok {
		t.Fatal("nil quota rejected")
	}
}

// TestQuotaEviction pins the bounded-map contract: idle clients are
// evicted to make room, and when tracking is truly exhausted new
// clients are admitted unthrottled rather than rejected.
func TestQuotaEviction(t *testing.T) {
	now := time.Unix(0, 0)
	q := NewQuotas(QuotaConfig{Rate: 1, Burst: 1, MaxClients: 4, Now: func() time.Time { return now }})
	for i := 0; i < 4; i++ {
		q.Allow(string(rune('a' + i)))
	}
	if q.Tracked() != 4 {
		t.Fatalf("tracked = %d, want 4", q.Tracked())
	}
	// All four buckets refill after a second; a fifth client evicts
	// them rather than being refused tracking.
	now = now.Add(2 * time.Second)
	if ok, _ := q.Allow("e"); !ok {
		t.Fatal("fifth client rejected")
	}
	if q.Tracked() != 1 {
		t.Fatalf("tracked = %d after idle eviction, want 1", q.Tracked())
	}
	// Exhausted tracking with nothing evictable: admit unthrottled.
	for i := 0; i < 3; i++ {
		q.Allow(string(rune('f' + i)))
	}
	if ok, _ := q.Allow("overflow"); !ok {
		t.Fatal("tracking exhaustion turned into a rejection")
	}
}
