// Package guard is the evaluation-hardening layer shared by every place
// the repository runs a model evaluation: the fsserve request pool, the
// internal/sweep workers behind the experiment drivers, and the CLIs.
// It provides three independent pieces:
//
//   - panic isolation (this file): Do and Do1 run a function under a
//     recover wrapper that converts a panic into a typed *EvalPanicError
//     carrying the captured stack, so one pathological nest never kills
//     a pool worker or the process;
//   - resource budgets (budget.go): Budget bounds an evaluation's
//     modeled accesses, modeled state bytes and wall-clock deadline, and
//     the fsmodel hot loop checks it amortized so runaway inputs stop
//     deterministically with a *BudgetError instead of hanging;
//   - circuit breaking (breaker.go): Breaker is a closed/open/half-open
//     circuit breaker with a consecutive-failure threshold and seeded
//     probabilistic half-open probes, used per endpoint by the service.
//
// The package is a leaf: it imports only the standard library, so every
// layer (fsmodel, sweep, service, cmds) can depend on it without cycles.
package guard

import (
	"fmt"
	"runtime/debug"
)

// EvalPanicError is a panic converted into an error by Do or Do1: the
// recovered value plus the goroutine stack captured at the panic site.
// It is how "this input crashed the evaluator" propagates as data — to a
// CLI error message, a degraded service response, or a breaker failure —
// instead of as a dead process.
type EvalPanicError struct {
	// Value is the value passed to panic().
	Value any
	// Stack is the formatted goroutine stack at recovery time.
	Stack []byte
}

// Error implements the error interface. The stack is not included: it is
// operator detail (logged by callers that want it), not message text.
func (e *EvalPanicError) Error() string {
	return fmt.Sprintf("evaluation panicked: %v", e.Value)
}

// Do runs fn, converting a panic into a *EvalPanicError. Any ordinary
// error from fn passes through unchanged.
func Do(fn func() error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &EvalPanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	return fn()
}

// Do1 is Do for functions returning a value and an error. On panic the
// zero value of T is returned with the *EvalPanicError.
func Do1[T any](fn func() (T, error)) (v T, err error) {
	defer func() {
		if r := recover(); r != nil {
			var zero T
			v, err = zero, &EvalPanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return fn()
}
