package guard

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestDoPassesThrough(t *testing.T) {
	if err := Do(func() error { return nil }); err != nil {
		t.Fatalf("Do(nil-returning fn) = %v", err)
	}
	want := errors.New("boom")
	if err := Do(func() error { return want }); err != want {
		t.Fatalf("Do passed error %v, want %v", err, want)
	}
}

func TestDoConvertsPanic(t *testing.T) {
	err := Do(func() error { panic("index out of range") })
	var pe *EvalPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Do(panicking fn) = %v (%T), want *EvalPanicError", err, err)
	}
	if pe.Value != "index out of range" {
		t.Errorf("panic value = %v, want %q", pe.Value, "index out of range")
	}
	if !strings.Contains(string(pe.Stack), "guard_test.go") {
		t.Errorf("captured stack does not mention the panic site:\n%s", pe.Stack)
	}
	if !strings.Contains(err.Error(), "index out of range") {
		t.Errorf("Error() = %q, want it to carry the panic value", err.Error())
	}
}

func TestDo1ConvertsPanicAndZeroesValue(t *testing.T) {
	v, err := Do1(func() (int, error) {
		var s []int
		return s[3], nil // real runtime panic
	})
	var pe *EvalPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Do1 = (%v, %v), want *EvalPanicError", v, err)
	}
	if v != 0 {
		t.Errorf("Do1 returned %d with panic, want zero value", v)
	}
	v, err = Do1(func() (int, error) { return 42, nil })
	if v != 42 || err != nil {
		t.Fatalf("Do1 success path = (%d, %v), want (42, nil)", v, err)
	}
}

func TestBudgetZero(t *testing.T) {
	var b Budget
	if !b.Zero() {
		t.Fatal("zero Budget should report Zero()")
	}
	if err := b.Check(1<<40, 1<<40); err != nil {
		t.Fatalf("zero budget rejected work: %v", err)
	}
	for _, set := range []Budget{
		{MaxSteps: 1},
		{MaxStateBytes: 1},
		{Deadline: time.Unix(1, 0)},
	} {
		if set.Zero() {
			t.Errorf("%+v should not be Zero()", set)
		}
	}
}

func TestBudgetDimensions(t *testing.T) {
	b := Budget{MaxSteps: 100, MaxStateBytes: 1 << 20}
	if err := b.Check(100, 1<<20); err != nil {
		t.Fatalf("at-limit check failed: %v", err)
	}
	err := b.Check(101, 0)
	var be *BudgetError
	if !errors.As(err, &be) || be.Resource != "steps" {
		t.Fatalf("steps overrun = %v, want *BudgetError{steps}", err)
	}
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Error("steps BudgetError does not match ErrBudgetExceeded")
	}
	if be.Limit != 100 || be.Used != 101 {
		t.Errorf("BudgetError carries limit=%d used=%d, want 100/101", be.Limit, be.Used)
	}
	if err := b.Check(0, 1<<20+1); !errors.As(err, &be) || be.Resource != "state-bytes" {
		t.Fatalf("state overrun = %v, want *BudgetError{state-bytes}", err)
	}
	past := Budget{Deadline: time.Now().Add(-time.Second)}
	if err := past.Check(0, 0); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("past deadline = %v, want budget exceeded", err)
	}
	future := Budget{Deadline: time.Now().Add(time.Hour)}
	if err := future.Check(0, 0); err != nil {
		t.Fatalf("future deadline tripped: %v", err)
	}
}

// fakeClock is a manually advanced clock for breaker tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

// TestBreakerStateMachine drives the breaker through scripted event
// sequences and checks the resulting state after each step. Events:
// "fail", "ok" (Record), "tick" (advance the clock past the cooldown),
// "allow" / "deny" (Allow must return that result; "probe" means Allow
// is called and either outcome is accepted, used to reach half-open).
func TestBreakerStateMachine(t *testing.T) {
	const cooldown = time.Second
	cases := []struct {
		name   string
		script []string
		want   BreakerState
	}{
		{"starts closed", nil, BreakerClosed},
		{"below threshold stays closed", []string{"fail", "fail", "allow"}, BreakerClosed},
		{"success resets the streak", []string{"fail", "fail", "ok", "fail", "fail", "allow"}, BreakerClosed},
		{"threshold opens", []string{"fail", "fail", "fail", "deny"}, BreakerOpen},
		{"open rejects until cooldown", []string{"fail", "fail", "fail", "deny", "deny"}, BreakerOpen},
		{"cooldown admits probes", []string{"fail", "fail", "fail", "tick", "probe"}, BreakerHalfOpen},
		{"probe success closes", []string{"fail", "fail", "fail", "tick", "probe", "ok", "allow"}, BreakerClosed},
		{"probe failure reopens", []string{"fail", "fail", "fail", "tick", "probe", "fail", "deny"}, BreakerOpen},
		{"reopen restarts cooldown", []string{"fail", "fail", "fail", "tick", "probe", "fail", "tick", "probe", "ok"}, BreakerClosed},
		{"straggler success while open is ignored", []string{"fail", "fail", "fail", "ok", "deny"}, BreakerOpen},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clk := &fakeClock{t: time.Unix(0, 0)}
			b := NewBreaker(BreakerConfig{
				FailureThreshold: 3,
				Cooldown:         cooldown,
				ProbeFraction:    1, // deterministic probes: always admit
				Now:              clk.now,
			})
			for i, ev := range tc.script {
				switch ev {
				case "fail":
					b.Record(false)
				case "ok":
					b.Record(true)
				case "tick":
					clk.advance(cooldown + time.Millisecond)
				case "allow":
					if !b.Allow() {
						t.Fatalf("step %d: Allow() = false, want true", i)
					}
				case "deny":
					if b.Allow() {
						t.Fatalf("step %d: Allow() = true, want false", i)
					}
				case "probe":
					b.Allow()
				default:
					t.Fatalf("bad script event %q", ev)
				}
			}
			if got := b.State(); got != tc.want {
				t.Fatalf("final state = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestBreakerSeededProbes pins the half-open probe decisions to the
// seed: the same seed yields the same admit/reject sequence, and the
// fraction roughly matches ProbeFraction.
func TestBreakerSeededProbes(t *testing.T) {
	sequence := func(seed int64) []bool {
		clk := &fakeClock{t: time.Unix(0, 0)}
		b := NewBreaker(BreakerConfig{
			FailureThreshold: 1, Cooldown: time.Second, ProbeFraction: 0.25,
			Seed: seed, Now: clk.now,
		})
		b.Record(false) // open
		clk.advance(2 * time.Second)
		out := make([]bool, 64)
		for i := range out {
			out[i] = b.Allow() // stays half-open: no Record calls
		}
		return out
	}
	a, b2 := sequence(7), sequence(7)
	admitted := 0
	for i := range a {
		if a[i] != b2[i] {
			t.Fatalf("probe %d differs across identical seeds", i)
		}
		if a[i] {
			admitted++
		}
	}
	if admitted == 0 || admitted == len(a) {
		t.Fatalf("probe fraction 0.25 admitted %d/%d — not probabilistic", admitted, len(a))
	}
	if c := sequence(8); fmt.Sprint(a) == fmt.Sprint(c) {
		t.Error("different seeds produced identical probe sequences")
	}
}

func TestBreakerSnapshot(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 2, Cooldown: time.Hour})
	b.Record(false)
	snap := b.Snapshot()
	if snap.State != BreakerClosed || snap.ConsecutiveFailures != 1 || snap.Opens != 0 {
		t.Fatalf("snapshot after one failure = %+v", snap)
	}
	b.Record(false)
	snap = b.Snapshot()
	if snap.State != BreakerOpen || snap.Opens != 1 {
		t.Fatalf("snapshot after opening = %+v", snap)
	}
	if got := BreakerHalfOpen.String(); got != "half-open" {
		t.Errorf("BreakerHalfOpen.String() = %q", got)
	}
}
