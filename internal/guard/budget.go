package guard

import (
	"errors"
	"fmt"
	"time"
)

// ErrBudgetExceeded is the sentinel every budget violation matches via
// errors.Is, whatever the exhausted resource. Callers that only need the
// yes/no ("should this request degrade to the closed-form engine?") test
// against it; callers that report detail unwrap the *BudgetError.
var ErrBudgetExceeded = errors.New("evaluation budget exceeded")

// BudgetError reports which budget dimension an evaluation exhausted.
// It matches ErrBudgetExceeded under errors.Is.
type BudgetError struct {
	// Resource names the exhausted dimension: "steps", "state-bytes" or
	// "deadline".
	Resource string
	// Limit is the configured bound; Used is the consumption observed at
	// the check that tripped (both 0 for "deadline").
	Limit int64
	Used  int64
}

// Error implements the error interface.
func (e *BudgetError) Error() string {
	if e.Resource == "deadline" {
		return "evaluation budget exceeded: deadline passed"
	}
	return fmt.Sprintf("evaluation budget exceeded: %s %d over limit %d", e.Resource, e.Used, e.Limit)
}

// Is reports whether target is ErrBudgetExceeded, so
// errors.Is(err, guard.ErrBudgetExceeded) matches any *BudgetError.
func (e *BudgetError) Is(target error) bool { return target == ErrBudgetExceeded }

// Budget bounds one model evaluation. The zero value is unlimited; each
// dimension is enforced independently and only when set. Budgets are
// plain data — they carry no mutable state, so one Budget value can be
// shared by any number of concurrent evaluations.
type Budget struct {
	// MaxSteps bounds the number of modeled memory accesses the
	// evaluation may process (the fsmodel hot loop's unit of work).
	// 0 = unlimited. The check is amortized — the evaluation may overrun
	// by at most the check interval — but count-triggered, so the same
	// input stops at the same access deterministically.
	MaxSteps int64
	// MaxStateBytes bounds the modeled coherence state (directory +
	// per-thread cache stacks). 0 = unlimited.
	MaxStateBytes int64
	// Deadline aborts the evaluation once passed. The zero time means no
	// deadline. Unlike MaxSteps this is wall-clock and therefore not
	// deterministic; it is the backstop against pathological inputs the
	// step budget does not capture.
	Deadline time.Time
}

// Zero reports whether the budget imposes no limit at all, letting hot
// loops skip bookkeeping entirely.
func (b Budget) Zero() bool {
	return b.MaxSteps <= 0 && b.MaxStateBytes <= 0 && b.Deadline.IsZero()
}

// CheckSteps enforces MaxSteps against the accesses processed so far.
func (b Budget) CheckSteps(steps int64) error {
	if b.MaxSteps > 0 && steps > b.MaxSteps {
		return &BudgetError{Resource: "steps", Limit: b.MaxSteps, Used: steps}
	}
	return nil
}

// CheckStateBytes enforces MaxStateBytes against an estimate of the
// evaluation's live modeled state.
func (b Budget) CheckStateBytes(bytes int64) error {
	if b.MaxStateBytes > 0 && bytes > b.MaxStateBytes {
		return &BudgetError{Resource: "state-bytes", Limit: b.MaxStateBytes, Used: bytes}
	}
	return nil
}

// CheckDeadline enforces Deadline against the current clock.
func (b Budget) CheckDeadline(now time.Time) error {
	if !b.Deadline.IsZero() && now.After(b.Deadline) {
		return &BudgetError{Resource: "deadline"}
	}
	return nil
}

// TightenDeadline returns the budget with its deadline moved to d if d
// is earlier (or the budget had none). A caller-supplied deadline — a
// request context, an X-Request-Deadline header — can only shrink the
// evaluation window, never extend a configured bound.
func (b Budget) TightenDeadline(d time.Time) Budget {
	if d.IsZero() {
		return b
	}
	if b.Deadline.IsZero() || d.Before(b.Deadline) {
		b.Deadline = d
	}
	return b
}

// Check runs every enforced dimension: steps and state are pure
// arithmetic; the deadline reads the clock only when one is set.
func (b Budget) Check(steps, stateBytes int64) error {
	if err := b.CheckSteps(steps); err != nil {
		return err
	}
	if err := b.CheckStateBytes(stateBytes); err != nil {
		return err
	}
	if !b.Deadline.IsZero() {
		return b.CheckDeadline(time.Now())
	}
	return nil
}
