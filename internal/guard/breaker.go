package guard

import (
	"math/rand"
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed passes all traffic, counting consecutive failures.
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects all traffic until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen admits a random fraction of traffic as probes; one
	// probe success closes the breaker, one failure reopens it.
	BreakerHalfOpen
)

// String names the state (used in /readyz and metrics labels).
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig parameterizes a Breaker; the zero value gets defaults.
type BreakerConfig struct {
	// FailureThreshold is the number of consecutive failures that opens
	// the breaker (default 5).
	FailureThreshold int
	// Cooldown is how long the breaker stays open before admitting
	// half-open probes (default 5s).
	Cooldown time.Duration
	// ProbeFraction is the probability a half-open Allow admits the
	// request as a probe (default 0.25). Admission draws from a seeded
	// generator, so a fixed Seed gives a reproducible probe sequence.
	ProbeFraction float64
	// Seed seeds the probe generator (0 = a fixed default seed; breakers
	// are deterministic unless distinct seeds are supplied).
	Seed int64
	// Now is the clock (nil = time.Now), injectable for tests.
	Now func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	if c.ProbeFraction <= 0 || c.ProbeFraction > 1 {
		c.ProbeFraction = 0.25
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Breaker is a consecutive-failure circuit breaker protecting one
// endpoint's evaluation path. All methods are safe for concurrent use.
//
// Closed counts consecutive failures and opens at the threshold. Open
// rejects everything for the cooldown, then shifts to half-open. Half-
// open admits a seeded-random fraction of requests as probes: the first
// probe success closes the breaker, any failure reopens it (restarting
// the cooldown). Only evaluation outcomes should be recorded — client
// input errors say nothing about the endpoint's health.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    BreakerState
	failures int       // consecutive failures while closed
	openedAt time.Time // when the breaker last opened
	opens    int64     // cumulative closed/half-open -> open transitions
	rng      *rand.Rand
}

// NewBreaker builds a breaker from cfg (zero value = defaults).
func NewBreaker(cfg BreakerConfig) *Breaker {
	cfg = cfg.withDefaults()
	return &Breaker{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Allow reports whether a request may proceed, advancing open→half-open
// when the cooldown has elapsed. A false return means the caller should
// not attempt the protected operation (the service degrades instead).
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.cfg.Now().Sub(b.openedAt) < b.cfg.Cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		fallthrough
	default: // BreakerHalfOpen
		return b.rng.Float64() < b.cfg.ProbeFraction
	}
}

// Record feeds one evaluation outcome back into the breaker.
func (b *Breaker) Record(success bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if success {
		switch b.state {
		case BreakerClosed:
			b.failures = 0
		case BreakerHalfOpen:
			// A successful probe closes the breaker.
			b.state = BreakerClosed
			b.failures = 0
		case BreakerOpen:
			// A straggler succeeding after the breaker opened does not
			// close it — only a half-open probe may.
		}
		return
	}
	switch b.state {
	case BreakerClosed:
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			b.open()
		}
	case BreakerHalfOpen:
		// A failed probe reopens immediately; the cooldown restarts.
		b.open()
	case BreakerOpen:
		// A straggler finishing after the breaker opened adds nothing.
	}
}

// open transitions to BreakerOpen; the caller holds b.mu.
func (b *Breaker) open() {
	b.state = BreakerOpen
	b.failures = 0
	b.openedAt = b.cfg.Now()
	b.opens++
}

// BreakerSnapshot is a point-in-time view of a breaker for health
// endpoints and logs.
type BreakerSnapshot struct {
	State BreakerState
	// ConsecutiveFailures is the closed-state failure streak.
	ConsecutiveFailures int
	// Opens counts how many times the breaker has opened since creation.
	Opens int64
}

// Snapshot returns the current state without advancing it (an open
// breaker past its cooldown still reports open until an Allow probes).
func (b *Breaker) Snapshot() BreakerSnapshot {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerSnapshot{State: b.state, ConsecutiveFailures: b.failures, Opens: b.opens}
}

// State returns the breaker's current state.
func (b *Breaker) State() BreakerState { return b.Snapshot().State }
