package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"
)

func contentKey(i int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("key-%d", i)))
	return hex.EncodeToString(sum[:])
}

// TestRankDeterministicAcrossViews pins the property the whole design
// rests on: every node that agrees on the member set computes the
// identical owner ranking, regardless of the order it lists members in.
func TestRankDeterministicAcrossViews(t *testing.T) {
	a := []string{"n1:8080", "n2:8080", "n3:8080", "n4:8080"}
	b := []string{"n4:8080", "n2:8080", "n1:8080", "n3:8080"} // same set, shuffled
	for i := 0; i < 200; i++ {
		k := contentKey(i)
		ra := Rank(a, k, 2)
		rb := Rank(b, k, 2)
		if len(ra) != 2 || len(rb) != 2 {
			t.Fatalf("key %d: rank lengths %d, %d", i, len(ra), len(rb))
		}
		if ra[0] != rb[0] || ra[1] != rb[1] {
			t.Fatalf("key %d: views disagree: %v vs %v", i, ra, rb)
		}
	}
}

// TestRankMinimalDisruption pins rendezvous hashing's failover
// property: removing one member reassigns only the keys that member
// owned; every key owned by a surviving member keeps its primary.
func TestRankMinimalDisruption(t *testing.T) {
	all := []string{"n1:8080", "n2:8080", "n3:8080", "n4:8080", "n5:8080"}
	without := all[:4] // n5 removed
	moved, kept := 0, 0
	for i := 0; i < 500; i++ {
		k := contentKey(i)
		before := Rank(all, k, 1)[0]
		after := Rank(without, k, 1)[0]
		if before == "n5:8080" {
			moved++
			continue
		}
		if before != after {
			t.Fatalf("key %d: primary moved %s -> %s though %s survived", i, before, after, before)
		}
		kept++
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate distribution: moved=%d kept=%d", moved, kept)
	}
}

// TestRankBalance sanity-checks placement balance over content-hash
// keys: no member of a 4-node ring should own a wildly skewed share.
func TestRankBalance(t *testing.T) {
	members := []string{"n1:8080", "n2:8080", "n3:8080", "n4:8080"}
	counts := map[string]int{}
	const n = 2000
	for i := 0; i < n; i++ {
		counts[Rank(members, contentKey(i), 1)[0]]++
	}
	for m, c := range counts {
		share := float64(c) / n
		if share < 0.15 || share > 0.35 {
			t.Errorf("member %s owns %.1f%% of keys (want ~25%%): %v", m, 100*share, counts)
		}
	}
}

// TestRankEdges pins the degenerate inputs.
func TestRankEdges(t *testing.T) {
	if got := Rank(nil, "k", 2); got != nil {
		t.Errorf("Rank(nil) = %v", got)
	}
	if got := Rank([]string{"a"}, "k", 0); got != nil {
		t.Errorf("Rank(r=0) = %v", got)
	}
	if got := Rank([]string{"a"}, "k", 3); len(got) != 1 || got[0] != "a" {
		t.Errorf("Rank clamps r to member count: %v", got)
	}
	two := Rank([]string{"a", "b"}, "k", 2)
	if len(two) != 2 || two[0] == two[1] {
		t.Errorf("Rank returned duplicates: %v", two)
	}
}
