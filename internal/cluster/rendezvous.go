package cluster

import "sort"

// Rank orders members for key by rendezvous (highest-random-weight)
// hashing and returns the top r, best first. Every node that agrees on
// the member set computes the identical ranking, and removing one
// member only reassigns the keys that member owned — every other key's
// owner is unchanged, which is the property that makes failover cheap:
// no ring to rebalance, no directory to update.
//
// The weight is a 64-bit FNV-1a hash over member\x00key. Keys here are
// already uniformly distributed (they are SHA-256 content hashes), but
// hashing the member in keeps placement balanced even for adversarial
// member names. Ties (vanishingly rare at 64 bits) break by member name
// so the ranking stays total and deterministic.
func Rank(members []string, key string, r int) []string {
	if len(members) == 0 || r <= 0 {
		return nil
	}
	type ranked struct {
		member string
		weight uint64
	}
	rs := make([]ranked, len(members))
	for i, m := range members {
		rs[i] = ranked{m, weigh(m, key)}
	}
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].weight != rs[j].weight {
			return rs[i].weight > rs[j].weight
		}
		return rs[i].member < rs[j].member
	})
	if r > len(rs) {
		r = len(rs)
	}
	out := make([]string, r)
	for i := range out {
		out[i] = rs[i].member
	}
	return out
}

// weigh is FNV-1a 64 over member\x00key, inlined so ranking a key
// allocates nothing beyond the result slice.
func weigh(member, key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(member); i++ {
		h ^= uint64(member[i])
		h *= prime64
	}
	h ^= 0
	h *= prime64
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return h
}
