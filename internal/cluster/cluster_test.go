package cluster

import (
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestProbeStateMachine drives a peer through healthy → suspect → down
// → healthy with a real HTTP target whose readiness is toggled, and
// checks the ring membership tracks it.
func TestProbeStateMachine(t *testing.T) {
	var ready atomic.Bool
	ready.Store(true)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/readyz" {
			t.Errorf("probe hit %s, want /readyz", r.URL.Path)
		}
		if !ready.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	var mu sync.Mutex
	var transitions []State
	c := New(Config{
		Self:          "self:1",
		Peers:         []string{srv.URL}, // scheme is normalized away
		ProbeInterval: 20 * time.Millisecond,
		SuspectAfter:  2,
		DownAfter:     3,
		Logger:        quietLogger(),
		OnState: func(peer string, st State) {
			mu.Lock()
			transitions = append(transitions, st)
			mu.Unlock()
		},
	})
	peerAddr := normalizeAddr(srv.URL)
	c.Start()
	defer c.Close()

	if st := c.PeerState(peerAddr); st != StateHealthy {
		t.Fatalf("initial state = %v, want healthy", st)
	}
	waitFor(t, 2*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(transitions) >= 1 && transitions[0] == StateHealthy
	}, "no initial OnState(healthy) callback")

	ready.Store(false)
	waitFor(t, 5*time.Second, func() bool { return c.PeerState(peerAddr) == StateDown },
		"peer never reached down after consecutive probe failures")
	// Suspect must have been observed on the way down.
	mu.Lock()
	sawSuspect := false
	for _, st := range transitions {
		if st == StateSuspect {
			sawSuspect = true
		}
	}
	mu.Unlock()
	if !sawSuspect {
		t.Error("peer went down without passing through suspect")
	}
	// A down peer leaves the ring; self keeps owning everything.
	if owners := c.Owners("somekey"); len(owners) != 1 || owners[0] != "self:1" {
		t.Errorf("owners with peer down = %v, want [self:1]", owners)
	}

	ready.Store(true)
	waitFor(t, 5*time.Second, func() bool { return c.PeerState(peerAddr) == StateHealthy },
		"peer never recovered to healthy")
	if owners := c.Owners("somekey"); len(owners) != 2 {
		t.Errorf("owners after recovery = %v, want both members", owners)
	}
}

// TestSelfAlwaysInRing pins that self never depends on probing and an
// unknown address owns nothing.
func TestSelfAlwaysInRing(t *testing.T) {
	c := New(Config{Self: "self:1", Peers: []string{"self:1", "dead:2"}, Logger: quietLogger()})
	defer c.Close()
	if c.Size() != 2 {
		t.Fatalf("Size = %d, want 2 (self deduplicated)", c.Size())
	}
	if st := c.PeerState("self:1"); st != StateHealthy {
		t.Errorf("self state = %v", st)
	}
	if st := c.PeerState("nosuch:9"); st != StateDown {
		t.Errorf("unknown peer state = %v, want down", st)
	}
	if !c.IsOwner("any-key-with-replication-2") {
		t.Error("self not an owner with R=2 and 2 members")
	}
}

// TestCloseStopsProbers pins the goroutine lifecycle: Start spawns one
// prober per peer, Close reaps them all, and both are idempotent.
func TestCloseStopsProbers(t *testing.T) {
	before := runtime.NumGoroutine()
	c := New(Config{
		Self:          "self:1",
		Peers:         []string{"dead1:1", "dead2:1", "dead3:1"},
		ProbeInterval: 10 * time.Millisecond,
		ProbeTimeout:  50 * time.Millisecond,
		Logger:        quietLogger(),
	})
	c.Start()
	c.Start() // idempotent
	time.Sleep(50 * time.Millisecond)
	c.Close()
	c.Close() // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Errorf("goroutines after Close: %d, was %d before Start", g, before)
	}
}

// TestOwnersUseHealthView pins that ownership excludes down peers but
// keeps suspect ones (ring stability across probe blips).
func TestOwnersUseHealthView(t *testing.T) {
	c := New(Config{Self: "a:1", Peers: []string{"b:1", "c:1"}, Replication: 2, Logger: quietLogger()})
	defer c.Close()
	key := "0123456789abcdef"
	full := c.Owners(key)
	if len(full) != 2 {
		t.Fatalf("owners = %v, want 2", full)
	}
	// Force b down by hand (the probers are not running).
	for _, p := range c.peers {
		if p.addr == "b:1" {
			p.state.Store(int32(StateDown))
		} else {
			p.state.Store(int32(StateSuspect))
		}
	}
	reduced := c.Owners(key)
	for _, o := range reduced {
		if o == "b:1" {
			t.Fatalf("down peer still owns: %v", reduced)
		}
	}
	if len(reduced) != 2 { // a (self) + c (suspect stays in the ring)
		t.Fatalf("owners with one down = %v, want a and c", reduced)
	}
}
