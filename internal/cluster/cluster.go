// Package cluster turns a fleet of independent fsserve nodes into one
// coherent cache: a static membership list, active health probing, and
// rendezvous (highest-random-weight) hashing that assigns every
// content-addressed cache key a stable owner and replica set. A node
// that does not own a key forwards the request to the node that does,
// so N nodes behind a dumb load balancer re-run an expensive model
// evaluation once fleet-wide instead of once per node — the same dedup
// win the in-process singleflight group gives one node, extended across
// the cluster.
//
// The package is deliberately small and static: no gossip, no leader,
// no dynamic membership. The peer list is configuration; health is
// probed actively against each peer's /readyz with consecutive-failure
// suspect/down states; ownership is a pure function of (healthy
// members, key) that every node computes identically once their health
// views agree. Disagreement is safe by construction — a forwarded
// request carries a hop guard and the receiving node serves it locally
// rather than forwarding again, so differing views cost one extra hop,
// never a loop.
package cluster

import (
	"context"
	"log/slog"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// State is a peer's probed health.
type State int32

const (
	// StateHealthy: the peer answers /readyz probes; it owns its share of
	// the key space and receives forwards.
	StateHealthy State = iota
	// StateSuspect: SuspectAfter consecutive probes failed. The peer
	// stays in the ownership ring (evicting it on a blip would reshuffle
	// keys and dump its working set), but callers should expect forwards
	// to it to fail and fall back.
	StateSuspect
	// StateDown: DownAfter consecutive probes failed. The peer leaves the
	// ownership ring; its keys fail over to the next-ranked members until
	// probes succeed again.
	StateDown
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateSuspect:
		return "suspect"
	case StateDown:
		return "down"
	}
	return "unknown"
}

// Config parameterizes a Cluster. Self and Peers are required; every
// other field documents its default.
type Config struct {
	// Self is this node's address as peers reach it (host:port, the
	// -advertise flag). It is always a ring member and never probed.
	Self string
	// Peers lists every cluster member (host:port each; Self may be
	// included and is filtered out of the probe set). Order is
	// irrelevant: ownership depends only on the set.
	Peers []string
	// Replication is how many ranked owners each key has (0 = default 2,
	// clamped to the member count). The top-ranked healthy owner is the
	// key's primary; the rest are replicas.
	Replication int
	// ProbeInterval is the mean health-probe period per peer; actual
	// waits are jittered uniformly in [0.5, 1.5) of it so a fleet's
	// probes do not synchronize (0 = default 1s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe's HTTP exchange (0 = default 1s).
	ProbeTimeout time.Duration
	// SuspectAfter is the consecutive-failure count that marks a peer
	// suspect (0 = default 2).
	SuspectAfter int
	// DownAfter is the consecutive-failure count that removes a peer from
	// the ownership ring (0 = default 4; it is raised to SuspectAfter
	// when configured below it).
	DownAfter int
	// Client performs the probes (nil = a dedicated client; the probe
	// deadline comes from ProbeTimeout either way).
	Client *http.Client
	// Logger receives state-transition logs (nil = slog.Default()).
	Logger *slog.Logger
	// Seed seeds the probe jitter (0 = 1). Jitter is cosmetic — it only
	// de-synchronizes probe timing — but a fixed seed keeps tests
	// deterministic.
	Seed int64
	// OnProbe, when non-nil, observes every probe result (metrics hook).
	OnProbe func(peer string, ok bool)
	// OnState, when non-nil, observes every state transition, and the
	// initial StateHealthy of each peer at Start (metrics hook).
	OnState func(peer string, st State)
}

func (c Config) withDefaults() Config {
	if c.Replication <= 0 {
		c.Replication = 2
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 2
	}
	if c.DownAfter <= 0 {
		c.DownAfter = 4
	}
	if c.DownAfter < c.SuspectAfter {
		c.DownAfter = c.SuspectAfter
	}
	if c.Client == nil {
		c.Client = &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 2}}
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// peer is one probed cluster member. state is the only cross-goroutine
// field (the prober writes it, request paths read it); fails is the
// prober's private consecutive-failure counter.
type peer struct {
	addr  string
	state atomic.Int32
	fails int
}

// Cluster is the membership + ownership view of one node. Create with
// New, begin probing with Start, stop with Close.
type Cluster struct {
	cfg   Config
	self  string
	peers []*peer // every member except self, in normalized order

	stop    chan struct{}
	wg      sync.WaitGroup
	started atomic.Bool
	closed  sync.Once
}

// normalizeAddr strips an http:// or https:// scheme: members are
// identified by host:port and the transport is plain HTTP (the cluster
// is an internal mesh).
func normalizeAddr(a string) string {
	a = strings.TrimPrefix(a, "http://")
	a = strings.TrimPrefix(a, "https://")
	return strings.TrimSuffix(strings.TrimSpace(a), "/")
}

// New builds a Cluster from cfg. Probing does not begin until Start.
func New(cfg Config) *Cluster {
	cfg = cfg.withDefaults()
	self := normalizeAddr(cfg.Self)
	seen := map[string]bool{self: true}
	c := &Cluster{cfg: cfg, self: self, stop: make(chan struct{})}
	for _, p := range cfg.Peers {
		a := normalizeAddr(p)
		if a == "" || seen[a] {
			continue
		}
		seen[a] = true
		c.peers = append(c.peers, &peer{addr: a})
	}
	return c
}

// Self returns this node's normalized advertise address.
func (c *Cluster) Self() string { return c.self }

// Size returns the total member count including self.
func (c *Cluster) Size() int { return len(c.peers) + 1 }

// Replication returns the effective replica count per key.
func (c *Cluster) Replication() int { return min(c.cfg.Replication, c.Size()) }

// Start launches one probe goroutine per peer. Peers start healthy (a
// cold-starting cluster must route before the first probe lands), and
// OnState observes that initial state. Start is idempotent.
func (c *Cluster) Start() {
	if !c.started.CompareAndSwap(false, true) {
		return
	}
	for i, p := range c.peers {
		if c.cfg.OnState != nil {
			c.cfg.OnState(p.addr, StateHealthy)
		}
		c.wg.Add(1)
		go c.probeLoop(p, rand.New(rand.NewSource(c.cfg.Seed+int64(i))))
	}
}

// Close stops the probe goroutines and waits for them to exit. Safe to
// call multiple times and before Start.
func (c *Cluster) Close() {
	c.closed.Do(func() { close(c.stop) })
	c.wg.Wait()
}

// probeLoop probes one peer forever at the jittered interval.
func (c *Cluster) probeLoop(p *peer, rng *rand.Rand) {
	defer c.wg.Done()
	timer := time.NewTimer(c.jitter(rng))
	defer timer.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-timer.C:
		}
		c.probe(p)
		timer.Reset(c.jitter(rng))
	}
}

// jitter draws one probe wait: uniform in [0.5, 1.5) of ProbeInterval.
func (c *Cluster) jitter(rng *rand.Rand) time.Duration {
	half := c.cfg.ProbeInterval / 2
	return half + time.Duration(rng.Int63n(int64(c.cfg.ProbeInterval)))
}

// probe performs one /readyz exchange and folds the result into the
// peer's consecutive-failure state machine. A draining node answers 503
// (never 200), so peers route around a node the moment it begins
// shutdown, not when its socket closes.
func (c *Cluster) probe(p *peer) {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ProbeTimeout)
	defer cancel()
	ok := false
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+p.addr+"/readyz", nil)
	if err == nil {
		resp, rerr := c.cfg.Client.Do(req)
		if rerr == nil {
			resp.Body.Close()
			ok = resp.StatusCode == http.StatusOK
		}
	}
	if c.cfg.OnProbe != nil {
		c.cfg.OnProbe(p.addr, ok)
	}
	if ok {
		p.fails = 0
	} else {
		p.fails++
	}
	next := StateHealthy
	switch {
	case p.fails >= c.cfg.DownAfter:
		next = StateDown
	case p.fails >= c.cfg.SuspectAfter:
		next = StateSuspect
	}
	prev := State(p.state.Swap(int32(next)))
	if prev != next {
		c.cfg.Logger.Info("cluster peer state change",
			"peer", p.addr, "from", prev.String(), "to", next.String(), "consecutive_failures", p.fails)
		if c.cfg.OnState != nil {
			c.cfg.OnState(p.addr, next)
		}
	}
}

// PeerState returns addr's probed state; self is always healthy, and an
// unknown address reports down (it owns nothing).
func (c *Cluster) PeerState(addr string) State {
	addr = normalizeAddr(addr)
	if addr == c.self {
		return StateHealthy
	}
	for _, p := range c.peers {
		if p.addr == addr {
			return State(p.state.Load())
		}
	}
	return StateDown
}

// States snapshots every member's state (self included, always
// healthy), for readiness endpoints and tests.
func (c *Cluster) States() map[string]State {
	m := make(map[string]State, c.Size())
	m[c.self] = StateHealthy
	for _, p := range c.peers {
		m[p.addr] = State(p.state.Load())
	}
	return m
}

// members returns the current ownership ring: self plus every peer not
// probed down. Suspect peers stay in the ring — evicting a member on
// two flaky probes would reshuffle its keys and dump its cache; the
// forwarding layer's fallback handles the (possibly brief) failures.
func (c *Cluster) members() []string {
	ms := make([]string, 0, c.Size())
	ms = append(ms, c.self)
	for _, p := range c.peers {
		if State(p.state.Load()) != StateDown {
			ms = append(ms, p.addr)
		}
	}
	return ms
}

// Owners returns key's ranked owner set among current ring members: the
// top-Replication members by rendezvous weight, best first. The first
// entry is the key's primary (the node that evaluates on a fleet-wide
// miss); the rest are replicas. Every node with the same health view
// computes the same slice, and the result is never empty (self is
// always a member).
func (c *Cluster) Owners(key string) []string {
	return Rank(c.members(), key, c.Replication())
}

// IsOwner reports whether this node is in key's owner set.
func (c *Cluster) IsOwner(key string) bool {
	for _, o := range c.Owners(key) {
		if o == c.self {
			return true
		}
	}
	return false
}
