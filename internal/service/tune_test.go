package service

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/faultinject"
)

func decodeTune(t *testing.T, body []byte) TuneResponse {
	t.Helper()
	var resp TuneResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("invalid tune response: %v\n%s", err, body)
	}
	return resp
}

// TestTuneEndpoint pins the happy path and the cache contract: a full
// tuning run over the chunk-1 victim, then a byte-identical replay from
// the cache (phase timings included — cached bytes are served verbatim).
func TestTuneEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	if s.breakers[endpointTune] == nil {
		t.Fatal("tune endpoint has no circuit breaker")
	}

	w := post(t, s, "/v1/tune", TuneRequest{Source: victimSrc})
	if w.Code != 200 {
		t.Fatalf("status = %d: %s", w.Code, w.Body.String())
	}
	if got := w.Header().Get("X-Cache"); got != "miss" {
		t.Errorf("X-Cache = %q, want miss", got)
	}
	resp := decodeTune(t, w.Body.Bytes())
	if resp.Degraded || resp.Report == nil {
		t.Fatalf("want a full report, got degraded=%v report=%v", resp.Degraded, resp.Report)
	}
	rep := resp.Report
	if !rep.Baseline.Verified || !rep.Chosen.Verified {
		t.Errorf("baseline/chosen not verified: %v/%v", rep.Baseline.Verified, rep.Chosen.Verified)
	}
	if rep.Baseline.SimulatedFS == 0 {
		t.Error("chunk-1 victim has no baseline FS")
	}
	if rep.NoOp || rep.Chosen.SimulatedFS != 0 {
		t.Errorf("victim not cleaned: plan %q, FS %d", rep.PlanSummary, rep.Chosen.SimulatedFS)
	}
	if !strings.Contains(rep.Source, rep.PlanSummary) && !strings.Contains(rep.PlanSummary, "pad") {
		t.Errorf("transformed source does not carry plan %q:\n%s", rep.PlanSummary, rep.Source)
	}
	m := s.Metrics()
	if m.TuneCandidates.Value() == 0 {
		t.Error("TuneCandidates not counted")
	}
	if m.TunePhase.Count() < 4 {
		t.Errorf("TunePhase observations = %d, want >= 4 (one per phase)", m.TunePhase.Count())
	}

	// Replay: byte-identical from cache.
	w2 := post(t, s, "/v1/tune", TuneRequest{Source: victimSrc})
	if w2.Code != 200 || w2.Header().Get("X-Cache") != "hit" {
		t.Fatalf("replay: status=%d X-Cache=%q, want 200/hit", w2.Code, w2.Header().Get("X-Cache"))
	}
	if w.Body.String() != w2.Body.String() {
		t.Error("cached replay is not byte-identical")
	}
	// The replay ran no search: candidate and phase metrics are unchanged.
	if m.TuneCandidates.Value() != int64(len(rep.Candidates)) {
		t.Errorf("replay re-ran the search: TuneCandidates = %d, want %d",
			m.TuneCandidates.Value(), len(rep.Candidates))
	}
}

// TestTuneKernel tunes a built-in kernel by name.
func TestTuneKernel(t *testing.T) {
	s := newTestServer(t, Config{})
	w := post(t, s, "/v1/tune", TuneRequest{Kernel: "linreg", Threads: 8})
	if w.Code != 200 {
		t.Fatalf("status = %d: %s", w.Code, w.Body.String())
	}
	resp := decodeTune(t, w.Body.Bytes())
	if resp.File != "<kernel:linreg>" || resp.Report == nil {
		t.Fatalf("file=%q report=%v", resp.File, resp.Report != nil)
	}
}

// TestTuneBadRequests: every invalid request is a 400, including input
// problems only the tuner itself can see (sequential nests, symbolic
// bounds) — never a degraded answer, never a 500.
func TestTuneBadRequests(t *testing.T) {
	s := newTestServer(t, Config{})
	cases := []struct {
		name string
		req  TuneRequest
	}{
		{"empty", TuneRequest{}},
		{"both inputs", TuneRequest{Source: victimSrc, Kernel: "heat"}},
		{"bad machine", TuneRequest{Source: victimSrc, Machine: "cray1"}},
		{"bad kernel", TuneRequest{Kernel: "nope"}},
		{"negative nest", TuneRequest{Source: victimSrc, Nest: -1}},
		{"nest out of range", TuneRequest{Source: victimSrc, Nest: 3}},
		{"beam too wide", TuneRequest{Source: victimSrc, Beam: maxTuneBeam + 1}},
		{"candidates too many", TuneRequest{Source: victimSrc, MaxCandidates: maxTuneCandidates + 1}},
		{"threads out of range", TuneRequest{Source: victimSrc, Threads: maxThreads + 1}},
		{"unparsable", TuneRequest{Source: "for ("}},
		{"sequential", TuneRequest{Source: "double a[8];\nfor (i = 0; i < 8; i++) a[i] = 0.0;\n"}},
		{"symbolic bounds", TuneRequest{Source: "double a[8];\n#pragma omp parallel for\nfor (i = 0; i < n; i++) a[i] = 0.0;\n"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if w := post(t, s, "/v1/tune", tc.req); w.Code != 400 {
				t.Errorf("status = %d, want 400: %s", w.Code, w.Body.String())
			}
		})
	}
	if got := s.Metrics().Degraded.Total(); got != 0 {
		t.Errorf("bad requests degraded %d times; they must pass through as 400s", got)
	}
}

// TestDegradedTune pins the fallback: an injected evaluator fault yields
// 200 with the closed-form single-fix suggestion, marked degraded and
// never cached; the recovered evaluator then serves the full report.
func TestDegradedTune(t *testing.T) {
	faultinject.Enable()
	defer faultinject.Reset()
	faultinject.Arm("service.evaluate", faultinject.Fault{Kind: faultinject.KindError, MaxFires: 1})

	s := newTestServer(t, Config{})
	w := post(t, s, "/v1/tune", TuneRequest{Source: victimSrc})
	if w.Code != 200 {
		t.Fatalf("status = %d, want 200 (degraded, never 500): %s", w.Code, w.Body.String())
	}
	if got := w.Header().Get("X-Cache"); got != "degraded" {
		t.Errorf("X-Cache = %q, want degraded", got)
	}
	resp := decodeTune(t, w.Body.Bytes())
	if !resp.Degraded || resp.DegradedReason != "internal" {
		t.Fatalf("degraded=%v reason=%q, want true/internal", resp.Degraded, resp.DegradedReason)
	}
	if resp.Report != nil {
		t.Error("degraded response carries an unverified report")
	}
	if resp.ClosedForm == nil || !strings.HasPrefix(resp.ClosedForm.Plan, "schedule(static,") {
		t.Fatalf("closed_form = %+v, want a chunk suggestion for the chunk-1 victim", resp.ClosedForm)
	}
	if resp.ClosedForm.Findings == 0 {
		t.Error("closed-form fallback reports no findings on the FS victim")
	}
	if got := s.Metrics().Degraded.With(endpointTune, "internal").Value(); got != 1 {
		t.Errorf("Degraded{tune,internal} = %d, want 1", got)
	}

	// Fault exhausted: the same request now runs the full search — proof
	// the degraded body was not cached.
	w2 := post(t, s, "/v1/tune", TuneRequest{Source: victimSrc})
	if w2.Code != 200 || w2.Header().Get("X-Cache") != "miss" {
		t.Fatalf("recovered: status=%d X-Cache=%q, want 200/miss", w2.Code, w2.Header().Get("X-Cache"))
	}
	if resp2 := decodeTune(t, w2.Body.Bytes()); resp2.Degraded || resp2.Report == nil {
		t.Errorf("recovered response still degraded: %+v", resp2)
	}
}

// TestDegradedTuneOnPanicAndBudget: the other internal-failure classes
// degrade the same way.
func TestDegradedTuneOnPanicAndBudget(t *testing.T) {
	faultinject.Enable()
	defer faultinject.Reset()
	faultinject.Arm("service.evaluate", faultinject.Fault{Kind: faultinject.KindPanic, MaxFires: 1})

	s := newTestServer(t, Config{})
	w := post(t, s, "/v1/tune", TuneRequest{Source: victimSrc})
	if w.Code != 200 {
		t.Fatalf("panic: status = %d: %s", w.Code, w.Body.String())
	}
	if resp := decodeTune(t, w.Body.Bytes()); !resp.Degraded || resp.DegradedReason != "panic" {
		t.Fatalf("degraded=%v reason=%q, want true/panic", resp.Degraded, resp.DegradedReason)
	}

	// A step budget too small for the search degrades with reason budget.
	sb := newTestServer(t, Config{MaxEvalSteps: 1})
	w2 := post(t, sb, "/v1/tune", TuneRequest{Kernel: "heat", Threads: 8})
	if w2.Code != 200 {
		t.Fatalf("budget: status = %d: %s", w2.Code, w2.Body.String())
	}
	if resp := decodeTune(t, w2.Body.Bytes()); !resp.Degraded || resp.DegradedReason != "budget" {
		t.Fatalf("degraded=%v reason=%q, want true/budget", resp.Degraded, resp.DegradedReason)
	}
}
