package service

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value reads the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket latency histogram in seconds.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds; an implicit +Inf bucket follows
	counts []int64   // len(bounds)+1
	sum    float64
	count  int64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]int64, len(bounds)+1)}
}

// defLatencyBuckets spans sub-millisecond cache hits to multi-second
// sweeps.
func defLatencyBuckets() []float64 {
	return []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.sum += v
	h.count++
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// LabeledCounter is a family of counters distinguished by label values
// (e.g. requests by endpoint and status code).
type LabeledCounter struct {
	labels []string // label names, fixed at construction
	mu     sync.Mutex
	vals   map[string]*Counter // key = joined label values
}

func newLabeledCounter(labels ...string) *LabeledCounter {
	return &LabeledCounter{labels: labels, vals: make(map[string]*Counter)}
}

// With returns the counter for the given label values (created on first
// use). len(values) must equal the number of label names.
func (l *LabeledCounter) With(values ...string) *Counter {
	if len(values) != len(l.labels) {
		panic(fmt.Sprintf("metrics: %d label values for %d labels", len(values), len(l.labels)))
	}
	key := ""
	for i, v := range values {
		if i > 0 {
			key += "\x00"
		}
		key += v
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	c, ok := l.vals[key]
	if !ok {
		c = &Counter{}
		l.vals[key] = c
	}
	return c
}

// Total sums the family across all label values.
func (l *LabeledCounter) Total() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var t int64
	for _, c := range l.vals {
		t += c.Value()
	}
	return t
}

// LabeledGauge is a family of gauges distinguished by label values
// (e.g. per-peer cluster health).
type LabeledGauge struct {
	labels []string
	mu     sync.Mutex
	vals   map[string]*Gauge
}

func newLabeledGauge(labels ...string) *LabeledGauge {
	return &LabeledGauge{labels: labels, vals: make(map[string]*Gauge)}
}

// With returns the gauge for the given label values (created on first
// use). len(values) must equal the number of label names.
func (l *LabeledGauge) With(values ...string) *Gauge {
	if len(values) != len(l.labels) {
		panic(fmt.Sprintf("metrics: %d label values for %d labels", len(values), len(l.labels)))
	}
	key := ""
	for i, v := range values {
		if i > 0 {
			key += "\x00"
		}
		key += v
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	g, ok := l.vals[key]
	if !ok {
		g = &Gauge{}
		l.vals[key] = g
	}
	return g
}

func (l *LabeledGauge) write(w io.Writer, name string) {
	l.mu.Lock()
	keys := make([]string, 0, len(l.vals))
	for k := range l.vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	type kv struct {
		key string
		val int64
	}
	rows := make([]kv, len(keys))
	for i, k := range keys {
		rows[i] = kv{k, l.vals[k].Value()}
	}
	l.mu.Unlock()
	for _, r := range rows {
		fmt.Fprintf(w, "%s{", name)
		for i, v := range splitKey(r.key, len(l.labels)) {
			if i > 0 {
				io.WriteString(w, ",")
			}
			fmt.Fprintf(w, "%s=%q", l.labels[i], v)
		}
		fmt.Fprintf(w, "} %d\n", r.val)
	}
}

// LabeledHistogram is a family of histograms distinguished by label
// values (e.g. evaluation latency by endpoint and evaluation mode).
type LabeledHistogram struct {
	labels []string
	bounds []float64
	mu     sync.Mutex
	vals   map[string]*Histogram
}

func newLabeledHistogram(bounds []float64, labels ...string) *LabeledHistogram {
	return &LabeledHistogram{labels: labels, bounds: bounds, vals: make(map[string]*Histogram)}
}

// With returns the histogram for the given label values (created on
// first use). len(values) must equal the number of label names.
func (l *LabeledHistogram) With(values ...string) *Histogram {
	if len(values) != len(l.labels) {
		panic(fmt.Sprintf("metrics: %d label values for %d labels", len(values), len(l.labels)))
	}
	key := ""
	for i, v := range values {
		if i > 0 {
			key += "\x00"
		}
		key += v
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	h, ok := l.vals[key]
	if !ok {
		h = newHistogram(l.bounds)
		l.vals[key] = h
	}
	return h
}

// Count returns the number of observations across all label values.
func (l *LabeledHistogram) Count() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var t int64
	for _, h := range l.vals {
		t += h.Count()
	}
	return t
}

// Metrics is the server's metric set, rendered in Prometheus text
// exposition format by WritePrometheus. Everything is hand-rolled on the
// stdlib: counters and gauges are atomics, histograms are fixed buckets
// under a mutex.
type Metrics struct {
	// Requests counts finished HTTP requests by endpoint and status code.
	Requests *LabeledCounter
	// CacheHits / CacheMisses count result-cache outcomes; Coalesced
	// counts requests that joined an identical in-flight evaluation
	// instead of starting their own; Evaluations counts actual model
	// evaluations (misses that led).
	CacheHits   *Counter
	CacheMisses *Counter
	Coalesced   *Counter
	Evaluations *Counter
	// QueueRejects counts every request turned away with 429: full
	// queue, quota and queue-deadline rejections alike (the historical
	// name predates the finer-grained counters below, which partition
	// the non-queue-full slices).
	QueueRejects *Counter
	// DeadlineEvictions counts queued requests rejected because their
	// deadline could not be met by the estimated queue drain time.
	DeadlineEvictions *Counter
	// QuotaRejects counts requests rejected by a per-client quota.
	QuotaRejects *Counter
	// LimitChanges counts adaptive-limit moves by direction
	// ("increase"/"decrease").
	LimitChanges *LabeledCounter
	// Degraded counts requests answered by the closed-form fallback
	// instead of the full evaluator, by endpoint and reason
	// ("breaker-open", "panic", "budget", "deadline", "internal").
	Degraded *LabeledCounter
	// EvalPanics counts evaluator panics converted to errors by the
	// guard recover wrappers.
	EvalPanics *Counter
	// CacheEntries is the current result-cache size; QueueDepth is the
	// number of requests waiting for an evaluation slot; Inflight is the
	// number of evaluations currently running; AdmissionLimit is the
	// current adaptive concurrency limit.
	CacheEntries   *Gauge
	QueueDepth     *Gauge
	Inflight       *Gauge
	AdmissionLimit *Gauge
	// Snapshot accounting: Restored/Salvage-dropped record counts from
	// the last startup load, write/write-error counts since start, and
	// the age of the newest on-disk snapshot (set at scrape time; -1
	// until a snapshot exists).
	SnapshotRestored    *Counter
	SnapshotDropped     *Counter
	SnapshotWrites      *Counter
	SnapshotWriteErrors *Counter
	SnapshotAgeSeconds  *Gauge
	// EvalLatency observes model-evaluation wall time by endpoint and the
	// evaluation mode that actually ran ("compiled", "interpreted",
	// "closed-form"); RequestLatency observes whole-request wall time
	// (including cache hits).
	EvalLatency    *LabeledHistogram
	RequestLatency *Histogram
	// TuneCandidates counts candidate plans the tuner fast-tier scored;
	// TunePhase observes tuner search-stage wall time by phase
	// ("enumerate", "score", "verify", "apply").
	TuneCandidates *Counter
	TunePhase      *LabeledHistogram
	// Cluster metrics. ClusterForwards counts proxied requests by peer
	// and outcome ("ok", "hedged", "client-error", "backpressure",
	// "error"); ClusterForwardLatency observes forward round-trip wall
	// time; ClusterPeerHealthy is 1/0 per probed peer; ClusterProbes
	// counts probe exchanges by peer and outcome ("ok"/"fail").
	ClusterForwards       *LabeledCounter
	ClusterForwardLatency *Histogram
	ClusterPeerHealthy    *LabeledGauge
	ClusterProbes         *LabeledCounter
	// Peer cache fill accounting: FillHits/FillMisses count replica
	// lookups on local misses; FillPushes counts entries pushed to the
	// other replica after a local evaluation; FillDrops counts pushes
	// dropped because the bounded push queue was full.
	ClusterFillHits   *Counter
	ClusterFillMisses *Counter
	ClusterFillPushes *Counter
	ClusterFillDrops  *Counter
}

// NewMetrics constructs an empty metric set.
func NewMetrics() *Metrics {
	return &Metrics{
		Requests:            newLabeledCounter("endpoint", "code"),
		CacheHits:           &Counter{},
		CacheMisses:         &Counter{},
		Coalesced:           &Counter{},
		Evaluations:         &Counter{},
		QueueRejects:        &Counter{},
		DeadlineEvictions:   &Counter{},
		QuotaRejects:        &Counter{},
		LimitChanges:        newLabeledCounter("direction"),
		Degraded:            newLabeledCounter("endpoint", "reason"),
		EvalPanics:          &Counter{},
		CacheEntries:        &Gauge{},
		QueueDepth:          &Gauge{},
		Inflight:            &Gauge{},
		AdmissionLimit:      &Gauge{},
		SnapshotRestored:    &Counter{},
		SnapshotDropped:     &Counter{},
		SnapshotWrites:      &Counter{},
		SnapshotWriteErrors: &Counter{},
		SnapshotAgeSeconds:  &Gauge{},
		EvalLatency:         newLabeledHistogram(defLatencyBuckets(), "endpoint", "mode"),
		RequestLatency:      newHistogram(defLatencyBuckets()),
		TuneCandidates:      &Counter{},
		TunePhase:           newLabeledHistogram(defLatencyBuckets(), "phase"),

		ClusterForwards:       newLabeledCounter("peer", "outcome"),
		ClusterForwardLatency: newHistogram(defLatencyBuckets()),
		ClusterPeerHealthy:    newLabeledGauge("peer"),
		ClusterProbes:         newLabeledCounter("peer", "outcome"),
		ClusterFillHits:       &Counter{},
		ClusterFillMisses:     &Counter{},
		ClusterFillPushes:     &Counter{},
		ClusterFillDrops:      &Counter{},
	}
}

func writeHeader(w io.Writer, name, typ, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func (l *LabeledCounter) write(w io.Writer, name string) {
	l.mu.Lock()
	keys := make([]string, 0, len(l.vals))
	for k := range l.vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	type kv struct {
		key string
		val int64
	}
	rows := make([]kv, len(keys))
	for i, k := range keys {
		rows[i] = kv{k, l.vals[k].Value()}
	}
	l.mu.Unlock()
	for _, r := range rows {
		fmt.Fprintf(w, "%s{", name)
		for i, v := range splitKey(r.key, len(l.labels)) {
			if i > 0 {
				io.WriteString(w, ",")
			}
			fmt.Fprintf(w, "%s=%q", l.labels[i], v)
		}
		fmt.Fprintf(w, "} %d\n", r.val)
	}
}

func splitKey(key string, n int) []string {
	parts := make([]string, 0, n)
	start := 0
	for i := 0; i < len(key); i++ {
		if key[i] == '\x00' {
			parts = append(parts, key[start:i])
			start = i + 1
		}
	}
	return append(parts, key[start:])
}

func (h *Histogram) write(w io.Writer, name string) { h.writeLabeled(w, name, "") }

// writeLabeled renders the histogram with an optional label prefix
// (rendered inside every series' braces, before le).
func (h *Histogram) writeLabeled(w io.Writer, name, labels string) {
	h.mu.Lock()
	bounds := h.bounds
	counts := append([]int64(nil), h.counts...)
	sum, count := h.sum, h.count
	h.mu.Unlock()
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum int64
	for i, b := range bounds {
		cum += counts[i]
		fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", name, labels, sep, formatFloat(b), cum)
	}
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, count)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(sum))
		fmt.Fprintf(w, "%s_count %d\n", name, count)
		return
	}
	fmt.Fprintf(w, "%s_sum{%s} %s\n", name, labels, formatFloat(sum))
	fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, count)
}

func (l *LabeledHistogram) write(w io.Writer, name string) {
	l.mu.Lock()
	keys := make([]string, 0, len(l.vals))
	for k := range l.vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	hs := make([]*Histogram, len(keys))
	for i, k := range keys {
		hs[i] = l.vals[k]
	}
	l.mu.Unlock()
	for i, k := range keys {
		labels := ""
		for j, v := range splitKey(k, len(l.labels)) {
			if j > 0 {
				labels += ","
			}
			labels += fmt.Sprintf("%s=%q", l.labels[j], v)
		}
		hs[i].writeLabeled(w, name, labels)
	}
}

// WritePrometheus renders every metric in Prometheus text exposition
// format (version 0.0.4), deterministically ordered.
func (m *Metrics) WritePrometheus(w io.Writer) {
	writeHeader(w, "fsserve_requests_total", "counter", "Finished HTTP requests by endpoint and status code.")
	m.Requests.write(w, "fsserve_requests_total")

	for _, c := range []struct {
		name, help string
		c          *Counter
	}{
		{"fsserve_cache_hits_total", "Analyses served from the result cache.", m.CacheHits},
		{"fsserve_cache_misses_total", "Analyses not found in the result cache.", m.CacheMisses},
		{"fsserve_dedup_coalesced_total", "Requests coalesced onto an identical in-flight evaluation.", m.Coalesced},
		{"fsserve_evaluations_total", "Model evaluations actually performed.", m.Evaluations},
		{"fsserve_queue_rejects_total", "Requests rejected with 429 (full queue, quota, or unmeetable deadline).", m.QueueRejects},
		{"fsserve_queue_deadline_evictions_total", "Requests rejected because their deadline could not outlast the queue.", m.DeadlineEvictions},
		{"fsserve_quota_rejects_total", "Requests rejected by a per-client quota.", m.QuotaRejects},
		{"fsserve_eval_panics_total", "Evaluator panics converted to errors by the guard wrappers.", m.EvalPanics},
		{"fsserve_snapshot_records_restored_total", "Cache records restored from the startup snapshot.", m.SnapshotRestored},
		{"fsserve_snapshot_records_dropped_total", "Snapshot records dropped at load (corrupt, truncated, or version-skewed).", m.SnapshotDropped},
		{"fsserve_snapshot_writes_total", "Cache snapshots written successfully.", m.SnapshotWrites},
		{"fsserve_snapshot_write_errors_total", "Cache snapshot writes that failed.", m.SnapshotWriteErrors},
	} {
		writeHeader(w, c.name, "counter", c.help)
		fmt.Fprintf(w, "%s %d\n", c.name, c.c.Value())
	}

	writeHeader(w, "fsserve_admission_limit_changes_total", "counter", "Adaptive concurrency-limit moves, by direction.")
	m.LimitChanges.write(w, "fsserve_admission_limit_changes_total")

	writeHeader(w, "fsserve_degraded_total", "counter", "Requests answered by the closed-form fallback, by endpoint and reason.")
	m.Degraded.write(w, "fsserve_degraded_total")

	for _, g := range []struct {
		name, help string
		g          *Gauge
	}{
		{"fsserve_cache_entries", "Entries currently in the result cache.", m.CacheEntries},
		{"fsserve_queue_depth", "Requests currently waiting for an evaluation slot.", m.QueueDepth},
		{"fsserve_inflight_evaluations", "Model evaluations currently running.", m.Inflight},
		{"fsserve_admission_limit", "Current adaptive concurrency limit (ceiling = -concurrency).", m.AdmissionLimit},
		{"fsserve_snapshot_age_seconds", "Age of the newest on-disk cache snapshot (-1 until one exists).", m.SnapshotAgeSeconds},
	} {
		writeHeader(w, g.name, "gauge", g.help)
		fmt.Fprintf(w, "%s %d\n", g.name, g.g.Value())
	}

	writeHeader(w, "fsserve_tune_candidates_total", "counter", "Candidate plans scored by the auto-tuner's fast tier.")
	fmt.Fprintf(w, "fsserve_tune_candidates_total %d\n", m.TuneCandidates.Value())

	writeHeader(w, "fsserve_eval_seconds", "histogram", "Model evaluation latency in seconds, by endpoint and evaluation mode.")
	m.EvalLatency.write(w, "fsserve_eval_seconds")
	writeHeader(w, "fsserve_request_seconds", "histogram", "Whole-request latency in seconds.")
	m.RequestLatency.write(w, "fsserve_request_seconds")
	writeHeader(w, "fsserve_tune_search_seconds", "histogram", "Auto-tuner search-stage wall time in seconds, by phase.")
	m.TunePhase.write(w, "fsserve_tune_search_seconds")

	writeHeader(w, "fsserve_cluster_forwards_total", "counter", "Requests proxied to a cluster peer, by peer and outcome.")
	m.ClusterForwards.write(w, "fsserve_cluster_forwards_total")
	writeHeader(w, "fsserve_cluster_probes_total", "counter", "Peer health-probe exchanges, by peer and outcome.")
	m.ClusterProbes.write(w, "fsserve_cluster_probes_total")
	writeHeader(w, "fsserve_cluster_peer_healthy", "gauge", "Per-peer probed health (1 = healthy, 0 = suspect or down).")
	m.ClusterPeerHealthy.write(w, "fsserve_cluster_peer_healthy")
	for _, c := range []struct {
		name, help string
		c          *Counter
	}{
		{"fsserve_cluster_fill_hits_total", "Local cache misses answered by a replica peer lookup.", m.ClusterFillHits},
		{"fsserve_cluster_fill_misses_total", "Replica peer lookups that found nothing.", m.ClusterFillMisses},
		{"fsserve_cluster_fill_pushes_total", "Cache entries pushed to replica peers after local evaluations.", m.ClusterFillPushes},
		{"fsserve_cluster_fill_dropped_total", "Replica pushes dropped because the bounded push queue was full.", m.ClusterFillDrops},
	} {
		writeHeader(w, c.name, "counter", c.help)
		fmt.Fprintf(w, "%s %d\n", c.name, c.c.Value())
	}
	writeHeader(w, "fsserve_cluster_forward_seconds", "histogram", "Forwarded-request round-trip latency in seconds.")
	m.ClusterForwardLatency.write(w, "fsserve_cluster_forward_seconds")
}
