package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"

	"repro"
	"repro/internal/admission"
	"repro/internal/faultinject"
	"repro/internal/guard"
	"repro/internal/kernels"
	"repro/internal/sweep"
)

// writeJSON writes v with the canonical headers.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

// writeError writes the error envelope for err, attaching Retry-After to
// backpressure statuses.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	ae := s.apiErrorFor(err)
	if ae.RetryAfterSeconds > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(ae.RetryAfterSeconds))
	}
	if ae.Code == http.StatusTooManyRequests {
		s.metrics.QueueRejects.Inc()
	}
	writeJSON(w, ae.Code, map[string]*APIError{"error": ae})
}

// apiErrorFor maps err to the wire error shape, deriving Retry-After for
// backpressure statuses: quota and queue-deadline rejections carry their
// own estimates (when the bucket refills; when the queue drains), the
// rest fall back to pool saturation + jitter.
func (s *Server) apiErrorFor(err error) *APIError {
	status := statusFor(err)
	ae := &APIError{Code: status, Message: err.Error()}
	if status != http.StatusTooManyRequests && status != http.StatusServiceUnavailable {
		return ae
	}
	var qe *quotaError
	var de *admission.DeadlineError
	switch {
	case errors.As(err, &qe):
		ae.RetryAfterSeconds = qe.retryAfter
	case errors.As(err, &de):
		ae.RetryAfterSeconds = ceilSeconds(de.EstimatedWait)
	default:
		ae.RetryAfterSeconds = s.retryAfterSeconds()
	}
	return ae
}

// ceilSeconds rounds d up to whole seconds, minimum 1 (a zero
// Retry-After invites an immediate retry).
func ceilSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// retryAfterSeconds derives a Retry-After value from the evaluation
// pool's saturation with full jitter on top: a deeper wait queue pushes
// the base up (1s empty to 4s full) and the jitter doubles the spread,
// so a herd of rejected clients comes back staggered instead of
// re-colliding on the same second. The jitter source is seeded
// (Config.Seed), keeping test runs reproducible.
func (s *Server) retryAfterSeconds() int {
	st := s.limiter.stats()
	base := 1
	if st.maxWait > 0 {
		base += (3 * st.waiting) / st.maxWait
	}
	s.jitterMu.Lock()
	j := s.jitter.Intn(base + 1)
	s.jitterMu.Unlock()
	return base + j
}

// clientKey identifies a client for quota accounting: the X-API-Key
// header when present (callers sharing a NAT can differentiate
// themselves), else the remote host.
func clientKey(r *http.Request) string {
	if k := r.Header.Get("X-API-Key"); k != "" {
		return k
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// admitClient charges the request to its client's quota bucket. A nil
// error admits; a *quotaError rejects with the refill-derived
// Retry-After.
func (s *Server) admitClient(r *http.Request) error {
	if s.cluster != nil && r.Header.Get(headerForwarded) != "" {
		// The edge node already charged the originating client's quota;
		// charging again here would bill intra-cluster hops to the peer.
		return nil
	}
	ok, retry := s.quotas.Allow(clientKey(r))
	if ok {
		return nil
	}
	s.metrics.QuotaRejects.Inc()
	return &quotaError{retryAfter: ceilSeconds(retry)}
}

// requestContext derives the evaluation context: the configured request
// timeout, tightened by the client's X-Request-Deadline header (a Go
// duration like "250ms", or an absolute RFC3339 time). The deadline
// propagates end to end — through queue admission (where an unmeetable
// deadline is evicted immediately) into guard.Budget.Deadline inside
// the evaluator. The header can only tighten the server's timeout,
// never extend it.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc, error) {
	timeout := s.cfg.RequestTimeout
	if h := r.Header.Get("X-Request-Deadline"); h != "" {
		d, err := time.ParseDuration(h)
		if err != nil {
			t, terr := time.Parse(time.RFC3339, h)
			if terr != nil {
				return nil, nil, badRequestf("invalid X-Request-Deadline %q: use a Go duration (\"250ms\") or an RFC3339 time", h)
			}
			d = time.Until(t)
		}
		if d <= 0 {
			return nil, nil, &apiError{status: http.StatusGatewayTimeout, msg: "X-Request-Deadline already expired"}
		}
		if d < timeout {
			timeout = d
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	return ctx, cancel, nil
}

// decodeBody decodes the JSON request body under the configured size
// limit, distinguishing oversized bodies (413) from malformed ones (400).
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return &apiError{status: http.StatusRequestEntityTooLarge,
				msg: fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit)}
		}
		return badRequestf("invalid JSON body: %v", err)
	}
	return nil
}

// handleAnalyze serves POST /v1/analyze.
func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	if err := s.admitClient(r); err != nil {
		s.writeError(w, err)
		return
	}
	var req AnalyzeRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	rr, err := s.resolve(req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	ctx, cancel, err := s.requestContext(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	defer cancel()
	body, source, err := s.analyze(ctx, rr, s.clusterRouteFor(r, "/v1/analyze", rr.req))
	if err != nil {
		s.writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", source)
	w.Write(body)
}

// analyze serves one resolved analysis point through the endpoint's
// fault boundary (cluster routing, circuit breaker + degradation), the
// cache, the in-flight dedup group, and the bounded evaluation pool, in
// that order. The returned body is the exact serialized response (cached
// bytes are served verbatim); source reports how it was obtained: "hit",
// "coalesced", "miss", "peer-fill", "forward" or "degraded".
func (s *Server) analyze(ctx context.Context, rr resolved, route *clusterRoute) (body []byte, source string, err error) {
	return s.guarded(ctx, endpointAnalyze, rr.key, route, func(ctx context.Context) ([]byte, string, error) {
		resp, err := s.evaluate(ctx, rr)
		if err != nil {
			return nil, "", err
		}
		body, err := json.Marshal(resp)
		return body, resp.EvalMode, err
	}, func(reason string) ([]byte, error) {
		return s.degradedAnalyze(rr, reason)
	})
}

// serveCached serves one content-addressed evaluation through the cache,
// the in-flight dedup group, and the bounded evaluation pool, in that
// order; every cacheable endpoint (/v1/analyze, /v1/lint) funnels through
// it (via guarded). eval must return the exact response bytes to cache
// and serve, plus the evaluation-mode label for the latency histogram
// (empty is recorded as "unknown").
//
// The whole path runs under a guard recover wrapper, and the flight
// leader carries its own: a panic inside a leader would otherwise leave
// the flight entry permanently open — every later request for that key
// would join a call that never completes. The faultinject seams
// (service.cache, service.flight, service.pool) sit inside these
// wrappers, so injected panics surface as *guard.EvalPanicError, never
// as a torn flight or a leaked pool slot.
func (s *Server) serveCached(ctx context.Context, endpoint, key string, eval func(ctx context.Context) ([]byte, string, error)) (body []byte, source string, err error) {
	type served struct {
		body   []byte
		source string
	}
	out, err := guard.Do1(func() (served, error) {
		if err := faultinject.Fire("service.cache"); err != nil {
			return served{}, err
		}
		if b, ok := s.cache.Get(key); ok {
			s.metrics.CacheHits.Inc()
			return served{b, "hit"}, nil
		}
		res, coalesced, err := s.flight.Do(ctx, key, func() (flightResult, error) {
			return guard.Do1(func() (flightResult, error) {
				if err := faultinject.Fire("service.flight"); err != nil {
					return flightResult{}, err
				}
				// Re-check the cache as leader: a previous leader may have filled
				// it between this request's miss and its flight entry, and an
				// evaluation is too expensive to repeat on that race.
				if b, ok := s.cache.Get(key); ok {
					return flightResult{body: b, fromCache: true}, nil
				}
				// Before paying for an evaluation, ask the key's replica
				// peers for a cached copy (the flight guarantees at most one
				// such lookup per key is in flight on this node).
				if s.cluster != nil {
					if b, ok := s.cluster.peerFill(ctx, key); ok {
						s.cache.Add(key, b)
						return flightResult{body: b, peerFilled: true}, nil
					}
				}
				release, err := s.limiter.acquire(ctx)
				if err != nil {
					var de *admission.DeadlineError
					if errors.As(err, &de) {
						s.metrics.DeadlineEvictions.Inc()
					}
					return flightResult{}, err
				}
				defer release()
				if err := faultinject.Fire("service.pool"); err != nil {
					return flightResult{}, err
				}
				s.metrics.CacheMisses.Inc()
				s.metrics.Inflight.Inc()
				defer s.metrics.Inflight.Dec()
				start := time.Now()
				b, mode, err := eval(ctx)
				// Success-only latency feeds the adaptive limit: failures are
				// the circuit breaker's signal, not a throughput one.
				s.limiter.observe(time.Since(start), err == nil)
				if err != nil {
					return flightResult{}, err
				}
				if mode == "" {
					mode = "unknown"
				}
				s.metrics.Evaluations.Inc()
				s.metrics.EvalLatency.With(endpoint, mode).Observe(time.Since(start).Seconds())
				s.cache.Add(key, b)
				if s.cluster != nil {
					s.cluster.enqueuePush(key, b)
				}
				return flightResult{body: b}, nil
			})
		})
		if err != nil {
			return served{}, err
		}
		switch {
		case res.fromCache:
			s.metrics.CacheHits.Inc()
			return served{res.body, "hit"}, nil
		case coalesced:
			s.metrics.Coalesced.Inc()
			return served{res.body, "coalesced"}, nil
		case res.peerFilled:
			return served{res.body, "peer-fill"}, nil
		}
		return served{res.body, "miss"}, nil
	})
	if err != nil {
		return nil, "", err
	}
	return out.body, out.source, nil
}

// evaluate runs the full pipeline for one resolved request: parse →
// analyze → Equation 1 cost → optional chunk recommendation, under the
// configured evaluation budget and the request deadline.
func (s *Server) evaluate(ctx context.Context, rr resolved) (*AnalyzeResponse, error) {
	if err := faultinject.Fire("service.evaluate"); err != nil {
		return nil, err
	}
	rr.opts.Budget = s.evalBudget(ctx)
	prog, err := repro.Parse(rr.source)
	if err != nil {
		// Anything the front end rejects is the client's input.
		return nil, &apiError{status: http.StatusBadRequest, msg: err.Error()}
	}
	if rr.req.Nest >= prog.NumNests() {
		return nil, badRequestf("nest index %d out of range (program has %d nests)", rr.req.Nest, prog.NumNests())
	}
	info, err := prog.Nest(rr.req.Nest)
	if err != nil {
		return nil, badRequestf("%v", err)
	}
	if info.ParallelLevel < 0 {
		return nil, badRequestf("nest %d is sequential: no parallel loop to analyze", rr.req.Nest)
	}
	if len(info.SymbolicParams) > 0 {
		return nil, badRequestf("nest %d has loop bounds unknown at compile time (%v); the service analyzes constant-bound nests", rr.req.Nest, info.SymbolicParams)
	}
	a, err := prog.Analyze(rr.req.Nest, rr.opts)
	if err != nil {
		return nil, err
	}
	cost, err := prog.EstimateCost(rr.req.Nest, rr.opts)
	if err != nil {
		return nil, err
	}
	resp := &AnalyzeResponse{
		Nest:           rr.req.Nest,
		Threads:        a.Threads,
		Chunk:          a.Chunk,
		FSCases:        a.FSCases,
		FSShare:        a.FSShare,
		Iterations:     a.Iterations,
		FSPerIteration: a.FSPerIteration,
		ChunkRuns:      a.ChunkRuns,
		EvalMode:       a.Eval,
		Extrapolated:   a.Extrapolated,
		TotalCycles:    cost.TotalWallCycles,
		Victims:        a.Victims,
		HotLines:       a.HotLines,
		SkippedRefs:    a.SkippedRefs,
		Warnings:       prog.Warnings(),
	}
	if rr.req.Recommend {
		rec, err := prog.RecommendChunkCtx(ctx, rr.req.Nest, rr.opts, nil)
		if err != nil {
			return nil, err
		}
		resp.RecommendedChunk = rec.Chunk
		resp.RecommendedFSCases = rec.FSCases
	}
	return resp, nil
}

// handleBatch serves POST /v1/analyze/batch: every point resolved up
// front, then fanned out on the sweep pool with results in input order.
// Item failures are reported per item; the batch itself fails only on a
// malformed body or a cancelled request.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if err := s.admitClient(r); err != nil {
		s.writeError(w, err)
		return
	}
	var breq BatchRequest
	if err := s.decodeBody(w, r, &breq); err != nil {
		s.writeError(w, err)
		return
	}
	reqs, err := breq.expand()
	if err != nil {
		s.writeError(w, err)
		return
	}
	if len(reqs) > s.cfg.MaxBatch {
		s.writeError(w, badRequestf("batch of %d exceeds the %d-point limit", len(reqs), s.cfg.MaxBatch))
		return
	}
	ctx, cancel, err := s.requestContext(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	defer cancel()

	// Items never return a Go error (failures are embedded), so the only
	// sweep error is ctx expiry. Workers are not bounded here: each item
	// still queues through the evaluation limiter, which is the real
	// concurrency bound. Each item is accounted individually under the
	// "batch-item" endpoint — embedded failures must not be invisible to
	// fsserve_requests_total just because the envelope is a 200.
	results, err := sweep.Run(ctx, len(reqs), min(len(reqs), 2*s.cfg.MaxConcurrent), func(ctx context.Context, i int) (BatchResult, error) {
		rr, err := s.resolve(reqs[i])
		if err == nil {
			var body []byte
			// Each item routes to its own key's owner: a batch fans out
			// across the cluster rather than landing on one node.
			body, _, err = s.analyze(ctx, rr, s.clusterRouteFor(r, "/v1/analyze", reqs[i]))
			if err == nil {
				s.metrics.Requests.With(endpointBatchItem, "200").Inc()
				return BatchResult{Result: json.RawMessage(body)}, nil
			}
		}
		ae := s.apiErrorFor(err)
		s.metrics.Requests.With(endpointBatchItem, statusText(ae.Code)).Inc()
		if ae.Code == http.StatusTooManyRequests {
			s.metrics.QueueRejects.Inc()
		}
		return BatchResult{Error: ae}, nil
	})
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, BatchResponse{Results: results})
}

// handleKernels serves GET /v1/kernels: the built-in kernel and machine
// registries, so clients can discover valid names.
func (s *Server) handleKernels(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{
		"kernels":  kernels.Names(),
		"machines": repro.MachineNames(),
	})
}

// handleHealthz serves GET /healthz: 200 while serving, 503 once
// BeginShutdown has been called.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleMetrics serves GET /metrics in Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.metrics.CacheEntries.Set(int64(s.cache.Len()))
	s.metrics.AdmissionLimit.Set(int64(s.limiter.stats().limit))
	if s.snap != nil {
		s.metrics.SnapshotAgeSeconds.Set(s.snap.ageSeconds())
	} else {
		s.metrics.SnapshotAgeSeconds.Set(-1)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WritePrometheus(w)
}
