package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"

	"repro"
	"repro/internal/analysis"
	"repro/internal/guard"
)

// The per-endpoint circuit-breaker and degradation identities. Batch
// items share the analyze endpoint's breaker: they run the same
// evaluator, so its health is one signal.
const (
	endpointAnalyze = "analyze"
	endpointLint    = "lint"
	endpointTune    = "tune"
	// endpointBatchItem labels per-item accounting inside
	// /v1/analyze/batch in fsserve_requests_total: embedded item
	// failures ride in a 200 envelope, so without it they would be
	// invisible to request metrics.
	endpointBatchItem = "batch-item"
)

// guarded is the fault boundary every cacheable endpoint funnels
// through: serveCached runs behind the endpoint's circuit breaker, and
// internal failures — evaluator panics (already converted to
// *guard.EvalPanicError by the recover wrappers), tripped budgets,
// expired deadlines, injected faults — degrade to the closed-form
// answer instead of surfacing a 500 or 504. Client errors (4xx) and
// queue backpressure (429) pass through untouched: they say nothing
// about evaluator health and must keep their semantics.
//
// An open breaker skips the full evaluation entirely and serves the
// degraded answer outright; successes and internal failures feed the
// breaker so it opens after consecutive evaluator trouble and closes
// again via half-open probes. Degraded bodies are built outside the
// fault-injection seams and are never cached.
//
// When the server is clustered and route is non-nil, the cluster layer
// decides first: a node that is not the key's primary owner serves its
// local cached copy or proxies to the owners (cluster.go), so routing
// sits above the breaker — forwarding is not an evaluation and a
// non-owner's breaker state says nothing about it. A request that
// already took its one forwarding hop bypasses routing and is served
// locally (the hop guard).
func (s *Server) guarded(ctx context.Context, endpoint, key string, route *clusterRoute, eval func(context.Context) ([]byte, string, error), degrade func(reason string) ([]byte, error)) (body []byte, source string, err error) {
	if s.cluster != nil && route != nil && !route.forwarded {
		if h := s.cluster.route(ctx, endpoint, key, route, degrade); h != nil {
			return h.body, h.source, h.err
		}
	}
	br := s.breakers[endpoint]
	if br != nil && !br.Allow() {
		return s.degrade(endpoint, degrade, "breaker-open")
	}
	body, source, err = s.serveCached(ctx, endpoint, key, eval)
	if err == nil {
		if br != nil {
			br.Record(true)
		}
		return body, source, nil
	}
	status := statusFor(err)
	if status != http.StatusInternalServerError && status != http.StatusGatewayTimeout {
		return nil, "", err
	}
	if br != nil {
		br.Record(false)
	}
	reason := "internal"
	var pe *guard.EvalPanicError
	var be *guard.BudgetError
	switch {
	case errors.As(err, &pe):
		reason = "panic"
		s.metrics.EvalPanics.Inc()
		s.cfg.Logger.Error("evaluation panic",
			"endpoint", endpoint, "panic", pe.Value, "stack", string(pe.Stack))
	case errors.As(err, &be):
		reason = "budget"
		if be.Resource == "deadline" {
			reason = "deadline"
		}
	case errors.Is(err, context.DeadlineExceeded):
		reason = "deadline"
	}
	return s.degrade(endpoint, degrade, reason)
}

// degrade builds the degraded body and accounts for it. A failure here
// (e.g. the source does not even parse) surfaces as the builder's own
// error — typically a 400, never a masked internal failure.
func (s *Server) degrade(endpoint string, degrade func(reason string) ([]byte, error), reason string) ([]byte, string, error) {
	body, err := degrade(reason)
	if err != nil {
		return nil, "", err
	}
	s.metrics.Degraded.With(endpoint, reason).Inc()
	return body, "degraded", nil
}

// evalBudget is the resource budget one model evaluation runs under:
// the configured step and state ceilings plus the request deadline, so
// a runaway simulation stops deterministically inside the fsmodel hot
// loop instead of burning a pool slot until the timeout.
func (s *Server) evalBudget(ctx context.Context) guard.Budget {
	b := guard.Budget{
		MaxSteps:      s.cfg.MaxEvalSteps,
		MaxStateBytes: s.cfg.MaxEvalStateBytes,
	}
	if d, ok := ctx.Deadline(); ok {
		// The ctx deadline already folds in the X-Request-Deadline
		// header (requestContext tightens the timeout), so the client's
		// end-to-end deadline reaches the fsmodel hot loop.
		b = b.TightenDeadline(d)
	}
	return b
}

// ClosedFormResult is the closed-form engine's answer embedded in a
// degraded AnalyzeResponse: the static prone/race verdict and verified
// aligning chunk from internal/analysis, computed without simulation.
type ClosedFormResult struct {
	Prone    bool  `json:"prone"`
	Race     bool  `json:"race"`
	Chunk    int64 `json:"chunk,omitempty"`
	Exact    bool  `json:"exact"`
	Findings int   `json:"findings"`
}

// degradedAnalyze answers an analyze request from the closed-form
// engine: no simulation, no budget, cost independent of trip counts. It
// runs under its own recover wrapper and outside the fault-injection
// seams, so it stays reliable while the full evaluator is the thing
// failing.
func (s *Server) degradedAnalyze(rr resolved, reason string) ([]byte, error) {
	resp, err := guard.Do1(func() (*AnalyzeResponse, error) {
		prog, err := repro.Parse(rr.source)
		if err != nil {
			return nil, &apiError{status: http.StatusBadRequest, msg: err.Error()}
		}
		if rr.req.Nest >= prog.NumNests() {
			return nil, badRequestf("nest index %d out of range (program has %d nests)", rr.req.Nest, prog.NumNests())
		}
		adv, err := prog.RecommendChunkClosedForm(rr.req.Nest, rr.opts)
		if err != nil {
			return nil, err
		}
		threads := rr.opts.Threads
		if threads == 0 {
			threads = rr.opts.Machine.Cores()
		}
		resp := &AnalyzeResponse{
			Nest:           rr.req.Nest,
			Threads:        threads,
			Chunk:          rr.opts.Chunk,
			Degraded:       true,
			DegradedReason: reason,
			ClosedForm: &ClosedFormResult{
				Prone:    adv.Prone,
				Race:     adv.Race,
				Chunk:    adv.Chunk,
				Exact:    adv.Exact,
				Findings: adv.Findings,
			},
			Warnings: prog.Warnings(),
		}
		if rr.req.Recommend && adv.Chunk > 0 {
			resp.RecommendedChunk = adv.Chunk
		}
		return resp, nil
	})
	if err != nil {
		return nil, err
	}
	return json.Marshal(resp)
}

// degradedLint answers a lint request with a direct closed-form pass —
// the same engine, re-run outside the cache/flight/pool seams and under
// its own recover wrapper — marked degraded in the native shape. SARIF
// output carries no degradation marker (the format has no natural slot
// for it); the fsserve_degraded_total metric still counts it.
func (s *Server) degradedLint(rr lintResolved, reason string) ([]byte, error) {
	return guard.Do1(func() ([]byte, error) {
		rep, err := s.lintReport(rr)
		if err != nil {
			return nil, err
		}
		if rr.req.SARIF {
			var buf jsonBuffer
			if err := analysis.WriteSARIF(&buf, []analysis.FileReport{{File: rr.file, Report: rep}}); err != nil {
				return nil, err
			}
			return buf.bytes, nil
		}
		return json.Marshal(LintResponse{File: rr.file, Report: rep, Degraded: true, DegradedReason: reason})
	})
}

// readyzBreaker is one endpoint's circuit-breaker state in /readyz.
type readyzBreaker struct {
	State               string `json:"state"`
	ConsecutiveFailures int    `json:"consecutive_failures"`
	Opens               int64  `json:"opens"`
}

// readyzPool is the evaluation pool's saturation in /readyz.
type readyzPool struct {
	Running       int  `json:"running"`
	Capacity      int  `json:"capacity"`
	Waiting       int  `json:"waiting"`
	QueueCapacity int  `json:"queue_capacity"`
	Saturated     bool `json:"saturated"`
	// Limit is the current adaptive concurrency limit (<= Capacity,
	// which is the configured ceiling).
	Limit float64 `json:"limit"`
}

// readyzCluster is the cluster membership view in /readyz.
type readyzCluster struct {
	Self string `json:"self"`
	// Peers maps each probed peer to its state ("healthy", "suspect",
	// "down").
	Peers map[string]string `json:"peers"`
}

// ReadyzResponse is the body of GET /readyz.
type ReadyzResponse struct {
	// Status is "ok", "degraded" (some breaker is not closed: the
	// service answers, possibly from the closed-form fallback) or
	// "draining" (shutdown has begun; the only 503 case).
	Status   string                   `json:"status"`
	Breakers map[string]readyzBreaker `json:"breakers,omitempty"`
	Pool     readyzPool               `json:"pool"`
	Cluster  *readyzCluster           `json:"cluster,omitempty"`
}

// handleReadyz serves GET /readyz: a JSON readiness document exposing
// the per-endpoint breaker states and pool saturation. It returns 503
// only while draining; an open breaker keeps 200 with status
// "degraded", because the service still answers every request.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	st := s.limiter.stats()
	resp := ReadyzResponse{
		Status: "ok",
		Pool: readyzPool{
			Running:       st.running,
			Capacity:      st.capacity,
			Waiting:       st.waiting,
			QueueCapacity: st.maxWait,
			Saturated:     st.running >= int(st.limit) && st.waiting >= st.maxWait,
			Limit:         st.limit,
		},
	}
	if len(s.breakers) > 0 {
		resp.Breakers = make(map[string]readyzBreaker, len(s.breakers))
		for ep, br := range s.breakers {
			snap := br.Snapshot()
			if snap.State != guard.BreakerClosed {
				resp.Status = "degraded"
			}
			resp.Breakers[ep] = readyzBreaker{
				State:               snap.State.String(),
				ConsecutiveFailures: snap.ConsecutiveFailures,
				Opens:               snap.Opens,
			}
		}
	}
	if s.cluster != nil {
		states := s.cluster.cl.States()
		rc := &readyzCluster{Self: s.cluster.cl.Self(), Peers: make(map[string]string, len(states))}
		for peer, st := range states {
			if peer != rc.Self {
				rc.Peers[peer] = st.String()
			}
		}
		resp.Cluster = rc
	}
	status := http.StatusOK
	if s.draining.Load() {
		resp.Status = "draining"
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, resp)
}
