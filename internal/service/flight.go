package service

import (
	"context"
	"sync"
	"sync/atomic"
)

// flightGroup deduplicates concurrent identical work (singleflight
// semantics): while an evaluation for a key is in flight, further callers
// with the same key wait for its result instead of starting their own.
// Combined with the result cache this gives the server the invariant the
// end-to-end test pins down: N concurrent identical requests perform
// exactly one model evaluation.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done    chan struct{}
	waiters atomic.Int64 // joiners currently waiting, for tests and introspection
	res     flightResult
	err     error
}

// flightResult is what one evaluation produces: the serialized response
// and whether the leader found it already cached (a leader re-checks the
// cache to close the gap between a caller's cache miss and its flight
// join) or fetched it from a cluster replica's cache instead of
// evaluating.
type flightResult struct {
	body       []byte
	fromCache  bool
	peerFilled bool
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// Do runs fn for key, coalescing concurrent duplicates: the first caller
// (the leader) runs fn; callers arriving while it runs wait and share the
// leader's result and error. The second return reports whether this caller
// coalesced (joined rather than led). A caller whose ctx expires while
// waiting gets ctx.Err(); the leader itself always runs fn to completion
// so joiners never observe a half-finished result.
func (g *flightGroup) Do(ctx context.Context, key string, fn func() (flightResult, error)) (flightResult, bool, error) {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		c.waiters.Add(1)
		defer c.waiters.Add(-1)
		select {
		case <-c.done:
			return c.res, true, c.err
		case <-ctx.Done():
			return flightResult{}, true, ctx.Err()
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.res, c.err = fn()
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.res, false, c.err
}
