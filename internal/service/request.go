package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro"
	"repro/internal/kernels"
)

// AnalyzeRequest is the body of POST /v1/analyze: one analysis point of
// the compile-time false-sharing model. Exactly one of Source (mini-C
// text) and Kernel (a built-in paper kernel name) must be set.
type AnalyzeRequest struct {
	Source string `json:"source,omitempty"`
	Kernel string `json:"kernel,omitempty"`
	// Nest selects the loop nest to analyze (default 0).
	Nest int `json:"nest,omitempty"`
	// Threads is the OpenMP team size (0 = the machine's core count;
	// a num_threads pragma in the source wins).
	Threads int `json:"threads,omitempty"`
	// Chunk is the schedule(static,chunk) chunk size (0 = the OpenMP
	// default block schedule; a schedule pragma wins).
	Chunk int64 `json:"chunk,omitempty"`
	// Machine names the modeled target: paper48 (default), smalltest,
	// modern16.
	Machine string `json:"machine,omitempty"`
	// MESI switches FS counting from the paper's ϕ function to
	// write-invalidate-faithful counting.
	MESI bool `json:"mesi,omitempty"`
	// HotLines additionally attributes FS cases to individual cache lines.
	HotLines bool `json:"hot_lines,omitempty"`
	// Recommend additionally runs the cost-model chunk recommendation
	// (power-of-two candidates 1..128).
	Recommend bool `json:"recommend,omitempty"`
}

// AnalyzeResponse is the result of one analysis: the FS model outputs,
// the Equation 1 cost total, and (on request) the schedule
// recommendation.
type AnalyzeResponse struct {
	Nest           int     `json:"nest"`
	Threads        int     `json:"threads"`
	Chunk          int64   `json:"chunk"`
	FSCases        int64   `json:"fs_cases"`
	FSShare        float64 `json:"fs_share"`
	Iterations     int64   `json:"iterations"`
	FSPerIteration float64 `json:"fs_per_iteration"`
	ChunkRuns      int64   `json:"chunk_runs"`
	// EvalMode reports which evaluation pipeline produced the numbers
	// ("compiled" or "interpreted"; empty on degraded responses).
	// Extrapolated marks totals closed by the steady-state chunk-run
	// extrapolation (exact; enabled by the server's -extrapolate flag).
	EvalMode     string `json:"eval_mode,omitempty"`
	Extrapolated bool   `json:"extrapolated,omitempty"`
	// TotalCycles is Equation 1's Total_c including the FS term.
	TotalCycles float64         `json:"total_cycles"`
	Victims     []repro.Victim  `json:"victims,omitempty"`
	HotLines    []repro.HotLine `json:"hot_lines,omitempty"`
	SkippedRefs []string        `json:"skipped_refs,omitempty"`
	Warnings    []string        `json:"warnings,omitempty"`
	// RecommendedChunk and RecommendedFSCases are present when the
	// request set recommend.
	RecommendedChunk   int64 `json:"recommended_chunk,omitempty"`
	RecommendedFSCases int64 `json:"recommended_fs_cases,omitempty"`
	// Degraded marks a response answered by the closed-form engine
	// because the full evaluation failed internally (panic, tripped
	// budget, expired deadline) or its circuit breaker was open. The
	// simulation fields above are zero; ClosedForm carries the static
	// verdict instead. Degraded responses are never cached.
	Degraded       bool              `json:"degraded,omitempty"`
	DegradedReason string            `json:"degraded_reason,omitempty"`
	ClosedForm     *ClosedFormResult `json:"closed_form,omitempty"`
}

// BatchRequest is the body of POST /v1/analyze/batch. Either Requests
// lists explicit analysis points, or Template plus Chunks expands one
// request across a chunk-size sweep (the fschunk use case); both may be
// combined, template expansions first.
type BatchRequest struct {
	Requests []AnalyzeRequest `json:"requests,omitempty"`
	Template *AnalyzeRequest  `json:"template,omitempty"`
	Chunks   []int64          `json:"chunks,omitempty"`
}

// expand flattens the template×chunks product and the explicit requests,
// in that order.
func (b *BatchRequest) expand() ([]AnalyzeRequest, error) {
	var reqs []AnalyzeRequest
	if b.Template != nil {
		if len(b.Chunks) == 0 {
			return nil, badRequestf("batch template requires a non-empty chunks list")
		}
		for _, c := range b.Chunks {
			r := *b.Template
			r.Chunk = c
			reqs = append(reqs, r)
		}
	} else if len(b.Chunks) > 0 {
		return nil, badRequestf("batch chunks require a template")
	}
	reqs = append(reqs, b.Requests...)
	if len(reqs) == 0 {
		return nil, badRequestf("empty batch: provide requests or template+chunks")
	}
	return reqs, nil
}

// BatchResponse returns one entry per input, in input order.
type BatchResponse struct {
	Results []BatchResult `json:"results"`
}

// BatchResult is one batch entry: the analysis response verbatim (the
// same bytes the single endpoint would serve) or a per-item error.
type BatchResult struct {
	Result json.RawMessage `json:"result,omitempty"`
	Error  *APIError       `json:"error,omitempty"`
}

// APIError is the JSON error shape, also used as the top-level error
// envelope {"error": {...}}.
type APIError struct {
	Code    int    `json:"code"`
	Message string `json:"message"`
	// RetryAfterSeconds mirrors the Retry-After header for backpressure
	// statuses, so batch items (which have no headers of their own)
	// still carry the derived backoff.
	RetryAfterSeconds int `json:"retry_after_seconds,omitempty"`
}

// resolved is a validated request ready to evaluate: the source text
// (built-in kernels resolved), the repro options, and the canonical
// content-addressed cache key.
type resolved struct {
	req    AnalyzeRequest
	source string
	opts   repro.Options
	key    string
}

// maxThreads mirrors the fsmodel limit so the bound surfaces as a 400,
// not an evaluation failure.
const maxThreads = 64

// resolve validates req and computes its canonical key. The key is a
// SHA-256 over the resolved source text plus Options.CanonicalKey plus
// the request fields outside Options, so equivalent requests (e.g. a
// kernel name versus its rendered source) collide deliberately, and any
// field that could change the response keeps distinct requests apart.
func (s *Server) resolve(req AnalyzeRequest) (resolved, error) {
	if req.Source != "" && req.Kernel != "" {
		return resolved{}, badRequestf("source and kernel are mutually exclusive")
	}
	if req.Source == "" && req.Kernel == "" {
		return resolved{}, badRequestf("one of source or kernel is required")
	}
	if req.Nest < 0 {
		return resolved{}, badRequestf("nest must be >= 0, got %d", req.Nest)
	}
	if req.Threads < 0 || req.Threads > maxThreads {
		return resolved{}, badRequestf("threads must be in 0..%d, got %d", maxThreads, req.Threads)
	}
	if req.Chunk < 0 {
		return resolved{}, badRequestf("chunk must be >= 0, got %d", req.Chunk)
	}
	mach, err := repro.MachineByName(req.Machine)
	if err != nil {
		return resolved{}, &apiError{status: 400, msg: err.Error()}
	}
	src := req.Source
	if req.Kernel != "" {
		threads := req.Threads
		if threads == 0 {
			threads = mach.Cores()
		}
		k, err := kernels.ByName(req.Kernel, threads)
		if err != nil {
			return resolved{}, &apiError{status: 400, msg: err.Error()}
		}
		src = k.Source
	}
	opts := repro.Options{
		Machine:       mach,
		Threads:       req.Threads,
		Chunk:         req.Chunk,
		MESICounting:  req.MESI,
		TrackHotLines: req.HotLines,
		Eval:          s.cfg.EvalMode,
		Extrapolate:   s.cfg.Extrapolate,
	}

	h := sha256.New()
	fmt.Fprintf(h, "analyze/v1\x00%s\x00nest=%d;recommend=%t\x00", opts.CanonicalKey(), req.Nest, req.Recommend)
	h.Write([]byte(src))
	return resolved{
		req:    req,
		source: src,
		opts:   opts,
		key:    hex.EncodeToString(h.Sum(nil)),
	}, nil
}
