package service

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/analysis"
)

func decodeLint(t *testing.T, body []byte) LintResponse {
	t.Helper()
	var resp LintResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("invalid lint response JSON: %v\n%s", err, body)
	}
	return resp
}

func lintCodes(resp LintResponse) []string {
	var codes []string
	for _, d := range resp.Report.Diagnostics {
		codes = append(codes, d.Code)
	}
	return codes
}

func TestLintSource(t *testing.T) {
	s := newTestServer(t, Config{})
	w := post(t, s, "/v1/lint", LintRequest{Source: victimSrc})
	if w.Code != 200 {
		t.Fatalf("status = %d: %s", w.Code, w.Body.String())
	}
	if got := w.Header().Get("X-Cache"); got != "miss" {
		t.Fatalf("first request X-Cache = %q, want miss", got)
	}
	resp := decodeLint(t, w.Body.Bytes())
	if resp.File != "<source>" {
		t.Fatalf("file = %q", resp.File)
	}
	codes := lintCodes(resp)
	hasFS := false
	for _, c := range codes {
		if c == analysis.CodeFSWrite {
			hasFS = true
		}
	}
	if !hasFS {
		t.Fatalf("victim source not flagged; codes = %v", codes)
	}

	// Same request again: byte-identical body served from cache.
	w2 := post(t, s, "/v1/lint", LintRequest{Source: victimSrc})
	if w2.Code != 200 || w2.Header().Get("X-Cache") != "hit" {
		t.Fatalf("repeat: status = %d, X-Cache = %q", w2.Code, w2.Header().Get("X-Cache"))
	}
	if w.Body.String() != w2.Body.String() {
		t.Fatal("cached lint response differs from original")
	}

	// A chunk override that aligns the schedule is a distinct cache entry
	// and comes back clean.
	w3 := post(t, s, "/v1/lint", LintRequest{Source: victimSrc, Chunk: 8})
	if w3.Code != 200 || w3.Header().Get("X-Cache") != "miss" {
		t.Fatalf("chunked: status = %d, X-Cache = %q", w3.Code, w3.Header().Get("X-Cache"))
	}
	if resp3 := decodeLint(t, w3.Body.Bytes()); len(resp3.Report.Diagnostics) != 0 {
		t.Fatalf("chunk 8 not clean: %v", lintCodes(resp3))
	}
}

func TestLintKernel(t *testing.T) {
	s := newTestServer(t, Config{})
	w := post(t, s, "/v1/lint", LintRequest{Kernel: "heat", Threads: 8, Chunk: 1})
	if w.Code != 200 {
		t.Fatalf("status = %d: %s", w.Code, w.Body.String())
	}
	resp := decodeLint(t, w.Body.Bytes())
	if resp.File != "<kernel:heat>" {
		t.Fatalf("file = %q", resp.File)
	}
	if resp.Report.CountAtOrAbove(analysis.SeverityWarning) == 0 {
		t.Fatalf("heat at chunk 1 produced no warnings: %v", lintCodes(resp))
	}
}

func TestLintSARIF(t *testing.T) {
	s := newTestServer(t, Config{})
	w := post(t, s, "/v1/lint", LintRequest{Source: victimSrc, SARIF: true})
	if w.Code != 200 {
		t.Fatalf("status = %d: %s", w.Code, w.Body.String())
	}
	var doc struct {
		Version string `json:"version"`
		Runs    []struct {
			Results []struct {
				RuleID string `json:"ruleId"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &doc); err != nil {
		t.Fatalf("SARIF body is not JSON: %v", err)
	}
	if doc.Version != analysis.SarifVersion || len(doc.Runs) != 1 || len(doc.Runs[0].Results) == 0 {
		t.Fatalf("bad SARIF document: %s", w.Body.String())
	}
}

func TestLintParseFailureIsAFinding(t *testing.T) {
	s := newTestServer(t, Config{})
	w := post(t, s, "/v1/lint", LintRequest{Source: "double a[;"})
	if w.Code != 200 {
		t.Fatalf("status = %d: %s", w.Code, w.Body.String())
	}
	resp := decodeLint(t, w.Body.Bytes())
	if len(resp.Report.Diagnostics) != 1 || resp.Report.Diagnostics[0].Code != analysis.CodeParse {
		t.Fatalf("want single PARSE diagnostic, got %v", lintCodes(resp))
	}
	if resp.Report.Diagnostics[0].Severity != analysis.SeverityError {
		t.Fatalf("PARSE severity = %v", resp.Report.Diagnostics[0].Severity)
	}
}

func TestLintValidationErrors(t *testing.T) {
	s := newTestServer(t, Config{})
	cases := []struct {
		name string
		req  LintRequest
		want string
	}{
		{"empty", LintRequest{}, "one of source or kernel"},
		{"both", LintRequest{Source: victimSrc, Kernel: "heat"}, "mutually exclusive"},
		{"bad kernel", LintRequest{Kernel: "fft"}, "fft"},
		{"bad machine", LintRequest{Source: victimSrc, Machine: "cray"}, "machine"},
		{"negative threads", LintRequest{Source: victimSrc, Threads: -1}, "threads"},
		{"negative chunk", LintRequest{Source: victimSrc, Chunk: -2}, "chunk"},
		{"negative trips", LintRequest{Source: victimSrc, AssumedTrips: -1}, "assumed_trips"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := post(t, s, "/v1/lint", tc.req)
			if w.Code != 400 {
				t.Fatalf("status = %d: %s", w.Code, w.Body.String())
			}
			if msg := errMessage(t, w); !strings.Contains(msg, tc.want) {
				t.Fatalf("error %q missing %q", msg, tc.want)
			}
		})
	}
}
