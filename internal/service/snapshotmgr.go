package service

import (
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"repro/internal/snapshot"
)

// snapshotFile is the snapshot's name inside Config.CacheDir.
const snapshotFile = "results.fssnap"

// snapshotManager persists the result cache: one load at startup
// (salvaging whatever a crash or corruption left provable), a periodic
// background rewrite, and a final write on Close. Persistence is
// strictly an optimization — every failure here is logged and counted,
// never fatal.
type snapshotManager struct {
	s    *Server
	path string

	lastWriteNano atomic.Int64 // unix nanos of the newest on-disk snapshot

	stop chan struct{}
	done chan struct{}
}

// newSnapshotManager loads the existing snapshot into the server's cache
// and starts the periodic writer. Called from New before the server
// accepts traffic, so the restore races nothing.
func newSnapshotManager(s *Server) *snapshotManager {
	m := &snapshotManager{
		s:    s,
		path: filepath.Join(s.cfg.CacheDir, snapshotFile),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	if err := os.MkdirAll(s.cfg.CacheDir, 0o755); err != nil {
		s.cfg.Logger.Error("cache dir unavailable, persistence disabled", "dir", s.cfg.CacheDir, "err", err)
	}
	m.load()
	go m.run()
	return m
}

// load restores the on-disk snapshot, reconciling exactly what was
// restored versus dropped into metrics and the log.
func (m *snapshotManager) load() {
	entries, st := snapshot.LoadFile(m.path)
	resident := m.s.cache.RestoreSnapshot(entries)
	m.s.metrics.SnapshotRestored.Add(st.Restored)
	m.s.metrics.SnapshotDropped.Add(st.Dropped)
	if fi, err := os.Stat(m.path); err == nil {
		m.lastWriteNano.Store(fi.ModTime().UnixNano())
	}
	switch {
	case st.Reason == "missing":
		m.s.cfg.Logger.Info("no cache snapshot, starting cold", "path", m.path)
	case st.Clean():
		m.s.cfg.Logger.Info("cache snapshot restored",
			"path", m.path, "records", st.Restored, "resident", resident)
	default:
		m.s.cfg.Logger.Warn("cache snapshot salvaged",
			"path", m.path, "reason", st.Reason,
			"restored", st.Restored, "dropped", st.Dropped, "resident", resident)
	}
}

// run rewrites the snapshot every SnapshotInterval until closed.
func (m *snapshotManager) run() {
	defer close(m.done)
	t := time.NewTicker(m.s.cfg.SnapshotInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			m.write()
		case <-m.stop:
			return
		}
	}
}

// write persists the current cache contents atomically.
func (m *snapshotManager) write() {
	entries := m.s.cache.Snapshot()
	if err := snapshot.WriteFile(m.path, entries); err != nil {
		m.s.metrics.SnapshotWriteErrors.Inc()
		m.s.cfg.Logger.Error("cache snapshot write failed", "path", m.path, "err", err)
		return
	}
	m.s.metrics.SnapshotWrites.Inc()
	m.lastWriteNano.Store(time.Now().UnixNano())
}

// ageSeconds is the age of the newest on-disk snapshot, -1 before any
// exists. Scraped into fsserve_snapshot_age_seconds by /metrics.
func (m *snapshotManager) ageSeconds() int64 {
	last := m.lastWriteNano.Load()
	if last == 0 {
		return -1
	}
	return int64(time.Since(time.Unix(0, last)).Seconds())
}

// close stops the periodic writer and persists one final snapshot.
func (m *snapshotManager) close() error {
	close(m.stop)
	<-m.done
	entries := m.s.cache.Snapshot()
	if err := snapshot.WriteFile(m.path, entries); err != nil {
		m.s.metrics.SnapshotWriteErrors.Inc()
		return err
	}
	m.s.metrics.SnapshotWrites.Inc()
	m.lastWriteNano.Store(time.Now().UnixNano())
	return nil
}
