package service

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// postHeaders is post with extra request headers (API keys, deadlines).
func postHeaders(t *testing.T, s *Server, path string, body any, headers map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", path, bytes.NewReader(b))
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	return w
}

// soakDuration is the sustained-overload phase length: a few seconds in
// the ordinary test run, 30s when FSSERVE_SOAK is set (the CI resilience
// job sets it).
func soakDuration() time.Duration {
	if os.Getenv("FSSERVE_SOAK") != "" {
		return 30 * time.Second
	}
	return 2 * time.Second
}

// TestOverloadSoak drives the service at 4x its evaluation capacity
// while every evaluation is artificially slow, then returns latency to
// its baseline. It pins the adaptive-admission contract end to end:
//
//   - the AIMD limit converges downward under sustained latency
//     degradation (observable via the limit-change counters and the
//     fsserve_admission_limit gauge) and recovers to the ceiling once
//     latency returns to the baseline;
//   - every response under overload is a 200 or a 429, every 429
//     carries a Retry-After header, and the admitted p99 stays bounded
//     (load-shedding keeps queues short instead of letting latency run
//     away);
//   - nothing leaks: goroutines return to the pre-soak level.
func TestOverloadSoak(t *testing.T) {
	faultinject.Enable()
	defer faultinject.Reset()

	const ceiling = 4
	before := numGoroutineSettled()
	s := newTestServer(t, Config{MaxConcurrent: ceiling, MaxQueue: 8, Seed: 7})

	// A counter-indexed request stream: every value is a distinct cache
	// key, so the pool sees a real evaluation per admitted request.
	var nextKey atomic.Int64
	postNext := func(headers map[string]string) *httptest.ResponseRecorder {
		c := nextKey.Add(1)
		return postHeaders(t, s, "/v1/analyze", AnalyzeRequest{
			Source:  victimSrc,
			Chunk:   c%250 + 1,
			Threads: int(c/250)%4 + 1,
		}, headers)
	}

	// Every phase pins the evaluation latency with an injected delay so
	// the limiter's model sees controlled numbers instead of scheduler
	// noise: baseline 10ms, overload 40ms (past the 2x degradation
	// threshold), recovery back to 10ms — far enough below the threshold
	// that contention jitter from parallel test packages cannot hold the
	// limit down. The delay must fire inside the measured eval section
	// (service.evaluate, not service.pool) to be observed.
	const (
		baseDelay     = 10 * time.Millisecond
		overloadDelay = 40 * time.Millisecond
	)
	faultinject.Arm("service.evaluate", faultinject.Fault{Kind: faultinject.KindDelay, Delay: baseDelay, Probability: 1})

	// Warm baseline: enough samples to land the first adaptation batches.
	for i := 0; i < 16; i++ {
		if w := postNext(nil); w.Code != 200 {
			t.Fatalf("warmup request = %d: %s", w.Code, w.Body.String())
		}
	}

	// Overload: every evaluation now takes 4x the baseline, and 4x more
	// clients than slots hammer distinct keys.
	faultinject.Arm("service.evaluate", faultinject.Fault{Kind: faultinject.KindDelay, Delay: overloadDelay, Probability: 1})
	const workers = 4 * ceiling
	var (
		mu       sync.Mutex
		admitted []time.Duration
		rejected int
		other    []int
	)
	deadline := time.Now().Add(soakDuration())
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				start := time.Now()
				w := postNext(nil)
				lat := time.Since(start)
				mu.Lock()
				switch w.Code {
				case 200:
					admitted = append(admitted, lat)
				case 429:
					rejected++
					if w.Header().Get("Retry-After") == "" {
						t.Error("429 under overload without Retry-After")
					}
				default:
					other = append(other, w.Code)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(other) > 0 {
		t.Fatalf("statuses other than 200/429 leaked under overload: %v", other)
	}
	if rejected == 0 {
		t.Error("4x overload produced no 429s; admission is not shedding")
	}
	if len(admitted) == 0 {
		t.Fatal("overload starved every request; admission is not serving")
	}

	m := s.Metrics()
	decreases := m.LimitChanges.With("decrease").Value()
	limitUnderLoad := s.limiter.stats().limit
	if decreases == 0 {
		t.Errorf("no limit decreases under 10ms evaluations against a sub-ms baseline")
	}
	if limitUnderLoad >= ceiling {
		t.Errorf("admission limit = %v under sustained degradation, want below the ceiling %d", limitUnderLoad, ceiling)
	}
	if g := m.AdmissionLimit.Value(); g != int64(limitUnderLoad) {
		t.Errorf("fsserve_admission_limit gauge = %d, limiter reports %v", g, limitUnderLoad)
	}

	// Bounded admitted tail: with the limit shed to the floor the queue
	// stays short, so even the p99 admitted request clears in well under
	// a second (40ms evaluations, <= 8 waiters).
	sort.Slice(admitted, func(i, j int) bool { return admitted[i] < admitted[j] })
	if p99 := admitted[(len(admitted)*99)/100]; p99 > time.Second {
		t.Errorf("admitted p99 = %v under overload, want bounded well under 1s", p99)
	}

	// Recovery: return evaluations to the baseline latency and keep
	// feeding requests until the limit climbs back to the ceiling (the
	// EWMA needs a few samples to decay, then one additive step per
	// adaptation batch).
	faultinject.Arm("service.evaluate", faultinject.Fault{Kind: faultinject.KindDelay, Delay: baseDelay, Probability: 1})
	recoverBy := time.Now().Add(15 * time.Second)
	for s.limiter.stats().limit != ceiling && time.Now().Before(recoverBy) {
		postNext(nil)
	}
	if got := s.limiter.stats().limit; got != ceiling {
		t.Errorf("limit = %v after recovery, want back at the ceiling %d", got, ceiling)
	}
	if m.LimitChanges.With("increase").Value() == 0 {
		t.Error("no limit increases recorded during recovery")
	}

	if after := numGoroutineSettled(); after > before+5 {
		t.Errorf("goroutines grew from %d to %d across the soak", before, after)
	}
}

// TestQuotaIsolatesFlooder pins per-client quota isolation: a client
// flooding past its token bucket is rejected with a refill-derived
// Retry-After while a polite client on the same server stays at 100%
// success, and the quota rejects reconcile with the dedicated counter.
func TestQuotaIsolatesFlooder(t *testing.T) {
	s := newTestServer(t, Config{QuotaRPS: 1, QuotaBurst: 4})

	var flooderOK, flooderRejected int
	for i := 0; i < 12; i++ {
		w := postHeaders(t, s, "/v1/analyze", AnalyzeRequest{Source: victimSrc, Chunk: int64(i) + 1},
			map[string]string{"X-API-Key": "flooder"})
		switch w.Code {
		case 200:
			flooderOK++
		case 429:
			flooderRejected++
			if w.Header().Get("Retry-After") == "" {
				t.Error("quota 429 without Retry-After")
			}
			var envelope struct {
				Error *APIError `json:"error"`
			}
			if err := json.Unmarshal(w.Body.Bytes(), &envelope); err != nil || envelope.Error == nil {
				t.Fatalf("bad 429 envelope: %s", w.Body.String())
			}
			if envelope.Error.RetryAfterSeconds < 1 {
				t.Errorf("quota 429 without retry_after_seconds: %+v", envelope.Error)
			}
		default:
			t.Fatalf("flooder request %d = %d: %s", i, w.Code, w.Body.String())
		}
	}
	// The burst admits the first requests; the flood beyond it is shed.
	// Refill may admit one extra on a slow machine, never more.
	if flooderOK > 5 || flooderRejected < 7 {
		t.Errorf("flooder: %d admitted, %d rejected; want the burst (4-5) admitted and the rest shed", flooderOK, flooderRejected)
	}

	// The flooder's exhaustion must not touch another client's bucket.
	for i := 0; i < 3; i++ {
		w := postHeaders(t, s, "/v1/analyze", AnalyzeRequest{Source: victimSrc, Chunk: int64(100 + i)},
			map[string]string{"X-API-Key": "polite"})
		if w.Code != 200 {
			t.Fatalf("polite client request %d = %d while flooder throttled: %s", i, w.Code, w.Body.String())
		}
	}

	if got := s.Metrics().QuotaRejects.Value(); got != int64(flooderRejected) {
		t.Errorf("fsserve_quota_rejects_total = %d, clients observed %d", got, flooderRejected)
	}
}

// TestDeadlineEvictionRetryAfter pins queue-deadline eviction: a request
// whose propagated deadline cannot cover the estimated queue wait is
// rejected up front as a 429 with a drain-estimate Retry-After, counted
// by the eviction counter, instead of burning a queue slot to time out.
func TestDeadlineEvictionRetryAfter(t *testing.T) {
	faultinject.Enable()
	defer faultinject.Reset()
	s := newTestServer(t, Config{MaxConcurrent: 1, MaxQueue: 8})

	// One slow evaluation seeds the latency model: ~200ms per slot (the
	// delay must fire inside the measured eval section to be observed).
	faultinject.Arm("service.evaluate", faultinject.Fault{Kind: faultinject.KindDelay, Delay: 200 * time.Millisecond, MaxFires: 1})
	if w := post(t, s, "/v1/analyze", AnalyzeRequest{Source: victimSrc}); w.Code != 200 {
		t.Fatalf("warm request = %d: %s", w.Code, w.Body.String())
	}

	// Hold the only slot, then ask for an answer within 20ms: the queue
	// cannot possibly deliver in time, so admission evicts immediately.
	release, err := s.limiter.acquire(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	w := postHeaders(t, s, "/v1/analyze", AnalyzeRequest{Source: victimSrc, Chunk: 2},
		map[string]string{"X-Request-Deadline": "20ms"})
	if w.Code != 429 {
		t.Fatalf("unmeetable-deadline request = %d, want 429: %s", w.Code, w.Body.String())
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("deadline eviction without Retry-After")
	}
	var envelope struct {
		Error *APIError `json:"error"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &envelope); err != nil || envelope.Error == nil {
		t.Fatalf("bad eviction envelope: %s", w.Body.String())
	}
	if envelope.Error.RetryAfterSeconds < 1 {
		t.Errorf("eviction error without retry_after_seconds: %+v", envelope.Error)
	}
	if got := s.Metrics().DeadlineEvictions.Value(); got != 1 {
		t.Errorf("fsserve_queue_deadline_evictions_total = %d, want 1", got)
	}

	// An expired deadline is the client's clock problem, not queue
	// pressure: 504, not 429.
	w = postHeaders(t, s, "/v1/analyze", AnalyzeRequest{Source: victimSrc, Chunk: 3},
		map[string]string{"X-Request-Deadline": "-1s"})
	if w.Code != 504 {
		t.Errorf("expired-deadline request = %d, want 504: %s", w.Code, w.Body.String())
	}

	// A garbage deadline is a 400.
	w = postHeaders(t, s, "/v1/analyze", AnalyzeRequest{Source: victimSrc, Chunk: 4},
		map[string]string{"X-Request-Deadline": "soon"})
	if w.Code != 400 {
		t.Errorf("malformed-deadline request = %d, want 400: %s", w.Code, w.Body.String())
	}
}
