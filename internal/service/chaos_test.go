package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// numGoroutineSettled samples runtime.NumGoroutine until two consecutive
// reads agree (or a short deadline passes), so transient scheduler noise
// does not masquerade as a leak.
func numGoroutineSettled() int {
	prev := runtime.NumGoroutine()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		cur := runtime.NumGoroutine()
		if cur == prev {
			return cur
		}
		prev = cur
	}
	return prev
}

// TestChaos is the fault-injection suite: 32 concurrent clients hammer
// the service while every seam — cache, flight group, pool, evaluator —
// injects panics, errors and delays from seeded generators, with the
// circuit breaker armed tight enough to flap. The run asserts the full
// robustness contract:
//
//   - every request terminates with 200, 400 or 429 — never a 500, a
//     504 or a hang (degraded 200s are expected and welcome);
//   - cached answers stay coherent: all full (non-degraded) 200 bodies
//     for one request are byte-identical;
//   - no goroutine leaks across the run;
//   - the metrics reconcile with what clients observed and with the
//     injector's own fire counts.
func TestChaos(t *testing.T) {
	faultinject.Enable()
	defer faultinject.Reset()
	faultinject.Arm("service.cache", faultinject.Fault{Kind: faultinject.KindPanic, Probability: 0.02, Seed: 11})
	faultinject.Arm("service.flight", faultinject.Fault{Kind: faultinject.KindError, Probability: 0.05, Seed: 12})
	faultinject.Arm("service.pool", faultinject.Fault{Kind: faultinject.KindDelay, Delay: 2 * time.Millisecond, Probability: 0.2, Seed: 13})
	faultinject.Arm("service.evaluate", faultinject.Fault{Kind: faultinject.KindPanic, Probability: 0.1, Seed: 14})

	s := newTestServer(t, Config{
		MaxConcurrent:    4,
		MaxQueue:         8,
		BreakerThreshold: 3,
		BreakerCooldown:  25 * time.Millisecond,
		Seed:             9,
	})

	// A small pool of cheap, distinct requests so the cache, the flight
	// group and the pool all see real contention.
	bodies := make([][]byte, 0, 8)
	for _, n := range []int{64, 96, 128, 160} {
		for _, threads := range []int{2, 4} {
			src := fmt.Sprintf(`
double a[%d];
#pragma omp parallel for schedule(static,1) num_threads(%d)
for (i = 0; i < %d; i++) a[i] += 1.0;
`, n, threads, n)
			b, err := json.Marshal(AnalyzeRequest{Source: src, Recommend: true})
			if err != nil {
				t.Fatal(err)
			}
			bodies = append(bodies, b)
		}
	}
	badBody := []byte(`{"source":"for (i = 0; i <"}`) // parse error: always 400

	const (
		workers     = 32
		perWorker   = 25
		badInterval = 10 // every 10th request per worker is malformed
	)
	type sample struct {
		worker, seq int
		status      int
		degraded    bool
		body        []byte
		key         int // index into bodies; -1 for the malformed request
	}
	before := numGoroutineSettled()
	results := make([][]sample, workers)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g] = make([]sample, 0, perWorker)
			for i := 0; i < perWorker; i++ {
				key := (g + i) % len(bodies)
				body := bodies[key]
				if i%badInterval == badInterval-1 {
					key, body = -1, badBody
				}
				req := httptest.NewRequest("POST", "/v1/analyze", bytes.NewReader(body))
				w := httptest.NewRecorder()
				s.Handler().ServeHTTP(w, req)
				smp := sample{worker: g, seq: i, status: w.Code, body: w.Body.Bytes(), key: key}
				if w.Code == 200 {
					var resp AnalyzeResponse
					if json.Unmarshal(w.Body.Bytes(), &resp) == nil {
						smp.degraded = resp.Degraded
					}
				}
				results[g] = append(results[g], smp)
			}
		}(g)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		t.Fatal("chaos load never terminated: deadlock or hang under faults")
	}

	// Termination contract: only 200/400/429 ever reach a client.
	var total, degraded, rejected int
	fullBodies := make(map[int][]byte) // key -> first full 200 body
	for _, worker := range results {
		for _, smp := range worker {
			total++
			switch smp.status {
			case 200:
				if smp.key == -1 {
					t.Fatalf("worker %d req %d: malformed source answered 200: %s", smp.worker, smp.seq, smp.body)
				}
				if smp.degraded {
					degraded++
					continue
				}
				// Cache coherence: every full answer for a key is
				// byte-identical, whether evaluated, coalesced or cached.
				if prev, ok := fullBodies[smp.key]; !ok {
					fullBodies[smp.key] = smp.body
				} else if !bytes.Equal(prev, smp.body) {
					t.Fatalf("incoherent responses for request %d:\n%s\nvs\n%s", smp.key, prev, smp.body)
				}
			case 400:
				if smp.key != -1 {
					t.Fatalf("worker %d req %d: well-formed request answered 400: %s", smp.worker, smp.seq, smp.body)
				}
			case 429:
				rejected++
			default:
				t.Fatalf("worker %d req %d: status %d leaked to the client: %s", smp.worker, smp.seq, smp.status, smp.body)
			}
		}
	}
	if total != workers*perWorker {
		t.Fatalf("accounted for %d of %d requests", total, workers*perWorker)
	}

	// Reconcile the metrics against the clients' view and the injector.
	m := s.Metrics()
	if got := m.Degraded.Total(); got != int64(degraded) {
		t.Errorf("fsserve_degraded_total = %d, clients observed %d degraded responses", got, degraded)
	}
	if got := m.QueueRejects.Value(); got != int64(rejected) {
		t.Errorf("fsserve_queue_rejects_total = %d, clients observed %d rejections", got, rejected)
	}
	panicsFired := faultinject.Fired("service.cache") + faultinject.Fired("service.evaluate")
	if m.EvalPanics.Value() < panicsFired {
		// Coalesced waiters may observe one panic several times, so the
		// metric can legitimately exceed the fire count — never trail it.
		t.Errorf("fsserve_eval_panics_total = %d, injector fired %d panics", m.EvalPanics.Value(), panicsFired)
	}
	if panicsFired == 0 {
		t.Error("the chaos run injected no panics; the suite is not exercising the recover wrappers")
	}

	// The exposition endpoint renders the robustness counters.
	mw := httptest.NewRecorder()
	s.Handler().ServeHTTP(mw, httptest.NewRequest("GET", "/metrics", nil))
	for _, want := range []string{"fsserve_degraded_total", "fsserve_eval_panics_total"} {
		if !strings.Contains(mw.Body.String(), want) {
			t.Errorf("/metrics output is missing %s", want)
		}
	}

	// Leak check: everything spawned under faults must have unwound.
	if after := numGoroutineSettled(); after > before+5 {
		t.Errorf("goroutines grew from %d to %d across the chaos run", before, after)
	}
}
