package service

import (
	"container/list"
	"sync"
)

// resultCache is a bounded LRU of serialized analysis responses keyed by
// the request's canonical content hash. Values are the exact bytes written
// to the wire, so a hit reproduces the original response byte for byte.
type resultCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used
	entries map[string]*list.Element
	size    *Gauge // nil-safe mirror of len(entries)
}

type cacheEntry struct {
	key  string
	body []byte
}

// newResultCache builds a cache holding at most capacity entries;
// capacity <= 0 disables caching entirely (every Get misses, Add is a
// no-op). size, when non-nil, tracks the entry count.
func newResultCache(capacity int, size *Gauge) *resultCache {
	return &resultCache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[string]*list.Element),
		size:    size,
	}
}

// Get returns the cached response for key, marking it most recently used.
func (c *resultCache) Get(key string) ([]byte, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// Add inserts (or refreshes) key's response, evicting the least recently
// used entry when full.
func (c *resultCache) Add(key string, body []byte) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).body = body
		c.order.MoveToFront(el)
		return
	}
	for len(c.entries) >= c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).key)
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, body: body})
	if c.size != nil {
		c.size.Set(int64(len(c.entries)))
	}
}

// Len returns the number of cached entries.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
