package service

import (
	"repro/internal/cache"
	"repro/internal/snapshot"
)

// resultCache is a bounded LRU of serialized analysis responses keyed by
// the request's canonical content hash. Values are the exact bytes written
// to the wire, so a hit reproduces the original response byte for byte.
// The mechanics live in cache.BytesLRU; this wrapper adds the metrics
// mirror and the snapshot round trip.
type resultCache struct {
	lru *cache.BytesLRU
}

// newResultCache builds a cache holding at most capacity entries;
// capacity <= 0 disables caching entirely (every Get misses, Add is a
// no-op). size, when non-nil, tracks the entry count.
func newResultCache(capacity int, size *Gauge) *resultCache {
	var onSize func(int)
	if size != nil {
		onSize = func(n int) { size.Set(int64(n)) }
	}
	return &resultCache{lru: cache.NewBytesLRU(capacity, onSize)}
}

// Get returns the cached response for key, marking it most recently used.
func (c *resultCache) Get(key string) ([]byte, bool) { return c.lru.Get(key) }

// Add inserts (or refreshes) key's response, evicting the least recently
// used entry when full.
func (c *resultCache) Add(key string, body []byte) { c.lru.Add(key, body) }

// Len returns the number of cached entries.
func (c *resultCache) Len() int { return c.lru.Len() }

// Snapshot dumps the cache as snapshot entries, oldest first, so a
// restore replays them through Add and reconstructs the recency order.
func (c *resultCache) Snapshot() []snapshot.Entry {
	keys, bodies := c.lru.Dump()
	entries := make([]snapshot.Entry, len(keys))
	for i := range keys {
		entries[i] = snapshot.Entry{Key: keys[i], Body: bodies[i]}
	}
	return entries
}

// RestoreSnapshot replays snapshot entries into the cache and reports
// how many are resident afterwards.
func (c *resultCache) RestoreSnapshot(entries []snapshot.Entry) int {
	keys := make([]string, len(entries))
	bodies := make([][]byte, len(entries))
	for i, e := range entries {
		keys[i] = e.Key
		bodies[i] = e.Body
	}
	return c.lru.Restore(keys, bodies)
}
