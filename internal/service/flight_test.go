package service

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestFlightCoalesces pins the singleflight contract: N concurrent Do
// calls for one key run fn exactly once, everyone shares the result, and
// exactly N-1 callers report coalesced.
func TestFlightCoalesces(t *testing.T) {
	g := newFlightGroup()
	const n = 16
	var (
		evals     atomic.Int64
		coalesced atomic.Int64
		release   = make(chan struct{})
		started   = make(chan struct{})
		wg        sync.WaitGroup
	)
	fn := func() (flightResult, error) {
		evals.Add(1)
		close(started)
		<-release // hold the call open until all joiners have arrived
		return flightResult{body: []byte("result")}, nil
	}
	do := func() {
		defer wg.Done()
		res, joined, err := g.Do(context.Background(), "key", fn)
		if err != nil {
			t.Error(err)
		}
		if !bytes.Equal(res.body, []byte("result")) {
			t.Errorf("body = %q", res.body)
		}
		if joined {
			coalesced.Add(1)
		}
	}
	wg.Add(1)
	go do()
	<-started // the leader is inside fn and will stay there
	wg.Add(n - 1)
	for i := 0; i < n-1; i++ {
		go do()
	}
	// Release only once every joiner is parked on the leader's call, so
	// "exactly one evaluation" is a hard assertion, not a race.
	for {
		g.mu.Lock()
		c := g.calls["key"]
		g.mu.Unlock()
		if c != nil && c.waiters.Load() == n-1 {
			break
		}
		runtime.Gosched()
	}
	close(release)
	wg.Wait()
	if evals.Load() != 1 {
		t.Errorf("fn ran %d times, want exactly 1", evals.Load())
	}
	if coalesced.Load() != n-1 {
		t.Errorf("coalesced = %d, want %d", coalesced.Load(), n-1)
	}
}

func TestFlightSharesError(t *testing.T) {
	g := newFlightGroup()
	boom := errors.New("boom")
	if _, _, err := g.Do(context.Background(), "k", func() (flightResult, error) {
		return flightResult{}, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// The failed call must have been forgotten: a later Do runs fresh.
	res, joined, err := g.Do(context.Background(), "k", func() (flightResult, error) {
		return flightResult{body: []byte("ok")}, nil
	})
	if err != nil || joined || string(res.body) != "ok" {
		t.Fatalf("retry: res=%q joined=%v err=%v", res.body, joined, err)
	}
}

func TestFlightJoinerContextExpiry(t *testing.T) {
	g := newFlightGroup()
	started := make(chan struct{})
	release := make(chan struct{})
	go g.Do(context.Background(), "k", func() (flightResult, error) {
		close(started)
		<-release
		return flightResult{}, nil
	})
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, joined, err := g.Do(ctx, "k", func() (flightResult, error) {
		t.Error("joiner must not run fn")
		return flightResult{}, nil
	})
	if !joined || !errors.Is(err, context.Canceled) {
		t.Fatalf("joined=%v err=%v, want joined with context.Canceled", joined, err)
	}
	close(release)
}
