package service

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestFlightCoalesces pins the singleflight contract: N concurrent Do
// calls for one key run fn exactly once, everyone shares the result, and
// exactly N-1 callers report coalesced.
func TestFlightCoalesces(t *testing.T) {
	g := newFlightGroup()
	const n = 16
	var (
		evals     atomic.Int64
		coalesced atomic.Int64
		release   = make(chan struct{})
		started   = make(chan struct{})
		wg        sync.WaitGroup
	)
	fn := func() (flightResult, error) {
		evals.Add(1)
		close(started)
		<-release // hold the call open until all joiners have arrived
		return flightResult{body: []byte("result")}, nil
	}
	do := func() {
		defer wg.Done()
		res, joined, err := g.Do(context.Background(), "key", fn)
		if err != nil {
			t.Error(err)
		}
		if !bytes.Equal(res.body, []byte("result")) {
			t.Errorf("body = %q", res.body)
		}
		if joined {
			coalesced.Add(1)
		}
	}
	wg.Add(1)
	go do()
	<-started // the leader is inside fn and will stay there
	wg.Add(n - 1)
	for i := 0; i < n-1; i++ {
		go do()
	}
	// Release only once every joiner is parked on the leader's call, so
	// "exactly one evaluation" is a hard assertion, not a race.
	for {
		g.mu.Lock()
		c := g.calls["key"]
		g.mu.Unlock()
		if c != nil && c.waiters.Load() == n-1 {
			break
		}
		runtime.Gosched()
	}
	close(release)
	wg.Wait()
	if evals.Load() != 1 {
		t.Errorf("fn ran %d times, want exactly 1", evals.Load())
	}
	if coalesced.Load() != n-1 {
		t.Errorf("coalesced = %d, want %d", coalesced.Load(), n-1)
	}
}

func TestFlightSharesError(t *testing.T) {
	g := newFlightGroup()
	boom := errors.New("boom")
	if _, _, err := g.Do(context.Background(), "k", func() (flightResult, error) {
		return flightResult{}, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// The failed call must have been forgotten: a later Do runs fresh.
	res, joined, err := g.Do(context.Background(), "k", func() (flightResult, error) {
		return flightResult{body: []byte("ok")}, nil
	})
	if err != nil || joined || string(res.body) != "ok" {
		t.Fatalf("retry: res=%q joined=%v err=%v", res.body, joined, err)
	}
}

// TestFlightAbandonedWaiterDecrements pins that a joiner abandoning on
// context cancellation decrements the waiter count immediately — while
// the leader is still running — instead of leaking the count until the
// leader returns. The count is load-bearing: TestFlightCoalesces and the
// cluster e2e both spin on it to order their assertions, so a stale
// value would turn "exactly one evaluation" pins into races.
func TestFlightAbandonedWaiterDecrements(t *testing.T) {
	g := newFlightGroup()
	started := make(chan struct{})
	release := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		g.Do(context.Background(), "k", func() (flightResult, error) {
			close(started)
			<-release
			return flightResult{body: []byte("late")}, nil
		})
	}()
	<-started

	waiters := func() int64 {
		g.mu.Lock()
		defer g.mu.Unlock()
		if c := g.calls["k"]; c != nil {
			return c.waiters.Load()
		}
		return -1
	}
	const n = 8
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
			_, joined, err := g.Do(ctx, "k", func() (flightResult, error) {
				t.Error("joiner must not run fn")
				return flightResult{}, nil
			})
			if !joined || !errors.Is(err, context.Canceled) {
				t.Errorf("joined=%v err=%v, want joined with context.Canceled", joined, err)
			}
		}()
	}
	for waiters() != n {
		runtime.Gosched()
	}
	cancel()
	wg.Wait()
	// Every abandoner has returned; the count must already be zero even
	// though the leader is still parked inside fn.
	if w := waiters(); w != 0 {
		t.Errorf("waiters after abandonment = %d, want 0 (leader still running)", w)
	}
	select {
	case <-leaderDone:
		t.Fatal("leader finished early; the assertion above did not test mid-flight state")
	default:
	}
	close(release)
	<-leaderDone
}

func TestFlightJoinerContextExpiry(t *testing.T) {
	g := newFlightGroup()
	started := make(chan struct{})
	release := make(chan struct{})
	go g.Do(context.Background(), "k", func() (flightResult, error) {
		close(started)
		<-release
		return flightResult{}, nil
	})
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, joined, err := g.Do(ctx, "k", func() (flightResult, error) {
		t.Error("joiner must not run fn")
		return flightResult{}, nil
	})
	if !joined || !errors.Is(err, context.Canceled) {
		t.Fatalf("joined=%v err=%v, want joined with context.Canceled", joined, err)
	}
	close(release)
}
