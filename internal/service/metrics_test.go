package service

import (
	"strings"
	"testing"
)

func TestMetricsPrometheusRendering(t *testing.T) {
	m := NewMetrics()
	m.CacheHits.Add(5)
	m.Evaluations.Inc()
	m.QueueDepth.Set(3)
	m.Requests.With("/v1/analyze", "200").Add(7)
	m.Requests.With("/v1/analyze", "400").Inc()
	m.Requests.With("/healthz", "200").Inc()
	m.EvalLatency.With("analyze", "compiled").Observe(0.25)
	m.EvalLatency.With("analyze", "compiled").Observe(0.5)
	m.EvalLatency.With("analyze", "compiled").Observe(42) // beyond the last bound → +Inf bucket only
	m.EvalLatency.With("lint", "closed-form").Observe(0.001)

	var sb strings.Builder
	m.WritePrometheus(&sb)
	out := sb.String()

	for _, want := range []string{
		"# TYPE fsserve_requests_total counter",
		`fsserve_requests_total{endpoint="/healthz",code="200"} 1`,
		`fsserve_requests_total{endpoint="/v1/analyze",code="200"} 7`,
		`fsserve_requests_total{endpoint="/v1/analyze",code="400"} 1`,
		"fsserve_cache_hits_total 5",
		"fsserve_evaluations_total 1",
		"# TYPE fsserve_queue_depth gauge",
		"fsserve_queue_depth 3",
		"# TYPE fsserve_eval_seconds histogram",
		`fsserve_eval_seconds_bucket{endpoint="analyze",mode="compiled",le="0.25"} 1`, // le is inclusive
		`fsserve_eval_seconds_bucket{endpoint="analyze",mode="compiled",le="0.5"} 2`,  // and cumulative
		`fsserve_eval_seconds_bucket{endpoint="analyze",mode="compiled",le="10"} 2`,
		`fsserve_eval_seconds_bucket{endpoint="analyze",mode="compiled",le="+Inf"} 3`,
		`fsserve_eval_seconds_count{endpoint="analyze",mode="compiled"} 3`,
		`fsserve_eval_seconds_sum{endpoint="analyze",mode="compiled"} 42.75`,
		`fsserve_eval_seconds_bucket{endpoint="lint",mode="closed-form",le="0.001"} 1`,
		`fsserve_eval_seconds_count{endpoint="lint",mode="closed-form"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// The buckets below every observation stay empty.
	if !strings.Contains(out, `fsserve_eval_seconds_bucket{endpoint="analyze",mode="compiled",le="0.1"} 0`) {
		t.Errorf("low bucket not empty:\n%s", out)
	}
	if t.Failed() {
		t.Logf("full exposition:\n%s", out)
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	h.Observe(1)   // on the bound → le="1"
	h.Observe(1.5) // le="2"
	h.Observe(3)   // +Inf
	if h.counts[0] != 1 || h.counts[1] != 1 || h.counts[2] != 1 {
		t.Fatalf("counts = %v", h.counts)
	}
	if h.Count() != 3 {
		t.Fatalf("Count = %d", h.Count())
	}
}

func TestLabeledCounterTotalAndArity(t *testing.T) {
	lc := newLabeledCounter("a", "b")
	lc.With("x", "y").Add(2)
	lc.With("x", "z").Inc()
	if lc.Total() != 3 {
		t.Fatalf("Total = %d, want 3", lc.Total())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("wrong label arity must panic")
		}
	}()
	lc.With("only-one")
}
