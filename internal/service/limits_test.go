package service

import (
	"context"
	"errors"
	"runtime"
	"testing"
)

func TestLimiterQueueFull(t *testing.T) {
	g := &Gauge{}
	l := newLimiter(1, 1, g)
	ctx := context.Background()

	release, err := l.acquire(ctx) // takes the only slot
	if err != nil {
		t.Fatal(err)
	}
	// One waiter fits in the queue.
	waiterIn := make(chan struct{})
	waiterOut := make(chan error, 1)
	go func() {
		close(waiterIn)
		rel, err := l.acquire(ctx)
		if err == nil {
			rel()
		}
		waiterOut <- err
	}()
	<-waiterIn
	for g.Value() != 1 {
		runtime.Gosched()
	}
	// The queue is now full: the next acquire is rejected immediately.
	if _, err := l.acquire(ctx); !errors.Is(err, errQueueFull) {
		t.Fatalf("err = %v, want errQueueFull", err)
	}
	release()
	if err := <-waiterOut; err != nil {
		t.Fatalf("queued waiter got %v, want slot after release", err)
	}
	if g.Value() != 0 {
		t.Fatalf("queue depth gauge = %d after drain, want 0", g.Value())
	}
}

func TestLimiterContextCancelWhileQueued(t *testing.T) {
	l := newLimiter(1, 4, nil)
	release, err := l.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := l.acquire(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestLimiterConcurrencyBound(t *testing.T) {
	l := newLimiter(2, 0, nil)
	r1, err1 := l.acquire(context.Background())
	r2, err2 := l.acquire(context.Background())
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if _, err := l.acquire(context.Background()); !errors.Is(err, errQueueFull) {
		t.Fatalf("third acquire with zero queue: err = %v, want errQueueFull", err)
	}
	r1()
	r3, err := l.acquire(context.Background())
	if err != nil {
		t.Fatalf("after release: %v", err)
	}
	r3()
	r2()
}
