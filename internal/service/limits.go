package service

import (
	"context"
	"time"

	"repro/internal/admission"
)

// errQueueFull is returned by limiter.acquire when the bounded wait queue
// is already at capacity; the handlers map it to 429 with Retry-After.
var errQueueFull = admission.ErrQueueFull

// limiter bounds the number of concurrent model evaluations and the
// number of requests allowed to wait for a slot. Admission control is the
// server's backpressure: beyond the adaptive limit running plus maxQueue
// waiting, requests are rejected immediately rather than piling up. The
// mechanics live in admission.Controller, which also adapts the limit
// from observed evaluation latency (AIMD against a warm baseline) and
// evicts queued requests whose deadlines provably cannot be met.
type limiter struct {
	ctrl *admission.Controller
}

// newLimiter builds a limiter with the default hooks: the queue-depth
// gauge only. The server wires richer hooks via newLimiterWith.
func newLimiter(maxConcurrent, maxQueue int, depth *Gauge) *limiter {
	return newLimiterWith(admission.Config{
		MaxConcurrent: maxConcurrent,
		MaxQueue:      maxQueue,
		OnQueueDepth: func(d int) {
			if depth != nil {
				depth.Set(int64(d))
			}
		},
	})
}

// newLimiterWith builds a limiter from a full admission config.
func newLimiterWith(cfg admission.Config) *limiter {
	return &limiter{ctrl: admission.New(cfg)}
}

// acquire blocks until an evaluation slot is free, the queue is full, the
// caller's deadline is provably unmeetable, or ctx is done. On success
// the returned release function must be called exactly once.
func (l *limiter) acquire(ctx context.Context) (release func(), err error) {
	return l.ctrl.Acquire(ctx)
}

// observe feeds one completed evaluation's latency into the adaptive
// limit.
func (l *limiter) observe(latency time.Duration, success bool) {
	l.ctrl.Observe(latency, success)
}

// estimatedWait is the drain estimate for a newly queued request.
func (l *limiter) estimatedWait() time.Duration { return l.ctrl.EstimatedWait() }

// poolStats is a point-in-time view of the pool's saturation, feeding
// /readyz and the jittered Retry-After derivation.
type poolStats struct {
	running  int     // evaluations holding a slot right now
	capacity int     // the configured ceiling (-concurrency)
	limit    float64 // current adaptive concurrency limit <= capacity
	waiting  int     // requests queued for a slot
	maxWait  int     // queue capacity
}

func (l *limiter) stats() poolStats {
	st := l.ctrl.Stats()
	return poolStats{
		running:  st.Running,
		capacity: st.Ceiling,
		limit:    st.Limit,
		waiting:  st.Waiting,
		maxWait:  st.MaxWait,
	}
}
