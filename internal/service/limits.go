package service

import (
	"context"
	"errors"
	"sync"
)

// errQueueFull is returned by limiter.acquire when the bounded wait queue
// is already at capacity; the handlers map it to 429 with Retry-After.
var errQueueFull = errors.New("service: evaluation queue full")

// limiter bounds the number of concurrent model evaluations and the
// number of requests allowed to wait for a slot. Admission control is the
// server's backpressure: beyond maxConcurrent running plus maxQueue
// waiting, requests are rejected immediately rather than piling up.
type limiter struct {
	slots chan struct{} // buffered; a token = permission to evaluate

	mu      sync.Mutex
	waiting int
	maxWait int
	depth   *Gauge // nil-safe mirror of waiting
}

func newLimiter(maxConcurrent, maxQueue int, depth *Gauge) *limiter {
	l := &limiter{
		slots:   make(chan struct{}, maxConcurrent),
		maxWait: maxQueue,
		depth:   depth,
	}
	for i := 0; i < maxConcurrent; i++ {
		l.slots <- struct{}{}
	}
	return l
}

// acquire blocks until an evaluation slot is free, the queue is full, or
// ctx is done, in that priority. On success the returned release function
// must be called exactly once.
func (l *limiter) acquire(ctx context.Context) (release func(), err error) {
	// Fast path: a free slot means no queueing at all.
	select {
	case <-l.slots:
		return l.release, nil
	default:
	}

	l.mu.Lock()
	if l.waiting >= l.maxWait {
		l.mu.Unlock()
		return nil, errQueueFull
	}
	l.waiting++
	if l.depth != nil {
		l.depth.Set(int64(l.waiting))
	}
	l.mu.Unlock()
	defer func() {
		l.mu.Lock()
		l.waiting--
		if l.depth != nil {
			l.depth.Set(int64(l.waiting))
		}
		l.mu.Unlock()
	}()

	select {
	case <-l.slots:
		return l.release, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (l *limiter) release() { l.slots <- struct{}{} }

// poolStats is a point-in-time view of the pool's saturation, feeding
// /readyz and the jittered Retry-After derivation.
type poolStats struct {
	running  int // evaluations holding a slot right now
	capacity int // total slots
	waiting  int // requests queued for a slot
	maxWait  int // queue capacity
}

func (l *limiter) stats() poolStats {
	l.mu.Lock()
	w := l.waiting
	l.mu.Unlock()
	return poolStats{
		running:  cap(l.slots) - len(l.slots),
		capacity: cap(l.slots),
		waiting:  w,
		maxWait:  l.maxWait,
	}
}
