package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/retry"
)

// headerForwarded is the hop guard: a forwarded request carries it, and
// the receiving node always serves it locally — even if its own health
// view ranks a different owner — so differing views cost one extra hop,
// never a forwarding loop.
const headerForwarded = "X-FS-Forwarded"

// ClusterConfig wires a Server into an fscluster mesh. Advertise and
// Peers are required (a nil or Advertise-less config leaves the server
// single-node); every other field documents its default.
type ClusterConfig struct {
	// Advertise is this node's address as peers reach it (host:port,
	// the -advertise flag).
	Advertise string
	// Peers lists every cluster member (host:port; Advertise may be
	// included and is filtered out).
	Peers []string
	// Replication is how many ranked owners each content-addressed key
	// has (0 = default 2, clamped to the member count).
	Replication int
	// ProbeInterval / ProbeTimeout / SuspectAfter / DownAfter tune the
	// health prober; zero values take cluster.Config's defaults
	// (1s, 1s, 2, 4).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	SuspectAfter  int
	DownAfter     int
	// HedgeDelay pins the forward hedge delay (0 = adaptive p95 with a
	// 1s ceiling). Tests pin it high to forbid hedging, or low to force
	// it.
	HedgeDelay time.Duration
	// ForwardTimeout bounds one forwarded exchange when the request
	// context carries no tighter deadline (0 = default 10s).
	ForwardTimeout time.Duration
	// FillTimeout bounds one peer cache-fill GET (0 = default 250ms).
	FillTimeout time.Duration
	// PushQueue bounds the async replica-push queue (0 = default 256;
	// negative disables pushes entirely — replicas then warm only via
	// fill lookups).
	PushQueue int
	// PushWorkers is how many goroutines drain the push queue
	// (0 = default 2).
	PushWorkers int
}

func (c ClusterConfig) withDefaults() ClusterConfig {
	if c.ForwardTimeout <= 0 {
		c.ForwardTimeout = 10 * time.Second
	}
	if c.FillTimeout <= 0 {
		c.FillTimeout = 250 * time.Millisecond
	}
	if c.PushQueue == 0 {
		c.PushQueue = 256
	}
	if c.PushWorkers <= 0 {
		c.PushWorkers = 2
	}
	return c
}

// clusterRoute is the forwarding context one cacheable request carries
// into guarded: where an owner would serve it and the canonical payload
// to proxy. A nil route (cluster disabled, or an endpoint that cannot
// forward) always evaluates locally.
type clusterRoute struct {
	// path is the endpoint to proxy to ("/v1/analyze", "/v1/lint",
	// "/v1/tune").
	path string
	// payload is the re-marshaled request body. Request structs marshal
	// losslessly, so the owner resolves the identical cache key —
	// assuming homogeneous -eval/-extrapolate config across the fleet
	// (see docs/CLUSTER.md).
	payload []byte
	// forwarded marks a request that already took its one hop.
	forwarded bool
}

// clusterRouteFor builds the forwarding context for one request, or nil
// when the server is single-node (or req does not marshal, which cannot
// happen for the wire request types).
func (s *Server) clusterRouteFor(r *http.Request, path string, req any) *clusterRoute {
	if s.cluster == nil {
		return nil
	}
	payload, err := json.Marshal(req)
	if err != nil {
		return nil
	}
	return &clusterRoute{path: path, payload: payload, forwarded: r.Header.Get(headerForwarded) != ""}
}

// pushItem is one queued replica cache push.
type pushItem struct {
	peer string
	key  string
	body []byte
}

// serverCluster is the Server's cluster face: membership + ownership
// (internal/cluster), owner forwarding with hedged replica reads, and
// the peer cache fill/push plumbing.
type serverCluster struct {
	s      *Server
	cfg    ClusterConfig
	cl     *cluster.Cluster
	client *http.Client
	hedger *retry.Hedger

	pushes chan pushItem
	stop   chan struct{}
	wg     sync.WaitGroup
	closed sync.Once
}

// newServerCluster wires a cluster into s and starts health probing and
// the push workers.
func newServerCluster(s *Server, cfg ClusterConfig) *serverCluster {
	cfg = cfg.withDefaults()
	sc := &serverCluster{
		s:      s,
		cfg:    cfg,
		stop:   make(chan struct{}),
		client: &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 16}},
	}
	hcfg := retry.HedgeConfig{}
	if cfg.HedgeDelay > 0 {
		// A pinned delay: MinDelay == MaxDelay leaves the adaptive p95 no
		// room to move.
		hcfg.MinDelay = cfg.HedgeDelay
		hcfg.MaxDelay = cfg.HedgeDelay
	}
	sc.hedger = retry.NewHedger(hcfg)
	sc.cl = cluster.New(cluster.Config{
		Self:          cfg.Advertise,
		Peers:         cfg.Peers,
		Replication:   cfg.Replication,
		ProbeInterval: cfg.ProbeInterval,
		ProbeTimeout:  cfg.ProbeTimeout,
		SuspectAfter:  cfg.SuspectAfter,
		DownAfter:     cfg.DownAfter,
		Logger:        s.cfg.Logger,
		Seed:          s.cfg.Seed,
		OnProbe: func(peer string, ok bool) {
			outcome := "fail"
			if ok {
				outcome = "ok"
			}
			s.metrics.ClusterProbes.With(peer, outcome).Inc()
		},
		OnState: func(peer string, st cluster.State) {
			var v int64
			if st == cluster.StateHealthy {
				v = 1
			}
			s.metrics.ClusterPeerHealthy.With(peer).Set(v)
		},
	})
	if cfg.PushQueue > 0 {
		sc.pushes = make(chan pushItem, cfg.PushQueue)
		for i := 0; i < cfg.PushWorkers; i++ {
			sc.wg.Add(1)
			go sc.pushLoop()
		}
	}
	sc.cl.Start()
	return sc
}

// close stops probing and the push workers and waits for them.
func (sc *serverCluster) close() {
	sc.closed.Do(func() { close(sc.stop) })
	sc.cl.Close()
	sc.wg.Wait()
	sc.client.CloseIdleConnections()
}

// routed is a routing decision that handled the request: either a body
// to serve or an error to surface. A nil *routed means "serve locally".
type routed struct {
	body   []byte
	source string
	err    error
}

// route decides how this node serves one cacheable request. The primary
// owner (rank 1 among healthy members) — and any node receiving an
// already-forwarded request — evaluates locally, which is what keeps the
// fleet at exactly one evaluation per key: every other node serves its
// local cached copy if it has one, else proxies to the owners (primary
// first, hedging to the replica when the primary is slow). A forward
// that fails on backpressure or a down owner degrades to the local
// closed-form answer — the cluster layer never converts an owner outage
// into a 5xx.
func (sc *serverCluster) route(ctx context.Context, endpoint, key string, rt *clusterRoute, degrade func(string) ([]byte, error)) *routed {
	owners := sc.cl.Owners(key)
	if len(owners) == 0 || owners[0] == sc.cl.Self() {
		return nil
	}
	if b, ok := sc.s.cache.Get(key); ok {
		sc.s.metrics.CacheHits.Inc()
		return &routed{body: b, source: "hit"}
	}
	targets := make([]string, 0, len(owners))
	for _, o := range owners {
		if o != sc.cl.Self() {
			targets = append(targets, o)
		}
	}
	body, cacheable, err := sc.forward(ctx, rt, targets)
	if err == nil {
		if cacheable {
			sc.s.cache.Add(key, body)
		}
		return &routed{body: body, source: "forward"}
	}
	if st := statusFor(err); st >= 400 && st < 500 && st != http.StatusTooManyRequests {
		// The owner judged the request itself invalid; re-evaluating
		// locally would reach the same verdict expensively.
		return &routed{err: err}
	}
	b, src, derr := sc.s.degrade(endpoint, degrade, "owner-down")
	return &routed{body: b, source: src, err: derr}
}

// forward proxies the request to the owner set, primary first with a
// hedged read to the replica: when the primary outlives the hedge delay
// (adaptive p95, budget-bounded), the replica gets a copy of the request
// and the first answer wins — one GC-pausing owner does not set the
// fleet p99. cacheable reports whether the body may enter the local
// cache (degraded bodies may not: they are a fallback, not the answer).
func (sc *serverCluster) forward(ctx context.Context, rt *clusterRoute, targets []string) (body []byte, cacheable bool, err error) {
	type reply struct {
		body   []byte
		xcache string
	}
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, sc.cfg.ForwardTimeout)
		defer cancel()
	}
	hedger := sc.hedger
	if len(targets) < 2 {
		hedger = nil // nothing to hedge to; DoHedged degrades to one call
	}
	start := time.Now()
	out, err := retry.DoHedged(ctx, hedger, func(ctx context.Context, hedged bool) (reply, error) {
		peer := targets[0]
		if hedged {
			peer = targets[1]
		}
		b, xc, err := sc.post(ctx, peer, rt, hedged)
		return reply{b, xc}, err
	})
	sc.s.metrics.ClusterForwardLatency.Observe(time.Since(start).Seconds())
	if err != nil {
		return nil, false, err
	}
	return out.body, out.xcache != "degraded", nil
}

// post performs one forwarded exchange with peer, classifying the
// outcome for the per-peer metric: "ok"/"hedged" (200), "client-error"
// (the owner's 4xx verdict passes through), "backpressure" (429/503 —
// also suppresses hedging for the advertised Retry-After), "error"
// (transport failure or a 5xx).
func (sc *serverCluster) post(ctx context.Context, peer string, rt *clusterRoute, hedged bool) (body []byte, xcache string, err error) {
	outcome := "error"
	defer func() { sc.s.metrics.ClusterForwards.With(peer, outcome).Inc() }()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+peer+rt.path, bytes.NewReader(rt.payload))
	if err != nil {
		return nil, "", err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(headerForwarded, "1")
	if d, ok := ctx.Deadline(); ok {
		// Propagate the remaining budget, not the original timeout: the
		// owner should stop when this node's client would stop listening.
		req.Header.Set("X-Request-Deadline", time.Until(d).String())
	}
	resp, err := sc.client.Do(req)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, "", err
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		outcome = "ok"
		if hedged {
			outcome = "hedged"
		}
		return b, resp.Header.Get("X-Cache"), nil
	case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
		outcome = "backpressure"
		ra := time.Second
		if secs, aerr := strconv.Atoi(resp.Header.Get("Retry-After")); aerr == nil && secs > 0 {
			ra = time.Duration(secs) * time.Second
		}
		sc.hedger.NoteBackpressure(ra)
		return nil, "", &apiError{status: resp.StatusCode, msg: fmt.Sprintf("peer %s rejected forward: status %d", peer, resp.StatusCode)}
	case resp.StatusCode >= 400 && resp.StatusCode < 500:
		outcome = "client-error"
		var env struct {
			Error *APIError `json:"error"`
		}
		if jerr := json.Unmarshal(b, &env); jerr == nil && env.Error != nil {
			return nil, "", &apiError{status: env.Error.Code, msg: env.Error.Message}
		}
		return nil, "", &apiError{status: resp.StatusCode, msg: fmt.Sprintf("peer %s: status %d", peer, resp.StatusCode)}
	}
	return nil, "", fmt.Errorf("peer %s: status %d", peer, resp.StatusCode)
}

// peerFill asks the key's other owners for a cached copy before this
// node pays for an evaluation: a replica whose push was dropped (or that
// restarted cold) recovers the entry for one cheap intra-cluster GET.
// Runs inside the flight leader, so at most one fill per key is in
// flight per node.
func (sc *serverCluster) peerFill(ctx context.Context, key string) ([]byte, bool) {
	asked := false
	for _, o := range sc.cl.Owners(key) {
		if o == sc.cl.Self() {
			continue
		}
		asked = true
		if b, ok := sc.fillFrom(ctx, o, key); ok {
			sc.s.metrics.ClusterFillHits.Inc()
			return b, true
		}
	}
	if asked {
		sc.s.metrics.ClusterFillMisses.Inc()
	}
	return nil, false
}

// fillFrom performs one bounded peer cache lookup.
func (sc *serverCluster) fillFrom(ctx context.Context, peer, key string) ([]byte, bool) {
	fctx, cancel := context.WithTimeout(ctx, sc.cfg.FillTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(fctx, http.MethodGet, "http://"+peer+"/v1/peer/cache?key="+key, nil)
	if err != nil {
		return nil, false
	}
	resp, err := sc.client.Do(req)
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, false
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, false
	}
	return b, true
}

// enqueuePush schedules fire-and-forget replica pushes of a freshly
// evaluated entry. The queue is bounded and a full queue drops the push
// (counted) rather than blocking the evaluation path — a dropped push
// only costs a later fill lookup.
func (sc *serverCluster) enqueuePush(key string, body []byte) {
	if sc.pushes == nil {
		return
	}
	for _, o := range sc.cl.Owners(key) {
		if o == sc.cl.Self() {
			continue
		}
		select {
		case sc.pushes <- pushItem{peer: o, key: key, body: body}:
		default:
			sc.s.metrics.ClusterFillDrops.Inc()
		}
	}
}

// pushLoop drains the push queue until close.
func (sc *serverCluster) pushLoop() {
	defer sc.wg.Done()
	for {
		select {
		case <-sc.stop:
			return
		case it := <-sc.pushes:
			sc.doPush(it)
		}
	}
}

// doPush performs one replica cache push.
func (sc *serverCluster) doPush(it pushItem) {
	ctx, cancel := context.WithTimeout(context.Background(), sc.cfg.FillTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+it.peer+"/v1/peer/cache?key="+it.key, bytes.NewReader(it.body))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := sc.client.Do(req)
	if err != nil {
		sc.s.cfg.Logger.Debug("cluster push failed", "peer", it.peer, "err", err)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusNoContent {
		sc.s.metrics.ClusterFillPushes.Inc()
	}
}

// validCacheKey reports whether key is a canonical content hash
// (lowercase SHA-256 hex), the only keys the peer cache endpoints
// accept: this is an internal mesh API, not a general KV store.
func validCacheKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// handlePeerCacheGet serves GET /v1/peer/cache?key=: a replica's cheap
// cache lookup. 200 with the exact cached bytes, or 404.
func (s *Server) handlePeerCacheGet(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("key")
	if !validCacheKey(key) {
		s.writeError(w, badRequestf("key must be a 64-char lowercase hex content hash"))
		return
	}
	b, ok := s.cache.Get(key)
	if !ok {
		s.writeError(w, &apiError{status: http.StatusNotFound, msg: "key not cached"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", "hit")
	w.Write(b)
}

// handlePeerCachePut serves POST /v1/peer/cache?key=: an owner pushing
// a freshly evaluated entry to this replica. 204 on acceptance.
func (s *Server) handlePeerCachePut(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("key")
	if !validCacheKey(key) {
		s.writeError(w, badRequestf("key must be a 64-char lowercase hex content hash"))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		s.writeError(w, &apiError{status: http.StatusRequestEntityTooLarge, msg: "push body too large"})
		return
	}
	if len(body) == 0 {
		s.writeError(w, badRequestf("empty push body"))
		return
	}
	s.cache.Add(key, body)
	w.WriteHeader(http.StatusNoContent)
}
