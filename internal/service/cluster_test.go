package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
)

// clusterNode is one in-process fsserve node on a real listener.
type clusterNode struct {
	svc  *Server
	hs   *http.Server
	addr string
}

// startServiceCluster binds n loopback listeners first (so every node
// knows the full member list before construction), then starts one
// clustered Server per listener. The default config pins the hedge delay
// high so no test sees a surprise hedge; mutate customizes per node.
func startServiceCluster(t *testing.T, n int, mutate func(i int, cfg *Config)) []*clusterNode {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	nodes := make([]*clusterNode, n)
	for i := range nodes {
		cfg := Config{
			Logger: discardLogger(),
			Cluster: &ClusterConfig{
				Advertise:  addrs[i],
				Peers:      addrs,
				HedgeDelay: 30 * time.Second,
			},
		}
		if mutate != nil {
			mutate(i, &cfg)
		}
		svc := New(cfg)
		hs := &http.Server{Handler: svc.Handler()}
		go hs.Serve(lns[i])
		nodes[i] = &clusterNode{svc: svc, hs: hs, addr: addrs[i]}
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.hs.Close()
			nd.svc.Close()
		}
	})
	return nodes
}

// postNode POSTs body to a node over real HTTP and returns status,
// headers and body.
func postNode(t *testing.T, addr, path string, body any, header map[string]string) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, "http://"+addr+path, bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range header {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	rb, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, rb
}

// requestOwnedBy searches chunk sizes for an analyze request whose
// content key ranks want as primary among members. The chunk only
// perturbs the cache key (the source's schedule pragma wins at
// evaluation), so any hit is a valid probe request.
func requestOwnedBy(t *testing.T, s *Server, members []string, want string) AnalyzeRequest {
	t.Helper()
	for chunk := int64(0); chunk < 512; chunk++ {
		req := AnalyzeRequest{Source: victimSrc, Chunk: chunk}
		rr, err := s.resolve(req)
		if err != nil {
			t.Fatal(err)
		}
		if cluster.Rank(members, rr.key, 1)[0] == want {
			return req
		}
	}
	t.Fatalf("no request found with primary %s among %v", want, members)
	return AnalyzeRequest{}
}

// TestClusterForwardToOwner pins the ownership contract on a 2-node
// cluster: the non-owner proxies to the primary, serves byte-identical
// bytes, caches the forwarded copy locally, and never evaluates.
func TestClusterForwardToOwner(t *testing.T) {
	nodes := startServiceCluster(t, 2, nil)
	members := []string{nodes[0].addr, nodes[1].addr}
	req := requestOwnedBy(t, nodes[0].svc, members, nodes[0].addr)

	resp, fwd := postNode(t, nodes[1].addr, "/v1/analyze", req, nil)
	if resp.StatusCode != 200 {
		t.Fatalf("forwarded status = %d: %s", resp.StatusCode, fwd)
	}
	if got := resp.Header.Get("X-Cache"); got != "forward" {
		t.Fatalf("X-Cache = %q, want forward", got)
	}
	resp2, direct := postNode(t, nodes[0].addr, "/v1/analyze", req, nil)
	if resp2.Header.Get("X-Cache") != "hit" {
		t.Errorf("owner X-Cache = %q, want hit (forward evaluated there)", resp2.Header.Get("X-Cache"))
	}
	if !bytes.Equal(fwd, direct) {
		t.Errorf("forwarded body differs from owner's:\n%s\nvs\n%s", fwd, direct)
	}
	if n := nodes[0].svc.Metrics().Evaluations.Value(); n != 1 {
		t.Errorf("owner evaluations = %d, want 1", n)
	}
	if n := nodes[1].svc.Metrics().Evaluations.Value(); n != 0 {
		t.Errorf("non-owner evaluations = %d, want 0", n)
	}

	// The forwarded copy was cached: the non-owner now serves it locally.
	resp3, _ := postNode(t, nodes[1].addr, "/v1/analyze", req, nil)
	if got := resp3.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("repeat X-Cache = %q, want hit (forwarded body cached)", got)
	}
}

// TestClusterMetricsHygiene pins that every fsserve_cluster_* metric is
// registered and rendered: all nine names appear in /metrics after one
// forwarded request, and the touched labeled families carry per-peer
// series rows.
func TestClusterMetricsHygiene(t *testing.T) {
	nodes := startServiceCluster(t, 2, nil)
	members := []string{nodes[0].addr, nodes[1].addr}
	req := requestOwnedBy(t, nodes[0].svc, members, nodes[0].addr)
	if resp, body := postNode(t, nodes[1].addr, "/v1/analyze", req, nil); resp.StatusCode != 200 {
		t.Fatalf("forward failed: %d %s", resp.StatusCode, body)
	}

	mresp, err := http.Get("http://" + nodes[1].addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	mb, _ := io.ReadAll(mresp.Body)
	metrics := string(mb)
	for _, name := range []string{
		"fsserve_cluster_forwards_total",
		"fsserve_cluster_forward_seconds",
		"fsserve_cluster_peer_healthy",
		"fsserve_cluster_probes_total",
		"fsserve_cluster_fill_hits_total",
		"fsserve_cluster_fill_misses_total",
		"fsserve_cluster_fill_pushes_total",
		"fsserve_cluster_fill_dropped_total",
	} {
		if !strings.Contains(metrics, "# TYPE "+name) {
			t.Errorf("/metrics missing %s", name)
		}
	}
	wantRow := fmt.Sprintf("fsserve_cluster_forwards_total{peer=%q,outcome=\"ok\"} 1", nodes[0].addr)
	if !strings.Contains(metrics, wantRow) {
		t.Errorf("/metrics missing forwards series %q in:\n%s", wantRow, metrics)
	}
	if !strings.Contains(metrics, fmt.Sprintf("fsserve_cluster_peer_healthy{peer=%q} 1", nodes[0].addr)) {
		t.Errorf("/metrics missing peer_healthy series for %s", nodes[0].addr)
	}
	if !strings.Contains(metrics, "fsserve_cluster_forward_seconds_count 1") {
		t.Errorf("/metrics missing forward latency observation")
	}
}

// TestClusterOwnerDownDegrades pins degrade-to-local-closed-form: a
// forward whose owner is unreachable answers 200 with the closed-form
// fallback — never a 5xx — and counts the "owner-down" degradation.
func TestClusterOwnerDownDegrades(t *testing.T) {
	// A dead peer: bind a port, learn its address, close it again.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	svc := New(Config{
		Logger: discardLogger(),
		Cluster: &ClusterConfig{
			Advertise: addr,
			Peers:     []string{addr, deadAddr},
			// Slow probes: the dead peer must still be in the ring when
			// the request arrives, so the forward genuinely fails.
			ProbeInterval: time.Minute,
			HedgeDelay:    30 * time.Second,
		},
	})
	hs := &http.Server{Handler: svc.Handler()}
	go hs.Serve(ln)
	t.Cleanup(func() { hs.Close(); svc.Close() })

	members := []string{addr, deadAddr}
	req := requestOwnedBy(t, svc, members, deadAddr)
	resp, body := postNode(t, addr, "/v1/analyze", req, nil)
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d, want 200 (degraded, never 5xx): %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Cache"); got != "degraded" {
		t.Errorf("X-Cache = %q, want degraded", got)
	}
	var ar AnalyzeResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	if !ar.Degraded || ar.DegradedReason != "owner-down" || ar.ClosedForm == nil {
		t.Errorf("degraded=%v reason=%q closed_form=%v, want owner-down closed form",
			ar.Degraded, ar.DegradedReason, ar.ClosedForm)
	}
	if n := svc.Metrics().Degraded.With(endpointAnalyze, "owner-down").Value(); n != 1 {
		t.Errorf("degraded{analyze,owner-down} = %d, want 1", n)
	}
	if n := svc.Metrics().Evaluations.Value(); n != 0 {
		t.Errorf("evaluations = %d, want 0 (closed form only)", n)
	}
}

// TestPeerCacheEndpoints pins the internal mesh API: key validation,
// 404 on miss, 204 push, and the pushed bytes served back verbatim.
func TestPeerCacheEndpoints(t *testing.T) {
	nodes := startServiceCluster(t, 2, nil)
	addr := nodes[0].addr
	key := strings.Repeat("ab12", 16) // 64 hex chars

	if resp, _ := postNode(t, addr, "/v1/peer/cache?key=nothex", nil, nil); resp.StatusCode != 400 {
		t.Errorf("bad key POST status = %d, want 400", resp.StatusCode)
	}
	gresp, err := http.Get("http://" + addr + "/v1/peer/cache?key=" + key)
	if err != nil {
		t.Fatal(err)
	}
	gresp.Body.Close()
	if gresp.StatusCode != 404 {
		t.Errorf("missing key GET status = %d, want 404", gresp.StatusCode)
	}

	payload := []byte(`{"pushed":true}`)
	preq, _ := http.NewRequest(http.MethodPost, "http://"+addr+"/v1/peer/cache?key="+key, bytes.NewReader(payload))
	presp, err := http.DefaultClient.Do(preq)
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != 204 {
		t.Fatalf("push status = %d, want 204", presp.StatusCode)
	}
	gresp2, err := http.Get("http://" + addr + "/v1/peer/cache?key=" + key)
	if err != nil {
		t.Fatal(err)
	}
	defer gresp2.Body.Close()
	got, _ := io.ReadAll(gresp2.Body)
	if gresp2.StatusCode != 200 || !bytes.Equal(got, payload) {
		t.Errorf("round trip = %d %q, want 200 %q", gresp2.StatusCode, got, payload)
	}
}

// TestClusterPeerFill pins the fill path: a node evaluating a forwarded
// request (hop guard set, so it cannot re-forward) recovers the entry
// from a replica's cache instead of re-evaluating. Pushes are disabled
// so the copy can only have arrived via the fill lookup.
func TestClusterPeerFill(t *testing.T) {
	nodes := startServiceCluster(t, 2, func(i int, cfg *Config) {
		cfg.Cluster.PushQueue = -1
	})
	members := []string{nodes[0].addr, nodes[1].addr}
	req := requestOwnedBy(t, nodes[0].svc, members, nodes[0].addr)

	// Seed the owner's cache with a real evaluation.
	if resp, body := postNode(t, nodes[0].addr, "/v1/analyze", req, nil); resp.StatusCode != 200 {
		t.Fatalf("seed failed: %d %s", resp.StatusCode, body)
	}
	// Hit the other node with the hop guard set: it must serve locally,
	// and its local miss should be answered by the owner's cache.
	resp, body := postNode(t, nodes[1].addr, "/v1/analyze", req, map[string]string{headerForwarded: "1"})
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Cache"); got != "peer-fill" {
		t.Fatalf("X-Cache = %q, want peer-fill", got)
	}
	_, direct := postNode(t, nodes[0].addr, "/v1/analyze", req, nil)
	if !bytes.Equal(body, direct) {
		t.Error("peer-filled body differs from the owner's")
	}
	if n := nodes[1].svc.Metrics().Evaluations.Value(); n != 0 {
		t.Errorf("filled node evaluations = %d, want 0", n)
	}
	if n := nodes[1].svc.Metrics().ClusterFillHits.Value(); n != 1 {
		t.Errorf("fill hits = %d, want 1", n)
	}
}

// TestClusterPushWarmsReplica pins the async push: after the primary
// evaluates, the replica receives the entry without ever forwarding, so
// a later request to the replica is a local hit.
func TestClusterPushWarmsReplica(t *testing.T) {
	nodes := startServiceCluster(t, 2, nil)
	members := []string{nodes[0].addr, nodes[1].addr}
	req := requestOwnedBy(t, nodes[0].svc, members, nodes[0].addr)

	if resp, body := postNode(t, nodes[0].addr, "/v1/analyze", req, nil); resp.StatusCode != 200 {
		t.Fatalf("evaluate failed: %d %s", resp.StatusCode, body)
	}
	deadline := time.Now().Add(5 * time.Second)
	for nodes[1].svc.cache.Len() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("push never landed on the replica")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if n := nodes[0].svc.Metrics().ClusterFillPushes.Value(); n != 1 {
		t.Errorf("pushes = %d, want 1", n)
	}
	resp, _ := postNode(t, nodes[1].addr, "/v1/analyze", req, nil)
	if got := resp.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("replica X-Cache = %q, want hit (entry was pushed)", got)
	}
	if n := nodes[1].svc.Metrics().Evaluations.Value(); n != 0 {
		t.Errorf("replica evaluations = %d, want 0", n)
	}
}

// TestClusterHedgedForward pins the hedged replica read: when the
// primary target stalls past the pinned hedge delay, the backup request
// to the second target answers and wins.
func TestClusterHedgedForward(t *testing.T) {
	release := make(chan struct{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
			return
		}
		w.Header().Set("X-Cache", "hit")
		io.WriteString(w, `{"from":"slow"}`)
	}))
	defer slow.Close()
	defer close(release)
	fast := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Cache", "hit")
		io.WriteString(w, `{"from":"fast"}`)
	}))
	defer fast.Close()
	slowAddr := strings.TrimPrefix(slow.URL, "http://")
	fastAddr := strings.TrimPrefix(fast.URL, "http://")

	svc := New(Config{
		Logger: discardLogger(),
		Cluster: &ClusterConfig{
			Advertise:     "self.invalid:1",
			Peers:         []string{slowAddr, fastAddr},
			ProbeInterval: time.Minute,
			HedgeDelay:    10 * time.Millisecond,
		},
	})
	t.Cleanup(func() { svc.Close() })

	rt := &clusterRoute{path: "/v1/analyze", payload: []byte(`{}`)}
	body, cacheable, err := svc.cluster.forward(context.Background(), rt, []string{slowAddr, fastAddr})
	if err != nil {
		t.Fatal(err)
	}
	if !cacheable || string(body) != `{"from":"fast"}` {
		t.Fatalf("hedged forward = %q cacheable=%v, want the fast replica's body", body, cacheable)
	}
	if n := svc.Metrics().ClusterForwards.With(fastAddr, "hedged").Value(); n != 1 {
		t.Errorf("forwards{%s,hedged} = %d, want 1", fastAddr, n)
	}
}

// TestClusterReadyzExposesPeers pins the ops surface: /readyz reports
// the membership view with per-peer states.
func TestClusterReadyzExposesPeers(t *testing.T) {
	nodes := startServiceCluster(t, 2, nil)
	resp, err := http.Get("http://" + nodes[0].addr + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rz ReadyzResponse
	if err := json.NewDecoder(resp.Body).Decode(&rz); err != nil {
		t.Fatal(err)
	}
	if rz.Cluster == nil {
		t.Fatal("readyz has no cluster section")
	}
	if rz.Cluster.Self != nodes[0].addr {
		t.Errorf("readyz self = %q, want %q", rz.Cluster.Self, nodes[0].addr)
	}
	if st := rz.Cluster.Peers[nodes[1].addr]; st != "healthy" {
		t.Errorf("peer state = %q, want healthy", st)
	}
}
