package service

import (
	"context"
	"encoding/json"
	"net/http"
	"runtime"
	"testing"
)

// TestBatchItemAccounting pins the per-item accounting contract: a batch
// envelope is a 200 even when items inside it fail, so every item is
// counted individually in fsserve_requests_total under the "batch-item"
// endpoint, 429 items additionally increment the queue-reject counter,
// and throttled items carry retry_after_seconds so batch callers can
// back off per item. The counters must reconcile exactly with the
// embedded results — no silent failures.
func TestBatchItemAccounting(t *testing.T) {
	s := newTestServer(t, Config{MaxConcurrent: 1, MaxQueue: 1})
	itemCount := func(status string) int64 {
		return s.Metrics().Requests.With(endpointBatchItem, status).Value()
	}

	// Saturate admission deterministically: occupy the only evaluation
	// slot directly and park one request in the only queue spot.
	release, err := s.limiter.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	parked := make(chan struct{})
	go func() {
		defer close(parked)
		post(t, s, "/v1/analyze", AnalyzeRequest{Source: victimSrc, Chunk: 16})
	}()
	for s.Metrics().QueueDepth.Value() != 1 {
		runtime.Gosched()
	}

	batch := BatchRequest{Requests: []AnalyzeRequest{
		{Source: victimSrc},           // throttled: queue full
		{Kernel: "bogus"},             // invalid: 400, never reaches the pool
		{Source: victimSrc, Chunk: 2}, // throttled: queue full
	}}
	w := post(t, s, "/v1/analyze/batch", batch)
	if w.Code != 200 {
		t.Fatalf("batch envelope = %d, want 200: %s", w.Code, w.Body.String())
	}
	var bresp BatchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &bresp); err != nil {
		t.Fatal(err)
	}

	// Reconcile the embedded errors against the batch-item counters.
	counts := map[int]int{}
	for i, r := range bresp.Results {
		if r.Error == nil {
			counts[200]++
			continue
		}
		counts[r.Error.Code]++
		if r.Error.Code == http.StatusTooManyRequests && r.Error.RetryAfterSeconds < 1 {
			t.Errorf("item %d: throttled without retry_after_seconds: %+v", i, r.Error)
		}
	}
	if counts[200] != 0 || counts[400] != 1 || counts[429] != 2 {
		t.Fatalf("embedded results = %v, want 0x200 1x400 2x429", counts)
	}
	if got := itemCount("429"); got != 2 {
		t.Errorf(`batch-item 429 counter = %d, want 2`, got)
	}
	if got := itemCount("400"); got != 1 {
		t.Errorf(`batch-item 400 counter = %d, want 1`, got)
	}
	if got := s.Metrics().QueueRejects.Value(); got != 2 {
		t.Errorf("queue rejects = %d, want 2 (one per throttled item)", got)
	}

	// Free the pool and run the same batch again: the valid items now
	// succeed and the 200 side of the ledger reconciles too.
	release()
	<-parked
	w = post(t, s, "/v1/analyze/batch", batch)
	if w.Code != 200 {
		t.Fatalf("second batch envelope = %d: %s", w.Code, w.Body.String())
	}
	// A fresh variable: Unmarshal into the first response would merge,
	// keeping stale Error pointers for items that now succeed.
	var again BatchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &again); err != nil {
		t.Fatal(err)
	}
	for i, r := range again.Results {
		if i == 1 {
			continue // the bogus kernel stays a 400
		}
		if r.Error != nil {
			t.Errorf("item %d still failing after pool freed: %+v", i, r.Error)
		}
	}
	if got := itemCount("200"); got != 2 {
		t.Errorf(`batch-item 200 counter = %d, want 2`, got)
	}
	if got := itemCount("400"); got != 2 {
		t.Errorf(`batch-item 400 counter = %d, want 2 after replay`, got)
	}
	if got := itemCount("429"); got != 2 {
		t.Errorf(`batch-item 429 counter = %d, want 2 (no new rejects)`, got)
	}
}
