// Package service is the long-running false-sharing analysis service: the
// whole compile-time pipeline (mini-C source or built-in kernel → FS cost
// model → schedule recommendation) exposed as a stdlib-only HTTP JSON API,
// built to be hit repeatedly from tooling rather than paying process
// startup per analysis.
//
// The resident pieces, each in its own file:
//
//   - a content-addressed result cache (cache.go): a bounded LRU keyed by
//     a canonical SHA-256 of source + options, serving byte-identical
//     responses for repeated requests;
//   - in-flight deduplication (flight.go): N concurrent identical
//     requests perform exactly one model evaluation;
//   - admission control (limits.go): a bounded evaluation pool plus a
//     bounded wait queue; beyond both, requests get 429 + Retry-After
//     instead of queueing without bound;
//   - hand-rolled Prometheus metrics (metrics.go) and structured request
//     logs via log/slog;
//   - HTTP handlers (handlers.go) for /v1/analyze, /v1/analyze/batch
//     (fan-out on the internal/sweep pool, results in input order),
//     /v1/kernels, /healthz and /metrics;
//   - the static linter endpoint (lint.go): POST /v1/lint runs the
//     closed-form internal/analysis engine (no simulation) and returns
//     diagnostics as JSON or a SARIF 2.1.0 document, through the same
//     cache, dedup and admission control as /v1/analyze;
//   - the auto-tuner endpoint (tune.go): POST /v1/tune runs the
//     internal/tuner plan search (fast closed-form scoring, beam
//     pruning, simulator verification) and returns the chosen plan with
//     transformed source, degrading to a closed-form single-fix
//     suggestion when the search cannot run;
//   - the fault boundary (degrade.go): every evaluation runs under a
//     guard recover wrapper and a resource budget, behind a per-endpoint
//     circuit breaker; internal failures degrade to the closed-form
//     engine with "degraded": true instead of a 500 or a hang, and
//     /readyz exposes breaker and pool-saturation state. See
//     docs/ROBUSTNESS.md for the full contract.
//
// Graceful shutdown is the caller's http.Server.Shutdown; BeginShutdown
// additionally flips /healthz and /readyz to 503 so load balancers drain
// first.
package service

import (
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/admission"
	"repro/internal/guard"
)

// Config parameterizes the server. The zero value is production-usable;
// fields are documented with their defaults.
type Config struct {
	// CacheEntries bounds the result cache (0 = default 512; negative
	// disables caching).
	CacheEntries int
	// CacheDir, when set, persists the result cache across restarts: a
	// snapshot is loaded at startup (salvaging what it can from corrupt
	// or truncated files), rewritten every SnapshotInterval, and written
	// once more on Close. Empty disables persistence.
	CacheDir string
	// SnapshotInterval is how often the background snapshot runs when
	// CacheDir is set (0 = default 30s).
	SnapshotInterval time.Duration
	// QuotaRPS enables per-client token-bucket quotas at this many
	// requests per second per client, keyed by X-API-Key or remote host
	// (0 = disabled).
	QuotaRPS float64
	// QuotaBurst is the per-client burst size (0 = max(1, 2*QuotaRPS)).
	QuotaBurst float64
	// MaxConcurrent bounds concurrently running model evaluations
	// (0 = GOMAXPROCS).
	MaxConcurrent int
	// MaxQueue bounds requests waiting for an evaluation slot
	// (0 = default 64); beyond it requests are rejected with 429.
	MaxQueue int
	// RequestTimeout is the per-request deadline, propagated via context
	// into queue waits and candidate sweeps (0 = default 30s).
	RequestTimeout time.Duration
	// MaxBodyBytes bounds request bodies (0 = default 1 MiB).
	MaxBodyBytes int64
	// MaxBatch bounds the number of analysis points in one batch request
	// (0 = default 256).
	MaxBatch int
	// MaxEvalSteps bounds the simulated memory accesses one model
	// evaluation may perform before it is stopped and the request is
	// answered by the closed-form engine (0 = default 1<<28; negative =
	// unlimited).
	MaxEvalSteps int64
	// MaxEvalStateBytes bounds one evaluation's modeled cache-stack and
	// directory state (0 = default 256 MiB; negative = unlimited).
	MaxEvalStateBytes int64
	// BreakerThreshold is the consecutive internal-failure count that
	// opens an endpoint's circuit breaker (0 = default 5; negative
	// disables circuit breaking).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker rejects before
	// admitting half-open probes (0 = default 5s).
	BreakerCooldown time.Duration
	// BreakerProbeFraction is the fraction of requests admitted while
	// half-open (0 = default 0.25).
	BreakerProbeFraction float64
	// EvalMode selects the model's evaluation pipeline for every request
	// ("", "auto", "compiled", "interpreted"; the -eval flag). It is part
	// of each request's cache key; an unknown spelling fails evaluations,
	// so CLIs validate it at startup.
	EvalMode string
	// Extrapolate enables the steady-state chunk-run closure on eligible
	// uniform loops (exact totals, surfaced as "extrapolated" in the
	// response).
	Extrapolate bool
	// EnablePprof mounts net/http/pprof under /debug/pprof/ (the -pprof
	// flag) for profiling the evaluation hot path.
	EnablePprof bool
	// Cluster, when non-nil with an Advertise address, joins this node to
	// an fscluster mesh: rendezvous-hashed key ownership, owner
	// forwarding with hedged replica reads, and peer cache fill. See
	// cluster.go and docs/CLUSTER.md.
	Cluster *ClusterConfig
	// Seed seeds the deterministic randomness: breaker half-open probe
	// draws and the jittered Retry-After values (0 = 1).
	Seed int64
	// Logger receives structured request logs (nil = slog.Default()).
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.CacheEntries == 0 {
		c.CacheEntries = 512
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 64
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.SnapshotInterval <= 0 {
		c.SnapshotInterval = 30 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	switch {
	case c.MaxEvalSteps == 0:
		c.MaxEvalSteps = 1 << 28
	case c.MaxEvalSteps < 0:
		c.MaxEvalSteps = 0 // unlimited
	}
	switch {
	case c.MaxEvalStateBytes == 0:
		c.MaxEvalStateBytes = 256 << 20
	case c.MaxEvalStateBytes < 0:
		c.MaxEvalStateBytes = 0 // unlimited
	}
	switch {
	case c.BreakerThreshold == 0:
		c.BreakerThreshold = 5
	case c.BreakerThreshold < 0:
		c.BreakerThreshold = 0 // disabled
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.BreakerProbeFraction <= 0 {
		c.BreakerProbeFraction = 0.25
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// Server is the analysis service. Create with New, mount via Handler.
type Server struct {
	cfg      Config
	metrics  *Metrics
	cache    *resultCache
	flight   *flightGroup
	limiter  *limiter
	quotas   *admission.Quotas
	snap     *snapshotManager
	cluster  *serverCluster
	breakers map[string]*guard.Breaker
	mux      *http.ServeMux
	draining atomic.Bool
	closed   sync.Once

	// jitter randomizes Retry-After values so rejected clients spread
	// their retries instead of stampeding back in lockstep; seeded from
	// Config.Seed for reproducible tests.
	_        [12]byte // fsvet: keep jitterMu off draining's cache line
	jitterMu sync.Mutex
	jitter   *rand.Rand
}

// New builds a Server from cfg (zero value = defaults).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		metrics: NewMetrics(),
		flight:  newFlightGroup(),
		jitter:  rand.New(rand.NewSource(cfg.Seed)),
	}
	s.cache = newResultCache(cfg.CacheEntries, s.metrics.CacheEntries)
	s.limiter = newLimiterWith(admission.Config{
		MaxConcurrent: cfg.MaxConcurrent,
		MaxQueue:      cfg.MaxQueue,
		OnQueueDepth:  func(d int) { s.metrics.QueueDepth.Set(int64(d)) },
		OnLimitChange: func(limit float64, direction string) {
			s.metrics.AdmissionLimit.Set(int64(limit))
			s.metrics.LimitChanges.With(direction).Inc()
		},
	})
	s.metrics.AdmissionLimit.Set(int64(cfg.MaxConcurrent))
	if cfg.QuotaRPS > 0 {
		s.quotas = admission.NewQuotas(admission.QuotaConfig{Rate: cfg.QuotaRPS, Burst: cfg.QuotaBurst})
	}
	if cfg.CacheDir != "" {
		s.snap = newSnapshotManager(s)
	}
	if cfg.BreakerThreshold > 0 {
		s.breakers = make(map[string]*guard.Breaker)
		for i, ep := range []string{endpointAnalyze, endpointLint, endpointTune} {
			s.breakers[ep] = guard.NewBreaker(guard.BreakerConfig{
				FailureThreshold: cfg.BreakerThreshold,
				Cooldown:         cfg.BreakerCooldown,
				ProbeFraction:    cfg.BreakerProbeFraction,
				Seed:             cfg.Seed + int64(i),
			})
		}
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	s.mux.HandleFunc("POST /v1/analyze/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/lint", s.handleLint)
	s.mux.HandleFunc("POST /v1/tune", s.handleTune)
	s.mux.HandleFunc("GET /v1/kernels", s.handleKernels)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if cfg.Cluster != nil && cfg.Cluster.Advertise != "" {
		s.cluster = newServerCluster(s, *cfg.Cluster)
		s.mux.HandleFunc("GET /v1/peer/cache", s.handlePeerCacheGet)
		s.mux.HandleFunc("POST /v1/peer/cache", s.handlePeerCachePut)
	}
	if cfg.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s
}

// Metrics exposes the server's metric set (for tests and embedding).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Logger returns the server's (defaulted) logger.
func (s *Server) Logger() *slog.Logger { return s.cfg.Logger }

// BeginShutdown flips /healthz to 503 so load balancers stop routing new
// work while the caller's http.Server.Shutdown drains in-flight requests.
func (s *Server) BeginShutdown() { s.draining.Store(true) }

// Close stops the background snapshot goroutine and writes one final
// snapshot of the result cache, so a graceful drain restarts warm.
// Callers invoke it after http.Server.Shutdown returns (no more
// evaluations can mutate the cache). Safe to call multiple times; a nil
// error when persistence is disabled.
func (s *Server) Close() error {
	var err error
	s.closed.Do(func() {
		if s.cluster != nil {
			s.cluster.close()
		}
		if s.snap != nil {
			err = s.snap.close()
		}
	})
	return err
}

// Handler returns the server's root handler: the API mux wrapped in
// panic recovery, request logging and latency accounting.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		defer func() {
			if v := recover(); v != nil {
				// A handler panic must not take down the resident server;
				// the fuzzed parser should make this unreachable for
				// analysis requests, but the recovery is cheap insurance.
				s.cfg.Logger.Error("panic in handler", "method", r.Method, "path", r.URL.Path, "panic", v)
				if !rec.wrote {
					http.Error(rec, `{"error":{"code":500,"message":"internal panic"}}`, http.StatusInternalServerError)
				}
			}
			elapsed := time.Since(start)
			s.metrics.RequestLatency.Observe(elapsed.Seconds())
			s.metrics.Requests.With(r.URL.Path, statusText(rec.status)).Inc()
			s.cfg.Logger.Info("request",
				"method", r.Method,
				"path", r.URL.Path,
				"status", rec.status,
				"dur_ms", float64(elapsed.Microseconds())/1000,
				"cache", rec.Header().Get("X-Cache"),
			)
		}()
		s.mux.ServeHTTP(rec, r)
	})
}

// statusRecorder captures the response status for logs and metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (r *statusRecorder) WriteHeader(code int) {
	if !r.wrote {
		r.status = code
		r.wrote = true
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	r.wrote = true
	return r.ResponseWriter.Write(b)
}

func statusText(code int) string {
	// Avoid strconv in the hot path for the handful of codes we emit.
	switch code {
	case 200:
		return "200"
	case 400:
		return "400"
	case 404:
		return "404"
	case 405:
		return "405"
	case 413:
		return "413"
	case 429:
		return "429"
	case 500:
		return "500"
	case 503:
		return "503"
	case 504:
		return "504"
	}
	return strconv.Itoa(code)
}
