package service

import (
	"context"
	"encoding/json"
	"fmt"
	"strconv"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/guard"
)

// TestDegradedOnEvaluatorPanic pins the degradation contract for panics:
// an evaluator panic is recovered, the request is answered 200 from the
// closed-form engine with "degraded": true, the panic is counted, and
// the degraded body is never cached — once the evaluator is healthy the
// same request gets a full (non-degraded) evaluation.
func TestDegradedOnEvaluatorPanic(t *testing.T) {
	faultinject.Enable()
	defer faultinject.Reset()
	faultinject.Arm("service.evaluate", faultinject.Fault{Kind: faultinject.KindPanic, MaxFires: 1})

	s := newTestServer(t, Config{})
	w := post(t, s, "/v1/analyze", AnalyzeRequest{Source: victimSrc, Recommend: true})
	if w.Code != 200 {
		t.Fatalf("status = %d, want 200 (degraded, never 500): %s", w.Code, w.Body.String())
	}
	if got := w.Header().Get("X-Cache"); got != "degraded" {
		t.Errorf("X-Cache = %q, want degraded", got)
	}
	resp := decodeAnalyze(t, w)
	if !resp.Degraded || resp.DegradedReason != "panic" {
		t.Fatalf("degraded=%v reason=%q, want true/panic", resp.Degraded, resp.DegradedReason)
	}
	if resp.ClosedForm == nil || !resp.ClosedForm.Prone {
		t.Fatalf("closed_form = %+v, want a prone verdict for the chunk-1 victim", resp.ClosedForm)
	}
	if resp.RecommendedChunk < 8 {
		t.Errorf("degraded recommended chunk = %d, want the closed-form aligning chunk (>= 8)", resp.RecommendedChunk)
	}
	if resp.FSCases != 0 || resp.TotalCycles != 0 {
		t.Errorf("degraded response carries simulation numbers: %+v", resp)
	}
	m := s.Metrics()
	if m.EvalPanics.Value() != 1 {
		t.Errorf("EvalPanics = %d, want 1", m.EvalPanics.Value())
	}
	if got := m.Degraded.With(endpointAnalyze, "panic").Value(); got != 1 {
		t.Errorf("Degraded{analyze,panic} = %d, want 1", got)
	}

	// The fault is exhausted (MaxFires 1): the same request must now run
	// the full evaluator — proof the degraded body was not cached.
	w2 := post(t, s, "/v1/analyze", AnalyzeRequest{Source: victimSrc, Recommend: true})
	if w2.Code != 200 || w2.Header().Get("X-Cache") != "miss" {
		t.Fatalf("recovered request: status=%d X-Cache=%q, want 200/miss", w2.Code, w2.Header().Get("X-Cache"))
	}
	resp2 := decodeAnalyze(t, w2)
	if resp2.Degraded || resp2.FSCases == 0 {
		t.Errorf("recovered response: degraded=%v fs_cases=%d, want full evaluation", resp2.Degraded, resp2.FSCases)
	}
}

// TestDegradedOnBudgetExceeded is the acceptance proof for budgets: a
// request whose evaluation blows the configured step budget returns the
// closed-form answer with "degraded": true and reason "budget" — not a
// 500, not a hang.
func TestDegradedOnBudgetExceeded(t *testing.T) {
	s := newTestServer(t, Config{MaxEvalSteps: 1})
	w := post(t, s, "/v1/analyze", AnalyzeRequest{Kernel: "heat", Threads: 8, Recommend: true})
	if w.Code != 200 {
		t.Fatalf("status = %d, want 200: %s", w.Code, w.Body.String())
	}
	resp := decodeAnalyze(t, w)
	if !resp.Degraded || resp.DegradedReason != "budget" {
		t.Fatalf("degraded=%v reason=%q, want true/budget", resp.Degraded, resp.DegradedReason)
	}
	if resp.ClosedForm == nil {
		t.Fatal("degraded response carries no closed_form result")
	}
	if got := s.Metrics().Degraded.With(endpointAnalyze, "budget").Value(); got != 1 {
		t.Errorf("Degraded{analyze,budget} = %d, want 1", got)
	}
}

// TestDegradedLint pins the lint endpoint's degradation: an injected
// evaluator failure yields 200 with the closed-form report re-run
// directly, marked degraded in the native shape.
func TestDegradedLint(t *testing.T) {
	faultinject.Enable()
	defer faultinject.Reset()
	faultinject.Arm("service.evaluate", faultinject.Fault{Kind: faultinject.KindError, MaxFires: 1})

	s := newTestServer(t, Config{})
	w := post(t, s, "/v1/lint", LintRequest{Source: victimSrc})
	if w.Code != 200 {
		t.Fatalf("status = %d, want 200: %s", w.Code, w.Body.String())
	}
	var resp LintResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("invalid lint response: %v", err)
	}
	if !resp.Degraded || resp.DegradedReason != "internal" {
		t.Fatalf("degraded=%v reason=%q, want true/internal", resp.Degraded, resp.DegradedReason)
	}
	if resp.Report == nil || len(resp.Report.Diagnostics) == 0 {
		t.Errorf("degraded lint lost its findings: %+v", resp.Report)
	}
	if got := s.Metrics().Degraded.With(endpointLint, "internal").Value(); got != 1 {
		t.Errorf("Degraded{lint,internal} = %d, want 1", got)
	}
}

// TestBreakerOpensAndDegradesOutright drives consecutive evaluator
// failures until the analyze breaker opens, then checks that further
// requests degrade without touching the evaluator at all and that
// /readyz exposes the open breaker.
func TestBreakerOpensAndDegradesOutright(t *testing.T) {
	faultinject.Enable()
	defer faultinject.Reset()
	faultinject.Arm("service.evaluate", faultinject.Fault{Kind: faultinject.KindError})

	s := newTestServer(t, Config{BreakerThreshold: 2, BreakerCooldown: time.Hour})
	for i := 0; i < 2; i++ {
		w := post(t, s, "/v1/analyze", AnalyzeRequest{Source: victimSrc})
		if w.Code != 200 {
			t.Fatalf("request %d: status = %d: %s", i, w.Code, w.Body.String())
		}
		if resp := decodeAnalyze(t, w); resp.DegradedReason != "internal" {
			t.Fatalf("request %d: reason = %q, want internal", i, resp.DegradedReason)
		}
	}
	if fired := faultinject.Fired("service.evaluate"); fired != 2 {
		t.Fatalf("evaluator reached %d times, want 2", fired)
	}

	// Threshold hit: the third request must not reach the evaluator.
	w := post(t, s, "/v1/analyze", AnalyzeRequest{Source: victimSrc})
	if resp := decodeAnalyze(t, w); w.Code != 200 || resp.DegradedReason != "breaker-open" {
		t.Fatalf("status=%d reason=%q, want 200/breaker-open", w.Code, resp.DegradedReason)
	}
	if fired := faultinject.Fired("service.evaluate"); fired != 2 {
		t.Errorf("open breaker let a request through: evaluator reached %d times", fired)
	}

	rw := get(t, s, "/readyz")
	if rw.Code != 200 {
		t.Fatalf("/readyz status = %d, want 200 (open breaker still answers)", rw.Code)
	}
	var ready ReadyzResponse
	if err := json.Unmarshal(rw.Body.Bytes(), &ready); err != nil {
		t.Fatalf("invalid /readyz JSON: %v", err)
	}
	if ready.Status != "degraded" {
		t.Errorf("/readyz status = %q, want degraded", ready.Status)
	}
	br := ready.Breakers[endpointAnalyze]
	if br.State != "open" || br.Opens != 1 {
		t.Errorf("analyze breaker = %+v, want open with 1 open", br)
	}
	if ready.Breakers[endpointLint].State != "closed" {
		t.Errorf("lint breaker = %+v, want closed (independent circuits)", ready.Breakers[endpointLint])
	}
}

// TestBreakerHalfOpenRecovery pins the close path: after the cooldown a
// probe that succeeds closes the breaker and full evaluation resumes.
func TestBreakerHalfOpenRecovery(t *testing.T) {
	faultinject.Enable()
	defer faultinject.Reset()
	faultinject.Arm("service.evaluate", faultinject.Fault{Kind: faultinject.KindError, MaxFires: 1})

	// ProbeFraction 1 makes every post-cooldown request a probe, so the
	// recovery needs no draws to go its way.
	s := newTestServer(t, Config{BreakerThreshold: 1, BreakerCooldown: 10 * time.Millisecond, BreakerProbeFraction: 1})
	post(t, s, "/v1/analyze", AnalyzeRequest{Source: victimSrc}) // opens the breaker
	if st := s.breakers[endpointAnalyze].State(); st != guard.BreakerOpen {
		t.Fatalf("breaker = %v after failure, want open", st)
	}
	time.Sleep(20 * time.Millisecond)
	w := post(t, s, "/v1/analyze", AnalyzeRequest{Source: victimSrc})
	resp := decodeAnalyze(t, w)
	if w.Code != 200 || resp.Degraded {
		t.Fatalf("probe request: status=%d degraded=%v, want a full 200", w.Code, resp.Degraded)
	}
	if st := s.breakers[endpointAnalyze].State(); st != guard.BreakerClosed {
		t.Errorf("breaker = %v after successful probe, want closed", st)
	}
}

// TestReadyz pins the readiness document's healthy and draining shapes.
func TestReadyz(t *testing.T) {
	s := newTestServer(t, Config{MaxConcurrent: 3, MaxQueue: 5})
	w := get(t, s, "/readyz")
	if w.Code != 200 {
		t.Fatalf("/readyz status = %d: %s", w.Code, w.Body.String())
	}
	var ready ReadyzResponse
	if err := json.Unmarshal(w.Body.Bytes(), &ready); err != nil {
		t.Fatal(err)
	}
	if ready.Status != "ok" {
		t.Errorf("status = %q, want ok", ready.Status)
	}
	if ready.Pool.Capacity != 3 || ready.Pool.QueueCapacity != 5 || ready.Pool.Saturated {
		t.Errorf("pool = %+v, want idle capacity 3 / queue 5", ready.Pool)
	}
	for _, ep := range []string{endpointAnalyze, endpointLint} {
		if ready.Breakers[ep].State != "closed" {
			t.Errorf("breaker %s = %+v, want closed", ep, ready.Breakers[ep])
		}
	}

	s.BeginShutdown()
	w = get(t, s, "/readyz")
	if w.Code != 503 || w.Header().Get("Retry-After") == "" {
		t.Fatalf("draining /readyz: status=%d Retry-After=%q", w.Code, w.Header().Get("Retry-After"))
	}
	if err := json.Unmarshal(w.Body.Bytes(), &ready); err != nil || ready.Status != "draining" {
		t.Errorf("draining status = %q (err %v), want draining", ready.Status, err)
	}
}

// TestRetryAfterScalesWithQueueDepth is the client-visible contract for
// satellite backpressure: a rejected request carries a Retry-After whose
// base grows with the wait-queue depth, plus jitter so a herd of
// rejected clients restaggers.
func TestRetryAfterScalesWithQueueDepth(t *testing.T) {
	s := newTestServer(t, Config{MaxConcurrent: 1, MaxQueue: 1, Seed: 7})

	// Idle pool: base 1, jittered into [1, 2].
	for i := 0; i < 8; i++ {
		if got := s.retryAfterSeconds(); got < 1 || got > 2 {
			t.Fatalf("idle Retry-After = %d, want within [1, 2]", got)
		}
	}

	// Occupy the single slot, then fill the queue with one waiter.
	release, err := s.limiter.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	waiterCtx, cancelWaiter := context.WithCancel(context.Background())
	defer cancelWaiter()
	waiterDone := make(chan struct{})
	go func() {
		defer close(waiterDone)
		if rel, err := s.limiter.acquire(waiterCtx); err == nil {
			rel()
		}
	}()
	deadline := time.Now().Add(2 * time.Second)
	for s.limiter.stats().waiting != 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// Full queue: base 1 + 3*1/1 = 4, jittered into [4, 8]. A real
	// request observes it on the 429 itself.
	w := post(t, s, "/v1/analyze", AnalyzeRequest{Source: victimSrc})
	if w.Code != 429 {
		t.Fatalf("status = %d, want 429 with the pool saturated: %s", w.Code, w.Body.String())
	}
	secs, err := strconv.Atoi(w.Header().Get("Retry-After"))
	if err != nil || secs < 4 || secs > 8 {
		t.Fatalf("saturated Retry-After = %q, want an int in [4, 8]", w.Header().Get("Retry-After"))
	}
	if s.Metrics().QueueRejects.Value() != 1 {
		t.Errorf("QueueRejects = %d, want 1", s.Metrics().QueueRejects.Value())
	}

	// The jitter actually spreads: distinct values must appear across
	// draws at the same depth (seeded, so this cannot flake).
	seen := map[int]bool{}
	for i := 0; i < 32; i++ {
		got := s.retryAfterSeconds()
		if got < 4 || got > 8 {
			t.Fatalf("saturated Retry-After = %d, want within [4, 8]", got)
		}
		seen[got] = true
	}
	if len(seen) < 2 {
		t.Errorf("32 draws produced a single Retry-After value %v; jitter is not spreading", seen)
	}

	cancelWaiter()
	<-waiterDone
}

// TestDrainUnderFault starts shutdown while a delayed evaluation is in
// flight: the in-flight request must still complete normally while new
// health probes report draining.
func TestDrainUnderFault(t *testing.T) {
	faultinject.Enable()
	defer faultinject.Reset()
	faultinject.Arm("service.pool", faultinject.Fault{Kind: faultinject.KindDelay, Delay: 150 * time.Millisecond})

	s := newTestServer(t, Config{})
	type outcome struct {
		code     int
		degraded bool
	}
	done := make(chan outcome, 1)
	go func() {
		w := post(t, s, "/v1/analyze", AnalyzeRequest{Source: victimSrc})
		done <- outcome{w.Code, decodeAnalyze(t, w).Degraded}
	}()

	time.Sleep(30 * time.Millisecond) // request is inside the delay seam
	s.BeginShutdown()
	if w := get(t, s, "/healthz"); w.Code != 503 {
		t.Errorf("/healthz during drain = %d, want 503", w.Code)
	}

	select {
	case out := <-done:
		if out.code != 200 || out.degraded {
			t.Fatalf("in-flight request during drain: code=%d degraded=%v, want a full 200", out.code, out.degraded)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request never completed after BeginShutdown")
	}
}

// TestGoroutineLeakUnderFaults runs a burst of evaluations with panics,
// errors and delays injected at every seam and checks the server sheds
// all of its goroutines afterwards: nothing stuck on a torn flight
// entry, a leaked pool slot, or an abandoned timer.
func TestGoroutineLeakUnderFaults(t *testing.T) {
	faultinject.Enable()
	defer faultinject.Reset()
	faultinject.Arm("service.flight", faultinject.Fault{Kind: faultinject.KindPanic, Probability: 0.3, Seed: 3})
	faultinject.Arm("service.evaluate", faultinject.Fault{Kind: faultinject.KindError, Probability: 0.3, Seed: 4})
	faultinject.Arm("service.pool", faultinject.Fault{Kind: faultinject.KindDelay, Delay: time.Millisecond, Probability: 0.5, Seed: 5})

	s := newTestServer(t, Config{MaxConcurrent: 2, MaxQueue: 4})
	before := numGoroutineSettled()
	for i := 0; i < 60; i++ {
		src := fmt.Sprintf(`
double a[%d];
#pragma omp parallel for schedule(static,1) num_threads(4)
for (i = 0; i < %d; i++) a[i] += 1.0;
`, 64+8*(i%4), 64+8*(i%4))
		w := post(t, s, "/v1/analyze", AnalyzeRequest{Source: src})
		if w.Code != 200 && w.Code != 429 {
			t.Fatalf("request %d: status = %d: %s", i, w.Code, w.Body.String())
		}
	}
	after := numGoroutineSettled()
	if after > before+3 {
		t.Fatalf("goroutines grew from %d to %d under faults; something leaked", before, after)
	}
}
