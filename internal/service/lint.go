package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/analysis"
	"repro/internal/faultinject"
	"repro/internal/kernels"
	"repro/internal/loopir"
	"repro/internal/machine"
	"repro/internal/minic"
)

// LintRequest is the body of POST /v1/lint: run the closed-form static
// false-sharing linter (no simulation) over one source. Exactly one of
// Source and Kernel must be set.
type LintRequest struct {
	Source string `json:"source,omitempty"`
	Kernel string `json:"kernel,omitempty"`
	// Threads overrides the team size (0 = pragma, else machine cores).
	Threads int `json:"threads,omitempty"`
	// Chunk overrides the schedule chunk (0 = pragma, else the OpenMP
	// static default).
	Chunk int64 `json:"chunk,omitempty"`
	// Machine names the modeled target: paper48 (default), smalltest,
	// modern16. Its cache-line size drives the analysis.
	Machine string `json:"machine,omitempty"`
	// AssumedTrips substitutes for loop bounds unknown at compile time
	// (0 = the engine default, 2048).
	AssumedTrips int64 `json:"assumed_trips,omitempty"`
	// NoSuggest disables the verified FIX-CHUNK/FIX-PAD pass.
	NoSuggest bool `json:"no_suggest,omitempty"`
	// SARIF switches the response to a SARIF 2.1.0 document instead of
	// the native LintResponse shape.
	SARIF bool `json:"sarif,omitempty"`
}

// LintResponse is the native (non-SARIF) response: the analyzed pseudo
// file name and the full diagnostics report. Degraded marks a response
// produced by the fallback pass after the primary evaluation failed
// internally; DegradedReason says why ("breaker-open", "panic", ...).
type LintResponse struct {
	File           string           `json:"file"`
	Report         *analysis.Report `json:"report"`
	Degraded       bool             `json:"degraded,omitempty"`
	DegradedReason string           `json:"degraded_reason,omitempty"`
}

// lintResolved is a validated lint request with its canonical cache key.
type lintResolved struct {
	req  LintRequest
	file string
	src  string
	mach *machine.Desc
	key  string
}

// machineDescByName resolves a machine name to its descriptor (the lint
// engine needs the raw Desc, not the repro façade).
func machineDescByName(name string) (*machine.Desc, error) {
	switch name {
	case "", "paper48":
		return machine.Paper48(), nil
	case "smalltest":
		return machine.SmallTest(), nil
	case "modern16":
		return machine.Modern16(), nil
	}
	return nil, fmt.Errorf("unknown machine %q (valid: paper48, smalltest, modern16)", name)
}

// resolveLint validates req and computes its canonical key, mirroring
// resolve for /v1/analyze.
func (s *Server) resolveLint(req LintRequest) (lintResolved, error) {
	if req.Source != "" && req.Kernel != "" {
		return lintResolved{}, badRequestf("source and kernel are mutually exclusive")
	}
	if req.Source == "" && req.Kernel == "" {
		return lintResolved{}, badRequestf("one of source or kernel is required")
	}
	if req.Threads < 0 || req.Threads > maxThreads {
		return lintResolved{}, badRequestf("threads must be in 0..%d, got %d", maxThreads, req.Threads)
	}
	if req.Chunk < 0 {
		return lintResolved{}, badRequestf("chunk must be >= 0, got %d", req.Chunk)
	}
	if req.AssumedTrips < 0 {
		return lintResolved{}, badRequestf("assumed_trips must be >= 0, got %d", req.AssumedTrips)
	}
	mach, err := machineDescByName(req.Machine)
	if err != nil {
		return lintResolved{}, &apiError{status: http.StatusBadRequest, msg: err.Error()}
	}
	src := req.Source
	file := "<source>"
	if req.Kernel != "" {
		threads := req.Threads
		if threads == 0 {
			threads = mach.Cores
		}
		k, err := kernels.ByName(req.Kernel, threads)
		if err != nil {
			return lintResolved{}, &apiError{status: http.StatusBadRequest, msg: err.Error()}
		}
		src = k.Source
		file = "<kernel:" + req.Kernel + ">"
	}
	h := sha256.New()
	fmt.Fprintf(h, "lint/v1\x00machine=%s;threads=%d;chunk=%d;assume=%d;nosuggest=%t;sarif=%t\x00",
		mach.Name, req.Threads, req.Chunk, req.AssumedTrips, req.NoSuggest, req.SARIF)
	h.Write([]byte(src))
	return lintResolved{
		req:  req,
		file: file,
		src:  src,
		mach: mach,
		key:  hex.EncodeToString(h.Sum(nil)),
	}, nil
}

// handleLint serves POST /v1/lint through the same cache, in-flight
// dedup and admission control as /v1/analyze.
func (s *Server) handleLint(w http.ResponseWriter, r *http.Request) {
	if err := s.admitClient(r); err != nil {
		s.writeError(w, err)
		return
	}
	var req LintRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	rr, err := s.resolveLint(req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	ctx, cancel, err := s.requestContext(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	defer cancel()
	body, source, err := s.guarded(ctx, endpointLint, rr.key, s.clusterRouteFor(r, "/v1/lint", req), func(ctx context.Context) ([]byte, string, error) {
		b, err := s.evaluateLint(rr)
		return b, "closed-form", err
	}, func(reason string) ([]byte, error) {
		return s.degradedLint(rr, reason)
	})
	if err != nil {
		s.writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", source)
	w.Write(body)
}

// evaluateLint runs the linter for one resolved request. Parse and
// lowering failures become PARSE diagnostics in a 200 response — a
// linter reports findings on broken input rather than refusing it —
// while truly invalid requests were already rejected by resolveLint.
func (s *Server) evaluateLint(rr lintResolved) ([]byte, error) {
	if err := faultinject.Fire("service.evaluate"); err != nil {
		return nil, err
	}
	rep, err := s.lintReport(rr)
	if err != nil {
		return nil, err
	}
	if rr.req.SARIF {
		var buf jsonBuffer
		if err := analysis.WriteSARIF(&buf, []analysis.FileReport{{File: rr.file, Report: rep}}); err != nil {
			return nil, err
		}
		return buf.bytes, nil
	}
	return json.Marshal(LintResponse{File: rr.file, Report: rep})
}

// lintReport parses, lowers (at the machine's line size) and analyzes
// the resolved source.
func (s *Server) lintReport(rr lintResolved) (*analysis.Report, error) {
	parseFailure := func(err error) *analysis.Report {
		return &analysis.Report{Diagnostics: []analysis.Diagnostic{{
			Code:     analysis.CodeParse,
			Severity: analysis.SeverityError,
			Pos:      minic.Pos{Line: 1, Col: 1},
			End:      minic.Pos{Line: 1, Col: 2},
			Message:  err.Error(),
			Exact:    true,
		}}}
	}
	prog, err := minic.Parse(rr.src)
	if err != nil {
		return parseFailure(err), nil
	}
	unit, err := loopir.Lower(prog, loopir.LowerOptions{
		LineSize:       rr.mach.LineSize,
		SymbolicBounds: true,
	})
	if err != nil {
		return parseFailure(err), nil
	}
	return analysis.Analyze(unit, analysis.Config{
		Machine:      rr.mach,
		Threads:      rr.req.Threads,
		Chunk:        rr.req.Chunk,
		AssumedTrips: rr.req.AssumedTrips,
		NoSuggest:    rr.req.NoSuggest,
	})
}

// jsonBuffer is a minimal io.Writer over a byte slice (avoids pulling in
// bytes.Buffer's unused surface for the SARIF path).
type jsonBuffer struct{ bytes []byte }

func (b *jsonBuffer) Write(p []byte) (int, error) {
	b.bytes = append(b.bytes, p...)
	return len(p), nil
}
