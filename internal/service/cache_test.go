package service

import (
	"bytes"
	"fmt"
	"testing"
)

func TestCacheLRUEviction(t *testing.T) {
	g := &Gauge{}
	c := newResultCache(3, g)
	for i := 0; i < 3; i++ {
		c.Add(fmt.Sprintf("k%d", i), []byte{byte(i)})
	}
	// Touch k0 so k1 becomes the LRU entry.
	if _, ok := c.Get("k0"); !ok {
		t.Fatal("k0 missing")
	}
	c.Add("k3", []byte{3})
	if _, ok := c.Get("k1"); ok {
		t.Error("k1 should have been evicted as LRU")
	}
	for _, want := range []string{"k0", "k2", "k3"} {
		if _, ok := c.Get(want); !ok {
			t.Errorf("%s should still be cached", want)
		}
	}
	if c.Len() != 3 || g.Value() != 3 {
		t.Errorf("Len=%d gauge=%d, want 3/3", c.Len(), g.Value())
	}
}

func TestCacheRefreshExistingKey(t *testing.T) {
	c := newResultCache(2, nil)
	c.Add("k", []byte("v1"))
	c.Add("k", []byte("v2"))
	if c.Len() != 1 {
		t.Fatalf("Len = %d after refresh, want 1", c.Len())
	}
	got, ok := c.Get("k")
	if !ok || !bytes.Equal(got, []byte("v2")) {
		t.Fatalf("Get = %q, %v", got, ok)
	}
}

func TestCacheDisabled(t *testing.T) {
	c := newResultCache(-1, nil)
	c.Add("k", []byte("v"))
	if _, ok := c.Get("k"); ok {
		t.Fatal("disabled cache must always miss")
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d, want 0", c.Len())
	}
}
