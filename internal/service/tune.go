package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/analysis"
	"repro/internal/faultinject"
	"repro/internal/fsmodel"
	"repro/internal/guard"
	"repro/internal/kernels"
	"repro/internal/loopir"
	"repro/internal/machine"
	"repro/internal/minic"
	"repro/internal/tuner"
)

// TuneRequest is the body of POST /v1/tune: run the cost-model-guided
// auto-tuner over one source and return the chosen transformation plan,
// the transformed source and the full search report. Exactly one of
// Source and Kernel must be set. The server's evaluation mode and
// extrapolation settings apply to the simulator verification tier and
// are part of the cache key.
type TuneRequest struct {
	Source string `json:"source,omitempty"`
	Kernel string `json:"kernel,omitempty"`
	// Threads overrides the team size (0 = pragma, else machine cores).
	Threads int `json:"threads,omitempty"`
	// Chunk overrides the baseline schedule chunk (0 = pragma, else the
	// OpenMP static default); candidate schedule rewrites ignore it.
	Chunk int64 `json:"chunk,omitempty"`
	// Machine names the modeled target: paper48 (default), smalltest,
	// modern16.
	Machine string `json:"machine,omitempty"`
	// Nest selects the loop nest to tune.
	Nest int `json:"nest,omitempty"`
	// Beam is how many fast-tier candidates reach simulator verification
	// (0 = tuner default).
	Beam int `json:"beam,omitempty"`
	// MaxCandidates caps the enumerated plan space (0 = tuner default).
	MaxCandidates int `json:"max_candidates,omitempty"`
}

// TuneResponse is the response of POST /v1/tune. A full run carries the
// tuner's Report (plan, transformed source, per-candidate scores,
// rejections). A degraded response — evaluator panic, tripped budget,
// open breaker — has no verified report; it carries the closed-form
// engine's single-fix suggestion in ClosedForm instead, with Degraded
// set and the reason named.
type TuneResponse struct {
	File           string         `json:"file"`
	Report         *tuner.Result  `json:"report,omitempty"`
	Degraded       bool           `json:"degraded,omitempty"`
	DegradedReason string         `json:"degraded_reason,omitempty"`
	ClosedForm     *ClosedFormFix `json:"closed_form,omitempty"`
}

// ClosedFormFix is the degraded fallback's answer: the first verified
// single-transformation fix the closed-form analysis suggests for the
// nest, with no search and no simulation. Plan is "no-op" when the nest
// is already statically clean or no single fix applies.
type ClosedFormFix struct {
	Plan           string `json:"plan"`
	SuggestedChunk int64  `json:"suggested_chunk,omitempty"`
	PadBytes       int64  `json:"pad_bytes,omitempty"`
	// Findings counts the nest's FS001/FS002/RC001 findings.
	Findings int `json:"findings"`
}

// tuneResolved is a validated tune request with its canonical cache key.
type tuneResolved struct {
	req  TuneRequest
	file string
	src  string
	mach *machine.Desc
	key  string
}

// maxTuneBeam bounds client-supplied search widths so one request
// cannot order an arbitrarily large verification fan-out.
const (
	maxTuneBeam       = 16
	maxTuneCandidates = 128
)

// resolveTune validates req and computes its canonical key.
func (s *Server) resolveTune(req TuneRequest) (tuneResolved, error) {
	if req.Source != "" && req.Kernel != "" {
		return tuneResolved{}, badRequestf("source and kernel are mutually exclusive")
	}
	if req.Source == "" && req.Kernel == "" {
		return tuneResolved{}, badRequestf("one of source or kernel is required")
	}
	if req.Threads < 0 || req.Threads > maxThreads {
		return tuneResolved{}, badRequestf("threads must be in 0..%d, got %d", maxThreads, req.Threads)
	}
	if req.Chunk < 0 {
		return tuneResolved{}, badRequestf("chunk must be >= 0, got %d", req.Chunk)
	}
	if req.Nest < 0 {
		return tuneResolved{}, badRequestf("nest must be >= 0, got %d", req.Nest)
	}
	if req.Beam < 0 || req.Beam > maxTuneBeam {
		return tuneResolved{}, badRequestf("beam must be in 0..%d, got %d", maxTuneBeam, req.Beam)
	}
	if req.MaxCandidates < 0 || req.MaxCandidates > maxTuneCandidates {
		return tuneResolved{}, badRequestf("max_candidates must be in 0..%d, got %d", maxTuneCandidates, req.MaxCandidates)
	}
	mach, err := machineDescByName(req.Machine)
	if err != nil {
		return tuneResolved{}, &apiError{status: http.StatusBadRequest, msg: err.Error()}
	}
	src := req.Source
	file := "<source>"
	if req.Kernel != "" {
		threads := req.Threads
		if threads == 0 {
			threads = mach.Cores
		}
		k, err := kernels.ByName(req.Kernel, threads)
		if err != nil {
			return tuneResolved{}, &apiError{status: http.StatusBadRequest, msg: err.Error()}
		}
		src = k.Source
		file = "<kernel:" + req.Kernel + ">"
	}
	h := sha256.New()
	fmt.Fprintf(h, "tune/v1\x00machine=%s;threads=%d;chunk=%d;nest=%d;beam=%d;maxcand=%d;eval=%s;extrap=%t\x00",
		mach.Name, req.Threads, req.Chunk, req.Nest, req.Beam, req.MaxCandidates,
		s.cfg.EvalMode, s.cfg.Extrapolate)
	h.Write([]byte(src))
	return tuneResolved{
		req:  req,
		file: file,
		src:  src,
		mach: mach,
		key:  hex.EncodeToString(h.Sum(nil)),
	}, nil
}

// handleTune serves POST /v1/tune through the same fault boundary,
// cache, in-flight dedup and admission control as the other evaluation
// endpoints. Cached bodies are served verbatim, so a repeated request
// replays byte-identically (including the original run's phase
// timings).
func (s *Server) handleTune(w http.ResponseWriter, r *http.Request) {
	if err := s.admitClient(r); err != nil {
		s.writeError(w, err)
		return
	}
	var req TuneRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	rr, err := s.resolveTune(req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	ctx, cancel, err := s.requestContext(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	defer cancel()
	body, source, err := s.guarded(ctx, endpointTune, rr.key, s.clusterRouteFor(r, "/v1/tune", req), func(ctx context.Context) ([]byte, string, error) {
		return s.evaluateTune(ctx, rr)
	}, func(reason string) ([]byte, error) {
		return s.degradedTune(rr, reason)
	})
	if err != nil {
		s.writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", source)
	w.Write(body)
}

// evaluateTune runs the full search for one resolved request. Input
// problems the resolver cannot see (unparsable source, sequential nest,
// symbolic bounds) surface as 400s via tuner.InputError; budget trips,
// panics and deadline expiry flow to guarded, which degrades.
func (s *Server) evaluateTune(ctx context.Context, rr tuneResolved) ([]byte, string, error) {
	if err := faultinject.Fire("service.evaluate"); err != nil {
		return nil, "", err
	}
	eval, err := fsmodel.EvalModeFromString(s.cfg.EvalMode)
	if err != nil {
		return nil, "", err
	}
	res, err := tuner.Tune(ctx, rr.src, tuner.Options{
		Machine:       rr.mach,
		Threads:       rr.req.Threads,
		Chunk:         rr.req.Chunk,
		Nest:          rr.req.Nest,
		Beam:          rr.req.Beam,
		MaxCandidates: rr.req.MaxCandidates,
		Eval:          eval,
		Extrapolate:   s.cfg.Extrapolate,
		Budget:        s.evalBudget(ctx),
		KeepHeader:    true,
	})
	if err != nil {
		var ie *tuner.InputError
		if errors.As(err, &ie) {
			return nil, "", &apiError{status: http.StatusBadRequest, msg: ie.Msg}
		}
		return nil, "", err
	}
	s.metrics.TuneCandidates.Add(int64(len(res.Candidates)))
	for _, p := range res.Phases {
		s.metrics.TunePhase.With(p.Name).Observe(p.Seconds)
	}
	body, err := json.Marshal(TuneResponse{File: rr.file, Report: res})
	return body, res.EvalMode, err
}

// degradedTune answers a tune request without the search: the
// closed-form analysis runs outside the cache/flight/pool seams, under
// its own recover wrapper, and its first single-transformation fix for
// the nest becomes the suggestion. No source is transformed — an
// unverified rewrite would defeat the tuner's contract that emitted
// source is simulator-verified.
func (s *Server) degradedTune(rr tuneResolved, reason string) ([]byte, error) {
	return guard.Do1(func() ([]byte, error) {
		prog, err := minic.Parse(rr.src)
		if err != nil {
			return nil, &apiError{status: http.StatusBadRequest, msg: "parse: " + err.Error()}
		}
		unit, err := loopir.Lower(prog, loopir.LowerOptions{
			LineSize:       rr.mach.LineSize,
			AllowNonAffine: true,
			SymbolicBounds: true,
		})
		if err != nil {
			return nil, &apiError{status: http.StatusBadRequest, msg: "lower: " + err.Error()}
		}
		if rr.req.Nest >= len(unit.Nests) {
			return nil, badRequestf("nest index %d out of range (%d nests)", rr.req.Nest, len(unit.Nests))
		}
		rep, err := analysis.Analyze(unit, analysis.Config{
			Machine: rr.mach,
			Threads: rr.req.Threads,
			Chunk:   rr.req.Chunk,
		})
		if err != nil {
			return nil, err
		}
		fix := &ClosedFormFix{Plan: "no-op"}
		for _, d := range rep.Diagnostics {
			if d.Nest != rr.req.Nest {
				continue
			}
			switch d.Code {
			case analysis.CodeFSWrite, analysis.CodeFSPair, analysis.CodeRace:
				fix.Findings++
			case analysis.CodeFixChunk:
				if fix.Plan == "no-op" && d.SuggestedChunk > 0 {
					fix.Plan = fmt.Sprintf("schedule(static,%d)", d.SuggestedChunk)
					fix.SuggestedChunk = d.SuggestedChunk
				}
			case analysis.CodeFixPad:
				if fix.Plan == "no-op" && d.PadBytes > 0 {
					fix.Plan = fmt.Sprintf("pad +%dB", d.PadBytes)
					fix.PadBytes = d.PadBytes
				}
			}
		}
		return json.Marshal(TuneResponse{
			File:           rr.file,
			Degraded:       true,
			DegradedReason: reason,
			ClosedForm:     fix,
		})
	})
}
