package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"

	"repro"
	"repro/internal/kernels"
)

func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func mustKernelSource(t *testing.T, name string, threads int) string {
	t.Helper()
	k, err := kernels.ByName(name, threads)
	if err != nil {
		t.Fatal(err)
	}
	return k.Source
}

const victimSrc = `
#define N 256
double a[N];
#pragma omp parallel for schedule(static,1) num_threads(4)
for (i = 0; i < N; i++) a[i] += 1.0;
`

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = discardLogger()
	}
	return New(cfg)
}

func post(t *testing.T, s *Server, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", path, bytes.NewReader(b))
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	return w
}

func get(t *testing.T, s *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest("GET", path, nil))
	return w
}

func decodeAnalyze(t *testing.T, w *httptest.ResponseRecorder) AnalyzeResponse {
	t.Helper()
	var resp AnalyzeResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("invalid response JSON: %v\n%s", err, w.Body.String())
	}
	return resp
}

func errMessage(t *testing.T, w *httptest.ResponseRecorder) string {
	t.Helper()
	var envelope struct {
		Error *APIError `json:"error"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &envelope); err != nil || envelope.Error == nil {
		t.Fatalf("invalid error envelope: %v\n%s", err, w.Body.String())
	}
	return envelope.Error.Message
}

func TestAnalyzeSource(t *testing.T) {
	s := newTestServer(t, Config{})
	w := post(t, s, "/v1/analyze", AnalyzeRequest{Source: victimSrc, Recommend: true})
	if w.Code != 200 {
		t.Fatalf("status = %d: %s", w.Code, w.Body.String())
	}
	if got := w.Header().Get("X-Cache"); got != "miss" {
		t.Errorf("X-Cache = %q, want miss", got)
	}
	resp := decodeAnalyze(t, w)
	if resp.FSCases == 0 || resp.FSShare <= 0 || resp.TotalCycles <= 0 {
		t.Errorf("implausible analysis: %+v", resp)
	}
	if resp.Threads != 4 || resp.Chunk != 1 {
		t.Errorf("pragma schedule not honored: threads=%d chunk=%d", resp.Threads, resp.Chunk)
	}
	if resp.RecommendedChunk < 8 {
		t.Errorf("recommended chunk = %d, want >= 8 (one 64-byte line of doubles)", resp.RecommendedChunk)
	}
	if len(resp.Victims) != 1 || resp.Victims[0].Symbol != "a" {
		t.Errorf("victims = %+v", resp.Victims)
	}

	// Same request again: served from cache, byte-identical.
	w2 := post(t, s, "/v1/analyze", AnalyzeRequest{Source: victimSrc, Recommend: true})
	if w2.Code != 200 || w2.Header().Get("X-Cache") != "hit" {
		t.Fatalf("second request: status=%d X-Cache=%q", w2.Code, w2.Header().Get("X-Cache"))
	}
	if !bytes.Equal(w.Body.Bytes(), w2.Body.Bytes()) {
		t.Error("cached response differs from evaluated response")
	}
	m := s.Metrics()
	if m.Evaluations.Value() != 1 || m.CacheHits.Value() != 1 || m.CacheMisses.Value() != 1 {
		t.Errorf("evals=%d hits=%d misses=%d, want 1/1/1",
			m.Evaluations.Value(), m.CacheHits.Value(), m.CacheMisses.Value())
	}
}

func TestAnalyzeKernelMatchesLibrary(t *testing.T) {
	s := newTestServer(t, Config{})
	w := post(t, s, "/v1/analyze", AnalyzeRequest{Kernel: "dft", Threads: 8, Chunk: 1})
	if w.Code != 200 {
		t.Fatalf("status = %d: %s", w.Code, w.Body.String())
	}
	resp := decodeAnalyze(t, w)

	// The service must agree exactly with a direct library call.
	k, err := repro.Parse(mustKernelSource(t, "dft", 8))
	if err != nil {
		t.Fatal(err)
	}
	a, err := k.Analyze(0, repro.Options{Threads: 8, Chunk: 1})
	if err != nil {
		t.Fatal(err)
	}
	if resp.FSCases != a.FSCases || resp.Iterations != a.Iterations {
		t.Errorf("service fs=%d iters=%d, library fs=%d iters=%d",
			resp.FSCases, resp.Iterations, a.FSCases, a.Iterations)
	}
}

func TestAnalyzeValidationErrors(t *testing.T) {
	s := newTestServer(t, Config{})
	cases := []struct {
		name    string
		req     AnalyzeRequest
		status  int
		wantMsg string
	}{
		{"no input", AnalyzeRequest{}, 400, "one of source or kernel"},
		{"both inputs", AnalyzeRequest{Source: "x", Kernel: "heat"}, 400, "mutually exclusive"},
		{"unknown kernel", AnalyzeRequest{Kernel: "bogus"}, 400, "valid kernels: heat, dft, linreg"},
		{"unknown machine", AnalyzeRequest{Kernel: "heat", Machine: "cray1"}, 400, "valid machines"},
		{"negative nest", AnalyzeRequest{Kernel: "heat", Nest: -1}, 400, "nest"},
		{"too many threads", AnalyzeRequest{Kernel: "heat", Threads: 65}, 400, "threads"},
		{"negative chunk", AnalyzeRequest{Kernel: "heat", Chunk: -2}, 400, "chunk"},
		{"parse error", AnalyzeRequest{Source: "for (i = 0; j < 4; i++) x = 1;"}, 400, ""},
		{"nest out of range", AnalyzeRequest{Source: victimSrc, Nest: 5}, 400, "out of range"},
		{"sequential nest", AnalyzeRequest{Source: "double a[8];\nfor (i = 0; i < 8; i++) a[i] = 1.0;"}, 400, "sequential"},
		{"symbolic bounds", AnalyzeRequest{Source: "double a[512];\n#pragma omp parallel for\nfor (i = 0; i < n; i++) a[i] += 1.0;"}, 400, "unknown at compile time"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := post(t, s, "/v1/analyze", tc.req)
			if w.Code != tc.status {
				t.Fatalf("status = %d, want %d: %s", w.Code, tc.status, w.Body.String())
			}
			if msg := errMessage(t, w); tc.wantMsg != "" && !strings.Contains(msg, tc.wantMsg) {
				t.Errorf("message %q missing %q", msg, tc.wantMsg)
			}
		})
	}
}

func TestAnalyzeMalformedAndOversizedBodies(t *testing.T) {
	s := newTestServer(t, Config{MaxBodyBytes: 256})
	req := httptest.NewRequest("POST", "/v1/analyze", strings.NewReader("{not json"))
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != 400 {
		t.Fatalf("malformed body: status = %d", w.Code)
	}

	big, _ := json.Marshal(AnalyzeRequest{Source: strings.Repeat("x", 1024)})
	req = httptest.NewRequest("POST", "/v1/analyze", bytes.NewReader(big))
	w = httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status = %d, want 413", w.Code)
	}

	// Unknown fields are rejected so typos don't silently analyze the
	// wrong thing.
	req = httptest.NewRequest("POST", "/v1/analyze", strings.NewReader(`{"kernel":"heat","treads":8}`))
	w = httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != 400 {
		t.Fatalf("unknown field: status = %d, want 400", w.Code)
	}
}

func TestBatchTemplateSweepOrderAndCache(t *testing.T) {
	s := newTestServer(t, Config{})
	chunks := []int64{1, 2, 4, 8, 16}
	w := post(t, s, "/v1/analyze/batch", BatchRequest{
		Template: &AnalyzeRequest{Source: victimSrc},
		Chunks:   chunks,
	})
	if w.Code != 200 {
		t.Fatalf("status = %d: %s", w.Code, w.Body.String())
	}
	var bresp BatchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &bresp); err != nil {
		t.Fatal(err)
	}
	if len(bresp.Results) != len(chunks) {
		t.Fatalf("%d results for %d chunks", len(bresp.Results), len(chunks))
	}
	for i, r := range bresp.Results {
		if r.Error != nil {
			t.Fatalf("item %d failed: %+v", i, r.Error)
		}
		var item AnalyzeResponse
		if err := json.Unmarshal(r.Result, &item); err != nil {
			t.Fatal(err)
		}
		if item.Chunk != chunks[i] {
			t.Errorf("result %d has chunk %d, want %d (input order violated)", i, item.Chunk, chunks[i])
		}
	}
	// The batch populated the cache: the single endpoint now hits.
	w2 := post(t, s, "/v1/analyze", AnalyzeRequest{Source: victimSrc, Chunk: 4})
	if w2.Header().Get("X-Cache") != "hit" {
		t.Errorf("single request after batch: X-Cache = %q, want hit", w2.Header().Get("X-Cache"))
	}
}

func TestBatchPerItemErrors(t *testing.T) {
	s := newTestServer(t, Config{})
	w := post(t, s, "/v1/analyze/batch", BatchRequest{
		Requests: []AnalyzeRequest{
			{Source: victimSrc},
			{Kernel: "bogus"},
			{Source: victimSrc, Chunk: 8},
		},
	})
	if w.Code != 200 {
		t.Fatalf("status = %d: %s", w.Code, w.Body.String())
	}
	var bresp BatchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &bresp); err != nil {
		t.Fatal(err)
	}
	if bresp.Results[0].Error != nil || bresp.Results[2].Error != nil {
		t.Errorf("valid items failed: %+v", bresp.Results)
	}
	if bresp.Results[1].Error == nil || bresp.Results[1].Error.Code != 400 {
		t.Errorf("invalid item not reported: %+v", bresp.Results[1])
	}
}

func TestBatchValidation(t *testing.T) {
	s := newTestServer(t, Config{MaxBatch: 2})
	for name, tc := range map[string]struct {
		body   BatchRequest
		status int
	}{
		"empty":            {BatchRequest{}, 400},
		"chunks only":      {BatchRequest{Chunks: []int64{1}}, 400},
		"template only":    {BatchRequest{Template: &AnalyzeRequest{Source: victimSrc}}, 400},
		"over the limit":   {BatchRequest{Template: &AnalyzeRequest{Source: victimSrc}, Chunks: []int64{1, 2, 4}}, 400},
		"exactly at limit": {BatchRequest{Template: &AnalyzeRequest{Source: victimSrc}, Chunks: []int64{1, 2}}, 200},
	} {
		t.Run(name, func(t *testing.T) {
			if w := post(t, s, "/v1/analyze/batch", tc.body); w.Code != tc.status {
				t.Errorf("status = %d, want %d: %s", w.Code, tc.status, w.Body.String())
			}
		})
	}
}

func TestBackpressure429(t *testing.T) {
	s := newTestServer(t, Config{MaxConcurrent: 1, MaxQueue: 1})
	// Occupy the only evaluation slot directly.
	release, err := s.limiter.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// One request parks in the queue.
	queued := make(chan *httptest.ResponseRecorder, 1)
	go func() { queued <- post(t, s, "/v1/analyze", AnalyzeRequest{Source: victimSrc}) }()
	for s.Metrics().QueueDepth.Value() != 1 {
		runtime.Gosched()
	}
	// The next one must be turned away immediately.
	w := post(t, s, "/v1/analyze", AnalyzeRequest{Source: victimSrc, Chunk: 2})
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429: %s", w.Code, w.Body.String())
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if s.Metrics().QueueRejects.Value() != 1 {
		t.Errorf("queue rejects = %d, want 1", s.Metrics().QueueRejects.Value())
	}
	release()
	if w := <-queued; w.Code != 200 {
		t.Fatalf("queued request: status = %d after slot freed: %s", w.Code, w.Body.String())
	}
}

func TestHealthzAndShutdownFlip(t *testing.T) {
	s := newTestServer(t, Config{})
	if w := get(t, s, "/healthz"); w.Code != 200 || !strings.Contains(w.Body.String(), "ok") {
		t.Fatalf("healthz: %d %q", w.Code, w.Body.String())
	}
	s.BeginShutdown()
	if w := get(t, s, "/healthz"); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d, want 503", w.Code)
	}
}

func TestKernelsEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	w := get(t, s, "/v1/kernels")
	if w.Code != 200 {
		t.Fatalf("status = %d", w.Code)
	}
	var resp map[string][]string
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(resp["kernels"]) != "[heat dft linreg]" {
		t.Errorf("kernels = %v", resp["kernels"])
	}
	if fmt.Sprint(resp["machines"]) != "[paper48 smalltest modern16]" {
		t.Errorf("machines = %v", resp["machines"])
	}
}

func TestAnalyzeEvalModeField(t *testing.T) {
	for _, tc := range []struct {
		cfgMode string
		want    string
	}{
		{"", "compiled"},     // auto resolves to the plan compiler
		{"auto", "compiled"}, // explicit spelling, same resolution
		{"compiled", "compiled"},
		{"interpreted", "interpreted"},
	} {
		s := newTestServer(t, Config{EvalMode: tc.cfgMode})
		w := post(t, s, "/v1/analyze", AnalyzeRequest{Source: victimSrc})
		if w.Code != 200 {
			t.Fatalf("cfg %q: status = %d: %s", tc.cfgMode, w.Code, w.Body.String())
		}
		resp := decodeAnalyze(t, w)
		if resp.EvalMode != tc.want {
			t.Errorf("cfg %q: eval_mode = %q, want %q", tc.cfgMode, resp.EvalMode, tc.want)
		}
		if resp.Extrapolated {
			t.Errorf("cfg %q: extrapolated without the server flag", tc.cfgMode)
		}
	}
}

func TestEvalModePartOfCacheKey(t *testing.T) {
	// The same request against servers in different eval modes must not
	// share canonical keys: a shared external cache keyed on our key
	// would otherwise mix pipelines.
	sc := newTestServer(t, Config{EvalMode: "compiled"})
	si := newTestServer(t, Config{EvalMode: "interpreted"})
	rc, err := sc.resolve(AnalyzeRequest{Source: victimSrc})
	if err != nil {
		t.Fatal(err)
	}
	ri, err := si.resolve(AnalyzeRequest{Source: victimSrc})
	if err != nil {
		t.Fatal(err)
	}
	if rc.key == ri.key {
		t.Fatal("compiled and interpreted requests share a cache key")
	}
}

func TestPprofMount(t *testing.T) {
	on := newTestServer(t, Config{EnablePprof: true})
	if w := get(t, on, "/debug/pprof/"); w.Code != 200 {
		t.Errorf("with -pprof: GET /debug/pprof/ = %d, want 200", w.Code)
	}
	off := newTestServer(t, Config{})
	if w := get(t, off, "/debug/pprof/"); w.Code != 404 {
		t.Errorf("without -pprof: GET /debug/pprof/ = %d, want 404", w.Code)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	post(t, s, "/v1/analyze", AnalyzeRequest{Source: victimSrc})
	w := get(t, s, "/metrics")
	if w.Code != 200 {
		t.Fatalf("status = %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	for _, want := range []string{
		`fsserve_requests_total{endpoint="/v1/analyze",code="200"} 1`,
		"fsserve_evaluations_total 1",
		"fsserve_cache_entries 1",
		`fsserve_eval_seconds_count{endpoint="analyze",mode="compiled"} 1`,
	} {
		if !strings.Contains(w.Body.String(), want) {
			t.Errorf("metrics missing %q:\n%s", want, w.Body.String())
		}
	}
}

func TestMethodAndPathErrors(t *testing.T) {
	s := newTestServer(t, Config{})
	if w := get(t, s, "/v1/analyze"); w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/analyze: %d, want 405", w.Code)
	}
	if w := get(t, s, "/nope"); w.Code != http.StatusNotFound {
		t.Errorf("GET /nope: %d, want 404", w.Code)
	}
}
