package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/admission"
	"repro/internal/kernels"
	"repro/internal/minic"
)

// apiError is an error with a fixed HTTP status.
type apiError struct {
	status int
	msg    string
}

// Error implements the error interface.
func (e *apiError) Error() string { return e.msg }

// badRequestf builds a 400 error.
func badRequestf(format string, args ...any) error {
	return &apiError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// quotaError is a per-client quota rejection carrying the
// refill-derived Retry-After (seconds).
type quotaError struct {
	retryAfter int
}

// Error implements the error interface.
func (e *quotaError) Error() string { return "client over request quota" }

// statusFor maps an error to its HTTP status. The classification mirrors
// the CLIs' exit-code discipline (user-input errors versus internal
// failures): parse errors, unknown kernels and request-validation
// failures are the client's fault (4xx); a full queue is backpressure
// (429); an expired deadline is 504; anything else is a 500.
func statusFor(err error) int {
	var ae *apiError
	if errors.As(err, &ae) {
		return ae.status
	}
	var pe *minic.ParseError
	var uk *kernels.UnknownKernelError
	var de *admission.DeadlineError
	var qe *quotaError
	switch {
	case errors.As(err, &pe), errors.As(err, &uk):
		return http.StatusBadRequest
	case errors.Is(err, errQueueFull), errors.As(err, &de), errors.As(err, &qe):
		// All three admission rejections are backpressure: full queue,
		// unmeetable deadline, exhausted client quota.
		return http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}
