package stackdist

import (
	"math/rand"
	"testing"
)

// naiveDistance computes the stack distance by scanning an explicit LRU
// list.
type naiveLRU struct {
	order []int64 // index 0 = MRU
}

func (n *naiveLRU) access(line int64) int64 {
	for i, l := range n.order {
		if l == line {
			n.order = append(n.order[:i], n.order[i+1:]...)
			n.order = append([]int64{line}, n.order...)
			return int64(i)
		}
	}
	n.order = append([]int64{line}, n.order...)
	return Infinite
}

func TestAnalyzerSimple(t *testing.T) {
	a := New()
	// Stream: 1 2 3 1 → distance of the second 1 is 2 (lines 2, 3 between).
	if d := a.Access(1); d != Infinite {
		t.Fatalf("cold access distance = %d", d)
	}
	a.Access(2)
	a.Access(3)
	if d := a.Access(1); d != 2 {
		t.Fatalf("reuse distance = %d, want 2", d)
	}
	// Immediate re-access → distance 0.
	if d := a.Access(1); d != 0 {
		t.Fatalf("immediate reuse distance = %d, want 0", d)
	}
	if a.Distinct() != 3 || a.Accesses() != 5 {
		t.Fatalf("distinct/accesses = %d/%d", a.Distinct(), a.Accesses())
	}
}

func TestAnalyzerRepeatedScan(t *testing.T) {
	// Scanning N lines repeatedly: every non-cold access has distance N-1.
	const n = 16
	a := New()
	for pass := 0; pass < 3; pass++ {
		for line := int64(0); line < n; line++ {
			d := a.Access(line)
			if pass == 0 {
				if d != Infinite {
					t.Fatalf("pass 0 line %d: distance %d", line, d)
				}
			} else if d != n-1 {
				t.Fatalf("pass %d line %d: distance %d, want %d", pass, line, d, n-1)
			}
		}
	}
}

func TestAnalyzerMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	a := New()
	var n naiveLRU
	for i := 0; i < 5000; i++ {
		line := int64(r.Intn(64))
		got := a.Access(line)
		want := n.access(line)
		if got != want {
			t.Fatalf("access %d (line %d): distance %d, naive %d", i, line, got, want)
		}
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	h.Add(Infinite)
	h.Add(0) // bucket 0 (distances 0)
	h.Add(1) // bucket 1
	h.Add(2) // bucket 1 (2 in [1..2])
	h.Add(7) // bucket 3 (7 in [7..14])
	if h.Cold != 1 || h.Total != 5 || h.Max != 7 {
		t.Fatalf("histogram = %+v", h)
	}
	if h.Buckets[0] != 1 || h.Buckets[1] != 2 || h.Buckets[3] != 1 {
		t.Fatalf("buckets = %v", h.Buckets)
	}
}

func TestMissesAtCapacity(t *testing.T) {
	var h Histogram
	// 10 accesses at distance 0, 5 at distance 100, 2 cold.
	for i := 0; i < 10; i++ {
		h.Add(0)
	}
	for i := 0; i < 5; i++ {
		h.Add(100)
	}
	h.Add(Infinite)
	h.Add(Infinite)
	// Capacity 1000 lines: only cold misses.
	if m := h.MissesAtCapacity(1000); m != 2 {
		t.Fatalf("misses@1000 = %d", m)
	}
	// Capacity 8 lines: distance-100 accesses also miss.
	if m := h.MissesAtCapacity(8); m != 7 {
		t.Fatalf("misses@8 = %d", m)
	}
}

func TestAnalyzerLongStream(t *testing.T) {
	// Exercise the Fenwick tree growth across several doublings.
	a := New()
	for i := 0; i < 257*390; i++ { // whole passes so the stream ends a cycle
		a.Access(int64(i % 257))
	}
	if a.Distinct() != 257 {
		t.Fatalf("distinct = %d", a.Distinct())
	}
	// Steady state: distance must be 256.
	if d := a.Access(0); d != 256 {
		t.Fatalf("steady distance = %d", d)
	}
}

func BenchmarkAnalyzerAccess(b *testing.B) {
	a := New()
	for i := 0; i < b.N; i++ {
		a.Access(int64(i % 4096))
	}
}
