// Package stackdist implements stack distance (LRU reuse distance)
// analysis, the technique the paper applies to each thread's cache-line
// ownership list (Section III-C, citing Schuff et al.): the stack distance
// of an access is the number of distinct cache lines touched since the
// previous access to the same line.
//
// The analyzer uses the Bennett–Kruskal algorithm: a Fenwick tree over
// access timestamps marks the most recent access position of every line,
// so each distance query costs O(log n) instead of walking an LRU list.
package stackdist

// Analyzer computes stack distances over a stream of cache-line accesses.
type Analyzer struct {
	last  map[int64]int // line -> timestamp of most recent access (1-based)
	bit   []int64       // Fenwick tree over timestamps: 1 where a line's last access sits
	marks []bool        // marks[t] mirrors the tree's point values, for rebuilds
	time  int
}

// New returns an empty analyzer.
func New() *Analyzer {
	return &Analyzer{last: make(map[int64]int), bit: make([]int64, 16), marks: make([]bool, 16)}
}

// Infinite is the distance reported for a line's first (cold) access.
const Infinite = int64(-1)

func (a *Analyzer) update(i int, delta int64) {
	a.marks[i] = delta > 0
	for ; i < len(a.bit); i += i & (-i) {
		a.bit[i] += delta
	}
}

func (a *Analyzer) prefix(i int) int64 {
	var s int64
	for ; i > 0; i -= i & (-i) {
		s += a.bit[i]
	}
	return s
}

// grow doubles the tree. A Fenwick node's value is the sum of a fixed
// index range, so growing requires rebuilding from the point marks —
// appending zeros would corrupt nodes whose range spans the old boundary.
func (a *Analyzer) grow() {
	newLen := len(a.bit) * 2
	a.marks = append(a.marks, make([]bool, newLen-len(a.marks))...)
	bit := make([]int64, newLen)
	for t, m := range a.marks {
		if !m || t == 0 {
			continue
		}
		for i := t; i < newLen; i += i & (-i) {
			bit[i]++
		}
	}
	a.bit = bit
}

// Access records an access to line and returns its stack distance: the
// number of distinct lines accessed since the last access to line, or
// Infinite for a cold access. Distance 0 means the line was the most
// recently used.
func (a *Analyzer) Access(line int64) int64 {
	a.time++
	for a.time >= len(a.bit) {
		a.grow()
	}
	dist := Infinite
	if t, seen := a.last[line]; seen {
		// Distinct lines after t = number of "last access" marks in (t, now).
		dist = a.prefix(a.time-1) - a.prefix(t)
		a.update(t, -1)
	}
	a.last[line] = a.time
	a.update(a.time, 1)
	return dist
}

// Distinct returns the number of distinct lines seen so far.
func (a *Analyzer) Distinct() int { return len(a.last) }

// Accesses returns the number of accesses recorded.
func (a *Analyzer) Accesses() int { return a.time }

// Histogram accumulates a reuse-distance histogram with a bucket per
// power-of-two distance, plus cold misses. Feed it the distances returned
// by Analyzer.Access.
type Histogram struct {
	Cold    int64
	Buckets []int64 // Buckets[k] counts distances in [2^k-1 .. 2^(k+1)-2]
	Total   int64
	Max     int64
}

// Add records one distance.
func (h *Histogram) Add(dist int64) {
	h.Total++
	if dist == Infinite {
		h.Cold++
		return
	}
	if dist > h.Max {
		h.Max = dist
	}
	k := 0
	for d := dist + 1; d > 1; d >>= 1 {
		k++
	}
	for len(h.Buckets) <= k {
		h.Buckets = append(h.Buckets, 0)
	}
	h.Buckets[k]++
}

// MissesAtCapacity returns how many recorded accesses would miss in a
// fully-associative LRU cache holding `lines` cache lines: cold misses plus
// every access with distance >= lines. The count is conservative within
// bucket granularity (a bucket straddling the capacity counts as missing).
func (h *Histogram) MissesAtCapacity(lines int64) int64 {
	misses := h.Cold
	for k, n := range h.Buckets {
		lo := int64(1)<<uint(k) - 1 // smallest distance in bucket k
		if lo >= lines {
			misses += n
		}
	}
	return misses
}
