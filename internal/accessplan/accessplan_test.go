package accessplan

import (
	"fmt"
	"testing"

	"repro/internal/kernels"
	"repro/internal/loopir"
	"repro/internal/sched"
	"repro/internal/trace"
)

// corpus returns nests covering every block shape the compiler handles:
// the paper kernels (parallel-innermost stencils, parallel-outer
// accumulators), plus triangular bounds, negative steps, strides larger
// than a line, multi-level nests, and empty/degenerate loops.
func corpus(t *testing.T) map[string]*loopir.Nest {
	t.Helper()
	out := map[string]*loopir.Nest{}
	load := func(name, src string) {
		t.Helper()
		k, err := kernels.Load(name, src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = k.Nest
	}
	heat, err := kernels.Heat(12, 512)
	if err != nil {
		t.Fatal(err)
	}
	out["heat"] = heat.Nest
	dft, err := kernels.DFT(96)
	if err != nil {
		t.Fatal(err)
	}
	out["dft"] = dft.Nest
	lr, err := kernels.LinReg(64, 96, 8)
	if err != nil {
		t.Fatal(err)
	}
	out["linreg"] = lr.Nest

	load("triangular", `
double a[4096];
#pragma omp parallel for schedule(static,2) num_threads(4)
for (i = 0; i < 48; i++)
  for (j = i; j < 48; j++)
    a[i * 48 + j] = a[j * 48 + i] + 1.0;
`)
	load("par-middle", `
double a[8192];
for (i = 0; i < 6; i++) {
#pragma omp parallel for schedule(static,1) num_threads(4)
  for (j = 0; j < 20; j++)
    for (k = 0; k < 9; k++)
      a[i * 1200 + j * 60 + k * 3] = 1.0;
}
`)
	load("negstep", `
double a[4096];
#pragma omp parallel for schedule(static,3) num_threads(4)
for (i = 50; i > 0; i--)
  for (j = 40; j > 2; j = j - 3)
    a[i * 64 + j] = a[i * 64 + j] * 0.5;
`)
	load("widestride", `
double a[65536];
#pragma omp parallel for schedule(static,2) num_threads(8)
for (i = 0; i < 64; i++)
  for (j = 0; j < 32; j++)
    a[j * 1024 + i] = a[j * 1024 + i] + 1.0;
`)
	load("empty-inner", `
double a[4096];
#pragma omp parallel for schedule(static,1) num_threads(4)
for (i = 0; i < 30; i++)
  for (j = i; j < 15; j++)
    a[i * 64 + j] = 1.0;
`)
	return out
}

// step is one flattened innermost iteration of one thread: the addresses
// of its references plus whether it starts a new chunk-run key.
type step struct {
	addrs  string
	newKey bool
}

// interpretedSteps enumerates thread t via trace.ThreadCursor, the ground
// truth the block expansion must reproduce bit-identically.
func interpretedSteps(t *testing.T, nest *loopir.Nest, plan sched.Plan, thread int) []step {
	t.Helper()
	g, err := trace.NewGenerator(nest, plan)
	if err != nil {
		t.Fatal(err)
	}
	parLevel := nest.ParLevel
	if parLevel < 0 {
		parLevel = 0
	}
	cur := g.Cursor(thread)
	var out []step
	var buf []trace.Access
	var prevPrefix []int64
	prevTrip := int64(-1)
	first := true
	for cur.Next() {
		buf = g.Accesses(cur.Vals(), buf)
		key := ""
		for _, a := range buf {
			key += fmt.Sprintf("%d,", a.Addr)
		}
		newKey := first || cur.ParallelTrip() != prevTrip
		if !first {
			for l := 0; l < parLevel; l++ {
				if cur.Vals()[l] != prevPrefix[l] {
					newKey = true
				}
			}
		}
		prevPrefix = append(prevPrefix[:0], cur.Vals()[:parLevel]...)
		prevTrip = cur.ParallelTrip()
		first = false
		out = append(out, step{addrs: key, newKey: newKey})
	}
	return out
}

// compiledSteps expands thread t's block stream into flattened steps
// using only the block descriptors (start addresses, strides, skips,
// chunk lengths) — exactly what the fsmodel executor does.
func compiledSteps(t *testing.T, p *Plan, thread int) []step {
	t.Helper()
	cur := p.Cursor(thread)
	addr := make([]int64, p.NumRefs())
	strides := p.Strides()
	skips := p.Skips()
	var out []step
	for {
		steps, newKey, ok := cur.NextBlock(addr)
		if !ok {
			break
		}
		a := append([]int64(nil), addr...)
		chunkLeft := p.ChunkLen()
		for s := int64(0); s < steps; s++ {
			key := ""
			for _, v := range a {
				key += fmt.Sprintf("%d,", v)
			}
			nk := (s == 0 && newKey) || (p.ParInnermost() && s > 0)
			out = append(out, step{addrs: key, newKey: nk})
			if p.ParInnermost() {
				chunkLeft--
				if chunkLeft == 0 {
					chunkLeft = p.ChunkLen()
					for r := range a {
						a[r] += skips[r]
					}
				} else {
					for r := range a {
						a[r] += strides[r]
					}
				}
			} else {
				for r := range a {
					a[r] += strides[r]
				}
			}
		}
	}
	return out
}

// TestBlocksMatchInterpreter is the core differential check: for every
// corpus nest, thread count, and chunk size, the expanded block stream
// equals the interpreted iteration stream in addresses, order, and
// chunk-run key transitions.
func TestBlocksMatchInterpreter(t *testing.T) {
	for name, nest := range corpus(t) {
		for _, threads := range []int{1, 3, 4, 8} {
			if nest.ParLevel < 0 && threads != 1 {
				continue
			}
			for _, chunk := range []int64{1, 2, 5, 8} {
				plan := sched.Plan{Kind: sched.Static, NumThreads: threads, Chunk: chunk}
				p, err := Compile(nest, plan, 64)
				if err != nil {
					t.Fatalf("%s t=%d c=%d: %v", name, threads, chunk, err)
				}
				for th := 0; th < threads; th++ {
					want := interpretedSteps(t, nest, plan, th)
					got := compiledSteps(t, p, th)
					if len(want) != len(got) {
						t.Fatalf("%s t=%d c=%d thread=%d: %d steps, want %d",
							name, threads, chunk, th, len(got), len(want))
					}
					for i := range want {
						if want[i] != got[i] {
							t.Fatalf("%s t=%d c=%d thread=%d step %d: got %+v want %+v",
								name, threads, chunk, th, i, got[i], want[i])
						}
					}
				}
			}
		}
	}
}

// TestRefShapesMatch checks the static per-ref metadata lines up with the
// generator's analyzable-ref order.
func TestRefShapesMatch(t *testing.T) {
	for name, nest := range corpus(t) {
		threads := 4
		if nest.ParLevel < 0 {
			threads = 1
		}
		plan := sched.Plan{Kind: sched.Static, NumThreads: threads, Chunk: 2}
		p, err := Compile(nest, plan, 64)
		if err != nil {
			t.Fatal(err)
		}
		refs := nest.AnalyzableRefs()
		if len(refs) != p.NumRefs() {
			t.Fatalf("%s: %d refs, want %d", name, p.NumRefs(), len(refs))
		}
		for i, r := range refs {
			if p.Refs[i].Size != int32(r.Size) || p.Refs[i].Write != r.Write {
				t.Fatalf("%s ref %d: shape %+v does not match %v", name, i, p.Refs[i], r.Src)
			}
		}
	}
}

// TestCompileRejects covers the compile-time refusals that make the model
// fall back to interpretation.
func TestCompileRejects(t *testing.T) {
	heat, err := kernels.Heat(8, 64)
	if err != nil {
		t.Fatal(err)
	}
	plan := sched.Plan{Kind: sched.Static, NumThreads: 4, Chunk: 1}
	if _, err := Compile(heat.Nest, plan, 48); err == nil {
		t.Fatal("non-power-of-two line size accepted")
	}
	if _, err := Compile(heat.Nest, plan, 0); err == nil {
		t.Fatal("zero line size accepted")
	}
	if _, err := Compile(&loopir.Nest{}, plan, 64); err == nil {
		t.Fatal("empty nest accepted")
	}
}
