// Package accessplan compiles a lowered loop nest plus a work-sharing
// plan into per-thread block descriptors: maximal runs of consecutive
// innermost iterations whose reference addresses advance by a constant
// byte stride per iteration. The false-sharing model's compiled
// evaluation path consumes these blocks instead of re-evaluating affine
// index expressions through a trace.ThreadCursor once per iteration —
// bounds and base addresses are evaluated once per block, and the hot
// loop advances addresses with one add per reference per step.
//
// Block shapes by nest structure:
//
//   - Parallel innermost loop (the paper's heat and DFT kernels): one
//     block per instantiation of the outer loops, covering every trip
//     the thread owns. Within one owned chunk consecutive trips are
//     consecutive, so addresses advance by Strides(); crossing to the
//     thread's next chunk jumps by Skips() (the other threads' chunks in
//     between). The executor drives this with ChunkLen().
//   - Parallel outer loop (linear regression): one block per innermost
//     instantiation; the parallel and middle levels are enumerated
//     block-by-block exactly like trace.ThreadCursor enumerates them.
//
// The enumeration order of iterations within and across blocks is
// bit-identical to trace.ThreadCursor's order; accessplan_test verifies
// this differentially over a corpus of nests.
package accessplan

import (
	"fmt"
	"math/bits"

	"repro/internal/affine"
	"repro/internal/loopir"
	"repro/internal/sched"
)

// Ref is the static shape of one analyzable reference, index-aligned
// with the nest's AnalyzableRefs (and therefore with the model's ByRef
// attribution slots).
type Ref struct {
	Size  int32
	Write bool
}

type compiledLoop struct {
	first affine.Compiled
	limit affine.Compiled
	step  int64
}

type compiledRef struct {
	offset affine.Compiled
	base   int64
}

// Plan is a compiled access plan for one nest under one schedule.
type Plan struct {
	Refs []Ref
	// LineShift is log2 of the cache-line size the plan was compiled for.
	LineShift uint

	sched    sched.Plan
	loops    []compiledLoop
	refs     []compiledRef
	parLevel int
	parInner bool

	stride    []int64 // per-ref byte stride between consecutive steps of a block
	skip      []int64 // per-ref jump across an owned-chunk boundary (parallel-innermost)
	chunkLen  int64   // steps per owned chunk segment (parallel-innermost; else 0)
	batchable bool
}

// Compile lowers the nest against the plan. It fails on non-power-of-two
// line sizes and on anything trace.NewGenerator would reject; callers
// treat failure as "use the interpreted path".
func Compile(nest *loopir.Nest, plan sched.Plan, lineSize int64) (*Plan, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if lineSize <= 0 || lineSize&(lineSize-1) != 0 {
		return nil, fmt.Errorf("accessplan: line size %d is not a power of two", lineSize)
	}
	if len(nest.Loops) == 0 {
		return nil, fmt.Errorf("accessplan: empty nest")
	}
	parLevel := nest.ParLevel
	if parLevel < 0 {
		if plan.NumThreads != 1 {
			return nil, fmt.Errorf("accessplan: nest has no parallel level but plan has %d threads", plan.NumThreads)
		}
		parLevel = 0
	}
	vars := nest.Vars()
	p := &Plan{
		LineShift: uint(bits.TrailingZeros64(uint64(lineSize))),
		sched:     plan,
		parLevel:  parLevel,
	}
	for _, l := range nest.Loops {
		first, err := l.First.Compile(vars)
		if err != nil {
			return nil, fmt.Errorf("accessplan: loop %q lower bound: %w", l.Var, err)
		}
		limit, err := l.Limit.Compile(vars)
		if err != nil {
			return nil, fmt.Errorf("accessplan: loop %q limit: %w", l.Var, err)
		}
		if l.Step == 0 {
			return nil, fmt.Errorf("accessplan: loop %q has zero step", l.Var)
		}
		p.loops = append(p.loops, compiledLoop{first: first, limit: limit, step: l.Step})
	}
	for _, r := range nest.AnalyzableRefs() {
		off, err := r.Offset.Compile(vars)
		if err != nil {
			return nil, fmt.Errorf("accessplan: ref %s: %w", r.Src, err)
		}
		p.refs = append(p.refs, compiledRef{offset: off, base: r.Sym.Base})
		p.Refs = append(p.Refs, Ref{Size: int32(r.Size), Write: r.Write})
	}
	inner := len(p.loops) - 1
	p.parInner = parLevel == inner
	innerStep := p.loops[inner].step
	p.stride = make([]int64, len(p.refs))
	p.skip = make([]int64, len(p.refs))
	for i := range p.refs {
		p.stride[i] = innerStep * p.refs[i].offset.Coeffs[inner]
	}
	if p.parInner {
		p.chunkLen = plan.Chunk
		// From the last trip of one owned chunk to the first of the next:
		// (threads-1) whole foreign chunks plus one trip.
		delta := (int64(plan.NumThreads)-1)*plan.Chunk + 1
		for i := range p.refs {
			p.skip[i] = delta * p.stride[i]
		}
	}
	// A block is worth run-batching when every reference stays on one
	// cache line for several consecutive steps.
	p.batchable = len(p.refs) > 0
	for i := range p.refs {
		s := p.stride[i]
		if s < 0 {
			s = -s
		}
		if s != 0 && s*4 > lineSize {
			p.batchable = false
			break
		}
	}
	return p, nil
}

// Threads returns the plan's team size.
func (p *Plan) Threads() int { return p.sched.NumThreads }

// NumRefs returns the number of analyzable references per iteration.
func (p *Plan) NumRefs() int { return len(p.refs) }

// ParInnermost reports whether the parallelized loop is the innermost
// one, in which case every step of every block begins a new parallel
// trip (the chunk-run bookkeeping fast path).
func (p *Plan) ParInnermost() bool { return p.parInner }

// ParLevel returns the parallelized loop level the plan was compiled
// against (0 for a pragma-free single-thread nest).
func (p *Plan) ParLevel() int { return p.parLevel }

// Depth returns the nest depth.
func (p *Plan) Depth() int { return len(p.loops) }

// Batchable reports whether quiet-segment run batching can ever pay off
// for this plan (every reference revisits its line for several steps).
func (p *Plan) Batchable() bool { return p.batchable }

// Strides returns the per-ref byte stride between consecutive steps
// within a chunk segment. The slice is shared; do not mutate.
func (p *Plan) Strides() []int64 { return p.stride }

// Skips returns the per-ref byte jump across an owned-chunk boundary
// (meaningful only when ParInnermost). The slice is shared; do not
// mutate.
func (p *Plan) Skips() []int64 { return p.skip }

// ChunkLen returns the steps per owned-chunk segment of a block when
// ParInnermost, else 0 (blocks have a single uniform-stride segment).
func (p *Plan) ChunkLen() int64 { return p.chunkLen }

// LoopStep returns the step of loop level i.
func (p *Plan) LoopStep(level int) int64 { return p.loops[level].step }

// TripByteStride returns how many bytes ref r's address moves per trip
// of loop level, i.e. step(level) × the level variable's coefficient in
// the ref's byte-offset function. The steady-state extrapolation uses it
// to translate cache states across chunk runs.
func (p *Plan) TripByteStride(r, level int) int64 {
	return p.loops[level].step * p.refs[r].offset.Coeffs[level]
}

type levelState struct {
	first int64 // lower bound value at current instantiation
	n     int64 // trip count at current instantiation
	trip  int64 // current trip (sequential levels)
	j     int64 // owned-trip counter (parallel level, non-innermost)
	k     int64 // current global trip (parallel level)
}

// Cursor enumerates one thread's blocks in execution order.
type Cursor struct {
	p          *Plan
	thread     int
	vals       []int64
	lv         []levelState
	started    bool
	done       bool
	minChanged int
}

// Cursor returns a fresh block cursor for thread t.
func (p *Plan) Cursor(t int) *Cursor {
	return &Cursor{p: p, thread: t, vals: make([]int64, len(p.loops)), lv: make([]levelState, len(p.loops))}
}

// Thread returns the thread id this cursor enumerates.
func (c *Cursor) Thread() int { return c.thread }

// instantiate positions level i at its first valid state given the outer
// values; it reports false if the level contributes nothing for this
// thread.
func (c *Cursor) instantiate(i int) bool {
	cl := &c.p.loops[i]
	st := &c.lv[i]
	st.first = cl.first.Eval(c.vals)
	limit := cl.limit.Eval(c.vals)
	st.n = tripCount(st.first, limit, cl.step)
	inner := len(c.p.loops) - 1
	if i == inner && c.p.parInner {
		// The whole instantiation is one block spanning every trip the
		// thread owns; position at the thread's first owned trip.
		k0 := c.p.sched.OwnedTrip(c.thread, 0)
		if k0 >= st.n {
			return false
		}
		st.k = k0
		c.vals[i] = st.first + k0*cl.step
		return true
	}
	if i == c.p.parLevel {
		st.j = 0
		st.k = c.p.sched.OwnedTrip(c.thread, 0)
		if st.k >= st.n {
			return false
		}
		c.vals[i] = st.first + st.k*cl.step
		return true
	}
	if st.n == 0 {
		return false
	}
	st.trip = 0
	c.vals[i] = st.first
	return true
}

// step advances level i; it reports false on exhaustion. The innermost
// level is consumed a whole block at a time, so stepping it always
// exhausts it.
func (c *Cursor) step(i int) bool {
	cl := &c.p.loops[i]
	st := &c.lv[i]
	inner := len(c.p.loops) - 1
	if i == inner {
		return false
	}
	if i == c.p.parLevel {
		st.j++
		st.k = c.p.sched.OwnedTrip(c.thread, st.j)
		if st.k >= st.n {
			return false
		}
		c.vals[i] = st.first + st.k*cl.step
		if i < c.minChanged {
			c.minChanged = i
		}
		return true
	}
	st.trip++
	if st.trip >= st.n {
		return false
	}
	c.vals[i] += cl.step
	if i < c.minChanged {
		c.minChanged = i
	}
	return true
}

// seek makes levels i..depth-1 all valid, backtracking through outer
// levels when an inner one is empty.
func (c *Cursor) seek(i int) bool {
	d := len(c.p.loops)
	for i < d {
		if c.instantiate(i) {
			i++
			continue
		}
		k := i - 1
		for {
			if k < 0 {
				return false
			}
			if c.step(k) {
				break
			}
			k--
		}
		i = k + 1
	}
	return true
}

// NextBlock advances to the thread's next block and fills addr (len
// NumRefs) with each reference's byte address at the block's first step.
// steps is the block length in lockstep steps; newKey reports whether
// the block's first step begins a new (outer-prefix, parallel-trip)
// chunk-run key — when the plan is ParInnermost every step does and
// newKey is always true.
func (c *Cursor) NextBlock(addr []int64) (steps int64, newKey bool, ok bool) {
	if c.done {
		return 0, false, false
	}
	d := len(c.p.loops)
	c.minChanged = d
	if !c.started {
		c.started = true
		c.minChanged = 0
		if !c.seek(0) {
			c.done = true
			return 0, false, false
		}
	} else {
		k := d - 1
		for {
			if k < 0 {
				c.done = true
				return 0, false, false
			}
			if c.step(k) {
				break
			}
			k--
		}
		if !c.seek(k + 1) {
			c.done = true
			return 0, false, false
		}
	}
	inner := d - 1
	st := &c.lv[inner]
	if c.p.parInner {
		steps = c.p.sched.ThreadTrips(st.n, c.thread)
	} else {
		steps = st.n
	}
	for r := range c.p.refs {
		cr := &c.p.refs[r]
		addr[r] = cr.base + cr.offset.Eval(c.vals)
	}
	return steps, c.minChanged <= c.p.parLevel, true
}

func tripCount(first, limit, step int64) int64 {
	if step > 0 {
		if first >= limit {
			return 0
		}
		return (limit - first + step - 1) / step
	}
	if first <= limit {
		return 0
	}
	return (first - limit + (-step) - 1) / (-step)
}
