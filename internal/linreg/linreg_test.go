package linreg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFitExactLine(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := make([]float64, len(x))
	for i := range x {
		y[i] = 3*x[i] + 7
	}
	m, err := Fit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.A-3) > 1e-12 || math.Abs(m.B-7) > 1e-12 {
		t.Fatalf("fit = %+v", m)
	}
	if m.R2 < 1-1e-12 {
		t.Fatalf("R2 = %f", m.R2)
	}
	if m.Predict(10) != m.A*10+m.B {
		t.Fatal("Predict inconsistent")
	}
}

func TestFitNoisyLine(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	var x, y []float64
	for i := 1; i <= 200; i++ {
		x = append(x, float64(i))
		y = append(y, 2.5*float64(i)+10+r.NormFloat64()*0.5)
	}
	m, err := Fit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.A-2.5) > 0.01 {
		t.Fatalf("slope = %f", m.A)
	}
	if m.R2 < 0.999 {
		t.Fatalf("R2 = %f", m.R2)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit([]float64{1}, []float64{2}); err != ErrInsufficient {
		t.Fatalf("single point: %v", err)
	}
	if _, err := Fit([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch should error")
	}
	// All x identical → singular system.
	if _, err := Fit([]float64{2, 2, 2}, []float64{1, 2, 3}); err != ErrInsufficient {
		t.Fatal("identical x should error")
	}
}

func TestFitPrefix(t *testing.T) {
	y := []float64{10, 20, 30, 40, 50}
	m, err := FitPrefix(y, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.A-10) > 1e-12 || math.Abs(m.B) > 1e-9 {
		t.Fatalf("prefix fit = %+v", m)
	}
	if m.N != 3 {
		t.Fatalf("N = %d", m.N)
	}
	// n beyond length clamps.
	m, err = FitPrefix(y, 99)
	if err != nil || m.N != 5 {
		t.Fatalf("clamped fit = %+v, %v", m, err)
	}
}

func TestPredictCount(t *testing.T) {
	m := Model{A: 2, B: -100}
	if m.PredictCount(10) != 0 {
		t.Fatal("negative prediction must clamp to 0")
	}
	if m.PredictCount(100) != 100 {
		t.Fatalf("PredictCount(100) = %d", m.PredictCount(100))
	}
	nan := Model{A: math.NaN()}
	if nan.PredictCount(1) != 0 {
		t.Fatal("NaN prediction must clamp to 0")
	}
}

// TestQuickFitRecoversExactLines: for any slope/intercept, fitting exact
// samples recovers them.
func TestQuickFitRecoversExactLines(t *testing.T) {
	f := func(a8, b8 int8, n8 uint8) bool {
		a, b := float64(a8), float64(b8)
		n := int(n8%20) + 2
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = float64(i + 1)
			y[i] = a*x[i] + b
		}
		m, err := Fit(x, y)
		if err != nil {
			return false
		}
		return math.Abs(m.A-a) < 1e-6 && math.Abs(m.B-b) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickResidualOrthogonality: least squares residuals are orthogonal
// to the inputs (the normal equations).
func TestQuickResidualOrthogonality(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 20
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = float64(i) + r.Float64()
			y[i] = r.NormFloat64() * 10
		}
		m, err := Fit(x, y)
		if err != nil {
			return false
		}
		var sumR, sumRX float64
		for i := range x {
			res := y[i] - m.Predict(x[i])
			sumR += res
			sumRX += res * x[i]
		}
		return math.Abs(sumR) < 1e-6 && math.Abs(sumRX) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
