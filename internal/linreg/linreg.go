// Package linreg implements least-squares linear regression, the
// prediction model of paper Section III-E: the number of false-sharing
// cases grows linearly with the number of chunk runs evaluated, so the
// total over the whole loop can be extrapolated from a short prefix.
//
// The paper fits y = a·x + b by minimizing the squared error and predicts
// y_max = a·x_max + b where x_max is the total number of chunk runs.
package linreg

import (
	"errors"
	"math"
)

// Model is a fitted line y = A·x + B.
type Model struct {
	A float64 // slope
	B float64 // intercept
	// R2 is the coefficient of determination of the fit (1 = perfect).
	R2 float64
	N  int // number of points fitted
}

// ErrInsufficient is returned when fewer than two distinct x values are
// supplied.
var ErrInsufficient = errors.New("linreg: need at least two points with distinct x values")

// Fit computes the least-squares line through the points (x[i], y[i]).
func Fit(x, y []float64) (Model, error) {
	if len(x) != len(y) {
		return Model{}, errors.New("linreg: x and y lengths differ")
	}
	n := float64(len(x))
	if len(x) < 2 {
		return Model{}, ErrInsufficient
	}
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return Model{}, ErrInsufficient
	}
	a := (n*sxy - sx*sy) / den
	b := (sy - a*sx) / n

	// R² against the mean model.
	meanY := sy / n
	var ssRes, ssTot float64
	for i := range x {
		d := y[i] - (a*x[i] + b)
		ssRes += d * d
		t := y[i] - meanY
		ssTot += t * t
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return Model{A: a, B: b, R2: r2, N: len(x)}, nil
}

// FitPrefix fits the first n points of a series indexed 1..len(y); it is
// the paper's usage, where y[i] is the cumulative FS count after chunk run
// i+1.
func FitPrefix(y []float64, n int) (Model, error) {
	if n > len(y) {
		n = len(y)
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i + 1)
	}
	return Fit(x, y[:n])
}

// Predict evaluates the fitted line at x.
func (m Model) Predict(x float64) float64 { return m.A*x + m.B }

// PredictCount evaluates the line at x, clamped to a non-negative integer
// (FS counts cannot be negative).
func (m Model) PredictCount(x float64) int64 {
	v := m.Predict(x)
	if v < 0 || math.IsNaN(v) {
		return 0
	}
	return int64(math.Round(v))
}
