package kernels

import (
	"math"
	"time"

	"repro/internal/omp"
)

// lcg is a tiny deterministic generator so native runs, the interpreter
// and tests all see identical inputs.
type lcg uint64

func (r *lcg) next() float64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return float64(uint64(*r)>>11) / float64(1<<53)
}

// NativeResult reports a native kernel execution.
type NativeResult struct {
	Elapsed  time.Duration
	Checksum float64
}

// HeatInput builds the initial grid used by both the native kernel and the
// interpreter validation.
func HeatInput(rows, cols int64) []float64 {
	a := make([]float64, rows*cols)
	r := lcg(1)
	for i := range a {
		a[i] = r.next()
	}
	return a
}

// HeatGo runs the heat-diffusion stencil natively: for each interior row,
// a parallel loop over interior columns with the given schedule.
func HeatGo(rows, cols int64, threads int, chunk int64, a []float64) NativeResult {
	b := make([]float64, rows*cols)
	start := time.Now()
	for j := int64(1); j < rows-1; j++ {
		row := j * cols
		omp.ParallelForRange(threads, chunk, 1, cols-1, func(_ int, i int64) {
			b[row+i] = 0.25 * (a[row+i-1] + a[row+i+1] + a[row-cols+i] + a[row+cols+i])
		})
	}
	elapsed := time.Since(start)
	sum := 0.0
	for _, v := range b {
		sum += v
	}
	return NativeResult{Elapsed: elapsed, Checksum: sum}
}

// DFTInput builds the input signal.
func DFTInput(n int64) []float64 {
	x := make([]float64, n)
	r := lcg(2)
	for i := range x {
		x[i] = r.next() - 0.5
	}
	return x
}

// DFTTables precomputes the twiddle tables costab[k][n] = cos(2πkn/N) and
// sintab[k][n] = sin(2πkn/N), flattened row-major.
func DFTTables(n int64) (cost, sint []float64) {
	cost = make([]float64, n*n)
	sint = make([]float64, n*n)
	w := 2 * math.Pi / float64(n)
	for k := int64(0); k < n; k++ {
		for j := int64(0); j < n; j++ {
			ang := w * float64((k*j)%n)
			cost[k*n+j] = math.Cos(ang)
			sint[k*n+j] = math.Sin(ang)
		}
	}
	return cost, sint
}

// DFTGo runs the table-driven DFT natively with the given schedule and
// returns both output vectors' summed magnitude as checksum.
func DFTGo(n int64, threads int, chunk int64, x, cost, sint []float64) NativeResult {
	re := make([]float64, n)
	im := make([]float64, n)
	start := time.Now()
	for k := int64(0); k < n; k++ {
		xk := x[k]
		row := k * n
		omp.ParallelFor(threads, chunk, n, func(_ int, j int64) {
			re[j] += xk * cost[row+j]
			im[j] -= xk * sint[row+j]
		})
	}
	elapsed := time.Since(start)
	sum := 0.0
	for i := range re {
		sum += re[i]*re[i] + im[i]*im[i]
	}
	return NativeResult{Elapsed: elapsed, Checksum: sum}
}

// DFTReference computes the DFT serially for correctness checks.
func DFTReference(n int64, x, cost, sint []float64) (re, im []float64) {
	re = make([]float64, n)
	im = make([]float64, n)
	for k := int64(0); k < n; k++ {
		for j := int64(0); j < n; j++ {
			re[j] += x[k] * cost[k*n+j]
			im[j] -= x[k] * sint[k*n+j]
		}
	}
	return re, im
}

// LinRegArgs is the per-task accumulator struct of the paper's Fig. 1.
// Its five float64 fields occupy 40 bytes, so adjacent elements share a
// 64-byte cache line — the false-sharing victim.
type LinRegArgs struct {
	SX, SXX, SY, SYY, SXY float64
}

// LinRegInput builds the (x, y) point arrays, flattened tasks×pointsPerTask.
func LinRegInput(tasks, pointsPerTask int64) (px, py []float64) {
	px = make([]float64, tasks*pointsPerTask)
	py = make([]float64, tasks*pointsPerTask)
	r := lcg(3)
	for i := range px {
		px[i] = r.next()
		py[i] = 3*px[i] + 0.5 + 0.01*(r.next()-0.5)
	}
	return px, py
}

// LinRegGo runs the linear-regression kernel natively: the outer task loop
// is parallel, each task accumulating pointsPerTask points into its own
// element of the shared args array.
func LinRegGo(tasks, pointsPerTask int64, threads int, chunk int64, px, py []float64) ([]LinRegArgs, NativeResult) {
	args := make([]LinRegArgs, tasks)
	start := time.Now()
	omp.ParallelFor(threads, chunk, tasks, func(_ int, j int64) {
		base := j * pointsPerTask
		for i := int64(0); i < pointsPerTask; i++ {
			x := px[base+i]
			y := py[base+i]
			args[j].SX += x
			args[j].SXX += x * x
			args[j].SY += y
			args[j].SYY += y * y
			args[j].SXY += x * y
		}
	})
	elapsed := time.Since(start)
	sum := 0.0
	for i := range args {
		sum += args[i].SX + args[i].SXX + args[i].SY + args[i].SYY + args[i].SXY
	}
	return args, NativeResult{Elapsed: elapsed, Checksum: sum}
}

// LinRegSolve turns accumulated sums into slope/intercept for one task
// group, the final step of the Phoenix kernel.
func LinRegSolve(a LinRegArgs, n int64) (slope, intercept float64) {
	fn := float64(n)
	den := fn*a.SXX - a.SX*a.SX
	if den == 0 {
		return 0, 0
	}
	slope = (fn*a.SXY - a.SX*a.SY) / den
	intercept = (a.SY - slope*a.SX) / fn
	return slope, intercept
}

// MatMulInput builds two deterministic input matrices, flattened
// row-major.
func MatMulInput(n int64) (a, b []float64) {
	a = make([]float64, n*n)
	b = make([]float64, n*n)
	r := lcg(4)
	for i := range a {
		a[i] = r.next()
		b[i] = r.next()
	}
	return a, b
}

// MatMulGo multiplies natively with the given schedule on the row loop.
func MatMulGo(n int64, threads int, chunk int64, a, b []float64) ([]float64, NativeResult) {
	c := make([]float64, n*n)
	start := time.Now()
	omp.ParallelFor(threads, chunk, n, func(_ int, i int64) {
		for j := int64(0); j < n; j++ {
			var sum float64
			for k := int64(0); k < n; k++ {
				sum += a[i*n+k] * b[k*n+j]
			}
			c[i*n+j] += sum
		}
	})
	elapsed := time.Since(start)
	sum := 0.0
	for _, v := range c {
		sum += v
	}
	return c, NativeResult{Elapsed: elapsed, Checksum: sum}
}
