// Package kernels provides the paper's three evaluation workloads — heat
// diffusion, discrete Fourier transform, and the Phoenix linear regression
// kernel — in two forms each:
//
//   - as mini-C source (the form the compile-time analysis consumes),
//     matching the loop structure, data layout and parallelization level
//     the paper describes: heat and DFT are parallelized at the innermost
//     loop level, linear regression at the outermost level over an array
//     of 40-byte accumulator structs (the paper's Fig. 1); and
//   - as native Go implementations running on real goroutines with the
//     same static round-robin schedule, used by the examples to show the
//     effect on actual hardware.
//
// Sizes are parameters; the defaults are scaled down from the paper's so
// the full table sweeps run in seconds. The linear-regression kernel's
// inner trip count is M/num_threads, faithful to the paper's listing —
// that detail is what makes its total iteration count (and hence its
// modeled FS count) shrink as threads are added, reproducing the paper's
// Table III/VI divergence.
package kernels

import (
	"fmt"
	"strings"

	"repro/internal/loopir"
	"repro/internal/minic"
)

// Kernel bundles a workload's source with its lowered IR.
type Kernel struct {
	Name   string
	Source string
	Unit   *loopir.Unit
	Nest   *loopir.Nest
}

// Load parses and lowers src, selecting the single top-level loop nest.
func Load(name, src string) (*Kernel, error) {
	return LoadOpts(name, src, loopir.LowerOptions{})
}

// LoadOpts is Load with explicit lowering options (e.g. a non-default
// cache-line size for alignment).
func LoadOpts(name, src string, opts loopir.LowerOptions) (*Kernel, error) {
	prog, err := minic.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("kernels: parsing %s: %w", name, err)
	}
	unit, err := loopir.Lower(prog, opts)
	if err != nil {
		return nil, fmt.Errorf("kernels: lowering %s: %w", name, err)
	}
	if len(unit.Nests) != 1 {
		return nil, fmt.Errorf("kernels: %s has %d loop nests, expected 1", name, len(unit.Nests))
	}
	return &Kernel{Name: name, Source: src, Unit: unit, Nest: unit.Nests[0]}, nil
}

// Default problem sizes (scaled down from the paper's; see EXPERIMENTS.md).
const (
	DefaultHeatRows = 96
	DefaultHeatCols = 4096

	DefaultDFTN = 768

	DefaultLinRegTasks  = 512
	DefaultLinRegPoints = 3072
)

// Paper chunk-size pairs (FS-inducing vs FS-free), per Tables I–III.
const (
	HeatFSChunk    = 1
	HeatNFSChunk   = 64
	DFTFSChunk     = 1
	DFTNFSChunk    = 16
	LinRegFSChunk  = 1
	LinRegNFSChunk = 10
)

// HeatSource renders the heat-diffusion kernel: a five-point stencil over
// a rows×cols grid, parallelized at the innermost (column) loop.
func HeatSource(rows, cols int64) string {
	return fmt.Sprintf(`
#define M %d
#define N %d

double A[M][N];
double B[M][N];

for (j = 1; j < M - 1; j++)
  #pragma omp parallel for private(i)
  for (i = 1; i < N - 1; i++)
    B[j][i] = 0.25 * (A[j][i-1] + A[j][i+1] + A[j-1][i] + A[j+1][i]);
`, rows, cols)
}

// Heat loads the heat-diffusion kernel.
func Heat(rows, cols int64) (*Kernel, error) {
	return Load("heat", HeatSource(rows, cols))
}

// DFTSource renders the discrete-Fourier-transform kernel: accumulation of
// each input sample into every output bin through precomputed twiddle
// tables, parallelized at the innermost (output-bin) loop. Both output
// arrays are written every iteration, which is why the paper measures a
// much larger FS effect here than for heat.
func DFTSource(n int64) string {
	return fmt.Sprintf(`
#define N %d

double x[N];
double Xre[N];
double Xim[N];
double costab[N][N];
double sintab[N][N];

for (k = 0; k < N; k++)
  #pragma omp parallel for private(n)
  for (n = 0; n < N; n++) {
    Xre[n] += x[k] * costab[k][n];
    Xim[n] -= x[k] * sintab[k][n];
  }
`, n)
}

// DFT loads the DFT kernel.
func DFT(n int64) (*Kernel, error) {
	return Load("dft", DFTSource(n))
}

// LinRegSource renders the Phoenix linear-regression kernel of the paper's
// Fig. 1: an array of per-task accumulator structs updated in the
// innermost loop, parallelized at the outermost (task) loop. The inner
// trip count is points/threads, as in the paper's listing.
func LinRegSource(tasks, points int64, threads int) string {
	return fmt.Sprintf(`
#define N %d
#define M %d
#define NTHREADS %d
#define K (M / NTHREADS)

struct Point { double x; double y; };
struct Args { double sx; double sxx; double sy; double syy; double sxy; };

struct Args tid_args[N];
struct Point points[N][K];

#pragma omp parallel for private(i,j)
for (j = 0; j < N; j++)
  for (i = 0; i < K; i++) {
    tid_args[j].sx  += points[j][i].x;
    tid_args[j].sxx += points[j][i].x * points[j][i].x;
    tid_args[j].sy  += points[j][i].y;
    tid_args[j].syy += points[j][i].y * points[j][i].y;
    tid_args[j].sxy += points[j][i].x * points[j][i].y;
  }
`, tasks, points, threads)
}

// LinReg loads the linear-regression kernel for a given thread count (the
// thread count shapes the data layout per the paper's listing).
func LinReg(tasks, points int64, threads int) (*Kernel, error) {
	return Load("linreg", LinRegSource(tasks, points, threads))
}

// UnknownKernelError reports a kernel name that is not in the registry,
// carrying the valid names so callers (CLI usage text, the service's 400
// responses) can tell the user exactly what is accepted.
type UnknownKernelError struct {
	Name  string
	Valid []string
}

// Error implements the error interface.
func (e *UnknownKernelError) Error() string {
	return fmt.Sprintf("kernels: unknown kernel %q (valid kernels: %s)", e.Name, strings.Join(e.Valid, ", "))
}

// ByName loads a kernel by name at its default size. Thread-dependent
// kernels (linreg) use the supplied thread count. An unrecognized name
// returns an *UnknownKernelError listing the valid names.
func ByName(name string, threads int) (*Kernel, error) {
	switch name {
	case "heat":
		return Heat(DefaultHeatRows, DefaultHeatCols)
	case "dft":
		return DFT(DefaultDFTN)
	case "linreg":
		return LinReg(DefaultLinRegTasks, DefaultLinRegPoints, threads)
	}
	return nil, &UnknownKernelError{Name: name, Valid: Names()}
}

// Names lists the available kernels.
func Names() []string { return []string{"heat", "dft", "linreg"} }

// MatMulSource renders a square matrix multiplication parallelized at the
// outermost (row) loop. With N a multiple of 8 every row is a whole number
// of 64-byte lines, so no two threads ever write the same line: a negative
// control for the FS model (the paper's detector must stay silent on loops
// that merely share arrays without sharing lines).
func MatMulSource(n int64) string {
	return fmt.Sprintf(`
#define N %d

double A[N][N];
double B[N][N];
double C[N][N];

#pragma omp parallel for private(i, j, k)
for (i = 0; i < N; i++)
  for (j = 0; j < N; j++)
    for (k = 0; k < N; k++)
      C[i][j] += A[i][k] * B[k][j];
`, n)
}

// MatMul loads the matrix-multiplication kernel.
func MatMul(n int64) (*Kernel, error) {
	return Load("matmul", MatMulSource(n))
}
