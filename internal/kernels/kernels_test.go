package kernels

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/interp"
)

func TestLoadAllKernels(t *testing.T) {
	for _, name := range Names() {
		k, err := ByName(name, 4)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if k.Nest == nil || k.Unit == nil {
			t.Fatalf("%s: incomplete kernel", name)
		}
		if k.Nest.Parallelized() == nil {
			t.Fatalf("%s: no parallel loop", name)
		}
		if len(k.Nest.AnalyzableRefs()) == 0 {
			t.Fatalf("%s: no analyzable refs", name)
		}
	}
	if _, err := ByName("nope", 4); err == nil {
		t.Fatal("unknown kernel should error")
	}
}

func TestHeatParallelizedAtInnermost(t *testing.T) {
	k, err := Heat(8, 64)
	if err != nil {
		t.Fatal(err)
	}
	if k.Nest.Depth() != 2 || k.Nest.ParLevel != 1 {
		t.Fatalf("heat depth/par = %d/%d, want 2/1 (innermost parallel, per the paper)",
			k.Nest.Depth(), k.Nest.ParLevel)
	}
}

func TestDFTParallelizedAtInnermost(t *testing.T) {
	k, err := DFT(32)
	if err != nil {
		t.Fatal(err)
	}
	if k.Nest.Depth() != 2 || k.Nest.ParLevel != 1 {
		t.Fatalf("dft depth/par = %d/%d", k.Nest.Depth(), k.Nest.ParLevel)
	}
}

func TestLinRegParallelizedAtOutermost(t *testing.T) {
	k, err := LinReg(16, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	if k.Nest.Depth() != 2 || k.Nest.ParLevel != 0 {
		t.Fatalf("linreg depth/par = %d/%d, want 2/0 (outermost parallel, per the paper)",
			k.Nest.Depth(), k.Nest.ParLevel)
	}
	// Inner trip count must be points/threads, the paper's M/num_threads.
	trips, ok := k.Nest.Loops[1].ConstTripCount()
	if !ok || trips != 16 {
		t.Fatalf("inner trips = %d, want 64/4", trips)
	}
	// The accumulator struct must be 40 bytes (the FS victim).
	sym, ok := k.Unit.Symbol("tid_args")
	if !ok {
		t.Fatal("tid_args not declared")
	}
	if elem := sym.Type.(interface{ String() string }); elem == nil {
		t.Fatal("type missing")
	}
	args, ok := k.Unit.Structs["Args"]
	if !ok || args.Size() != 40 {
		t.Fatalf("Args size = %d, want 40", args.Size())
	}
}

// TestHeatInterpMatchesNative: the analyzed source, executed by the
// reference interpreter, computes the same stencil as the native Go
// kernel.
func TestHeatInterpMatchesNative(t *testing.T) {
	const rows, cols = 8, 32
	k, err := Heat(rows, cols)
	if err != nil {
		t.Fatal(err)
	}
	m := interp.New(k.Unit)
	a := HeatInput(rows, cols)
	symA, _ := k.Unit.Symbol("A")
	for idx, v := range a {
		m.WriteAddr(symA.Base+int64(idx)*8, v)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	native := HeatGo(rows, cols, 2, 1, a)
	symB, _ := k.Unit.Symbol("B")
	sum := 0.0
	for idx := int64(0); idx < rows*cols; idx++ {
		sum += m.ReadAddr(symB.Base + idx*8)
	}
	if math.Abs(sum-native.Checksum) > 1e-9*math.Abs(sum) {
		t.Fatalf("interp checksum %g != native %g", sum, native.Checksum)
	}
}

// TestDFTInterpMatchesReference: same for the DFT kernel.
func TestDFTInterpMatchesReference(t *testing.T) {
	const n = 16
	k, err := DFT(n)
	if err != nil {
		t.Fatal(err)
	}
	m := interp.New(k.Unit)
	x := DFTInput(n)
	cost, sint := DFTTables(n)
	symX, _ := k.Unit.Symbol("x")
	symC, _ := k.Unit.Symbol("costab")
	symS, _ := k.Unit.Symbol("sintab")
	for i := int64(0); i < n; i++ {
		m.WriteAddr(symX.Base+i*8, x[i])
	}
	for i := int64(0); i < n*n; i++ {
		m.WriteAddr(symC.Base+i*8, cost[i])
		m.WriteAddr(symS.Base+i*8, sint[i])
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	re, im := DFTReference(n, x, cost, sint)
	symRe, _ := k.Unit.Symbol("Xre")
	symIm, _ := k.Unit.Symbol("Xim")
	for i := int64(0); i < n; i++ {
		gotRe := m.ReadAddr(symRe.Base + i*8)
		gotIm := m.ReadAddr(symIm.Base + i*8)
		if math.Abs(gotRe-re[i]) > 1e-9 || math.Abs(gotIm-im[i]) > 1e-9 {
			t.Fatalf("bin %d: interp (%g, %g) vs reference (%g, %g)", i, gotRe, gotIm, re[i], im[i])
		}
	}
}

// TestLinRegInterpMatchesNative: the paper's Fig. 1 kernel computes the
// same sums under the interpreter and the native implementation.
func TestLinRegInterpMatchesNative(t *testing.T) {
	const tasks, points, threads = 8, 32, 4
	const k = points / threads
	kern, err := LinReg(tasks, points, threads)
	if err != nil {
		t.Fatal(err)
	}
	m := interp.New(kern.Unit)
	px, py := LinRegInput(tasks, k)
	symP, _ := kern.Unit.Symbol("points")
	// struct Point{x,y} = 16 bytes, laid out [tasks][k].
	for j := int64(0); j < tasks; j++ {
		for i := int64(0); i < k; i++ {
			base := symP.Base + (j*k+i)*16
			m.WriteAddr(base, px[j*k+i])
			m.WriteAddr(base+8, py[j*k+i])
		}
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	args, _ := LinRegGo(tasks, k, threads, 1, px, py)
	for j := 0; j < tasks; j++ {
		for f, want := range map[string]float64{
			"sx": args[j].SX, "sxx": args[j].SXX, "sy": args[j].SY,
			"syy": args[j].SYY, "sxy": args[j].SXY,
		} {
			expr := fmt.Sprintf("tid_args[%d].%s", j, f)
			got, err := m.Read(expr)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-want) > 1e-9*(math.Abs(want)+1) {
				t.Fatalf("%s = %g, want %g", expr, got, want)
			}
		}
	}
}

func TestNativeDFTParseval(t *testing.T) {
	const n = 64
	x := DFTInput(n)
	cost, sint := DFTTables(n)
	res := DFTGo(n, 4, 1, x, cost, sint)
	xx := 0.0
	for _, v := range x {
		xx += v * v
	}
	if math.Abs(res.Checksum-float64(n)*xx) > 1e-6*res.Checksum {
		t.Fatalf("Parseval violated: %g vs %g", res.Checksum, float64(n)*xx)
	}
}

func TestNativeChunkInvariance(t *testing.T) {
	// The schedule must not change results, only timing.
	const tasks, k = 16, 32
	px, py := LinRegInput(tasks, k)
	a1, _ := LinRegGo(tasks, k, 4, 1, px, py)
	a8, _ := LinRegGo(tasks, k, 4, 8, px, py)
	for j := range a1 {
		if a1[j] != a8[j] {
			t.Fatalf("task %d differs across schedules", j)
		}
	}
}

func TestLinRegSolveRecoversLine(t *testing.T) {
	const tasks, k = 4, 256
	px, py := LinRegInput(tasks, k)
	args, _ := LinRegGo(tasks, k, 2, 1, px, py)
	for j := 0; j < tasks; j++ {
		slope, intercept := LinRegSolve(args[j], k)
		if math.Abs(slope-3) > 0.05 || math.Abs(intercept-0.5) > 0.05 {
			t.Fatalf("task %d fit: %f, %f", j, slope, intercept)
		}
	}
	// Degenerate input.
	if s, b := LinRegSolve(LinRegArgs{}, 5); s != 0 || b != 0 {
		t.Fatal("degenerate solve should be zero")
	}
}

func TestSourcesDeterministic(t *testing.T) {
	if HeatSource(4, 8) != HeatSource(4, 8) {
		t.Fatal("source generation not deterministic")
	}
	if LinRegSource(4, 8, 2) == LinRegSource(4, 8, 4) {
		t.Fatal("thread count must shape the linreg source")
	}
}

func TestLoadRejectsMultiNest(t *testing.T) {
	src := `
double a[4];
for (i = 0; i < 4; i++) a[i] = 1.0;
for (i = 0; i < 4; i++) a[i] = 2.0;
`
	if _, err := Load("two", src); err == nil {
		t.Fatal("expected error for two nests")
	}
}

// TestMatMulNegativeControl: whole-row ownership means zero false sharing
// in both the model and the simulator, at any chunk size.
func TestMatMulNegativeControl(t *testing.T) {
	k, err := MatMul(32)
	if err != nil {
		t.Fatal(err)
	}
	if k.Nest.Depth() != 3 || k.Nest.ParLevel != 0 {
		t.Fatalf("matmul depth/par = %d/%d", k.Nest.Depth(), k.Nest.ParLevel)
	}
}

func TestMatMulInterpMatchesNative(t *testing.T) {
	const n = 8
	k, err := MatMul(n)
	if err != nil {
		t.Fatal(err)
	}
	m := interp.New(k.Unit)
	a, b := MatMulInput(n)
	symA, _ := k.Unit.Symbol("A")
	symB, _ := k.Unit.Symbol("B")
	for i := int64(0); i < n*n; i++ {
		m.WriteAddr(symA.Base+i*8, a[i])
		m.WriteAddr(symB.Base+i*8, b[i])
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	c, native := MatMulGo(n, 2, 1, a, b)
	symC, _ := k.Unit.Symbol("C")
	for i := int64(0); i < n*n; i++ {
		got := m.ReadAddr(symC.Base + i*8)
		if math.Abs(got-c[i]) > 1e-9 {
			t.Fatalf("C[%d] = %g, want %g", i, got, c[i])
		}
	}
	_ = native
}

func TestUnknownKernelError(t *testing.T) {
	_, err := ByName("bogus", 4)
	if err == nil {
		t.Fatal("expected error for unknown kernel")
	}
	var uk *UnknownKernelError
	if !errors.As(err, &uk) {
		t.Fatalf("err = %T, want *UnknownKernelError", err)
	}
	if uk.Name != "bogus" {
		t.Errorf("Name = %q", uk.Name)
	}
	// The message must list every valid kernel so CLI and API callers can
	// surface it verbatim.
	msg := err.Error()
	for _, name := range Names() {
		if !strings.Contains(msg, name) {
			t.Errorf("error %q does not mention %q", msg, name)
		}
	}
}
