package sched

import (
	"testing"
	"testing/quick"
)

func TestKindFromString(t *testing.T) {
	for _, c := range []struct {
		s    string
		want Kind
	}{{"static", Static}, {"", Static}, {"dynamic", Dynamic}, {"guided", Guided}} {
		k, err := KindFromString(c.s)
		if err != nil || k != c.want {
			t.Errorf("KindFromString(%q) = %v, %v", c.s, k, err)
		}
	}
	if _, err := KindFromString("auto"); err == nil {
		t.Fatal("expected error for unknown kind")
	}
	if Static.String() != "static" || Dynamic.String() != "dynamic" || Guided.String() != "guided" {
		t.Fatal("Kind.String wrong")
	}
}

func TestResolveDefaults(t *testing.T) {
	// Unspecified chunk → block schedule: ceil(n/threads).
	p, err := Resolve(Static, 4, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if p.Chunk != 3 {
		t.Fatalf("block chunk = %d, want ceil(10/4)=3", p.Chunk)
	}
	// Unknown trip count falls back to chunk 1.
	p, _ = Resolve(Static, 4, 0, 0)
	if p.Chunk != 1 {
		t.Fatalf("fallback chunk = %d", p.Chunk)
	}
	if _, err := Resolve(Static, 0, 1, 10); err == nil {
		t.Fatal("expected error for zero threads")
	}
}

func TestOwnerRoundRobin(t *testing.T) {
	p := Plan{Kind: Static, NumThreads: 3, Chunk: 2}
	want := []int{0, 0, 1, 1, 2, 2, 0, 0, 1, 1, 2, 2, 0}
	for k, w := range want {
		if got := p.Owner(int64(k)); got != w {
			t.Errorf("Owner(%d) = %d, want %d", k, got, w)
		}
	}
}

func TestCycleAndChunkIndex(t *testing.T) {
	p := Plan{Kind: Static, NumThreads: 2, Chunk: 3}
	if p.IterationsPerCycle() != 6 {
		t.Fatalf("iters/cycle = %d", p.IterationsPerCycle())
	}
	if p.ChunkIndex(7) != 2 || p.CycleIndex(7) != 1 {
		t.Fatalf("indices wrong: chunk=%d cycle=%d", p.ChunkIndex(7), p.CycleIndex(7))
	}
	if p.Cycles(12) != 2 || p.Cycles(13) != 3 {
		t.Fatalf("Cycles wrong: %d, %d", p.Cycles(12), p.Cycles(13))
	}
}

func TestThreadTripsExact(t *testing.T) {
	p := Plan{Kind: Static, NumThreads: 3, Chunk: 2}
	// 13 trips: chunks [0,1],[2,3],[4,5],[6,7],[8,9],[10,11],[12].
	// threads:   0      1      2      0      1      2        0
	want := []int64{5, 4, 4}
	for t0 := range want {
		if got := p.ThreadTrips(13, t0); got != want[t0] {
			t.Errorf("ThreadTrips(13, %d) = %d, want %d", t0, got, want[t0])
		}
	}
	if p.MaxThreadTrips(13) != 5 {
		t.Fatalf("MaxThreadTrips = %d", p.MaxThreadTrips(13))
	}
	if p.ThreadTrips(0, 0) != 0 || p.ThreadTrips(-1, 0) != 0 {
		t.Fatal("degenerate trip counts should be zero")
	}
}

func TestOwnedTripInvertsOwnership(t *testing.T) {
	p := Plan{Kind: Static, NumThreads: 4, Chunk: 3}
	for tid := 0; tid < p.NumThreads; tid++ {
		for j := int64(0); j < 20; j++ {
			k := p.OwnedTrip(tid, j)
			if got := p.Owner(k); got != tid {
				t.Fatalf("OwnedTrip(%d,%d)=%d owned by %d", tid, j, k, got)
			}
		}
	}
	// OwnedTrip must be strictly increasing in j.
	for tid := 0; tid < p.NumThreads; tid++ {
		prev := int64(-1)
		for j := int64(0); j < 20; j++ {
			k := p.OwnedTrip(tid, j)
			if k <= prev {
				t.Fatalf("OwnedTrip not increasing for thread %d", tid)
			}
			prev = k
		}
	}
}

// TestPropertyPartition: the schedule is a partition — every trip owned by
// exactly one thread, and ThreadTrips sums to the trip count.
func TestPropertyPartition(t *testing.T) {
	f := func(threads8, chunk8 uint8, n16 uint16) bool {
		threads := int(threads8%8) + 1
		chunk := int64(chunk8%16) + 1
		n := int64(n16 % 500)
		p := Plan{Kind: Static, NumThreads: threads, Chunk: chunk}

		counts := make([]int64, threads)
		for k := int64(0); k < n; k++ {
			o := p.Owner(k)
			if o < 0 || o >= threads {
				return false
			}
			counts[o]++
		}
		var sum int64
		for tid, c := range counts {
			if p.ThreadTrips(n, tid) != c {
				return false
			}
			sum += c
		}
		return sum == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyOwnedTripEnumeratesAll: the per-thread enumerations cover the
// trip space exactly once.
func TestPropertyOwnedTripEnumeratesAll(t *testing.T) {
	f := func(threads8, chunk8 uint8, n16 uint16) bool {
		threads := int(threads8%6) + 1
		chunk := int64(chunk8%8) + 1
		n := int64(n16 % 300)
		p := Plan{Kind: Static, NumThreads: threads, Chunk: chunk}

		seen := make(map[int64]bool, n)
		for tid := 0; tid < threads; tid++ {
			trips := p.ThreadTrips(n, tid)
			for j := int64(0); j < trips; j++ {
				k := p.OwnedTrip(tid, j)
				if k < 0 || k >= n || seen[k] {
					return false
				}
				seen[k] = true
			}
		}
		return int64(len(seen)) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateAndString(t *testing.T) {
	if err := (Plan{NumThreads: 2, Chunk: 1}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Plan{NumThreads: 0, Chunk: 1}).Validate(); err == nil {
		t.Fatal("expected error")
	}
	if err := (Plan{NumThreads: 2, Chunk: 0}).Validate(); err == nil {
		t.Fatal("expected error")
	}
	s := Plan{Kind: Static, NumThreads: 4, Chunk: 2}.String()
	if s != "schedule(static,2) num_threads(4)" {
		t.Fatalf("String = %q", s)
	}
}
