// Package sched implements the OpenMP loop-scheduling arithmetic the
// false-sharing model depends on: static round-robin distribution of
// chunk_size-sized blocks of iterations to threads (the paper's stated
// assumption), plus the derived notions of "chunk run" and "full cycle"
// used by the prediction model.
//
// A chunk run (paper Fig. 6) is one round of the round-robin: every thread
// executing one chunk, i.e. chunk_size * num_threads iterations of the
// parallelized loop.
package sched

import "fmt"

// Kind is the OpenMP schedule kind.
type Kind int

// Supported schedule kinds. Dynamic and guided parse but are modeled as
// static round-robin, matching the paper's modeling assumption.
const (
	Static Kind = iota
	Dynamic
	Guided
)

// String returns the OpenMP spelling of the kind.
func (k Kind) String() string {
	switch k {
	case Static:
		return "static"
	case Dynamic:
		return "dynamic"
	case Guided:
		return "guided"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// KindFromString parses an OpenMP schedule kind name.
func KindFromString(s string) (Kind, error) {
	switch s {
	case "static", "":
		return Static, nil
	case "dynamic":
		return Dynamic, nil
	case "guided":
		return Guided, nil
	}
	return Static, fmt.Errorf("sched: unknown schedule kind %q", s)
}

// Plan is a resolved work-sharing plan for one parallel loop.
type Plan struct {
	Kind       Kind
	NumThreads int
	Chunk      int64 // always >= 1 after Resolve
}

// Resolve builds a Plan, applying the OpenMP default when chunk is
// unspecified (chunk <= 0): schedule(static) divides the iteration space
// into one contiguous block per thread, which for trip count n is a chunk
// of ceil(n/threads).
func Resolve(kind Kind, numThreads int, chunk int64, tripCount int64) (Plan, error) {
	if numThreads <= 0 {
		return Plan{}, fmt.Errorf("sched: num_threads must be positive, got %d", numThreads)
	}
	if chunk <= 0 {
		if tripCount <= 0 {
			chunk = 1
		} else {
			chunk = (tripCount + int64(numThreads) - 1) / int64(numThreads)
		}
		if chunk < 1 {
			chunk = 1
		}
	}
	return Plan{Kind: kind, NumThreads: numThreads, Chunk: chunk}, nil
}

// Owner returns the thread that executes trip k (0-based trip index of the
// parallelized loop) under static round-robin chunking.
func (p Plan) Owner(k int64) int {
	return int((k / p.Chunk) % int64(p.NumThreads))
}

// ChunkIndex returns the global chunk number containing trip k.
func (p Plan) ChunkIndex(k int64) int64 { return k / p.Chunk }

// CycleIndex returns the chunk-run (full round-robin cycle) containing
// trip k.
func (p Plan) CycleIndex(k int64) int64 {
	return k / (p.Chunk * int64(p.NumThreads))
}

// IterationsPerCycle returns the number of parallel-loop trips in one full
// cycle of the thread team (the paper's chunk_size * num_threads).
func (p Plan) IterationsPerCycle() int64 { return p.Chunk * int64(p.NumThreads) }

// Cycles returns the number of chunk runs needed to cover tripCount trips
// (the last may be partial).
func (p Plan) Cycles(tripCount int64) int64 {
	per := p.IterationsPerCycle()
	return (tripCount + per - 1) / per
}

// ThreadTrips returns how many trips of a tripCount-trip loop thread t
// executes.
func (p Plan) ThreadTrips(tripCount int64, t int) int64 {
	if tripCount <= 0 {
		return 0
	}
	fullCycles := tripCount / p.IterationsPerCycle()
	n := fullCycles * p.Chunk
	rem := tripCount - fullCycles*p.IterationsPerCycle()
	// In the partial final cycle thread t gets trips
	// [t*chunk, (t+1)*chunk) of the remainder.
	lo := int64(t) * p.Chunk
	hi := lo + p.Chunk
	if rem > lo {
		if rem < hi {
			n += rem - lo
		} else {
			n += p.Chunk
		}
	}
	return n
}

// OwnedTrip returns the global trip index of thread t's j-th trip
// (0-based), i.e. the inverse of the ownership map restricted to t.
func (p Plan) OwnedTrip(t int, j int64) int64 {
	chunkOfThread := j / p.Chunk // which of t's chunks
	within := j % p.Chunk        // offset inside that chunk
	globalChunk := chunkOfThread*int64(p.NumThreads) + int64(t)
	return globalChunk*p.Chunk + within
}

// MaxThreadTrips returns the largest per-thread trip count, i.e. the
// lockstep horizon for tripCount trips.
func (p Plan) MaxThreadTrips(tripCount int64) int64 {
	var max int64
	for t := 0; t < p.NumThreads; t++ {
		if n := p.ThreadTrips(tripCount, t); n > max {
			max = n
		}
	}
	return max
}

// Validate checks internal consistency.
func (p Plan) Validate() error {
	if p.NumThreads <= 0 {
		return fmt.Errorf("sched: plan has %d threads", p.NumThreads)
	}
	if p.Chunk <= 0 {
		return fmt.Errorf("sched: plan has chunk %d", p.Chunk)
	}
	return nil
}

// String renders the plan in OpenMP clause syntax.
func (p Plan) String() string {
	return fmt.Sprintf("schedule(%s,%d) num_threads(%d)", p.Kind, p.Chunk, p.NumThreads)
}
