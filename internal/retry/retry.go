// Package retry implements capped exponential backoff with full jitter
// for clients of the analysis service. The policy honors server-provided
// Retry-After hints (fsserve attaches them to 429 and 503 responses,
// jittered by pool depth), falls back to full-jitter exponential delays
// otherwise, and is deterministic under a fixed seed with an injected
// sleeper — the shape unit tests pin down.
package retry

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"strconv"
	"time"
)

// Policy configures Do. The zero value is usable: 4 attempts, 100ms base
// delay, 5s cap, real sleeping.
type Policy struct {
	// MaxAttempts is the total number of attempts including the first
	// (0 = default 4; 1 means no retries).
	MaxAttempts int
	// BaseDelay is the backoff scale: attempt n waits a uniformly random
	// duration in [0, min(MaxDelay, BaseDelay<<n)) — "full jitter"
	// (0 = default 100ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff window (0 = default 5s).
	MaxDelay time.Duration
	// Seed seeds the jitter source (0 = 1). A fixed seed yields a
	// reproducible delay sequence.
	Seed int64
	// Sleep replaces time.Sleep in tests (nil = real sleep). It is
	// called once per wait with the final delay, after Retry-After
	// flooring.
	Sleep func(time.Duration)
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 100 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 5 * time.Second
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	return p
}

// Err is a retryable failure: Do retries while attempts remain, waiting
// at least RetryAfter (when positive) before the next one.
type Err struct {
	// Cause is the underlying failure, surfaced if attempts run out.
	Cause error
	// RetryAfter is the server's minimum-wait hint (0 = none).
	RetryAfter time.Duration
}

// Error implements the error interface.
func (e *Err) Error() string { return e.Cause.Error() }

// Unwrap exposes the cause to errors.Is/As.
func (e *Err) Unwrap() error { return e.Cause }

// Retryable wraps err as retryable with no Retry-After hint.
func Retryable(err error) error { return &Err{Cause: err} }

// AfterHeader parses an HTTP Retry-After header value in its
// delta-seconds form (the form fsserve emits), returning 0 for absent
// or unparseable values. HTTP-date values are not supported.
func AfterHeader(h http.Header) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// Do calls attempt until it succeeds, returns a non-retryable error, or
// MaxAttempts attempts have failed (returning the last error with the
// *Err wrapper removed). Between attempts it waits the full-jitter
// backoff for that attempt, floored by the attempt's RetryAfter hint;
// a done ctx ends the loop immediately (also mid-wait for hints —
// waits are bounded by ctx via a deadline check before sleeping).
func Do(ctx context.Context, p Policy, attempt func(attempt int) error) error {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed))
	var lastErr error
	for n := 0; n < p.MaxAttempts; n++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return lastErr
			}
			return err
		}
		err := attempt(n)
		if err == nil {
			return nil
		}
		var re *Err
		if !errors.As(err, &re) {
			return err // non-retryable: fail fast
		}
		lastErr = re.Cause
		if n == p.MaxAttempts-1 {
			break
		}
		d := p.backoff(rng, n)
		if re.RetryAfter > d {
			d = re.RetryAfter
		}
		if deadline, ok := ctx.Deadline(); ok && time.Until(deadline) < d {
			return lastErr // the wait cannot fit; don't burn it sleeping
		}
		p.Sleep(d)
	}
	return lastErr
}

// backoff draws the full-jitter delay for attempt n: uniform in
// [0, min(MaxDelay, BaseDelay*2^n)).
func (p Policy) backoff(rng *rand.Rand, n int) time.Duration {
	window := p.BaseDelay << uint(n)
	if window <= 0 || window > p.MaxDelay { // <<= also guards overflow
		window = p.MaxDelay
	}
	return time.Duration(rng.Int63n(int64(window)))
}
