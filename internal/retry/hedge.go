package retry

import (
	"context"
	"sort"
	"sync"
	"time"
)

// HedgeConfig parameterizes a Hedger. The zero value is usable; every
// field documents its default.
type HedgeConfig struct {
	// MaxDelay is the hedge delay while too few latency samples exist,
	// and the ceiling on the adaptive delay afterwards (0 = 1s).
	MaxDelay time.Duration
	// MinDelay floors the adaptive delay so a very fast service does
	// not provoke a hedge on every scheduling hiccup (0 = 1ms).
	MinDelay time.Duration
	// MinSamples is how many primary latencies must be observed before
	// the adaptive p95 replaces MaxDelay (0 = 4).
	MinSamples int
	// Window is the latency sample window size (0 = 64).
	Window int
	// EarnPerPrimary is the hedge-token fraction earned per completed
	// primary attempt; with the default 0.1, hedges are capped at ~10%
	// of request volume in steady state (0 = 0.1).
	EarnPerPrimary float64
	// MaxTokens caps the token bucket — the burst of back-to-back
	// hedges a latency spike may trigger (0 = 3).
	MaxTokens float64
	// Now substitutes the clock in tests (nil = time.Now).
	Now func() time.Time
}

func (c HedgeConfig) withDefaults() HedgeConfig {
	if c.MaxDelay <= 0 {
		c.MaxDelay = time.Second
	}
	if c.MinDelay <= 0 {
		c.MinDelay = time.Millisecond
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 4
	}
	if c.Window <= 0 {
		c.Window = 64
	}
	if c.EarnPerPrimary <= 0 {
		c.EarnPerPrimary = 0.1
	}
	if c.MaxTokens <= 0 {
		c.MaxTokens = 3
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Hedger is the client-side tail-latency defense: DoHedged launches a
// backup attempt when the primary outlives an adaptive p95 delay, the
// first response wins, and the loser is cancelled. Hedges spend from a
// token budget earned by completed primaries (so hedging is bounded to
// a fraction of traffic and cannot double load), and are suppressed
// entirely while server backpressure (Retry-After) is active — hedging
// into an overloaded server makes the overload worse.
type Hedger struct {
	cfg HedgeConfig

	mu            sync.Mutex
	samples       []float64 // ring of recent primary latencies, seconds
	next          int
	count         int
	tokens        float64
	suppressUntil time.Time

	hedges     int64
	wins       int64
	suppressed int64
}

// NewHedger builds a Hedger. The token bucket starts with one token so
// the first genuinely slow request may hedge immediately.
func NewHedger(cfg HedgeConfig) *Hedger {
	cfg = cfg.withDefaults()
	return &Hedger{cfg: cfg, samples: make([]float64, cfg.Window), tokens: 1}
}

// Delay is the current hedge delay: the p95 of the sampled primary
// latencies clamped to [MinDelay, MaxDelay], or MaxDelay until
// MinSamples primaries have completed.
func (h *Hedger) Delay() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.delayLocked()
}

func (h *Hedger) delayLocked() time.Duration {
	if h.count < h.cfg.MinSamples {
		return h.cfg.MaxDelay
	}
	n := min(h.count, len(h.samples))
	sorted := make([]float64, n)
	copy(sorted, h.samples[:n])
	sort.Float64s(sorted)
	p95 := sorted[(n*95)/100]
	d := time.Duration(p95 * float64(time.Second))
	if d < h.cfg.MinDelay {
		d = h.cfg.MinDelay
	}
	if d > h.cfg.MaxDelay {
		d = h.cfg.MaxDelay
	}
	return d
}

// ObservePrimary records one completed primary attempt's latency and
// earns the token fraction. DoHedged calls it on every successful
// primary; standalone callers may feed it directly.
func (h *Hedger) ObservePrimary(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.samples[h.next] = d.Seconds()
	h.next = (h.next + 1) % len(h.samples)
	h.count++
	h.tokens += h.cfg.EarnPerPrimary
	if h.tokens > h.cfg.MaxTokens {
		h.tokens = h.cfg.MaxTokens
	}
}

// NoteBackpressure suppresses hedging for the server's Retry-After
// duration (minimum 1s for a bare backpressure signal): a hedge is an
// extra request, exactly what an overloaded server asked not to get.
func (h *Hedger) NoteBackpressure(retryAfter time.Duration) {
	if retryAfter < time.Second {
		retryAfter = time.Second
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	until := h.cfg.Now().Add(retryAfter)
	if until.After(h.suppressUntil) {
		h.suppressUntil = until
	}
}

// takeToken spends one hedge token if the budget allows and no
// backpressure suppression is active.
func (h *Hedger) takeToken() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.cfg.Now().Before(h.suppressUntil) || h.tokens < 1 {
		h.suppressed++
		return false
	}
	h.tokens--
	h.hedges++
	return true
}

// HedgeStats is a point-in-time view of the hedger.
type HedgeStats struct {
	// Hedges counts backup attempts launched; Wins counts hedges whose
	// response arrived first; Suppressed counts hedge opportunities
	// skipped for budget or backpressure.
	Hedges     int64
	Wins       int64
	Suppressed int64
	// Samples is the number of primary latencies observed; Delay the
	// current hedge delay; Tokens the remaining budget.
	Samples int64
	Delay   time.Duration
	Tokens  float64
}

// Stats snapshots the hedger.
func (h *Hedger) Stats() HedgeStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HedgeStats{
		Hedges:     h.hedges,
		Wins:       h.wins,
		Suppressed: h.suppressed,
		Samples:    int64(h.count),
		Delay:      h.delayLocked(),
		Tokens:     h.tokens,
	}
}

// DoHedged runs attempt with tail-latency hedging: the primary starts
// immediately; if it has not finished within h.Delay() and the budget
// allows, one backup attempt starts with hedged=true. The first
// successful result wins and the other attempt's context is cancelled;
// if both fail, the primary's error is returned. A nil Hedger degrades
// to a plain call.
//
// attempt must honor ctx cancellation — a cancelled loser should stop
// doing work, not just have its result discarded.
func DoHedged[T any](ctx context.Context, h *Hedger, attempt func(ctx context.Context, hedged bool) (T, error)) (T, error) {
	var zero T
	if h == nil {
		return attempt(ctx, false)
	}
	type result struct {
		v      T
		err    error
		hedged bool
	}
	actx, cancelAll := context.WithCancel(ctx)
	defer cancelAll()
	results := make(chan result, 2) // buffered: the loser must not leak
	start := time.Now()
	launch := func(hedged bool) {
		go func() {
			v, err := attempt(actx, hedged)
			results <- result{v, err, hedged}
		}()
	}
	launch(false)
	inflight := 1

	timer := time.NewTimer(h.Delay())
	defer timer.Stop()
	timerC := timer.C

	var primaryErr error
	var hedgeErr error
	for {
		select {
		case <-ctx.Done():
			return zero, ctx.Err()
		case <-timerC:
			timerC = nil
			if h.takeToken() {
				launch(true)
				inflight++
			}
		case r := <-results:
			inflight--
			if r.err == nil {
				if r.hedged {
					h.mu.Lock()
					h.wins++
					h.mu.Unlock()
				} else {
					h.ObservePrimary(time.Since(start))
				}
				cancelAll()
				return r.v, nil
			}
			if r.hedged {
				hedgeErr = r.err
			} else {
				primaryErr = r.err
			}
			if inflight == 0 && timerC == nil {
				if primaryErr != nil {
					return zero, primaryErr
				}
				return zero, hedgeErr
			}
			if inflight == 0 {
				// The primary failed before the hedge timer fired; a
				// backup of a failed request is a retry, which is the
				// retry package's job, not the hedger's.
				return zero, primaryErr
			}
		}
	}
}
