package retry

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// warm feeds n fast primary samples so the adaptive delay activates and
// the token budget fills.
func warm(h *Hedger, n int, d time.Duration) {
	for i := 0; i < n; i++ {
		h.ObservePrimary(d)
	}
}

// TestHedgerDelayAdapts pins the delay model: MaxDelay until MinSamples
// primaries, then the clamped p95 of the window.
func TestHedgerDelayAdapts(t *testing.T) {
	h := NewHedger(HedgeConfig{MaxDelay: time.Second, MinSamples: 4})
	if d := h.Delay(); d != time.Second {
		t.Fatalf("cold delay = %v, want MaxDelay", d)
	}
	warm(h, 20, 10*time.Millisecond)
	d := h.Delay()
	if d < time.Millisecond || d > 20*time.Millisecond {
		t.Fatalf("warm delay = %v, want ~p95 of 10ms samples", d)
	}
}

// TestDoHedgedSlowPrimary pins the core behavior: a slow primary
// triggers one hedge, the hedge's fast response wins, and the primary's
// context is cancelled.
func TestDoHedgedSlowPrimary(t *testing.T) {
	h := NewHedger(HedgeConfig{MaxDelay: time.Second})
	warm(h, 20, 5*time.Millisecond)

	primaryCancelled := make(chan struct{})
	v, err := DoHedged(context.Background(), h, func(ctx context.Context, hedged bool) (string, error) {
		if hedged {
			return "hedge", nil
		}
		<-ctx.Done() // a primary that never finishes on its own
		close(primaryCancelled)
		return "", ctx.Err()
	})
	if err != nil || v != "hedge" {
		t.Fatalf("DoHedged = %q, %v", v, err)
	}
	select {
	case <-primaryCancelled:
	case <-time.After(2 * time.Second):
		t.Fatal("losing primary was never cancelled")
	}
	st := h.Stats()
	if st.Hedges != 1 || st.Wins != 1 {
		t.Fatalf("stats = %+v, want 1 hedge, 1 win", st)
	}
}

// TestDoHedgedFastPrimary pins that a fast primary never hedges.
func TestDoHedgedFastPrimary(t *testing.T) {
	h := NewHedger(HedgeConfig{MaxDelay: 500 * time.Millisecond})
	var hedges atomic.Int64
	for i := 0; i < 8; i++ {
		v, err := DoHedged(context.Background(), h, func(ctx context.Context, hedged bool) (int, error) {
			if hedged {
				hedges.Add(1)
			}
			return i, nil
		})
		if err != nil || v != i {
			t.Fatalf("call %d: %v, %v", i, v, err)
		}
	}
	if hedges.Load() != 0 {
		t.Fatalf("%d hedges launched for instant primaries", hedges.Load())
	}
	if st := h.Stats(); st.Samples != 8 {
		t.Fatalf("samples = %d, want 8", st.Samples)
	}
}

// TestHedgeTokenBudget pins the budget: with earn 0 and the single
// starting token, only one hedge may ever launch.
func TestHedgeTokenBudget(t *testing.T) {
	h := NewHedger(HedgeConfig{MaxDelay: time.Millisecond, EarnPerPrimary: 0.0001, MaxTokens: 1})
	slow := func(ctx context.Context, hedged bool) (bool, error) {
		if hedged {
			return true, nil
		}
		select {
		case <-time.After(50 * time.Millisecond):
			return false, nil
		case <-ctx.Done():
			return false, ctx.Err()
		}
	}
	if v, err := DoHedged(context.Background(), h, slow); err != nil || v != true {
		t.Fatalf("first slow call: %v, %v (want hedge win)", v, err)
	}
	// Budget exhausted: the second slow call must ride out the primary.
	if v, err := DoHedged(context.Background(), h, slow); err != nil || v != false {
		t.Fatalf("second slow call: %v, %v (want primary, no budget)", v, err)
	}
	st := h.Stats()
	if st.Hedges != 1 || st.Suppressed == 0 {
		t.Fatalf("stats = %+v, want 1 hedge and a suppression", st)
	}
}

// TestHedgeBackpressureSuppression pins that Retry-After backpressure
// turns hedging off for its duration.
func TestHedgeBackpressureSuppression(t *testing.T) {
	now := time.Now()
	h := NewHedger(HedgeConfig{MaxDelay: time.Millisecond, Now: func() time.Time { return now }})
	h.NoteBackpressure(5 * time.Second)
	if h.takeToken() {
		t.Fatal("hedge token granted during backpressure suppression")
	}
	now = now.Add(6 * time.Second)
	if !h.takeToken() {
		t.Fatal("hedge token denied after suppression expired")
	}
}

// TestDoHedgedBothFail pins error semantics: when primary and hedge
// both fail, the primary's error surfaces.
func TestDoHedgedBothFail(t *testing.T) {
	h := NewHedger(HedgeConfig{MaxDelay: time.Millisecond})
	primaryErr := errors.New("primary down")
	_, err := DoHedged(context.Background(), h, func(ctx context.Context, hedged bool) (int, error) {
		if hedged {
			return 0, errors.New("hedge down")
		}
		time.Sleep(20 * time.Millisecond)
		return 0, primaryErr
	})
	if !errors.Is(err, primaryErr) {
		t.Fatalf("err = %v, want the primary's", err)
	}
}

// TestDoHedgedNil pins the degenerate path: a nil hedger is a plain
// call.
func TestDoHedgedNil(t *testing.T) {
	v, err := DoHedged(context.Background(), nil, func(ctx context.Context, hedged bool) (int, error) {
		if hedged {
			t.Error("nil hedger launched a hedge")
		}
		return 7, nil
	})
	if err != nil || v != 7 {
		t.Fatalf("DoHedged = %v, %v", v, err)
	}
}

// TestDoHedgedCtxCancel pins that caller cancellation wins over both
// attempts.
func TestDoHedgedCtxCancel(t *testing.T) {
	h := NewHedger(HedgeConfig{MaxDelay: time.Minute})
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(10 * time.Millisecond); cancel() }()
	_, err := DoHedged(ctx, h, func(ctx context.Context, hedged bool) (int, error) {
		<-ctx.Done()
		return 0, ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
