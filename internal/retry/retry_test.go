package retry

import (
	"context"
	"errors"
	"net/http"
	"testing"
	"time"
)

// recorder captures sleeps instead of performing them.
type recorder struct{ slept []time.Duration }

func (r *recorder) sleep(d time.Duration) { r.slept = append(r.slept, d) }

func TestDoSucceedsWithoutSleeping(t *testing.T) {
	rec := &recorder{}
	calls := 0
	err := Do(context.Background(), Policy{Sleep: rec.sleep}, func(int) error {
		calls++
		return nil
	})
	if err != nil || calls != 1 || len(rec.slept) != 0 {
		t.Fatalf("Do = %v after %d calls, %d sleeps", err, calls, len(rec.slept))
	}
}

func TestDoRetriesUntilSuccess(t *testing.T) {
	rec := &recorder{}
	calls := 0
	err := Do(context.Background(), Policy{MaxAttempts: 5, Sleep: rec.sleep}, func(n int) error {
		calls++
		if n < 2 {
			return Retryable(errors.New("transient"))
		}
		return nil
	})
	if err != nil || calls != 3 || len(rec.slept) != 2 {
		t.Fatalf("Do = %v after %d calls, %d sleeps", err, calls, len(rec.slept))
	}
}

func TestDoStopsAtMaxAttemptsWithCause(t *testing.T) {
	rec := &recorder{}
	want := errors.New("still down")
	calls := 0
	err := Do(context.Background(), Policy{MaxAttempts: 3, Sleep: rec.sleep}, func(int) error {
		calls++
		return Retryable(want)
	})
	if err != want {
		t.Fatalf("Do = %v, want the unwrapped cause %v", err, want)
	}
	if calls != 3 || len(rec.slept) != 2 {
		t.Fatalf("%d calls, %d sleeps; want 3 calls, 2 sleeps", calls, len(rec.slept))
	}
}

func TestDoFailsFastOnNonRetryable(t *testing.T) {
	rec := &recorder{}
	want := errors.New("bad request")
	calls := 0
	err := Do(context.Background(), Policy{Sleep: rec.sleep}, func(int) error {
		calls++
		return want
	})
	if err != want || calls != 1 || len(rec.slept) != 0 {
		t.Fatalf("Do = %v after %d calls, %d sleeps", err, calls, len(rec.slept))
	}
}

// TestBackoffShape pins the full-jitter contract: every delay falls in
// [0, min(MaxDelay, Base*2^n)), the windows grow with the attempt, and
// a fixed seed reproduces the sequence exactly.
func TestBackoffShape(t *testing.T) {
	run := func(seed int64) []time.Duration {
		rec := &recorder{}
		p := Policy{MaxAttempts: 8, BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second, Seed: seed, Sleep: rec.sleep}
		Do(context.Background(), p, func(int) error { return Retryable(errors.New("x")) })
		return rec.slept
	}
	a, b := run(7), run(7)
	if len(a) != 7 {
		t.Fatalf("expected 7 sleeps, got %d", len(a))
	}
	for n, d := range a {
		if d != b[n] {
			t.Fatalf("sleep %d differs across identical seeds: %v vs %v", n, d, b[n])
		}
		window := 100 * time.Millisecond << uint(n)
		if window > time.Second {
			window = time.Second
		}
		if d < 0 || d >= window {
			t.Fatalf("sleep %d = %v outside full-jitter window [0, %v)", n, d, window)
		}
	}
	if c := run(8); c[0] == a[0] && c[1] == a[1] && c[2] == a[2] {
		t.Error("different seeds produced an identical delay prefix")
	}
}

func TestRetryAfterFloorsBackoff(t *testing.T) {
	rec := &recorder{}
	hint := 2 * time.Second
	Do(context.Background(), Policy{MaxAttempts: 2, MaxDelay: time.Second, Sleep: rec.sleep}, func(int) error {
		return &Err{Cause: errors.New("throttled"), RetryAfter: hint}
	})
	if len(rec.slept) != 1 || rec.slept[0] < hint {
		t.Fatalf("slept %v, want at least the Retry-After hint %v", rec.slept, hint)
	}
}

func TestDoRespectsContext(t *testing.T) {
	rec := &recorder{}
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err := Do(ctx, Policy{MaxAttempts: 10, Sleep: rec.sleep}, func(int) error {
		calls++
		cancel()
		return Retryable(errors.New("transient"))
	})
	if err == nil || calls != 1 {
		t.Fatalf("Do = %v after %d calls, want the transient error after 1", err, calls)
	}

	// A deadline too close to fit the wait ends the loop without
	// sleeping.
	rec = &recorder{}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel2()
	err = Do(ctx2, Policy{MaxAttempts: 5, Sleep: rec.sleep}, func(int) error {
		return &Err{Cause: errors.New("throttled"), RetryAfter: time.Hour}
	})
	if err == nil || len(rec.slept) != 0 {
		t.Fatalf("Do = %v with %d sleeps, want error and no sleep", err, len(rec.slept))
	}
}

func TestAfterHeader(t *testing.T) {
	cases := []struct {
		value string
		want  time.Duration
	}{
		{"", 0},
		{"3", 3 * time.Second},
		{"0", 0},
		{"-1", 0},
		{"soon", 0},
		{"Tue, 29 Oct 2030 16:56:32 GMT", 0}, // HTTP-date form unsupported
	}
	for _, tc := range cases {
		h := http.Header{}
		if tc.value != "" {
			h.Set("Retry-After", tc.value)
		}
		if got := AfterHeader(h); got != tc.want {
			t.Errorf("AfterHeader(%q) = %v, want %v", tc.value, got, tc.want)
		}
	}
}
