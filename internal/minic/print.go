package minic

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file is the mini-C printer: the inverse of Parse, emitting
// compilable source from an AST. It exists for the tuner, which edits the
// AST (schedule clauses, struct padding, loop interchange) and must hand
// the result back as C text. The printer is structure-preserving:
// Parse(Print(p)) yields a program with the same expression trees, so a
// program lowers to the same loopir nest before and after a round trip
// (the property test in print_test.go pins this over the whole corpus).
//
// Two lossy cases are inherent to the AST and documented rather than
// fought: #define values are printed as their evaluated integers (the
// parser folds constant expressions), and array lengths are printed as
// resolved constants (the parser evaluates them). Comments are not part
// of the AST; LeadingComments lets a caller carry a file's header block
// across a rewrite, which is as much comment preservation as the spans
// allow.

// PrintOptions configures Print.
type PrintOptions struct {
	// Header is emitted verbatim before the program (typically the
	// original file's leading comment block, via LeadingComments).
	Header string
}

// Print renders the program as compilable mini-C source.
func Print(p *Program) string { return PrintOpts(p, PrintOptions{}) }

// PrintOpts renders the program with options.
func PrintOpts(p *Program, o PrintOptions) string {
	var b strings.Builder
	if o.Header != "" {
		b.WriteString(strings.TrimRight(o.Header, "\n"))
		b.WriteString("\n\n")
	}
	pr := printer{b: &b}
	pr.program(p)
	return b.String()
}

// Fprint writes Print(p) to w.
func Fprint(w io.Writer, p *Program) error {
	_, err := io.WriteString(w, Print(p))
	return err
}

// LeadingComments returns the comment block (// and /* */ styles, plus
// interleaving blank lines) at the very top of src, so a rewriter can
// re-emit it ahead of the printed program. Returns "" when src does not
// start with a comment.
func LeadingComments(src string) string {
	i := 0
	end := 0 // end of the last full comment consumed
	for i < len(src) {
		switch {
		case src[i] == ' ' || src[i] == '\t' || src[i] == '\n' || src[i] == '\r':
			i++
		case strings.HasPrefix(src[i:], "//"):
			nl := strings.IndexByte(src[i:], '\n')
			if nl < 0 {
				return src
			}
			i += nl + 1
			end = i
		case strings.HasPrefix(src[i:], "/*"):
			close := strings.Index(src[i+2:], "*/")
			if close < 0 {
				return "" // unterminated; let the parser report it
			}
			i += 2 + close + 2
			end = i
		default:
			return src[:end]
		}
	}
	return src[:end]
}

type printer struct {
	b *strings.Builder
}

func (pr *printer) printf(format string, args ...any) {
	fmt.Fprintf(pr.b, format, args...)
}

func (pr *printer) program(p *Program) {
	for _, d := range p.Defines {
		pr.printf("#define %s %d\n", d.Name, d.Value)
	}
	if len(p.Defines) > 0 {
		pr.printf("\n")
	}
	for _, sd := range p.Structs {
		pr.structDecl(sd)
		pr.printf("\n")
	}
	for _, vd := range p.Vars {
		pr.printf("%s %s%s;\n", vd.Type.String(), vd.Name, dims(vd.ArrayLens))
	}
	if len(p.Vars) > 0 {
		pr.printf("\n")
	}
	for _, s := range p.Stmts {
		pr.stmt(s, 0)
	}
}

func dims(lens []int64) string {
	var b strings.Builder
	for _, n := range lens {
		fmt.Fprintf(&b, "[%d]", n)
	}
	return b.String()
}

func (pr *printer) structDecl(sd *StructDecl) {
	pr.printf("struct %s {\n", sd.Name)
	for _, f := range sd.Fields {
		pr.printf("    %s %s%s;\n", f.Type.String(), f.Name, dims(f.ArrayLens))
	}
	pr.printf("};\n")
}

func indentOf(depth int) string { return strings.Repeat("    ", depth) }

func (pr *printer) stmt(s Stmt, depth int) {
	ind := indentOf(depth)
	switch v := s.(type) {
	case *AssignStmt:
		pr.printf("%s%s %s %s;\n", ind, refString(v.LHS), v.Op.String(), exprString(v.RHS))
	case *ForStmt:
		if v.Pragma != nil {
			pr.printf("%s%s\n", ind, pragmaString(v.Pragma))
		}
		pr.printf("%sfor (%s = %s; %s %s %s; %s) {\n",
			ind, v.Var, exprString(v.Init), v.Var, v.CondOp.String(), exprString(v.Bound), stepClause(v.Var, v.Step))
		for _, inner := range v.Body {
			pr.stmt(inner, depth+1)
		}
		pr.printf("%s}\n", ind)
	}
}

// stepClause renders the increment: ++/-- for unit steps, += / -=
// otherwise. A UnaryExpr minus becomes "-=" of its operand, which
// re-parses to the identical negated step expression.
func stepClause(v string, step Expr) string {
	switch e := step.(type) {
	case *IntLit:
		if e.Value == 1 {
			return v + "++"
		}
		if e.Value == -1 {
			return v + "--"
		}
	case *UnaryExpr:
		if e.Op == MINUS {
			return fmt.Sprintf("%s -= %s", v, exprString(e.X))
		}
	}
	return fmt.Sprintf("%s += %s", v, exprString(step))
}

func pragmaString(p *OMPPragma) string {
	var b strings.Builder
	b.WriteString("#pragma omp parallel for")
	if len(p.Private) > 0 {
		fmt.Fprintf(&b, " private(%s)", strings.Join(p.Private, ","))
	}
	if len(p.Shared) > 0 {
		fmt.Fprintf(&b, " shared(%s)", strings.Join(p.Shared, ","))
	}
	// The parser defaults Schedule to "static" when no clause is present,
	// so a static schedule without a chunk needs no clause to round-trip.
	if p.Chunk != nil {
		fmt.Fprintf(&b, " schedule(%s,%s)", p.Schedule, exprString(p.Chunk))
	} else if p.Schedule != "static" {
		fmt.Fprintf(&b, " schedule(%s)", p.Schedule)
	}
	if p.NumThreads != nil {
		fmt.Fprintf(&b, " num_threads(%s)", exprString(p.NumThreads))
	}
	return b.String()
}

// Expression printing. Parenthesization preserves the tree exactly under
// the parser's left-associative grammar: a left child of equal precedence
// prints bare (re-associating naturally), a right child of equal
// precedence keeps explicit parens, lower precedence always parenthesizes.
const (
	precAdd = iota + 1 // + -
	precMul            // * / %
	precUnary
	precPrimary
)

func precOf(e Expr) int {
	switch v := e.(type) {
	case *BinaryExpr:
		switch v.Op {
		case PLUS, MINUS:
			return precAdd
		default:
			return precMul
		}
	case *UnaryExpr:
		return precUnary
	default:
		return precPrimary
	}
}

func exprString(e Expr) string {
	var b strings.Builder
	writeExpr(&b, e, 0, false)
	return b.String()
}

func writeExpr(b *strings.Builder, e Expr, parentPrec int, rightChild bool) {
	p := precOf(e)
	need := p < parentPrec || (rightChild && p == parentPrec && p != precPrimary)
	if need {
		b.WriteByte('(')
	}
	switch v := e.(type) {
	case *IntLit:
		fmt.Fprintf(b, "%d", v.Value)
	case *FloatLit:
		b.WriteString(floatLit(v.Value))
	case *RefExpr:
		b.WriteString(refString(v))
	case *UnaryExpr:
		b.WriteString(v.Op.String())
		// Parenthesize a unary operand unconditionally: "--x" would lex
		// as a decrement token.
		b.WriteByte('(')
		writeExpr(b, v.X, 0, false)
		b.WriteByte(')')
	case *BinaryExpr:
		writeExpr(b, v.X, p, false)
		fmt.Fprintf(b, " %s ", v.Op.String())
		writeExpr(b, v.Y, p, true)
	}
	if need {
		b.WriteByte(')')
	}
}

func refString(r *RefExpr) string {
	var b strings.Builder
	b.WriteString(r.Name)
	for _, p := range r.Post {
		if p.Index != nil {
			b.WriteByte('[')
			writeExpr(&b, p.Index, 0, false)
			b.WriteByte(']')
		} else {
			b.WriteByte('.')
			b.WriteString(p.Field)
		}
	}
	return b.String()
}

// floatLit renders a float so it re-lexes as a FLOAT token (never a bare
// integer): the shortest round-tripping form, with ".0" appended when the
// form carries no decimal point or exponent.
func floatLit(v float64) string {
	s := strconv.FormatFloat(v, 'g', -1, 64)
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	return s
}
