package minic

import (
	"errors"
	"strings"
	"testing"
)

// TestParseDepthLimits pins the recursion guards: pathologically nested
// inputs must come back as *ParseError, never exhaust the stack. The
// inputs mirror the checked-in fuzz regression corpus
// (testdata/fuzz/FuzzParse).
func TestParseDepthLimits(t *testing.T) {
	nestedFors := func(n int) string {
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteString("for (i = 0; i < 4; i++) { ")
		}
		b.WriteString("a[i] = 1;")
		b.WriteString(strings.Repeat(" }", n))
		return b.String()
	}
	cases := []struct {
		name string
		src  string
		want string // substring of the expected error; "" = must succeed
	}{
		{"deep parens", "x = " + strings.Repeat("(", 5000) + "1" + strings.Repeat(")", 5000) + ";", "expression nested deeper"},
		{"deep unterminated parens", "x = " + strings.Repeat("(", 200000), "expression nested deeper"},
		{"deep unary", "x = " + strings.Repeat("- ", 5000) + "1;", "expression nested deeper"},
		{"deep fors", nestedFors(128), "for loops nested deeper"},
		{"parens under the limit", "x = " + strings.Repeat("(", 100) + "1" + strings.Repeat(")", 100) + ";", ""},
		{"fors under the limit", nestedFors(8), ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog, err := Parse(tc.src)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("Parse failed: %v", err)
				}
				return
			}
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("Parse = (%v, %v), want *ParseError", prog, err)
			}
			if !strings.Contains(pe.Msg, tc.want) {
				t.Fatalf("error %q does not mention %q", pe.Msg, tc.want)
			}
		})
	}
}

// TestParseEOFEdges pins truncated-input handling: mid-reference,
// mid-struct and mid-loop EOFs are ParseErrors, not panics.
func TestParseEOFEdges(t *testing.T) {
	for _, src := range []string{
		"for (i = 0; i < 8; i++) a[i",
		"struct s { int x",
		"#pragma omp parallel for\nfor (i = 0; i < 8; i",
		"x = ",
		"int a[",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted a truncated program", src)
		} else {
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Errorf("Parse(%q) = %T, want *ParseError", src, err)
			}
		}
	}
}
