package minic

import (
	"strings"
	"unicode"
)

// Lexer splits mini-C source text into tokens. It handles // and /* */
// comments, line continuations inside directives, and emits one DEFINE or
// PRAGMA token per directive line.
type Lexer struct {
	src  string
	off  int // byte offset of next rune
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Tokens lexes the entire input, always ending with an EOF token.
func (lx *Lexer) Tokens() []Token {
	var toks []Token
	for {
		t := lx.Next()
		toks = append(toks, t)
		if t.Type == EOF {
			return toks
		}
	}
}

func (lx *Lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peek2() byte {
	if lx.off+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+1]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

// skipSpaceAndComments consumes whitespace and both comment styles. It
// reports whether the lexer reached end of input.
func (lx *Lexer) skipSpaceAndComments() bool {
	for {
		c := lx.peek()
		switch {
		case c == 0:
			return true
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peek2() == '/':
			for lx.peek() != 0 && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peek2() == '*':
			lx.advance()
			lx.advance()
			for {
				if lx.peek() == 0 {
					return true
				}
				if lx.peek() == '*' && lx.peek2() == '/' {
					lx.advance()
					lx.advance()
					break
				}
				lx.advance()
			}
		default:
			return false
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Next returns the next token.
func (lx *Lexer) Next() Token {
	if lx.skipSpaceAndComments() {
		return Token{Type: EOF, Pos: lx.pos()}
	}
	start := lx.pos()
	c := lx.peek()

	switch {
	case c == '#':
		return lx.lexDirective(start)
	case isIdentStart(c):
		begin := lx.off
		for lx.off < len(lx.src) && isIdentPart(lx.peek()) {
			lx.advance()
		}
		return Token{Type: IDENT, Lit: lx.src[begin:lx.off], Pos: start}
	case isDigit(c) || (c == '.' && isDigit(lx.peek2())):
		return lx.lexNumber(start)
	}

	lx.advance()
	two := func(next byte, t2 TokenType, t1 TokenType) Token {
		if lx.peek() == next {
			lx.advance()
			return Token{Type: t2, Lit: tokenNames[t2], Pos: start}
		}
		return Token{Type: t1, Lit: tokenNames[t1], Pos: start}
	}

	switch c {
	case '(':
		return Token{Type: LPAREN, Lit: "(", Pos: start}
	case ')':
		return Token{Type: RPAREN, Lit: ")", Pos: start}
	case '{':
		return Token{Type: LBRACE, Lit: "{", Pos: start}
	case '}':
		return Token{Type: RBRACE, Lit: "}", Pos: start}
	case '[':
		return Token{Type: LBRACKET, Lit: "[", Pos: start}
	case ']':
		return Token{Type: RBRACKET, Lit: "]", Pos: start}
	case ';':
		return Token{Type: SEMICOLON, Lit: ";", Pos: start}
	case ',':
		return Token{Type: COMMA, Lit: ",", Pos: start}
	case '.':
		return Token{Type: DOT, Lit: ".", Pos: start}
	case '+':
		if lx.peek() == '+' {
			lx.advance()
			return Token{Type: INC, Lit: "++", Pos: start}
		}
		return two('=', PLUSASSIGN, PLUS)
	case '-':
		if lx.peek() == '-' {
			lx.advance()
			return Token{Type: DEC, Lit: "--", Pos: start}
		}
		return two('=', MINUSASSIGN, MINUS)
	case '*':
		return two('=', STARASSIGN, STAR)
	case '/':
		return two('=', SLASHASSIGN, SLASH)
	case '%':
		return Token{Type: PERCENT, Lit: "%", Pos: start}
	case '<':
		return two('=', LE, LT)
	case '>':
		return two('=', GE, GT)
	case '=':
		return two('=', EQ, ASSIGN)
	case '!':
		if lx.peek() == '=' {
			lx.advance()
			return Token{Type: NEQ, Lit: "!=", Pos: start}
		}
	}
	return Token{Type: ILLEGAL, Lit: string(c), Pos: start}
}

// lexNumber scans an integer or floating point literal.
func (lx *Lexer) lexNumber(start Pos) Token {
	begin := lx.off
	isFloat := false
	for lx.off < len(lx.src) {
		c := lx.peek()
		switch {
		case isDigit(c):
			lx.advance()
		case c == '.':
			isFloat = true
			lx.advance()
		case c == 'e' || c == 'E':
			isFloat = true
			lx.advance()
			if lx.peek() == '+' || lx.peek() == '-' {
				lx.advance()
			}
		case c == 'f' || c == 'F' || c == 'l' || c == 'L' || c == 'u' || c == 'U':
			// Consume C numeric suffixes but keep them out of the literal.
			lit := lx.src[begin:lx.off]
			lx.advance()
			for lx.off < len(lx.src) && isIdentPart(lx.peek()) {
				lx.advance()
			}
			t := INT
			if isFloat || c == 'f' || c == 'F' {
				t = FLOAT
			}
			return Token{Type: t, Lit: lit, Pos: start}
		default:
			goto done
		}
	}
done:
	t := INT
	if isFloat {
		t = FLOAT
	}
	return Token{Type: t, Lit: lx.src[begin:lx.off], Pos: start}
}

// lexDirective consumes a full '#' line (honoring backslash continuations)
// and classifies it as DEFINE, PRAGMA or ILLEGAL. The literal excludes the
// directive keyword itself.
func (lx *Lexer) lexDirective(start Pos) Token {
	lx.advance() // '#'
	var b strings.Builder
	for {
		c := lx.peek()
		if c == 0 {
			break
		}
		if c == '\\' && lx.peek2() == '\n' {
			lx.advance()
			lx.advance()
			b.WriteByte(' ')
			continue
		}
		if c == '\n' {
			break
		}
		b.WriteByte(lx.advance())
	}
	line := strings.TrimSpace(b.String())
	switch {
	case strings.HasPrefix(line, "define"):
		return Token{Type: DEFINE, Lit: strings.TrimSpace(strings.TrimPrefix(line, "define")), Pos: start}
	case strings.HasPrefix(line, "pragma"):
		return Token{Type: PRAGMA, Lit: strings.TrimSpace(strings.TrimPrefix(line, "pragma")), Pos: start}
	case strings.HasPrefix(line, "include"):
		// Includes are tolerated and ignored so real kernel files lex cleanly.
		return lx.Next()
	}
	return Token{Type: ILLEGAL, Lit: "#" + line, Pos: start}
}
