package minic

import (
	"fmt"
	"strings"
)

// Program is a parsed mini-C translation unit: a sequence of #define
// constants, struct declarations, variable declarations, and top-level
// statements (loop nests and scalar assignments, in source order).
type Program struct {
	Defines []*Define
	Structs []*StructDecl
	Vars    []*VarDecl
	Stmts   []Stmt
}

// Loops returns the top-level for statements of the program in source order.
func (p *Program) Loops() []*ForStmt {
	var out []*ForStmt
	for _, s := range p.Stmts {
		if f, ok := s.(*ForStmt); ok {
			out = append(out, f)
		}
	}
	return out
}

// DefineValue returns the value of #define name, if present.
func (p *Program) DefineValue(name string) (int64, bool) {
	for _, d := range p.Defines {
		if d.Name == name {
			return d.Value, true
		}
	}
	return 0, false
}

// Define is a "#define NAME value" integer constant.
type Define struct {
	Name  string
	Value int64
	P     Pos
}

// TypeSpec names a declared type: either a basic C type ("char", "short",
// "int", "long", "float", "double") or a struct by name.
type TypeSpec struct {
	Basic  string // non-empty for basic types
	Struct string // non-empty for "struct X"
}

// String renders the type specifier in C syntax.
func (t TypeSpec) String() string {
	if t.Struct != "" {
		return "struct " + t.Struct
	}
	return t.Basic
}

// StructDecl is a named struct type declaration.
type StructDecl struct {
	Name   string
	Fields []*FieldDecl
	P      Pos
}

// FieldDecl is a single struct field, possibly an array ("double pts[N][M]"
// yields ArrayLens {N, M}).
type FieldDecl struct {
	Type      TypeSpec
	Name      string
	ArrayLens []int64
	P         Pos
}

// VarDecl is a global variable declaration, possibly an array.
type VarDecl struct {
	Type      TypeSpec
	Name      string
	ArrayLens []int64
	P         Pos
}

// OMPPragma is a parsed "#pragma omp parallel for" annotation.
type OMPPragma struct {
	Schedule   string // "static" (default), "dynamic", "guided"
	Chunk      Expr   // nil means unspecified
	NumThreads Expr   // nil means unspecified (taken from analysis config)
	Private    []string
	Shared     []string
	P          Pos
}

// Stmt is a statement node.
type Stmt interface {
	Pos() Pos
	stmtNode()
}

// ForStmt is a canonical counted loop:
//
//	for (Var = Init; Var CondOp Bound; Var += Step)  Body
//
// Step is positive for "+=/++" loops and negative for "-=/--" loops.
type ForStmt struct {
	Pragma *OMPPragma // non-nil if annotated with "#pragma omp parallel for"
	Var    string
	Init   Expr
	CondOp TokenType // LT, LE, GT, GE, NEQ
	Bound  Expr
	Step   Expr // signed step amount
	Body   []Stmt
	P      Pos
}

// Pos returns the statement's source position.
func (s *ForStmt) Pos() Pos  { return s.P }
func (s *ForStmt) stmtNode() {}

// AssignStmt is "LHS op= RHS" where op is one of =, +=, -=, *=, /=.
type AssignStmt struct {
	LHS *RefExpr
	Op  TokenType // ASSIGN, PLUSASSIGN, ...
	RHS Expr
	P   Pos
}

// Pos returns the statement's source position.
func (s *AssignStmt) Pos() Pos  { return s.P }
func (s *AssignStmt) stmtNode() {}

// Expr is an expression node.
type Expr interface {
	Pos() Pos
	exprNode()
	String() string
}

// IntLit is an integer literal.
type IntLit struct {
	Value int64
	P     Pos
}

// Pos returns the literal's source position.
func (e *IntLit) Pos() Pos       { return e.P }
func (e *IntLit) exprNode()      {}
func (e *IntLit) String() string { return fmt.Sprintf("%d", e.Value) }

// FloatLit is a floating point literal.
type FloatLit struct {
	Value float64
	P     Pos
}

// Pos returns the literal's source position.
func (e *FloatLit) Pos() Pos       { return e.P }
func (e *FloatLit) exprNode()      {}
func (e *FloatLit) String() string { return fmt.Sprintf("%g", e.Value) }

// Postfix is one trailing accessor on a reference: an array index or a
// struct member selection.
type Postfix struct {
	Index Expr   // non-nil for "[expr]"
	Field string // non-empty for ".field"
	// End is the position one past the accessor's last character (the
	// closing bracket or the final field-name character), so diagnostics
	// can underline the exact subscript.
	End Pos
}

// RefExpr is a reference expression: an identifier followed by a chain of
// index and member accessors, e.g. "tid_args[j].points[i].x". A bare
// identifier (loop variable or #define constant) has an empty accessor
// chain.
type RefExpr struct {
	Name string
	Post []Postfix
	P    Pos
	// EndP is the position one past the reference's last character, so a
	// diagnostic can span "tid_args[j].sx" exactly rather than pointing
	// at its first character.
	EndP Pos
}

// Pos returns the expression's source position.
func (e *RefExpr) Pos() Pos  { return e.P }
func (e *RefExpr) exprNode() {}

// End returns the position one past the reference's last character.
func (e *RefExpr) End() Pos { return e.EndP }

// String renders the reference in C syntax.
func (e *RefExpr) String() string {
	var b strings.Builder
	b.WriteString(e.Name)
	for _, p := range e.Post {
		if p.Index != nil {
			fmt.Fprintf(&b, "[%s]", p.Index.String())
		} else {
			fmt.Fprintf(&b, ".%s", p.Field)
		}
	}
	return b.String()
}

// IsScalar reports whether the reference has no accessors (a bare name).
func (e *RefExpr) IsScalar() bool { return len(e.Post) == 0 }

// BinaryExpr is "X op Y" for op in + - * / %.
type BinaryExpr struct {
	Op TokenType
	X  Expr
	Y  Expr
	P  Pos
}

// Pos returns the expression's source position.
func (e *BinaryExpr) Pos() Pos  { return e.P }
func (e *BinaryExpr) exprNode() {}

// String renders the expression fully parenthesized.
func (e *BinaryExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", e.X.String(), e.Op.String(), e.Y.String())
}

// UnaryExpr is "-X".
type UnaryExpr struct {
	Op TokenType
	X  Expr
	P  Pos
}

// Pos returns the expression's source position.
func (e *UnaryExpr) Pos() Pos       { return e.P }
func (e *UnaryExpr) exprNode()      {}
func (e *UnaryExpr) String() string { return fmt.Sprintf("(%s%s)", e.Op.String(), e.X.String()) }

// WalkExprs applies fn to every expression in the statement tree rooted at
// stmts, in evaluation order (LHS before RHS).
func WalkExprs(stmts []Stmt, fn func(Expr)) {
	var walkExpr func(Expr)
	walkExpr = func(e Expr) {
		if e == nil {
			return
		}
		fn(e)
		switch v := e.(type) {
		case *BinaryExpr:
			walkExpr(v.X)
			walkExpr(v.Y)
		case *UnaryExpr:
			walkExpr(v.X)
		case *RefExpr:
			for _, p := range v.Post {
				if p.Index != nil {
					walkExpr(p.Index)
				}
			}
		}
	}
	var walkStmt func(Stmt)
	walkStmt = func(s Stmt) {
		switch v := s.(type) {
		case *AssignStmt:
			walkExpr(v.LHS)
			walkExpr(v.RHS)
		case *ForStmt:
			walkExpr(v.Init)
			walkExpr(v.Bound)
			walkExpr(v.Step)
			for _, inner := range v.Body {
				walkStmt(inner)
			}
		}
	}
	for _, s := range stmts {
		walkStmt(s)
	}
}
