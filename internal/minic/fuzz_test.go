package minic

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzParse feeds arbitrary byte strings to the mini-C parser, seeded
// with every checked-in example program. The parser must either return a
// program or a *ParseError — it must never panic or hang, whatever the
// input.
func FuzzParse(f *testing.F) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.c"))
	if err != nil {
		f.Fatal(err)
	}
	if len(paths) == 0 {
		f.Fatal("no seed corpus: testdata/*.c not found")
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data))
	}
	// Hand-picked seeds poking at lexer and parser edges the example
	// programs don't reach.
	for _, s := range []string{
		"",
		"#define",
		"#define N",
		"#pragma omp parallel for",
		"for (i = 0; i < N; i++)",
		"for (i = 0; i < 8; i++) a[i] = a[i+1];",
		"double a[1<<30];",
		"x = 1e999;",
		"/* unterminated",
		"a[i][j][k] += b[j]*c[k];",
		"#pragma omp parallel for schedule(static,0) num_threads(-1)",
		// Recursion-depth edges (the full attacks live in the checked-in
		// regression corpus under testdata/fuzz/FuzzParse).
		"x = ((((((((1))))))));",
		"x = - - - - 1;",
		"for (i = 0; i < 2; i++) for (j = 0; j < 2; j++) a[i][j] = 1;",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err == nil && prog == nil {
			t.Fatal("Parse returned nil program with nil error")
		}
		if err != nil && prog != nil {
			t.Fatalf("Parse returned both a program and error %v", err)
		}
	})
}
