// Package minic implements a small C-subset front end — lexer, parser and
// AST — sufficient to express the OpenMP loop kernels the paper analyzes:
// #define constants, struct and array declarations, perfectly or imperfectly
// nested for loops, compound assignments over array/struct references, and
// "#pragma omp parallel for" annotations with private/schedule/num_threads
// clauses.
//
// The package substitutes for the Open64 C front end and WHIRL IR of the
// paper: it exposes exactly the information the paper's compiler pass
// collects (loop bounds, steps, index variables, chunk size, and array
// reference details including struct member offsets).
package minic

import "fmt"

// TokenType identifies the lexical class of a token.
type TokenType int

// Token types produced by the Lexer.
const (
	EOF TokenType = iota
	ILLEGAL

	IDENT // identifiers and keywords are disambiguated by the parser
	INT   // integer literal
	FLOAT // floating point literal

	// Punctuation and operators.
	LPAREN    // (
	RPAREN    // )
	LBRACE    // {
	RBRACE    // }
	LBRACKET  // [
	RBRACKET  // ]
	SEMICOLON // ;
	COMMA     // ,
	DOT       // .

	ASSIGN     // =
	PLUSASSIGN // +=
	MINUSASSIGN
	STARASSIGN
	SLASHASSIGN

	PLUS    // +
	MINUS   // -
	STAR    // *
	SLASH   // /
	PERCENT // %

	LT  // <
	GT  // >
	LE  // <=
	GE  // >=
	EQ  // ==
	NEQ // !=

	INC // ++
	DEC // --

	// Preprocessor-style directives, one token per directive line.
	DEFINE // #define NAME value          (Lit holds the rest of the line)
	PRAGMA // #pragma ...                 (Lit holds the rest of the line)
)

var tokenNames = map[TokenType]string{
	EOF:         "EOF",
	ILLEGAL:     "ILLEGAL",
	IDENT:       "IDENT",
	INT:         "INT",
	FLOAT:       "FLOAT",
	LPAREN:      "(",
	RPAREN:      ")",
	LBRACE:      "{",
	RBRACE:      "}",
	LBRACKET:    "[",
	RBRACKET:    "]",
	SEMICOLON:   ";",
	COMMA:       ",",
	DOT:         ".",
	ASSIGN:      "=",
	PLUSASSIGN:  "+=",
	MINUSASSIGN: "-=",
	STARASSIGN:  "*=",
	SLASHASSIGN: "/=",
	PLUS:        "+",
	MINUS:       "-",
	STAR:        "*",
	SLASH:       "/",
	PERCENT:     "%",
	LT:          "<",
	GT:          ">",
	LE:          "<=",
	GE:          ">=",
	EQ:          "==",
	NEQ:         "!=",
	INC:         "++",
	DEC:         "--",
	DEFINE:      "#define",
	PRAGMA:      "#pragma",
}

// String returns a human-readable name for the token type.
func (t TokenType) String() string {
	if s, ok := tokenNames[t]; ok {
		return s
	}
	return fmt.Sprintf("TokenType(%d)", int(t))
}

// Pos is a source position (1-based line and column).
type Pos struct {
	Line int
	Col  int
}

// String renders the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a lexical token with its source position.
type Token struct {
	Type TokenType
	Lit  string
	Pos  Pos
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Type {
	case IDENT, INT, FLOAT, DEFINE, PRAGMA, ILLEGAL:
		return fmt.Sprintf("%s(%q)", t.Type, t.Lit)
	default:
		return t.Type.String()
	}
}
