package minic

import "testing"

// TestRefEndPositions checks that references and their accessors carry
// exact end positions, so diagnostics can underline the full subscript.
func TestRefEndPositions(t *testing.T) {
	src := `
double a[10];
struct S { double x; double y; };
struct S s[10];

for (i = 0; i < 10; i++) {
  a[i] = s[i].x + s[i + 1].y;
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	var refs []*RefExpr
	for _, st := range prog.Stmts {
		f, ok := st.(*ForStmt)
		if !ok {
			continue
		}
		WalkExprs(f.Body, func(e Expr) {
			if r, ok := e.(*RefExpr); ok {
				refs = append(refs, r)
			}
		})
	}
	lines := []string{"", "", "double a[10];", "struct S { double x; double y; };", "struct S s[10];",
		"", "for (i = 0; i < 10; i++) {", "  a[i] = s[i].x + s[i + 1].y;", "}"}
	want := map[string]bool{"a[i]": true, "s[i].x": true, "s[i + 1].y": true, "i": true}
	var spanned int
	for _, r := range refs {
		if r.EndP.Line != r.P.Line || r.EndP.Col <= r.P.Col {
			t.Fatalf("ref %s: end %s not after start %s", r, r.EndP, r.P)
		}
		text := lines[r.P.Line][r.P.Col-1 : r.EndP.Col-1]
		if !want[text] {
			t.Fatalf("ref %s spans %q in source", r, text)
		}
		if text != "i" {
			spanned++
		}
		// Each accessor's end position must advance monotonically and the
		// last one must coincide with the reference end.
		prev := r.P
		for _, p := range r.Post {
			if p.End.Line != r.P.Line || p.End.Col <= prev.Col {
				t.Fatalf("ref %s: accessor end %s not after %s", r, p.End, prev)
			}
			prev = p.End
		}
		if len(r.Post) > 0 && prev != r.EndP {
			t.Fatalf("ref %s: last accessor ends at %s, ref at %s", r, prev, r.EndP)
		}
	}
	if spanned < 3 {
		t.Fatalf("only %d subscripted refs checked", spanned)
	}
}
