package minic

import (
	"strings"
	"testing"
)

func lexTypes(t *testing.T, src string) []TokenType {
	t.Helper()
	toks := NewLexer(src).Tokens()
	out := make([]TokenType, 0, len(toks))
	for _, tok := range toks {
		out = append(out, tok.Type)
	}
	return out
}

func TestLexBasicTokens(t *testing.T) {
	got := lexTypes(t, "for (i = 0; i < N; i++) a[i] += 2.5;")
	want := []TokenType{
		IDENT, LPAREN, IDENT, ASSIGN, INT, SEMICOLON,
		IDENT, LT, IDENT, SEMICOLON, IDENT, INC, RPAREN,
		IDENT, LBRACKET, IDENT, RBRACKET, PLUSASSIGN, FLOAT, SEMICOLON, EOF,
	}
	if len(got) != len(want) {
		t.Fatalf("token count %d, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexOperators(t *testing.T) {
	src := "+ - * / % < > <= >= == != = += -= *= /= ++ -- . ,"
	want := []TokenType{
		PLUS, MINUS, STAR, SLASH, PERCENT, LT, GT, LE, GE, EQ, NEQ,
		ASSIGN, PLUSASSIGN, MINUSASSIGN, STARASSIGN, SLASHASSIGN,
		INC, DEC, DOT, COMMA, EOF,
	}
	got := lexTypes(t, src)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexComments(t *testing.T) {
	src := `
// line comment with for and if
x = 1; /* block
comment */ y = 2;`
	got := lexTypes(t, src)
	want := []TokenType{IDENT, ASSIGN, INT, SEMICOLON, IDENT, ASSIGN, INT, SEMICOLON, EOF}
	if len(got) != len(want) {
		t.Fatalf("tokens = %v", got)
	}
}

func TestLexDirectives(t *testing.T) {
	toks := NewLexer("#define N 100\n#pragma omp parallel for\nx = N;").Tokens()
	if toks[0].Type != DEFINE || toks[0].Lit != "N 100" {
		t.Fatalf("define token = %v", toks[0])
	}
	if toks[1].Type != PRAGMA || toks[1].Lit != "omp parallel for" {
		t.Fatalf("pragma token = %v", toks[1])
	}
}

func TestLexDirectiveContinuation(t *testing.T) {
	toks := NewLexer("#pragma omp parallel for \\\n  private(i)\nx = 1;").Tokens()
	if toks[0].Type != PRAGMA || !strings.Contains(toks[0].Lit, "private(i)") {
		t.Fatalf("continued pragma = %v", toks[0])
	}
}

func TestLexIncludeIgnored(t *testing.T) {
	got := lexTypes(t, "#include <stdio.h>\nx = 1;")
	want := []TokenType{IDENT, ASSIGN, INT, SEMICOLON, EOF}
	if len(got) != len(want) {
		t.Fatalf("tokens = %v", got)
	}
}

func TestLexNumbers(t *testing.T) {
	cases := []struct {
		src string
		typ TokenType
		lit string
	}{
		{"42", INT, "42"},
		{"2.5", FLOAT, "2.5"},
		{".5", FLOAT, ".5"},
		{"1e6", FLOAT, "1e6"},
		{"1.5e-3", FLOAT, "1.5e-3"},
		{"3.0f", FLOAT, "3.0"},
		{"100L", INT, "100"},
		{"7u", INT, "7"},
	}
	for _, c := range cases {
		toks := NewLexer(c.src).Tokens()
		if toks[0].Type != c.typ || toks[0].Lit != c.lit {
			t.Errorf("lex(%q) = %v(%q), want %v(%q)", c.src, toks[0].Type, toks[0].Lit, c.typ, c.lit)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks := NewLexer("a = 1;\n  b = 2;").Tokens()
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Fatalf("first token pos = %v", toks[0].Pos)
	}
	// "b" is on line 2, column 3.
	var bTok Token
	for _, tok := range toks {
		if tok.Lit == "b" {
			bTok = tok
		}
	}
	if bTok.Pos.Line != 2 || bTok.Pos.Col != 3 {
		t.Fatalf("b pos = %v, want 2:3", bTok.Pos)
	}
}

func TestLexIllegal(t *testing.T) {
	toks := NewLexer("a @ b").Tokens()
	found := false
	for _, tok := range toks {
		if tok.Type == ILLEGAL {
			found = true
		}
	}
	if !found {
		t.Fatal("expected ILLEGAL token for @")
	}
}

func TestLexEmptyInput(t *testing.T) {
	toks := NewLexer("").Tokens()
	if len(toks) != 1 || toks[0].Type != EOF {
		t.Fatalf("tokens = %v", toks)
	}
	toks = NewLexer("   \n\t  ").Tokens()
	if len(toks) != 1 || toks[0].Type != EOF {
		t.Fatalf("whitespace-only tokens = %v", toks)
	}
}

func TestLexUnterminatedBlockComment(t *testing.T) {
	toks := NewLexer("x = 1; /* never closed").Tokens()
	if toks[len(toks)-1].Type != EOF {
		t.Fatal("lexer must terminate on unterminated comment")
	}
}

func TestTokenString(t *testing.T) {
	if got := (Token{Type: IDENT, Lit: "foo"}).String(); got != `IDENT("foo")` {
		t.Fatalf("Token.String = %q", got)
	}
	if got := (Token{Type: PLUSASSIGN}).String(); got != "+=" {
		t.Fatalf("Token.String = %q", got)
	}
	if got := TokenType(999).String(); !strings.Contains(got, "999") {
		t.Fatalf("unknown TokenType.String = %q", got)
	}
}
