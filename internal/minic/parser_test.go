package minic

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return p
}

func TestParseDefines(t *testing.T) {
	p := mustParse(t, `
#define N 100
#define M N * 2
#define K (M + N) / 3
`)
	for _, c := range []struct {
		name string
		want int64
	}{{"N", 100}, {"M", 200}, {"K", 100}} {
		got, ok := p.DefineValue(c.name)
		if !ok || got != c.want {
			t.Errorf("define %s = %d,%v want %d", c.name, got, ok, c.want)
		}
	}
}

func TestParseStructAndVars(t *testing.T) {
	p := mustParse(t, `
#define N 10
struct Point { double x; double y; };
struct Args { double s; struct Point pts[N]; };
struct Args args[N];
double grid[N][20];
int flags[N], counts[N];
`)
	if len(p.Structs) != 2 {
		t.Fatalf("structs = %d", len(p.Structs))
	}
	if p.Structs[1].Fields[1].Name != "pts" || p.Structs[1].Fields[1].ArrayLens[0] != 10 {
		t.Fatalf("nested struct field: %+v", p.Structs[1].Fields[1])
	}
	if len(p.Vars) != 4 {
		t.Fatalf("vars = %d", len(p.Vars))
	}
	if p.Vars[1].Name != "grid" || len(p.Vars[1].ArrayLens) != 2 || p.Vars[1].ArrayLens[1] != 20 {
		t.Fatalf("grid decl: %+v", p.Vars[1])
	}
	if p.Vars[3].Name != "counts" {
		t.Fatalf("comma-separated declarators: %+v", p.Vars[3])
	}
}

func TestParseForLoop(t *testing.T) {
	p := mustParse(t, `
#define N 8
double a[N];
for (i = 0; i < N; i++)
    a[i] = 1.0;
`)
	loops := p.Loops()
	if len(loops) != 1 {
		t.Fatalf("loops = %d", len(loops))
	}
	f := loops[0]
	if f.Var != "i" || f.CondOp != LT {
		t.Fatalf("loop header: %+v", f)
	}
	if len(f.Body) != 1 {
		t.Fatalf("body = %d stmts", len(f.Body))
	}
	as, ok := f.Body[0].(*AssignStmt)
	if !ok || as.Op != ASSIGN || as.LHS.String() != "a[i]" {
		t.Fatalf("body stmt: %#v", f.Body[0])
	}
}

func TestParseForStepForms(t *testing.T) {
	cases := []struct {
		inc  string
		want string // String of step expr
	}{
		{"i++", "1"},
		{"++i", "1"},
		{"i--", "-1"},
		{"--i", "-1"},
		{"i += 2", "2"},
		{"i -= 3", "(-3)"},
		{"i = i + 4", "4"},
		{"i = i - 5", "(-5)"},
	}
	for _, c := range cases {
		src := "double a[100];\nfor (i = 0; i < 100; " + c.inc + ") a[0] = 1.0;"
		if strings.Contains(c.inc, "--") || strings.Contains(c.inc, "-") {
			src = "double a[100];\nfor (i = 99; i > 0; " + c.inc + ") a[0] = 1.0;"
		}
		p, err := Parse(src)
		if err != nil {
			t.Errorf("%q: %v", c.inc, err)
			continue
		}
		if got := p.Loops()[0].Step.String(); got != c.want {
			t.Errorf("%q: step = %s, want %s", c.inc, got, c.want)
		}
	}
}

func TestParseC99Declaration(t *testing.T) {
	p := mustParse(t, `
double a[10];
for (int i = 0; i < 10; i++) a[i] = 0.0;
`)
	if p.Loops()[0].Var != "i" {
		t.Fatal("C99 loop declaration not handled")
	}
}

func TestParsePragmaClauses(t *testing.T) {
	p := mustParse(t, `
#define N 64
double a[N];
#pragma omp parallel for private(i, j) shared(a) schedule(static, 4) num_threads(8)
for (i = 0; i < N; i++)
    a[i] += 1.0;
`)
	f := p.Loops()[0]
	if f.Pragma == nil {
		t.Fatal("pragma not attached")
	}
	pr := f.Pragma
	if pr.Schedule != "static" {
		t.Fatalf("schedule = %q", pr.Schedule)
	}
	if pr.Chunk == nil || pr.Chunk.String() != "4" {
		t.Fatalf("chunk = %v", pr.Chunk)
	}
	if pr.NumThreads == nil || pr.NumThreads.String() != "8" {
		t.Fatalf("num_threads = %v", pr.NumThreads)
	}
	if len(pr.Private) != 2 || pr.Private[0] != "i" || pr.Private[1] != "j" {
		t.Fatalf("private = %v", pr.Private)
	}
	if len(pr.Shared) != 1 || pr.Shared[0] != "a" {
		t.Fatalf("shared = %v", pr.Shared)
	}
}

func TestParsePragmaOnInnerLoop(t *testing.T) {
	p := mustParse(t, `
#define N 16
double a[N][N];
for (j = 0; j < N; j++)
  #pragma omp parallel for private(i)
  for (i = 0; i < N; i++)
    a[j][i] = 0.0;
`)
	outer := p.Loops()[0]
	if outer.Pragma != nil {
		t.Fatal("outer loop must not carry the pragma")
	}
	inner, ok := outer.Body[0].(*ForStmt)
	if !ok || inner.Pragma == nil {
		t.Fatal("inner loop should carry the pragma")
	}
}

func TestParseIgnoredPragmas(t *testing.T) {
	p := mustParse(t, `
double a[4];
#pragma once
#pragma omp barrier
for (i = 0; i < 4; i++) a[i] = 1.0;
`)
	if p.Loops()[0].Pragma != nil {
		t.Fatal("irrelevant pragmas must not attach")
	}
}

func TestParseMemberChains(t *testing.T) {
	p := mustParse(t, `
#define N 4
struct P { double x; double y; };
struct A { double s; struct P pts[N]; };
struct A args[N];
for (j = 0; j < N; j++)
  for (i = 0; i < N; i++)
    args[j].s += args[j].pts[i].x * args[j].pts[i].y;
`)
	outer := p.Loops()[0]
	inner := outer.Body[0].(*ForStmt)
	as := inner.Body[0].(*AssignStmt)
	if as.LHS.String() != "args[j].s" {
		t.Fatalf("LHS = %s", as.LHS)
	}
	if got := as.RHS.String(); got != "(args[j].pts[i].x * args[j].pts[i].y)" {
		t.Fatalf("RHS = %s", got)
	}
}

func TestParsePrecedence(t *testing.T) {
	p := mustParse(t, `
double a[4];
a[0] = 1 + 2 * 3 - 4 / 2;
`)
	as := p.Stmts[0].(*AssignStmt)
	if got := as.RHS.String(); got != "((1 + (2 * 3)) - (4 / 2))" {
		t.Fatalf("precedence tree = %s", got)
	}
}

func TestParseUnaryAndParens(t *testing.T) {
	p := mustParse(t, `
double a[4];
a[0] = -(1 + 2) * -3;
`)
	as := p.Stmts[0].(*AssignStmt)
	if got := as.RHS.String(); got != "((-(1 + 2)) * (-3))" {
		t.Fatalf("tree = %s", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string // substring of error
	}{
		{"unterminated block", "for (i = 0; i < 4; i++) { x = 1;", "unterminated"},
		{"bad cond var", "for (i = 0; j < 4; i++) x = 1;", "condition tests"},
		{"bad step var", "for (i = 0; i < 4; j++) x = 1;", "increment"},
		{"pragma dangling", "#pragma omp parallel for\ndouble a[4];", "not attached"},
		{"pragma no loop", "#pragma omp parallel for\n", "not attached"},
		{"bad define", "#define N", "no value"},
		{"define undefined ref", "#define N M + 1", "undefined constant"},
		{"negative array len", "#define N 2\ndouble a[N - 4];", "must be positive"},
		{"unknown clause", "double a[4];\n#pragma omp parallel for collapse(2)\nfor (i = 0; i < 4; i++) a[i] = 1.0;", "unsupported OpenMP clause"},
		{"missing semicolon", "double a[4]\n", "expected ;"},
		{"illegal char", "@ b;", "illegal token"},
		{"illegal char in stmt", "a @ b;", "ILLEGAL"},
		{"div by zero define", "#define N 4 / 0", "division by zero"},
		{"stray rbrace", "}", "unexpected"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.want)
		}
	}
}

func TestParseErrorHasPosition(t *testing.T) {
	_, err := Parse("double a[4];\nfor (i = 0; j < 4; i++) a[i] = 1.0;")
	if err == nil {
		t.Fatal("expected error")
	}
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if pe.P.Line != 2 {
		t.Fatalf("error line = %d, want 2", pe.P.Line)
	}
}

func TestWalkExprs(t *testing.T) {
	p := mustParse(t, `
double a[8];
double b[8];
for (i = 0; i < 8; i++)
    a[i] += b[i] * 2.0;
`)
	var refs int
	WalkExprs(p.Stmts, func(e Expr) {
		if _, ok := e.(*RefExpr); ok {
			refs++
		}
	})
	// a[i], b[i], plus loop-bound/init/step literals have no refs; index
	// expressions contribute the two `i` refs.
	if refs != 4 {
		t.Fatalf("walked %d ref exprs, want 4", refs)
	}
}

func TestParseMultiKeywordTypes(t *testing.T) {
	p := mustParse(t, `
unsigned long big[4];
long long ll[4];
`)
	if p.Vars[0].Type.Basic != "long" {
		t.Fatalf("unsigned long = %q", p.Vars[0].Type.Basic)
	}
}

func TestParseTopLevelAssignment(t *testing.T) {
	p := mustParse(t, `
double s;
s = 3.5;
`)
	if len(p.Stmts) != 1 {
		t.Fatalf("stmts = %d", len(p.Stmts))
	}
}

func TestDefineUsedInBounds(t *testing.T) {
	p := mustParse(t, `
#define N 16
double a[N];
for (i = 0; i < N - 1; i++) a[i] = 0.0;
`)
	f := p.Loops()[0]
	if got := f.Bound.String(); got != "(N - 1)" {
		t.Fatalf("bound = %s", got)
	}
}

func TestASTNodeAccessors(t *testing.T) {
	p := mustParse(t, `
#define K 2
double a[4];
for (i = 0; i < 4; i++)
    a[i] = -1.5 + K;
`)
	f := p.Loops()[0]
	if f.Pos().Line == 0 {
		t.Fatal("for position missing")
	}
	as := f.Body[0].(*AssignStmt)
	if as.Pos().Line == 0 {
		t.Fatal("assign position missing")
	}
	rhs := as.RHS.(*BinaryExpr)
	if rhs.Pos().Line == 0 {
		t.Fatal("binary position missing")
	}
	un := rhs.X.(*UnaryExpr)
	if un.Pos().Line == 0 || un.X.Pos().Line == 0 {
		t.Fatal("unary/literal positions missing")
	}
	kRef := rhs.Y.(*RefExpr)
	if kRef.Pos().Line == 0 || !kRef.IsScalar() {
		t.Fatal("ref accessor wrong")
	}
	lit := un.X.(*FloatLit)
	if lit.String() != "1.5" {
		t.Fatalf("float lit string = %q", lit.String())
	}
	intLit := f.Init.(*IntLit)
	if intLit.String() != "0" || intLit.Pos().Line == 0 {
		t.Fatal("int lit accessors wrong")
	}
	if (TypeSpec{Struct: "S"}).String() != "struct S" {
		t.Fatal("TypeSpec string wrong")
	}
	if (TypeSpec{Basic: "double"}).String() != "double" {
		t.Fatal("TypeSpec string wrong")
	}
}

func TestEvalConstErrorForms(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"#define F 1.5\n", "floating point"},
		{"#define N 4\ndouble a[N % 0];", "modulo by zero"},
		{"struct S { double x; };\nstruct S s[1];\n#define Q 1\ndouble b[s[0].x];", "non-constant"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%q: err = %v, want %q", c.src, err, c.want)
		}
	}
}

func TestParseStructErrors(t *testing.T) {
	cases := []string{
		"struct S { double };",        // missing field name
		"struct S { double x; }",      // missing trailing semicolon
		"struct S { nosuchtype x; };", // unknown field type
		"struct S { double x, };",     // trailing comma
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%q: expected error", src)
		}
	}
}

func TestParseForErrors(t *testing.T) {
	cases := []string{
		"for i = 0; i < 4; i++) x = 1;",        // missing (
		"for (i 0; i < 4; i++) x = 1;",         // missing =
		"for (i = 0 i < 4; i++) x = 1;",        // missing ;
		"for (i = 0; i ** 4; i++) x = 1;",      // bad cond op
		"for (i = 0; i < 4; j = j + 1) x = 1;", // wrong increment var
		"for (i = 0; i < 4; i = j + 1) x = 1;", // wrong increment form
		"for (i = 0; i < 4; i++ x = 1;",        // missing )
	}
	for _, src := range cases {
		if _, err := Parse("double x;\n" + src); err == nil {
			t.Errorf("%q: expected error", src)
		}
	}
}

func TestPragmaScheduleWithoutChunk(t *testing.T) {
	p := mustParse(t, `
double a[8];
#pragma omp parallel for schedule(dynamic)
for (i = 0; i < 8; i++) a[i] = 1.0;
`)
	pr := p.Loops()[0].Pragma
	if pr.Schedule != "dynamic" || pr.Chunk != nil {
		t.Fatalf("pragma = %+v", pr)
	}
}

func TestPragmaBadClauses(t *testing.T) {
	cases := []string{
		"#pragma omp parallel for schedule(static,)\nfor (i = 0; i < 4; i++) a[i] = 1.0;",
		"#pragma omp parallel for num_threads()\nfor (i = 0; i < 4; i++) a[i] = 1.0;",
		"#pragma omp parallel for private i)\nfor (i = 0; i < 4; i++) a[i] = 1.0;",
	}
	for _, src := range cases {
		if _, err := Parse("double a[4];\n" + src); err == nil {
			t.Errorf("%q: expected error", src)
		}
	}
}

func TestPeekNBeyondEOF(t *testing.T) {
	p := &Parser{toks: NewLexer("x").Tokens()}
	if p.peekN(10).Type != EOF {
		t.Fatal("peekN past end should return EOF")
	}
}

// TestParserNeverPanics feeds mutated variants of valid programs to the
// parser: it may reject them, but it must never panic.
func TestParserNeverPanics(t *testing.T) {
	seeds := []string{
		"#define N 8\ndouble a[N];\n#pragma omp parallel for schedule(static,1)\nfor (i = 0; i < N; i++) a[i] += 1.0;",
		"struct P { double x; double y; };\nstruct P p[4];\nfor (i = 0; i < 4; i++) p[i].x = p[i].y * 2.0;",
		"for (j = 0; j < 4; j++)\n  for (i = j; i < 4; i++)\n    ;",
	}
	junk := []byte("{}[]();=+-*/%<>!#.,1aZ \n\t\"")
	r := uint64(12345)
	next := func(n int) int {
		r = r*6364136223846793005 + 1442695040888963407
		return int(r>>33) % n
	}
	for _, seed := range seeds {
		for trial := 0; trial < 2000; trial++ {
			b := []byte(seed)
			for k := 0; k < 1+next(4); k++ {
				switch next(3) {
				case 0: // mutate a byte
					b[next(len(b))] = junk[next(len(junk))]
				case 1: // delete a byte
					i := next(len(b))
					b = append(b[:i], b[i+1:]...)
				case 2: // insert a byte
					i := next(len(b))
					b = append(b[:i], append([]byte{junk[next(len(junk))]}, b[i:]...)...)
				}
				if len(b) == 0 {
					b = []byte("x")
				}
			}
			func() {
				defer func() {
					if rec := recover(); rec != nil {
						t.Fatalf("parser panicked on %q: %v", b, rec)
					}
				}()
				_, _ = Parse(string(b))
			}()
		}
	}
}
