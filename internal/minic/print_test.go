package minic_test

// Round-trip property tests for the printer: for every corpus source that
// parses, Print must produce source that (a) re-parses, (b) is a fixed
// point of Print∘Parse, and (c) lowers to loopir nests identical to the
// original's, with identical closed-form analysis verdicts. The tuner
// leans on exactly this property when it scores a transformed AST by
// printing and re-lowering it.

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/loopir"
	"repro/internal/machine"
	"repro/internal/minic"
)

// corpusSources collects every mini-C source the repo ships: testdata/,
// examples/**/*.c, and the checked-in fuzz corpora.
func corpusSources(tb testing.TB) map[string]string {
	tb.Helper()
	srcs := make(map[string]string)
	for _, pat := range []string{
		filepath.Join("..", "..", "testdata", "*.c"),
		filepath.Join("..", "..", "examples", "*", "*.c"),
	} {
		paths, err := filepath.Glob(pat)
		if err != nil {
			tb.Fatal(err)
		}
		for _, p := range paths {
			data, err := os.ReadFile(p)
			if err != nil {
				tb.Fatal(err)
			}
			srcs[p] = string(data)
		}
	}
	corpus, err := filepath.Glob(filepath.Join("testdata", "fuzz", "*", "*"))
	if err != nil {
		tb.Fatal(err)
	}
	for _, p := range corpus {
		if s, ok := decodeFuzzCorpus(p); ok {
			srcs[p] = s
		}
	}
	if len(srcs) < 10 {
		tb.Fatalf("suspiciously small corpus: %d sources", len(srcs))
	}
	return srcs
}

// decodeFuzzCorpus extracts the single string datum from a Go fuzz corpus
// file ("go test fuzz v1\nstring(...)").
func decodeFuzzCorpus(path string) (string, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", false
	}
	lines := strings.SplitN(string(data), "\n", 3)
	if len(lines) < 2 || !strings.HasPrefix(lines[0], "go test fuzz") {
		return "", false
	}
	body := strings.TrimSpace(strings.Join(lines[1:], "\n"))
	if !strings.HasPrefix(body, "string(") || !strings.HasSuffix(body, ")") {
		return "", false
	}
	s, err := strconv.Unquote(body[len("string(") : len(body)-1])
	if err != nil {
		return "", false
	}
	return s, true
}

// lowerSignature renders a position-independent fingerprint of a
// program's lowered form: nest structure plus symbol layout.
func lowerSignature(tb testing.TB, p *minic.Program) (string, bool) {
	tb.Helper()
	unit, err := loopir.Lower(p, loopir.LowerOptions{AllowNonAffine: true, SymbolicBounds: true})
	if err != nil {
		return "", false
	}
	var b strings.Builder
	for _, sym := range unit.SymOrder {
		b.WriteString(sym.Name)
		b.WriteString(":")
		b.WriteString(strconv.FormatInt(sym.Base, 10))
		b.WriteString("\n")
	}
	for _, n := range unit.Nests {
		b.WriteString(n.String())
		b.WriteString("\n")
	}
	return b.String(), true
}

// verdictSignature renders the closed-form diagnostics of a unit in a
// position-independent form (codes, nests, refs, counts).
func verdictSignature(tb testing.TB, p *minic.Program) (string, bool) {
	tb.Helper()
	unit, err := loopir.Lower(p, loopir.LowerOptions{AllowNonAffine: true, SymbolicBounds: true})
	if err != nil {
		return "", false
	}
	rep, err := analysis.Analyze(unit, analysis.Config{Machine: machine.Paper48()})
	if err != nil {
		return "", false
	}
	var b strings.Builder
	for _, d := range rep.Diagnostics {
		b.WriteString(d.Code)
		b.WriteString("|")
		b.WriteString(strconv.Itoa(d.Nest))
		b.WriteString("|")
		b.WriteString(d.Ref)
		b.WriteString("|")
		b.WriteString(strconv.FormatInt(d.Straddles, 10))
		b.WriteString("|")
		b.WriteString(strconv.FormatInt(d.SuggestedChunk, 10))
		b.WriteString("|")
		b.WriteString(strconv.FormatInt(d.PadBytes, 10))
		b.WriteString("\n")
	}
	return b.String(), true
}

// checkRoundTrip asserts the full property for one source; returns false
// if the source does not parse (not a printer concern).
func checkRoundTrip(t *testing.T, name, src string) bool {
	t.Helper()
	p1, err := minic.Parse(src)
	if err != nil {
		return false
	}
	printed := minic.Print(p1)
	p2, err := minic.Parse(printed)
	if err != nil {
		t.Errorf("%s: printed source does not re-parse: %v\n--- printed ---\n%s", name, err, printed)
		return true
	}
	if again := minic.Print(p2); again != printed {
		t.Errorf("%s: Print is not a fixed point\n--- first ---\n%s\n--- second ---\n%s", name, printed, again)
		return true
	}
	sig1, ok1 := lowerSignature(t, p1)
	sig2, ok2 := lowerSignature(t, p2)
	if ok1 != ok2 {
		t.Errorf("%s: lowering disagrees across round trip (orig ok=%v, printed ok=%v)", name, ok1, ok2)
		return true
	}
	if ok1 && sig1 != sig2 {
		t.Errorf("%s: lowered nests differ across round trip\n--- original ---\n%s\n--- round-tripped ---\n%s\n--- printed source ---\n%s",
			name, sig1, sig2, printed)
	}
	v1, okv1 := verdictSignature(t, p1)
	v2, okv2 := verdictSignature(t, p2)
	if okv1 != okv2 {
		t.Errorf("%s: analysis disagrees across round trip (orig ok=%v, printed ok=%v)", name, okv1, okv2)
		return true
	}
	if okv1 && v1 != v2 {
		t.Errorf("%s: analysis verdicts differ across round trip\n--- original ---\n%s\n--- round-tripped ---\n%s", name, v1, v2)
	}
	return true
}

func TestPrintRoundTripCorpus(t *testing.T) {
	parsed := 0
	for name, src := range corpusSources(t) {
		if checkRoundTrip(t, name, src) {
			parsed++
		}
	}
	if parsed < 8 {
		t.Fatalf("only %d corpus sources parsed; round-trip coverage too thin", parsed)
	}
}

// TestPrintEdgeCases pins the printer decisions that a careless change
// would silently regress: float literals must stay floats, unit steps
// print as ++/--, negative steps as -=, unary chains re-lex safely, and
// default static schedules omit the clause.
func TestPrintEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []string
	}{
		{"float stays float", "x = 1.0;", []string{"x = 1.0;"}},
		{"float exponent", "x = 1e10;", []string{"1e+10"}},
		{"unit step", "for (i = 0; i < 8; i++) x = 1;", []string{"i++"}},
		{"down step", "for (i = 8; i > 0; i--) x = 1;", []string{"i--"}},
		{"negative big step", "for (i = 8; i > 0; i -= 2) x = 1;", []string{"i -= 2"}},
		{"unary operand parens", "x = - - 1;", []string{"-(-(1))"}},
		{"right assoc preserved", "x = 1 + (2 + 3);", []string{"1 + (2 + 3)"}},
		{"left assoc bare", "x = 1 + 2 + 3;", []string{"x = 1 + 2 + 3;"}},
		{"default schedule omitted", "#pragma omp parallel for\nfor (i = 0; i < 8; i++) x = 1;", []string{"#pragma omp parallel for\n"}},
		{"chunked schedule kept", "#pragma omp parallel for schedule(static,4)\nfor (i = 0; i < 8; i++) x = 1;", []string{"schedule(static,4)"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := "double x;\ndouble a[16];\n" + tc.src
			p, err := minic.Parse(src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			printed := minic.Print(p)
			for _, w := range tc.want {
				if !strings.Contains(printed, w) {
					t.Errorf("printed source missing %q:\n%s", w, printed)
				}
			}
			if !checkRoundTrip(t, tc.name, src) {
				t.Fatalf("source unexpectedly failed to parse")
			}
		})
	}
}

func TestLeadingComments(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"// a\n// b\ndouble x;\n", "// a\n// b\n"},
		{"/* block\n   comment */\ndouble x;", "/* block\n   comment */"},
		{"/* a */\n\n// b\ndouble x;", "/* a */\n\n// b\n"},
		{"double x;\n// trailing", ""},
		{"", ""},
		{"/* unterminated", ""},
	}
	for _, tc := range cases {
		if got := minic.LeadingComments(tc.src); got != tc.want {
			t.Errorf("LeadingComments(%q) = %q, want %q", tc.src, got, tc.want)
		}
	}
}

// TestPrintWithHeader checks header carry-over composes with parsing.
func TestPrintWithHeader(t *testing.T) {
	src := "// kernel: demo\ndouble a[8];\nfor (i = 0; i < 8; i++) a[i] = 0.0;\n"
	p, err := minic.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	out := minic.PrintOpts(p, minic.PrintOptions{Header: minic.LeadingComments(src)})
	if !strings.HasPrefix(out, "// kernel: demo\n\n") {
		t.Errorf("header not carried over:\n%s", out)
	}
	if _, err := minic.Parse(out); err != nil {
		t.Errorf("headered output does not parse: %v", err)
	}
}

// FuzzPrintRoundTrip is the satellite fuzz target: any input that parses
// must print to source that re-parses, is a Print fixed point, and lowers
// identically.
func FuzzPrintRoundTrip(f *testing.F) {
	for name, src := range corpusSources(f) {
		_ = name
		f.Add(src)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p1, err := minic.Parse(src)
		if err != nil {
			t.Skip()
		}
		printed := minic.Print(p1)
		p2, err := minic.Parse(printed)
		if err != nil {
			t.Fatalf("printed source does not re-parse: %v\n--- printed ---\n%s", err, printed)
		}
		if again := minic.Print(p2); again != printed {
			t.Fatalf("Print not a fixed point\n--- first ---\n%s\n--- second ---\n%s", printed, again)
		}
		u1, err1 := loopir.Lower(p1, loopir.LowerOptions{AllowNonAffine: true, SymbolicBounds: true})
		u2, err2 := loopir.Lower(p2, loopir.LowerOptions{AllowNonAffine: true, SymbolicBounds: true})
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("lowering disagrees: orig err=%v, printed err=%v", err1, err2)
		}
		if err1 != nil {
			return
		}
		if len(u1.Nests) != len(u2.Nests) {
			t.Fatalf("nest count differs: %d vs %d", len(u1.Nests), len(u2.Nests))
		}
		for i := range u1.Nests {
			if u1.Nests[i].String() != u2.Nests[i].String() {
				t.Fatalf("nest %d differs\n--- original ---\n%s\n--- round-tripped ---\n%s",
					i, u1.Nests[i].String(), u2.Nests[i].String())
			}
		}
	})
}
