package minic

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseError is a syntax or semantic error with a source position.
type ParseError struct {
	P   Pos
	Msg string
}

// Error implements the error interface.
func (e *ParseError) Error() string { return fmt.Sprintf("%s: %s", e.P, e.Msg) }

var basicTypes = map[string]bool{
	"char": true, "short": true, "int": true, "long": true,
	"float": true, "double": true, "unsigned": true, "signed": true,
	"size_t": true,
}

// Recursion limits. The parser is recursive descent, so crafted inputs —
// kilobytes of "(" or thousands of nested for loops — could otherwise
// exhaust the goroutine stack, which is not recoverable in Go (no defer
// or recover runs; the process dies). The limits sit far above anything
// a real kernel writes and turn such inputs into ordinary ParseErrors.
const (
	maxExprDepth = 200
	maxForDepth  = 64
)

// Parser turns a token stream into a Program. Parsers are single use.
type Parser struct {
	toks    []Token
	pos     int
	defines map[string]int64
	prog    *Program

	exprDepth int // live parseExpr/parseUnary recursion depth
	forDepth  int // live for-loop nesting depth
}

// Parse parses mini-C source text into a Program.
func Parse(src string) (*Program, error) {
	p := &Parser{
		toks:    NewLexer(src).Tokens(),
		defines: make(map[string]int64),
		prog:    &Program{},
	}
	if err := p.parseProgram(); err != nil {
		return nil, err
	}
	return p.prog, nil
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) peekN(n int) Token {
	if p.pos+n >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+n]
}

func (p *Parser) errf(pos Pos, format string, args ...any) error {
	return &ParseError{P: pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *Parser) expect(t TokenType) (Token, error) {
	if p.cur().Type != t {
		return Token{}, p.errf(p.cur().Pos, "expected %s, found %s", t, p.cur())
	}
	return p.next(), nil
}

func (p *Parser) parseProgram() error {
	var pendingPragma *OMPPragma
	for p.cur().Type != EOF {
		t := p.cur()
		switch {
		case t.Type == ILLEGAL:
			return p.errf(t.Pos, "illegal token %q", t.Lit)
		case t.Type == DEFINE:
			p.next()
			if err := p.handleDefine(t); err != nil {
				return err
			}
		case t.Type == PRAGMA:
			p.next()
			pr, err := p.parsePragma(t)
			if err != nil {
				return err
			}
			if pr != nil {
				if pendingPragma != nil {
					return p.errf(t.Pos, "pragma not attached to a for loop")
				}
				pendingPragma = pr
			}
		case t.Type == IDENT && t.Lit == "struct" && p.looksLikeStructDecl():
			if err := p.parseStructDecl(); err != nil {
				return err
			}
		case p.startsDecl():
			if err := p.parseVarDecl(); err != nil {
				return err
			}
		case t.Type == IDENT && t.Lit == "for":
			f, err := p.parseFor(pendingPragma)
			if err != nil {
				return err
			}
			pendingPragma = nil
			p.prog.Stmts = append(p.prog.Stmts, f)
		case t.Type == IDENT:
			s, err := p.parseAssign()
			if err != nil {
				return err
			}
			p.prog.Stmts = append(p.prog.Stmts, s)
		default:
			return p.errf(t.Pos, "unexpected %s at top level", t)
		}
	}
	if pendingPragma != nil {
		return p.errf(pendingPragma.P, "pragma at end of file not attached to a for loop")
	}
	return nil
}

// looksLikeStructDecl distinguishes "struct X { ... };" (a declaration of
// the type) from "struct X y[...]" (a variable declaration).
func (p *Parser) looksLikeStructDecl() bool {
	return p.peekN(1).Type == IDENT && p.peekN(2).Type == LBRACE
}

// startsDecl reports whether the upcoming tokens begin a variable
// declaration: a basic type name or "struct X" followed by an identifier.
func (p *Parser) startsDecl() bool {
	t := p.cur()
	if t.Type != IDENT {
		return false
	}
	if t.Lit == "struct" {
		return p.peekN(1).Type == IDENT && p.peekN(2).Type == IDENT
	}
	if !basicTypes[t.Lit] {
		return false
	}
	// Skip over any further type keywords ("unsigned long", "long long").
	i := 1
	for p.peekN(i).Type == IDENT && basicTypes[p.peekN(i).Lit] {
		i++
	}
	return p.peekN(i).Type == IDENT
}

// handleDefine parses "#define NAME expr" where expr is a constant
// expression over previously defined names.
func (p *Parser) handleDefine(t Token) error {
	fields := strings.SplitN(t.Lit, " ", 2)
	if len(fields) < 1 || fields[0] == "" {
		return p.errf(t.Pos, "malformed #define")
	}
	// Re-split on any whitespace to be robust against tabs.
	all := strings.Fields(t.Lit)
	if len(all) < 2 {
		return p.errf(t.Pos, "#define %s has no value", all[0])
	}
	name := all[0]
	valueSrc := strings.TrimSpace(strings.TrimPrefix(t.Lit, name))
	sub := &Parser{toks: NewLexer(valueSrc).Tokens(), defines: p.defines, prog: p.prog}
	e, err := sub.parseExpr()
	if err != nil {
		return p.errf(t.Pos, "#define %s: bad value %q: %v", name, valueSrc, err)
	}
	if sub.cur().Type != EOF {
		return p.errf(t.Pos, "#define %s: trailing tokens in value %q", name, valueSrc)
	}
	v, err := p.evalConst(e)
	if err != nil {
		return p.errf(t.Pos, "#define %s: %v", name, err)
	}
	p.defines[name] = v
	p.prog.Defines = append(p.prog.Defines, &Define{Name: name, Value: v, P: t.Pos})
	return nil
}

// evalConst evaluates a constant integer expression; identifiers must be
// previously #defined names.
func (p *Parser) evalConst(e Expr) (int64, error) {
	switch v := e.(type) {
	case *IntLit:
		return v.Value, nil
	case *FloatLit:
		return 0, p.errf(v.P, "floating point value in integer constant expression")
	case *RefExpr:
		if !v.IsScalar() {
			return 0, p.errf(v.P, "non-constant reference %s in constant expression", v)
		}
		if val, ok := p.defines[v.Name]; ok {
			return val, nil
		}
		return 0, p.errf(v.P, "undefined constant %q", v.Name)
	case *UnaryExpr:
		x, err := p.evalConst(v.X)
		if err != nil {
			return 0, err
		}
		return -x, nil
	case *BinaryExpr:
		x, err := p.evalConst(v.X)
		if err != nil {
			return 0, err
		}
		y, err := p.evalConst(v.Y)
		if err != nil {
			return 0, err
		}
		switch v.Op {
		case PLUS:
			return x + y, nil
		case MINUS:
			return x - y, nil
		case STAR:
			return x * y, nil
		case SLASH:
			if y == 0 {
				return 0, p.errf(v.P, "division by zero in constant expression")
			}
			return x / y, nil
		case PERCENT:
			if y == 0 {
				return 0, p.errf(v.P, "modulo by zero in constant expression")
			}
			return x % y, nil
		}
		return 0, p.errf(v.P, "operator %s not allowed in constant expression", v.Op)
	}
	return 0, fmt.Errorf("unsupported constant expression")
}

// parsePragma parses the payload of a "#pragma ..." line. Pragmas other
// than "omp parallel for" / "omp for" are ignored (nil result).
func (p *Parser) parsePragma(t Token) (*OMPPragma, error) {
	fields := strings.Fields(t.Lit)
	if len(fields) == 0 || fields[0] != "omp" {
		return nil, nil
	}
	rest := fields[1:]
	switch {
	case len(rest) >= 2 && rest[0] == "parallel" && rest[1] == "for":
		rest = rest[2:]
	case len(rest) >= 1 && rest[0] == "for":
		rest = rest[1:]
	default:
		return nil, nil // e.g. "#pragma omp barrier" — irrelevant here
	}
	pr := &OMPPragma{Schedule: "static", P: t.Pos}
	clauseSrc := strings.Join(rest, " ")
	sub := &Parser{toks: NewLexer(clauseSrc).Tokens(), defines: p.defines, prog: p.prog}
	for sub.cur().Type != EOF {
		name, err := sub.expect(IDENT)
		if err != nil {
			return nil, p.errf(t.Pos, "bad pragma clause: %v", err)
		}
		switch name.Lit {
		case "private", "shared", "firstprivate", "lastprivate", "reduction":
			if _, err := sub.expect(LPAREN); err != nil {
				return nil, p.errf(t.Pos, "%s clause: %v", name.Lit, err)
			}
			var vars []string
			for sub.cur().Type != RPAREN && sub.cur().Type != EOF {
				tok := sub.next()
				if tok.Type == IDENT {
					vars = append(vars, tok.Lit)
				}
			}
			if _, err := sub.expect(RPAREN); err != nil {
				return nil, p.errf(t.Pos, "%s clause: %v", name.Lit, err)
			}
			if name.Lit == "private" || name.Lit == "firstprivate" {
				pr.Private = append(pr.Private, vars...)
			} else if name.Lit == "shared" {
				pr.Shared = append(pr.Shared, vars...)
			}
		case "schedule":
			if _, err := sub.expect(LPAREN); err != nil {
				return nil, p.errf(t.Pos, "schedule clause: %v", err)
			}
			kind, err := sub.expect(IDENT)
			if err != nil {
				return nil, p.errf(t.Pos, "schedule clause: %v", err)
			}
			pr.Schedule = kind.Lit
			if sub.cur().Type == COMMA {
				sub.next()
				chunk, err := sub.parseExpr()
				if err != nil {
					return nil, p.errf(t.Pos, "schedule chunk: %v", err)
				}
				pr.Chunk = chunk
			}
			if _, err := sub.expect(RPAREN); err != nil {
				return nil, p.errf(t.Pos, "schedule clause: %v", err)
			}
		case "num_threads":
			if _, err := sub.expect(LPAREN); err != nil {
				return nil, p.errf(t.Pos, "num_threads clause: %v", err)
			}
			n, err := sub.parseExpr()
			if err != nil {
				return nil, p.errf(t.Pos, "num_threads clause: %v", err)
			}
			pr.NumThreads = n
			if _, err := sub.expect(RPAREN); err != nil {
				return nil, p.errf(t.Pos, "num_threads clause: %v", err)
			}
		default:
			return nil, p.errf(t.Pos, "unsupported OpenMP clause %q", name.Lit)
		}
		if sub.cur().Type == COMMA {
			sub.next()
		}
	}
	return pr, nil
}

// parseTypeSpec parses a type specifier, collapsing multi-keyword basic
// types ("unsigned long") into their last keyword.
func (p *Parser) parseTypeSpec() (TypeSpec, error) {
	t := p.cur()
	if t.Type != IDENT {
		return TypeSpec{}, p.errf(t.Pos, "expected type name, found %s", t)
	}
	if t.Lit == "struct" {
		p.next()
		name, err := p.expect(IDENT)
		if err != nil {
			return TypeSpec{}, err
		}
		return TypeSpec{Struct: name.Lit}, nil
	}
	if !basicTypes[t.Lit] {
		return TypeSpec{}, p.errf(t.Pos, "unknown type %q", t.Lit)
	}
	last := p.next().Lit
	for p.cur().Type == IDENT && basicTypes[p.cur().Lit] {
		last = p.next().Lit
	}
	if last == "unsigned" || last == "signed" {
		last = "int"
	}
	return TypeSpec{Basic: last}, nil
}

// parseArrayLens parses zero or more "[constexpr]" suffixes.
func (p *Parser) parseArrayLens() ([]int64, error) {
	var lens []int64
	for p.cur().Type == LBRACKET {
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		n, err := p.evalConst(e)
		if err != nil {
			return nil, err
		}
		if n <= 0 {
			return nil, p.errf(p.cur().Pos, "array length must be positive, got %d", n)
		}
		if _, err := p.expect(RBRACKET); err != nil {
			return nil, err
		}
		lens = append(lens, n)
	}
	return lens, nil
}

func (p *Parser) parseStructDecl() error {
	p.next() // struct
	name, err := p.expect(IDENT)
	if err != nil {
		return err
	}
	if _, err := p.expect(LBRACE); err != nil {
		return err
	}
	decl := &StructDecl{Name: name.Lit, P: name.Pos}
	for p.cur().Type != RBRACE {
		ts, err := p.parseTypeSpec()
		if err != nil {
			return err
		}
		for {
			fname, err := p.expect(IDENT)
			if err != nil {
				return err
			}
			lens, err := p.parseArrayLens()
			if err != nil {
				return err
			}
			decl.Fields = append(decl.Fields, &FieldDecl{Type: ts, Name: fname.Lit, ArrayLens: lens, P: fname.Pos})
			if p.cur().Type != COMMA {
				break
			}
			p.next()
		}
		if _, err := p.expect(SEMICOLON); err != nil {
			return err
		}
	}
	p.next() // }
	if _, err := p.expect(SEMICOLON); err != nil {
		return err
	}
	p.prog.Structs = append(p.prog.Structs, decl)
	return nil
}

func (p *Parser) parseVarDecl() error {
	ts, err := p.parseTypeSpec()
	if err != nil {
		return err
	}
	for {
		name, err := p.expect(IDENT)
		if err != nil {
			return err
		}
		lens, err := p.parseArrayLens()
		if err != nil {
			return err
		}
		p.prog.Vars = append(p.prog.Vars, &VarDecl{Type: ts, Name: name.Lit, ArrayLens: lens, P: name.Pos})
		if p.cur().Type != COMMA {
			break
		}
		p.next()
	}
	_, err = p.expect(SEMICOLON)
	return err
}

// parseFor parses a canonical counted for loop, with an optional pragma
// already parsed and passed in.
func (p *Parser) parseFor(pragma *OMPPragma) (*ForStmt, error) {
	kw := p.next() // "for"
	p.forDepth++
	defer func() { p.forDepth-- }()
	if p.forDepth > maxForDepth {
		return nil, p.errf(kw.Pos, "for loops nested deeper than %d levels", maxForDepth)
	}
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	// Optional C99-style "int i = ..." declaration of the index variable.
	if p.cur().Type == IDENT && basicTypes[p.cur().Lit] {
		if _, err := p.parseTypeSpec(); err != nil {
			return nil, err
		}
	}
	v, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(ASSIGN); err != nil {
		return nil, err
	}
	initE, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(SEMICOLON); err != nil {
		return nil, err
	}
	cv, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if cv.Lit != v.Lit {
		return nil, p.errf(cv.Pos, "loop condition tests %q, expected index variable %q", cv.Lit, v.Lit)
	}
	condTok := p.next()
	switch condTok.Type {
	case LT, LE, GT, GE, NEQ:
	default:
		return nil, p.errf(condTok.Pos, "unsupported loop condition operator %s", condTok)
	}
	bound, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(SEMICOLON); err != nil {
		return nil, err
	}
	step, err := p.parseForStep(v.Lit)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	body, err := p.parseBody()
	if err != nil {
		return nil, err
	}
	return &ForStmt{
		Pragma: pragma,
		Var:    v.Lit,
		Init:   initE,
		CondOp: condTok.Type,
		Bound:  bound,
		Step:   step,
		Body:   body,
		P:      kw.Pos,
	}, nil
}

// parseForStep parses the increment clause: i++, ++i, i--, --i, i += e,
// i -= e, i = i + e, i = i - e. It returns the signed step expression.
func (p *Parser) parseForStep(v string) (Expr, error) {
	pos := p.cur().Pos
	neg := func(e Expr) Expr { return &UnaryExpr{Op: MINUS, X: e, P: e.Pos()} }
	switch p.cur().Type {
	case INC: // ++i
		p.next()
		if tok, err := p.expect(IDENT); err != nil || tok.Lit != v {
			return nil, p.errf(pos, "prefix increment must apply to index variable %q", v)
		}
		return &IntLit{Value: 1, P: pos}, nil
	case DEC: // --i
		p.next()
		if tok, err := p.expect(IDENT); err != nil || tok.Lit != v {
			return nil, p.errf(pos, "prefix decrement must apply to index variable %q", v)
		}
		return &IntLit{Value: -1, P: pos}, nil
	case IDENT:
		tok := p.next()
		if tok.Lit != v {
			return nil, p.errf(tok.Pos, "loop increment updates %q, expected index variable %q", tok.Lit, v)
		}
		switch p.cur().Type {
		case INC:
			p.next()
			return &IntLit{Value: 1, P: pos}, nil
		case DEC:
			p.next()
			return &IntLit{Value: -1, P: pos}, nil
		case PLUSASSIGN:
			p.next()
			return p.parseExpr()
		case MINUSASSIGN:
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return neg(e), nil
		case ASSIGN:
			p.next()
			lhs, err := p.expect(IDENT)
			if err != nil || lhs.Lit != v {
				return nil, p.errf(pos, "loop increment must have the form %s = %s +/- step", v, v)
			}
			op := p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			switch op.Type {
			case PLUS:
				return e, nil
			case MINUS:
				return neg(e), nil
			}
			return nil, p.errf(op.Pos, "loop increment must add or subtract a step")
		}
	}
	return nil, p.errf(pos, "unsupported loop increment")
}

// parseBody parses either a braced statement list or a single statement.
func (p *Parser) parseBody() ([]Stmt, error) {
	if p.cur().Type == LBRACE {
		p.next()
		var stmts []Stmt
		for p.cur().Type != RBRACE {
			if p.cur().Type == EOF {
				return nil, p.errf(p.cur().Pos, "unterminated block")
			}
			s, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			stmts = append(stmts, s)
		}
		p.next()
		return stmts, nil
	}
	s, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return []Stmt{s}, nil
}

// parseStmt parses one statement inside a loop body: a nested for loop
// (with optional pragma) or an assignment.
func (p *Parser) parseStmt() (Stmt, error) {
	if p.cur().Type == PRAGMA {
		t := p.next()
		pr, err := p.parsePragma(t)
		if err != nil {
			return nil, err
		}
		if p.cur().Type != IDENT || p.cur().Lit != "for" {
			return nil, p.errf(t.Pos, "pragma must be followed by a for loop")
		}
		return p.parseFor(pr)
	}
	if p.cur().Type == IDENT && p.cur().Lit == "for" {
		return p.parseFor(nil)
	}
	return p.parseAssign()
}

// parseAssign parses "ref op= expr ;".
func (p *Parser) parseAssign() (Stmt, error) {
	lhs, err := p.parseRef()
	if err != nil {
		return nil, err
	}
	op := p.next()
	switch op.Type {
	case ASSIGN, PLUSASSIGN, MINUSASSIGN, STARASSIGN, SLASHASSIGN:
	default:
		return nil, p.errf(op.Pos, "expected assignment operator, found %s", op)
	}
	rhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(SEMICOLON); err != nil {
		return nil, err
	}
	return &AssignStmt{LHS: lhs, Op: op.Type, RHS: rhs, P: lhs.P}, nil
}

// parseRef parses an identifier with its accessor chain.
func (p *Parser) parseRef() (*RefExpr, error) {
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	ref := &RefExpr{Name: name.Lit, P: name.Pos}
	ref.EndP = Pos{Line: name.Pos.Line, Col: name.Pos.Col + len(name.Lit)}
	for {
		switch p.cur().Type {
		case LBRACKET:
			p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			rb, err := p.expect(RBRACKET)
			if err != nil {
				return nil, err
			}
			end := Pos{Line: rb.Pos.Line, Col: rb.Pos.Col + 1}
			ref.Post = append(ref.Post, Postfix{Index: idx, End: end})
			ref.EndP = end
		case DOT:
			p.next()
			f, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			end := Pos{Line: f.Pos.Line, Col: f.Pos.Col + len(f.Lit)}
			ref.Post = append(ref.Post, Postfix{Field: f.Lit, End: end})
			ref.EndP = end
		default:
			return ref, nil
		}
	}
}

// Expression grammar (precedence climbing):
//
//	expr    := mul (('+'|'-') mul)*
//	mul     := unary (('*'|'/'|'%') unary)*
//	unary   := '-' unary | primary
//	primary := INT | FLOAT | '(' expr ')' | ref
func (p *Parser) parseExpr() (Expr, error) {
	p.exprDepth++
	defer func() { p.exprDepth-- }()
	if p.exprDepth > maxExprDepth {
		return nil, p.errf(p.cur().Pos, "expression nested deeper than %d levels", maxExprDepth)
	}
	lhs, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.cur().Type == PLUS || p.cur().Type == MINUS {
		op := p.next()
		rhs, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		lhs = &BinaryExpr{Op: op.Type, X: lhs, Y: rhs, P: op.Pos}
	}
	return lhs, nil
}

func (p *Parser) parseMul() (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.cur().Type == STAR || p.cur().Type == SLASH || p.cur().Type == PERCENT {
		op := p.next()
		rhs, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		lhs = &BinaryExpr{Op: op.Type, X: lhs, Y: rhs, P: op.Pos}
	}
	return lhs, nil
}

func (p *Parser) parseUnary() (Expr, error) {
	if p.cur().Type == MINUS {
		// Unary chains ("----x") recurse without passing parseExpr, so
		// they count against the same depth limit here.
		p.exprDepth++
		defer func() { p.exprDepth-- }()
		if p.exprDepth > maxExprDepth {
			return nil, p.errf(p.cur().Pos, "expression nested deeper than %d levels", maxExprDepth)
		}
		op := p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: MINUS, X: x, P: op.Pos}, nil
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Type {
	case INT:
		p.next()
		v, err := strconv.ParseInt(t.Lit, 10, 64)
		if err != nil {
			return nil, p.errf(t.Pos, "bad integer literal %q", t.Lit)
		}
		return &IntLit{Value: v, P: t.Pos}, nil
	case FLOAT:
		p.next()
		v, err := strconv.ParseFloat(t.Lit, 64)
		if err != nil {
			return nil, p.errf(t.Pos, "bad float literal %q", t.Lit)
		}
		return &FloatLit{Value: v, P: t.Pos}, nil
	case LPAREN:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		return e, nil
	case IDENT:
		return p.parseRef()
	}
	return nil, p.errf(t.Pos, "expected expression, found %s", t)
}
