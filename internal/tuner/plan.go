package tuner

import (
	"fmt"
	"strings"

	"repro/internal/minic"
	"repro/internal/transform"
)

// Action kinds. An Action is one primitive source rewrite; a Plan is an
// ordered composition of them.
const (
	// ActionChunk rewrites the nest's schedule clause to
	// schedule(static,Chunk).
	ActionChunk = "chunk"
	// ActionPad appends a cache-line pad to the named struct
	// (transform.PadStruct).
	ActionPad = "pad"
	// ActionInterchange swaps loop levels Outer and Inner of the nest
	// (transform.Interchange; legality via transform.CanInterchange).
	ActionInterchange = "interchange"
)

// Action is one primitive transformation, tagged by Kind with the
// corresponding fields populated.
type Action struct {
	Kind     string `json:"kind"`
	Chunk    int64  `json:"chunk,omitempty"`
	Struct   string `json:"struct,omitempty"`
	PadBytes int64  `json:"pad_bytes,omitempty"`
	Outer    int    `json:"outer,omitempty"`
	Inner    int    `json:"inner,omitempty"`
}

// String renders the action for reports and diagnostics.
func (a Action) String() string {
	switch a.Kind {
	case ActionChunk:
		return fmt.Sprintf("schedule(static,%d)", a.Chunk)
	case ActionPad:
		return fmt.Sprintf("pad struct %s +%dB", a.Struct, a.PadBytes)
	case ActionInterchange:
		return fmt.Sprintf("interchange loops %d<->%d", a.Outer, a.Inner)
	}
	return "unknown action"
}

// Plan is a composition of actions applied in order.
type Plan struct {
	Actions []Action `json:"actions,omitempty"`
}

// IsNoOp reports whether the plan performs no transformation.
func (p Plan) IsNoOp() bool { return len(p.Actions) == 0 }

// String renders the plan; the empty plan reads "no-op".
func (p Plan) String() string {
	if p.IsNoOp() {
		return "no-op"
	}
	parts := make([]string, len(p.Actions))
	for i, a := range p.Actions {
		parts[i] = a.String()
	}
	return strings.Join(parts, " + ")
}

// apply runs the plan's actions against prog (never mutated) and returns
// the transformed program. Interchange runs before the chunk rewrite so a
// combined plan reschedules the post-interchange parallel loop; pads are
// independent of both.
func (p Plan) apply(prog *minic.Program, nestIdx int, lineSize int64) (*minic.Program, error) {
	out := prog
	var err error
	for _, order := range []string{ActionInterchange, ActionChunk, ActionPad} {
		for _, a := range p.Actions {
			if a.Kind != order {
				continue
			}
			switch a.Kind {
			case ActionInterchange:
				out, err = transform.Interchange(out, nestIdx, a.Outer, a.Inner)
			case ActionChunk:
				out, err = transform.SetSchedule(out, nestIdx, a.Chunk)
			case ActionPad:
				out, _, err = transform.PadStruct(out, a.Struct, lineSize)
			}
			if err != nil {
				return nil, fmt.Errorf("applying %s: %w", a, err)
			}
		}
	}
	return out, nil
}

// hasChunk reports whether the plan rewrites the schedule clause (in
// which case a caller-level chunk override must not shadow it).
func (p Plan) hasChunk() bool {
	for _, a := range p.Actions {
		if a.Kind == ActionChunk {
			return true
		}
	}
	return false
}
