// Package tuner is the search-based optimization planner the paper's
// compiler integration points toward: it enumerates composable
// transformation plans for a parallel loop nest (schedule chunk resize,
// struct padding, loop interchange, and combinations), scores every
// candidate with the closed-form FS count plus the Equation 1 cost model
// (the fast tier), prunes with a beam, verifies the surviving finalists
// against the fsmodel simulator under a resource budget (the exact tier),
// and applies the winning plan to the AST, emitting compilable
// transformed C via the minic printer together with a machine-readable
// report of every candidate considered and every plan rejected.
package tuner

import (
	"context"
	"fmt"
	"time"

	"repro/internal/analysis"
	"repro/internal/fsmodel"
	"repro/internal/guard"
	"repro/internal/loopir"
	"repro/internal/machine"
	"repro/internal/minic"
	"repro/internal/sweep"
)

// Options configures one tuning run.
type Options struct {
	// Machine is the modeled target (nil = machine.Paper48()).
	Machine *machine.Desc
	// Threads overrides the team size (0 = pragma, else machine cores).
	Threads int
	// Chunk overrides the baseline schedule chunk (0 = pragma, else the
	// OpenMP block default). Candidate plans that rewrite the schedule
	// clause are evaluated without this override.
	Chunk int64
	// Nest selects the loop nest to tune (index into the lowered unit).
	Nest int
	// Beam is how many top fast-tier candidates reach simulator
	// verification (0 = default 4).
	Beam int
	// MaxCandidates caps the enumerated search space (0 = default 32);
	// overflow is reported in Result.Warnings, never silently dropped.
	MaxCandidates int
	// Jobs bounds verification parallelism (0 = GOMAXPROCS).
	Jobs int
	// Eval selects the simulator pipeline for the exact tier.
	Eval fsmodel.EvalMode
	// Extrapolate enables steady-state chunk-run extrapolation.
	Extrapolate bool
	// Budget bounds each simulator verification (zero = unlimited).
	Budget guard.Budget
	// KeepHeader carries the source's leading comment block into the
	// emitted transformed source.
	KeepHeader bool
}

func (o Options) withDefaults() Options {
	if o.Machine == nil {
		o.Machine = machine.Paper48()
	}
	if o.Beam <= 0 {
		o.Beam = 4
	}
	if o.MaxCandidates <= 0 {
		o.MaxCandidates = 32
	}
	return o
}

// InputError marks a tuning failure caused by the input (unparsable
// source, bad nest index, sequential nest, symbolic bounds) rather than
// by the tuner; services map it to a 400.
type InputError struct{ Msg string }

func (e *InputError) Error() string { return e.Msg }

func inputErrf(format string, args ...any) error {
	return &InputError{Msg: fmt.Sprintf(format, args...)}
}

// Candidate is one scored plan. Fast-tier fields are always set;
// simulator fields only when Verified.
type Candidate struct {
	Plan        Plan   `json:"plan"`
	PlanSummary string `json:"plan_summary"`
	// ClosedFormFS is the fast tier's FS estimate: the sum of FS001
	// straddle counts for the nest. ClosedFormFindings counts all FS/race
	// findings (FS001, FS002, RC001), so zero means statically clean.
	ClosedFormFS       int64 `json:"closed_form_fs"`
	ClosedFormFindings int   `json:"closed_form_findings"`
	// PredictedCycles is Equation 1's Total_c with the closed-form FS
	// count substituted for the simulated one.
	PredictedCycles float64 `json:"predicted_cycles"`
	// Verified marks finalists that ran the exact tier.
	Verified        bool    `json:"verified"`
	SimulatedFS     int64   `json:"simulated_fs,omitempty"`
	SimulatedCycles float64 `json:"simulated_cycles,omitempty"`
	// FSDelta is SimulatedFS - ClosedFormFS for verified candidates: the
	// fast tier's prediction error on this plan.
	FSDelta int64 `json:"fs_delta,omitempty"`
}

// Rejection records a plan that left the search with the reason why
// (illegal transformation, failed application, beam pruning, failed or
// unimproving verification).
type Rejection struct {
	PlanSummary string `json:"plan_summary"`
	Reason      string `json:"reason"`
}

// Phase is one timed search stage, for the service's labeled histogram.
type Phase struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
}

// Result is the full tuning report.
type Result struct {
	Nest    int    `json:"nest"`
	Machine string `json:"machine"`
	// Threads and BaselineChunk echo the resolved baseline schedule.
	Threads       int   `json:"threads"`
	BaselineChunk int64 `json:"baseline_chunk"`
	// Plan is the chosen plan (empty = no-op); NoOp additionally marks
	// that the input needed no transformation (its simulated FS was
	// already zero) or that no candidate improved on it (see Warnings).
	Plan        Plan   `json:"plan"`
	PlanSummary string `json:"plan_summary"`
	NoOp        bool   `json:"no_op"`
	// Source is the emitted transformed program (the input program
	// re-printed when NoOp).
	Source string `json:"source"`
	// Baseline and Chosen are both simulator-verified.
	Baseline Candidate `json:"baseline"`
	Chosen   Candidate `json:"chosen"`
	// Candidates lists every plan that was fast-tier scored, in scoring
	// order; Rejected every plan that left the search, with reasons.
	Candidates []Candidate `json:"candidates,omitempty"`
	Rejected   []Rejection `json:"rejected,omitempty"`
	Phases     []Phase     `json:"phases"`
	EvalMode   string      `json:"eval_mode,omitempty"`
	Warnings   []string    `json:"warnings,omitempty"`
}

// Tune searches for the best transformation plan for one nest of src and
// returns the report plus transformed source. Budget violations, panics
// and context cancellation during baseline verification surface as
// errors (services degrade on them); per-candidate failures become
// Rejections instead.
func Tune(ctx context.Context, src string, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	prog, err := minic.Parse(src)
	if err != nil {
		return nil, inputErrf("parse: %v", err)
	}
	unit, err := lowerFor(prog, opts.Machine)
	if err != nil {
		return nil, inputErrf("lower: %v", err)
	}
	if opts.Nest < 0 || opts.Nest >= len(unit.Nests) {
		return nil, inputErrf("nest index %d out of range (%d nests)", opts.Nest, len(unit.Nests))
	}
	nest := unit.Nests[opts.Nest]
	par := nest.Parallelized()
	if par == nil {
		return nil, inputErrf("nest %d is sequential; tuning targets parallel nests", opts.Nest)
	}
	if len(nest.Params()) > 0 {
		return nil, inputErrf("nest %d has symbolic loop bounds %v; tuning requires constant trip counts", opts.Nest, nest.Params())
	}

	s := newSearch(prog, unit, opts)
	res := &Result{
		Nest:          opts.Nest,
		Machine:       opts.Machine.Name,
		Threads:       s.threads,
		BaselineChunk: s.baselineChunk(),
	}

	// Phase 1: enumerate the plan space (closed-form suggestions seed it).
	start := time.Now()
	plans := s.enumerate(res)
	res.Phases = append(res.Phases, Phase{Name: "enumerate", Seconds: time.Since(start).Seconds()})

	// Phase 2: fast tier — score every plan with closed-form FS + Eq. 1.
	start = time.Now()
	baseline, scored := s.score(res, plans)
	if baseline == nil {
		return nil, fmt.Errorf("tuner: baseline program failed fast-tier scoring (see rejections)")
	}
	res.Phases = append(res.Phases, Phase{Name: "score", Seconds: time.Since(start).Seconds()})

	// Phase 3: beam prune, then exact tier — simulator verification of
	// the finalists (and the baseline) under the budget, fanned out.
	start = time.Now()
	finalists := s.prune(res, scored)
	verify := append([]*scoredPlan{baseline}, finalists...)
	if _, err := sweep.Run(ctx, len(verify), opts.Jobs, func(ctx context.Context, i int) (struct{}, error) {
		s.verify(ctx, verify[i])
		return struct{}{}, nil
	}); err != nil {
		return nil, err
	}
	if baseline.verifyErr != nil {
		return nil, fmt.Errorf("tuner: baseline verification: %w", baseline.verifyErr)
	}
	res.Phases = append(res.Phases, Phase{Name: "verify", Seconds: time.Since(start).Seconds()})
	res.EvalMode = baseline.evalMode
	res.Baseline = baseline.cand
	for _, sp := range finalists {
		res.Candidates = appendUpdated(res.Candidates, sp.cand)
	}

	// Phase 4: decide and apply — pick the winner, re-print with the
	// preserved header.
	start = time.Now()
	winner := s.decide(res, baseline, finalists)
	var header string
	if opts.KeepHeader {
		header = minic.LeadingComments(src)
	}
	res.Source = minic.PrintOpts(winner.prog, minic.PrintOptions{Header: header})
	res.Plan = winner.cand.Plan
	res.PlanSummary = winner.cand.PlanSummary
	res.Chosen = winner.cand
	res.NoOp = winner.cand.Plan.IsNoOp()
	res.Phases = append(res.Phases, Phase{Name: "apply", Seconds: time.Since(start).Seconds()})
	return res, nil
}

// lowerFor lowers with the machine's line size, tolerating non-affine
// refs (the simulator skips them) and symbolic bounds (rejected later
// with a precise message).
func lowerFor(prog *minic.Program, m *machine.Desc) (*loopir.Unit, error) {
	return loopir.Lower(prog, loopir.LowerOptions{
		LineSize:       m.LineSize,
		AllowNonAffine: true,
		SymbolicBounds: true,
	})
}

// appendUpdated replaces the matching-summary entry (scored earlier in
// Candidates) with its verified version, appending if absent.
func appendUpdated(cands []Candidate, c Candidate) []Candidate {
	for i := range cands {
		if cands[i].PlanSummary == c.PlanSummary {
			cands[i] = c
			return cands
		}
	}
	return append(cands, c)
}

// severity ordering helper shared with the service layer.
func fsFindingCode(code string) bool {
	return code == analysis.CodeFSWrite || code == analysis.CodeFSPair || code == analysis.CodeRace
}
