package tuner

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/analysis"
	"repro/internal/costmodel"
	"repro/internal/fsmodel"
	"repro/internal/guard"
	"repro/internal/loopir"
	"repro/internal/minic"
	"repro/internal/sched"
	"repro/internal/transform"
)

// chunkSeeds is the power-of-two ladder the enumerator always considers;
// the closed-form FIX-CHUNK suggestion is added on top.
var chunkSeeds = []int64{2, 4, 8, 16, 32, 64, 128}

// scoredPlan carries one candidate through the pipeline: the transformed
// AST, its printed source (exactly what would be emitted), the lowered
// unit both tiers analyze, and the effective chunk override.
type scoredPlan struct {
	cand          Candidate
	prog          *minic.Program
	src           string
	unit          *loopir.Unit
	chunkOverride int64
	races         int // RC001 findings: true sharing the plan would create
	verifyErr     error
	evalMode      string
}

type search struct {
	prog    *minic.Program
	unit    *loopir.Unit
	opts    Options
	threads int
	npar    int64 // baseline parallel-loop trip count
}

func newSearch(prog *minic.Program, unit *loopir.Unit, opts Options) *search {
	nest := unit.Nests[opts.Nest]
	par := nest.Parallelized()
	threads := opts.Threads
	if threads <= 0 && par.Parallel.NumThreads > 0 {
		threads = par.Parallel.NumThreads
	}
	if threads <= 0 {
		threads = opts.Machine.Cores
	}
	npar, _ := par.ConstTripCount()
	return &search{prog: prog, unit: unit, opts: opts, threads: threads, npar: npar}
}

func (s *search) baselineChunk() int64 {
	if s.opts.Chunk > 0 {
		return s.opts.Chunk
	}
	nest := s.unit.Nests[s.opts.Nest]
	if c := nest.Parallelized().Parallel.Chunk; c > 0 {
		return c
	}
	if s.threads > 0 && s.npar > 0 {
		return (s.npar + int64(s.threads) - 1) / int64(s.threads) // block default
	}
	return 0
}

// enumerate builds the candidate plan space. Chunks that would leave
// threads idle (fewer chunks than threads) are excluded: the cost model
// does not price imbalance, so they would win on dispatch overhead while
// losing real parallelism. Illegal interchanges are recorded as
// rejections, and overflow past MaxCandidates is reported, not silent.
func (s *search) enumerate(res *Result) []Plan {
	nest := s.unit.Nests[s.opts.Nest]

	// Seed from the closed-form engine: skip enumeration entirely when
	// the nest is already statically clean, and adopt FIX-CHUNK's
	// verified suggestion when present.
	var suggested int64
	clean := true
	rep, err := analysis.Analyze(s.unit, analysis.Config{
		Machine: s.opts.Machine,
		Threads: s.opts.Threads,
		Chunk:   s.opts.Chunk,
	})
	if err != nil {
		res.Warnings = append(res.Warnings, fmt.Sprintf("closed-form seeding failed: %v", err))
		clean = false // cannot prove cleanliness; search anyway
	} else {
		for _, d := range rep.Diagnostics {
			if d.Nest != s.opts.Nest {
				continue
			}
			if fsFindingCode(d.Code) {
				clean = false
			}
			if d.Code == analysis.CodeFixChunk && d.SuggestedChunk > 0 {
				suggested = d.SuggestedChunk
			}
		}
	}
	if clean && err == nil {
		return nil // baseline verification will confirm the no-op
	}

	chunks := s.chunkList(s.npar, suggested)
	pads := s.padActions(nest)
	swaps := s.interchangeActions(res, nest)

	var plans []Plan
	for _, c := range chunks {
		plans = append(plans, Plan{Actions: []Action{c}})
	}
	for _, p := range pads {
		plans = append(plans, Plan{Actions: []Action{p}})
	}
	for _, sw := range swaps {
		plans = append(plans, Plan{Actions: []Action{sw}})
	}
	// Pairwise combinations: interchange changes the parallel trip count,
	// so its chunk ladder is recomputed for the post-swap loop.
	for _, sw := range swaps {
		for _, c := range s.chunkList(s.nparAfter(nest, sw), suggested) {
			plans = append(plans, Plan{Actions: []Action{sw, c}})
		}
	}
	for _, c := range chunks {
		for _, p := range pads {
			plans = append(plans, Plan{Actions: []Action{c, p}})
		}
	}
	for _, sw := range swaps {
		for _, p := range pads {
			plans = append(plans, Plan{Actions: []Action{sw, p}})
		}
	}
	if len(plans) > s.opts.MaxCandidates {
		res.Warnings = append(res.Warnings, fmt.Sprintf(
			"candidate space %d exceeds max %d; dropping the last %d combination plans",
			len(plans), s.opts.MaxCandidates, len(plans)-s.opts.MaxCandidates))
		for _, p := range plans[s.opts.MaxCandidates:] {
			res.Rejected = append(res.Rejected, Rejection{PlanSummary: p.String(), Reason: "dropped: candidate cap"})
		}
		plans = plans[:s.opts.MaxCandidates]
	}
	return plans
}

// chunkList returns chunk actions for a parallel loop with npar trips:
// the power-of-two ladder plus the closed-form suggestion, keeping every
// thread busy (chunk*threads <= npar) and excluding the baseline chunk.
func (s *search) chunkList(npar, suggested int64) []Action {
	base := s.baselineChunk()
	seen := map[int64]bool{}
	var out []int64
	for _, c := range append(append([]int64{}, chunkSeeds...), suggested) {
		if c <= 0 || seen[c] || c == base {
			continue
		}
		if npar > 0 && c*int64(s.threads) > npar {
			continue
		}
		seen[c] = true
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	acts := make([]Action, len(out))
	for i, c := range out {
		acts[i] = Action{Kind: ActionChunk, Chunk: c}
	}
	return acts
}

// padActions proposes one pad per struct that is written in the nest
// through an array-of-struct symbol and does not already end on a line
// boundary, in declaration order.
func (s *search) padActions(nest *loopir.Nest) []Action {
	written := map[string]bool{}
	for _, r := range nest.Refs {
		if !r.Write {
			continue
		}
		if st, ok := loopir.ElemType(r.Sym.Type).(*loopir.Struct); ok {
			written[st.Name] = true
		}
	}
	var acts []Action
	for _, sd := range s.prog.Structs {
		st, ok := s.unit.Structs[sd.Name]
		if !ok || !written[sd.Name] {
			continue
		}
		if rem := st.Size() % s.opts.Machine.LineSize; rem != 0 {
			acts = append(acts, Action{
				Kind:     ActionPad,
				Struct:   sd.Name,
				PadBytes: s.opts.Machine.LineSize - rem,
			})
		}
	}
	return acts
}

// interchangeActions proposes every legal level swap, recording illegal
// ones as rejections.
func (s *search) interchangeActions(res *Result, nest *loopir.Nest) []Action {
	var acts []Action
	for a := 0; a < len(nest.Loops); a++ {
		for b := a + 1; b < len(nest.Loops); b++ {
			act := Action{Kind: ActionInterchange, Outer: a, Inner: b}
			if err := transform.CanInterchange(s.unit, s.opts.Nest, a, b); err != nil {
				res.Rejected = append(res.Rejected, Rejection{
					PlanSummary: Plan{Actions: []Action{act}}.String(),
					Reason:      fmt.Sprintf("illegal: %v", err),
				})
				continue
			}
			acts = append(acts, act)
		}
	}
	return acts
}

// nparAfter returns the parallel-loop trip count after applying the given
// interchange: the pragma keeps its depth, so the trips are those of the
// loop header that moves into the parallel level.
func (s *search) nparAfter(nest *loopir.Nest, sw Action) int64 {
	level := nest.ParLevel
	switch level {
	case sw.Outer:
		level = sw.Inner
	case sw.Inner:
		level = sw.Outer
	default:
		return s.npar
	}
	t, _ := nest.Loops[level].ConstTripCount()
	return t
}

// score runs the fast tier over the baseline (empty plan) and every
// candidate: apply → print → re-parse → lower → closed-form FS count +
// Equation 1. Scoring the re-parsed print of each candidate means the
// numbers describe exactly the source that would be emitted.
func (s *search) score(res *Result, plans []Plan) (*scoredPlan, []*scoredPlan) {
	baseline, err := s.scoreOne(Plan{})
	if err != nil {
		res.Rejected = append(res.Rejected, Rejection{PlanSummary: "no-op", Reason: fmt.Sprintf("baseline scoring failed: %v", err)})
		return nil, nil
	}
	var scored []*scoredPlan
	for _, p := range plans {
		sp, err := s.scoreOne(p)
		if err != nil {
			res.Rejected = append(res.Rejected, Rejection{PlanSummary: p.String(), Reason: err.Error()})
			continue
		}
		// A transformation that is legal as a sequential reordering can
		// still move a dependence onto the parallel loop (interchange over
		// a reduction, say); the closed-form race check catches it.
		if sp.races > baseline.races {
			res.Rejected = append(res.Rejected, Rejection{
				PlanSummary: p.String(),
				Reason:      "unsound: plan introduces cross-thread element sharing (RC001)",
			})
			continue
		}
		scored = append(scored, sp)
		res.Candidates = append(res.Candidates, sp.cand)
	}
	return baseline, scored
}

func (s *search) scoreOne(p Plan) (*scoredPlan, error) {
	prog2, err := p.apply(s.prog, s.opts.Nest, s.opts.Machine.LineSize)
	if err != nil {
		return nil, err
	}
	src := minic.Print(prog2)
	reparsed, err := minic.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("transformed source does not re-parse: %w", err)
	}
	unit, err := lowerFor(reparsed, s.opts.Machine)
	if err != nil {
		return nil, fmt.Errorf("transformed source does not lower: %w", err)
	}
	if s.opts.Nest >= len(unit.Nests) {
		return nil, fmt.Errorf("transformed source lost nest %d", s.opts.Nest)
	}
	sp := &scoredPlan{
		cand: Candidate{Plan: p, PlanSummary: p.String()},
		prog: prog2,
		src:  src,
		unit: unit,
	}
	if !p.hasChunk() {
		sp.chunkOverride = s.opts.Chunk
	}

	rep, err := analysis.Analyze(unit, analysis.Config{
		Machine:   s.opts.Machine,
		Threads:   s.opts.Threads,
		Chunk:     sp.chunkOverride,
		NoSuggest: true,
	})
	if err != nil {
		return nil, fmt.Errorf("closed-form analysis: %w", err)
	}
	for _, d := range rep.Diagnostics {
		if d.Nest != s.opts.Nest || !fsFindingCode(d.Code) {
			continue
		}
		sp.cand.ClosedFormFindings++
		switch d.Code {
		case analysis.CodeFSWrite:
			sp.cand.ClosedFormFS += d.Straddles
		case analysis.CodeRace:
			sp.races++
		}
	}

	nest := unit.Nests[s.opts.Nest]
	plan, err := s.resolvePlan(nest, sp.chunkOverride)
	if err != nil {
		return nil, err
	}
	base, err := costmodel.Estimate(nest, s.opts.Machine, plan)
	if err != nil {
		return nil, fmt.Errorf("cost model: %w", err)
	}
	sp.cand.PredictedCycles = base.TotalWithFS(sp.cand.ClosedFormFS, s.opts.Machine, plan.NumThreads)
	return sp, nil
}

// resolvePlan mirrors fsmodel's schedule resolution (explicit override,
// else pragma, else defaults) so fast-tier cycles are comparable to the
// exact tier's.
func (s *search) resolvePlan(nest *loopir.Nest, chunkOverride int64) (sched.Plan, error) {
	par := nest.Parallelized()
	if par == nil {
		return sched.Plan{}, fmt.Errorf("transformed nest %d is sequential", s.opts.Nest)
	}
	kind, err := sched.KindFromString(par.Parallel.Schedule)
	if err != nil {
		return sched.Plan{}, err
	}
	chunk := chunkOverride
	if chunk <= 0 && par.Parallel.Chunk > 0 {
		chunk = par.Parallel.Chunk
	}
	trip, _ := par.ConstTripCount()
	return sched.Resolve(kind, s.threads, chunk, trip)
}

// prune keeps the Beam best candidates by predicted cycles (ties: fewer
// actions, then summary), rejecting the rest.
func (s *search) prune(res *Result, scored []*scoredPlan) []*scoredPlan {
	sort.SliceStable(scored, func(i, j int) bool {
		a, b := scored[i], scored[j]
		if a.cand.PredictedCycles != b.cand.PredictedCycles {
			return a.cand.PredictedCycles < b.cand.PredictedCycles
		}
		if len(a.cand.Plan.Actions) != len(b.cand.Plan.Actions) {
			return len(a.cand.Plan.Actions) < len(b.cand.Plan.Actions)
		}
		return a.cand.PlanSummary < b.cand.PlanSummary
	})
	if len(scored) <= s.opts.Beam {
		return scored
	}
	for _, sp := range scored[s.opts.Beam:] {
		res.Rejected = append(res.Rejected, Rejection{
			PlanSummary: sp.cand.PlanSummary,
			Reason:      fmt.Sprintf("pruned by beam (predicted %.0f cycles)", sp.cand.PredictedCycles),
		})
	}
	return scored[:s.opts.Beam]
}

// verify runs the exact tier on one candidate: the fsmodel simulator
// under the budget (panic-isolated), then Equation 1 with the simulated
// FS count. Failures land in verifyErr; the decision stage turns them
// into rejections (or a tuner error, for the baseline).
func (s *search) verify(ctx context.Context, sp *scoredPlan) {
	nest := sp.unit.Nests[s.opts.Nest]
	simRes, err := guard.Do1(func() (*fsmodel.Result, error) {
		return fsmodel.Analyze(nest, fsmodel.Options{
			Machine:     s.opts.Machine,
			NumThreads:  s.opts.Threads,
			Chunk:       sp.chunkOverride,
			Eval:        s.opts.Eval,
			Extrapolate: s.opts.Extrapolate,
			Budget:      budgetUnder(ctx, s.opts.Budget),
		})
	})
	if err != nil {
		sp.verifyErr = err
		return
	}
	base, err := costmodel.Estimate(nest, s.opts.Machine, simRes.Plan)
	if err != nil {
		sp.verifyErr = err
		return
	}
	sp.cand.Verified = true
	sp.cand.SimulatedFS = simRes.FSCases
	sp.cand.SimulatedCycles = base.TotalWithFS(simRes.FSCases, s.opts.Machine, simRes.Plan.NumThreads)
	sp.cand.FSDelta = simRes.FSCases - sp.cand.ClosedFormFS
	sp.evalMode = simRes.Eval.String()
}

// budgetUnder merges the context deadline into the configured budget so
// a caller timeout stops simulations mid-run.
func budgetUnder(ctx context.Context, b guard.Budget) guard.Budget {
	if dl, ok := ctx.Deadline(); ok && (b.Deadline.IsZero() || dl.Before(b.Deadline)) {
		b.Deadline = dl
	}
	return b
}

// decide picks the winner among verified finalists: a plan must strictly
// reduce the baseline's simulated FS count to be eligible; fully clean
// plans (simulated FS = 0) outrank partial reductions; within a group the
// cheapest simulated cycles win (ties: fewer actions, then summary). A
// baseline already at zero FS — or an empty eligible set — yields the
// verified no-op.
func (s *search) decide(res *Result, baseline *scoredPlan, finalists []*scoredPlan) *scoredPlan {
	baseFS := baseline.cand.SimulatedFS
	var eligible []*scoredPlan
	for _, sp := range finalists {
		switch {
		case sp.verifyErr != nil:
			res.Rejected = append(res.Rejected, Rejection{
				PlanSummary: sp.cand.PlanSummary,
				Reason:      fmt.Sprintf("verification failed: %v", sp.verifyErr),
			})
		case baseFS == 0:
			res.Rejected = append(res.Rejected, Rejection{
				PlanSummary: sp.cand.PlanSummary,
				Reason:      "input already free of simulated false sharing",
			})
		case sp.cand.SimulatedFS >= baseFS:
			res.Rejected = append(res.Rejected, Rejection{
				PlanSummary: sp.cand.PlanSummary,
				Reason: fmt.Sprintf("verification: simulated FS %d does not improve baseline %d",
					sp.cand.SimulatedFS, baseFS),
			})
		default:
			eligible = append(eligible, sp)
		}
	}
	if baseFS == 0 {
		return baseline
	}
	if len(eligible) == 0 {
		res.Warnings = append(res.Warnings,
			fmt.Sprintf("no verified candidate improved on the input's %d simulated FS cases; emitting a no-op", baseFS))
		return baseline
	}
	sort.SliceStable(eligible, func(i, j int) bool {
		a, b := eligible[i], eligible[j]
		ac, bc := a.cand.SimulatedFS == 0, b.cand.SimulatedFS == 0
		if ac != bc {
			return ac
		}
		if a.cand.SimulatedCycles != b.cand.SimulatedCycles {
			return a.cand.SimulatedCycles < b.cand.SimulatedCycles
		}
		if len(a.cand.Plan.Actions) != len(b.cand.Plan.Actions) {
			return len(a.cand.Plan.Actions) < len(b.cand.Plan.Actions)
		}
		return a.cand.PlanSummary < b.cand.PlanSummary
	})
	winner := eligible[0]
	for _, sp := range eligible[1:] {
		res.Rejected = append(res.Rejected, Rejection{
			PlanSummary: sp.cand.PlanSummary,
			Reason: fmt.Sprintf("outscored by %s (%.0f vs %.0f simulated cycles)",
				winner.cand.PlanSummary, winner.cand.SimulatedCycles, sp.cand.SimulatedCycles),
		})
	}
	return winner
}

// PhaseSeconds returns the named phase's duration for the service's
// labeled search-phase histogram, zero if absent.
func (r *Result) PhaseSeconds(name string) float64 {
	for _, p := range r.Phases {
		if p.Name == name {
			return p.Seconds
		}
	}
	return 0
}
