package tuner

// The golden-plan gate: the examples/tune corpus must tune to exactly the
// plans recorded in examples/tune/golden.json. The corpus encodes the
// three paper kernels in FS-inducing form plus an already-padded kernel
// that must come back as a verified no-op; a change to the search space,
// scoring, or decision rule that shifts any chosen plan has to update the
// goldens deliberately.

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fsmodel"
)

type goldenPlan struct {
	Plan string `json:"plan"`
	NoOp bool   `json:"no_op"`
}

func loadGolden(t *testing.T) map[string]goldenPlan {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "examples", "tune", "golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	var g map[string]goldenPlan
	if err := json.Unmarshal(data, &g); err != nil {
		t.Fatal(err)
	}
	if len(g) < 4 {
		t.Fatalf("golden file lists only %d kernels", len(g))
	}
	return g
}

func tuneExample(t *testing.T, name string, opts Options) *Result {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("..", "..", "examples", "tune", name))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Tune(context.Background(), string(src), opts)
	if err != nil {
		t.Fatalf("Tune(%s): %v", name, err)
	}
	return res
}

func TestGoldenPlans(t *testing.T) {
	golden := loadGolden(t)
	for name, want := range golden {
		t.Run(name, func(t *testing.T) {
			res := tuneExample(t, name, Options{Eval: fsmodel.EvalCompiled})
			if res.PlanSummary != want.Plan {
				t.Errorf("chosen plan %q, want %q", res.PlanSummary, want.Plan)
			}
			if res.NoOp != want.NoOp {
				t.Errorf("no_op = %v, want %v", res.NoOp, want.NoOp)
			}
			if !res.Baseline.Verified || !res.Chosen.Verified {
				t.Errorf("baseline/chosen not simulator-verified: %v/%v",
					res.Baseline.Verified, res.Chosen.Verified)
			}
			if want.NoOp && res.Baseline.SimulatedFS != 0 {
				t.Errorf("no-op kernel has baseline simulated FS %d", res.Baseline.SimulatedFS)
			}
		})
	}
	// Every corpus kernel must be covered by a golden entry.
	files, err := filepath.Glob(filepath.Join("..", "..", "examples", "tune", "*.c"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		if _, ok := golden[filepath.Base(f)]; !ok {
			t.Errorf("corpus kernel %s has no golden plan", filepath.Base(f))
		}
	}
}

// TestGoldenReportStability: tuning the same kernel twice must produce
// byte-identical reports (modulo the wall-clock phase timings) — the
// property the service cache's byte-identical replay rests on.
func TestGoldenReportStability(t *testing.T) {
	strip := func(r *Result) {
		r.Phases = nil
	}
	for _, name := range []string{"heat.c", "linreg.c"} {
		a := tuneExample(t, name, Options{Eval: fsmodel.EvalCompiled})
		b := tuneExample(t, name, Options{Eval: fsmodel.EvalCompiled})
		strip(a)
		strip(b)
		ja, err := json.Marshal(a)
		if err != nil {
			t.Fatal(err)
		}
		jb, err := json.Marshal(b)
		if err != nil {
			t.Fatal(err)
		}
		if string(ja) != string(jb) {
			t.Errorf("%s: tuning reports differ across identical runs\n--- a ---\n%s\n--- b ---\n%s", name, ja, jb)
		}
	}
}
