package tuner

// Benchmarks for BENCH_tune.json: candidate throughput of the fast
// (closed-form) tier versus the exact (simulator) tier, and the full
// search end to end. Run via the CI tune job:
//
//	go test -bench=. -benchmem -run=NONE ./internal/tuner/

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fsmodel"
	"repro/internal/minic"
)

func benchSearch(b *testing.B, file string) (*search, Plan) {
	b.Helper()
	src, err := os.ReadFile(filepath.Join("..", "..", "examples", "tune", file))
	if err != nil {
		b.Fatal(err)
	}
	opts := Options{Eval: fsmodel.EvalCompiled}.withDefaults()
	prog, err := minic.Parse(string(src))
	if err != nil {
		b.Fatal(err)
	}
	unit, err := lowerFor(prog, opts.Machine)
	if err != nil {
		b.Fatal(err)
	}
	return newSearch(prog, unit, opts), Plan{Actions: []Action{{Kind: ActionChunk, Chunk: 8}}}
}

// BenchmarkClosedFormTier measures one fast-tier candidate evaluation:
// apply + print + re-parse + lower + closed-form FS + Equation 1.
func BenchmarkClosedFormTier(b *testing.B) {
	s, plan := benchSearch(b, "heat.c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.scoreOne(plan); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorTier measures one exact-tier candidate verification:
// the compiled fsmodel simulation plus Equation 1.
func BenchmarkSimulatorTier(b *testing.B) {
	s, plan := benchSearch(b, "heat.c")
	sp, err := s.scoreOne(plan)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.cand.Verified = false
		sp.verifyErr = nil
		s.verify(ctx, sp)
		if sp.verifyErr != nil {
			b.Fatal(sp.verifyErr)
		}
	}
}

// BenchmarkTuneEndToEnd measures the whole search on each corpus kernel.
func BenchmarkTuneEndToEnd(b *testing.B) {
	for _, file := range []string{"heat.c", "dft.c", "linreg.c"} {
		src, err := os.ReadFile(filepath.Join("..", "..", "examples", "tune", file))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(file, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Tune(context.Background(), string(src), Options{Eval: fsmodel.EvalCompiled}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
