package tuner

// The differential acceptance gate (ISSUE 7): for every kernel in
// examples/tune/, the emitted transformed source must (1) re-parse, (2)
// re-lint to zero FS001/FS002 findings, and (3) re-simulate under
// Options.Eval=compiled to a strictly lower FS count than the input —
// with a no-op permitted only for the padded-clean kernel.

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/fsmodel"
	"repro/internal/machine"
	"repro/internal/minic"
)

func simulateFS(t *testing.T, src string, nestIdx int) int64 {
	t.Helper()
	prog, err := minic.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	m := machine.Paper48()
	unit, err := lowerFor(prog, m)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	res, err := fsmodel.Analyze(unit.Nests[nestIdx], fsmodel.Options{
		Machine: m,
		Eval:    fsmodel.EvalCompiled,
	})
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	return res.FSCases
}

func lintFindings(t *testing.T, src string) []analysis.Diagnostic {
	t.Helper()
	prog, err := minic.Parse(src)
	if err != nil {
		t.Fatalf("emitted source does not re-parse: %v\n%s", err, src)
	}
	unit, err := lowerFor(prog, machine.Paper48())
	if err != nil {
		t.Fatalf("emitted source does not lower: %v", err)
	}
	rep, err := analysis.Analyze(unit, analysis.Config{Machine: machine.Paper48(), NoSuggest: true})
	if err != nil {
		t.Fatal(err)
	}
	var fs []analysis.Diagnostic
	for _, d := range rep.Diagnostics {
		if d.Code == analysis.CodeFSWrite || d.Code == analysis.CodeFSPair {
			fs = append(fs, d)
		}
	}
	return fs
}

func TestDifferentialAcceptance(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "examples", "tune", "*.c"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 4 {
		t.Fatalf("tune corpus has only %d kernels", len(files))
	}
	for _, f := range files {
		name := filepath.Base(f)
		t.Run(name, func(t *testing.T) {
			res := tuneExample(t, name, Options{Eval: fsmodel.EvalCompiled, KeepHeader: true})

			// (1) The emitted source re-parses, and (2) lints clean.
			if findings := lintFindings(t, res.Source); len(findings) != 0 {
				t.Errorf("emitted source still has %d FS001/FS002 findings; first: %s %s",
					len(findings), findings[0].Code, findings[0].Message)
			}

			// (3) Strictly lower simulated FS, no-op only for the padded kernel.
			inputFS := res.Baseline.SimulatedFS
			outputFS := simulateFS(t, res.Source, res.Nest)
			if name == "linreg_padded.c" {
				if !res.NoOp {
					t.Errorf("padded-clean kernel must tune to a no-op, got plan %q", res.PlanSummary)
				}
				if inputFS != 0 || outputFS != 0 {
					t.Errorf("padded-clean kernel FS: input %d output %d, want 0/0", inputFS, outputFS)
				}
				return
			}
			if res.NoOp {
				t.Fatalf("FS-inducing kernel tuned to a no-op (baseline FS %d); warnings: %v", inputFS, res.Warnings)
			}
			if outputFS >= inputFS {
				t.Errorf("simulated FS not strictly reduced: input %d, output %d", inputFS, outputFS)
			}
			// The emitted source must match the verified winner's numbers.
			if outputFS != res.Chosen.SimulatedFS {
				t.Errorf("emitted source simulates to FS %d but the report claims %d", outputFS, res.Chosen.SimulatedFS)
			}
			// Header preservation: the corpus files all start with a block
			// comment that must survive the rewrite.
			if !strings.HasPrefix(res.Source, "/*") {
				t.Errorf("leading comment block not preserved:\n%s", res.Source[:min(80, len(res.Source))])
			}
		})
	}
}
