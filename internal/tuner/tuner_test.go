package tuner

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/fsmodel"
	"repro/internal/guard"
)

const fsSource = `
struct Acc { double v; };
struct Acc acc[64];

#pragma omp parallel for schedule(static,1) num_threads(8)
for (i = 0; i < 64; i++) {
    acc[i].v += 1.0;
}
`

func TestTuneInputErrors(t *testing.T) {
	cases := []struct {
		name, src string
		opts      Options
	}{
		{"unparsable", "for (", Options{}},
		{"nest out of range", fsSource, Options{Nest: 5}},
		{"sequential nest", "double a[8];\nfor (i = 0; i < 8; i++) a[i] = 0.0;\n", Options{}},
		{"symbolic bounds", "double a[8];\n#pragma omp parallel for\nfor (i = 0; i < n; i++) a[i] = 0.0;\n", Options{}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Tune(context.Background(), tc.src, tc.opts)
			var ie *InputError
			if !errors.As(err, &ie) {
				t.Fatalf("want InputError, got %v", err)
			}
		})
	}
}

func TestTuneRemovesAccumulatorFS(t *testing.T) {
	res, err := Tune(context.Background(), fsSource, Options{Eval: fsmodel.EvalCompiled})
	if err != nil {
		t.Fatal(err)
	}
	if res.Baseline.SimulatedFS == 0 {
		t.Fatal("test kernel unexpectedly has no baseline FS")
	}
	if res.NoOp || res.Chosen.SimulatedFS != 0 {
		t.Fatalf("expected a fully clean plan, got %q with FS %d (warnings %v)",
			res.PlanSummary, res.Chosen.SimulatedFS, res.Warnings)
	}
	if _, err := Tune(context.Background(), res.Source, Options{Eval: fsmodel.EvalCompiled}); err != nil {
		t.Fatalf("emitted source does not re-tune: %v", err)
	}
	// Rank invariants: chosen cycles never exceed any other verified
	// improving candidate's.
	for _, c := range res.Candidates {
		if c.Verified && c.SimulatedFS == 0 && c.SimulatedCycles < res.Chosen.SimulatedCycles {
			t.Errorf("candidate %q (%.0f cycles) beats chosen %q (%.0f cycles)",
				c.PlanSummary, c.SimulatedCycles, res.PlanSummary, res.Chosen.SimulatedCycles)
		}
	}
	// The report must carry the phases the service histogram observes.
	for _, phase := range []string{"enumerate", "score", "verify", "apply"} {
		if res.PhaseSeconds(phase) < 0 {
			t.Errorf("phase %s has negative duration", phase)
		}
		found := false
		for _, p := range res.Phases {
			if p.Name == phase {
				found = true
			}
		}
		if !found {
			t.Errorf("phase %s missing from report", phase)
		}
	}
}

// TestTuneChunkOverride: an explicit baseline chunk override must shape
// the baseline but not shadow candidate schedule rewrites.
func TestTuneChunkOverride(t *testing.T) {
	res, err := Tune(context.Background(), fsSource, Options{Chunk: 2, Eval: fsmodel.EvalCompiled})
	if err != nil {
		t.Fatal(err)
	}
	if res.BaselineChunk != 2 {
		t.Fatalf("baseline chunk %d, want 2", res.BaselineChunk)
	}
	if res.Chosen.Plan.hasChunk() && res.Chosen.SimulatedFS != 0 {
		t.Fatalf("chunk rewrite did not take effect under override: FS %d", res.Chosen.SimulatedFS)
	}
}

// TestTuneBudgetExceeded: an exhausted budget during baseline
// verification must surface as a budget error the service can map to its
// degraded fallback, not a hang or panic.
func TestTuneBudgetExceeded(t *testing.T) {
	// The budget check is amortized (every 4096 modeled accesses), so use
	// the heat corpus kernel — large enough to cross a check boundary.
	src, rerr := os.ReadFile(filepath.Join("..", "..", "examples", "tune", "heat.c"))
	if rerr != nil {
		t.Fatal(rerr)
	}
	_, err := Tune(context.Background(), string(src), Options{
		Eval:   fsmodel.EvalCompiled,
		Budget: guard.Budget{MaxSteps: 1},
	})
	if err == nil {
		t.Fatal("expected a budget error")
	}
	if !errors.Is(err, guard.ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
}

// TestTuneContextDeadline: an already-expired context stops the search.
func TestTuneContextDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := Tune(ctx, fsSource, Options{Eval: fsmodel.EvalCompiled})
	if err == nil {
		t.Fatal("expected an error from the expired deadline")
	}
}

// TestTuneNoImprovementWarns: when no candidate can improve (a single
// 8-byte-stride write with too few trips for any aligned chunk and
// nothing to pad or interchange), the tuner emits a verified no-op with
// a warning instead of a bogus plan.
func TestTuneNoImprovement(t *testing.T) {
	src := `
double a[8];

#pragma omp parallel for schedule(static,1) num_threads(8)
for (i = 0; i < 8; i++) {
    a[i] = 1.0;
}
`
	res, err := Tune(context.Background(), src, Options{Eval: fsmodel.EvalCompiled})
	if err != nil {
		t.Fatal(err)
	}
	if !res.NoOp {
		t.Fatalf("expected no-op, got %q", res.PlanSummary)
	}
	if res.Baseline.SimulatedFS > 0 && len(res.Warnings) == 0 {
		t.Error("no-op on an FS-positive input must carry a warning")
	}
	if _, err := Tune(context.Background(), res.Source, Options{Eval: fsmodel.EvalCompiled}); err != nil {
		t.Fatalf("no-op source does not re-tune: %v", err)
	}
}

// TestTuneRejectsRacyInterchange pins the soundness rule: a reduction
// nest whose interchange would move the accumulation onto the parallel
// loop must reject those candidates with an RC001 reason, never choose
// them.
func TestTuneRejectsRacyInterchange(t *testing.T) {
	src := `
double x[64];
double out[64];
double tab[64][64];

for (k = 0; k < 64; k++) {
    #pragma omp parallel for private(n) schedule(static,1) num_threads(8)
    for (n = 0; n < 64; n++) {
        out[n] += x[k] * tab[k][n];
    }
}
`
	res, err := Tune(context.Background(), src, Options{Eval: fsmodel.EvalCompiled})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Plan.Actions {
		if a.Kind == ActionInterchange {
			t.Fatalf("racy interchange chosen: %q", res.PlanSummary)
		}
	}
	sawRaceRejection := false
	for _, r := range res.Rejected {
		if strings.Contains(r.PlanSummary, "interchange") && strings.Contains(r.Reason, "RC001") {
			sawRaceRejection = true
		}
	}
	if !sawRaceRejection {
		t.Errorf("interchange not rejected as unsound; rejections: %+v", res.Rejected)
	}
}
