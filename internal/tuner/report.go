package tuner

import (
	"encoding/json"
	"io"
)

// WriteJSON writes the full tuning report as indented JSON. The
// encoding is deterministic modulo the Phases wall-clock timings, which
// is what lets the service cache replay responses byte-identically.
func WriteJSON(w io.Writer, res *Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}
