package affine

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConstAndVar(t *testing.T) {
	c := Const(7)
	if !c.IsConst() || c.ConstTerm != 7 {
		t.Fatalf("Const(7) = %v", c)
	}
	v := Var("i")
	if v.IsConst() {
		t.Fatal("Var is not const")
	}
	if v.Coeff("i") != 1 || v.Coeff("j") != 0 {
		t.Fatalf("Var coeffs wrong: %v", v)
	}
	tm := Term(3, "j")
	if tm.Coeff("j") != 3 {
		t.Fatalf("Term(3,j) = %v", tm)
	}
	if !Term(0, "k").IsZero() {
		t.Fatal("Term(0,k) should be zero")
	}
}

func TestAddSubNeg(t *testing.T) {
	e := Var("i").MulConst(8).Add(Var("j").MulConst(64)).Add(Const(16))
	if got := e.String(); got != "8*i + 64*j + 16" {
		t.Fatalf("String = %q", got)
	}
	d := e.Sub(e)
	if !d.IsZero() {
		t.Fatalf("e-e = %v", d)
	}
	n := e.Neg().Add(e)
	if !n.IsZero() {
		t.Fatalf("-e+e = %v", n)
	}
}

func TestCancellationRemovesTerms(t *testing.T) {
	e := Var("i").Add(Var("j")).Sub(Var("j"))
	if len(e.Terms) != 1 {
		t.Fatalf("expected j to cancel structurally: %v", e.Terms)
	}
	if e.DependsOn("j") {
		t.Fatal("cancelled variable still reported")
	}
}

func TestMul(t *testing.T) {
	e := Var("i").Add(Const(2))
	p, ok := e.Mul(Const(3))
	if !ok {
		t.Fatal("const multiply should be affine")
	}
	if p.Coeff("i") != 3 || p.ConstTerm != 6 {
		t.Fatalf("3*(i+2) = %v", p)
	}
	p2, ok := Const(3).Mul(e)
	if !ok || !p2.Equal(p) {
		t.Fatalf("commuted const multiply differs: %v vs %v", p2, p)
	}
	if _, ok := e.Mul(Var("j")); ok {
		t.Fatal("variable*variable must be rejected as non-affine")
	}
	z, ok := e.Mul(Const(0))
	if !ok || !z.IsZero() {
		t.Fatalf("e*0 = %v", z)
	}
}

func TestEval(t *testing.T) {
	e := Var("i").MulConst(8).Add(Var("j").MulConst(-2)).Add(Const(5))
	got, err := e.Eval(map[string]int64{"i": 3, "j": 4})
	if err != nil {
		t.Fatal(err)
	}
	if got != 8*3-2*4+5 {
		t.Fatalf("Eval = %d", got)
	}
	if _, err := e.Eval(map[string]int64{"i": 3}); err == nil {
		t.Fatal("expected error for unbound variable")
	}
}

func TestMustEvalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustEval should panic on unbound variable")
		}
	}()
	Var("q").MustEval(map[string]int64{})
}

func TestSubstitute(t *testing.T) {
	// i := 2*k + 1 in (8*i + j)  =>  16*k + j + 8
	e := Var("i").MulConst(8).Add(Var("j"))
	s := e.Substitute("i", Var("k").MulConst(2).Add(Const(1)))
	want := Var("k").MulConst(16).Add(Var("j")).Add(Const(8))
	if !s.Equal(want) {
		t.Fatalf("Substitute = %v, want %v", s, want)
	}
	// Substituting an absent variable is a no-op.
	if !e.Substitute("zz", Const(9)).Equal(e) {
		t.Fatal("substituting absent variable changed expression")
	}
}

func TestVarsSorted(t *testing.T) {
	e := Var("z").Add(Var("a")).Add(Var("m"))
	vars := e.Vars()
	if len(vars) != 3 || vars[0] != "a" || vars[1] != "m" || vars[2] != "z" {
		t.Fatalf("Vars = %v", vars)
	}
}

func TestStringForms(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{Const(0), "0"},
		{Const(-3), "-3"},
		{Var("i"), "i"},
		{Var("i").Neg(), "-i"},
		{Var("i").Sub(Var("j")), "i - j"},
		{Var("i").MulConst(2).Sub(Const(4)), "2*i - 4"},
		{Var("i").MulConst(-2).Add(Const(4)), "-2*i + 4"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.e, got, c.want)
		}
	}
}

func TestCompile(t *testing.T) {
	e := Var("i").MulConst(8).Add(Var("k").MulConst(3)).Add(Const(-2))
	c, err := e.Compile([]string{"i", "j", "k"})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Eval([]int64{5, 100, 7}); got != 8*5+3*7-2 {
		t.Fatalf("compiled eval = %d", got)
	}
	if _, err := e.Compile([]string{"i", "j"}); err == nil {
		t.Fatal("expected error for missing variable in ordering")
	}
}

// randomExpr builds a random affine expression over {i,j,k}.
func randomExpr(r *rand.Rand) Expr {
	e := Const(r.Int63n(41) - 20)
	for _, v := range []string{"i", "j", "k"} {
		if r.Intn(2) == 1 {
			e = e.Add(Term(r.Int63n(21)-10, v))
		}
	}
	return e
}

func randomEnv(r *rand.Rand) map[string]int64 {
	return map[string]int64{
		"i": r.Int63n(201) - 100,
		"j": r.Int63n(201) - 100,
		"k": r.Int63n(201) - 100,
	}
}

func TestPropertyAlgebraLaws(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		a, b, c := randomExpr(r), randomExpr(r), randomExpr(r)
		env := randomEnv(r)
		ev := func(e Expr) int64 { return e.MustEval(env) }

		if !a.Add(b).Equal(b.Add(a)) {
			t.Fatalf("commutativity violated: %v + %v", a, b)
		}
		if !a.Add(b).Add(c).Equal(a.Add(b.Add(c))) {
			t.Fatalf("associativity violated")
		}
		if ev(a.Add(b)) != ev(a)+ev(b) {
			t.Fatalf("Eval(a+b) != Eval(a)+Eval(b)")
		}
		if ev(a.Sub(b)) != ev(a)-ev(b) {
			t.Fatalf("Eval(a-b) != Eval(a)-Eval(b)")
		}
		k := r.Int63n(11) - 5
		if ev(a.MulConst(k)) != k*ev(a) {
			t.Fatalf("Eval(k*a) != k*Eval(a)")
		}
		if !a.Sub(a).IsZero() {
			t.Fatalf("a-a not zero: %v", a.Sub(a))
		}
	}
}

func TestQuickCompiledMatchesEval(t *testing.T) {
	f := func(ci, cj, ck, c0, vi, vj, vk int16) bool {
		e := Term(int64(ci), "i").Add(Term(int64(cj), "j")).Add(Term(int64(ck), "k")).Add(Const(int64(c0)))
		comp, err := e.Compile([]string{"i", "j", "k"})
		if err != nil {
			return false
		}
		env := map[string]int64{"i": int64(vi), "j": int64(vj), "k": int64(vk)}
		return comp.Eval([]int64{int64(vi), int64(vj), int64(vk)}) == e.MustEval(env)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSubstituteConsistentWithEval(t *testing.T) {
	// Substituting i := c and evaluating equals evaluating with i=c.
	f := func(ci, cj, c0, c, vj int16) bool {
		e := Term(int64(ci), "i").Add(Term(int64(cj), "j")).Add(Const(int64(c0)))
		s := e.Substitute("i", Const(int64(c)))
		if s.DependsOn("i") {
			return false
		}
		env := map[string]int64{"i": int64(c), "j": int64(vj)}
		return s.MustEval(map[string]int64{"j": int64(vj)}) == e.MustEval(env)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCompiledEval(b *testing.B) {
	e := Term(8, "i").Add(Term(4096, "j")).Add(Const(16))
	c, err := e.Compile([]string{"j", "i"})
	if err != nil {
		b.Fatal(err)
	}
	vals := []int64{3, 7}
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += c.Eval(vals)
	}
	_ = sink
}

func BenchmarkMapEval(b *testing.B) {
	e := Term(8, "i").Add(Term(4096, "j")).Add(Const(16))
	env := map[string]int64{"i": 7, "j": 3}
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += e.MustEval(env)
	}
	_ = sink
}
