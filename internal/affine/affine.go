// Package affine implements affine (linear + constant) integer expressions
// over named variables, the representation used for loop bounds and array
// subscript functions throughout the loop IR.
//
// An affine expression has the form
//
//	c0 + c1*v1 + c2*v2 + ... + cn*vn
//
// where the ci are int64 coefficients and the vi are variable names (loop
// induction variables in practice). The false-sharing cost model and the
// cache cost model both rely on subscripts being affine: the byte offset of
// every array reference must be expressible in this form so that cache-line
// ownership can be computed at compile time.
package affine

import (
	"fmt"
	"sort"
	"strings"
)

// Expr is an immutable affine expression. The zero value is the constant 0.
//
// Terms maps variable name to coefficient. Variables with coefficient zero
// are never stored, so two equal expressions always have identical maps.
type Expr struct {
	ConstTerm int64
	Terms     map[string]int64
}

// Const returns the affine expression consisting of just the constant c.
func Const(c int64) Expr { return Expr{ConstTerm: c} }

// Var returns the affine expression 1*name.
func Var(name string) Expr {
	return Expr{Terms: map[string]int64{name: 1}}
}

// Term returns the affine expression coeff*name.
func Term(coeff int64, name string) Expr {
	if coeff == 0 {
		return Expr{}
	}
	return Expr{Terms: map[string]int64{name: coeff}}
}

// clone returns a deep copy of e with a private Terms map that is safe to
// mutate. The map is always non-nil in the result.
func (e Expr) clone() Expr {
	out := Expr{ConstTerm: e.ConstTerm, Terms: make(map[string]int64, len(e.Terms))}
	for v, c := range e.Terms {
		out.Terms[v] = c
	}
	return out
}

// normalize removes zero-coefficient terms and nils out an empty map so that
// structurally equal expressions compare equal with Equal.
func (e Expr) normalize() Expr {
	for v, c := range e.Terms {
		if c == 0 {
			delete(e.Terms, v)
		}
	}
	if len(e.Terms) == 0 {
		e.Terms = nil
	}
	return e
}

// Add returns e + o.
func (e Expr) Add(o Expr) Expr {
	out := e.clone()
	out.ConstTerm += o.ConstTerm
	for v, c := range o.Terms {
		out.Terms[v] += c
	}
	return out.normalize()
}

// Sub returns e - o.
func (e Expr) Sub(o Expr) Expr {
	out := e.clone()
	out.ConstTerm -= o.ConstTerm
	for v, c := range o.Terms {
		out.Terms[v] -= c
	}
	return out.normalize()
}

// Neg returns -e.
func (e Expr) Neg() Expr {
	out := e.clone()
	out.ConstTerm = -out.ConstTerm
	for v := range out.Terms {
		out.Terms[v] = -out.Terms[v]
	}
	return out.normalize()
}

// MulConst returns k*e.
func (e Expr) MulConst(k int64) Expr {
	if k == 0 {
		return Expr{}
	}
	out := e.clone()
	out.ConstTerm *= k
	for v := range out.Terms {
		out.Terms[v] *= k
	}
	return out.normalize()
}

// Mul returns e*o if at least one operand is a constant; the second result
// reports whether the product is affine. The product of two non-constant
// affine expressions is quadratic and therefore rejected.
func (e Expr) Mul(o Expr) (Expr, bool) {
	if e.IsConst() {
		return o.MulConst(e.ConstTerm), true
	}
	if o.IsConst() {
		return e.MulConst(o.ConstTerm), true
	}
	return Expr{}, false
}

// IsConst reports whether e has no variable terms.
func (e Expr) IsConst() bool { return len(e.Terms) == 0 }

// IsZero reports whether e is the constant 0.
func (e Expr) IsZero() bool { return e.ConstTerm == 0 && len(e.Terms) == 0 }

// ConstValue returns the constant value of e and whether e is constant.
func (e Expr) ConstValue() (int64, bool) {
	if e.IsConst() {
		return e.ConstTerm, true
	}
	return 0, false
}

// Coeff returns the coefficient of variable name (zero if absent).
func (e Expr) Coeff(name string) int64 { return e.Terms[name] }

// Vars returns the variable names with non-zero coefficients, sorted.
func (e Expr) Vars() []string {
	out := make([]string, 0, len(e.Terms))
	for v := range e.Terms {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// DependsOn reports whether e mentions variable name.
func (e Expr) DependsOn(name string) bool {
	_, ok := e.Terms[name]
	return ok
}

// Eval evaluates e in the given environment. Variables missing from env
// cause an error so that lowering bugs surface instead of silently reading
// zero.
func (e Expr) Eval(env map[string]int64) (int64, error) {
	total := e.ConstTerm
	for v, c := range e.Terms {
		val, ok := env[v]
		if !ok {
			return 0, fmt.Errorf("affine: variable %q not bound in environment", v)
		}
		total += c * val
	}
	return total, nil
}

// MustEval is Eval that panics on unbound variables. It is intended for hot
// paths where the caller has already validated the environment.
func (e Expr) MustEval(env map[string]int64) int64 {
	total := e.ConstTerm
	for v, c := range e.Terms {
		val, ok := env[v]
		if !ok {
			panic(fmt.Sprintf("affine: variable %q not bound in environment", v))
		}
		total += c * val
	}
	return total
}

// Substitute returns e with every occurrence of name replaced by repl.
func (e Expr) Substitute(name string, repl Expr) Expr {
	c, ok := e.Terms[name]
	if !ok {
		return e
	}
	out := e.clone()
	delete(out.Terms, name)
	return out.normalize().Add(repl.MulConst(c))
}

// Equal reports whether e and o denote the same affine function.
func (e Expr) Equal(o Expr) bool {
	if e.ConstTerm != o.ConstTerm || len(e.Terms) != len(o.Terms) {
		return false
	}
	for v, c := range e.Terms {
		if o.Terms[v] != c {
			return false
		}
	}
	return true
}

// String renders e in canonical form, e.g. "8*i + 64*j + 16".
func (e Expr) String() string {
	var b strings.Builder
	first := true
	for _, v := range e.Vars() {
		c := e.Terms[v]
		switch {
		case first && c == 1:
			b.WriteString(v)
		case first && c == -1:
			b.WriteString("-" + v)
		case first:
			fmt.Fprintf(&b, "%d*%s", c, v)
		case c == 1:
			b.WriteString(" + " + v)
		case c == -1:
			b.WriteString(" - " + v)
		case c > 0:
			fmt.Fprintf(&b, " + %d*%s", c, v)
		default:
			fmt.Fprintf(&b, " - %d*%s", -c, v)
		}
		first = false
	}
	switch {
	case first:
		fmt.Fprintf(&b, "%d", e.ConstTerm)
	case e.ConstTerm > 0:
		fmt.Fprintf(&b, " + %d", e.ConstTerm)
	case e.ConstTerm < 0:
		fmt.Fprintf(&b, " - %d", -e.ConstTerm)
	}
	return b.String()
}

// Compiled is a flattened, allocation-free evaluator for an Expr against a
// fixed variable ordering. The false-sharing model evaluates subscript
// expressions once per array reference per iteration, so map lookups in
// Expr.Eval would dominate; Compiled reduces evaluation to a dot product
// against a slice of loop-variable values.
type Compiled struct {
	Const  int64
	Coeffs []int64 // Coeffs[k] multiplies value k of the variable ordering
}

// Compile flattens e against the variable ordering vars. Variables of e not
// present in vars yield an error.
func (e Expr) Compile(vars []string) (Compiled, error) {
	idx := make(map[string]int, len(vars))
	for i, v := range vars {
		idx[v] = i
	}
	c := Compiled{Const: e.ConstTerm, Coeffs: make([]int64, len(vars))}
	for v, coeff := range e.Terms {
		i, ok := idx[v]
		if !ok {
			return Compiled{}, fmt.Errorf("affine: variable %q not in ordering %v", v, vars)
		}
		c.Coeffs[i] = coeff
	}
	return c, nil
}

// Eval evaluates the compiled expression against vals, which must have the
// same length as the ordering passed to Compile.
func (c Compiled) Eval(vals []int64) int64 {
	total := c.Const
	for i, coeff := range c.Coeffs {
		if coeff != 0 {
			total += coeff * vals[i]
		}
	}
	return total
}
