package affine

// Residue arithmetic over arithmetic progressions. These helpers back the
// closed-form false-sharing boundary analysis (internal/analysis): the byte
// address written at chunk boundary t is an affine function c + t·d, and
// whether that boundary straddles a cache line is a predicate on its
// residue modulo the line size. Because the residues of an arithmetic
// progression cycle with period m/gcd(d,m), whole-loop straddle counts are
// computable in O(line size) regardless of the trip count.

// GCD returns the non-negative greatest common divisor of a and b.
// GCD(0, 0) is 0.
func GCD(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Mod returns the canonical non-negative remainder of a modulo m: the
// unique r in [0, m) with a ≡ r (mod m). m must be positive.
func Mod(a, m int64) int64 {
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}

// ResiduePeriod returns the period of the residue sequence Mod(c + t·d, m)
// in t: the smallest p > 0 with p·d ≡ 0 (mod m), which is m / gcd(d, m).
// A progression with d ≡ 0 (mod m) has period 1.
func ResiduePeriod(d, m int64) int64 {
	return m / GCD(d, m)
}

// CountResidueAtLeast counts the t in [from, from+n) whose residue
// Mod(c + t·d, m) is at least lo. Cost is O(ResiduePeriod(d, m)) — one
// residue cycle — independent of n. lo above m-1 matches nothing; lo at or
// below 0 matches everything.
func CountResidueAtLeast(c, d, m, lo, from, n int64) int64 {
	if n <= 0 {
		return 0
	}
	if lo <= 0 {
		return n
	}
	if lo > m-1 {
		return 0
	}
	p := ResiduePeriod(d, m)
	full := n / p
	rem := n % p
	// Walk one cycle incrementally so no intermediate product can
	// overflow: r starts at the residue for t = from and advances by
	// Mod(d, m) per step.
	r := Mod(Mod(c, m)+Mod(from, m)*Mod(d, m), m)
	step := Mod(d, m)
	var perCycle, tail int64
	for i := int64(0); i < p; i++ {
		if r >= lo {
			perCycle++
			if i < rem {
				tail++
			}
		}
		r += step
		if r >= m {
			r -= m
		}
	}
	return full*perCycle + tail
}

// HasResidueAtLeast reports whether any t in [from, from+n) has
// Mod(c + t·d, m) >= lo, in O(ResiduePeriod(d, m)).
func HasResidueAtLeast(c, d, m, lo, from, n int64) bool {
	if n <= 0 {
		return false
	}
	if lo <= 0 {
		return true
	}
	p := ResiduePeriod(d, m)
	if n < p {
		p = n
	}
	r := Mod(Mod(c, m)+Mod(from, m)*Mod(d, m), m)
	step := Mod(d, m)
	for i := int64(0); i < p; i++ {
		if r >= lo {
			return true
		}
		r += step
		if r >= m {
			r -= m
		}
	}
	return false
}
