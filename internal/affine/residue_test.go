package affine

import "testing"

// bruteCount is the specification: enumerate every t.
func bruteCount(c, d, m, lo, from, n int64) int64 {
	var count int64
	for t := from; t < from+n; t++ {
		if Mod(c+t*d, m) >= lo {
			count++
		}
	}
	return count
}

func TestGCDBasics(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{0, 0, 0}, {0, 7, 7}, {7, 0, 7}, {12, 18, 6}, {-12, 18, 6},
		{12, -18, 6}, {-12, -18, 6}, {1, 1, 1}, {64, 40, 8}, {128, 40, 8},
	}
	for _, c := range cases {
		if got := GCD(c.a, c.b); got != c.want {
			t.Errorf("GCD(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// TestGCDProperties checks divisibility and maximality over a grid.
func TestGCDProperties(t *testing.T) {
	for a := int64(-20); a <= 20; a++ {
		for b := int64(-20); b <= 20; b++ {
			g := GCD(a, b)
			if a == 0 && b == 0 {
				if g != 0 {
					t.Fatalf("GCD(0,0) = %d", g)
				}
				continue
			}
			if g <= 0 {
				t.Fatalf("GCD(%d,%d) = %d not positive", a, b, g)
			}
			if a%g != 0 || b%g != 0 {
				t.Fatalf("GCD(%d,%d) = %d does not divide both", a, b, g)
			}
			for d := g + 1; d <= 20; d++ {
				if a%d == 0 && b%d == 0 {
					t.Fatalf("GCD(%d,%d) = %d but %d also divides both", a, b, g, d)
				}
			}
		}
	}
}

func TestModCanonical(t *testing.T) {
	for a := int64(-50); a <= 50; a++ {
		for m := int64(1); m <= 12; m++ {
			r := Mod(a, m)
			if r < 0 || r >= m {
				t.Fatalf("Mod(%d, %d) = %d out of [0, %d)", a, m, r, m)
			}
			if (a-r)%m != 0 {
				t.Fatalf("Mod(%d, %d) = %d not congruent", a, m, r)
			}
		}
	}
}

// TestResiduePeriod checks the returned period is the least positive p
// with p·d ≡ 0 (mod m), by brute force.
func TestResiduePeriod(t *testing.T) {
	for _, m := range []int64{1, 2, 3, 4, 8, 12, 16, 64} {
		for d := int64(-70); d <= 70; d++ {
			p := ResiduePeriod(d, m)
			if p <= 0 || p > m {
				t.Fatalf("ResiduePeriod(%d, %d) = %d out of range", d, m, p)
			}
			if Mod(p*d, m) != 0 {
				t.Fatalf("ResiduePeriod(%d, %d) = %d: p·d not ≡ 0", d, m, p)
			}
			for q := int64(1); q < p; q++ {
				if Mod(q*d, m) == 0 {
					t.Fatalf("ResiduePeriod(%d, %d) = %d but %d already cycles", d, m, p, q)
				}
			}
		}
	}
}

// TestCountResidueAtLeastBrute pins the closed-form count against
// enumeration over small strides, chunk advances, and line sizes — the
// exact quantities the boundary-straddle analysis feeds in (c = base byte
// residue, d = stride×chunk, m = line size, lo = straddle threshold).
func TestCountResidueAtLeastBrute(t *testing.T) {
	for _, m := range []int64{2, 4, 8, 16, 64, 128} {
		for _, d := range []int64{-80, -64, -40, -9, -1, 0, 1, 5, 8, 16, 40, 64, 80, 100} {
			for _, c := range []int64{-130, -7, 0, 3, 8, 60, 63, 127} {
				for _, lo := range []int64{-1, 0, 1, m / 2, m - 1, m, m + 5} {
					for _, span := range []struct{ from, n int64 }{
						{0, 0}, {0, 1}, {0, 7}, {1, 64}, {1, 200}, {5, 13}, {-3, 10},
					} {
						got := CountResidueAtLeast(c, d, m, lo, span.from, span.n)
						want := bruteCount(c, d, m, lo, span.from, span.n)
						if got != want {
							t.Fatalf("CountResidueAtLeast(c=%d d=%d m=%d lo=%d from=%d n=%d) = %d, brute = %d",
								c, d, m, lo, span.from, span.n, got, want)
						}
						has := HasResidueAtLeast(c, d, m, lo, span.from, span.n)
						if has != (want > 0) {
							t.Fatalf("HasResidueAtLeast(c=%d d=%d m=%d lo=%d from=%d n=%d) = %t, brute count = %d",
								c, d, m, lo, span.from, span.n, has, want)
						}
					}
				}
			}
		}
	}
}

// TestCountResidueLargeN checks the closed form extrapolates correctly
// past one period: counting over k periods is k times one period plus the
// tail, for a trip count far beyond anything enumerable per-boundary.
func TestCountResidueLargeN(t *testing.T) {
	const c, d, m, lo = 8, 40, 64, 33
	p := ResiduePeriod(d, m) // 8
	per := CountResidueAtLeast(c, d, m, lo, 0, p)
	huge := int64(1) << 40
	got := CountResidueAtLeast(c, d, m, lo, 0, huge*p)
	if got != huge*per {
		t.Fatalf("large-n count = %d, want %d", got, huge*per)
	}
}
