package interp

import (
	"math"
	"strings"
	"testing"

	"repro/internal/loopir"
	"repro/internal/minic"
)

func load(t *testing.T, src string) *loopir.Unit {
	t.Helper()
	prog, err := minic.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	unit, err := loopir.Lower(prog, loopir.LowerOptions{AllowNonAffine: true})
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return unit
}

func run(t *testing.T, src string) *Machine {
	t.Helper()
	m := New(load(t, src))
	if err := m.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return m
}

func mustRead(t *testing.T, m *Machine, expr string) float64 {
	t.Helper()
	v, err := m.Read(expr)
	if err != nil {
		t.Fatalf("read %s: %v", expr, err)
	}
	return v
}

func TestSimpleLoop(t *testing.T) {
	m := run(t, `
#define N 10
double a[N];
for (i = 0; i < N; i++) a[i] = i * 2;
`)
	for i := 0; i < 10; i++ {
		want := float64(i * 2)
		if got := mustRead(t, m, sprintfIndex("a", i)); got != want {
			t.Fatalf("a[%d] = %f, want %f", i, got, want)
		}
	}
}

func sprintfIndex(name string, i int) string {
	return name + "[" + itoa(i) + "]"
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func TestAccumulation(t *testing.T) {
	m := run(t, `
#define N 100
double s;
double a[N];
for (i = 0; i < N; i++) a[i] = 1.0;
for (i = 0; i < N; i++) s += a[i] * 2.0;
`)
	if got := mustRead(t, m, "s"); got != 200 {
		t.Fatalf("s = %f", got)
	}
}

func TestCompoundOps(t *testing.T) {
	m := run(t, `
double x;
x = 10.0;
x += 5.0;
x -= 3.0;
x *= 4.0;
x /= 6.0;
`)
	if got := mustRead(t, m, "x"); math.Abs(got-8.0) > 1e-12 {
		t.Fatalf("x = %f, want 8", got)
	}
}

func TestStructMembers(t *testing.T) {
	m := run(t, `
#define N 4
struct P { double x; double y; };
struct P pts[N];
for (i = 0; i < N; i++) {
    pts[i].x = i;
    pts[i].y = pts[i].x * pts[i].x;
}
`)
	if got := mustRead(t, m, "pts[3].y"); got != 9 {
		t.Fatalf("pts[3].y = %f", got)
	}
	if got := mustRead(t, m, "pts[2].x"); got != 2 {
		t.Fatalf("pts[2].x = %f", got)
	}
}

func TestNestedLoops2D(t *testing.T) {
	m := run(t, `
#define N 5
#define M 4
double g[M][N];
for (j = 0; j < M; j++)
  for (i = 0; i < N; i++)
    g[j][i] = j * 10 + i;
`)
	if got := mustRead(t, m, "g[3][2]"); got != 32 {
		t.Fatalf("g[3][2] = %f", got)
	}
}

func TestDownwardLoop(t *testing.T) {
	m := run(t, `
#define N 5
double a[N];
double k;
for (i = N - 1; i >= 0; i--) {
    a[i] = k;
    k += 1.0;
}
`)
	// k counts 0,1,2,... assigned to a[4],a[3],...
	if got := mustRead(t, m, "a[4]"); got != 0 {
		t.Fatalf("a[4] = %f", got)
	}
	if got := mustRead(t, m, "a[0]"); got != 4 {
		t.Fatalf("a[0] = %f", got)
	}
}

func TestNonAffineSubscriptExecutes(t *testing.T) {
	// The cost model skips i*j, but the interpreter evaluates it.
	m := run(t, `
#define N 4
double a[N][N];
for (i = 0; i < N; i++)
  for (j = 0; j < N; j++)
    a[i][(i * j) % N] += 1.0;
`)
	total := 0.0
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			total += mustRead(t, m, "a["+itoa(i)+"]["+itoa(j)+"]")
		}
	}
	if total != 16 {
		t.Fatalf("total writes = %f, want 16", total)
	}
}

func TestBoundsChecking(t *testing.T) {
	unit := load(t, `
#define N 4
double a[N];
for (i = 0; i <= N; i++) a[i] = 1.0;
`)
	m := New(unit)
	err := m.Run()
	if err == nil || !strings.Contains(err.Error(), "out of bounds") {
		t.Fatalf("expected bounds error, got %v", err)
	}
}

func TestDivisionByZeroRuntime(t *testing.T) {
	unit := load(t, `
double x;
double y;
x = 1.0;
y = x / (x - 1.0);
`)
	m := New(unit)
	if err := m.Run(); err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("expected division error, got %v", err)
	}
}

func TestStepLimit(t *testing.T) {
	unit := load(t, `
#define N 1000
double a[N];
for (i = 0; i < N; i++) a[i] = 1.0;
`)
	m := New(unit)
	m.MaxSteps = 10
	if err := m.Run(); err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Fatalf("expected step limit error, got %v", err)
	}
}

func TestWriteAndReadHelpers(t *testing.T) {
	unit := load(t, `
#define N 4
double a[N];
double out;
for (i = 0; i < N; i++) out += a[i];
`)
	m := New(unit)
	if err := m.Write("a[0]", 5); err != nil {
		t.Fatal(err)
	}
	if err := m.Write("a[3]", 7); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := mustRead(t, m, "out"); got != 12 {
		t.Fatalf("out = %f", got)
	}
	if _, err := m.Read("nosuch[0]"); err == nil {
		t.Fatal("expected error for unknown symbol")
	}
	if _, err := m.Read("@@"); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestRawAddressAccess(t *testing.T) {
	unit := load(t, `
double a[2];
`)
	m := New(unit)
	sym := unit.SymOrder[0]
	m.WriteAddr(sym.Base+8, 42)
	if got := m.ReadAddr(sym.Base + 8); got != 42 {
		t.Fatalf("raw read = %f", got)
	}
	if got := mustRead(t, m, "a[1]"); got != 42 {
		t.Fatalf("a[1] = %f", got)
	}
}

func TestUndeclaredIdentifierRejectedBeforeInterp(t *testing.T) {
	// Lowering already rejects undeclared identifiers, so the interpreter
	// never sees them; verify the pipeline does fail.
	prog, err := minic.Parse(`
double a[4];
for (i = 0; i < 4; i++) a[i] = q;
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loopir.Lower(prog, loopir.LowerOptions{}); err == nil ||
		!strings.Contains(err.Error(), "undeclared") {
		t.Fatalf("expected undeclared error, got %v", err)
	}
}

func TestModuloArithmetic(t *testing.T) {
	m := run(t, `
double a[10];
for (i = 0; i < 10; i++) a[i % 3] += 1.0;
`)
	// i%3 hits 0 four times (0,3,6,9), 1 and 2 three times each.
	if got := mustRead(t, m, "a[0]"); got != 4 {
		t.Fatalf("a[0] = %f", got)
	}
	if got := mustRead(t, m, "a[1]"); got != 3 {
		t.Fatalf("a[1] = %f", got)
	}
}

func TestEvalIntPaths(t *testing.T) {
	// Exercise integer evaluation through subscripts: arithmetic on loop
	// vars and defines, unary minus, float literal truncation, memory
	// reads used as indices.
	m := run(t, `
#define N 12
#define HALF N / 2
double a[N];
double idx;
idx = 3.0;
a[HALF + 1] = 1.0;
a[HALF - 1] = 2.0;
a[2 * 3] = 3.0;
a[7 % 3] = 4.0;
a[-(0 - 4)] = 5.0;
a[idx] = 6.0;
a[2.9] = 7.0;
`)
	checks := map[string]float64{
		"a[7]": 1.0, "a[5]": 2.0, "a[6]": 3.0, "a[1]": 4.0,
		"a[4]": 5.0, "a[3]": 6.0, "a[2]": 7.0,
	}
	for expr, want := range checks {
		if got := mustRead(t, m, expr); got != want {
			t.Errorf("%s = %f, want %f", expr, got, want)
		}
	}
	if got := mustRead(t, m, "a[5]"); got != 2.0 {
		t.Errorf("a[5] = %f", got)
	}
}

func TestEvalIntErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"double a[4];\na[1 / 0] = 1.0;", "division by zero"},
		{"double a[4];\na[1 % 0] = 1.0;", "modulo by zero"},
	}
	for _, c := range cases {
		unit := load(t, c.src)
		if err := New(unit).Run(); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%q: err = %v", c.src, err)
		}
	}
}

func TestEvalFloatPaths(t *testing.T) {
	m := run(t, `
#define K 3
double x;
double y;
y = 2.0;
x = -y + K * 1.5 - 6.0 / y + 7 % 4;
`)
	// -2 + 4.5 - 3 + 3 = 2.5
	if got := mustRead(t, m, "x"); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("x = %f", got)
	}
}

func TestEvalFloatModuloByZero(t *testing.T) {
	unit := load(t, `
double x;
x = 5.0 % 0;
`)
	if err := New(unit).Run(); err == nil || !strings.Contains(err.Error(), "modulo by zero") {
		t.Fatalf("err = %v", err)
	}
}

func TestForLoopLEAndNEQ(t *testing.T) {
	m := run(t, `
double a[6];
double b[6];
for (i = 0; i <= 5; i++) a[i] = 1.0;
for (i = 0; i != 4; i++) b[i] = 1.0;
`)
	sumA, sumB := 0.0, 0.0
	for i := 0; i < 6; i++ {
		sumA += mustRead(t, m, sprintfIndex("a", i))
		sumB += mustRead(t, m, sprintfIndex("b", i))
	}
	if sumA != 6 || sumB != 4 {
		t.Fatalf("sums = %f, %f", sumA, sumB)
	}
}
