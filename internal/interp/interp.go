// Package interp is a reference interpreter for lowered mini-C programs.
// It executes loop nests sequentially with real floating-point arithmetic
// and bounds-checked addressing, providing the ground truth used to verify
// that the kernel sources fed to the cost models compute what their native
// Go counterparts compute (and that the front end parsed them correctly).
package interp

import (
	"fmt"

	"repro/internal/loopir"
	"repro/internal/minic"
)

// Machine executes a lowered unit. Memory is element-addressed by virtual
// byte address; every element behaves as a float64 regardless of its
// declared C type (sufficient for the numeric kernels modeled here).
type Machine struct {
	unit *loopir.Unit
	mem  map[int64]float64
	// Steps counts executed assignments, as a runaway guard for tests.
	Steps int64
	// MaxSteps aborts execution when positive and exceeded.
	MaxSteps int64
}

// New returns a machine with zeroed memory.
func New(unit *loopir.Unit) *Machine {
	return &Machine{unit: unit, mem: make(map[int64]float64)}
}

// Run executes every top-level statement of the program in source order.
func (m *Machine) Run() error {
	env := map[string]int64{}
	for _, d := range m.unit.Prog.Defines {
		env[d.Name] = d.Value
	}
	for _, s := range m.unit.Prog.Stmts {
		if err := m.exec(s, env); err != nil {
			return err
		}
	}
	return nil
}

func (m *Machine) exec(s minic.Stmt, env map[string]int64) error {
	switch v := s.(type) {
	case *minic.ForStmt:
		return m.execFor(v, env)
	case *minic.AssignStmt:
		return m.execAssign(v, env)
	}
	return fmt.Errorf("interp: %s: unsupported statement", s.Pos())
}

func (m *Machine) execFor(f *minic.ForStmt, env map[string]int64) error {
	init, err := m.evalInt(f.Init, env)
	if err != nil {
		return err
	}
	step, err := m.evalInt(f.Step, env)
	if err != nil {
		return err
	}
	if step == 0 {
		return fmt.Errorf("interp: %s: zero loop step", f.P)
	}
	saved, had := env[f.Var]
	defer func() {
		if had {
			env[f.Var] = saved
		} else {
			delete(env, f.Var)
		}
	}()
	for v := init; ; v += step {
		env[f.Var] = v
		bound, err := m.evalInt(f.Bound, env)
		if err != nil {
			return err
		}
		ok := false
		switch f.CondOp {
		case minic.LT:
			ok = v < bound
		case minic.LE:
			ok = v <= bound
		case minic.GT:
			ok = v > bound
		case minic.GE:
			ok = v >= bound
		case minic.NEQ:
			ok = v != bound
		}
		if !ok {
			return nil
		}
		for _, s := range f.Body {
			if err := m.exec(s, env); err != nil {
				return err
			}
		}
	}
}

func (m *Machine) execAssign(a *minic.AssignStmt, env map[string]int64) error {
	m.Steps++
	if m.MaxSteps > 0 && m.Steps > m.MaxSteps {
		return fmt.Errorf("interp: step limit %d exceeded", m.MaxSteps)
	}
	rhs, err := m.evalFloat(a.RHS, env)
	if err != nil {
		return err
	}
	addr, _, err := m.resolveAddr(a.LHS, env)
	if err != nil {
		return err
	}
	switch a.Op {
	case minic.ASSIGN:
		m.mem[addr] = rhs
	case minic.PLUSASSIGN:
		m.mem[addr] += rhs
	case minic.MINUSASSIGN:
		m.mem[addr] -= rhs
	case minic.STARASSIGN:
		m.mem[addr] *= rhs
	case minic.SLASHASSIGN:
		m.mem[addr] /= rhs
	default:
		return fmt.Errorf("interp: %s: unsupported assignment operator", a.P)
	}
	return nil
}

// resolveAddr walks a reference's accessor chain with runtime index values
// and bounds checking, returning the element's virtual address and type.
func (m *Machine) resolveAddr(ref *minic.RefExpr, env map[string]int64) (int64, loopir.Type, error) {
	sym, ok := m.unit.Syms[ref.Name]
	if !ok {
		return 0, nil, fmt.Errorf("interp: %s: undeclared identifier %q", ref.P, ref.Name)
	}
	addr := sym.Base
	var t loopir.Type = sym.Type
	for _, p := range ref.Post {
		if p.Index != nil {
			arr, ok := t.(*loopir.Array)
			if !ok {
				return 0, nil, fmt.Errorf("interp: %s: indexing non-array in %s", ref.P, ref)
			}
			idx, err := m.evalInt(p.Index, env)
			if err != nil {
				return 0, nil, err
			}
			if idx < 0 || idx >= arr.Len {
				return 0, nil, fmt.Errorf("interp: %s: index %d out of bounds [0,%d) in %s", ref.P, idx, arr.Len, ref)
			}
			addr += idx * arr.Elem.Size()
			t = arr.Elem
		} else {
			st, ok := t.(*loopir.Struct)
			if !ok {
				return 0, nil, fmt.Errorf("interp: %s: member access on non-struct in %s", ref.P, ref)
			}
			f, ok := st.FieldByName(p.Field)
			if !ok {
				return 0, nil, fmt.Errorf("interp: %s: no field %q in struct %s", ref.P, p.Field, st.Name)
			}
			addr += f.Offset
			t = f.Type
		}
	}
	return addr, t, nil
}

// evalInt evaluates an integer-valued expression (loop bounds, subscripts).
func (m *Machine) evalInt(e minic.Expr, env map[string]int64) (int64, error) {
	switch v := e.(type) {
	case *minic.IntLit:
		return v.Value, nil
	case *minic.FloatLit:
		return int64(v.Value), nil
	case *minic.RefExpr:
		if v.IsScalar() {
			if val, ok := env[v.Name]; ok {
				return val, nil
			}
			if val, ok := m.unit.Prog.DefineValue(v.Name); ok {
				return val, nil
			}
		}
		f, err := m.evalFloat(v, env)
		if err != nil {
			return 0, err
		}
		return int64(f), nil
	case *minic.UnaryExpr:
		x, err := m.evalInt(v.X, env)
		if err != nil {
			return 0, err
		}
		return -x, nil
	case *minic.BinaryExpr:
		x, err := m.evalInt(v.X, env)
		if err != nil {
			return 0, err
		}
		y, err := m.evalInt(v.Y, env)
		if err != nil {
			return 0, err
		}
		switch v.Op {
		case minic.PLUS:
			return x + y, nil
		case minic.MINUS:
			return x - y, nil
		case minic.STAR:
			return x * y, nil
		case minic.SLASH:
			if y == 0 {
				return 0, fmt.Errorf("interp: %s: division by zero", v.P)
			}
			return x / y, nil
		case minic.PERCENT:
			if y == 0 {
				return 0, fmt.Errorf("interp: %s: modulo by zero", v.P)
			}
			return x % y, nil
		}
	}
	return 0, fmt.Errorf("interp: %s: unsupported integer expression", e.Pos())
}

// evalFloat evaluates a value expression.
func (m *Machine) evalFloat(e minic.Expr, env map[string]int64) (float64, error) {
	switch v := e.(type) {
	case *minic.IntLit:
		return float64(v.Value), nil
	case *minic.FloatLit:
		return v.Value, nil
	case *minic.RefExpr:
		if v.IsScalar() {
			if val, ok := env[v.Name]; ok {
				return float64(val), nil
			}
			if val, ok := m.unit.Prog.DefineValue(v.Name); ok {
				return float64(val), nil
			}
		}
		addr, _, err := m.resolveAddr(v, env)
		if err != nil {
			return 0, err
		}
		return m.mem[addr], nil
	case *minic.UnaryExpr:
		x, err := m.evalFloat(v.X, env)
		if err != nil {
			return 0, err
		}
		return -x, nil
	case *minic.BinaryExpr:
		x, err := m.evalFloat(v.X, env)
		if err != nil {
			return 0, err
		}
		y, err := m.evalFloat(v.Y, env)
		if err != nil {
			return 0, err
		}
		switch v.Op {
		case minic.PLUS:
			return x + y, nil
		case minic.MINUS:
			return x - y, nil
		case minic.STAR:
			return x * y, nil
		case minic.SLASH:
			if y == 0 {
				return 0, fmt.Errorf("interp: %s: division by zero", v.P)
			}
			return x / y, nil
		case minic.PERCENT:
			yi := int64(y)
			if yi == 0 {
				return 0, fmt.Errorf("interp: %s: modulo by zero", v.P)
			}
			return float64(int64(x) % yi), nil
		}
	}
	return 0, fmt.Errorf("interp: %s: unsupported expression", e.Pos())
}

// Read parses expr (e.g. "tid_args[3].sx") and returns the stored value.
func (m *Machine) Read(expr string) (float64, error) {
	ref, err := parseRef(expr)
	if err != nil {
		return 0, err
	}
	addr, _, err := m.resolveAddr(ref, map[string]int64{})
	if err != nil {
		return 0, err
	}
	return m.mem[addr], nil
}

// Write parses expr and stores v there (used to initialize inputs).
func (m *Machine) Write(expr string, v float64) error {
	ref, err := parseRef(expr)
	if err != nil {
		return err
	}
	addr, _, err := m.resolveAddr(ref, map[string]int64{})
	if err != nil {
		return err
	}
	m.mem[addr] = v
	return nil
}

// WriteAddr stores v at a raw virtual address (used by bulk initializers).
func (m *Machine) WriteAddr(addr int64, v float64) { m.mem[addr] = v }

// ReadAddr loads the value at a raw virtual address.
func (m *Machine) ReadAddr(addr int64) float64 { return m.mem[addr] }

func parseRef(expr string) (*minic.RefExpr, error) {
	prog, err := minic.Parse(expr + " = 0;")
	if err != nil {
		return nil, fmt.Errorf("interp: bad reference %q: %w", expr, err)
	}
	if len(prog.Stmts) != 1 {
		return nil, fmt.Errorf("interp: bad reference %q", expr)
	}
	as, ok := prog.Stmts[0].(*minic.AssignStmt)
	if !ok {
		return nil, fmt.Errorf("interp: bad reference %q", expr)
	}
	return as.LHS, nil
}
