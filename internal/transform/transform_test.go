package transform

import (
	"strings"
	"testing"

	"repro/internal/fsmodel"
	"repro/internal/loopir"
	"repro/internal/machine"
	"repro/internal/minic"
)

const accumSrc = `
#define N 1024

struct Acc { double sx; double sxx; double sy; double syy; double sxy; };
struct Acc acc[N];
double vx[N];

#pragma omp parallel for schedule(static,1) num_threads(8)
for (i = 0; i < N; i++)
  for (r = 0; r < 20; r++)
    acc[i].sx += vx[i];
`

func parse(t *testing.T, src string) *minic.Program {
	t.Helper()
	prog, err := minic.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestPadStructsRoundsToLine(t *testing.T) {
	prog := parse(t, accumSrc)
	padded, changes, err := PadStructs(prog, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(changes) != 1 || changes[0].Struct != "Acc" {
		t.Fatalf("changes = %v", changes)
	}
	if changes[0].OldSize != 40 || changes[0].NewSize != 64 || changes[0].PadBytes != 24 {
		t.Fatalf("change = %+v", changes[0])
	}
	if !strings.Contains(changes[0].String(), "40 -> 64") {
		t.Fatalf("Change.String = %q", changes[0].String())
	}

	// The padded program must lower to a 64-byte struct.
	unit, err := loopir.Lower(padded, loopir.LowerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := unit.Structs["Acc"].Size(); got != 64 {
		t.Fatalf("padded size = %d", got)
	}
	// Original program must be untouched.
	orig, err := loopir.Lower(prog, loopir.LowerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := orig.Structs["Acc"].Size(); got != 40 {
		t.Fatalf("original mutated: size = %d", got)
	}
}

func TestPadStructsSkipsAlignedAndEmbedded(t *testing.T) {
	src := `
struct Inner { double a; double b; };
struct Outer { struct Inner in; double c; double d; double e; double f; double g; double h; };
struct Exact { double v[8]; };
struct Outer o[4];
struct Exact x[4];
`
	prog := parse(t, src)
	_, changes, err := PadStructs(prog, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range changes {
		if c.Struct == "Inner" {
			t.Fatal("embedded struct must not be padded")
		}
		if c.Struct == "Exact" {
			t.Fatal("already-aligned struct must not be padded")
		}
	}
	// Outer is 64+... check: Inner 16 + 6 doubles = 64 → aligned, no change.
	if len(changes) != 0 {
		t.Fatalf("unexpected changes: %v", changes)
	}
}

func TestPadStructsBadLineSize(t *testing.T) {
	if _, _, err := PadStructs(parse(t, accumSrc), 0); err == nil {
		t.Fatal("expected error")
	}
}

func TestEvaluatePaddingProfitable(t *testing.T) {
	prog := parse(t, accumSrc)
	d, err := EvaluatePadding(prog, 0, fsmodel.Options{Machine: machine.Paper48()})
	if err != nil {
		t.Fatal(err)
	}
	if d.OrigFSCases == 0 {
		t.Fatal("original should false-share")
	}
	if d.NewFSCases != 0 {
		t.Fatalf("padded FS = %d, want 0", d.NewFSCases)
	}
	if !d.Apply {
		t.Fatalf("padding should be profitable: %.0f -> %.0f cycles", d.OrigCycles, d.NewCycles)
	}
	if d.Speedup() <= 1 {
		t.Fatalf("speedup = %f", d.Speedup())
	}
}

func TestEvaluatePaddingUnprofitableWhenNoFS(t *testing.T) {
	// Sequential-per-line access (chunk 8): no FS to begin with, so
	// padding only inflates the footprint and must be rejected.
	src := strings.Replace(accumSrc, "schedule(static,1)", "schedule(static,8)", 1)
	prog := parse(t, src)
	d, err := EvaluatePadding(prog, 0, fsmodel.Options{Machine: machine.Paper48()})
	if err != nil {
		t.Fatal(err)
	}
	if d.OrigFSCases != 0 {
		t.Fatalf("chunk=8 should not false-share, got %d", d.OrigFSCases)
	}
	if d.Apply {
		t.Fatalf("padding wrongly judged profitable: %.0f -> %.0f cycles", d.OrigCycles, d.NewCycles)
	}
}

func TestEvaluatePaddingErrors(t *testing.T) {
	prog := parse(t, accumSrc)
	if _, err := EvaluatePadding(prog, 0, fsmodel.Options{}); err == nil {
		t.Fatal("missing machine should error")
	}
	if _, err := EvaluatePadding(prog, 7, fsmodel.Options{Machine: machine.Paper48()}); err == nil {
		t.Fatal("bad nest index should error")
	}
}

func TestPadStructsIdempotent(t *testing.T) {
	prog := parse(t, accumSrc)
	once, changes1, err := PadStructs(prog, 64)
	if err != nil {
		t.Fatal(err)
	}
	twice, changes2, err := PadStructs(once, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(changes1) != 1 || len(changes2) != 0 {
		t.Fatalf("padding not idempotent: %v then %v", changes1, changes2)
	}
	unit, err := loopir.Lower(twice, loopir.LowerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if unit.Structs["Acc"].Size() != 64 {
		t.Fatalf("size after double padding = %d", unit.Structs["Acc"].Size())
	}
}

func TestPadStructsOtherLineSizes(t *testing.T) {
	prog := parse(t, accumSrc)
	padded, changes, err := PadStructs(prog, 128)
	if err != nil {
		t.Fatal(err)
	}
	if len(changes) != 1 || changes[0].NewSize != 128 {
		t.Fatalf("changes = %v", changes)
	}
	unit, err := loopir.Lower(padded, loopir.LowerOptions{LineSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	if unit.Structs["Acc"].Size() != 128 {
		t.Fatalf("size = %d", unit.Structs["Acc"].Size())
	}
}
