package transform

// Plan-application primitives for the tuner: small, composable AST
// rewrites that each return a fresh program (inputs are never mutated, so
// the tuner can branch one baseline AST into many candidates). Legality
// that depends on the lowered dependence structure (loop interchange)
// is checked against the loopir nest, not the AST.

import (
	"fmt"

	"repro/internal/loopir"
	"repro/internal/minic"
)

// nestSpine clones prog's statement list and the perfectly-nested ForStmt
// chain of top-level nest nestIdx, returning the clone and its spine
// (outermost first). The descent rule mirrors loopir's lowering: follow a
// loop whose body is exactly one ForStmt. Cloned nodes are fresh; shared
// sub-structure (expressions, non-spine statements) is reused, which is
// safe because nothing in this package mutates expressions in place.
func nestSpine(prog *minic.Program, nestIdx int) (*minic.Program, []*minic.ForStmt, error) {
	out := *prog
	out.Stmts = append([]minic.Stmt(nil), prog.Stmts...)
	seen := -1
	for si, s := range out.Stmts {
		f, ok := s.(*minic.ForStmt)
		if !ok {
			continue
		}
		seen++
		if seen != nestIdx {
			continue
		}
		var spine []*minic.ForStmt
		cl := *f
		out.Stmts[si] = &cl
		cur := &cl
		spine = append(spine, cur)
		for len(cur.Body) == 1 {
			inner, ok := cur.Body[0].(*minic.ForStmt)
			if !ok {
				break
			}
			icl := *inner
			cur.Body = []minic.Stmt{&icl}
			cur = &icl
			spine = append(spine, cur)
		}
		return &out, spine, nil
	}
	return nil, nil, fmt.Errorf("transform: nest index %d out of range (%d top-level loops)", nestIdx, seen+1)
}

// SetSchedule returns a copy of prog where nest nestIdx's parallel loop
// carries schedule(static,chunk). The nest must already be parallel (have
// an omp pragma somewhere on its spine).
func SetSchedule(prog *minic.Program, nestIdx int, chunk int64) (*minic.Program, error) {
	if chunk <= 0 {
		return nil, fmt.Errorf("transform: schedule chunk must be positive, got %d", chunk)
	}
	out, spine, err := nestSpine(prog, nestIdx)
	if err != nil {
		return nil, err
	}
	for _, f := range spine {
		if f.Pragma == nil {
			continue
		}
		pr := *f.Pragma
		pr.Schedule = "static"
		pr.Chunk = &minic.IntLit{Value: chunk, P: pr.P}
		f.Pragma = &pr
		return out, nil
	}
	return nil, fmt.Errorf("transform: nest %d has no omp pragma to reschedule", nestIdx)
}

// Interchange returns a copy of prog with loop levels a and b of nest
// nestIdx swapped (0 = outermost). Only the loop headers move — variable,
// bounds, step — while the pragma stays attached to its nesting position,
// so the parallel level keeps its depth and the iteration space is
// reindexed. Callers must establish legality first via CanInterchange.
func Interchange(prog *minic.Program, nestIdx, a, b int) (*minic.Program, error) {
	if a == b {
		return nil, fmt.Errorf("transform: interchange levels must differ, got %d and %d", a, b)
	}
	out, spine, err := nestSpine(prog, nestIdx)
	if err != nil {
		return nil, err
	}
	if a < 0 || b < 0 || a >= len(spine) || b >= len(spine) {
		return nil, fmt.Errorf("transform: interchange levels %d,%d out of range (depth %d)", a, b, len(spine))
	}
	la, lb := spine[a], spine[b]
	oldA, oldB := la.Var, lb.Var
	la.Var, lb.Var = lb.Var, la.Var
	la.Init, lb.Init = lb.Init, la.Init
	la.CondOp, lb.CondOp = lb.CondOp, la.CondOp
	la.Bound, lb.Bound = lb.Bound, la.Bound
	la.Step, lb.Step = lb.Step, la.Step
	// Data-sharing clauses name loop variables; after the swap a
	// private(i) written for the old parallel variable must follow it, or
	// the emitted pragma would privatize an enclosing loop's live counter.
	ren := map[string]string{oldA: oldB, oldB: oldA}
	for _, f := range spine {
		if f.Pragma == nil {
			continue
		}
		pr := *f.Pragma
		pr.Private = renameVars(f.Pragma.Private, ren)
		pr.Shared = renameVars(f.Pragma.Shared, ren)
		f.Pragma = &pr
	}
	return out, nil
}

func renameVars(names []string, ren map[string]string) []string {
	if len(names) == 0 {
		return names
	}
	out := make([]string, len(names))
	for i, n := range names {
		if r, ok := ren[n]; ok {
			n = r
		}
		out[i] = n
	}
	return out
}

// CanInterchange reports whether swapping levels a and b of the lowered
// nest is provably legal under this package's conservative rule:
//
//   - every loop in the nest has constant bounds (a rectangular iteration
//     space: no bound depends on another loop variable or a parameter), so
//     reordering cannot change any loop's trip set; and
//   - no reference is non-affine (unknown footprint); and
//   - for every pair of references to the same symbol where at least one
//     writes, the byte-offset expressions are identical. Identical-offset
//     pairs touch the same address in the same iteration, so their
//     dependence distance vector is zero in every loop that appears in the
//     subscript — reordering loops cannot reverse a zero distance. Any
//     differing-offset write pair may carry a dependence whose direction a
//     swap could flip, and is rejected without deeper analysis.
//
// A nil return means the interchange is legal.
func CanInterchange(unit *loopir.Unit, nestIdx, a, b int) error {
	if nestIdx < 0 || nestIdx >= len(unit.Nests) {
		return fmt.Errorf("transform: nest index %d out of range (%d nests)", nestIdx, len(unit.Nests))
	}
	nest := unit.Nests[nestIdx]
	if a == b || a < 0 || b < 0 || a >= len(nest.Loops) || b >= len(nest.Loops) {
		return fmt.Errorf("transform: interchange levels %d,%d invalid for depth %d", a, b, len(nest.Loops))
	}
	for _, l := range nest.Loops {
		if _, ok := l.First.ConstValue(); !ok {
			return fmt.Errorf("transform: loop %s has a non-constant lower bound", l.Var)
		}
		if _, ok := l.Limit.ConstValue(); !ok {
			return fmt.Errorf("transform: loop %s has a non-constant upper bound", l.Var)
		}
	}
	for _, r := range nest.Refs {
		if r.NonAffine {
			return fmt.Errorf("transform: non-affine reference %s blocks interchange", r.Src)
		}
	}
	for i, r1 := range nest.Refs {
		for _, r2 := range nest.Refs[i+1:] {
			if r1.Sym != r2.Sym || (!r1.Write && !r2.Write) {
				continue
			}
			if !r1.Offset.Equal(r2.Offset) {
				return fmt.Errorf("transform: possible loop-carried dependence on %s (%s vs %s)",
					r1.Sym.Name, r1.Src, r2.Src)
			}
		}
	}
	return nil
}

// PadStruct returns a copy of prog in which the named struct gains a
// trailing "char _fspad[n]" field rounding its size up to the next
// lineSize multiple. Unlike PadStructs it targets one struct, so the
// tuner can enumerate per-victim padding actions. It refuses structs that
// are embedded in other structs (padding would shift the outer layout in
// ways the diagnostics did not model), already line-multiple structs, and
// structs already carrying a _fspad field.
func PadStruct(prog *minic.Program, name string, lineSize int64) (*minic.Program, Change, error) {
	if lineSize <= 0 {
		return nil, Change{}, fmt.Errorf("transform: non-positive line size %d", lineSize)
	}
	unit, err := loopir.Lower(prog, loopir.LowerOptions{LineSize: lineSize, AllowNonAffine: true, SymbolicBounds: true})
	if err != nil {
		return nil, Change{}, fmt.Errorf("transform: lowering program: %w", err)
	}
	st, ok := unit.Structs[name]
	if !ok {
		return nil, Change{}, fmt.Errorf("transform: no struct named %q", name)
	}
	for _, sd := range prog.Structs {
		for _, f := range sd.Fields {
			if f.Type.Struct == name {
				return nil, Change{}, fmt.Errorf("transform: struct %s is embedded in struct %s", name, sd.Name)
			}
		}
	}
	size := st.Size()
	if size%lineSize == 0 {
		return nil, Change{}, fmt.Errorf("transform: struct %s is already a line-size multiple (%d bytes)", name, size)
	}
	pad := lineSize - size%lineSize

	out := *prog
	out.Structs = make([]*minic.StructDecl, len(prog.Structs))
	for i, sd := range prog.Structs {
		if sd.Name != name {
			out.Structs[i] = sd
			continue
		}
		for _, f := range sd.Fields {
			if f.Name == "_fspad" {
				return nil, Change{}, fmt.Errorf("transform: struct %s already padded", name)
			}
		}
		padded := &minic.StructDecl{Name: sd.Name, P: sd.P}
		padded.Fields = append(padded.Fields, sd.Fields...)
		padded.Fields = append(padded.Fields, &minic.FieldDecl{
			Type:      minic.TypeSpec{Basic: "char"},
			Name:      "_fspad",
			ArrayLens: []int64{pad},
			P:         sd.P,
		})
		out.Structs[i] = padded
	}
	return &out, Change{Struct: name, OldSize: size, NewSize: size + pad, PadBytes: pad}, nil
}
