package transform

import (
	"strings"
	"testing"

	"repro/internal/loopir"
	"repro/internal/minic"
)

const spineSrc = `
#define M 8
#define N 64

double A[8][64];
double B[8][64];

for (j = 0; j < M; j++) {
    #pragma omp parallel for private(i) schedule(static,1) num_threads(4)
    for (i = 0; i < N; i++) {
        B[j][i] = A[j][i] + 1.0;
    }
}
`

func mustParse(t *testing.T, src string) *minic.Program {
	t.Helper()
	p, err := minic.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p
}

func mustLower(t *testing.T, p *minic.Program) *loopir.Unit {
	t.Helper()
	u, err := loopir.Lower(p, loopir.LowerOptions{AllowNonAffine: true, SymbolicBounds: true})
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return u
}

func TestSetSchedule(t *testing.T) {
	prog := mustParse(t, spineSrc)
	out, err := SetSchedule(prog, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	unit := mustLower(t, out)
	par := unit.Nests[0].Parallelized()
	if par == nil || par.Parallel.Chunk != 16 {
		t.Fatalf("rescheduled nest: parallel=%+v, want chunk 16", par)
	}
	// Original untouched.
	orig := mustLower(t, prog)
	if got := orig.Nests[0].Parallelized().Parallel.Chunk; got != 1 {
		t.Fatalf("input program mutated: chunk now %d", got)
	}
	printed := minic.Print(out)
	if !strings.Contains(printed, "schedule(static,16)") {
		t.Fatalf("printed source missing new schedule:\n%s", printed)
	}
}

func TestSetScheduleErrors(t *testing.T) {
	prog := mustParse(t, "double a[8];\nfor (i = 0; i < 8; i++) a[i] = 0.0;\n")
	if _, err := SetSchedule(prog, 0, 8); err == nil {
		t.Fatal("expected error for sequential nest")
	}
	if _, err := SetSchedule(prog, 3, 8); err == nil {
		t.Fatal("expected error for out-of-range nest")
	}
	if _, err := SetSchedule(prog, 0, 0); err == nil {
		t.Fatal("expected error for non-positive chunk")
	}
}

func TestInterchange(t *testing.T) {
	prog := mustParse(t, spineSrc)
	unit := mustLower(t, prog)
	if err := CanInterchange(unit, 0, 0, 1); err != nil {
		t.Fatalf("expected legal interchange: %v", err)
	}
	out, err := Interchange(prog, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	u2 := mustLower(t, out)
	nest := u2.Nests[0]
	if nest.Loops[0].Var != "i" || nest.Loops[1].Var != "j" {
		t.Fatalf("loop order after interchange: %s,%s want i,j", nest.Loops[0].Var, nest.Loops[1].Var)
	}
	// The pragma stays at depth 1, now driving the j loop; its private
	// clause must follow the variable swap.
	if nest.ParLevel != 1 {
		t.Fatalf("parallel level moved: %d, want 1", nest.ParLevel)
	}
	printed := minic.Print(out)
	if !strings.Contains(printed, "private(j)") {
		t.Fatalf("private clause not renamed:\n%s", printed)
	}
	if _, err := minic.Parse(printed); err != nil {
		t.Fatalf("interchanged program does not re-parse: %v", err)
	}
}

func TestCanInterchangeRejects(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"triangular bounds", `
double A[64][64];
for (j = 0; j < 64; j++) {
    #pragma omp parallel for
    for (i = 0; i < j; i++) {
        A[j][i] = 1.0;
    }
}
`},
		{"stencil write-read offset mismatch", `
double A[64][64];
for (j = 1; j < 63; j++) {
    #pragma omp parallel for
    for (i = 1; i < 63; i++) {
        A[j][i] = A[j][i - 1] + 1.0;
    }
}
`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			unit := mustLower(t, mustParse(t, tc.src))
			if err := CanInterchange(unit, 0, 0, 1); err == nil {
				t.Fatal("expected interchange to be rejected")
			}
		})
	}
}

func TestPadStruct(t *testing.T) {
	src := `
struct P { double x; double y; };
struct Q { double a; };
struct P ps[32];
struct Q qs[32];

#pragma omp parallel for schedule(static,1) num_threads(4)
for (i = 0; i < 32; i++) {
    ps[i].x = 1.0;
}
`
	prog := mustParse(t, src)
	out, ch, err := PadStruct(prog, "P", 64)
	if err != nil {
		t.Fatal(err)
	}
	if ch.OldSize != 16 || ch.NewSize != 64 || ch.PadBytes != 48 {
		t.Fatalf("unexpected change: %+v", ch)
	}
	// Only P is padded; Q untouched; original program untouched.
	u := mustLower(t, out)
	if got := u.Structs["P"].Size(); got != 64 {
		t.Fatalf("padded P size %d, want 64", got)
	}
	if got := u.Structs["Q"].Size(); got != 8 {
		t.Fatalf("Q size changed to %d", got)
	}
	if got := mustLower(t, prog).Structs["P"].Size(); got != 16 {
		t.Fatalf("input program mutated: P size %d", got)
	}
	// Idempotence guard and error cases.
	if _, _, err := PadStruct(out, "P", 64); err == nil {
		t.Fatal("expected error re-padding P")
	}
	if _, _, err := PadStruct(prog, "nosuch", 64); err == nil {
		t.Fatal("expected error for unknown struct")
	}
}
