package transform

import (
	"strings"
	"testing"

	"repro/internal/loopir"
	"repro/internal/minic"
)

// TestPaddedNestKeepsSourceSpans checks that references in a transformed
// (struct-padded, re-lowered) nest still carry valid Pos..End spans into
// the ORIGINAL source text: padding mutates declarations, not the loop
// body, so diagnostics raised on the transformed program must still
// underline the user's code.
func TestPaddedNestKeepsSourceSpans(t *testing.T) {
	src := `
#define N 128

struct Acc { double sx; double sxx; double sy; };

struct Acc acc[N];
double data[N];

#pragma omp parallel for private(i) schedule(static,1)
for (i = 0; i < N; i++) {
  acc[i].sx += data[i];
  acc[i].sxx += data[i] * data[i];
  acc[i].sy += data[i] + 1;
}
`
	prog, err := minic.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	padded, changes, err := PadStructs(prog, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(changes) != 1 {
		t.Fatalf("expected 1 padded struct, got %d", len(changes))
	}
	unit, err := loopir.Lower(padded, loopir.LowerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(src, "\n")
	refs := 0
	for _, nest := range unit.Nests {
		for _, r := range nest.Refs {
			refs++
			if r.P.Line < 1 || r.P.Line > len(lines) {
				t.Fatalf("ref %s: line %d out of source range", r.Src, r.P.Line)
			}
			line := lines[r.P.Line-1]
			if r.EndP.Line != r.P.Line || r.EndP.Col <= r.P.Col || r.EndP.Col > len(line)+1 {
				t.Fatalf("ref %s: bad span %s..%s on %q", r.Src, r.P, r.EndP, line)
			}
			if got := line[r.P.Col-1 : r.EndP.Col-1]; got != r.Src {
				t.Fatalf("ref span %q != ref source %q", got, r.Src)
			}
		}
	}
	if refs < 6 {
		t.Fatalf("only %d refs checked", refs)
	}
}
