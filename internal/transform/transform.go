// Package transform implements the false-sharing elimination step the
// paper leaves as future work (Section VI): source-level data-layout
// transformations — struct padding to cache-line multiples, after
// Jeremiassen & Eggers — whose profitability is decided by the very cost
// model the paper contributes. Padding removes FS cases but enlarges the
// footprint (more cold and capacity misses, more TLB pressure); Equation 1
// prices both sides, so the compiler applies the transformation only when
// Total_c actually improves.
package transform

import (
	"fmt"

	"repro/internal/costmodel"
	"repro/internal/fsmodel"
	"repro/internal/loopir"
	"repro/internal/minic"
)

// Change describes one padded struct.
type Change struct {
	Struct   string
	OldSize  int64
	NewSize  int64
	PadBytes int64
}

// String renders the change.
func (c Change) String() string {
	return fmt.Sprintf("struct %s: %d -> %d bytes (+%d pad)", c.Struct, c.OldSize, c.NewSize, c.PadBytes)
}

// PadStructs returns a copy of prog in which every struct that (a) is not
// embedded inside another struct and (b) does not already end on a
// lineSize multiple gains a trailing "char _fspad[n]" field rounding its
// size up to the next lineSize multiple. The input program is not
// modified.
func PadStructs(prog *minic.Program, lineSize int64) (*minic.Program, []Change, error) {
	if lineSize <= 0 {
		return nil, nil, fmt.Errorf("transform: non-positive line size %d", lineSize)
	}
	// Compute current layouts via a throwaway lowering.
	unit, err := loopir.Lower(prog, loopir.LowerOptions{LineSize: lineSize, AllowNonAffine: true})
	if err != nil {
		return nil, nil, fmt.Errorf("transform: lowering original program: %w", err)
	}

	embedded := map[string]bool{}
	for _, sd := range prog.Structs {
		for _, f := range sd.Fields {
			if f.Type.Struct != "" {
				embedded[f.Type.Struct] = true
			}
		}
	}

	out := *prog
	out.Structs = nil
	var changes []Change
	for _, sd := range prog.Structs {
		st, ok := unit.Structs[sd.Name]
		if !ok {
			out.Structs = append(out.Structs, sd)
			continue
		}
		size := st.Size()
		if embedded[sd.Name] || size%lineSize == 0 {
			out.Structs = append(out.Structs, sd)
			continue
		}
		pad := lineSize - size%lineSize
		padded := &minic.StructDecl{Name: sd.Name, P: sd.P}
		padded.Fields = append(padded.Fields, sd.Fields...)
		padded.Fields = append(padded.Fields, &minic.FieldDecl{
			Type:      minic.TypeSpec{Basic: "char"},
			Name:      "_fspad",
			ArrayLens: []int64{pad},
			P:         sd.P,
		})
		out.Structs = append(out.Structs, padded)
		changes = append(changes, Change{Struct: sd.Name, OldSize: size, NewSize: size + pad, PadBytes: pad})
	}
	return &out, changes, nil
}

// Decision is the outcome of a profitability evaluation.
type Decision struct {
	Changes []Change

	OrigFSCases int64
	NewFSCases  int64

	// Wall-clock Total_c (Equation 1) before and after, in cycles.
	OrigCycles float64
	NewCycles  float64

	// Apply reports whether the transformation improves Total_c.
	Apply bool

	// Transformed is the padded program (whether or not Apply is true).
	Transformed *minic.Program
}

// Speedup returns OrigCycles/NewCycles.
func (d Decision) Speedup() float64 {
	if d.NewCycles <= 0 {
		return 0
	}
	return d.OrigCycles / d.NewCycles
}

// EvaluatePadding pads the program's structs and decides, with the
// combined cost model, whether the transformation is profitable for the
// given nest. This is the decision procedure the paper envisions a
// compiler running before rewriting data layout.
func EvaluatePadding(prog *minic.Program, nestIdx int, opts fsmodel.Options) (*Decision, error) {
	if opts.Machine == nil {
		return nil, fmt.Errorf("transform: options must name a machine")
	}
	padded, changes, err := PadStructs(prog, opts.Machine.LineSize)
	if err != nil {
		return nil, err
	}
	d := &Decision{Changes: changes, Transformed: padded}

	origCycles, origFS, err := totalCycles(prog, nestIdx, opts)
	if err != nil {
		return nil, fmt.Errorf("transform: evaluating original: %w", err)
	}
	newCycles, newFS, err := totalCycles(padded, nestIdx, opts)
	if err != nil {
		return nil, fmt.Errorf("transform: evaluating padded: %w", err)
	}
	d.OrigCycles, d.OrigFSCases = origCycles, origFS
	d.NewCycles, d.NewFSCases = newCycles, newFS
	d.Apply = len(changes) > 0 && newCycles < origCycles
	return d, nil
}

// totalCycles lowers the program and evaluates Equation 1 for the nest.
func totalCycles(prog *minic.Program, nestIdx int, opts fsmodel.Options) (float64, int64, error) {
	unit, err := loopir.Lower(prog, loopir.LowerOptions{
		LineSize:       opts.Machine.LineSize,
		AllowNonAffine: true,
	})
	if err != nil {
		return 0, 0, err
	}
	if nestIdx < 0 || nestIdx >= len(unit.Nests) {
		return 0, 0, fmt.Errorf("nest index %d out of range (%d nests)", nestIdx, len(unit.Nests))
	}
	nest := unit.Nests[nestIdx]
	res, err := fsmodel.Analyze(nest, opts)
	if err != nil {
		return 0, 0, err
	}
	base, err := costmodel.Estimate(nest, opts.Machine, res.Plan)
	if err != nil {
		return 0, 0, err
	}
	return base.TotalWithFS(res.FSCases, opts.Machine, res.Plan.NumThreads), res.FSCases, nil
}
