package omp

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/sched"
)

func TestParallelForCoversExactlyOnce(t *testing.T) {
	const n = 1000
	var counts [n]int32
	ParallelFor(4, 7, n, func(_ int, i int64) {
		atomic.AddInt32(&counts[i], 1)
	})
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("iteration %d executed %d times", i, c)
		}
	}
}

func TestParallelForOwnership(t *testing.T) {
	const n = 200
	const threads = 3
	const chunk = 4
	owner := make([]int32, n)
	ParallelFor(threads, chunk, n, func(tid int, i int64) {
		atomic.StoreInt32(&owner[i], int32(tid))
	})
	plan := sched.Plan{Kind: sched.Static, NumThreads: threads, Chunk: chunk}
	for i := int64(0); i < n; i++ {
		if int(owner[i]) != plan.Owner(i) {
			t.Fatalf("iteration %d ran on thread %d, schedule says %d", i, owner[i], plan.Owner(i))
		}
	}
}

func TestParallelForInOrderWithinThread(t *testing.T) {
	const n = 500
	var mu sync.Mutex
	perThread := map[int][]int64{}
	ParallelFor(4, 3, n, func(tid int, i int64) {
		mu.Lock()
		perThread[tid] = append(perThread[tid], i)
		mu.Unlock()
	})
	for tid, seq := range perThread {
		for k := 1; k < len(seq); k++ {
			if seq[k] <= seq[k-1] {
				t.Fatalf("thread %d executed out of order: %v", tid, seq)
			}
		}
	}
}

func TestParallelForDegenerateInputs(t *testing.T) {
	ran := int32(0)
	ParallelFor(4, 1, 0, func(_ int, _ int64) { atomic.AddInt32(&ran, 1) })
	if ran != 0 {
		t.Fatal("zero-length loop ran iterations")
	}
	ParallelFor(4, 1, -5, func(_ int, _ int64) { atomic.AddInt32(&ran, 1) })
	if ran != 0 {
		t.Fatal("negative-length loop ran iterations")
	}
	// Default threads (0) and default chunk (0) still cover everything.
	var counts [64]int32
	ParallelFor(0, 0, 64, func(_ int, i int64) { atomic.AddInt32(&counts[i], 1) })
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("default-config iteration %d ran %d times", i, c)
		}
	}
}

func TestParallelForMoreThreadsThanChunks(t *testing.T) {
	// 3 iterations, chunk 2 → 2 chunks; extra threads must not deadlock
	// or duplicate work.
	var counts [3]int32
	ParallelFor(16, 2, 3, func(_ int, i int64) { atomic.AddInt32(&counts[i], 1) })
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("iteration %d ran %d times", i, c)
		}
	}
}

func TestParallelForRange(t *testing.T) {
	var sum int64
	var mu sync.Mutex
	ParallelForRange(3, 2, 10, 20, func(_ int, i int64) {
		mu.Lock()
		sum += i
		mu.Unlock()
	})
	want := int64(0)
	for i := int64(10); i < 20; i++ {
		want += i
	}
	if sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
}
