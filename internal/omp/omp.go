// Package omp is a miniature OpenMP-like runtime for native Go kernels: a
// parallel-for with static round-robin chunk scheduling, matching the
// semantics the paper's cost model assumes (schedule(static,chunk)). The
// example programs use it to demonstrate real false sharing on the host
// machine and to validate the model's chunk-size guidance end to end.
package omp

import (
	"runtime"
	"sync"
)

// ParallelFor executes body(i) for i in [0, n) on `threads` goroutines.
// Iterations are distributed in chunks of `chunk` in round-robin order:
// chunk c is executed by thread c % threads, exactly the paper's
// distribution. chunk <= 0 selects the OpenMP default static schedule (one
// contiguous block per thread).
func ParallelFor(threads int, chunk int64, n int64, body func(thread int, i int64)) {
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	if n <= 0 {
		return
	}
	if chunk <= 0 {
		chunk = (n + int64(threads) - 1) / int64(threads)
	}
	if int64(threads) > (n+chunk-1)/chunk {
		threads = int((n + chunk - 1) / chunk)
	}
	var wg sync.WaitGroup
	wg.Add(threads)
	for t := 0; t < threads; t++ {
		go func(t int) {
			defer wg.Done()
			for start := int64(t) * chunk; start < n; start += chunk * int64(threads) {
				end := start + chunk
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					body(t, i)
				}
			}
		}(t)
	}
	wg.Wait()
}

// ParallelForRange is ParallelFor over [lo, hi).
func ParallelForRange(threads int, chunk int64, lo, hi int64, body func(thread int, i int64)) {
	ParallelFor(threads, chunk, hi-lo, func(t int, i int64) { body(t, lo+i) })
}
