package costmodel

import (
	"fmt"

	"repro/internal/loopir"
	"repro/internal/machine"
	"repro/internal/stackdist"
	"repro/internal/trace"
)

// ReuseDistanceEstimate is the outcome of the stack-distance cache model.
type ReuseDistanceEstimate struct {
	CachePerIter float64
	TLBPerIter   float64

	Iterations int64
	Accesses   int64
	Truncated  bool

	// Per-level miss counts over the analyzed trace prefix (cold misses
	// included in every level).
	L1Misses  int64
	L2Misses  int64
	L3Misses  int64
	TLBMisses int64
}

// CacheModelReuseDistance estimates Cache_c and TLB_c per innermost
// iteration by stack distance analysis over the loop's sequential access
// trace — the more precise (and more expensive) alternative to the
// footprint model, included as an ablation of the Open64-style design.
// A positive maxIters truncates the analyzed trace, trading accuracy for
// modeling time exactly like the paper's chunk-run sampling.
func CacheModelReuseDistance(nest *loopir.Nest, m *machine.Desc, maxIters int64) (*ReuseDistanceEstimate, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	gen, err := trace.NewSequentialGenerator(nest)
	if err != nil {
		return nil, fmt.Errorf("costmodel: reuse-distance trace: %w", err)
	}
	lineAn := stackdist.New()
	pageAn := stackdist.New()
	var lineHist, pageHist stackdist.Histogram

	cur := gen.Cursor(0)
	var accBuf []trace.Access
	est := &ReuseDistanceEstimate{}
	for cur.Next() {
		if maxIters > 0 && est.Iterations >= maxIters {
			est.Truncated = true
			break
		}
		est.Iterations++
		accBuf = gen.Accesses(cur.Vals(), accBuf)
		for i := range accBuf {
			a := &accBuf[i]
			first, last := a.Addr/m.LineSize, (a.Addr+int64(a.Size)-1)/m.LineSize
			for line := first; line <= last; line++ {
				est.Accesses++
				lineHist.Add(lineAn.Access(line))
				pageHist.Add(pageAn.Access(a.Addr / m.PageSize))
			}
		}
	}
	if est.Iterations == 0 {
		return est, nil
	}

	est.L1Misses = lineHist.MissesAtCapacity(m.L1.Lines())
	est.L2Misses = lineHist.MissesAtCapacity(m.L2.Lines())
	est.L3Misses = lineHist.MissesAtCapacity(m.L3.Lines())
	est.TLBMisses = pageHist.MissesAtCapacity(m.TLBEntries)

	// An access missing L1 but hitting L2 costs the L2 latency, and so on
	// outward; everything missing L3 comes from memory.
	cycles := float64(est.L1Misses-est.L2Misses)*float64(m.L2Latency) +
		float64(est.L2Misses-est.L3Misses)*float64(m.L3Latency) +
		float64(est.L3Misses)*float64(m.MemLatency)
	est.CachePerIter = cycles / float64(est.Iterations)
	est.TLBPerIter = float64(est.TLBMisses) * float64(m.TLBLatency) / float64(est.Iterations)
	return est, nil
}
