package costmodel

import (
	"testing"

	"repro/internal/loopir"
	"repro/internal/machine"
	"repro/internal/minic"
	"repro/internal/sched"
)

func loadNest(t *testing.T, src string) *loopir.Nest {
	t.Helper()
	prog, err := minic.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	unit, err := loopir.Lower(prog, loopir.LowerOptions{})
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return unit.Nests[0]
}

func TestProcessorModelBounds(t *testing.T) {
	m := machine.Paper48()
	// 4 loads + 1 store = 5 mem ops on 2 ports → resource ≥ 2.5;
	// 3 FP adds + 1 mul = 4 FP ops on 1 unit → resource ≥ 4.
	ops := loopir.OpCounts{Loads: 4, Stores: 1, FPAdds: 3, FPMuls: 1, Assigns: 1, MaxChain: 4}
	resource, dep, mc := ProcessorModel(ops, m)
	if resource < 4 {
		t.Fatalf("resource = %f, want >= 4 (FP bound)", resource)
	}
	if dep <= 0 {
		t.Fatalf("dependency = %f", dep)
	}
	if mc < resource {
		t.Fatalf("machine cycles %f below resource bound %f", mc, resource)
	}
	// Empty body still costs at least a cycle.
	_, _, mc0 := ProcessorModel(loopir.OpCounts{}, m)
	if mc0 < 1 {
		t.Fatalf("empty body cost = %f", mc0)
	}
}

func TestProcessorModelDivExpensive(t *testing.T) {
	m := machine.Paper48()
	_, _, noDiv := ProcessorModel(loopir.OpCounts{FPAdds: 1, Assigns: 1, MaxChain: 1}, m)
	_, _, withDiv := ProcessorModel(loopir.OpCounts{FPDivs: 1, Assigns: 1, MaxChain: 1}, m)
	if withDiv <= noDiv {
		t.Fatalf("division should dominate: %f vs %f", withDiv, noDiv)
	}
}

func TestCacheModelStreamVsResident(t *testing.T) {
	m := machine.Paper48()
	// Large streaming array: working set >> L3 → lines from memory.
	big := loadNest(t, `
#define N 4000000
double a[N];
#pragma omp parallel for
for (i = 0; i < N; i++) a[i] = 1.0;
`)
	cBig, _ := CacheModel(big, m)
	// Tiny array: resident in L1 → ~0 steady-state.
	small := loadNest(t, `
#define N 64
double a[N];
#pragma omp parallel for
for (i = 0; i < N; i++) a[i] = 1.0;
`)
	cSmall, _ := CacheModel(small, m)
	if cBig <= cSmall {
		t.Fatalf("streaming cost %f should exceed resident cost %f", cBig, cSmall)
	}
	if cSmall != 0 {
		t.Fatalf("L1-resident cost = %f, want 0", cSmall)
	}
	// Stride-1 doubles: 1/8 of a line per iteration.
	wantLines := 1.0 / 8.0
	if got := cBig / float64(m.MemLatency); got < wantLines*0.9 || got > wantLines*1.1 {
		t.Fatalf("lines/iter = %f, want ~%f", got, wantLines)
	}
}

func TestCacheModelReferenceGroups(t *testing.T) {
	m := machine.Paper48()
	// a[i], a[i+1], a[i-1] are one reference group (same line): the cost
	// must match a single reference, not triple it.
	grouped := loadNest(t, `
#define N 4000000
double a[N];
double b[N];
#pragma omp parallel for
for (i = 1; i < N - 1; i++) b[i] = a[i - 1] + a[i] + a[i + 1];
`)
	single := loadNest(t, `
#define N 4000000
double a[N];
double b[N];
#pragma omp parallel for
for (i = 1; i < N - 1; i++) b[i] = a[i];
`)
	cGrouped, _ := CacheModel(grouped, m)
	cSingle, _ := CacheModel(single, m)
	if diff := cGrouped - cSingle; diff > 0.1*cSingle {
		t.Fatalf("reference grouping failed: %f vs %f", cGrouped, cSingle)
	}
}

func TestTLBModel(t *testing.T) {
	m := machine.Paper48()
	// Working set beyond TLB reach (512 entries × 4 KiB = 2 MiB).
	big := loadNest(t, `
#define N 4000000
double a[N];
#pragma omp parallel for
for (i = 0; i < N; i++) a[i] = 1.0;
`)
	_, tlbBig := CacheModel(big, m)
	if tlbBig <= 0 {
		t.Fatalf("TLB cost = %f, want > 0 for 32 MB working set", tlbBig)
	}
	small := loadNest(t, `
#define N 1024
double a[N];
#pragma omp parallel for
for (i = 0; i < N; i++) a[i] = 1.0;
`)
	_, tlbSmall := CacheModel(small, m)
	if tlbSmall != 0 {
		t.Fatalf("TLB cost = %f for TLB-resident set", tlbSmall)
	}
}

func TestLoopOverheadAmortization(t *testing.T) {
	m := machine.Paper48()
	deep := loadNest(t, `
#define N 100
double a[N][N];
#pragma omp parallel for
for (j = 0; j < N; j++)
  for (i = 0; i < N; i++)
    a[j][i] = 1.0;
`)
	ov := LoopOverheadModel(deep, m)
	per := float64(m.LoopOverheadPerIter)
	if ov < per || ov > per*1.5 {
		t.Fatalf("overhead = %f, want within [%f, %f] (outer level amortized)", ov, per, per*1.5)
	}
}

func TestParallelModelScalesWithInstancesAndThreads(t *testing.T) {
	m := machine.Paper48()
	nest := loadNest(t, `
#define N 1000
double a[N];
#pragma omp parallel for
for (i = 0; i < N; i++) a[i] = 1.0;
`)
	// Large chunks make per-chunk dispatch negligible, isolating the
	// barrier term, which grows with team size.
	p2 := sched.Plan{Kind: sched.Static, NumThreads: 2, Chunk: 500}
	p32 := sched.Plan{Kind: sched.Static, NumThreads: 32, Chunk: 500}
	if ParallelModel(nest, m, p32, 1) <= ParallelModel(nest, m, p2, 1) {
		t.Fatal("barrier cost should grow with team size")
	}
	if ParallelModel(nest, m, p2, 10) <= ParallelModel(nest, m, p2, 1) {
		t.Fatal("cost should grow with instance count")
	}
	// At chunk=1 the dispatch term dominates and shrinks per thread: the
	// model must reflect that work-sharing amortizes scheduling.
	c2 := ParallelModel(nest, m, sched.Plan{Kind: sched.Static, NumThreads: 2, Chunk: 1}, 1)
	c32 := ParallelModel(nest, m, sched.Plan{Kind: sched.Static, NumThreads: 32, Chunk: 1}, 1)
	if c32 >= c2 {
		t.Fatal("per-thread dispatch cost should shrink with team size")
	}
}

func TestEstimateBreakdown(t *testing.T) {
	m := machine.Paper48()
	nest := loadNest(t, `
#define N 10000
double a[N];
double b[N];
#pragma omp parallel for schedule(static,8) num_threads(8)
for (i = 0; i < N; i++) a[i] += b[i];
`)
	plan := sched.Plan{Kind: sched.Static, NumThreads: 8, Chunk: 8}
	bd, err := Estimate(nest, m, plan)
	if err != nil {
		t.Fatal(err)
	}
	if bd.TotalIterations != 10000 {
		t.Fatalf("iterations = %d", bd.TotalIterations)
	}
	if bd.IterationsPerThread != 1250 {
		t.Fatalf("iters/thread = %f", bd.IterationsPerThread)
	}
	if bd.ParallelInstances != 1 {
		t.Fatalf("instances = %d", bd.ParallelInstances)
	}
	if bd.PerIter() <= 0 || bd.BaseWallCycles <= 0 {
		t.Fatalf("degenerate breakdown: %+v", bd)
	}
	// Equation 1: adding FS strictly increases the total.
	if bd.TotalWithFS(1000, m, 8) <= bd.BaseWallCycles {
		t.Fatal("FS term should increase Total_c")
	}
	if bd.String() == "" {
		t.Fatal("String empty")
	}
}

func TestEstimateInnerParallelInstances(t *testing.T) {
	m := machine.Paper48()
	nest := loadNest(t, `
#define M 10
#define N 100
double a[M][N];
for (j = 0; j < M; j++)
  #pragma omp parallel for
  for (i = 0; i < N; i++)
    a[j][i] = 1.0;
`)
	plan := sched.Plan{Kind: sched.Static, NumThreads: 4, Chunk: 1}
	bd, err := Estimate(nest, m, plan)
	if err != nil {
		t.Fatal(err)
	}
	if bd.ParallelInstances != 10 {
		t.Fatalf("instances = %d, want 10 (one per outer iteration)", bd.ParallelInstances)
	}
}

func TestEstimateErrors(t *testing.T) {
	m := machine.Paper48()
	nest := loadNest(t, `
#define N 8
double a[N][N];
#pragma omp parallel for
for (j = 0; j < N; j++)
  for (i = j; i < N; i++)
    a[j][i] = 1.0;
`)
	plan := sched.Plan{Kind: sched.Static, NumThreads: 2, Chunk: 1}
	if _, err := Estimate(nest, m, plan); err == nil {
		t.Fatal("non-constant bounds must be rejected for totals")
	}
	good := loadNest(t, `
double a[8];
#pragma omp parallel for
for (i = 0; i < 8; i++) a[i] = 1.0;
`)
	if _, err := Estimate(good, m, sched.Plan{}); err == nil {
		t.Fatal("invalid plan must be rejected")
	}
}

func TestModeledFSPercent(t *testing.T) {
	m := machine.Paper48()
	nest := loadNest(t, `
#define N 10000
double a[N];
#pragma omp parallel for
for (i = 0; i < N; i++) a[i] += 1.0;
`)
	plan := sched.Plan{Kind: sched.Static, NumThreads: 8, Chunk: 1}
	bd, err := Estimate(nest, m, plan)
	if err != nil {
		t.Fatal(err)
	}
	p := ModeledFSPercent(bd, 9000, 100, m, 8)
	if p <= 0 || p >= 1 {
		t.Fatalf("percent = %f", p)
	}
	if ModeledFSPercent(bd, 100, 100, m, 8) != 0 {
		t.Fatal("equal counts should give 0%")
	}
	// More FS → larger share.
	if ModeledFSPercent(bd, 20000, 0, m, 8) <= p {
		t.Fatal("percent should grow with FS count")
	}
}

func TestReuseDistanceStreamingMatchesFootprint(t *testing.T) {
	m := machine.Paper48()
	// A streaming loop whose working set exceeds the L3: both cache
	// models must converge on "one memory fetch per line", i.e.
	// MemLatency/8 cycles per iteration for stride-1 doubles. (For
	// L3-resident single-pass streams the models legitimately differ:
	// the footprint model assumes steady-state reuse, the reuse-distance
	// model charges the cold pass to memory.)
	nest := loadNest(t, `
#define N 4000000
double a[N];
#pragma omp parallel for
for (i = 0; i < N; i++) a[i] = 1.0;
`)
	foot, _ := CacheModel(nest, m)
	rd, err := CacheModelReuseDistance(nest, m, 500000)
	if err != nil {
		t.Fatal(err)
	}
	if !rd.Truncated {
		t.Fatal("expected truncation at 500k iterations")
	}
	ratio := rd.CachePerIter / foot
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("reuse-dist %.3f vs footprint %.3f cycles/iter (ratio %.2f)",
			rd.CachePerIter, foot, ratio)
	}
}

func TestReuseDistanceResidentIsCheap(t *testing.T) {
	m := machine.Paper48()
	// Small working set revisited many times: only cold misses, amortized
	// to ~0 per iteration.
	nest := loadNest(t, `
#define N 512
#define R 64
double a[N];
#pragma omp parallel for
for (r = 0; r < R; r++)
  for (i = 0; i < N; i++)
    a[i] += 1.0;
`)
	rd, err := CacheModelReuseDistance(nest, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 512 doubles = 64 lines of cold misses over 32768 iterations.
	if rd.L1Misses != 64 {
		t.Fatalf("L1 misses = %d, want 64 cold", rd.L1Misses)
	}
	if rd.CachePerIter > 0.5 {
		t.Fatalf("resident cost = %.3f cycles/iter", rd.CachePerIter)
	}
}

func TestReuseDistanceCapacityBehaviour(t *testing.T) {
	// Working set between L1 (64KB = 1024 lines) and L2: repeated sweeps
	// must miss L1 every pass but hit L2.
	m := machine.Paper48()
	nest := loadNest(t, `
#define N 16384
#define R 4
double a[N];
#pragma omp parallel for
for (r = 0; r < R; r++)
  for (i = 0; i < N; i++)
    a[i] += 1.0;
`)
	rd, err := CacheModelReuseDistance(nest, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	lines := int64(16384 * 8 / 64) // 2048 lines > L1's 1024
	if rd.L1Misses < 3*lines {
		t.Fatalf("L1 misses = %d, want ~%d (miss every pass)", rd.L1Misses, 4*lines)
	}
	if rd.L2Misses != lines {
		t.Fatalf("L2 misses = %d, want %d (cold only)", rd.L2Misses, lines)
	}
}

func TestReuseDistanceTruncation(t *testing.T) {
	m := machine.Paper48()
	nest := loadNest(t, `
#define N 100000
double a[N];
#pragma omp parallel for
for (i = 0; i < N; i++) a[i] = 1.0;
`)
	rd, err := CacheModelReuseDistance(nest, m, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !rd.Truncated || rd.Iterations != 1000 {
		t.Fatalf("truncation failed: %+v", rd)
	}
}
