package costmodel

import "repro/internal/machine"

// Helpers for front ends that score false sharing without a lowered
// loopir nest — fsvet (internal/govet) works from go/types field offsets
// and sizes, not affine reference descriptors, but uses the same
// Equation 1 false-sharing term and the same line geometry to turn a
// closed-form straddle count into modeled wall cycles.

// FSWallCycles converts a count of false-sharing cases (line-sharing
// chunk or index boundaries) into modeled wall cycles: one
// cache-to-cache coherence transfer per case, spread over the thread
// team exactly as Breakdown.TotalWithFS spreads it.
func FSWallCycles(fsCases int64, m *machine.Desc, threads int) float64 {
	return fsWallCycles(fsCases, m, threads)
}

// FSWallSeconds is FSWallCycles converted at the machine's clock.
func FSWallSeconds(fsCases int64, m *machine.Desc, threads int) float64 {
	return m.Seconds(fsWallCycles(fsCases, m, threads))
}
