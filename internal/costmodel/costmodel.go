// Package costmodel implements the Open64-style loop-nest cost models the
// paper builds on (Section II-B): the processor model (machine cycles per
// iteration from resource and dependence constraints), the footprint-based
// cache and TLB models, the loop-overhead model, and the parallel model
// (OpenMP fork/join, scheduling and barrier overheads). Equation 1 of the
// paper combines them with the false-sharing term:
//
//	Total_c = FalseSharing_c + Machine_c + Cache_c + TLB_c
//	        + Parallel_Overhead_c + Loop_Overhead_c
//
// The models are deliberately analytical (no simulation): they consume
// only the loop IR and a machine description, exactly like a compiler.
package costmodel

import (
	"fmt"
	"math"

	"repro/internal/loopir"
	"repro/internal/machine"
	"repro/internal/sched"
)

// Breakdown is the per-component cost estimate for one parallel loop.
// Per-iteration components are cycles per innermost iteration; totals are
// wall-clock cycles for the whole loop executed by the thread team.
type Breakdown struct {
	// Processor model (Machine_c_per_iter).
	MachinePerIter   float64
	ResourceCycles   float64 // the resource-constrained bound
	DependencyCycles float64 // the dependence-latency bound

	// Cache and TLB models.
	CachePerIter float64
	TLBPerIter   float64

	// Loop overhead model.
	LoopOverheadPerIter float64

	// Parallel model totals (cycles, whole loop).
	ParallelOverhead float64

	// Iteration geometry.
	TotalIterations     int64 // innermost iterations over all threads
	IterationsPerThread float64
	ParallelInstances   int64 // how many times the parallel region is entered

	// BaseWallCycles is the FS-free wall-clock estimate:
	// perIter × itersPerThread + ParallelOverhead.
	BaseWallCycles float64
}

// PerIter returns the summed per-iteration cycle cost (without FS).
func (b Breakdown) PerIter() float64 {
	return b.MachinePerIter + b.CachePerIter + b.TLBPerIter + b.LoopOverheadPerIter
}

// TotalWithFS applies Equation 1: base cost plus the false-sharing term.
// fsCases is the modeled N_fs; the penalty per case is the machine's
// cache-to-cache coherence latency, spread over the thread team (FS misses
// are incurred concurrently on different cores).
func (b Breakdown) TotalWithFS(fsCases int64, m *machine.Desc, threads int) float64 {
	return b.BaseWallCycles + fsWallCycles(fsCases, m, threads)
}

func fsWallCycles(fsCases int64, m *machine.Desc, threads int) float64 {
	if threads < 1 {
		threads = 1
	}
	return float64(fsCases) * float64(m.CoherenceLatency) / float64(threads)
}

// String renders the breakdown.
func (b Breakdown) String() string {
	return fmt.Sprintf(
		"machine=%.2f cache=%.2f tlb=%.2f loop=%.2f cyc/iter; parallel=%.0f cyc; base wall=%.0f cyc (%d iters, %d instances)",
		b.MachinePerIter, b.CachePerIter, b.TLBPerIter, b.LoopOverheadPerIter,
		b.ParallelOverhead, b.BaseWallCycles, b.TotalIterations, b.ParallelInstances)
}

// Estimate computes the full cost breakdown for a nest under a plan.
func Estimate(nest *loopir.Nest, m *machine.Desc, plan sched.Plan) (Breakdown, error) {
	if err := m.Validate(); err != nil {
		return Breakdown{}, err
	}
	if err := plan.Validate(); err != nil {
		return Breakdown{}, err
	}
	var b Breakdown
	b.ResourceCycles, b.DependencyCycles, b.MachinePerIter = ProcessorModel(nest.Ops, m)
	b.CachePerIter, b.TLBPerIter = CacheModel(nest, m)
	b.LoopOverheadPerIter = LoopOverheadModel(nest, m)

	total, ok := nest.TotalIterations()
	if !ok {
		return Breakdown{}, fmt.Errorf("costmodel: nest has non-constant bounds; cannot estimate totals")
	}
	b.TotalIterations = total
	b.IterationsPerThread = float64(total) / float64(plan.NumThreads)

	b.ParallelInstances = parallelInstances(nest)
	b.ParallelOverhead = ParallelModel(nest, m, plan, b.ParallelInstances)

	b.BaseWallCycles = b.PerIter()*b.IterationsPerThread + b.ParallelOverhead
	return b, nil
}

// ProcessorModel estimates Machine_c_per_iter: the cycles to execute one
// innermost iteration, as the maximum of the resource-constrained
// throughput bound and the dependence-latency bound (paper Fig. 3).
func ProcessorModel(ops loopir.OpCounts, m *machine.Desc) (resource, dependency, machineC float64) {
	memOps := float64(ops.Loads + ops.Stores)
	// Divides occupy the FP unit for multiple cycles.
	fpOps := float64(ops.FPAdds+ops.FPMuls) + float64(ops.FPDivs)*float64(m.FPDivLat)
	intOps := float64(ops.IntOps)
	totalOps := memOps + float64(ops.FPAdds+ops.FPMuls+ops.FPDivs) + intOps

	resource = memOps / float64(max(1, m.MemUnits))
	if v := fpOps / float64(max(1, m.FPUnits)); v > resource {
		resource = v
	}
	if v := intOps / float64(max(1, m.IntUnits)); v > resource {
		resource = v
	}
	if v := totalOps / float64(max(1, m.IssueWidth)); v > resource {
		resource = v
	}

	// Dependence latency: the longest chain of dependent FP operations in
	// one statement (e.g. the add of a multiply-accumulate waiting on the
	// multiply), fed by one load.
	dependency = 0
	if ops.MaxChain > 0 {
		dependency = float64(m.LoadLat) + float64(ops.MaxChain)*float64(m.FPAddLat)
	}
	// Loop-carried accumulator recurrences serialize on the add latency,
	// but unroll-and-reassociate hides most of it; the resource bound
	// usually dominates on balanced kernels.
	machineC = math.Max(resource, dependency/float64(max(1, ops.Assigns)))
	if machineC < 1 {
		machineC = 1
	}
	return resource, dependency, machineC
}

// refGroup is a set of references with identical variable coefficients on
// the same array whose constant offsets fall within one cache line — the
// Open64 notion of a reference group: members share footprints (a[i] and
// a[i+1] count once, paper Section II-B2).
type refGroup struct {
	stride    int64 // bytes advanced per innermost iteration
	footBytes int64 // span of the group's region across the whole nest
	write     bool
}

// CacheModel estimates Cache_c and TLB_c per innermost iteration using the
// footprint method: new cache lines consumed per iteration, served by the
// shallowest cache level whose capacity holds the loop's working set.
func CacheModel(nest *loopir.Nest, m *machine.Desc) (cachePerIter, tlbPerIter float64) {
	groups := referenceGroups(nest, m.LineSize)

	var newLinesPerIter float64
	var newPagesPerIter float64
	var workingSet int64
	for _, g := range groups {
		stride := g.stride
		if stride < 0 {
			stride = -stride
		}
		if stride > m.LineSize {
			stride = m.LineSize // one access touches at most one new line
		}
		newLinesPerIter += float64(stride) / float64(m.LineSize)
		pstride := stride
		if pstride > m.PageSize {
			pstride = m.PageSize
		}
		newPagesPerIter += float64(pstride) / float64(m.PageSize)
		workingSet += g.footBytes
	}

	// The provider of a new line is the shallowest level that holds the
	// working set (so lines evicted between reuses are refetched from the
	// next level out).
	provider := float64(m.MemLatency)
	switch {
	case m.L1.SizeBytes > 0 && workingSet <= m.L1.SizeBytes:
		// Working set is cache resident: only cold misses, amortized to ~0
		// per steady-state iteration.
		provider = 0
	case m.L2.SizeBytes > 0 && workingSet <= m.L2.SizeBytes:
		provider = float64(m.L2Latency)
	case m.L3.SizeBytes > 0 && workingSet <= m.L3.SizeBytes:
		provider = float64(m.L3Latency)
	}
	cachePerIter = newLinesPerIter * provider

	tlbReach := m.TLBEntries * m.PageSize
	if workingSet > tlbReach {
		tlbPerIter = newPagesPerIter * float64(m.TLBLatency)
	}
	return cachePerIter, tlbPerIter
}

// referenceGroups clusters the nest's affine references per Open64's
// spatial-reuse rule.
func referenceGroups(nest *loopir.Nest, lineSize int64) []refGroup {
	inner := nest.Innermost().Var
	type key struct {
		sym    string
		coeffs string
	}
	byKey := map[key][]loopir.Ref{}
	for _, r := range nest.AnalyzableRefs() {
		coeffSig := ""
		for _, v := range r.Offset.Vars() {
			coeffSig += fmt.Sprintf("%s*%d;", v, r.Offset.Coeff(v))
		}
		k := key{sym: r.Sym.Name, coeffs: coeffSig}
		byKey[k] = append(byKey[k], r)
	}
	var out []refGroup
	for _, refs := range byKey {
		// Split the cluster into line-sized constant-offset groups.
		used := make([]bool, len(refs))
		for i := range refs {
			if used[i] {
				continue
			}
			g := refGroup{stride: refs[i].Offset.Coeff(inner) * strideOf(nest, inner)}
			base := refs[i].Offset.ConstTerm
			lo, hi := base, base
			used[i] = true
			g.write = refs[i].Write
			for j := i + 1; j < len(refs); j++ {
				if used[j] {
					continue
				}
				d := refs[j].Offset.ConstTerm - base
				if d < 0 {
					d = -d
				}
				if d < lineSize {
					used[j] = true
					g.write = g.write || refs[j].Write
					if refs[j].Offset.ConstTerm < lo {
						lo = refs[j].Offset.ConstTerm
					}
					if refs[j].Offset.ConstTerm > hi {
						hi = refs[j].Offset.ConstTerm
					}
				}
			}
			g.footBytes = footprintBytes(nest, refs[i]) + (hi - lo)
			out = append(out, g)
		}
	}
	return out
}

func strideOf(nest *loopir.Nest, v string) int64 {
	for _, l := range nest.Loops {
		if l.Var == v {
			return l.Step
		}
	}
	return 1
}

// footprintBytes estimates the byte span a reference sweeps over the whole
// nest: sum over loop variables of |coeff| × (trips-1) × |step|, plus the
// element itself.
func footprintBytes(nest *loopir.Nest, r loopir.Ref) int64 {
	span := r.Size
	for _, l := range nest.Loops {
		c := r.Offset.Coeff(l.Var)
		if c < 0 {
			c = -c
		}
		if c == 0 {
			continue
		}
		trips, ok := l.ConstTripCount()
		if !ok || trips <= 0 {
			trips = 1
		}
		step := l.Step
		if step < 0 {
			step = -step
		}
		span += c * (trips - 1) * step
	}
	return span
}

// LoopOverheadModel estimates Loop_overhead_per_iter: index increment and
// bound test, charged per innermost iteration with the outer levels
// amortized over their inner trip counts.
func LoopOverheadModel(nest *loopir.Nest, m *machine.Desc) float64 {
	per := float64(m.LoopOverheadPerIter)
	total := per // innermost level
	amort := 1.0
	for i := len(nest.Loops) - 1; i > 0; i-- {
		trips, ok := nest.Loops[i].ConstTripCount()
		if !ok || trips < 1 {
			trips = 1
		}
		amort *= float64(trips)
		total += per / amort
	}
	return total
}

// ParallelModel estimates the OpenMP overhead (cycles) for the whole loop:
// per entered parallel region a fork/join startup and a barrier whose cost
// grows with the team size, plus a dispatch cost per scheduled chunk.
func ParallelModel(nest *loopir.Nest, m *machine.Desc, plan sched.Plan, instances int64) float64 {
	if instances < 1 {
		instances = 1
	}
	parTrips := int64(0)
	if p := nest.Parallelized(); p != nil {
		if t, ok := p.ConstTripCount(); ok {
			parTrips = t
		}
	}
	chunksPerThread := float64(0)
	if parTrips > 0 {
		totalChunks := float64(parTrips) / float64(plan.Chunk)
		chunksPerThread = totalChunks / float64(plan.NumThreads)
	}
	barrier := float64(m.BarrierPerThread) * math.Log2(float64(plan.NumThreads)+1)
	perInstance := float64(m.ParallelStartup) + barrier + float64(m.ChunkDispatch)*chunksPerThread
	return float64(instances) * perInstance
}

func parallelInstances(nest *loopir.Nest) int64 {
	n := int64(1)
	for i := 0; i < nest.ParLevel; i++ {
		if t, ok := nest.Loops[i].ConstTripCount(); ok && t > 0 {
			n *= t
		}
	}
	return n
}

// ModeledFSPercent evaluates the paper's Equation 5 right-hand side: the
// modeled share of execution time lost to false sharing,
//
//	(N_fs − N_nfs) / Ñ_fs
//
// where the normalization Ñ_fs converts FS counts into time: N_fs scaled
// by the coherence penalty, measured against the total modeled runtime of
// the FS-suffering loop (Equation 1's Total_c).
func ModeledFSPercent(base Breakdown, nfs, nnfs int64, m *machine.Desc, threads int) float64 {
	total := base.TotalWithFS(nfs, m, threads)
	if total <= 0 {
		return 0
	}
	delta := fsWallCycles(nfs, m, threads) - fsWallCycles(nnfs, m, threads)
	return delta / total
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
