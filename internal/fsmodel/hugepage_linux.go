//go:build linux

package fsmodel

import (
	"syscall"
	"unsafe"
)

// adviseHuge asks the kernel to back the given allocation with
// transparent huge pages. The lazy state's stamp and ring arrays span
// tens of megabytes and are accessed as ~hundreds of interleaved
// per-thread streams, so with 4K pages the hot loop spends much of its
// time in TLB walks; 2M pages cover the whole state with a handful of
// TLB entries. Best effort: failures (or THP disabled) are ignored.
func adviseHuge(p unsafe.Pointer, size uintptr) {
	const madvHugepage = 14
	a := (uintptr(p) + 4095) &^ 4095
	end := (uintptr(p) + size) &^ 4095
	if end <= a {
		return
	}
	syscall.Syscall(syscall.SYS_MADVISE, a, end-a, madvHugepage)
}
