package fsmodel

import (
	"strings"
	"testing"

	"repro/internal/loopir"
	"repro/internal/machine"
	"repro/internal/minic"
)

func loadSymbolic(t *testing.T, src string) *loopir.Nest {
	t.Helper()
	prog, err := minic.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	unit, err := loopir.Lower(prog, loopir.LowerOptions{AllowNonAffine: true, SymbolicBounds: true})
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return unit.Nests[0]
}

// The paper's fallback: a loop whose trip count is unknown at compile time
// still yields an FS rate per chunk run.
func TestAnalyzeRateSymbolicBound(t *testing.T) {
	nest := loadSymbolic(t, `
double a[65536];
#pragma omp parallel for schedule(static,1) num_threads(8)
for (i = 0; i < n; i++) a[i] += 1.0;
`)
	if got := nest.Params(); len(got) != 1 || got[0] != "$n" {
		t.Fatalf("params = %v", got)
	}
	if _, ok := nest.TotalIterations(); ok {
		t.Fatal("symbolic nest must not report a constant total")
	}
	res, err := AnalyzeRate(nest, Options{Machine: machine.Paper48()}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if res.ChunkRunsEvaluated != 16 {
		t.Fatalf("evaluated %d runs", res.ChunkRunsEvaluated)
	}
	if res.ChunkRunsTotal != 0 {
		t.Fatal("total must be unknown")
	}
	// 8 threads × chunk 1 = one 64-byte line per run: steady state is 7
	// FS cases per run.
	if res.FSPerChunkRun != 7 {
		t.Fatalf("rate = %f, want 7", res.FSPerChunkRun)
	}
	if res.Assumed["n"] < 16*8 {
		t.Fatalf("assumed n = %d", res.Assumed["n"])
	}
}

// Against a known-bounds nest, the rate analysis must agree with the full
// model's per-run behaviour.
func TestAnalyzeRateMatchesFullModel(t *testing.T) {
	src := `
#define N 1024
double a[N];
#pragma omp parallel for schedule(static,1) num_threads(8)
for (i = 0; i < N; i++) a[i] += 1.0;
`
	symbolic := loadSymbolic(t, strings.Replace(src, "i < N", "i < n", 1))
	known := loadNest(t, src)
	full, err := Analyze(known, Options{Machine: machine.Paper48()})
	if err != nil {
		t.Fatal(err)
	}
	rate, err := AnalyzeRate(symbolic, Options{Machine: machine.Paper48()}, 8)
	if err != nil {
		t.Fatal(err)
	}
	extrapolated := rate.FSPerChunkRun * float64(full.ChunkRunsTotal)
	rel := (extrapolated - float64(full.FSCases)) / float64(full.FSCases)
	if rel < -0.05 || rel > 0.05 {
		t.Fatalf("rate-extrapolated %f vs full %d (%.1f%%)", extrapolated, full.FSCases, rel*100)
	}
}

func TestAnalyzeRateConstantBoundsStillWork(t *testing.T) {
	nest := loadNest(t, `
#define N 512
double a[N];
#pragma omp parallel for schedule(static,1) num_threads(4)
for (i = 0; i < N; i++) a[i] += 1.0;
`)
	res, err := AnalyzeRate(nest, Options{Machine: machine.Paper48()}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.ChunkRunsEvaluated != 4 || len(res.Assumed) != 0 {
		t.Fatalf("res = %+v", res)
	}
	if res.FSPerChunkRun <= 0 {
		t.Fatal("rate missing")
	}
}

func TestAnalyzeRateErrors(t *testing.T) {
	// Symbolic bound on a non-parallel loop is rejected.
	inner := loadSymbolic(t, `
double a[4096];
#pragma omp parallel for num_threads(2)
for (j = 0; j < 64; j++)
  for (i = 0; i < m; i++)
    a[i] = 1.0;
`)
	if _, err := AnalyzeRate(inner, Options{Machine: machine.Paper48()}, 4); err == nil ||
		!strings.Contains(err.Error(), "only the parallel loop") {
		t.Fatalf("err = %v", err)
	}
	// runs < 1 rejected.
	ok := loadSymbolic(t, `
double a[4096];
#pragma omp parallel for num_threads(2)
for (i = 0; i < n; i++) a[i] = 1.0;
`)
	if _, err := AnalyzeRate(ok, Options{Machine: machine.Paper48()}, 0); err == nil {
		t.Fatal("runs=0 should error")
	}
	// Two unknowns in the limit are rejected.
	two := loadSymbolic(t, `
double a[4096];
#pragma omp parallel for num_threads(2)
for (i = 0; i < n + m; i++) a[i] = 1.0;
`)
	if _, err := AnalyzeRate(two, Options{Machine: machine.Paper48()}, 4); err == nil ||
		!strings.Contains(err.Error(), "multiple unknowns") {
		t.Fatalf("err = %v", err)
	}
}
