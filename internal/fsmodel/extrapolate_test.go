package fsmodel

import (
	"fmt"
	"testing"

	"repro/internal/kernels"
	"repro/internal/loopir"
	"repro/internal/machine"
)

// exCase is one cell of the extrapolation differential matrix. closed is
// a tri-state expectation: +1 = the closure must fire, -1 = it must fall
// back to full simulation, 0 = either is acceptable (equality is still
// asserted).
type exCase struct {
	name    string
	nest    func(t *testing.T) *loopir.Nest
	threads int
	chunk   int64
	closed  int
	period  int64 // pinned ExtrapolationPeriod when closed = +1
}

func heatNest(rows, cols int64) func(t *testing.T) *loopir.Nest {
	return func(t *testing.T) *loopir.Nest {
		t.Helper()
		k, err := kernels.Heat(rows, cols)
		if err != nil {
			t.Fatal(err)
		}
		return k.Nest
	}
}

func dftNest(n int64) func(t *testing.T) *loopir.Nest {
	return func(t *testing.T) *loopir.Nest {
		t.Helper()
		k, err := kernels.DFT(n)
		if err != nil {
			t.Fatal(err)
		}
		return k.Nest
	}
}

func linregNest(tasks, points int64, threads int) func(t *testing.T) *loopir.Nest {
	return func(t *testing.T) *loopir.Nest {
		t.Helper()
		k, err := kernels.LinReg(tasks, points, threads)
		if err != nil {
			t.Fatal(err)
		}
		return k.Nest
	}
}

// requireSameTotals compares the counter totals of a fully simulated and
// a (possibly) extrapolated run of the same configuration.
func requireSameTotals(t *testing.T, label string, full, ex *Result) {
	t.Helper()
	type counters struct {
		FSCases, Invalidations, Iterations, Steps, Accesses int64
		ColdMisses, CapacityEvictions                       int64
	}
	f := counters{full.FSCases, full.Invalidations, full.Iterations, full.Steps, full.Accesses,
		full.ColdMisses, full.CapacityEvictions}
	e := counters{ex.FSCases, ex.Invalidations, ex.Iterations, ex.Steps, ex.Accesses,
		ex.ColdMisses, ex.CapacityEvictions}
	if f != e {
		t.Fatalf("%s: totals differ:\nfull:         %+v\nextrapolated: %+v", label, f, e)
	}
	if len(full.ByRef) != len(ex.ByRef) {
		t.Fatalf("%s: ByRef length differs", label)
	}
	for i := range full.ByRef {
		if full.ByRef[i].FSCases != ex.ByRef[i].FSCases {
			t.Fatalf("%s: ByRef[%d] (%s) differs: full %d, extrapolated %d",
				label, i, full.ByRef[i].Src, full.ByRef[i].FSCases, ex.ByRef[i].FSCases)
		}
	}
}

// TestExtrapolateMatchesFullSimulation is the differential gate the
// closure must pass: for every matrix cell, Options.Extrapolate produces
// totals bit-identical to full simulation — whether the closure fires
// (uniform steady state reached) or the run correctly falls back.
//
// dft at chunk 1 is the alignment regression: its x[k] reference moves 8
// bytes per outer trip and crosses a cache line only every 8th trip, so a
// naive runs-per-instantiation period (16 at 48 threads) passes three
// confirmation windows and then breaks; the line-crossing alignment in
// newExtrapolator forces the true period (128) instead.
func TestExtrapolateMatchesFullSimulation(t *testing.T) {
	cases := []exCase{
		// Ragged ownership: 4094 trips over 48 threads. Ineligible by
		// construction (see the drift analysis in extrapolate.go).
		{name: "heat96x4096", nest: heatNest(96, 4096), threads: 48, chunk: 1, closed: -1},
		{name: "heat16x2048", nest: heatNest(16, 2048), threads: 8, chunk: 1, closed: -1},
		// Uniform: 768 % (48·1) == 0; closes at the aligned period.
		{name: "dft768c1", nest: dftNest(768), threads: 48, chunk: 1, closed: +1, period: 128},
		{name: "dft768c8", nest: dftNest(768), threads: 16, chunk: 8, closed: +1, period: 48},
		// Uniform but the private caches never fill at this scale: the
		// warm-up guard must keep the closure off.
		{name: "dft768c4", nest: dftNest(768), threads: 48, chunk: 4, closed: -1},
		{name: "dft256c1", nest: dftNest(256), threads: 16, chunk: 1, closed: -1},
		{name: "linreg512c1", nest: linregNest(512, 256, 48), threads: 48, chunk: 1, closed: -1},
	}
	for _, mode := range []CountingMode{CountPaperPhi, CountMESI} {
		for _, tc := range cases {
			if tc.closed == +1 && mode == CountMESI {
				// MESI invalidation deltas settle more slowly; whether the
				// bounded detection effort reaches the period is not part of
				// the contract — only equality (asserted below) is.
				tc.closed = 0
			}
			label := fmt.Sprintf("%s t=%d mode=%v", tc.name, tc.threads, mode)
			nest := tc.nest(t)
			opts := Options{Machine: machine.Paper48(), NumThreads: tc.threads, Chunk: tc.chunk, Counting: mode}
			full, err := Analyze(nest, opts)
			if err != nil {
				t.Fatalf("%s full: %v", label, err)
			}
			if full.Extrapolated {
				t.Fatalf("%s: extrapolation fired without Options.Extrapolate", label)
			}
			opts.Extrapolate = true
			ex, err := Analyze(nest, opts)
			if err != nil {
				t.Fatalf("%s extrapolated: %v", label, err)
			}
			requireSameTotals(t, label, full, ex)
			switch tc.closed {
			case +1:
				if !ex.Extrapolated {
					t.Fatalf("%s: closure did not fire", label)
				}
				if ex.ExtrapolationPeriod != tc.period {
					t.Fatalf("%s: period = %d, want %d", label, ex.ExtrapolationPeriod, tc.period)
				}
				if ex.SimulatedRuns <= 0 || ex.SimulatedRuns >= ex.ChunkRunsTotal {
					t.Fatalf("%s: simulated %d of %d runs", label, ex.SimulatedRuns, ex.ChunkRunsTotal)
				}
			case -1:
				if ex.Extrapolated {
					t.Fatalf("%s: closure fired on an ineligible/never-periodic run", label)
				}
			}
		}
	}
}

// TestExtrapolateRespectsTrackingModes pins that per-run recording and
// hot-line tracking disable the closure (their outputs are inherently
// per-run) while still producing correct totals.
func TestExtrapolateRespectsTrackingModes(t *testing.T) {
	nest := dftNest(768)(t)
	base := Options{Machine: machine.Paper48(), NumThreads: 48, Chunk: 1, Extrapolate: true}
	for _, tc := range []struct {
		name string
		mut  func(*Options)
	}{
		{"per-run", func(o *Options) { o.RecordPerRun = true }},
		{"hot-lines", func(o *Options) { o.TrackHotLines = true }},
		{"map-backend", func(o *Options) { o.Backend = BackendMap }},
	} {
		opts := base
		tc.mut(&opts)
		ex, err := Analyze(nest, opts)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if ex.Extrapolated {
			t.Fatalf("%s: closure fired despite %s", tc.name, tc.name)
		}
		opts.Extrapolate = false
		full, err := Analyze(nest, opts)
		if err != nil {
			t.Fatal(err)
		}
		if full.FSCases != ex.FSCases || full.Accesses != ex.Accesses {
			t.Fatalf("%s: totals differ: %d/%d vs %d/%d", tc.name,
				full.FSCases, full.Accesses, ex.FSCases, ex.Accesses)
		}
	}
}

// TestExtrapolateUnboundedStack exercises the cap == 0 warm-instantly
// path: with an unbounded stack depth there are no evictions, the run is
// warm from the first boundary, and eligible uniform kernels close.
func TestExtrapolateUnboundedStack(t *testing.T) {
	nest := dftNest(768)(t)
	opts := Options{Machine: machine.Paper48(), NumThreads: 48, Chunk: 1,
		StackDepth: -1, Extrapolate: true}
	ex, err := Analyze(nest, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Extrapolate = false
	full, err := Analyze(nest, opts)
	if err != nil {
		t.Fatal(err)
	}
	requireSameTotals(t, "dft768 unbounded", full, ex)
	if !ex.Extrapolated {
		t.Fatal("unbounded uniform run did not close")
	}
}
